// Benchmarks regenerating each of the paper's tables and figures (one
// bench per artifact), the DESIGN.md ablations, and microbenchmarks of
// the hot primitives. Custom metrics carry the experiment's headline
// number so `go test -bench` output doubles as a results table.
package pdnsec_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec"
	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/attack"
	"github.com/stealthy-peers/pdnsec/internal/corpus"
	"github.com/stealthy-peers/pdnsec/internal/defense"
	"github.com/stealthy-peers/pdnsec/internal/detector"
	"github.com/stealthy-peers/pdnsec/internal/dtls"
	"github.com/stealthy-peers/pdnsec/internal/experiments"
	"github.com/stealthy-peers/pdnsec/internal/geoip"
	"github.com/stealthy-peers/pdnsec/internal/hls"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/mitm"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/population"
	"github.com/stealthy-peers/pdnsec/internal/provider"
	"github.com/stealthy-peers/pdnsec/internal/signal"
	"github.com/stealthy-peers/pdnsec/internal/stun"
)

func benchCtx(b *testing.B) context.Context {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	b.Cleanup(cancel)
	return ctx
}

// BenchmarkTableI_Detector regenerates Table I: the signature scan +
// dynamic confirmation over the full synthetic corpus.
func BenchmarkTableI_Detector(b *testing.B) {
	ctx := benchCtx(b)
	c := corpus.Generate(corpus.Params{Seed: 1})
	profiles := provider.PublicProfiles()
	b.ResetTimer()
	var confirmed int
	for i := 0; i < b.N; i++ {
		rep, err := detector.Pipeline(ctx, c, profiles, 1)
		if err != nil {
			b.Fatal(err)
		}
		confirmed = rep.ConfirmedSites["peer5"] + rep.ConfirmedSites["streamroot"] + rep.ConfirmedSites["viblast"]
	}
	b.ReportMetric(float64(confirmed), "confirmed-sites")
}

// BenchmarkParallelScan runs the detection scan (sites + APKs) through
// the internal/dispatch engine at increasing worker counts, verifying
// on every iteration that the parallel report renders Tables I-IV
// byte-identically to the sequential reference. The headline workers-N
// series models a live crawl's I/O profile (100µs of simulated network
// round-trip per page/APK fetch — the workload the engine exists for),
// so the workers-1 vs workers-4 ratio holds even on a single core;
// the cpubound-workers-N series measures the pure in-memory scan,
// which only scales with physical parallelism.
func BenchmarkParallelScan(b *testing.B) {
	ctx := benchCtx(b)
	c := corpus.Generate(corpus.Params{Seed: 1, FillerSites: 300, FillerApps: 120})
	profiles := provider.PublicProfiles()
	seqRep, err := detector.Pipeline(ctx, c, profiles, 1)
	if err != nil {
		b.Fatal(err)
	}
	golden := renderAllTables(&experiments.DetectionResult{Report: seqRep, Corpus: c})
	scan := func(b *testing.B, opts detector.Options) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			rep, err := detector.ParallelPipeline(ctx, c, profiles, 1, opts)
			if err != nil {
				b.Fatal(err)
			}
			if got := renderAllTables(&experiments.DetectionResult{Report: rep, Corpus: c}); got != golden {
				b.Fatal("parallel tables diverge from sequential output")
			}
		}
	}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			scan(b, detector.Options{Workers: workers, SimulateRTT: 100 * time.Microsecond})
		})
	}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("cpubound-workers-%d", workers), func(b *testing.B) {
			scan(b, detector.Options{Workers: workers})
		})
	}
}

// renderAllTables concatenates every detection artifact the scan
// produces, so byte equality covers Tables I-IV and §IV-D.
func renderAllTables(det *experiments.DetectionResult) string {
	return det.RenderTableI() + det.RenderTableII() + det.RenderTableIII() +
		det.RenderTableIV() + det.RenderResourceSquattingWild()
}

// BenchmarkTableV_Analyzer regenerates one Table V column: the full
// security battery against the Peer5-like profile.
func BenchmarkTableV_Analyzer(b *testing.B) {
	ctx := benchCtx(b)
	var vulnerable int
	for i := 0; i < b.N; i++ {
		verdicts, err := analyzer.RunAll(ctx, provider.Peer5())
		if err != nil {
			b.Fatal(err)
		}
		vulnerable = 0
		for _, v := range verdicts {
			if v.Vulnerable {
				vulnerable++
			}
		}
	}
	b.ReportMetric(float64(vulnerable), "vulnerable-risks")
}

// BenchmarkTableVI_IMChecking regenerates Table VI: IM-checking
// overhead (CPU/memory model + live latency measurement).
func BenchmarkTableVI_IMChecking(b *testing.B) {
	ctx := benchCtx(b)
	var latency time.Duration
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableVI(ctx, 3<<20)
		if err != nil {
			b.Fatal(err)
		}
		latency = res.Rows[2].Latency
	}
	b.ReportMetric(float64(latency.Milliseconds()), "im-latency-ms")
}

// BenchmarkFigure4_PeerOverhead regenerates Fig. 4: PDN peer resource
// overhead vs a no-peer control.
func BenchmarkFigure4_PeerOverhead(b *testing.B) {
	ctx := benchCtx(b)
	var cpuRatio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure4(ctx)
		if err != nil {
			b.Fatal(err)
		}
		cpuRatio = res.PeerB.CPURatio
	}
	b.ReportMetric(cpuRatio, "peer-cpu-ratio")
}

// BenchmarkFigure5_UploadScaling regenerates Fig. 5: seeder upload
// growth with neighbor count.
func BenchmarkFigure5_UploadScaling(b *testing.B) {
	ctx := benchCtx(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure5(ctx, 3)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Points[len(res.Points)-1].UploadRatio
	}
	b.ReportMetric(ratio, "up/down-at-3-peers")
}

// BenchmarkIPLeakWild regenerates the §IV-D in-the-wild harvest.
func BenchmarkIPLeakWild(b *testing.B) {
	var harvested int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunIPLeakWild(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		harvested = res.Combined.Total
	}
	b.ReportMetric(float64(harvested), "harvested-ips")
}

// BenchmarkFreeRidingBilling regenerates the §IV-B billing attack.
func BenchmarkFreeRidingBilling(b *testing.B) {
	ctx := benchCtx(b)
	var bytes int64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFreeRideBilling(ctx, 3)
		if err != nil {
			b.Fatal(err)
		}
		bytes = res.VictimUsage
	}
	b.ReportMetric(float64(bytes), "victim-billed-bytes")
}

// BenchmarkAblationSlowStart varies the slow-start depth and measures
// how many early polluted segments reach a victim when a malicious
// seeder poisons the head of the stream: depth 0 lets the poison in,
// the deployed depth (2) keeps it out.
func BenchmarkAblationSlowStart(b *testing.B) {
	ctx := benchCtx(b)
	for _, depth := range []int{0, 2} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			var polluted int
			for i := 0; i < b.N; i++ {
				n, err := pollutedHeadSegments(ctx, depth)
				if err != nil {
					b.Fatal(err)
				}
				polluted = n
			}
			b.ReportMetric(float64(polluted), "polluted-head-segments")
		})
	}
}

// pollutedHeadSegments runs a same-size pollution attack on segments
// 0 and 1 with the given slow-start depth and reports how many reached
// the victim.
func pollutedHeadSegments(ctx context.Context, slowStart int) (int, error) {
	video := analyzer.SmallVideo("bbb", 4, 16<<10)
	pol := signal.DefaultPolicy()
	pol.SlowStartSegments = slowStart
	tb, err := analyzer.NewTestbed(context.Background(), analyzer.TestbedConfig{
		Profile: provider.Peer5(),
		Video:   video,
		Options: provider.Options{Seed: 5, PolicyOverride: &pol},
	})
	if err != nil {
		return 0, err
	}
	defer tb.Close()

	fakeHost, err := tb.Net.NewHost(analyzer.FakeCDNIP())
	if err != nil {
		return 0, err
	}
	malHost, err := tb.NewViewerHost("US")
	if err != nil {
		return 0, err
	}
	atk, err := attack.LaunchPollution(ctx, attack.PollutionParams{
		Network:       tb.Net,
		SignalAddr:    tb.Dep.SignalAddr,
		STUNAddr:      tb.Dep.STUNAddr,
		RealCDNBase:   tb.CDNBase,
		FakeCDNHost:   fakeHost,
		MaliciousHost: malHost,
		APIKey:        tb.Key,
		Origin:        "https://customer.com",
		Video:         video.ID,
		Rendition:     "360p",
		Pollute:       mitm.SameSizePollution([]int{0, 1}),
		Segments:      video.Segments,
	})
	if err != nil {
		return 0, err
	}
	defer atk.Close()

	victimHost, err := tb.NewViewerHost("GB")
	if err != nil {
		return 0, err
	}
	cfg := tb.ViewerConfig(victimHost, 9)
	obs, err := attack.RunVictim(ctx, tb.Net, victimHost, tb.Dep.SignalAddr, tb.Dep.STUNAddr,
		cfg.CDNBase, cfg.APIKey, cfg.Origin, video, "360p", video.Segments, 9)
	if err != nil {
		return 0, err
	}
	return len(obs.PollutedSegments), nil
}

// BenchmarkAblationIMReporters varies the IM panel size k and measures
// the fake-SIM survival rate when the attacker controls a third of the
// swarm: the attack needs all k panelists malicious, so survival decays
// geometrically in k.
func BenchmarkAblationIMReporters(b *testing.B) {
	video := analyzer.SmallVideo("bbb", 1, 1<<10)
	authentic, _ := video.SegmentData("360p", 0)
	for _, k := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("k-%d", k), func(b *testing.B) {
			var survived, rounds int
			for i := 0; i < b.N; i++ {
				survived, rounds = 0, 0
				// 3 of 9 swarm peers are malicious; panels form from
				// arrival order, shuffled per round.
				for round := 0; round < 200; round++ {
					checker, err := defense.NewIMChecker(defense.IMConfig{
						Reporters: k,
						FetchCDN: func(key media.SegmentKey) ([]byte, error) {
							return video.SegmentData(key.Rendition, key.Index)
						},
					})
					if err != nil {
						b.Fatal(err)
					}
					key := media.SegmentKey{Video: "bbb", Rendition: "360p", Index: 0}
					order := shuffledRoles(9, 3, int64(round)*31+int64(k))
					for p, malicious := range order {
						h := media.IMHash(key, authentic)
						if malicious {
							h = "fake-im"
						}
						checker.Report(fmt.Sprintf("p%d", p), key, h) //nolint:errcheck // bans expected
					}
					if hash, _, ok := checker.SIM(key); ok && hash == "fake-im" {
						survived++
					}
					rounds++
				}
			}
			b.ReportMetric(float64(survived)/float64(rounds), "fake-sim-survival")
		})
	}
}

// shuffledRoles returns a deterministic shuffled slice with m true
// (malicious) entries out of n.
func shuffledRoles(n, m int, seed int64) []bool {
	roles := make([]bool, n)
	for i := 0; i < m; i++ {
		roles[i] = true
	}
	// Fisher-Yates with a simple LCG so the bench has no rand import.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := n - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state>>33) % (i + 1)
		roles[i], roles[j] = roles[j], roles[i]
	}
	return roles
}

// BenchmarkAblationTURN compares direct and relayed P2P transfer,
// reporting the relay's byte overhead — the cost that makes TURN
// infeasible at PDN scale (§V-C).
func BenchmarkAblationTURN(b *testing.B) {
	payload := make([]byte, 1<<20)
	for _, relayed := range []bool{false, true} {
		name := "direct"
		if relayed {
			name = "relayed"
		}
		b.Run(name, func(b *testing.B) {
			n := netsim.New(netsim.Config{})
			h1 := n.MustHost(mustAddr("66.24.0.1"))
			h2 := n.MustHost(mustAddr("36.96.0.1"))
			var relay *defense.TURNRelay
			relayBytes := int64(0)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var c1, c2 interface {
					Read([]byte) (int, error)
					Write([]byte) (int, error)
					Close() error
				}
				if relayed {
					relayHost := n.Host(mustAddr("50.50.50.50"))
					if relayHost == nil {
						relayHost = n.MustHost(mustAddr("50.50.50.50"))
						relay = defense.NewTURNRelay()
						if err := relay.Serve(relayHost, 3479); err != nil {
							b.Fatal(err)
						}
					}
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					room := fmt.Sprintf("r%d", i)
					done := make(chan interface {
						Read([]byte) (int, error)
						Write([]byte) (int, error)
						Close() error
					}, 1)
					go func() {
						c, err := defense.DialRelay(ctx, h2, mustAP("50.50.50.50:3479"), room)
						if err == nil {
							done <- c
						} else {
							done <- nil
						}
					}()
					c, err := defense.DialRelay(ctx, h1, mustAP("50.50.50.50:3479"), room)
					if err != nil {
						b.Fatal(err)
					}
					c1 = c
					c2 = <-done
					cancel()
					if c2 == nil {
						b.Fatal("relay pairing failed")
					}
				} else {
					a, z := netsim.Pair(h1, h2, mustAP("66.24.0.1:40000"), mustAP("36.96.0.1:40000"))
					c1, c2 = a, z
				}
				b.StartTimer()
				errc := make(chan error, 1)
				go func() {
					buf := make([]byte, 64<<10)
					total := 0
					for total < len(payload) {
						nn, err := c2.Read(buf)
						if err != nil {
							errc <- err
							return
						}
						total += nn
					}
					errc <- nil
				}()
				if _, err := c1.Write(payload); err != nil {
					b.Fatal(err)
				}
				if err := <-errc; err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				c1.Close()
				c2.Close()
				b.StartTimer()
			}
			if relay != nil {
				relayBytes = relay.RelayedBytes()
				relay.Close()
			}
			b.ReportMetric(float64(relayBytes)/float64(b.N), "relay-bytes/op")
		})
	}
}

// BenchmarkAblationGeoMatch measures the §V-C same-country-matching
// mitigation: leaked addresses visible to a US-controlled peer with
// and without geo matching.
func BenchmarkAblationGeoMatch(b *testing.B) {
	var before, after int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunGeoMatchMitigation(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		before, after = res[0].LeakedBefore, res[0].LeakedAfter
	}
	b.ReportMetric(float64(after)/float64(before), "leak-share-remaining")
}

// --- microbenchmarks of the hot primitives ---

// BenchmarkSegmentGeneration measures deterministic segment synthesis.
func BenchmarkSegmentGeneration(b *testing.B) {
	v := media.NewVOD("bench", 1000)
	b.SetBytes(3_000_000)
	for i := 0; i < b.N; i++ {
		if _, err := v.SegmentData("720p", i%1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIMHash measures integrity-metadata computation on a 3MB
// segment (the Table VI workload).
func BenchmarkIMHash(b *testing.B) {
	v := media.NewVOD("bench", 4)
	data, _ := v.SegmentData("720p", 0)
	key := media.SegmentKey{Video: "bench", Rendition: "720p", Index: 0}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		media.IMHash(key, data)
	}
}

// BenchmarkSTUNCodec measures binding-message encode+decode.
func BenchmarkSTUNCodec(b *testing.B) {
	msg := stun.BindingRequest("user:pass", 12345)
	for i := 0; i < b.N; i++ {
		enc := msg.Encode()
		if _, err := stun.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDTLSTransfer measures secure-channel throughput for 1MB
// messages over an in-memory pair.
func BenchmarkDTLSTransfer(b *testing.B) {
	n := netsim.New(netsim.Config{})
	h1 := n.MustHost(mustAddr("10.0.0.1"))
	h2 := n.MustHost(mustAddr("10.0.0.2"))
	raw1, raw2 := netsim.Pair(h1, h2, mustAP("10.0.0.1:1"), mustAP("10.0.0.2:1"))
	id1, _ := dtls.NewIdentity()
	id2, _ := dtls.NewIdentity()
	done := make(chan *dtls.Conn, 1)
	go func() {
		c, err := dtls.Server(raw2, dtls.Config{Identity: id2})
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	client, err := dtls.Client(raw1, dtls.Config{Identity: id1})
	if err != nil {
		b.Fatal(err)
	}
	server := <-done
	if server == nil {
		b.Fatal("handshake failed")
	}
	payload := make([]byte, 1<<20)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errc := make(chan error, 1)
		go func() {
			_, err := server.Recv()
			errc <- err
		}()
		if err := client.Send(payload); err != nil {
			b.Fatal(err)
		}
		if err := <-errc; err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJWTSignVerify measures the §V-A token round trip.
func BenchmarkJWTSignVerify(b *testing.B) {
	secret := []byte("bench-secret")
	tok := defense.ExampleToken()
	for i := 0; i < b.N; i++ {
		jwt, err := defense.SignJWT(tok, secret)
		if err != nil {
			b.Fatal(err)
		}
		var out defense.PDNToken
		if err := defense.VerifyJWT(jwt, secret, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHLSPlaylistParse measures media-playlist decoding for a
// 6-entry live window.
func BenchmarkHLSPlaylistParse(b *testing.B) {
	v := media.NewLive("bench", 6)
	doc := hls.Window(v, 100, 6).Encode()
	b.SetBytes(int64(len(doc)))
	for i := 0; i < b.N; i++ {
		if _, err := hls.ParseMediaPlaylist(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPopulationHarvest measures wild-harvest generation and
// classification for the Huya-scale population.
func BenchmarkPopulationHarvest(b *testing.B) {
	db := geoip.NewDB()
	model := population.HuyaLike()
	for i := 0; i < b.N; i++ {
		viewers, err := model.Generate(db, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		addrs := make([]netipAddr, 0, len(viewers))
		for _, v := range viewers {
			addrs = append(addrs, v.Addr)
		}
		population.Summarize("bench", addrs, db)
	}
}

// BenchmarkFullTestbedSession measures a complete two-peer PDN session
// (deploy, seed, leech, teardown) — the analyzer's unit of work.
func BenchmarkFullTestbedSession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		video := analyzer.SmallVideo("bbb", 6, 32<<10)
		tb, err := pdnsec.NewTestbed(context.Background(), pdnsec.TestbedConfig{Profile: provider.Peer5(), Video: video})
		if err != nil {
			b.Fatal(err)
		}
		hostA, err := tb.NewViewerHost("US")
		if err != nil {
			b.Fatal(err)
		}
		_, stop, err := tb.Seeder(context.Background(), tb.ViewerConfig(hostA, 1), video.Segments)
		if err != nil {
			b.Fatal(err)
		}
		hostB, err := tb.NewViewerHost("GB")
		if err != nil {
			b.Fatal(err)
		}
		st, err := tb.RunViewer(context.Background(), tb.ViewerConfig(hostB, 2))
		if err != nil {
			b.Fatal(err)
		}
		if st.FromP2P == 0 {
			b.Fatal("no P2P traffic in benchmark session")
		}
		stop()
		tb.Close()
	}
}

// BenchmarkAblationDefenseCost compares the integrity-defense options
// under the same pollution attack: the CDN-hash-manifest plugin pays
// bytes per viewer session; peer-assisted IM pays arbitration fetches
// only under attack.
func BenchmarkAblationDefenseCost(b *testing.B) {
	ctx := benchCtx(b)
	var hashCost, imCost int64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDefenseCost(ctx)
		if err != nil {
			b.Fatal(err)
		}
		hashCost = res.Rows[1].DefenseCDNBytes
		imCost = res.Rows[2].DefenseCDNBytes
	}
	b.ReportMetric(float64(hashCost), "hash-manifest-cdn-bytes")
	b.ReportMetric(float64(imCost), "peer-im-cdn-bytes")
}

// BenchmarkPollutionPropagation measures swarm-wide pollution spread
// from a single malicious seeder (metric: fraction of viewers that
// played poisoned content; the paper cites ~47% in the initial stage).
func BenchmarkPollutionPropagation(b *testing.B) {
	ctx := benchCtx(b)
	var fraction float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPollutionPropagation(ctx, 8)
		if err != nil {
			b.Fatal(err)
		}
		fraction = res.AffectedFraction
	}
	b.ReportMetric(fraction, "affected-fraction")
}
