// Command chaos runs a fault-injection scenario against a full simulated
// PDN deployment and checks its invariants, mirroring the test suite in
// internal/chaos but as an operator tool: pick a scenario, pick (or
// rotate) a seed, get the JSONL fault log and a pass/fail verdict. The
// printed seed is the reproduction — rerunning with it replays a
// byte-identical fault schedule.
//
// Usage:
//
//	go run ./cmd/chaos -scenario peer_churn -seed 7 -out faults.jsonl
//	go run ./cmd/chaos -scenario signal_crash -servers 3 -seed 7
//	go run ./cmd/chaos -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/chaos"
	"github.com/stealthy-peers/pdnsec/internal/obs"
)

// spec binds a named scenario to its swarm shape and the invariants it
// must uphold — the same pairings the internal/chaos tests assert.
type spec struct {
	about string
	// minServers is the smallest -servers value the scenario makes
	// sense at (zero = any).
	minServers int
	cfg        func(seed int64, viewers, segments int) chaos.SwarmConfig
	sc         func() chaos.Scenario
	inv        func(res *chaos.Result) chaos.Invariants
}

func plainConfig(seed int64, viewers, segments int) chaos.SwarmConfig {
	return chaos.SwarmConfig{Viewers: viewers, Segments: segments, Seed: seed}
}

func strictInvariants(*chaos.Result) chaos.Invariants {
	return chaos.Invariants{
		PlaybackCompletes: true,
		MaxStalls:         0,
		NoPollutedCache:   true,
		NoViewerErrors:    true,
	}
}

var specs = map[string]spec{
	"peer_churn": {
		about: "kill 40% of the swarm mid-playback; survivors evict and finish",
		cfg:   plainConfig,
		sc:    func() chaos.Scenario { return chaos.PeerChurn(25*time.Millisecond, 0.4) },
		inv:   strictInvariants,
	},
	"signal_partition": {
		about: "blackhole the signaling server for a window; playback rides it out",
		cfg:   plainConfig,
		sc:    func() chaos.Scenario { return chaos.SignalPartition(20*time.Millisecond, 150*time.Millisecond) },
		inv:   strictInvariants,
	},
	"signal_crash": {
		about:      "crash the plane member owning the swarm; viewers re-bootstrap (needs -servers >= 3)",
		minServers: 3,
		cfg: func(seed int64, viewers, segments int) chaos.SwarmConfig {
			// "chaos-fed" hashes to s2 on the 3-server ring, so the
			// scenario can name its victim deterministically.
			// 20ms pace keeps viewers alive past the post-crash
			// rejoin (first attempt ~70ms after the kill) even on
			// slow runners.
			return chaos.SwarmConfig{
				Viewers:  viewers,
				Segments: segments,
				Seed:     seed,
				Pace:     20 * time.Millisecond,
				VideoID:  "chaos-fed",
			}
		},
		sc: func() chaos.Scenario {
			return chaos.SignalCrash(20*time.Millisecond, chaos.NodeSignal+"-2")
		},
		inv: strictInvariants,
	},
	"cdn_brownout": {
		about: "degrade CDN latency and bandwidth for a window; no hard stalls",
		cfg:   plainConfig,
		sc: func() chaos.Scenario {
			return chaos.CDNBrownout(15*time.Millisecond, 100*time.Millisecond, 10*time.Millisecond, 512<<10)
		},
		inv: strictInvariants,
	},
	"polluted_wire": {
		about: "corrupt one viewer's entire uplink; no polluted bytes may be cached",
		cfg: func(seed int64, viewers, segments int) chaos.SwarmConfig {
			return chaos.SwarmConfig{Viewers: viewers, Segments: segments, Seed: seed, HashManifest: true}
		},
		sc: func() chaos.Scenario {
			return chaos.PollutedWire(20*time.Millisecond, 120*time.Millisecond, "viewer-00")
		},
		inv: func(res *chaos.Result) chaos.Invariants {
			// The sick node's own CDN requests corrupt too, so it is
			// exempt from completion; cache integrity never is.
			return chaos.Invariants{
				PlaybackCompletes: true,
				MaxStalls:         int64(res.Segments),
				NoPollutedCache:   true,
				NoViewerErrors:    true,
				Exempt:            []string{"viewer-00"},
			}
		},
	},
	"sybil_flood": {
		about: "one host joins under 40 identities against the hardened profile; its match-grant share stays capped",
		cfg: func(seed int64, viewers, segments int) chaos.SwarmConfig {
			// Hardened geo-matches by country, so the honest swarm needs
			// country overlap to produce any honest match grants at all —
			// without that baseline the share denominator is degenerate and
			// the mill's ramp-up grants read as 100%.
			if viewers < 10 {
				viewers = 10
			}
			return chaos.SwarmConfig{
				Viewers:  viewers,
				Segments: segments,
				Seed:     seed,
				Profile:  "hardened",
			}
		},
		sc: func() chaos.Scenario { return chaos.SybilFlood(10*time.Millisecond, 40) },
		inv: func(*chaos.Result) chaos.Invariants {
			return chaos.Invariants{
				PlaybackCompletes: true,
				MaxStalls:         0,
				NoPollutedCache:   true,
				NoViewerErrors:    true,
				MaxSybilSlotShare: 0.5,
			}
		},
	},
	"eclipse_matcher": {
		about:      "colluders flood the candidate pool across a federated plane; honest viewers keep honest neighbors (needs -servers >= 3)",
		minServers: 3,
		cfg: func(seed int64, viewers, segments int) chaos.SwarmConfig {
			// Slow pace keeps honest playback alive long enough for the
			// mid-run colluder band to reach the matcher.
			return chaos.SwarmConfig{
				Viewers:  viewers,
				Segments: segments,
				Seed:     seed,
				Pace:     20 * time.Millisecond,
				VideoID:  "chaos-fed",
			}
		},
		sc: func() chaos.Scenario { return chaos.EclipseMatcher(15*time.Millisecond, 6) },
		inv: func(*chaos.Result) chaos.Invariants {
			return chaos.Invariants{
				PlaybackCompletes:  true,
				MaxStalls:          0,
				NoPollutedCache:    true,
				NoViewerErrors:     true,
				MinHonestNeighbors: 1,
			}
		},
	},
	"free_rider_wave": {
		about: "a leech-farm wave drains the swarm and honest members churn; upload fairness keeps a floor",
		cfg: func(seed int64, viewers, segments int) chaos.SwarmConfig {
			return chaos.SwarmConfig{Viewers: viewers, Segments: segments, Seed: seed}
		},
		sc: func() chaos.Scenario {
			return chaos.FreeRiderWave(10*time.Millisecond, 8, 60*time.Millisecond, 0.25)
		},
		inv: func(*chaos.Result) chaos.Invariants {
			// The floor here is a robustness bound (the index cannot
			// collapse to one uploader); the meaningful per-profile
			// bounds live in the adversarial regression test.
			return chaos.Invariants{
				PlaybackCompletes: true,
				MaxStalls:         -1,
				NoPollutedCache:   true,
				NoViewerErrors:    true,
				MinJainFairness:   0.05,
			}
		},
	},
	"key_compromise": {
		about: "impersonators join under a leaked static key against the secure profile; possession proofs fail, the key is quarantined, nothing leaks",
		cfg: func(seed int64, viewers, segments int) chaos.SwarmConfig {
			return chaos.SwarmConfig{
				Viewers:  viewers,
				Segments: segments,
				Seed:     seed,
				Pace:     5 * time.Millisecond,
				Profile:  "secure",
			}
		},
		sc: func() chaos.Scenario { return chaos.KeyCompromise(10*time.Millisecond, 6) },
		inv: func(*chaos.Result) chaos.Invariants {
			return chaos.Invariants{
				PlaybackCompletes:    true,
				MaxStalls:            -1,
				NoPollutedCache:      true,
				NoViewerErrors:       true,
				MinSecureQuarantines: 1,
			}
		},
	},
	"flash_crowd_live": {
		about: "join-storm waves hit the plane while viewers chase a sliding live-HLS window; live-edge lag p99 stays bounded",
		cfg: func(seed int64, viewers, segments int) chaos.SwarmConfig {
			return chaos.SwarmConfig{
				Viewers:  viewers,
				Segments: segments,
				Seed:     seed,
				Pace:     5 * time.Millisecond,
				Live:     true,
				VideoID:  "chaos-live",
			}
		},
		sc: func() chaos.Scenario {
			return chaos.FlashCrowdLive(10*time.Millisecond, 30*time.Millisecond, 3, 12)
		},
		inv: func(*chaos.Result) chaos.Invariants {
			// Live playback tolerates skipped-window stalls; the property
			// under attack is staying near the edge.
			return chaos.Invariants{
				PlaybackCompletes: true,
				MaxStalls:         -1,
				NoPollutedCache:   true,
				NoViewerErrors:    true,
				MaxLiveLagP99:     40,
			}
		},
	},
}

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario = fs.String("scenario", "peer_churn", "scenario to run (see -list)")
		seed     = fs.Int64("seed", 0, "fault schedule seed (0 = derive from the clock; the value used is always printed)")
		viewers  = fs.Int("viewers", 5, "swarm size (must be >= 1; up to 10k — raise -shards to match)")
		segments = fs.Int("segments", 5, "VOD length each viewer plays (must be >= 1)")
		shards   = fs.Int("shards", 0, "signaling server lock stripes (0 = single-stripe seed layout; 16 suits 10k-viewer swarms)")
		servers  = fs.Int("servers", 1, "federated signaling servers (must be >= 1; 1 = classic single server)")
		out      = fs.String("out", "", "write the JSONL fault log to this file (default: stdout)")
		traceOut = fs.String("trace", "", "write merged pdnsec-trace JSONL for every deployed process to this file (analyze with pdntrace; violation trace IDs resolve against it)")
		list     = fs.Bool("list", false, "list scenarios and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)

	if *list {
		for _, name := range names {
			fmt.Fprintf(stdout, "%-18s %s\n", name, specs[name].about)
		}
		return 0
	}
	if *viewers < 1 || *segments < 1 {
		fmt.Fprintf(stderr, "chaos: -viewers and -segments must be >= 1 (got -viewers=%d -segments=%d)\n", *viewers, *segments)
		fs.Usage()
		return 2
	}
	if *servers < 1 {
		fmt.Fprintf(stderr, "chaos: -servers must be >= 1 (got -servers=%d)\n", *servers)
		fs.Usage()
		return 2
	}
	sp, ok := specs[*scenario]
	if !ok {
		fmt.Fprintf(stderr, "chaos: unknown scenario %q (have %v)\n", *scenario, names)
		return 2
	}
	if sp.minServers > 1 && *servers < sp.minServers {
		fmt.Fprintf(stderr, "chaos: scenario %s needs -servers >= %d (got %d)\n", *scenario, sp.minServers, *servers)
		fs.Usage()
		return 2
	}
	if *seed == 0 {
		//lint:ignore pdnlint/detrand rotating the seed is the point of the default; the value is printed below, and passing it back replays the identical schedule
		*seed = time.Now().UnixNano()
	}
	fmt.Fprintf(stdout, "chaos: scenario=%s seed=%d viewers=%d segments=%d servers=%d\n",
		*scenario, *seed, *viewers, *segments, *servers)

	cfg := sp.cfg(*seed, *viewers, *segments)
	cfg.Shards = *shards
	cfg.Servers = *servers
	var traces *obs.TraceSet
	if *traceOut != "" {
		traces = obs.NewTraceSet(nil, *seed)
		cfg.Traces = traces
	}
	res, err := chaos.RunScenario(ctx, cfg, sp.sc())
	// The trace capture is written even for failed runs — a violation's
	// trace ID is only useful if the JSONL it points into survives.
	if traces != nil {
		if werr := traces.WriteFile(*traceOut); werr != nil {
			fmt.Fprintf(stderr, "chaos: write %s: %v\n", *traceOut, werr)
			return 2
		}
		fmt.Fprintf(stdout, "chaos: wrote trace JSONL for %d processes to %s\n", traces.Len(), *traceOut)
	}
	if err != nil {
		fmt.Fprintf(stderr, "chaos: harness failure (seed=%d): %v\n", *seed, err)
		return 2
	}

	if *out != "" {
		if err := os.WriteFile(*out, res.Log, 0o644); err != nil {
			fmt.Fprintf(stderr, "chaos: write log: %v\n", err)
			return 2
		}
	} else {
		stdout.Write(res.Log)
	}

	survivors := res.Survivors()
	completed := 0
	for _, v := range survivors {
		if v.Stats.SegmentsPlayed >= res.Segments {
			completed++
		}
	}
	fmt.Fprintf(stdout, "chaos: events=%d killed=%d survivors=%d completed=%d cdn_fallbacks=%d stalls=%d evictions=%d reconnects=%d\n",
		len(res.Events), len(res.Viewers)-len(survivors), len(survivors), completed,
		res.Counter("pdn_cdn_fallbacks_total"), res.Counter("pdn_stalls_total"),
		res.Counter("pdn_neighbors_evicted_total"), res.Counter("pdn_signal_reconnects_total"))

	if violations := sp.inv(res).Check(res); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(stderr, "chaos: VIOLATION "+v)
		}
		fmt.Fprintf(stderr, "chaos: rerun: go run ./cmd/chaos -scenario %s -seed %d -viewers %d -segments %d -servers %d\n",
			*scenario, *seed, *viewers, *segments, *servers)
		return 1
	}
	fmt.Fprintln(stdout, "chaos: all invariants held")
	return 0
}
