// Command chaos runs a fault-injection scenario against a full simulated
// PDN deployment and checks its invariants, mirroring the test suite in
// internal/chaos but as an operator tool: pick a scenario, pick (or
// rotate) a seed, get the JSONL fault log and a pass/fail verdict. The
// printed seed is the reproduction — rerunning with it replays a
// byte-identical fault schedule.
//
// Usage:
//
//	go run ./cmd/chaos -scenario peer_churn -seed 7 -out faults.jsonl
//	go run ./cmd/chaos -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/chaos"
)

// spec binds a named scenario to its swarm shape and the invariants it
// must uphold — the same pairings the internal/chaos tests assert.
type spec struct {
	about string
	cfg   func(seed int64, viewers, segments int) chaos.SwarmConfig
	sc    func() chaos.Scenario
	inv   func(res *chaos.Result) chaos.Invariants
}

func plainConfig(seed int64, viewers, segments int) chaos.SwarmConfig {
	return chaos.SwarmConfig{Viewers: viewers, Segments: segments, Seed: seed}
}

func strictInvariants(*chaos.Result) chaos.Invariants {
	return chaos.Invariants{
		PlaybackCompletes: true,
		MaxStalls:         0,
		NoPollutedCache:   true,
		NoViewerErrors:    true,
	}
}

var specs = map[string]spec{
	"peer_churn": {
		about: "kill 40% of the swarm mid-playback; survivors evict and finish",
		cfg:   plainConfig,
		sc:    func() chaos.Scenario { return chaos.PeerChurn(25*time.Millisecond, 0.4) },
		inv:   strictInvariants,
	},
	"signal_partition": {
		about: "blackhole the signaling server for a window; playback rides it out",
		cfg:   plainConfig,
		sc:    func() chaos.Scenario { return chaos.SignalPartition(20*time.Millisecond, 150*time.Millisecond) },
		inv:   strictInvariants,
	},
	"cdn_brownout": {
		about: "degrade CDN latency and bandwidth for a window; no hard stalls",
		cfg:   plainConfig,
		sc: func() chaos.Scenario {
			return chaos.CDNBrownout(15*time.Millisecond, 100*time.Millisecond, 10*time.Millisecond, 512<<10)
		},
		inv: strictInvariants,
	},
	"polluted_wire": {
		about: "corrupt one viewer's entire uplink; no polluted bytes may be cached",
		cfg: func(seed int64, viewers, segments int) chaos.SwarmConfig {
			return chaos.SwarmConfig{Viewers: viewers, Segments: segments, Seed: seed, HashManifest: true}
		},
		sc: func() chaos.Scenario {
			return chaos.PollutedWire(20*time.Millisecond, 120*time.Millisecond, "viewer-00")
		},
		inv: func(res *chaos.Result) chaos.Invariants {
			// The sick node's own CDN requests corrupt too, so it is
			// exempt from completion; cache integrity never is.
			return chaos.Invariants{
				PlaybackCompletes: true,
				MaxStalls:         int64(res.Segments),
				NoPollutedCache:   true,
				NoViewerErrors:    true,
				Exempt:            []string{"viewer-00"},
			}
		},
	},
}

func main() {
	var (
		scenario = flag.String("scenario", "peer_churn", "scenario to run (see -list)")
		seed     = flag.Int64("seed", 0, "fault schedule seed (0 = derive from the clock; the value used is always printed)")
		viewers  = flag.Int("viewers", 5, "swarm size (up to 10k; raise -shards to match)")
		segments = flag.Int("segments", 5, "VOD length each viewer plays")
		shards   = flag.Int("shards", 0, "signaling server lock stripes (0 = single-stripe seed layout; 16 suits 10k-viewer swarms)")
		out      = flag.String("out", "", "write the JSONL fault log to this file (default: stdout)")
		list     = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)

	if *list {
		for _, name := range names {
			fmt.Printf("%-18s %s\n", name, specs[name].about)
		}
		return
	}
	sp, ok := specs[*scenario]
	if !ok {
		fmt.Fprintf(os.Stderr, "chaos: unknown scenario %q (have %v)\n", *scenario, names)
		os.Exit(2)
	}
	if *seed == 0 {
		//lint:ignore pdnlint/detrand rotating the seed is the point of the default; the value is printed below, and passing it back replays the identical schedule
		*seed = time.Now().UnixNano()
	}
	fmt.Printf("chaos: scenario=%s seed=%d viewers=%d segments=%d\n", *scenario, *seed, *viewers, *segments)

	cfg := sp.cfg(*seed, *viewers, *segments)
	cfg.Shards = *shards
	res, err := chaos.RunScenario(context.Background(), cfg, sp.sc())
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: harness failure (seed=%d): %v\n", *seed, err)
		os.Exit(2)
	}

	if *out != "" {
		if err := os.WriteFile(*out, res.Log, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: write log: %v\n", err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(res.Log)
	}

	survivors := res.Survivors()
	completed := 0
	for _, v := range survivors {
		if v.Stats.SegmentsPlayed >= res.Segments {
			completed++
		}
	}
	fmt.Printf("chaos: events=%d killed=%d survivors=%d completed=%d cdn_fallbacks=%d stalls=%d evictions=%d reconnects=%d\n",
		len(res.Events), len(res.Viewers)-len(survivors), len(survivors), completed,
		res.Counter("pdn_cdn_fallbacks_total"), res.Counter("pdn_stalls_total"),
		res.Counter("pdn_neighbors_evicted_total"), res.Counter("pdn_signal_reconnects_total"))

	if violations := sp.inv(res).Check(res); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "chaos: VIOLATION "+v)
		}
		fmt.Fprintf(os.Stderr, "chaos: rerun: go run ./cmd/chaos -scenario %s -seed %d -viewers %d -segments %d\n",
			*scenario, *seed, *viewers, *segments)
		os.Exit(1)
	}
	fmt.Println("chaos: all invariants held")
}
