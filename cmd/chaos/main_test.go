package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunRejectsBadCounts(t *testing.T) {
	for _, tc := range []struct {
		args []string
		diag string
	}{
		{[]string{"-viewers", "0"}, "-viewers and -segments must be >= 1"},
		{[]string{"-segments", "-2"}, "-viewers and -segments must be >= 1"},
		{[]string{"-servers", "0"}, "-servers must be >= 1"},
		{[]string{"-servers", "-1"}, "-servers must be >= 1"},
		{[]string{"-scenario", "signal_crash", "-servers", "1"}, "needs -servers >= 3"},
		{[]string{"-scenario", "signal_crash"}, "needs -servers >= 3"},
	} {
		var out, errOut strings.Builder
		if code := run(context.Background(), tc.args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want usage error 2", tc.args, code)
		}
		if !strings.Contains(errOut.String(), tc.diag) {
			t.Errorf("run(%v) stderr missing diagnosis %q:\n%s", tc.args, tc.diag, errOut.String())
		}
		if !strings.Contains(errOut.String(), "Usage") {
			t.Errorf("run(%v) should print usage, got:\n%s", tc.args, errOut.String())
		}
	}
}

func TestRunRejectsUnknownScenarioAndFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-scenario", "meteor"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown scenario exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown scenario") {
		t.Errorf("stderr missing diagnosis:\n%s", errOut.String())
	}
	errOut.Reset()
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag exit = %d, want 2", code)
	}
}

func TestRunListsScenarios(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit = %d, stderr:\n%s", code, errOut.String())
	}
	for _, name := range []string{"peer_churn", "signal_partition", "signal_crash", "cdn_brownout", "polluted_wire"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestRunFederatedCrashScenario is the acceptance run: the chaos
// harness must pass end to end with -servers 3.
func TestRunFederatedCrashScenario(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-scenario", "signal_crash", "-servers", "3", "-seed", "20260805"}
	if code := run(context.Background(), args, &out, &errOut); code != 0 {
		t.Fatalf("run(%v) = %d\nstderr:\n%s\nstdout:\n%s", args, code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "all invariants held") {
		t.Errorf("stdout missing verdict:\n%s", out.String())
	}
}
