// Command experiments regenerates every table and figure in the
// paper's evaluation (Tables I-VI, Figures 4-5, and the §IV-§VI
// free-riding, IP-leak, defense, and eCDN results) and writes the
// combined report to stdout. EXPERIMENTS.md's measured numbers come
// from this command.
//
// Usage:
//
//	experiments [-seed N] [-timeout 15m] [-trace FILE]
//
// -trace records each experiment section as a span; ".jsonl" files get
// one trace event per line, anything else the Chrome trace-event JSON
// array that ui.perfetto.dev loads directly. Tracing never changes the
// report — the experiments read only their own injected clocks.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/stealthy-peers/pdnsec"
	"github.com/stealthy-peers/pdnsec/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 42, "experiment seed")
	timeout := flag.Duration("timeout", 15*time.Minute, "overall timeout")
	traceFile := flag.String("trace", "", "write a Perfetto-loadable trace of the run to FILE (.jsonl for line-delimited)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer(nil) // sections run in process time
		ctx = obs.WithTracer(ctx, tracer)
	}

	if err := pdnsec.Reproduce(ctx, os.Stdout, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	if tracer != nil {
		if err := tracer.WriteFile(*traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s\n", tracer.Len(), *traceFile)
	}
	return 0
}
