// Command experiments regenerates every table and figure in the
// paper's evaluation (Tables I-VI, Figures 4-5, and the §IV-§VI
// free-riding, IP-leak, defense, and eCDN results) and writes the
// combined report to stdout. EXPERIMENTS.md's measured numbers come
// from this command.
//
// Usage:
//
//	experiments [-seed N] [-timeout 15m]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/stealthy-peers/pdnsec"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 42, "experiment seed")
	timeout := flag.Duration("timeout", 15*time.Minute, "overall timeout")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if err := pdnsec.Reproduce(ctx, os.Stdout, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	return 0
}
