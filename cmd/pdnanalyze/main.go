// Command pdnanalyze runs the PDN analyzer's security-test battery
// (§IV, Table V) against one or all provider profiles: cross-domain and
// domain-spoofing peer authentication, direct and segment content
// pollution, IP leak, and resource squatting.
//
// Usage:
//
//	pdnanalyze [-provider name] [-risk name]
//
// Without flags, the full battery runs against every profile.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/stealthy-peers/pdnsec"
)

func main() {
	os.Exit(run())
}

func run() int {
	providerName := flag.String("provider", "", "provider profile to test (default: all)")
	risk := flag.String("risk", "", "single risk to test (default: all): "+strings.Join(pdnsec.AllRisks(), ", "))
	timeout := flag.Duration("timeout", 10*time.Minute, "overall timeout")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	profiles := pdnsec.AllProfiles()
	if *providerName != "" {
		var found bool
		for _, p := range profiles {
			if p.Name == *providerName {
				profiles = []pdnsec.Provider{p}
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown provider %q; available:", *providerName)
			for _, p := range pdnsec.AllProfiles() {
				fmt.Fprintf(os.Stderr, " %s", p.Name)
			}
			fmt.Fprintln(os.Stderr)
			return 2
		}
	}

	for _, p := range profiles {
		fmt.Printf("=== %s ===\n", p.Name)
		var verdicts []pdnsec.Verdict
		var err error
		if *risk != "" {
			var v pdnsec.Verdict
			v, err = pdnsec.AnalyzeRisk(ctx, p, *risk)
			verdicts = []pdnsec.Verdict{v}
		} else {
			verdicts, err = pdnsec.AnalyzeProvider(ctx, p)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze %s: %v\n", p.Name, err)
			return 1
		}
		for _, v := range verdicts {
			status := "SAFE"
			switch {
			case !v.Applicable:
				status = "N/A"
			case v.Vulnerable:
				status = "VULNERABLE"
			}
			fmt.Printf("  %-22s %-11s %s\n", v.Risk, status, v.Detail)
		}
	}
	return 0
}
