// Command pdnlint runs the repo-specific static-analysis suite
// (internal/lint) over the module: detrand, ctxflow, mutexspan,
// errwrap, goleak, and obsnames enforce the determinism,
// context-plumbing, concurrency, and telemetry-naming invariants the
// parallel detector's byte-identical-tables guarantee depends on;
// peertaint and lockorder are the module-wide interprocedural checks
// guarding the privacy invariant and the declared lock hierarchy. See
// docs/lint.md.
//
// Usage:
//
//	pdnlint [-vet] [-only name,name] [-json] [-baseline FILE] [packages]
//
// Packages default to ./... resolved from the current directory. With
// -vet, `go vet` runs first on the same patterns so one command gates
// both suites. Findings print as file:line:col: [analyzer] message —
// or, with -json, as a JSON array (one object per finding, an empty
// array when clean) suitable as a CI artifact and as -baseline input.
//
// With -baseline FILE, the findings recorded in FILE (a prior -json
// report) are tolerated: only findings absent from the baseline print
// and fail the run. Baseline entries match on analyzer, file, and
// message — not line numbers — so unrelated edits above a tolerated
// finding don't resurrect it.
//
// Exit status: 0 clean (or every finding baselined), 1 findings,
// 2 usage or load error.
//
// Suppress an intentional finding with a mandatory reason:
//
//	//lint:ignore pdnlint/<analyzer> reason
//
// on the finding's line or the line directly above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"github.com/stealthy-peers/pdnsec/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is one finding in the -json report and -baseline format.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// key is the baseline identity of a finding. Line and column are
// deliberately excluded so edits above a baselined finding don't
// resurrect it.
func (f jsonFinding) key() string {
	return f.Analyzer + "|" + f.File + "|" + f.Message
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pdnlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vet := fs.Bool("vet", false, "also run `go vet` on the same packages first")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	baseline := fs.String("baseline", "", "tolerate findings recorded in this prior -json report")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(stderr, "pdnlint: %v\n", err)
		return 2
	}

	known := make(map[string]bool)
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "pdnlint: baseline: %v\n", err)
			return 2
		}
		var old []jsonFinding
		if err := json.Unmarshal(raw, &old); err != nil {
			fmt.Fprintf(stderr, "pdnlint: baseline %s: %v\n", *baseline, err)
			return 2
		}
		for _, f := range old {
			known[f.key()] = true
		}
	}

	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(stderr, "pdnlint: go vet failed\n")
			return 1
		}
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "pdnlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "pdnlint: %v\n", err)
		return 2
	}

	cwd, _ := os.Getwd()
	findings := make([]jsonFinding, 0, len(diags))
	baselined := 0
	for _, d := range diags {
		f := jsonFinding{
			Analyzer: d.Analyzer,
			File:     relTo(cwd, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		}
		if known[f.key()] {
			baselined++
			continue
		}
		findings = append(findings, f)
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "pdnlint: encode report: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}

	if len(findings) > 0 {
		fmt.Fprintf(stderr, "pdnlint: %d finding(s) across %d package(s)", len(findings), len(pkgs))
		if baselined > 0 {
			fmt.Fprintf(stderr, " (%d baselined)", baselined)
		}
		fmt.Fprintln(stderr)
		return 1
	}
	if baselined > 0 {
		fmt.Fprintf(stderr, "pdnlint: clean (%d baselined finding(s) remain)\n", baselined)
	}
	return 0
}

// relTo renders path relative to dir when it lies underneath it, which
// keeps -json reports and baseline files stable across checkouts.
func relTo(dir, path string) string {
	if dir == "" {
		return path
	}
	if rel, err := filepath.Rel(dir, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	names := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
