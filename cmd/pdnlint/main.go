// Command pdnlint runs the repo-specific static-analysis suite
// (internal/lint) over the module: detrand, ctxflow, mutexspan,
// errwrap, goleak, and obsnames enforce the determinism,
// context-plumbing, concurrency, and telemetry-naming invariants the
// parallel detector's byte-identical-tables guarantee depends on. See
// docs/lint.md.
//
// Usage:
//
//	pdnlint [-vet] [-only name,name] [packages]
//
// Packages default to ./... resolved from the current directory. With
// -vet, `go vet` runs first on the same patterns so one command gates
// both suites. Findings print as file:line:col: [analyzer] message and
// any finding makes the exit status 1 (2 = usage or load failure).
//
// Suppress an intentional finding with a mandatory reason:
//
//	//lint:ignore pdnlint/<analyzer> reason
//
// on the finding's line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"github.com/stealthy-peers/pdnsec/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pdnlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vet := fs.Bool("vet", false, "also run `go vet` on the same packages first")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(stderr, "pdnlint: %v\n", err)
		return 2
	}

	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(stderr, "pdnlint: go vet failed\n")
			return 1
		}
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "pdnlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "pdnlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "pdnlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: detrand, ctxflow, mutexspan, errwrap, goleak, obsnames)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
