package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The lockorder fixture package is the cheapest tree with guaranteed
// findings: it only pulls in sync, and seeds ten violations. Tests run
// with the package directory as cwd, so patterns are relative to
// cmd/pdnlint.
const (
	lockorderFixture = "../../internal/lint/testdata/src/lockorder"
	brokenFixture    = "../../internal/lint/testdata/src/brokenimport"
)

// runLint drives run() exactly as main does, capturing both streams.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestExitCleanIsZero(t *testing.T) {
	// detrand has nothing to say about the lockorder fixture.
	code, stdout, stderr := runLint(t, "-only", "detrand", lockorderFixture)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run produced output:\n%s", stdout)
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	code, stdout, stderr := runLint(t, "-only", "lockorder", lockorderFixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "[lockorder]") {
		t.Errorf("findings output missing analyzer tag:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("summary line missing from stderr:\n%s", stderr)
	}
}

func TestExitUsageErrorIsTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-only", "nonesuch", lockorderFixture},
		{"-baseline", filepath.Join(t.TempDir(), "absent.json"), lockorderFixture},
	} {
		if code, _, _ := runLint(t, args...); code != 2 {
			t.Errorf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

func TestUnknownAnalyzerNamesFullSuite(t *testing.T) {
	_, _, stderr := runLint(t, "-only", "nonesuch", lockorderFixture)
	for _, name := range []string{"peertaint", "lockorder", "detrand"} {
		if !strings.Contains(stderr, name) {
			t.Errorf("unknown-analyzer error does not list %q:\n%s", name, stderr)
		}
	}
}

func TestExitLoadErrorIsTwo(t *testing.T) {
	code, _, stderr := runLint(t, brokenFixture)
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "failed to load") {
		t.Errorf("load failure not surfaced:\n%s", stderr)
	}
}

func TestJSONReport(t *testing.T) {
	code, stdout, stderr := runLint(t, "-json", "-only", "lockorder", lockorderFixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("stdout is not a JSON finding array: %v\n%s", err, stdout)
	}
	if len(findings) == 0 {
		t.Fatal("JSON report is empty despite exit 1")
	}
	for _, f := range findings {
		if f.Analyzer != "lockorder" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	code, stdout, _ := runLint(t, "-json", "-only", "detrand", lockorderFixture)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want empty array", stdout)
	}
}

func TestBaselineTolerates(t *testing.T) {
	// A full -json report fed back as the baseline must turn the same
	// run clean.
	_, report, _ := runLint(t, "-json", "-only", "lockorder", lockorderFixture)
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte(report), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runLint(t, "-baseline", base, "-only", "lockorder", lockorderFixture)
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("baselined findings still printed:\n%s", stdout)
	}
	if !strings.Contains(stderr, "baselined") {
		t.Errorf("summary does not mention baselined findings:\n%s", stderr)
	}
}

func TestBaselineFailsOnNewFindings(t *testing.T) {
	// Dropping one entry from the baseline makes exactly that finding
	// "new" again: the run must fail and print only the new one.
	_, report, _ := runLint(t, "-json", "-only", "lockorder", lockorderFixture)
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(report), &findings); err != nil {
		t.Fatal(err)
	}
	if len(findings) < 2 {
		t.Fatalf("fixture yields %d findings, need at least 2", len(findings))
	}
	partial, err := json.Marshal(findings[1:])
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "partial.json")
	if err := os.WriteFile(base, partial, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runLint(t, "-baseline", base, "-only", "lockorder", lockorderFixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for a non-baselined finding", code)
	}
	if got := strings.Count(stdout, "[lockorder]"); got != 1 {
		t.Errorf("printed %d findings, want exactly the 1 new one:\n%s", got, stdout)
	}
	if !strings.Contains(stdout, findings[0].Message) {
		t.Errorf("new finding's message missing from output:\n%s", stdout)
	}
}

func TestBaselineRejectsMalformedFile(t *testing.T) {
	base := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(base, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runLint(t, "-baseline", base, lockorderFixture); code != 2 {
		t.Errorf("malformed baseline exit = %d, want 2", code)
	}
}
