// Command pdnscan runs the PDN customer detection pipeline (§III-C/D)
// over a generated corpus and prints Tables I-IV: potential and
// confirmed customers per provider, confirmed websites/apps with their
// reach, and the private PDN services discovered among generic WebRTC
// users.
//
// Usage:
//
//	pdnscan [-seed N] [-sites N] [-apps N] [-keys]
//	        [-workers N] [-checkpoint FILE] [-stats] [-trace FILE]
//
// -sites/-apps size the non-PDN background population; -keys also
// prints the API keys the §IV-B regex extraction recovered. The scan
// runs on the internal/dispatch engine: -workers sizes its pool
// (defaults to one per CPU and must be positive; the merged report is
// identical at any width),
// -checkpoint makes an interrupted scan resumable, and -stats prints
// the engine's job counters, latency quantiles (p50/p90/p99/max), and
// jobs/sec afterwards. -trace records every dispatch job as a span:
// ".jsonl" files get one trace event per line, anything else the Chrome
// trace-event JSON array that ui.perfetto.dev loads directly. Ctrl-C
// cancels the scan cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"

	"github.com/stealthy-peers/pdnsec"
	"github.com/stealthy-peers/pdnsec/internal/dispatch"
	"github.com/stealthy-peers/pdnsec/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pdnscan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "corpus generation seed")
	sites := fs.Int("sites", 0, "filler (non-PDN) sites to scan (0 = default 1500)")
	apps := fs.Int("apps", 0, "filler (non-PDN) apps to scan (0 = default 800)")
	keys := fs.Bool("keys", false, "print extracted API keys")
	workers := fs.Int("workers", runtime.NumCPU(), "scan worker pool size (must be positive)")
	checkpoint := fs.String("checkpoint", "", "resumable scan state file (empty = no checkpointing)")
	stats := fs.Bool("stats", false, "print dispatch counters and latency quantiles after the scan")
	traceFile := fs.String("trace", "", "write a Perfetto-loadable trace of the scan to FILE (.jsonl for line-delimited)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *sites < 0 || *apps < 0 {
		fmt.Fprintf(stderr, "pdnscan: -sites and -apps must be non-negative (got -sites=%d -apps=%d)\n", *sites, *apps)
		fs.Usage()
		return 2
	}
	if *workers <= 0 {
		fmt.Fprintf(stderr, "pdnscan: -workers must be positive (got -workers=%d)\n", *workers)
		fs.Usage()
		return 2
	}

	metrics := dispatch.NewMetrics()
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer(nil) // scan jobs run in process time
	}
	det, err := pdnsec.DetectCustomersParallel(ctx, *seed, *sites, *apps, pdnsec.DetectOptions{
		Workers:    *workers,
		Checkpoint: *checkpoint,
		Metrics:    metrics,
		Tracer:     tracer,
	})
	if err != nil {
		fmt.Fprintf(stderr, "pdnscan: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "scanned %d sites and %d APKs\n\n", det.Report.SitesScanned, det.Report.APKsScanned)
	fmt.Fprintln(stdout, det.RenderTableI())
	fmt.Fprintln(stdout, det.RenderTableII())
	fmt.Fprintln(stdout, det.RenderTableIII())
	fmt.Fprintln(stdout, det.RenderTableIV())
	fmt.Fprintln(stdout, det.RenderResourceSquattingWild())

	if *keys {
		fmt.Fprintf(stdout, "extracted API keys (%d):\n", len(det.Report.ExtractedKeys))
		for _, k := range det.Report.ExtractedKeys {
			fmt.Fprintf(stdout, "  %-12s %-28s %s\n", k.Provider, k.Domain, k.Key)
		}
	}
	if *stats {
		fmt.Fprintf(stdout, "dispatch: %s\n", metrics.Snapshot())
	}
	if tracer != nil {
		if err := tracer.WriteFile(*traceFile); err != nil {
			fmt.Fprintf(stderr, "pdnscan: trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace: %d events -> %s\n", tracer.Len(), *traceFile)
	}
	return 0
}
