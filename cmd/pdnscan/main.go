// Command pdnscan runs the PDN customer detection pipeline (§III-C/D)
// over a generated corpus and prints Tables I-IV: potential and
// confirmed customers per provider, confirmed websites/apps with their
// reach, and the private PDN services discovered among generic WebRTC
// users.
//
// Usage:
//
//	pdnscan [-seed N] [-sites N] [-apps N] [-keys]
//
// -sites/-apps size the non-PDN background population; -keys also
// prints the API keys the §IV-B regex extraction recovered.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/stealthy-peers/pdnsec"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 1, "corpus generation seed")
	sites := flag.Int("sites", 0, "filler (non-PDN) sites to scan (0 = default 1500)")
	apps := flag.Int("apps", 0, "filler (non-PDN) apps to scan (0 = default 800)")
	keys := flag.Bool("keys", false, "print extracted API keys")
	flag.Parse()

	det := pdnsec.DetectCustomers(*seed, *sites, *apps)
	fmt.Printf("scanned %d sites and %d APKs\n\n", det.Report.SitesScanned, det.Report.APKsScanned)
	fmt.Println(det.RenderTableI())
	fmt.Println(det.RenderTableII())
	fmt.Println(det.RenderTableIII())
	fmt.Println(det.RenderTableIV())
	fmt.Println(det.RenderResourceSquattingWild())

	if *keys {
		fmt.Printf("extracted API keys (%d):\n", len(det.Report.ExtractedKeys))
		for _, k := range det.Report.ExtractedKeys {
			fmt.Printf("  %-12s %-28s %s\n", k.Provider, k.Domain, k.Key)
		}
	}
	return 0
}
