package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsNegativeSitesAndApps(t *testing.T) {
	for _, args := range [][]string{
		{"-sites", "-1"},
		{"-apps", "-5"},
		{"-sites", "-3", "-apps", "-3"},
	} {
		var out, errOut strings.Builder
		if code := run(context.Background(), args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want usage error 2", args, code)
		}
		if !strings.Contains(errOut.String(), "must be non-negative") {
			t.Errorf("run(%v) stderr missing diagnosis:\n%s", args, errOut.String())
		}
		if !strings.Contains(errOut.String(), "Usage") {
			t.Errorf("run(%v) should print usage, got:\n%s", args, errOut.String())
		}
	}
}

func TestRunRejectsNonPositiveWorkers(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "0"},
		{"-workers", "-2"},
	} {
		var out, errOut strings.Builder
		if code := run(context.Background(), args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want usage error 2", args, code)
		}
		if !strings.Contains(errOut.String(), "-workers must be positive") {
			t.Errorf("run(%v) stderr missing diagnosis:\n%s", args, errOut.String())
		}
		if !strings.Contains(errOut.String(), "Usage") {
			t.Errorf("run(%v) should print usage, got:\n%s", args, errOut.String())
		}
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag exit = %d, want 2", code)
	}
}

func TestRunProducesTablesAndStats(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-sites", "60", "-apps", "30", "-workers", "4", "-stats",
		"-checkpoint", filepath.Join(t.TempDir(), "scan.ckpt")}
	if code := run(context.Background(), args, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"Table I", "Table II", "Table III", "Table IV", "dispatch: queued="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}

	// A second run over the same checkpoint resumes every job and
	// still prints identical tables.
	var out2, errOut2 strings.Builder
	if code := run(context.Background(), args, &out2, &errOut2); code != 0 {
		t.Fatalf("resumed run = %d, stderr:\n%s", code, errOut2.String())
	}
	if !strings.Contains(out2.String(), "resumed=") {
		t.Fatal("resumed run missing stats line")
	}
	tables := func(s string) string { return s[:strings.Index(s, "dispatch:")] }
	if tables(out.String()) != tables(out2.String()) {
		t.Fatal("resumed run diverged from the original tables")
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	if code := run(ctx, []string{"-sites", "100"}, &out, &errOut); code != 1 {
		t.Fatalf("cancelled run = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "context canceled") {
		t.Fatalf("stderr should mention cancellation:\n%s", errOut.String())
	}
}
