// Command pdnserve stands up a live PDN testbed — CDN, signaling
// server, STUN, and a swarm of viewer peers — and streams swarm and
// billing statistics while the peers watch. It is the quickest way to
// watch a PDN offload CDN traffic onto viewers.
//
// Usage:
//
//	pdnserve [-provider peer5] [-peers 4] [-segments 8] [-metrics 127.0.0.1:9100]
//
// With -metrics, the process serves live Prometheus metrics on
// /metrics, an expvar-style JSON dump on /debug/vars, and the standard
// pprof handlers under /debug/pprof/ for the run's duration.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/stealthy-peers/pdnsec"
	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/pdnclient"
)

func main() {
	os.Exit(run())
}

// profileNames lists every built-in provider profile for usage errors.
func profileNames() string {
	names := make([]string, 0, len(pdnsec.AllProfiles()))
	for _, p := range pdnsec.AllProfiles() {
		names = append(names, p.Name)
	}
	return strings.Join(names, ", ")
}

func run() int {
	providerName := flag.String("provider", "peer5", "provider profile to deploy")
	peers := flag.Int("peers", 4, "number of viewer peers")
	segments := flag.Int("segments", 8, "segments per viewer")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. 127.0.0.1:9100)")
	flag.Parse()

	var prof pdnsec.Provider
	found := false
	for _, p := range pdnsec.AllProfiles() {
		if p.Name == *providerName {
			prof, found = p, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "Usage: pdnserve [-provider NAME] [-peers N] [-segments N] [-metrics ADDR]\n")
		fmt.Fprintf(os.Stderr, "unknown provider %q (have: %s)\n", *providerName, profileNames())
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	reg := obs.NewRegistry()

	var metricsSrv *http.Server
	var metricsWG sync.WaitGroup
	if *metricsAddr != "" {
		l, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics listen: %v\n", err)
			return 1
		}
		metricsSrv = &http.Server{Handler: obs.DebugMux(reg)}
		metricsWG.Add(1)
		go func() {
			defer metricsWG.Done()
			_ = metricsSrv.Serve(l)
		}()
		defer func() {
			metricsSrv.Close()
			metricsWG.Wait()
		}()
		fmt.Printf("metrics: http://%s/metrics\n", l.Addr())
	}

	video := analyzer.SmallVideo("bbb", *segments, 256<<10)
	tb, err := pdnsec.NewTestbed(ctx, pdnsec.TestbedConfig{Profile: prof, Video: video, Obs: reg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "deploy: %v\n", err)
		return 1
	}
	defer tb.Close()
	// Swarm events stamp from the simulated network's clock, keeping the
	// trace aligned with what peers experienced.
	tb.Tracer = obs.NewTracer(tb.Net.Now)

	// Readiness for the -metrics /healthz endpoint: the signaling ring
	// must keep at least one live member, and the CDN origin must still
	// hold the asset it is serving.
	reg.RegisterHealth("signal_plane", func() error {
		if tb.Dep.Plane.Ring().Len() == 0 {
			return fmt.Errorf("signaling ring has no live members")
		}
		return nil
	})
	reg.RegisterHealth("cdn_origin", func() error {
		if _, err := video.SegmentData(video.Renditions[0].Name, 0); err != nil {
			return fmt.Errorf("origin lost its asset: %w", err)
		}
		return nil
	})

	if tb.Dep.Keys != nil {
		reg.GaugeFunc("customer_p2p_bytes", "P2P bytes metered to the customer", func() float64 {
			return float64(tb.Dep.Keys.Usage("customer.com").P2PBytes)
		})
		reg.GaugeFunc("customer_cdn_bytes", "CDN bytes metered to the customer", func() float64 {
			return float64(tb.Dep.Keys.Usage("customer.com").CDNBytes)
		})
	}

	fmt.Printf("deployed %s: signaling %v, stun %v, cdn %s\n",
		prof.Name, tb.Dep.SignalAddr, tb.Dep.STUNAddr, tb.CDNBase)

	countries := []string{"US", "GB", "DE", "FR", "CA", "JP", "BR", "IN"}
	var wg sync.WaitGroup
	stats := make([]pdnclient.Stats, *peers)
	for i := 0; i < *peers; i++ {
		host, err := tb.NewViewerHost(countries[i%len(countries)])
		if err != nil {
			fmt.Fprintf(os.Stderr, "viewer host: %v\n", err)
			return 1
		}
		cfg := tb.ViewerConfig(host, int64(i+1))
		cfg.MaxSegments = *segments
		cfg.Linger = 10 * time.Second
		peer, err := pdnclient.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "viewer: %v\n", err)
			return 1
		}
		wg.Add(1)
		go func(i int, peer *pdnclient.Peer) {
			defer wg.Done()
			st, err := peer.Run(ctx)
			if err != nil {
				fmt.Fprintf(os.Stderr, "peer %d: %v\n", i, err)
			}
			stats[i] = st
			peer.StopLinger()
		}(i, peer)
		// Stagger arrivals so later viewers find seeders.
		time.Sleep(150 * time.Millisecond)
	}
	wg.Wait()

	fmt.Printf("\n%-8s %-10s %-8s %-8s %-12s %-12s\n", "peer", "segments", "cdn", "p2p", "p2p-down-B", "p2p-up-B")
	var cdnTotal, p2pTotal int
	for i, st := range stats {
		fmt.Printf("p%-7d %-10d %-8d %-8d %-12d %-12d\n", i+1, st.SegmentsPlayed, st.FromCDN, st.FromP2P, st.P2PDownBytes, st.P2PUpBytes)
		cdnTotal += st.FromCDN
		p2pTotal += st.FromP2P
	}
	total := cdnTotal + p2pTotal
	if total > 0 {
		fmt.Printf("\nP2P offload: %d/%d segments (%.0f%%)\n", p2pTotal, total, float64(p2pTotal)/float64(total)*100)
	}
	fmt.Printf("CDN served %d bytes over %d requests\n", tb.CDN.BytesServed(""), tb.CDN.Requests(""))
	if tb.Dep.Keys != nil {
		u := tb.Dep.Keys.Usage("customer.com")
		fmt.Printf("customer metered: %d P2P bytes, %d CDN bytes, %d joins; bill $%.6f\n",
			u.P2PBytes, u.CDNBytes, u.Joins, tb.Dep.Keys.Cost("customer.com"))
	}
	return 0
}
