// Command pdntrace is the offline trace-stitching analyzer. Feed it the
// pdnsec-trace/1 JSONL files that viewers, signaling servers, and the
// CDN wrote during a run; it merges them, reassembles causal span trees
// by trace ID across process boundaries, and reports critical paths,
// per-hop latency percentiles, the slowest traces as trees, and the
// orphan/malformed accounting that says whether the stitching can be
// trusted.
//
// Usage:
//
//	go run ./cmd/pdntrace run.jsonl                      # human report
//	go run ./cmd/pdntrace -top 10 s0.jsonl s1.jsonl ...  # merge many files
//	go run ./cmd/pdntrace -json run.jsonl                # machine summary (CI)
//	go run ./cmd/pdntrace -chrome out.json run.jsonl     # Perfetto/chrome export
//	go run ./cmd/pdntrace -diff old.jsonl new.jsonl      # p99 regression gate
//
// -diff exits 1 when any hop type or span name regressed (new p99 above
// old p99 scaled by -threshold, plus a 100µs absolute floor); all other
// modes exit 1 only when no stitchable records were found at all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/stealthy-peers/pdnsec/internal/traceview"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pdntrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		topK      = fs.Int("top", 5, "how many slowest traces to render as trees")
		asJSON    = fs.Bool("json", false, "emit the machine-readable summary instead of the text report")
		chrome    = fs.String("chrome", "", "write a stitched Chrome/Perfetto trace to this file")
		diff      = fs.Bool("diff", false, "compare exactly two captures (old.jsonl new.jsonl) for p99 regressions")
		threshold = fs.Float64("threshold", 0.2, "relative p99 growth allowed by -diff before it counts as a regression")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: pdntrace [flags] trace.jsonl [trace.jsonl ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return 2
	}

	if *diff {
		if len(paths) != 2 {
			fmt.Fprintf(stderr, "pdntrace: -diff takes exactly two files (old new), got %d\n", len(paths))
			return 2
		}
		oldSum, err := summarizeFiles(paths[:1], *topK)
		if err != nil {
			fmt.Fprintf(stderr, "pdntrace: %v\n", err)
			return 2
		}
		newSum, err := summarizeFiles(paths[1:], *topK)
		if err != nil {
			fmt.Fprintf(stderr, "pdntrace: %v\n", err)
			return 2
		}
		d := traceview.Diff(oldSum, newSum, *threshold)
		d.WriteText(stdout)
		if len(d.Regressions) > 0 {
			return 1
		}
		return 0
	}

	recs, st, err := traceview.LoadFiles(paths)
	if err != nil {
		fmt.Fprintf(stderr, "pdntrace: %v\n", err)
		return 2
	}
	a := traceview.Stitch(recs, st)
	sum := traceview.Summarize(a, len(paths), *topK)

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintf(stderr, "pdntrace: %v\n", err)
			return 2
		}
		werr := traceview.WriteChrome(f, a)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "pdntrace: write %s: %v\n", *chrome, werr)
			return 2
		}
		fmt.Fprintf(stderr, "pdntrace: wrote chrome trace to %s\n", *chrome)
	}

	if *asJSON {
		if err := sum.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "pdntrace: %v\n", err)
			return 2
		}
	} else {
		if err := traceview.WriteText(stdout, a, sum); err != nil {
			fmt.Fprintf(stderr, "pdntrace: %v\n", err)
			return 2
		}
	}
	if sum.Spans == 0 {
		fmt.Fprintln(stderr, "pdntrace: no stitchable spans found")
		return 1
	}
	return 0
}

// summarizeFiles loads one capture and reduces it to the summary -diff
// compares.
func summarizeFiles(paths []string, topK int) (*traceview.Summary, error) {
	recs, st, err := traceview.LoadFiles(paths)
	if err != nil {
		return nil, err
	}
	a := traceview.Stitch(recs, st)
	return traceview.Summarize(a, len(paths), topK), nil
}
