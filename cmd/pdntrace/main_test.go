package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/obs"
)

type tickClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *tickClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

// writeCapture renders a deterministic two-process capture: the same
// seed always produces byte-identical span identifiers, which is what
// the -diff acceptance leans on.
func writeCapture(t *testing.T, path string, seed int64) {
	t.Helper()
	set := obs.NewTraceSet((&tickClock{t: time.Unix(9000, 0)}).now, seed)
	client := set.Tracer("client")
	server := set.Tracer("s0")
	for i := 0; i < 4; i++ {
		ctx, root := client.StartSpan(context.Background(), "segment", obs.A("idx", i))
		_, req := client.StartSpan(ctx, "p2p_request")
		server.StartSpanRemote(req.TraceContext().String(), "p2p_serve").End()
		req.End()
		root.End()
	}
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestRunTextAndJSON(t *testing.T) {
	dir := t.TempDir()
	capture := filepath.Join(dir, "run.jsonl")
	writeCapture(t, capture, 1)

	var out, errb strings.Builder
	if code := run([]string{capture}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"latency by hop type", "segment", "p2p_serve", "0 orphan spans"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if code := run([]string{"-json", capture}, &out, &errb); code != 0 {
		t.Fatalf("-json exit %d: %s", code, errb.String())
	}
	var sum map[string]any
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("-json output not JSON: %v", err)
	}
	if sum["orphan_spans"].(float64) != 0 || sum["segment_traces"].(float64) != 4 {
		t.Fatalf("summary fields wrong: %v", sum)
	}
}

func TestRunChromeExport(t *testing.T) {
	dir := t.TempDir()
	capture := filepath.Join(dir, "run.jsonl")
	chrome := filepath.Join(dir, "run.json")
	writeCapture(t, capture, 1)
	var out, errb strings.Builder
	if code := run([]string{"-chrome", chrome, "-json", capture}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(raw, &arr); err != nil {
		t.Fatalf("chrome export not a JSON array: %v", err)
	}
	if len(arr) == 0 {
		t.Fatal("chrome export empty")
	}
}

// TestDiffSameSeedNoRegressions is the regression-gate acceptance: two
// captures from the same seed must diff clean with exit 0.
func TestDiffSameSeedNoRegressions(t *testing.T) {
	dir := t.TempDir()
	oldF := filepath.Join(dir, "old.jsonl")
	newF := filepath.Join(dir, "new.jsonl")
	writeCapture(t, oldF, 7)
	writeCapture(t, newF, 7)
	var out, errb strings.Builder
	if code := run([]string{"-diff", oldF, newF}, &out, &errb); code != 0 {
		t.Fatalf("same-seed diff exit %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "no p99 regressions") {
		t.Fatalf("diff verdict missing:\n%s", out.String())
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	oldF := filepath.Join(dir, "old.jsonl")
	newF := filepath.Join(dir, "new.jsonl")
	writeCapture(t, oldF, 7)

	// The new capture is the same workload on a clock ticking in 50ms
	// steps instead of 1ms — every hop's p99 inflates far past the
	// 20% + 100µs allowance.
	slow := &tickClock{t: time.Unix(9000, 0)}
	slowNow := func() time.Time {
		slow.mu.Lock()
		defer slow.mu.Unlock()
		slow.t = slow.t.Add(50 * time.Millisecond)
		return slow.t
	}
	slowSet := obs.NewTraceSet(slowNow, 7)
	sc := slowSet.Tracer("client")
	ss := slowSet.Tracer("s0")
	for i := 0; i < 4; i++ {
		ctx, root := sc.StartSpan(context.Background(), "segment", obs.A("idx", i))
		_, req := sc.StartSpan(ctx, "p2p_request")
		ss.StartSpanRemote(req.TraceContext().String(), "p2p_serve").End()
		req.End()
		root.End()
	}
	if err := slowSet.WriteFile(newF); err != nil {
		t.Fatal(err)
	}

	var out, errb strings.Builder
	if code := run([]string{"-diff", oldF, newF}, &out, &errb); code != 1 {
		t.Fatalf("regressed diff exit %d, want 1:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("no REGRESSION line:\n%s", out.String())
	}
}

func TestRunBadUsage(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"-diff", "only-one.jsonl"}, &out, &errb); code != 2 {
		t.Fatalf("-diff with one file exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &out, &errb); code != 2 {
		t.Fatalf("missing file exit %d, want 2", code)
	}
}
