// Command swarmload drives a simulated PDN deployment with thousands of
// peers — the signaling-plane scale test. It ramps a virtual-peer tier
// speaking the real signal protocol, churns a fraction out, runs full
// pdnclient viewers alongside, and checks the swarm-scale invariants:
// bounded match latency, zero lost relay messages, and a sane
// CDN-fallback ratio. The seed is the reproduction.
//
// Usage:
//
//	go run ./cmd/swarmload -swarms 4 -peers 2500 -seed 1
//	go run ./cmd/swarmload -swarms 2 -peers 500 -out BENCH_swarm.json -merge joinmatch.json
//
// With -out it writes the BENCH_swarm.json benchmark baseline; -merge
// folds in the join_match section that the signal package's
// TestJoinMatchRegression emits via PDNSEC_BENCH_OUT.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/swarmload"
)

// benchFile is the BENCH_swarm.json layout. The join_match section is
// produced by the signal package's regression test and passes through
// here opaquely.
type benchFile struct {
	Schema    string            `json:"schema"`
	JoinMatch json.RawMessage   `json:"join_match,omitempty"`
	Swarmload *swarmload.Report `json:"swarmload"`
}

const schemaName = "pdnsec-bench-swarm/1"

func main() {
	var (
		swarms      = flag.Int("swarms", 4, "number of load swarms")
		peers       = flag.Int("peers", 2500, "virtual peers per swarm")
		seed        = flag.Int64("seed", 1, "seed for matching, arrivals, and churn")
		shards      = flag.Int("shards", 16, "signaling-server shard count")
		churn       = flag.Float64("churn", 0.2, "fraction of virtual peers that leave mid-run (negative = none)")
		rounds      = flag.Int("rounds", 2, "relay waves per survivor")
		full        = flag.Int("full", 4, "full pdnclient viewers (negative = none)")
		segments    = flag.Int("segments", 6, "VOD length the full viewers play")
		p99max      = flag.Duration("p99max", 750*time.Millisecond, "match-latency p99 budget")
		fallbackmax = flag.Float64("fallbackmax", 0.75, "CDN-fallback ratio cap")
		timeout     = flag.Duration("timeout", 10*time.Minute, "whole-run deadline")
		out         = flag.String("out", "", "write BENCH_swarm.json-shaped results to this file")
		merge       = flag.String("merge", "", "join_match JSON (from PDNSEC_BENCH_OUT) to fold into -out")
	)
	flag.Parse()

	fullViewers := *full
	if fullViewers < 0 {
		fullViewers = -1 // Config uses negative for "none"
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	fmt.Printf("swarmload: swarms=%d peers=%d seed=%d shards=%d churn=%.2f\n",
		*swarms, *peers, *seed, *shards, *churn)
	rep, err := swarmload.Run(ctx, swarmload.Config{
		Swarms:           *swarms,
		PeersPerSwarm:    *peers,
		Seed:             *seed,
		Shards:           *shards,
		Churn:            *churn,
		Rounds:           *rounds,
		FullViewers:      fullViewers,
		Segments:         *segments,
		MatchP99Max:      *p99max,
		MaxFallbackRatio: *fallbackmax,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "swarmload: harness failure (seed=%d): %v\n", *seed, err)
		os.Exit(2)
	}

	file := benchFile{Schema: schemaName, Swarmload: rep}
	if *merge != "" {
		raw, err := os.ReadFile(*merge)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swarmload: read -merge file: %v\n", err)
			os.Exit(2)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "swarmload: -merge file %s is not valid JSON\n", *merge)
			os.Exit(2)
		}
		file.JoinMatch = json.RawMessage(raw)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "swarmload: marshal report: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "swarmload: write %s: %v\n", *out, err)
			os.Exit(2)
		}
	}
	os.Stdout.Write(data)

	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "swarmload: VIOLATION "+v)
		}
		fmt.Fprintf(os.Stderr, "swarmload: rerun: go run ./cmd/swarmload -swarms %d -peers %d -seed %d -shards %d\n",
			*swarms, *peers, *seed, *shards)
		os.Exit(1)
	}
	fmt.Println("swarmload: all invariants held")
}
