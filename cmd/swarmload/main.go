// Command swarmload drives a simulated PDN deployment with thousands of
// peers — the signaling-plane scale test. It ramps a virtual-peer tier
// speaking the real signal protocol, churns a fraction out, runs full
// pdnclient viewers alongside, and checks the swarm-scale invariants:
// bounded match latency, zero lost relay messages, and a sane
// CDN-fallback ratio. The seed is the reproduction.
//
// Usage:
//
//	go run ./cmd/swarmload -swarms 4 -peers 2500 -seed 1
//	go run ./cmd/swarmload -swarms 2 -peers 500 -out BENCH_swarm.json -merge joinmatch.json
//	go run ./cmd/swarmload -swarms 40 -peers 2500 -servers 3 -out BENCH_federation.json
//
// With -out it writes the BENCH_swarm.json benchmark baseline; -merge
// folds in the join_match section that the signal package's
// TestJoinMatchRegression emits via PDNSEC_BENCH_OUT. With -servers > 1
// the run is federated and -out writes the BENCH_federation.json
// layout instead (the report lands in the swarmload_100k or
// swarmload_10k section by size; -merge preserves the other section
// from a previous baseline).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/population"
	"github.com/stealthy-peers/pdnsec/internal/swarmload"
)

// benchFile is the BENCH_swarm.json layout. The join_match section is
// produced by the signal package's regression test and passes through
// here opaquely.
type benchFile struct {
	Schema    string            `json:"schema"`
	JoinMatch json.RawMessage   `json:"join_match,omitempty"`
	Swarmload *swarmload.Report `json:"swarmload"`
}

// fedBenchFile is the BENCH_federation.json layout: one section per
// committed scale point, so the 100k baseline and the CI-sized 10k
// baseline live in one artifact.
type fedBenchFile struct {
	Schema       string            `json:"schema"`
	Swarmload100 *swarmload.Report `json:"swarmload_100k,omitempty"`
	Swarmload10  *swarmload.Report `json:"swarmload_10k,omitempty"`
}

// advBenchFile is the BENCH_adversarial.json layout a -adversaries run
// writes: the report carries the adversarial band's fairness index and
// Sybil slot share alongside the usual swarm-scale numbers.
type advBenchFile struct {
	Schema      string            `json:"schema"`
	Mix         string            `json:"mix"`
	Adversarial *swarmload.Report `json:"adversarial"`
}

const (
	schemaName    = "pdnsec-bench-swarm/1"
	fedSchemaName = "pdnsec-bench-federation/1"
	advSchemaName = "pdnsec-bench-adversarial/1"
	// fed100kFloor is the virtual-peer count at which a federated run
	// counts as the 100k baseline rather than the smoke-sized one.
	fed100kFloor = 100000
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("swarmload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		swarms      = fs.Int("swarms", 4, "number of load swarms (must be >= 1)")
		peers       = fs.Int("peers", 2500, "virtual peers per swarm (must be >= 1)")
		seed        = fs.Int64("seed", 1, "seed for matching, arrivals, and churn")
		shards      = fs.Int("shards", 16, "signaling-server shard count")
		servers     = fs.Int("servers", 1, "federated signaling servers (must be >= 1; 1 = classic single server)")
		churn       = fs.Float64("churn", 0.2, "fraction of virtual peers that leave mid-run (negative = none)")
		rounds      = fs.Int("rounds", 2, "relay waves per survivor")
		full        = fs.Int("full", 4, "full pdnclient viewers (negative = none)")
		segments    = fs.Int("segments", 6, "VOD length the full viewers play")
		p99max      = fs.Duration("p99max", 750*time.Millisecond, "match-latency p99 budget")
		fallbackmax = fs.Float64("fallbackmax", 0.75, "CDN-fallback ratio cap")
		timeout     = fs.Duration("timeout", 10*time.Minute, "whole-run deadline")
		adversaries = fs.String("adversaries", "", `population mix joining the viewer swarm (e.g. "free_rider:6,sybil:24"); with -out the adversarial BENCH layout is written`)
		out         = fs.String("out", "", "write benchmark-baseline results to this file")
		merge       = fs.String("merge", "", "prior baseline JSON to fold into -out (join_match file, or a BENCH_federation.json when -servers > 1)")
		traceOut    = fs.String("trace", "", "write merged pdnsec-trace JSONL for every deployed process to this file (analyze with pdntrace)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *swarms < 1 || *peers < 1 {
		fmt.Fprintf(stderr, "swarmload: -swarms and -peers must be >= 1 (got -swarms=%d -peers=%d)\n", *swarms, *peers)
		fs.Usage()
		return 2
	}
	if *servers < 1 {
		fmt.Fprintf(stderr, "swarmload: -servers must be >= 1 (got -servers=%d)\n", *servers)
		fs.Usage()
		return 2
	}
	mix, err := population.ParseMix(*adversaries)
	if err != nil {
		fmt.Fprintf(stderr, "swarmload: -adversaries: %v\n", err)
		fs.Usage()
		return 2
	}

	fullViewers := *full
	if fullViewers < 0 {
		fullViewers = -1 // Config uses negative for "none"
	}
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()
	fmt.Fprintf(stdout, "swarmload: swarms=%d peers=%d seed=%d shards=%d servers=%d churn=%.2f\n",
		*swarms, *peers, *seed, *shards, *servers, *churn)
	var traces *obs.TraceSet
	if *traceOut != "" {
		traces = obs.NewTraceSet(nil, *seed)
	}
	rep, err := swarmload.Run(ctx, swarmload.Config{
		Swarms:           *swarms,
		PeersPerSwarm:    *peers,
		Traces:           traces,
		Seed:             *seed,
		Shards:           *shards,
		Servers:          *servers,
		Churn:            *churn,
		Rounds:           *rounds,
		FullViewers:      fullViewers,
		Segments:         *segments,
		MatchP99Max:      *p99max,
		MaxFallbackRatio: *fallbackmax,
		Adversaries:      mix,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		},
	})
	// Trace JSONL is written even for failed runs — a partial capture of
	// a broken run is exactly what pdntrace exists to dissect.
	if traces != nil {
		if werr := traces.WriteFile(*traceOut); werr != nil {
			fmt.Fprintf(stderr, "swarmload: write %s: %v\n", *traceOut, werr)
			return 2
		}
		fmt.Fprintf(stdout, "swarmload: wrote trace JSONL for %d processes to %s\n", traces.Len(), *traceOut)
	}
	if err != nil {
		fmt.Fprintf(stderr, "swarmload: harness failure (seed=%d): %v\n", *seed, err)
		return 2
	}

	var data []byte
	switch {
	case len(mix) > 0:
		data, err = marshal(advBenchFile{Schema: advSchemaName, Mix: mix.String(), Adversarial: rep})
	case *servers > 1:
		data, err = marshalFed(rep, *merge)
	default:
		data, err = marshalSwarm(rep, *merge)
	}
	if err != nil {
		fmt.Fprintf(stderr, "swarmload: %v\n", err)
		return 2
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "swarmload: write %s: %v\n", *out, err)
			return 2
		}
	}
	stdout.Write(data)

	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintln(stderr, "swarmload: VIOLATION "+v)
		}
		rerun := fmt.Sprintf("go run ./cmd/swarmload -swarms %d -peers %d -seed %d -shards %d -servers %d",
			*swarms, *peers, *seed, *shards, *servers)
		if len(mix) > 0 {
			rerun += fmt.Sprintf(" -adversaries %q -fallbackmax %v", mix, *fallbackmax)
		}
		fmt.Fprintln(stderr, "swarmload: rerun: "+rerun)
		return 1
	}
	fmt.Fprintln(stdout, "swarmload: all invariants held")
	return 0
}

// marshalSwarm renders the single-server BENCH_swarm.json layout,
// folding in a join_match section when -merge names one.
func marshalSwarm(rep *swarmload.Report, merge string) ([]byte, error) {
	file := benchFile{Schema: schemaName, Swarmload: rep}
	if merge != "" {
		raw, err := os.ReadFile(merge)
		if err != nil {
			return nil, fmt.Errorf("read -merge file: %w", err)
		}
		if !json.Valid(raw) {
			return nil, fmt.Errorf("-merge file %s is not valid JSON", merge)
		}
		file.JoinMatch = json.RawMessage(raw)
	}
	return marshal(file)
}

// marshalFed renders the BENCH_federation.json layout. The fresh
// report lands in the section its scale selects; when -merge names a
// previous baseline, the other section is carried over so one run
// never erases the other scale point.
func marshalFed(rep *swarmload.Report, merge string) ([]byte, error) {
	file := fedBenchFile{Schema: fedSchemaName}
	if merge != "" {
		raw, err := os.ReadFile(merge)
		if err != nil {
			return nil, fmt.Errorf("read -merge file: %w", err)
		}
		var prev fedBenchFile
		if err := json.Unmarshal(raw, &prev); err != nil {
			return nil, fmt.Errorf("-merge file %s: %w", merge, err)
		}
		if prev.Schema != fedSchemaName {
			return nil, fmt.Errorf("-merge file %s has schema %q, want %q", merge, prev.Schema, fedSchemaName)
		}
		file = prev
		file.Schema = fedSchemaName
	}
	if rep.VirtualPeers >= fed100kFloor {
		file.Swarmload100 = rep
	} else {
		file.Swarmload10 = rep
	}
	return marshal(file)
}

func marshal(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("marshal report: %w", err)
	}
	return append(data, '\n'), nil
}
