package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadCounts(t *testing.T) {
	for _, tc := range []struct {
		args []string
		diag string
	}{
		{[]string{"-swarms", "0"}, "-swarms and -peers must be >= 1"},
		{[]string{"-peers", "-5"}, "-swarms and -peers must be >= 1"},
		{[]string{"-swarms", "-1", "-peers", "0"}, "-swarms and -peers must be >= 1"},
		{[]string{"-servers", "0"}, "-servers must be >= 1"},
		{[]string{"-servers", "-3"}, "-servers must be >= 1"},
	} {
		var out, errOut strings.Builder
		if code := run(context.Background(), tc.args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want usage error 2", tc.args, code)
		}
		if !strings.Contains(errOut.String(), tc.diag) {
			t.Errorf("run(%v) stderr missing diagnosis %q:\n%s", tc.args, tc.diag, errOut.String())
		}
		if !strings.Contains(errOut.String(), "Usage") {
			t.Errorf("run(%v) should print usage, got:\n%s", tc.args, errOut.String())
		}
	}
}

func TestRunRejectsBadAdversaryMix(t *testing.T) {
	for _, tc := range []struct {
		mix  string
		diag string
	}{
		{"gremlin:4", "unknown behavior"},
		{"sybil:0", "positive count"},
		{"sybil", "behavior:count"},
	} {
		var out, errOut strings.Builder
		args := []string{"-adversaries", tc.mix}
		if code := run(context.Background(), args, &out, &errOut); code != 2 {
			t.Errorf("run(-adversaries %q) = %d, want usage error 2", tc.mix, code)
		}
		if !strings.Contains(errOut.String(), "-adversaries") || !strings.Contains(errOut.String(), tc.diag) {
			t.Errorf("run(-adversaries %q) stderr missing diagnosis %q:\n%s", tc.mix, tc.diag, errOut.String())
		}
		if !strings.Contains(errOut.String(), "Usage") {
			t.Errorf("run(-adversaries %q) should print usage, got:\n%s", tc.mix, errOut.String())
		}
	}
}

// TestRunAdversarialWritesBaseline runs a tiny adversarial load and
// checks the BENCH_adversarial.json layout end to end: the adversarial
// schema wins over the single-server one whenever a mix is set, the mix
// string round-trips, and the report carries the band's accounting.
func TestRunAdversarialWritesBaseline(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "adv.json")

	var out, errOut strings.Builder
	args := []string{"-swarms", "1", "-peers", "16", "-seed", "1", "-shards", "2",
		"-full", "2", "-segments", "3", "-churn", "-1", "-rounds", "1",
		"-adversaries", "free_rider:1,sybil:3", "-fallbackmax", "1", "-out", outFile}
	if code := run(context.Background(), args, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s\nstdout:\n%s", code, errOut.String(), out.String())
	}
	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var file advBenchFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	if file.Schema != advSchemaName {
		t.Errorf("schema = %q, want %q", file.Schema, advSchemaName)
	}
	if file.Mix != "free_rider:1,sybil:3" {
		t.Errorf("mix = %q, want the parsed flag round-tripped", file.Mix)
	}
	if file.Adversarial == nil {
		t.Fatalf("adversarial section missing: %s", raw)
	}
	if file.Adversarial.AdversaryCounts["sybil"] != 3 || file.Adversarial.AdversaryCounts["free_rider"] != 1 {
		t.Errorf("adversary counts = %v, want free_rider:1 sybil:3", file.Adversarial.AdversaryCounts)
	}
	if file.Adversarial.SybilPeakIdentities != 3 {
		t.Errorf("sybil peak identities = %d, want the 3-identity mill", file.Adversarial.SybilPeakIdentities)
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag exit = %d, want 2", code)
	}
}

// TestRunFederatedWritesFedBaseline runs a tiny federated load and
// checks the BENCH_federation.json layout end to end, including the
// -merge path preserving the section the fresh run does not produce.
func TestRunFederatedWritesFedBaseline(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "fed.json")

	var out, errOut strings.Builder
	args := []string{"-swarms", "1", "-peers", "4", "-servers", "2", "-seed", "1",
		"-shards", "2", "-full", "-1", "-churn", "-1", "-rounds", "1", "-out", outFile}
	if code := run(context.Background(), args, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s\nstdout:\n%s", code, errOut.String(), out.String())
	}
	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var file fedBenchFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatal(err)
	}
	if file.Schema != fedSchemaName {
		t.Errorf("schema = %q, want %q", file.Schema, fedSchemaName)
	}
	if file.Swarmload10 == nil || file.Swarmload100 != nil {
		t.Fatalf("4-peer run must land in swarmload_10k only: %s", raw)
	}
	if file.Swarmload10.Servers != 2 {
		t.Errorf("report servers = %d, want 2", file.Swarmload10.Servers)
	}

	// Seed the merge source with a fake 100k section and re-run: the
	// fresh 10k report must replace its section without erasing the
	// other scale point.
	prev := file
	fake := *file.Swarmload10
	fake.VirtualPeers = 123456
	prev.Swarmload100 = &fake
	seeded, err := json.Marshal(prev)
	if err != nil {
		t.Fatal(err)
	}
	mergeFile := filepath.Join(dir, "prev.json")
	if err := os.WriteFile(mergeFile, seeded, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	args = append(args, "-merge", mergeFile)
	if code := run(context.Background(), args, &out, &errOut); code != 0 {
		t.Fatalf("merge run = %d, stderr:\n%s", code, errOut.String())
	}
	raw, err = os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var merged fedBenchFile
	if err := json.Unmarshal(raw, &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Swarmload100 == nil || merged.Swarmload100.VirtualPeers != 123456 {
		t.Errorf("merge dropped the 100k section: %s", raw)
	}
	if merged.Swarmload10 == nil || merged.Swarmload10.VirtualPeers != 4 {
		t.Errorf("merge lost the fresh 10k report: %s", raw)
	}
}

func TestRunMergeRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	mergeFile := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(mergeFile, []byte(`{"schema":"pdnsec-bench-swarm/1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	args := []string{"-swarms", "1", "-peers", "4", "-servers", "2", "-seed", "1",
		"-shards", "2", "-full", "-1", "-churn", "-1", "-rounds", "1",
		"-out", filepath.Join(dir, "fed.json"), "-merge", mergeFile}
	if code := run(context.Background(), args, &out, &errOut); code != 2 {
		t.Fatalf("wrong-schema merge exit = %d, want 2\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "schema") {
		t.Errorf("stderr missing schema diagnosis:\n%s", errOut.String())
	}
}
