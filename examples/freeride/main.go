// Freeride: steal a PDN customer's API key (as trivially as reading
// their page source), test the §IV-B cross-domain and domain-spoofing
// attacks against all three public provider designs, then free-ride a
// vulnerable provider with attacker peers and read the victim's bill.
//
//	go run ./examples/freeride
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/stealthy-peers/pdnsec"
	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/attack"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "freeride: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	fmt.Println("--- peer authentication tests (stolen key) ---")
	for _, prof := range pdnsec.PublicProfiles() {
		tb, err := pdnsec.NewTestbed(ctx, pdnsec.TestbedConfig{Profile: prof, CustomerDomain: "victim.com"})
		if err != nil {
			return err
		}
		attacker, err := tb.NewViewerHost("US")
		if err != nil {
			tb.Close()
			return err
		}
		proxy, err := tb.NewViewerHost("US")
		if err != nil {
			tb.Close()
			return err
		}
		cross, err := attack.CrossDomain(ctx, attacker, tb.Dep.SignalAddr, tb.Key)
		if err != nil {
			tb.Close()
			return err
		}
		// Enforce the allowlist (as the paper did) before spoofing.
		if err := tb.Dep.Keys.SetAllowlist(tb.Key, []string{"victim.com"}); err != nil {
			tb.Close()
			return err
		}
		spoof, err := attack.DomainSpoof(ctx, attacker, proxy, tb.Dep.SignalAddr, tb.Key, "victim.com")
		if err != nil {
			tb.Close()
			return err
		}
		fmt.Printf("%-12s cross-domain: %-5v  domain-spoofing (allowlist on): %v\n", prof.Name, cross, spoof)
		tb.Close()
	}

	fmt.Println("\n--- free-riding traffic generation against peer5 ---")
	video := analyzer.SmallVideo("attacker-movie", 6, 128<<10)
	tb, err := pdnsec.NewTestbed(ctx, pdnsec.TestbedConfig{
		Profile:        pdnsec.Peer5(),
		Video:          video,
		CustomerDomain: "victim.com",
	})
	if err != nil {
		return err
	}
	defer tb.Close()

	hosts := make([]*netsim.Host, 4)
	for i := range hosts {
		h, err := tb.NewViewerHost("US")
		if err != nil {
			return err
		}
		hosts[i] = h
	}
	before := tb.Dep.Keys.Cost("victim.com")
	res, err := attack.GenerateTraffic(ctx, attack.TrafficParams{
		Network:         tb.Net,
		SignalAddr:      tb.Dep.SignalAddr,
		STUNAddr:        tb.Dep.STUNAddr,
		CDNBase:         tb.CDNBase,
		StolenKey:       tb.Key,
		Origin:          "https://freerider.evil",
		Video:           video.ID,
		Rendition:       "360p",
		Hosts:           hosts,
		SegmentsPerPeer: video.Segments,
	})
	if err != nil {
		return err
	}
	// Let the server digest the final stats reports.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && tb.Dep.Keys.Usage("victim.com").P2PBytes < res.P2PBytes {
		time.Sleep(10 * time.Millisecond)
	}
	u := tb.Dep.Keys.Usage("victim.com")
	fmt.Printf("attacker streamed its own video under the victim's key: %d P2P segments, %d bytes\n",
		res.P2PSegments, res.P2PBytes)
	fmt.Printf("victim's meter: %d P2P bytes, %d joins — bill went from $%.6f to $%.6f\n",
		u.P2PBytes, u.Joins, before, tb.Dep.Keys.Cost("victim.com"))
	fmt.Println("scaled to the paper's pricing ($500 per 50TB), a sustained attack costs the victim real money")
	return nil
}
