// Hardened: deploy a PDN with every §V mitigation composed — disposable
// video-binding JWTs (§V-A), peer-assisted integrity checking (§V-B),
// geo-constrained matching and an upload budget (§V-C) — then replay the
// paper's attacks against it and watch each one fail while honest
// viewers stream normally.
//
//	go run ./examples/hardened
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/stealthy-peers/pdnsec"
	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/attack"
	"github.com/stealthy-peers/pdnsec/internal/defense"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/mitm"
	"github.com/stealthy-peers/pdnsec/internal/provider"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hardened: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	video := analyzer.SmallVideo("premium-stream", 6, 64<<10)
	checker, err := defense.NewIMChecker(defense.IMConfig{
		Reporters: 2,
		FetchCDN: func(key media.SegmentKey) ([]byte, error) {
			return video.SegmentData(key.Rendition, key.Index)
		},
	})
	if err != nil {
		return err
	}
	tb, err := pdnsec.NewTestbed(ctx, pdnsec.TestbedConfig{
		Profile: provider.Hardened(),
		Video:   video,
		Options: provider.Options{IM: checker, Seed: 7},
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	fmt.Println("deployed hardened PDN: JWT auth + IM checking + geo matching + upload budget")

	// 1. Honest streaming still works: two US viewers share P2P.
	hostA, err := tb.NewViewerHost("US")
	if err != nil {
		return err
	}
	_, stopA, err := tb.Seeder(ctx, tb.ViewerConfig(hostA, 1), video.Segments)
	if err != nil {
		return err
	}
	hostB, err := tb.NewViewerHost("US")
	if err != nil {
		return err
	}
	stB, err := tb.RunViewer(ctx, tb.ViewerConfig(hostB, 2))
	if err != nil {
		return err
	}
	fmt.Printf("honest viewer B: %d segments (%d P2P, %d CDN) — the first pair pays the\n",
		stB.SegmentsPlayed, stB.FromP2P, stB.FromCDN)
	fmt.Println("  IM bootstrap (unverifiable P2P segments fall back to CDN, which files reports)")

	// With SIMs now established by A and B's reports, a third viewer
	// verifies P2P segments immediately.
	hostC, err := tb.NewViewerHost("US")
	if err != nil {
		return err
	}
	stC, err := tb.RunViewer(ctx, tb.ViewerConfig(hostC, 3))
	if err != nil {
		return err
	}
	stopA()
	fmt.Printf("honest viewer C: %d segments (%d P2P, %d CDN) — verified P2P once SIMs exist\n",
		stC.SegmentsPlayed, stC.FromP2P, stC.FromCDN)

	// 2. Free riding: a stolen viewer JWT is useless for the attacker's
	// own stream (video binding) and dies quickly anyway (TTL + usage
	// limit).
	stolen, err := tb.Dep.IssueJWT("victim-viewer", tb.CDNBase+"/v/premium-stream/master.m3u8")
	if err != nil {
		return err
	}
	atkHost, err := tb.NewViewerHost("US")
	if err != nil {
		return err
	}
	ok, err := attack.JoinProbe(ctx, atkHost, tb.Dep.SignalAddr, signal.JoinRequest{
		Token: stolen, VideoURL: "https://attacker/own.m3u8",
		Video: "attacker-stream", Rendition: "360p",
	})
	if err != nil {
		return err
	}
	fmt.Printf("free riding with a stolen JWT: accepted=%v (video binding rejects it)\n", ok)

	// 3. Segment pollution: the fake-CDN attack launches, but victims
	// verify SIMs and fall back to the CDN.
	fakeHost, err := tb.Net.NewHost(analyzer.FakeCDNIP())
	if err != nil {
		return err
	}
	malHost, err := tb.NewViewerHost("US")
	if err != nil {
		return err
	}
	malJWT, err := tb.Dep.IssueJWT("malicious", tb.CDNBase+"/v/premium-stream/master.m3u8")
	if err != nil {
		return err
	}
	atk, err := attack.LaunchPollution(ctx, attack.PollutionParams{
		Network:       tb.Net,
		SignalAddr:    tb.Dep.SignalAddr,
		STUNAddr:      tb.Dep.STUNAddr,
		RealCDNBase:   tb.CDNBase,
		FakeCDNHost:   fakeHost,
		MaliciousHost: malHost,
		Token:         malJWT,
		VideoURL:      tb.CDNBase + "/v/premium-stream/master.m3u8",
		Video:         video.ID,
		Rendition:     "360p",
		Pollute:       mitm.SameSizePollution([]int{3, 4}),
		Segments:      video.Segments,
	})
	if err != nil {
		return err
	}
	defer atk.Close()

	victimHost, err := tb.NewViewerHost("US")
	if err != nil {
		return err
	}
	vcfg := tb.ViewerConfig(victimHost, 9)
	polluted := 0
	vcfg.OnSegment = func(key media.SegmentKey, data []byte, source string) {
		if !video.Verify(key.Rendition, key.Index, data) {
			polluted++
		}
	}
	stV, err := tb.RunViewer(ctx, vcfg)
	if err != nil {
		return err
	}
	conflicts, fetches, banned := checker.Stats()
	fmt.Printf("pollution attack: victim played %d polluted segments (%d rejected by IM checks)\n",
		polluted, stV.IMRejected)
	fmt.Printf("IM checker: %d conflicts arbitrated via %d CDN fetches, %d peers blacklisted\n",
		conflicts, fetches, banned)

	if !ok && polluted == 0 {
		fmt.Println("\nresult: every attack from the paper fails against the hardened deployment")
	}
	return nil
}
