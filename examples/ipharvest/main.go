// IPHarvest: sit a controlled peer in a live channel the way §IV-D
// did, harvest every viewer address the PDN exposes to it, geolocate
// and classify them — then show the two mitigations: same-country
// matching and a TURN relay that hides addresses entirely.
//
//	go run ./examples/ipharvest
package main

import (
	"context"
	"fmt"
	"net/netip"
	"os"
	"time"

	"github.com/stealthy-peers/pdnsec"
	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/capture"
	"github.com/stealthy-peers/pdnsec/internal/defense"
	"github.com/stealthy-peers/pdnsec/internal/geoip"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/population"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ipharvest: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Part 1 — live two-peer leak: an attacker peer joins a swarm and
	// reads the victim's public IP straight out of its own capture.
	fmt.Println("--- live lab leak (controlled peer vs NATed victim) ---")
	video := analyzer.SmallVideo("live-ch", 6, 32<<10)
	tb, err := pdnsec.NewTestbed(ctx, pdnsec.TestbedConfig{Profile: pdnsec.Peer5(), Video: video})
	if err != nil {
		return err
	}
	defer tb.Close()

	attackerHost, err := tb.NewViewerHost("US")
	if err != nil {
		return err
	}
	rec := analyzer.RecorderFor(attackerHost)
	_, stop, err := tb.Seeder(ctx, tb.ViewerConfig(attackerHost, 1), video.Segments)
	if err != nil {
		return err
	}
	victimHost, nat, err := tb.NewNATViewerHost("CN", netsim.NATFullCone)
	if err != nil {
		return err
	}
	if _, err := tb.RunViewer(ctx, tb.ViewerConfig(victimHost, 2)); err != nil {
		return err
	}
	stop()

	db := tb.GeoDB
	for _, ip := range capture.HarvestPeerIPs(rec.Packets(), attackerHost.Addr()) {
		recd := db.Lookup(ip)
		fmt.Printf("harvested %-16v class=%-8s country=%-3s (victim NAT: %v)\n",
			ip, recd.Class, recd.Country, ip == nat.ExternalAddr())
	}

	// Part 2 — in-the-wild harvest replay: the two channel populations
	// the paper measured, run through the same classification pipeline.
	fmt.Println("\n--- one-week in-the-wild harvest (replayed populations) ---")
	controlled := netip.MustParseAddrPort("66.24.0.250:40000")
	wdb := geoip.NewDB()
	for i, model := range []population.ChannelModel{population.HuyaLike(), population.RTNewsLike()} {
		viewers, err := model.Generate(wdb, int64(100+i))
		if err != nil {
			return err
		}
		pkts := population.HarvestPackets(viewers, controlled, int64(100+i))
		addrs := capture.HarvestPeerIPs(pkts, controlled.Addr())
		s := population.Summarize(model.Name, addrs, wdb)
		fmt.Printf("%-14s harvested=%d public=%d bogons=%d top=%s(%.0f%%)\n",
			s.Channel, s.Total, s.Public, s.Bogons, s.TopCountries[0].Country, s.TopCountries[0].Share*100)
	}

	// Part 3 — TURN mitigation: the same two-peer session through a
	// relay leaks nothing.
	fmt.Println("\n--- TURN relay mitigation ---")
	relayHost, err := tb.Net.NewHost(analyzer.TURNIP())
	if err != nil {
		return err
	}
	relay := defense.NewTURNRelay()
	if err := relay.Serve(relayHost, 3479); err != nil {
		return err
	}
	defer relay.Close()
	relayAddr := netip.AddrPortFrom(analyzer.TURNIP(), 3479)

	atk2, err := tb.NewViewerHost("US")
	if err != nil {
		return err
	}
	rec2 := analyzer.RecorderFor(atk2)
	cfgA := tb.ViewerConfig(atk2, 11)
	cfgA.TURNAddr = relayAddr
	_, stop2, err := tb.Seeder(ctx, cfgA, video.Segments)
	if err != nil {
		return err
	}
	vic2, _, err := tb.NewNATViewerHost("CN", netsim.NATFullCone)
	if err != nil {
		return err
	}
	cfgB := tb.ViewerConfig(vic2, 12)
	cfgB.TURNAddr = relayAddr
	stB, err := tb.RunViewer(ctx, cfgB)
	if err != nil {
		return err
	}
	stop2()

	leaked := capture.HarvestPeerIPs(rec2.Packets(), atk2.Addr())
	fmt.Printf("victim pulled %d segments over the relayed P2P path\n", stB.FromP2P)
	fmt.Printf("addresses harvested by the controlled peer: %d (relay carried %d bytes)\n",
		len(leaked), relay.RelayedBytes())
	if len(leaked) == 0 {
		fmt.Println("TURN eliminates the leak — at the cost of relaying every P2P byte")
	}
	return nil
}
