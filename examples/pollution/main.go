// Pollution: run the paper's §IV-C video segment pollution attack end
// to end — a fake CDN feeds an unwitting malicious peer same-size
// polluted segments, the PDN spreads them to an honest victim — then
// repeat with the §V-B peer-assisted integrity-checking defense enabled
// and watch the pollution die.
//
//	go run ./examples/pollution
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/stealthy-peers/pdnsec"
	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/attack"
	"github.com/stealthy-peers/pdnsec/internal/defense"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/mitm"
	"github.com/stealthy-peers/pdnsec/internal/provider"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "pollution: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	fmt.Println("--- round 1: undefended PDN ---")
	polluted, err := round(ctx, false)
	if err != nil {
		return err
	}
	fmt.Printf("victim played %d polluted segments\n\n", polluted)

	fmt.Println("--- round 2: peer-assisted IM checking enabled ---")
	pollutedDefended, err := round(ctx, true)
	if err != nil {
		return err
	}
	fmt.Printf("victim played %d polluted segments\n\n", pollutedDefended)

	if polluted > 0 && pollutedDefended == 0 {
		fmt.Println("result: the attack works against the deployed design and is stopped by the defense")
	}
	return nil
}

func round(ctx context.Context, defended bool) (int, error) {
	video := analyzer.SmallVideo("bbb", 6, 64<<10)

	opts := provider.Options{Seed: 7}
	if defended {
		checker, err := defense.NewIMChecker(defense.IMConfig{
			Reporters: 2,
			FetchCDN: func(key media.SegmentKey) ([]byte, error) {
				return video.SegmentData(key.Rendition, key.Index)
			},
		})
		if err != nil {
			return 0, err
		}
		opts.IM = checker
		pol := signal.DefaultPolicy()
		pol.RequireIMChecking = true
		opts.PolicyOverride = &pol
	}
	tb, err := pdnsec.NewTestbed(ctx, pdnsec.TestbedConfig{
		Profile: pdnsec.Peer5(),
		Video:   video,
		Options: opts,
	})
	if err != nil {
		return 0, err
	}
	defer tb.Close()

	// The attacker: a fake CDN shadowing the real one, polluting
	// segments 3 and 4 with same-size substitutes, and a malicious peer
	// configured to stream through it.
	fakeHost, err := tb.Net.NewHost(analyzer.FakeCDNIP())
	if err != nil {
		return 0, err
	}
	malHost, err := tb.NewViewerHost("US")
	if err != nil {
		return 0, err
	}
	atk, err := attack.LaunchPollution(ctx, attack.PollutionParams{
		Network:       tb.Net,
		SignalAddr:    tb.Dep.SignalAddr,
		STUNAddr:      tb.Dep.STUNAddr,
		RealCDNBase:   tb.CDNBase,
		FakeCDNHost:   fakeHost,
		MaliciousHost: malHost,
		APIKey:        tb.Key,
		Origin:        "https://customer.com",
		Video:         video.ID,
		Rendition:     "360p",
		Pollute:       mitm.SameSizePollution([]int{3, 4}),
		Segments:      video.Segments,
	})
	if err != nil {
		return 0, err
	}
	defer atk.Close()
	fmt.Printf("fake CDN substituted %d segments; malicious peer seeded the swarm\n", atk.FakeCDN.Substitutions())

	// The victim: an ordinary viewer.
	victimHost, err := tb.NewViewerHost("GB")
	if err != nil {
		return 0, err
	}
	cfg := tb.ViewerConfig(victimHost, 99)
	obs, err := attack.RunVictim(ctx, tb.Net, victimHost, tb.Dep.SignalAddr, tb.Dep.STUNAddr,
		cfg.CDNBase, cfg.APIKey, cfg.Origin, video, "360p", video.Segments, 99)
	if err != nil {
		return 0, err
	}
	fmt.Printf("victim: %d segments played, %d over P2P, %d rejected by IM checks\n",
		obs.PlayedSegments, obs.P2PSegments, obs.Stats.IMRejected)
	for _, k := range obs.PollutedSegments {
		fmt.Printf("  POLLUTED segment %s reached the victim's player\n", k)
	}
	return len(obs.PollutedSegments), nil
}
