// Quickstart: deploy a PDN (provider + CDN + video) on a simulated
// network, stream through two viewers, and watch the second viewer pull
// most of its segments from the first over the peer-to-peer path.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"github.com/stealthy-peers/pdnsec"
	"github.com/stealthy-peers/pdnsec/internal/analyzer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	// 1. Deploy a Peer5-like provider with an 8-segment VOD asset.
	video := analyzer.SmallVideo("big-buck-bunny", 8, 128<<10)
	tb, err := pdnsec.NewTestbed(ctx, pdnsec.TestbedConfig{
		Profile: pdnsec.Peer5(),
		Video:   video,
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	fmt.Printf("PDN deployed: signaling=%v stun=%v cdn=%s\n",
		tb.Dep.SignalAddr, tb.Dep.STUNAddr, tb.CDNBase)

	// 2. Alice watches first; everything comes from the CDN. She keeps
	// the tab open (Linger), so she can serve later viewers.
	aliceHost, err := tb.NewViewerHost("US")
	if err != nil {
		return err
	}
	aliceCfg := tb.ViewerConfig(aliceHost, 1)
	alice, stopAlice, err := tb.Seeder(ctx, aliceCfg, video.Segments)
	if err != nil {
		return err
	}
	fmt.Printf("alice (%v) finished: %+v\n", aliceHost.Addr(), alice.Stats())

	// 3. Bob arrives later from another country. After the slow-start
	// segments, the PDN matches him with Alice and his downloads shift
	// to the P2P path.
	bobHost, err := tb.NewViewerHost("GB")
	if err != nil {
		return err
	}
	bobCfg := tb.ViewerConfig(bobHost, 2)
	bobStats, err := tb.RunViewer(ctx, bobCfg)
	if err != nil {
		return err
	}
	aliceStats := stopAlice()

	fmt.Printf("bob   (%v) finished: %+v\n", bobHost.Addr(), bobStats)
	fmt.Printf("\nbob's segments: %d from CDN (slow start), %d over P2P\n",
		bobStats.FromCDN, bobStats.FromP2P)
	fmt.Printf("alice uploaded %d bytes to bob — her bandwidth, the customer's savings\n",
		aliceStats.P2PUpBytes)
	fmt.Printf("CDN served %d bytes total; without the PDN it would have served %d\n",
		tb.CDN.BytesServed(""), tb.CDN.BytesServed("")+bobStats.P2PDownBytes)
	return nil
}
