module github.com/stealthy-peers/pdnsec

go 1.22
