package pdnsec_test

import "net/netip"

// netipAddr aliases netip.Addr for bench readability.
type netipAddr = netip.Addr

func mustAddr(s string) netip.Addr   { return netip.MustParseAddr(s) }
func mustAP(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }
