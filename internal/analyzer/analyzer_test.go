package analyzer

import (
	"context"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/provider"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func findVerdict(t *testing.T, vs []Verdict, risk string) Verdict {
	t.Helper()
	for _, v := range vs {
		if v.Risk == risk {
			return v
		}
	}
	t.Fatalf("no verdict for %s in %+v", risk, vs)
	return Verdict{}
}

func TestCrossDomainVerdicts(t *testing.T) {
	ctx := testCtx(t)
	cases := []struct {
		prof provider.Profile
		want bool
	}{
		{provider.Peer5(), true},
		{provider.Streamroot(), true},
		{provider.Viblast(), false}, // default allowlist blocks it
		{provider.MangoPrivate(), true},
		{provider.TencentPrivate(), true}, // token not video-bound
		{provider.StrictPrivate(), false},
		{provider.ECDN(), false},
	}
	for _, tc := range cases {
		v, err := CrossDomainTest(ctx, tc.prof)
		if err != nil {
			t.Fatalf("%s: %v", tc.prof.Name, err)
		}
		if v.Vulnerable != tc.want {
			t.Errorf("%s cross-domain vulnerable=%v, want %v (%s)", tc.prof.Name, v.Vulnerable, tc.want, v.Detail)
		}
	}
}

func TestDomainSpoofVerdicts(t *testing.T) {
	ctx := testCtx(t)
	// All three public providers fall to domain spoofing even with the
	// allowlist enforced — the paper's headline auth finding.
	for _, prof := range provider.PublicProfiles() {
		v, err := DomainSpoofTest(ctx, prof)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if !v.Applicable || !v.Vulnerable {
			t.Errorf("%s spoof: applicable=%v vulnerable=%v (%s)", prof.Name, v.Applicable, v.Vulnerable, v.Detail)
		}
	}
	// eCDN is not applicable: no stealable key.
	v, err := DomainSpoofTest(ctx, provider.ECDN())
	if err != nil {
		t.Fatal(err)
	}
	if v.Applicable {
		t.Error("eCDN spoof test should be inapplicable")
	}
}

func TestPollutionVerdictsPeer5(t *testing.T) {
	ctx := testCtx(t)
	direct, err := PollutionTest(ctx, provider.Peer5(), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Vulnerable {
		t.Errorf("direct pollution should fail: %s", direct.Detail)
	}
	seg, err := PollutionTest(ctx, provider.Peer5(), true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Vulnerable {
		t.Errorf("segment pollution should succeed: %s", seg.Detail)
	}
}

func TestSegmentPollutionBlockedByIMDefense(t *testing.T) {
	ctx := testCtx(t)
	v, err := PollutionTest(ctx, provider.Peer5(), true, DefaultPolicyWithIM())
	if err != nil {
		t.Fatal(err)
	}
	if v.Vulnerable {
		t.Errorf("IM checking should stop segment pollution: %s", v.Detail)
	}
}

func TestIPLeakVerdict(t *testing.T) {
	ctx := testCtx(t)
	v, err := IPLeakTest(ctx, provider.Peer5())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Vulnerable {
		t.Errorf("IP leak should be present: %s", v.Detail)
	}
}

func TestResourceSquattingVerdict(t *testing.T) {
	ctx := testCtx(t)
	v, err := ResourceSquattingTest(ctx, provider.Peer5())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Vulnerable {
		t.Errorf("resource squatting should be present: %s", v.Detail)
	}
}

func TestRunAllProducesFullColumn(t *testing.T) {
	ctx := testCtx(t)
	vs, err := RunAll(ctx, provider.Peer5())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != len(AllRisks()) {
		t.Fatalf("got %d verdicts", len(vs))
	}
	// Spot-check the Table V shape for Peer5: everything vulnerable
	// except direct pollution.
	if findVerdict(t, vs, RiskDirectPollution).Vulnerable {
		t.Error("direct pollution should not be vulnerable")
	}
	for _, risk := range []string{RiskCrossDomain, RiskDomainSpoofing, RiskSegmentPollution, RiskIPLeak, RiskResourceSquatting} {
		if !findVerdict(t, vs, risk).Vulnerable {
			t.Errorf("%s should be vulnerable for peer5", risk)
		}
	}
}

func TestRunRiskUnknown(t *testing.T) {
	if _, err := RunRisk(context.Background(), provider.Peer5(), "nope"); err == nil {
		t.Fatal("unknown risk should error")
	}
}

func TestTestbedViewerHelpers(t *testing.T) {
	tb, err := NewTestbed(context.Background(), TestbedConfig{Profile: provider.Peer5()})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	h, err := tb.NewViewerHost("DE")
	if err != nil {
		t.Fatal(err)
	}
	if tb.GeoDB.Lookup(h.Addr()).Country != "DE" {
		t.Fatalf("viewer host not in DE: %v", h.Addr())
	}
	nh, nat, err := tb.NewNATViewerHost("JP", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tb.GeoDB.Lookup(nat.ExternalAddr()).Country != "JP" {
		t.Fatal("NAT external addr not in JP")
	}
	if nh.VisibleAddr() != nat.ExternalAddr() {
		t.Fatal("NATed viewer should be visible via the NAT")
	}
}

func TestHardenedProfileResistsCrossDomain(t *testing.T) {
	ctx := testCtx(t)
	v, err := CrossDomainTest(ctx, provider.Hardened())
	if err != nil {
		t.Fatal(err)
	}
	if v.Vulnerable {
		t.Fatalf("hardened profile should resist stolen-JWT reuse: %s", v.Detail)
	}
}

func TestHardenedViewerStreamsNormally(t *testing.T) {
	tb, err := NewTestbed(context.Background(), TestbedConfig{Profile: provider.Hardened()})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	host, err := tb.NewViewerHost("US")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tb.ViewerConfig(host, 1)
	if cfg.Token == "" {
		t.Fatal("hardened viewer config should carry a JWT")
	}
	st, err := tb.RunViewer(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsPlayed == 0 {
		t.Fatalf("hardened viewer played nothing: %+v", st)
	}
}
