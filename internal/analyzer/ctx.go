package analyzer

import (
	"context"
	"time"
)

// ctxT aliases context.Context to keep testbed.go's helper signatures
// compact.
type ctxT = context.Context

func newTimeoutCtx(parent ctxT, d time.Duration) (ctxT, func()) {
	return context.WithTimeout(parent, d)
}
