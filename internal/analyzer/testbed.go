// Package analyzer implements the paper's PDN analyzer (Fig. 2): an
// automatic framework that deploys a PDN service in a controlled
// environment, runs peers (honest, malicious, instrumented) against it,
// intercepts and modifies their traffic, and decides from captures,
// meters, and ground-truth checks whether each studied risk is present.
//
// Where the paper ran each peer as a Docker container with a web driver
// and a proxy client, the reproduction runs each peer as a pdnclient
// instance on its own simulated host, with capture taps standing in for
// tcpdump and the monitor package standing in for the Docker stats API.
package analyzer

import (
	"fmt"
	"net/netip"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/capture"
	"github.com/stealthy-peers/pdnsec/internal/cdn"
	"github.com/stealthy-peers/pdnsec/internal/geoip"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/monitor"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/pdnclient"
	"github.com/stealthy-peers/pdnsec/internal/provider"
	"github.com/stealthy-peers/pdnsec/internal/secure"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// Fixed testbed addresses.
var (
	cdnIP    = netip.MustParseAddr("93.184.216.34")
	signalIP = netip.MustParseAddr("44.1.1.1")
	fakeIP   = netip.MustParseAddr("13.13.13.13")
	turnIP   = netip.MustParseAddr("50.50.50.50")
)

// TestbedConfig parameterizes a deployment.
type TestbedConfig struct {
	// Profile selects the provider under test.
	Profile provider.Profile
	// Video is the stream (defaults to a small 8-segment VOD).
	Video *media.Video
	// CustomerDomain is the legitimate customer (defaults to
	// "customer.com").
	CustomerDomain string
	// GeoDB geolocates peers; nil uses the default plan.
	GeoDB *geoip.DB
	// Options forwards provider deployment options (IM, policy
	// override, seed).
	Options provider.Options
	// Latency configures per-host access latency for timing-sensitive
	// experiments.
	Latency time.Duration
	// Obs, when set, registers every testbed component's metrics in one
	// shared registry (the aggregation cmd/pdnserve exposes live).
	Obs *obs.Registry
	// Tracer, when set, records swarm events across the deployment. The
	// testbed never constructs one itself — the caller decides the clock
	// domain (cmd/pdnserve builds it on tb.Net.Now, keeping this package
	// clock-free and deterministic).
	Tracer *obs.Tracer
	// Traces, when set, hands every component a process-stamped tracer
	// from one set sharing a clock and seed: the CDN serves as "cdn",
	// federated signal servers as "s0", "s1", ..., and each viewer built
	// through ViewerConfig as "viewer-<seed>". It supersedes Tracer, and
	// is what makes the written JSONL stitchable by cmd/pdntrace — every
	// span says which process recorded it.
	Traces *obs.TraceSet
}

// Testbed is a running PDN deployment plus helpers to place peers on it.
type Testbed struct {
	Net     *netsim.Network
	CDN     *cdn.Server
	CDNBase string
	Dep     *provider.Deployment
	Video   *media.Video
	Key     string // customer API key ("" for private providers)
	GeoDB   *geoip.DB
	Alloc   *geoip.Allocator
	Obs     *obs.Registry
	Tracer  *obs.Tracer
	Traces  *obs.TraceSet
	// CDNHost and SignalHost expose the infrastructure machines so chaos
	// scenarios can impair or crash them. SignalHost is the first
	// signaling server's host; SignalHosts lists every federated
	// server's host in plane order.
	CDNHost     *netsim.Host
	SignalHost  *netsim.Host
	SignalHosts []*netsim.Host

	customerDomain string
	latency        time.Duration
	closers        []func()
}

// SmallVideo builds a test asset whose declared bandwidth matches its
// actual segment size (so the SDK's consistency check is meaningful).
func SmallVideo(id string, segments, segBytes int) *media.Video {
	return &media.Video{
		ID:              id,
		Renditions:      []media.Rendition{{Name: "360p", Bandwidth: segBytes * 8 / 10, SegmentBytes: segBytes}},
		Segments:        segments,
		SegmentDuration: 10,
	}
}

// SmallLiveVideo builds a live test asset with a sliding playlist
// window. segDur is in seconds; chaos scenarios use tiny durations so
// the live edge advances at simulation speed, and the declared
// bandwidth is kept consistent with the segment size as in SmallVideo.
func SmallLiveVideo(id string, segBytes int, segDur float64) *media.Video {
	return &media.Video{
		ID:              id,
		Live:            true,
		Renditions:      []media.Rendition{{Name: "360p", Bandwidth: int(float64(segBytes) * 8 / segDur), SegmentBytes: segBytes}},
		SegmentDuration: segDur,
	}
}

// NewTestbed deploys the provider, CDN, and video. ctx bounds the
// deployment's background services (the provider's STUN responder).
func NewTestbed(ctx ctxT, cfg TestbedConfig) (*Testbed, error) {
	if cfg.Video == nil {
		cfg.Video = SmallVideo("bbb", 8, 16<<10)
	}
	if cfg.CustomerDomain == "" {
		cfg.CustomerDomain = "customer.com"
	}
	db := cfg.GeoDB
	if db == nil {
		db = geoip.NewDB()
	}
	if cfg.Options.GeoDB == nil {
		cfg.Options.GeoDB = db
	}
	if cfg.Options.Obs == nil {
		cfg.Options.Obs = cfg.Obs
	}
	if cfg.Options.Tracer == nil {
		cfg.Options.Tracer = cfg.Tracer
	}
	if cfg.Options.Traces == nil {
		cfg.Options.Traces = cfg.Traces
	}
	if cfg.Profile.Policy.SecureTransport && cfg.Options.IM == nil {
		// A secure-profile deployment signs per-segment manifests from the
		// ground-truth video; Deploy stamps the verification key into the
		// policy so viewers check every byte against it.
		ms, err := secure.NewManifestService(cfg.Video)
		if err != nil {
			return nil, err
		}
		cfg.Options.IM = ms
	}

	n := netsim.New(netsim.Config{})
	tb := &Testbed{
		Net:            n,
		Video:          cfg.Video,
		GeoDB:          db,
		Alloc:          geoip.NewAllocator(db, cfg.Options.Seed+1),
		Obs:            cfg.Obs,
		Tracer:         cfg.Tracer,
		Traces:         cfg.Traces,
		customerDomain: cfg.CustomerDomain,
		latency:        cfg.Latency,
	}

	cdnHost, err := n.NewHost(cdnIP)
	if err != nil {
		return nil, err
	}
	tb.CDNHost = cdnHost
	tb.CDN = cdn.New()
	tb.CDN.Instrument(cfg.Obs)
	if cfg.Traces != nil {
		tb.CDN.SetTracer(cfg.Traces.Tracer("cdn"))
	}
	tb.CDN.Register(cfg.Video)
	if err := tb.CDN.Serve(cdnHost, 80); err != nil {
		return nil, err
	}
	tb.closers = append(tb.closers, func() { tb.CDN.Close() })
	tb.CDNBase = "http://" + cdnIP.String() + ":80"

	sigHost, err := n.NewHost(signalIP)
	if err != nil {
		tb.Close()
		return nil, err
	}
	tb.SignalHost = sigHost
	tb.SignalHosts = []*netsim.Host{sigHost}
	// A federated deployment (Options.Servers > 1) gets one host per
	// extra server at consecutive addresses after signalIP.
	if cfg.Options.Servers > 1 && len(cfg.Options.SignalHosts) == 0 {
		ip := signalIP
		for i := 1; i < cfg.Options.Servers; i++ {
			ip = ip.Next()
			h, err := n.NewHost(ip)
			if err != nil {
				tb.Close()
				return nil, err
			}
			cfg.Options.SignalHosts = append(cfg.Options.SignalHosts, h)
			tb.SignalHosts = append(tb.SignalHosts, h)
		}
	}
	dep, err := provider.Deploy(ctx, cfg.Profile, sigHost, cfg.Options)
	if err != nil {
		tb.Close()
		return nil, err
	}
	tb.Dep = dep
	tb.closers = append(tb.closers, func() { dep.Close() })
	if cfg.Profile.Public {
		tb.Key = dep.IssueKey(cfg.CustomerDomain)
	}
	return tb, nil
}

// Close tears the testbed down.
func (tb *Testbed) Close() {
	for i := len(tb.closers) - 1; i >= 0; i-- {
		tb.closers[i]()
	}
	tb.closers = nil
}

// NewViewerHost places a public viewer host in the given country.
func (tb *Testbed) NewViewerHost(country string) (*netsim.Host, error) {
	ip, err := tb.Alloc.Alloc(country)
	if err != nil {
		return nil, err
	}
	h, err := tb.Net.NewHost(ip)
	if err != nil {
		return nil, err
	}
	if tb.latency > 0 {
		h.SetLatency(tb.latency)
	}
	return h, nil
}

// NewNATViewerHost places a viewer behind a fresh NAT of the given type
// in the given country. The NAT's external address is geo-allocated;
// the host's address is private.
func (tb *Testbed) NewNATViewerHost(country string, typ netsim.NATType) (*netsim.Host, *netsim.NAT, error) {
	ext, err := tb.Alloc.Alloc(country)
	if err != nil {
		return nil, nil, err
	}
	nat, err := tb.Net.NewNAT(ext, typ)
	if err != nil {
		return nil, nil, err
	}
	h, err := nat.NewHost(tb.Alloc.AllocPrivate())
	if err != nil {
		return nil, nil, err
	}
	if tb.latency > 0 {
		h.SetLatency(tb.latency)
	}
	return h, nat, nil
}

// ViewerConfig returns a pdnclient config for an honest viewer of the
// testbed's stream from the given host, authenticated as the
// legitimate customer.
func (tb *Testbed) ViewerConfig(host *netsim.Host, seed int64) pdnclient.Config {
	cfg := pdnclient.Config{
		Host:        host,
		Network:     tb.Net,
		SignalAddr:  tb.Dep.SignalAddr,
		SignalAddrs: tb.Dep.SignalAddrs,
		STUNAddr:    tb.Dep.STUNAddr,
		CDNBase:     tb.CDNBase,
		Video:       tb.Video.ID,
		Rendition:   tb.Video.Renditions[0].Name,
		Seed:        seed,
		Obs:         tb.Obs,
		Tracer:      tb.Tracer,
		// An honest viewer of a secure-profile deployment ships the pinned
		// SDK build: it refuses welcomes a MITM stripped the transport from.
		RequireSecureTransport: tb.Dep.Profile.Policy.SecureTransport,
	}
	if tb.Traces != nil {
		cfg.Tracer = tb.Traces.Tracer(fmt.Sprintf("viewer-%d", seed))
	}
	switch {
	case tb.Key != "":
		cfg.APIKey = tb.Key
		cfg.Origin = "https://" + tb.customerDomain
	case tb.Dep.JWT != nil:
		videoURL := cdn.MasterURL(tb.CDNBase, tb.Video.ID)
		if jwt, err := tb.Dep.IssueJWT(fmt.Sprintf("viewer-%d", seed), videoURL); err == nil {
			cfg.Token = jwt
			cfg.VideoURL = videoURL
		}
	case tb.Dep.Tokens != nil:
		videoURL := cdn.MasterURL(tb.CDNBase, tb.Video.ID)
		cfg.Token = tb.Dep.Tokens.Issue(videoURL)
		cfg.VideoURL = videoURL
	}
	return cfg
}

// RunViewer constructs and runs a viewer to completion under a
// testbed-scoped timeout derived from ctx.
func (tb *Testbed) RunViewer(ctx ctxT, cfg pdnclient.Config) (pdnclient.Stats, error) {
	p, err := pdnclient.New(cfg)
	if err != nil {
		return pdnclient.Stats{}, err
	}
	rctx, cancel := timeoutCtx(ctx)
	defer cancel()
	return p.Run(rctx)
}

// Seeder starts a lingering viewer that plays everything and then
// serves the swarm. It returns the peer and a stop function that ends
// the linger and waits for completion.
func (tb *Testbed) Seeder(ctx ctxT, cfg pdnclient.Config, segments int) (*pdnclient.Peer, func() pdnclient.Stats, error) {
	cfg.MaxSegments = segments
	cfg.Linger = 5 * time.Minute
	p, err := pdnclient.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	rctx, cancel := timeoutCtx(ctx)
	done := make(chan pdnclient.Stats, 1)
	go func() {
		st, _ := p.Run(rctx)
		done <- st
	}()
	timeout := time.NewTimer(30 * time.Second)
	defer timeout.Stop()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for waiting := true; waiting; {
		if st := p.Stats(); st.SegmentsPlayed >= segments {
			stop := func() pdnclient.Stats {
				p.StopLinger()
				st := <-done
				cancel()
				return st
			}
			return p, stop, nil
		}
		select {
		case <-timeout.C:
			waiting = false
		case <-rctx.Done():
			waiting = false
		case <-tick.C:
		}
	}
	cancel()
	<-done
	return nil, nil, fmt.Errorf("analyzer: seeder failed to finish (played %d/%d)", p.Stats().SegmentsPlayed, segments)
}

// MeterFor attaches a fresh meter to a config and returns it.
func MeterFor(cfg *pdnclient.Config, host *netsim.Host) *monitor.Meter {
	m := monitor.NewMeter(monitor.DefaultCostModel(), host)
	cfg.Meter = m
	return m
}

// RecorderFor taps a host with an unbounded capture recorder.
func RecorderFor(host *netsim.Host) *capture.Recorder {
	rec := capture.NewRecorder(0)
	host.AddTap(rec.Tap)
	return rec
}

// FakeCDNIP returns the canonical attacker fake-CDN address.
func FakeCDNIP() netip.Addr { return fakeIP }

// TURNIP returns the canonical TURN relay address.
func TURNIP() netip.Addr { return turnIP }

// DefaultPolicyWithIM returns the default policy with integrity
// checking required (for defense-enabled deployments).
func DefaultPolicyWithIM() *signal.Policy {
	p := signal.DefaultPolicy()
	p.RequireIMChecking = true
	return &p
}

func timeoutCtx(parent ctxT) (ctxT, func()) { return newTimeoutCtx(parent, 2*time.Minute) }
