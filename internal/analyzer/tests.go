package analyzer

import (
	"context"
	"fmt"

	"github.com/stealthy-peers/pdnsec/internal/attack"
	"github.com/stealthy-peers/pdnsec/internal/capture"
	"github.com/stealthy-peers/pdnsec/internal/defense"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/mitm"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/provider"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// Risk identifiers, matching Table V's rows.
const (
	RiskCrossDomain       = "cross-domain"
	RiskDomainSpoofing    = "domain-spoofing"
	RiskDirectPollution   = "direct-pollution"
	RiskSegmentPollution  = "segment-pollution"
	RiskIPLeak            = "ip-leak"
	RiskResourceSquatting = "resource-squatting"
)

// AllRisks lists the battery in Table V order.
func AllRisks() []string {
	return []string{
		RiskCrossDomain, RiskDomainSpoofing,
		RiskDirectPollution, RiskSegmentPollution,
		RiskIPLeak, RiskResourceSquatting,
	}
}

// Verdict is one security test's outcome against one provider.
type Verdict struct {
	Provider   string `json:"provider"`
	Risk       string `json:"risk"`
	Applicable bool   `json:"applicable"`
	Vulnerable bool   `json:"vulnerable"`
	Detail     string `json:"detail"`
}

// RunRisk executes one named risk test against a provider profile. A
// tracer carried in ctx (obs.WithTracer) records each test as a span;
// the package itself never constructs tracers or reads clocks.
func RunRisk(ctx context.Context, prof provider.Profile, risk string) (Verdict, error) {
	span := obs.FromContext(ctx).Begin("analyzer_risk", obs.A("provider", prof.Name), obs.A("risk", risk))
	v, err := runRisk(ctx, prof, risk)
	span.End(obs.A("applicable", v.Applicable), obs.A("vulnerable", v.Vulnerable))
	return v, err
}

func runRisk(ctx context.Context, prof provider.Profile, risk string) (Verdict, error) {
	switch risk {
	case RiskCrossDomain:
		return CrossDomainTest(ctx, prof)
	case RiskDomainSpoofing:
		return DomainSpoofTest(ctx, prof)
	case RiskDirectPollution:
		return PollutionTest(ctx, prof, false, nil)
	case RiskSegmentPollution:
		return PollutionTest(ctx, prof, true, nil)
	case RiskIPLeak:
		return IPLeakTest(ctx, prof)
	case RiskResourceSquatting:
		return ResourceSquattingTest(ctx, prof)
	default:
		return Verdict{}, fmt.Errorf("analyzer: unknown risk %q", risk)
	}
}

// RunAll executes the full battery against a provider (one Table V
// column).
func RunAll(ctx context.Context, prof provider.Profile) ([]Verdict, error) {
	out := make([]Verdict, 0, len(AllRisks()))
	for _, risk := range AllRisks() {
		v, err := RunRisk(ctx, prof, risk)
		if err != nil {
			return out, fmt.Errorf("analyzer: %s/%s: %w", prof.Name, risk, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// CrossDomainTest probes whether a stolen credential works from an
// unauthorized context (§IV-B, test 1).
func CrossDomainTest(ctx context.Context, prof provider.Profile) (Verdict, error) {
	v := Verdict{Provider: prof.Name, Risk: RiskCrossDomain, Applicable: true}
	tb, err := NewTestbed(ctx, TestbedConfig{Profile: prof})
	if err != nil {
		return v, err
	}
	defer tb.Close()
	host, err := tb.NewViewerHost("US")
	if err != nil {
		return v, err
	}

	switch {
	case prof.Public && prof.SecretKey:
		// eCDN: there is no public credential to steal.
		ok, err := attack.CrossDomain(ctx, host, tb.Dep.SignalAddr, "guessed-tenant")
		if err != nil {
			return v, err
		}
		v.Vulnerable = ok
		v.Detail = "credential not publicly embedded; stolen-key attack has nothing to steal"
	case prof.Public:
		ok, err := attack.CrossDomain(ctx, host, tb.Dep.SignalAddr, tb.Key)
		if err != nil {
			return v, err
		}
		v.Vulnerable = ok
		if ok {
			v.Detail = "stolen API key accepted from attacker origin (no domain allowlist)"
		} else {
			v.Detail = "domain allowlist blocked the attacker origin"
		}
	case tb.Dep.JWT != nil:
		// §V-A hardened service: steal a viewer's signed JWT (issued for
		// the legitimate stream) and present it for the attacker's own
		// stream — video binding must reject it.
		legit := tb.CDNBase + "/v/" + tb.Video.ID + "/master.m3u8"
		jwt, err := tb.Dep.IssueJWT("stolen-from-viewer", legit)
		if err != nil {
			return v, err
		}
		ok, err := attack.JoinProbe(ctx, host, tb.Dep.SignalAddr, signal.JoinRequest{
			Token: jwt, VideoURL: "https://attacker/own.m3u8",
			Video: "attacker-stream", Rendition: "360p",
		})
		if err != nil {
			return v, err
		}
		v.Vulnerable = ok
		v.Detail = "stolen video-binding JWT presented for an attacker stream"
	case tb.Dep.Tokens != nil:
		// Private service: steal a token issued for the legit stream and
		// present it for the attacker's own stream.
		legit := tb.CDNBase + "/v/" + tb.Video.ID + "/master.m3u8"
		tok := tb.Dep.Tokens.Issue(legit)
		ok, err := attack.JoinProbe(ctx, host, tb.Dep.SignalAddr, signal.JoinRequest{
			Token: tok, VideoURL: "https://attacker/own.m3u8",
			Video: "attacker-stream", Rendition: "360p",
		})
		if err != nil {
			return v, err
		}
		if !ok && !prof.RequireAuth {
			// Mango-style: even without a credential the join passes.
			ok, err = attack.JoinProbe(ctx, host, tb.Dep.SignalAddr, signal.JoinRequest{
				Video: "attacker-stream", Rendition: "360p",
			})
			if err != nil {
				return v, err
			}
		}
		v.Vulnerable = ok
		v.Detail = "session-token reuse for an attacker-controlled stream"
	default:
		ok, err := attack.JoinProbe(ctx, host, tb.Dep.SignalAddr, signal.JoinRequest{
			Video: "attacker-stream", Rendition: "360p",
		})
		if err != nil {
			return v, err
		}
		v.Vulnerable = ok
		v.Detail = "unauthenticated join"
	}
	return v, nil
}

// DomainSpoofTest probes whether a MITM'd Origin defeats the allowlist
// (§IV-B, test 2). It applies to key-authenticated (public) providers.
func DomainSpoofTest(ctx context.Context, prof provider.Profile) (Verdict, error) {
	v := Verdict{Provider: prof.Name, Risk: RiskDomainSpoofing, Applicable: prof.Public && !prof.SecretKey}
	if !v.Applicable {
		v.Detail = "no publicly-stealable key to spoof an origin for"
		return v, nil
	}
	tb, err := NewTestbed(ctx, TestbedConfig{Profile: prof})
	if err != nil {
		return v, err
	}
	defer tb.Close()
	// Enforce the allowlist even for providers that default it off, as
	// the paper did ("we then enable the domain allowlist protection for
	// all the 3 PDN services").
	if err := tb.Dep.Keys.SetAllowlist(tb.Key, []string{"customer.com"}); err != nil {
		return v, err
	}
	attacker, err := tb.NewViewerHost("US")
	if err != nil {
		return v, err
	}
	proxyHost, err := tb.NewViewerHost("US")
	if err != nil {
		return v, err
	}
	ok, err := attack.DomainSpoof(ctx, attacker, proxyHost, tb.Dep.SignalAddr, tb.Key, "customer.com")
	if err != nil {
		return v, err
	}
	v.Vulnerable = ok
	if ok {
		v.Detail = "spoofed Origin/Referer accepted despite enforced allowlist"
	}
	return v, nil
}

// PollutionTest runs the content-integrity battery (§IV-C): the direct
// variant (foreign video, wholesale) or the refined same-size segment
// pollution. A non-nil policy override deploys the provider with the
// IM-checking defense for §V-B evaluation.
func PollutionTest(ctx context.Context, prof provider.Profile, sameSize bool, policyOverride *signal.Policy) (Verdict, error) {
	risk := RiskDirectPollution
	if sameSize {
		risk = RiskSegmentPollution
	}
	v := Verdict{Provider: prof.Name, Risk: risk, Applicable: true}

	video := SmallVideo("bbb", 6, 16<<10)
	opts := provider.Options{Seed: 11}
	if policyOverride != nil {
		opts.PolicyOverride = policyOverride
	}
	tb, err := NewTestbed(ctx, TestbedConfig{Profile: prof, Video: video, Options: opts})
	if err != nil {
		return v, err
	}
	defer tb.Close()

	// Install the IM checker when the policy demands verification.
	if policyOverride != nil && policyOverride.RequireIMChecking {
		tb.Close()
		checker, err := newTestbedIMChecker(video)
		if err != nil {
			return v, err
		}
		opts.IM = checker
		tb, err = NewTestbed(ctx, TestbedConfig{Profile: prof, Video: video, Options: opts})
		if err != nil {
			return v, err
		}
		defer tb.Close()
	}

	var pollute mitm.PolluteFunc
	if sameSize {
		pollute = mitm.SameSizePollution([]int{3, 4})
	} else {
		foreign := SmallVideo("attacker-movie", 2, 4<<10)
		pollute = mitm.ForeignVideoPollution(foreign, "360p")
	}

	malHost, err := tb.NewViewerHost("US")
	if err != nil {
		return v, err
	}
	fakeHost, err := tb.Net.NewHost(FakeCDNIP())
	if err != nil {
		return v, err
	}

	params := attack.PollutionParams{
		Network:       tb.Net,
		SignalAddr:    tb.Dep.SignalAddr,
		STUNAddr:      tb.Dep.STUNAddr,
		RealCDNBase:   tb.CDNBase,
		FakeCDNHost:   fakeHost,
		MaliciousHost: malHost,
		Video:         video.ID,
		Rendition:     "360p",
		Pollute:       pollute,
		Segments:      video.Segments,
		Obs:           tb.Obs,
		Tracer:        tb.Tracer,
	}
	if tb.Key != "" {
		params.APIKey = tb.Key
		params.Origin = "https://customer.com"
	} else if tb.Dep.Tokens != nil {
		params.Token = tb.Dep.Tokens.Issue(tb.CDNBase + "/v/" + video.ID + "/master.m3u8")
	}
	atk, err := attack.LaunchPollution(ctx, params)
	if err != nil {
		return v, err
	}
	defer atk.Close()

	victimHost, err := tb.NewViewerHost("GB")
	if err != nil {
		return v, err
	}
	vcfg := tb.ViewerConfig(victimHost, 99)
	vic, err := attack.RunVictim(ctx, tb.Net, victimHost, tb.Dep.SignalAddr, tb.Dep.STUNAddr,
		vcfg.CDNBase, vcfg.APIKey, vcfg.Origin, video, "360p", video.Segments, 99)
	if err != nil {
		return v, err
	}
	v.Vulnerable = len(vic.PollutedSegments) > 0
	v.Detail = fmt.Sprintf("victim played %d polluted / %d P2P / %d total segments",
		len(vic.PollutedSegments), vic.P2PSegments, vic.PlayedSegments)
	return v, nil
}

// IPLeakTest checks whether joining a swarm exposes peers' addresses to
// an arbitrary (attacker-controlled) peer (§IV-D).
func IPLeakTest(ctx context.Context, prof provider.Profile) (Verdict, error) {
	v := Verdict{Provider: prof.Name, Risk: RiskIPLeak, Applicable: true}
	video := SmallVideo("bbb", 6, 16<<10)
	tb, err := NewTestbed(ctx, TestbedConfig{Profile: prof, Video: video})
	if err != nil {
		return v, err
	}
	defer tb.Close()

	// The "controlled peer" records its own traffic — all an attacker
	// needs.
	attackerHost, err := tb.NewViewerHost("US")
	if err != nil {
		return v, err
	}
	rec := RecorderFor(attackerHost)

	acfg := tb.ViewerConfig(attackerHost, 1)
	_, stopSeeder, err := tb.Seeder(ctx, acfg, video.Segments)
	if err != nil {
		return v, err
	}

	// A victim viewer behind NAT in another country joins and connects.
	victimHost, nat, err := tb.NewNATViewerHost("CN", netsim.NATFullCone)
	if err != nil {
		return v, err
	}
	vcfg := tb.ViewerConfig(victimHost, 2)
	if _, err := tb.RunViewer(ctx, vcfg); err != nil {
		return v, err
	}
	stopSeeder()

	ips := capture.HarvestPeerIPs(rec.Packets(), attackerHost.Addr())
	leakedVictim := false
	for _, ip := range ips {
		if ip == nat.ExternalAddr() {
			leakedVictim = true
		}
	}
	v.Vulnerable = leakedVictim
	v.Detail = fmt.Sprintf("controlled peer harvested %d peer IPs from its capture", len(ips))
	return v, nil
}

// ResourceSquattingTest compares a PDN peer's modelled resource use to
// a plain CDN viewer's (§IV-D, Fig. 4). It reports the ratios.
func ResourceSquattingTest(ctx context.Context, prof provider.Profile) (Verdict, error) {
	v := Verdict{Provider: prof.Name, Risk: RiskResourceSquatting, Applicable: true}
	video := SmallVideo("bbb", 6, 32<<10)
	tb, err := NewTestbed(ctx, TestbedConfig{Profile: prof, Video: video})
	if err != nil {
		return v, err
	}
	defer tb.Close()

	// Control: plain CDN viewer.
	ctrlHost, err := tb.NewViewerHost("US")
	if err != nil {
		return v, err
	}
	ctrlCfg := tb.ViewerConfig(ctrlHost, 1)
	ctrlCfg.DisableP2P = true
	ctrlMeter := MeterFor(&ctrlCfg, ctrlHost)
	if _, err := tb.RunViewer(ctx, ctrlCfg); err != nil {
		return v, err
	}

	// PDN pair: a seeder and a later viewer who leeches then serves.
	seedHost, err := tb.NewViewerHost("US")
	if err != nil {
		return v, err
	}
	seedCfg := tb.ViewerConfig(seedHost, 2)
	seedMeter := MeterFor(&seedCfg, seedHost)
	_, stopSeeder, err := tb.Seeder(ctx, seedCfg, video.Segments)
	if err != nil {
		return v, err
	}
	leechHost, err := tb.NewViewerHost("GB")
	if err != nil {
		return v, err
	}
	leechCfg := tb.ViewerConfig(leechHost, 3)
	leechMeter := MeterFor(&leechCfg, leechHost)
	leechStats, err := tb.RunViewer(ctx, leechCfg)
	if err != nil {
		return v, err
	}
	stopSeeder()

	ctrl := ctrlMeter.Snapshot()
	cpuRatio := avgRatio(ctrl.CPUUnits, leechMeter.Snapshot().CPUUnits, seedMeter.Snapshot().CPUUnits)
	memRatio := avgRatio(float64(ctrl.MemBytes), float64(leechMeter.Snapshot().MemBytes), float64(seedMeter.Snapshot().MemBytes))
	v.Vulnerable = leechStats.FromP2P > 0 && (cpuRatio > 1.02 || memRatio > 1.02)
	v.Detail = fmt.Sprintf("CPU ratio %.2f, memory ratio %.2f vs no-peer control (no consent requested)", cpuRatio, memRatio)
	return v, nil
}

func avgRatio(base float64, vals ...float64) float64 {
	if base == 0 || len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, x := range vals {
		sum += x / base
	}
	return sum / float64(len(vals))
}

// newTestbedIMChecker builds an IM checker resolving conflicts against
// the ground-truth video (standing in for the provider's CDN fetch).
func newTestbedIMChecker(video *media.Video) (signal.IMService, error) {
	return defense.NewIMChecker(defense.IMConfig{
		Reporters: 2,
		FetchCDN: func(key media.SegmentKey) ([]byte, error) {
			return video.SegmentData(key.Rendition, key.Index)
		},
	})
}
