// Package attack implements the paper's attacks as runnable
// orchestrations against a deployed testbed:
//
//   - service free riding (§IV-B): joining a PDN with a stolen API key
//     from an unauthorized origin (cross-domain), or from a spoofed
//     origin via a signaling MITM (domain-spoofing), and generating
//     billable P2P traffic on the victim customer's account;
//   - video segment pollution (§IV-C): a fake CDN + malicious peer
//     collusion that feeds polluted-but-consistent segments into the
//     swarm, plus the naive direct-pollution variant that the SDK's
//     slow-start consistency check defeats.
//
// Nothing here requires knowledge of the PDN's internals beyond what a
// subscriber-level attacker has: the SDK join parameters (visible in
// any customer page) and control over the attacker's own peer and its
// network path — exactly the paper's threat model.
package attack

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/mitm"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/pdnclient"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// JoinProbe attempts a signaling join with the given credentials and
// reports whether the server accepted it. It is the primitive both
// peer-authentication tests build on.
func JoinProbe(ctx context.Context, host *netsim.Host, server netip.AddrPort, req signal.JoinRequest) (bool, error) {
	c, err := signal.Dial(ctx, host, server)
	if err != nil {
		return false, err
	}
	defer c.Close()
	if _, err := c.Join(ctx, req); err != nil {
		if _, isServer := err.(*signal.ServerError); isServer {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// CrossDomain runs the cross-domain free-riding test: join with a
// stolen key under the attacker's own origin. Success means the key
// enforces no domain allowlist.
func CrossDomain(ctx context.Context, host *netsim.Host, server netip.AddrPort, stolenKey string) (bool, error) {
	return JoinProbe(ctx, host, server, signal.JoinRequest{
		APIKey:    stolenKey,
		Origin:    "https://freerider.evil",
		Video:     "attacker-stream",
		Rendition: "360p",
	})
}

// SpoofedJoinProbe routes an arbitrary join through a MITM proxy that
// rewrites Origin/Referer to the victim domain — the generalized
// domain-spoofing primitive the replay matrix uses for every credential
// style (API key, session token, JWT). proxyHost must be a host the
// attacker controls.
func SpoofedJoinProbe(ctx context.Context, attacker, proxyHost *netsim.Host, server netip.AddrPort, victimDomain string, req signal.JoinRequest) (bool, error) {
	proxy := mitm.NewSignalProxy(proxyHost, server, mitm.SpoofOrigin(victimDomain))
	if err := proxy.Serve(ctx, 8443); err != nil {
		return false, err
	}
	defer proxy.Close()
	return JoinProbe(ctx, attacker, netip.AddrPortFrom(proxyHost.VisibleAddr(), 8443), req)
}

// DomainSpoof runs the domain-spoofing test: an unmodified join flows
// through a MITM proxy that rewrites Origin/Referer to the victim
// domain. proxyHost must be a host the attacker controls.
func DomainSpoof(ctx context.Context, attacker, proxyHost *netsim.Host, server netip.AddrPort, stolenKey, victimDomain string) (bool, error) {
	return SpoofedJoinProbe(ctx, attacker, proxyHost, server, victimDomain, signal.JoinRequest{
		APIKey:    stolenKey,
		Origin:    "https://freerider.evil", // rewritten in flight
		Video:     "attacker-stream",
		Rendition: "360p",
	})
}

// TrafficParams configures free-riding traffic generation.
type TrafficParams struct {
	Network    *netsim.Network
	SignalAddr netip.AddrPort
	STUNAddr   netip.AddrPort
	// CDNBase serves the attacker's own video (its stream that victims'
	// PDN subscription now pays to distribute).
	CDNBase   string
	StolenKey string
	Origin    string // origin to claim (spoofed or attacker-owned)
	Video     string
	Rendition string
	// Hosts are the attacker's peer machines; the first seeds from the
	// CDN, the rest leech over P2P.
	Hosts []*netsim.Host
	// SegmentsPerPeer bounds each peer's playback.
	SegmentsPerPeer int
}

// TrafficResult reports what the free riders moved.
type TrafficResult struct {
	SeederStats  pdnclient.Stats
	LeechStats   []pdnclient.Stats
	P2PBytes     int64 // total P2P bytes generated (billed to the victim)
	P2PSegments  int
	CDNSegments  int
	JoinAccepted bool
}

// GenerateTraffic free-rides the PDN: attacker peers watch the
// attacker's own stream under the victim's key, generating P2P traffic
// that the provider meters against the victim customer.
func GenerateTraffic(ctx context.Context, p TrafficParams) (TrafficResult, error) {
	var res TrafficResult
	if len(p.Hosts) < 2 {
		return res, fmt.Errorf("attack: need at least 2 hosts, got %d", len(p.Hosts))
	}
	mk := func(host *netsim.Host, seed int64, linger time.Duration) (*pdnclient.Peer, error) {
		return pdnclient.New(pdnclient.Config{
			Host:        host,
			Network:     p.Network,
			SignalAddr:  p.SignalAddr,
			STUNAddr:    p.STUNAddr,
			CDNBase:     p.CDNBase,
			APIKey:      p.StolenKey,
			Origin:      p.Origin,
			Video:       p.Video,
			Rendition:   p.Rendition,
			MaxSegments: p.SegmentsPerPeer,
			Linger:      linger,
			Seed:        seed,
		})
	}

	seeder, err := mk(p.Hosts[0], 1, time.Minute)
	if err != nil {
		return res, err
	}
	seedDone := make(chan pdnclient.Stats, 1)
	go func() {
		st, _ := seeder.Run(ctx)
		seedDone <- st
	}()
	// Wait for the seeder to be ready to serve.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := seeder.Stats(); st.SegmentsPlayed >= p.SegmentsPerPeer && p.SegmentsPerPeer > 0 {
			break
		}
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		time.Sleep(10 * time.Millisecond)
	}
	res.JoinAccepted = seeder.ID() != ""

	for i, h := range p.Hosts[1:] {
		leech, err := mk(h, int64(i+2), 0)
		if err != nil {
			return res, err
		}
		st, err := leech.Run(ctx)
		if err != nil {
			return res, err
		}
		res.LeechStats = append(res.LeechStats, st)
		res.P2PBytes += st.P2PDownBytes
		res.P2PSegments += st.FromP2P
		res.CDNSegments += st.FromCDN
	}
	seeder.StopLinger()
	res.SeederStats = <-seedDone
	res.P2PBytes += res.SeederStats.P2PUpBytes
	return res, nil
}

// PollutionParams configures a content pollution attack.
type PollutionParams struct {
	Network    *netsim.Network
	SignalAddr netip.AddrPort
	STUNAddr   netip.AddrPort
	// RealCDNBase is the CDN the fake CDN shadows.
	RealCDNBase string
	// FakeCDNHost is the attacker machine hosting the fake CDN.
	FakeCDNHost *netsim.Host
	// MaliciousHost runs the attacker's peer.
	MaliciousHost *netsim.Host
	// Credentials for the malicious peer's join.
	APIKey   string
	Origin   string
	Token    string
	VideoURL string

	Video     string
	Rendition string
	// Pollute selects the substitution strategy: use
	// mitm.SameSizePollution for the segment pollution attack and
	// mitm.ForeignVideoPollution for the direct variant.
	Pollute mitm.PolluteFunc
	// Segments bounds the malicious peer's playback.
	Segments int
	// Insecure strips integrity verification from the malicious peer's
	// own client (pdnclient.Config.InsecureNoVerify). Against providers
	// that sign manifests the attacker must do this — an unmodified SDK
	// would reject the fake CDN's bytes before caching them — and it
	// also keeps the attacker from filing IM reports that would get it
	// blacklisted for contradicting the ground truth.
	Insecure bool
	// Obs and Tracer instrument the fake CDN and the malicious peer;
	// nil disables.
	Obs    *obs.Registry
	Tracer *obs.Tracer
}

// Pollution is a launched pollution attack.
type Pollution struct {
	FakeCDN   *mitm.FakeCDN
	Malicious *pdnclient.Peer

	done chan pdnclient.Stats
}

// LaunchPollution stands up the fake CDN and the malicious peer. The
// malicious peer plays the stream *through the fake CDN*, caching
// polluted segments it then serves to any victim that asks — it needs
// no knowledge of the PDN protocol at all.
func LaunchPollution(ctx context.Context, p PollutionParams) (*Pollution, error) {
	fake := mitm.NewFakeCDN(p.FakeCDNHost, p.RealCDNBase, p.Pollute)
	fake.Instrument(p.Obs, p.Tracer)
	if err := fake.Serve(p.FakeCDNHost, 80); err != nil {
		return nil, err
	}
	mal, err := pdnclient.New(pdnclient.Config{
		Host:             p.MaliciousHost,
		Network:          p.Network,
		SignalAddr:       p.SignalAddr,
		STUNAddr:         p.STUNAddr,
		CDNBase:          "http://" + p.FakeCDNHost.VisibleAddr().String() + ":80",
		APIKey:           p.APIKey,
		Origin:           p.Origin,
		Token:            p.Token,
		VideoURL:         p.VideoURL,
		Video:            p.Video,
		Rendition:        p.Rendition,
		MaxSegments:      p.Segments,
		Linger:           5 * time.Minute,
		Seed:             666,
		InsecureNoVerify: p.Insecure,
		Obs:              p.Obs,
		Tracer:           p.Tracer,
	})
	if err != nil {
		fake.Close()
		return nil, err
	}
	atk := &Pollution{FakeCDN: fake, Malicious: mal, done: make(chan pdnclient.Stats, 1)}
	go func() {
		st, _ := mal.Run(ctx)
		atk.done <- st
	}()
	// Wait until the malicious peer has cached its polluted segments.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := mal.Stats(); p.Segments > 0 && st.SegmentsPlayed >= p.Segments {
			return atk, nil
		}
		if ctx.Err() != nil {
			atk.Close()
			return nil, ctx.Err()
		}
		time.Sleep(10 * time.Millisecond)
	}
	atk.Close()
	return nil, fmt.Errorf("attack: malicious peer failed to seed (played %d)", mal.Stats().SegmentsPlayed)
}

// Close tears the attack down and returns the malicious peer's stats.
func (a *Pollution) Close() pdnclient.Stats {
	a.Malicious.StopLinger()
	a.FakeCDN.Close()
	select {
	case st := <-a.done:
		return st
	case <-time.After(10 * time.Second):
		return a.Malicious.Stats()
	}
}

// VictimObservation is what a victim peer experienced during an attack.
type VictimObservation struct {
	Stats            pdnclient.Stats
	PollutedSegments []media.SegmentKey
	PlayedSegments   int
	P2PSegments      int
}

// RunVictim plays the stream as an honest viewer and records which
// played segments fail ground-truth verification — the reproduction's
// automated stand-in for the paper's manual screen-recording check.
func RunVictim(ctx context.Context, network *netsim.Network, host *netsim.Host,
	signalAddr, stunAddr netip.AddrPort, cdnBase, apiKey, origin string,
	video *media.Video, rendition string, segments int, seed int64) (VictimObservation, error) {

	var obs VictimObservation
	peer, err := pdnclient.New(pdnclient.Config{
		Host:        host,
		Network:     network,
		SignalAddr:  signalAddr,
		STUNAddr:    stunAddr,
		CDNBase:     cdnBase,
		APIKey:      apiKey,
		Origin:      origin,
		Video:       video.ID,
		Rendition:   rendition,
		MaxSegments: segments,
		Seed:        seed,
		OnSegment: func(key media.SegmentKey, data []byte, source string) {
			obs.PlayedSegments++
			if source == pdnclient.SourceP2P {
				obs.P2PSegments++
			}
			if !video.Verify(key.Rendition, key.Index, data) {
				obs.PollutedSegments = append(obs.PollutedSegments, key)
			}
		},
	})
	if err != nil {
		return obs, err
	}
	st, err := peer.Run(ctx)
	obs.Stats = st
	return obs, err
}
