package attack

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/cdn"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/mitm"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

type bed struct {
	net     *netsim.Network
	cdnBase string
	dep     *provider.Deployment
	video   *media.Video
	key     string
	nextIP  byte
}

func newBed(t *testing.T, prof provider.Profile, segments int) *bed {
	t.Helper()
	const segBytes = 16 << 10
	video := &media.Video{
		ID:              "bbb",
		Renditions:      []media.Rendition{{Name: "360p", Bandwidth: segBytes * 8 / 10, SegmentBytes: segBytes}},
		Segments:        segments,
		SegmentDuration: 10,
	}
	n := netsim.New(netsim.Config{})
	cdnHost := n.MustHost(netip.MustParseAddr("93.184.216.34"))
	c := cdn.New()
	c.Register(video)
	if err := c.Serve(cdnHost, 80); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	sigHost := n.MustHost(netip.MustParseAddr("44.1.1.1"))
	dep, err := provider.Deploy(context.Background(), prof, sigHost, provider.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })

	b := &bed{net: n, cdnBase: "http://93.184.216.34:80", dep: dep, video: video}
	if prof.Public {
		b.key = dep.IssueKey("victim.com")
	}
	return b
}

func (b *bed) host(t *testing.T) *netsim.Host {
	t.Helper()
	b.nextIP++
	return b.net.MustHost(netip.AddrFrom4([4]byte{66, 24, 7, b.nextIP}))
}

func TestCrossDomainProbe(t *testing.T) {
	b := newBed(t, provider.Peer5(), 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ok, err := CrossDomain(ctx, b.host(t), b.dep.SignalAddr, b.key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Peer5-like default should accept cross-domain joins")
	}
	// A bogus key fails.
	ok, err = CrossDomain(ctx, b.host(t), b.dep.SignalAddr, "not-a-key")
	if err != nil || ok {
		t.Fatalf("bogus key: ok=%v err=%v", ok, err)
	}
}

func TestCrossDomainBlockedByViblastAllowlist(t *testing.T) {
	b := newBed(t, provider.Viblast(), 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ok, err := CrossDomain(ctx, b.host(t), b.dep.SignalAddr, b.key)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Viblast-like allowlist should block cross-domain joins")
	}
}

func TestDomainSpoofBeatsAllowlist(t *testing.T) {
	b := newBed(t, provider.Viblast(), 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ok, err := DomainSpoof(ctx, b.host(t), b.host(t), b.dep.SignalAddr, b.key, "victim.com")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("domain spoofing should defeat the allowlist")
	}
}

func TestGenerateTrafficBillsVictim(t *testing.T) {
	b := newBed(t, provider.Peer5(), 6)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	before := b.dep.Keys.Usage("victim.com").P2PBytes
	res, err := GenerateTraffic(ctx, TrafficParams{
		Network:         b.net,
		SignalAddr:      b.dep.SignalAddr,
		STUNAddr:        b.dep.STUNAddr,
		CDNBase:         b.cdnBase,
		StolenKey:       b.key,
		Origin:          "https://freerider.evil",
		Video:           "bbb",
		Rendition:       "360p",
		Hosts:           []*netsim.Host{b.host(t), b.host(t), b.host(t)},
		SegmentsPerPeer: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.JoinAccepted {
		t.Fatal("free riders should be accepted by a Peer5-like service")
	}
	if res.P2PSegments == 0 || res.P2PBytes == 0 {
		t.Fatalf("no P2P traffic generated: %+v", res)
	}
	// The victim's meter moved even though no victim viewer was online.
	waitFor(t, 10*time.Second, func() bool {
		return b.dep.Keys.Usage("victim.com").P2PBytes > before
	})
	if cost := b.dep.Keys.Cost("victim.com"); cost <= 0 {
		t.Fatalf("victim cost did not increase: %v", cost)
	}
}

func TestSegmentPollutionPropagates(t *testing.T) {
	b := newBed(t, provider.Peer5(), 6)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	atk, err := LaunchPollution(ctx, PollutionParams{
		Network:       b.net,
		SignalAddr:    b.dep.SignalAddr,
		STUNAddr:      b.dep.STUNAddr,
		RealCDNBase:   b.cdnBase,
		FakeCDNHost:   b.net.MustHost(netip.MustParseAddr("13.13.13.13")),
		MaliciousHost: b.host(t),
		APIKey:        b.key,
		Origin:        "https://victim.com",
		Video:         "bbb",
		Rendition:     "360p",
		Pollute:       mitm.SameSizePollution([]int{3, 4}),
		Segments:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer atk.Close()
	if atk.FakeCDN.Substitutions() < 2 {
		t.Fatalf("fake CDN substituted %d segments", atk.FakeCDN.Substitutions())
	}

	obs, err := RunVictim(ctx, b.net, b.host(t), b.dep.SignalAddr, b.dep.STUNAddr,
		b.cdnBase, b.key, "https://victim.com", b.video, "360p", 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	if obs.P2PSegments == 0 {
		t.Fatalf("victim never used P2P: %+v", obs.Stats)
	}
	if len(obs.PollutedSegments) == 0 {
		t.Fatal("pollution did not propagate to the victim")
	}
	for _, k := range obs.PollutedSegments {
		if k.Index != 3 && k.Index != 4 {
			t.Fatalf("unexpected polluted segment %v", k)
		}
	}
}

func TestDirectPollutionDefeatedBySlowStartConsistency(t *testing.T) {
	b := newBed(t, provider.Peer5(), 6)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	foreign := &media.Video{
		ID:              "attacker-movie",
		Renditions:      []media.Rendition{{Name: "360p", Bandwidth: 999, SegmentBytes: 4 << 10}},
		Segments:        2,
		SegmentDuration: 10,
	}
	atk, err := LaunchPollution(ctx, PollutionParams{
		Network:       b.net,
		SignalAddr:    b.dep.SignalAddr,
		STUNAddr:      b.dep.STUNAddr,
		RealCDNBase:   b.cdnBase,
		FakeCDNHost:   b.net.MustHost(netip.MustParseAddr("13.13.13.13")),
		MaliciousHost: b.host(t),
		APIKey:        b.key,
		Origin:        "https://victim.com",
		Video:         "bbb",
		Rendition:     "360p",
		Pollute:       mitm.ForeignVideoPollution(foreign, "360p"),
		Segments:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer atk.Close()

	obs, err := RunVictim(ctx, b.net, b.host(t), b.dep.SignalAddr, b.dep.STUNAddr,
		b.cdnBase, b.key, "https://victim.com", b.video, "360p", 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.PollutedSegments) != 0 {
		t.Fatalf("direct pollution should be rejected; victim played %v polluted", obs.PollutedSegments)
	}
	if obs.PlayedSegments != 6 {
		t.Fatalf("victim should still complete playback via CDN: %+v", obs)
	}
	if obs.P2PSegments != 0 {
		t.Fatalf("inconsistent segments should never be accepted over P2P: %+v", obs)
	}
}

func TestGenerateTrafficValidation(t *testing.T) {
	b := newBed(t, provider.Peer5(), 2)
	ctx := context.Background()
	_, err := GenerateTraffic(ctx, TrafficParams{Hosts: []*netsim.Host{b.host(t)}})
	if err == nil {
		t.Fatal("single-host traffic generation should fail")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not met before timeout")
}
