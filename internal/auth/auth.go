// Package auth implements PDN customer authentication and usage
// metering: static API keys with optional domain allowlists (the
// mechanism all three public providers in the paper use), temporary
// session tokens (the mechanism private providers use), and the billing
// meters that make the paper's free-riding attack economically
// meaningful.
//
// The paper's core finding in §IV-B is that a *persistent, publicly
// visible* API key is the only credential gating PDN use, and that the
// secondary defense — a domain allowlist checked against the HTTP
// Origin/Referer headers — trusts client-reported values and is
// therefore spoofable. Both properties are reproduced deliberately:
// Registry.Authenticate checks exactly what the paper's targets check.
package auth

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Errors returned by authentication.
var (
	ErrUnknownKey    = errors.New("auth: unknown API key")
	ErrExpiredKey    = errors.New("auth: expired API key")
	ErrOriginDenied  = errors.New("auth: origin not in domain allowlist")
	ErrUnknownToken  = errors.New("auth: unknown session token")
	ErrTokenExpired  = errors.New("auth: session token expired")
	ErrVideoMismatch = errors.New("auth: token not valid for this video")
)

// Plan is a provider's pricing model.
type Plan int

// Pricing models observed by the paper: Peer5 and Streamroot charge per
// P2P traffic volume; Viblast charges per concurrent-viewer hour.
const (
	PlanPerTraffic Plan = iota + 1
	PlanPerViewerHour
)

// String names the plan.
func (p Plan) String() string {
	switch p {
	case PlanPerTraffic:
		return "per-traffic"
	case PlanPerViewerHour:
		return "per-viewer-hour"
	default:
		return fmt.Sprintf("Plan(%d)", int(p))
	}
}

// Key is one customer's API key record.
type Key struct {
	// Value is the key string embedded in the customer's pages/apps —
	// and therefore visible to any attacker, the paper's root cause.
	Value string
	// Customer is the owning PDN customer (e.g. a website domain).
	Customer string
	// Allowlist, when non-empty, restricts the Origin domains accepted
	// with this key. Empty means any origin (Peer5/Streamroot default).
	Allowlist []string
	// Expired marks keys that no longer validate (4 of the 44 keys the
	// paper extracted were expired).
	Expired bool
}

// Usage accumulates billable activity for one customer.
type Usage struct {
	P2PBytes      int64         `json:"p2p_bytes"`
	CDNBytes      int64         `json:"cdn_bytes"`
	ViewerSeconds time.Duration `json:"viewer_seconds"`
	Joins         int           `json:"joins"`
}

// Registry stores API keys and usage meters. Safe for concurrent use.
type Registry struct {
	plan Plan
	// ratePerGB is the price per GB of P2P traffic for PlanPerTraffic
	// ($500/50TB for Peer5 ≈ $0.01/GB).
	ratePerGB float64
	// ratePerViewerHour is the price per concurrent viewer hour for
	// PlanPerViewerHour ($0.01 for Viblast).
	ratePerViewerHour float64

	mu    sync.Mutex
	keys  map[string]*Key
	usage map[string]*Usage
}

// NewRegistry creates an empty key registry with the given pricing.
func NewRegistry(plan Plan) *Registry {
	return &Registry{
		plan:              plan,
		ratePerGB:         0.01,
		ratePerViewerHour: 0.01,
		keys:              make(map[string]*Key),
		usage:             make(map[string]*Usage),
	}
}

// Plan returns the registry's pricing model.
func (r *Registry) Plan() Plan { return r.plan }

// Issue registers a new API key for a customer and returns its value.
// The allowlist may be nil (no origin restriction).
func (r *Registry) Issue(customer string, allowlist []string) string {
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		panic(fmt.Sprintf("auth: rand: %v", err))
	}
	value := hex.EncodeToString(raw[:])
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys[value] = &Key{Value: value, Customer: customer, Allowlist: append([]string(nil), allowlist...)}
	return value
}

// AddKey registers a fully-specified key (for corpus-driven tests that
// model specific keys extracted from customer pages).
func (r *Registry) AddKey(k Key) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := k
	cp.Allowlist = append([]string(nil), k.Allowlist...)
	r.keys[k.Value] = &cp
}

// SetAllowlist replaces a key's domain allowlist.
func (r *Registry) SetAllowlist(value string, domains []string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.keys[value]
	if !ok {
		return ErrUnknownKey
	}
	k.Allowlist = append([]string(nil), domains...)
	return nil
}

// Authenticate validates an API key against a client-reported origin,
// returning the owning customer. It reproduces the deployed mechanism:
// the origin is whatever the client claimed (HTTP Origin header), so a
// spoofed header defeats the allowlist — the paper's domain-spoofing
// attack.
func (r *Registry) Authenticate(keyValue, origin string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.keys[keyValue]
	if !ok {
		return "", ErrUnknownKey
	}
	if k.Expired {
		return "", ErrExpiredKey
	}
	if len(k.Allowlist) > 0 && !originAllowed(origin, k.Allowlist) {
		return "", ErrOriginDenied
	}
	return k.Customer, nil
}

// originAllowed matches an origin like "https://www.example.com" or a
// bare domain against allowlisted domains (exact or subdomain match).
func originAllowed(origin string, allow []string) bool {
	host := origin
	if i := strings.Index(host, "://"); i >= 0 {
		host = host[i+3:]
	}
	if i := strings.IndexByte(host, '/'); i >= 0 {
		host = host[:i]
	}
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	host = strings.ToLower(host)
	for _, d := range allow {
		d = strings.ToLower(d)
		if host == d || strings.HasSuffix(host, "."+d) {
			return true
		}
	}
	return false
}

// Key returns a copy of the key record, for inspection in tests.
func (r *Registry) Key(value string) (Key, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k, ok := r.keys[value]
	if !ok {
		return Key{}, false
	}
	cp := *k
	cp.Allowlist = append([]string(nil), k.Allowlist...)
	return cp, true
}

// RecordJoin meters one viewer join for the customer.
func (r *Registry) RecordJoin(customer string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.usageLocked(customer).Joins++
}

// RecordP2P meters P2P traffic attributed to the customer (as reported
// by SDK stats messages — which is why attacker-generated traffic bills
// the victim).
func (r *Registry) RecordP2P(customer string, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.usageLocked(customer).P2PBytes += bytes
}

// RecordCDN meters CDN fallback traffic for the customer.
func (r *Registry) RecordCDN(customer string, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.usageLocked(customer).CDNBytes += bytes
}

// RecordViewerTime meters concurrent-viewer time for the customer.
func (r *Registry) RecordViewerTime(customer string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.usageLocked(customer).ViewerSeconds += d
}

func (r *Registry) usageLocked(customer string) *Usage {
	u, ok := r.usage[customer]
	if !ok {
		u = &Usage{}
		r.usage[customer] = u
	}
	return u
}

// Usage returns a copy of the customer's meters.
func (r *Registry) Usage(customer string) Usage {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.usage[customer]
	if !ok {
		return Usage{}
	}
	return *u
}

// Cost computes the customer's bill in dollars under the registry plan.
func (r *Registry) Cost(customer string) float64 {
	u := r.Usage(customer)
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.plan {
	case PlanPerTraffic:
		return float64(u.P2PBytes) / 1e9 * r.ratePerGB
	case PlanPerViewerHour:
		return u.ViewerSeconds.Hours() * r.ratePerViewerHour
	default:
		return 0
	}
}

// TokenStore issues and validates the temporary session tokens private
// PDN services use. Binding controls whether a token is tied to the
// video source URL: the paper found Mango TV's extracted SDK imposed no
// constraint at all, and Tencent Video's token was not bound to the
// video URL — both free-ridable.
type TokenStore struct {
	// BindVideo requires the token's video to match at validation.
	BindVideo bool
	// TTL is each token's lifetime.
	TTL time.Duration

	mu     sync.Mutex
	tokens map[string]sessionToken
	now    func() time.Time
}

type sessionToken struct {
	video   string
	expires time.Time
}

// NewTokenStore constructs a token store.
func NewTokenStore(bindVideo bool, ttl time.Duration) *TokenStore {
	return &TokenStore{
		BindVideo: bindVideo,
		TTL:       ttl,
		tokens:    make(map[string]sessionToken),
		now:       time.Now,
	}
}

// Issue creates a session token for the given video source.
func (s *TokenStore) Issue(video string) string {
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		panic(fmt.Sprintf("auth: rand: %v", err))
	}
	tok := hex.EncodeToString(raw[:])
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tokens[tok] = sessionToken{video: video, expires: s.now().Add(s.TTL)}
	return tok
}

// Validate checks a session token, optionally enforcing video binding.
func (s *TokenStore) Validate(token, video string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.tokens[token]
	if !ok {
		return ErrUnknownToken
	}
	if s.now().After(st.expires) {
		return ErrTokenExpired
	}
	if s.BindVideo && st.video != video {
		return ErrVideoMismatch
	}
	return nil
}

// SetClock overrides the store's time source (tests).
func (s *TokenStore) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}
