package auth

import (
	"testing"
	"testing/quick"
	"time"
)

func TestIssueAndAuthenticateNoAllowlist(t *testing.T) {
	r := NewRegistry(PlanPerTraffic)
	key := r.Issue("example.com", nil)
	// No allowlist: any origin passes — the Peer5/Streamroot default and
	// the cross-domain attack's precondition.
	cust, err := r.Authenticate(key, "https://attacker.evil")
	if err != nil || cust != "example.com" {
		t.Fatalf("Authenticate = %q, %v", cust, err)
	}
}

func TestAllowlistBlocksCrossDomain(t *testing.T) {
	r := NewRegistry(PlanPerTraffic)
	key := r.Issue("example.com", []string{"example.com"})
	if _, err := r.Authenticate(key, "https://attacker.evil"); err != ErrOriginDenied {
		t.Fatalf("err = %v, want ErrOriginDenied", err)
	}
	// ...but a spoofed Origin header sails through: the server can only
	// check what the client claims.
	cust, err := r.Authenticate(key, "https://example.com")
	if err != nil || cust != "example.com" {
		t.Fatalf("spoofed origin: %q, %v", cust, err)
	}
}

func TestAllowlistSubdomains(t *testing.T) {
	r := NewRegistry(PlanPerTraffic)
	key := r.Issue("example.com", []string{"example.com"})
	for _, origin := range []string{"https://www.example.com", "http://video.example.com:8080", "example.com", "www.example.com/player"} {
		if _, err := r.Authenticate(key, origin); err != nil {
			t.Errorf("origin %q should pass: %v", origin, err)
		}
	}
	for _, origin := range []string{"https://notexample.com", "https://example.com.evil.net", "https://evil.net"} {
		if _, err := r.Authenticate(key, origin); err != ErrOriginDenied {
			t.Errorf("origin %q should be denied, got %v", origin, err)
		}
	}
}

func TestUnknownAndExpiredKeys(t *testing.T) {
	r := NewRegistry(PlanPerTraffic)
	if _, err := r.Authenticate("nope", "x"); err != ErrUnknownKey {
		t.Fatalf("err = %v", err)
	}
	r.AddKey(Key{Value: "old", Customer: "c", Expired: true})
	if _, err := r.Authenticate("old", "x"); err != ErrExpiredKey {
		t.Fatalf("err = %v", err)
	}
}

func TestSetAllowlist(t *testing.T) {
	r := NewRegistry(PlanPerTraffic)
	key := r.Issue("c", nil)
	if err := r.SetAllowlist(key, []string{"c.com"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Authenticate(key, "https://other.com"); err != ErrOriginDenied {
		t.Fatalf("allowlist not applied: %v", err)
	}
	if err := r.SetAllowlist("missing", nil); err != ErrUnknownKey {
		t.Fatalf("err = %v", err)
	}
}

func TestKeyCopyIsolated(t *testing.T) {
	r := NewRegistry(PlanPerTraffic)
	key := r.Issue("c", []string{"a.com"})
	k, ok := r.Key(key)
	if !ok {
		t.Fatal("key not found")
	}
	k.Allowlist[0] = "evil.com"
	if _, err := r.Authenticate(key, "https://evil.com"); err == nil {
		t.Fatal("mutating the returned copy must not affect the registry")
	}
}

func TestBillingPerTraffic(t *testing.T) {
	r := NewRegistry(PlanPerTraffic)
	r.Issue("victim.com", nil)
	// Paper: Peer5 charges $500 per 50TB => $0.01/GB.
	r.RecordP2P("victim.com", 50_000_000_000_000) // 50 TB
	cost := r.Cost("victim.com")
	if cost < 499 || cost > 501 {
		t.Fatalf("50TB should cost ~$500, got $%.2f", cost)
	}
}

func TestBillingPerViewerHour(t *testing.T) {
	r := NewRegistry(PlanPerViewerHour)
	r.RecordViewerTime("victim.com", 100*time.Hour)
	if cost := r.Cost("victim.com"); cost != 1.0 {
		t.Fatalf("100 viewer-hours at $0.01 = $1, got %v", cost)
	}
}

func TestUsageAccumulates(t *testing.T) {
	r := NewRegistry(PlanPerTraffic)
	r.RecordJoin("c")
	r.RecordJoin("c")
	r.RecordP2P("c", 100)
	r.RecordCDN("c", 200)
	u := r.Usage("c")
	if u.Joins != 2 || u.P2PBytes != 100 || u.CDNBytes != 200 {
		t.Fatalf("usage %+v", u)
	}
	if u2 := r.Usage("nobody"); u2 != (Usage{}) {
		t.Fatalf("unknown customer usage %+v", u2)
	}
}

func TestTokenStoreBasic(t *testing.T) {
	s := NewTokenStore(true, time.Minute)
	tok := s.Issue("https://cdn/x.m3u8")
	if err := s.Validate(tok, "https://cdn/x.m3u8"); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(tok, "https://cdn/other.m3u8"); err != ErrVideoMismatch {
		t.Fatalf("err = %v, want ErrVideoMismatch", err)
	}
	if err := s.Validate("bogus", "x"); err != ErrUnknownToken {
		t.Fatalf("err = %v", err)
	}
}

func TestTokenStoreNoBinding(t *testing.T) {
	// Tencent-style: token not bound to the video URL → reusable for any
	// stream, which is the free-riding exposure the paper flags.
	s := NewTokenStore(false, time.Minute)
	tok := s.Issue("https://cdn/x.m3u8")
	if err := s.Validate(tok, "https://attacker/own.m3u8"); err != nil {
		t.Fatalf("unbound token should validate anywhere: %v", err)
	}
}

func TestTokenExpiry(t *testing.T) {
	s := NewTokenStore(true, time.Minute)
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })
	tok := s.Issue("v")
	now = now.Add(2 * time.Minute)
	if err := s.Validate(tok, "v"); err != ErrTokenExpired {
		t.Fatalf("err = %v, want ErrTokenExpired", err)
	}
}

func TestPlanString(t *testing.T) {
	if PlanPerTraffic.String() != "per-traffic" || PlanPerViewerHour.String() != "per-viewer-hour" {
		t.Fatal("plan names")
	}
}

// Property: issued keys are unique and always authenticate for their
// own customer with no allowlist.
func TestQuickIssuedKeysAuthenticate(t *testing.T) {
	r := NewRegistry(PlanPerTraffic)
	seen := make(map[string]bool)
	f := func(customer string) bool {
		key := r.Issue(customer, nil)
		if seen[key] {
			return false
		}
		seen[key] = true
		got, err := r.Authenticate(key, "anything")
		return err == nil && got == customer
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
