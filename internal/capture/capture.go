// Package capture is the testbed's tcpdump + Wireshark-script
// equivalent: it records traffic at a simulated host and classifies it
// the way the paper's pipeline does — identifying plaintext STUN binding
// exchanges, spotting DTLS records between candidate peer pairs, and
// harvesting the peer IP addresses that STUN exposes.
//
// The paper's dynamic PDN detector declares a site a confirmed PDN
// customer when it observes STUN binding requests followed by a DTLS
// connection between known candidate peers (§III-C); ConfirmPDN encodes
// that rule. Its IP-leak experiments extract "IP exchange requests and
// responses in STUN protocols" from captures (§IV-D); HarvestPeerIPs
// encodes that script.
package capture

import (
	"net/netip"
	"sync"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/stun"
)

// Recorder buffers packets observed at one host. Attach it with
// host.AddTap(rec.Tap). It is safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	packets []netsim.Packet
	limit   int
}

// NewRecorder returns a recorder retaining at most limit packets
// (0 means unlimited).
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Tap is the netsim.Tap to register on the observed host.
func (r *Recorder) Tap(p netsim.Packet) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit > 0 && len(r.packets) >= r.limit {
		return
	}
	r.packets = append(r.packets, p)
}

// Packets returns a snapshot of the recorded traffic.
func (r *Recorder) Packets() []netsim.Packet {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]netsim.Packet, len(r.packets))
	copy(out, r.packets)
	return out
}

// Reset discards all recorded packets.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.packets = nil
}

// STUNObservation is one decoded STUN message seen on the wire.
type STUNObservation struct {
	Packet netsim.Packet
	Msg    *stun.Message
}

// FindSTUN decodes every captured datagram that parses as STUN.
func FindSTUN(packets []netsim.Packet) []STUNObservation {
	var out []STUNObservation
	for _, p := range packets {
		if p.Proto != netsim.ProtoUDP || !stun.Is(p.Payload) {
			continue
		}
		m, err := stun.Decode(p.Payload)
		if err != nil {
			continue
		}
		out = append(out, STUNObservation{Packet: p, Msg: m})
	}
	return out
}

// DTLSObservation is one DTLS record sighting.
type DTLSObservation struct {
	Packet    netsim.Packet
	Handshake bool // true for ContentHandshake records
}

// IsDTLSRecord reports whether a payload starts with a DTLS record
// header: a handshake (0x16) or application-data (0x17) content type
// followed by the DTLS 1.2 version bytes.
func IsDTLSRecord(payload []byte) (handshake, ok bool) {
	if len(payload) < 3 {
		return false, false
	}
	if payload[1] != 0xfe || payload[2] != 0xfd {
		return false, false
	}
	switch payload[0] {
	case 0x16:
		return true, true
	case 0x17:
		return false, true
	default:
		return false, false
	}
}

// FindDTLS returns every captured transmission that begins a DTLS record.
func FindDTLS(packets []netsim.Packet) []DTLSObservation {
	var out []DTLSObservation
	for _, p := range packets {
		hs, ok := IsDTLSRecord(p.Payload)
		if !ok {
			continue
		}
		out = append(out, DTLSObservation{Packet: p, Handshake: hs})
	}
	return out
}

// ConfirmPDN applies the paper's dynamic-detection rule to a capture:
// PDN traffic is confirmed when (a) at least one STUN binding request is
// observed, and (b) a DTLS handshake record follows between a host pair
// that also exchanged STUN. Host pairs are compared by address only
// (ports differ between the ICE and transport flows).
func ConfirmPDN(packets []netsim.Packet) bool {
	stunPairs := make(map[[2]netip.Addr]bool)
	sawBinding := false
	for _, obs := range FindSTUN(packets) {
		if obs.Msg.Type == stun.TypeBindingRequest {
			sawBinding = true
		}
		stunPairs[pairKey(obs.Packet.Src.Addr(), obs.Packet.Dst.Addr())] = true
	}
	if !sawBinding {
		return false
	}
	for _, obs := range FindDTLS(packets) {
		if !obs.Handshake {
			continue
		}
		if stunPairs[pairKey(obs.Packet.Src.Addr(), obs.Packet.Dst.Addr())] {
			return true
		}
	}
	return false
}

func pairKey(a, b netip.Addr) [2]netip.Addr {
	if b.Less(a) {
		a, b = b, a
	}
	return [2]netip.Addr{a, b}
}

// HarvestPeerIPs extracts every peer address a capture exposes to the
// observing host: source addresses of STUN messages it received and any
// XOR-MAPPED-ADDRESS / candidate addresses carried inside them. self is
// excluded. This is the paper's IP-leak harvesting script.
func HarvestPeerIPs(packets []netsim.Packet, self netip.Addr) []netip.Addr {
	seen := make(map[netip.Addr]bool)
	var out []netip.Addr
	add := func(a netip.Addr) {
		if !a.IsValid() || a == self || seen[a] {
			return
		}
		seen[a] = true
		out = append(out, a)
	}
	for _, obs := range FindSTUN(packets) {
		if obs.Packet.Dir == netsim.DirIn {
			add(obs.Packet.Src.Addr())
		}
		if obs.Msg.XORMappedAddress.IsValid() {
			add(obs.Msg.XORMappedAddress.Addr())
		}
	}
	return out
}

// Stats summarizes a capture.
type Stats struct {
	Packets      int   `json:"packets"`
	UDPBytes     int64 `json:"udp_bytes"`
	TCPBytes     int64 `json:"tcp_bytes"`
	STUNMessages int   `json:"stun_messages"`
	DTLSRecords  int   `json:"dtls_records"`
}

// Summarize computes aggregate statistics for a capture.
func Summarize(packets []netsim.Packet) Stats {
	var s Stats
	s.Packets = len(packets)
	for _, p := range packets {
		switch p.Proto {
		case netsim.ProtoUDP:
			s.UDPBytes += int64(len(p.Payload))
		case netsim.ProtoTCP:
			s.TCPBytes += int64(len(p.Payload))
		}
		if stun.Is(p.Payload) {
			s.STUNMessages++
		}
		if _, ok := IsDTLSRecord(p.Payload); ok {
			s.DTLSRecords++
		}
	}
	return s
}
