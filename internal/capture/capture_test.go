package capture

import (
	"net/netip"
	"testing"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/stun"
)

func ap(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

func udpPkt(src, dst string, payload []byte, dir netsim.Direction) netsim.Packet {
	return netsim.Packet{Proto: netsim.ProtoUDP, Dir: dir, Src: ap(src), Dst: ap(dst), Payload: payload}
}

func tcpPkt(src, dst string, payload []byte, dir netsim.Direction) netsim.Packet {
	return netsim.Packet{Proto: netsim.ProtoTCP, Dir: dir, Src: ap(src), Dst: ap(dst), Payload: payload}
}

func dtlsHandshakeBytes() []byte {
	return []byte{0x16, 0xfe, 0xfd, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
}

func dtlsAppDataBytes() []byte {
	return []byte{0x17, 0xfe, 0xfd, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
}

func TestRecorderTapAndLimit(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Tap(udpPkt("1.1.1.1:1", "2.2.2.2:2", []byte{byte(i)}, netsim.DirIn))
	}
	if got := len(r.Packets()); got != 2 {
		t.Fatalf("limit not enforced: %d", got)
	}
	r.Reset()
	if len(r.Packets()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestFindSTUN(t *testing.T) {
	req := stun.BindingRequest("u:p", 1).Encode()
	pkts := []netsim.Packet{
		udpPkt("9.9.9.9:5000", "8.8.8.8:3478", req, netsim.DirIn),
		udpPkt("9.9.9.9:5000", "8.8.8.8:3478", []byte("not stun at all......."), netsim.DirIn),
		tcpPkt("9.9.9.9:5000", "8.8.8.8:80", req, netsim.DirIn), // STUN over TCP not classified
	}
	obs := FindSTUN(pkts)
	if len(obs) != 1 {
		t.Fatalf("found %d STUN messages, want 1", len(obs))
	}
	if obs[0].Msg.Type != stun.TypeBindingRequest || obs[0].Msg.Username != "u:p" {
		t.Fatalf("decoded %+v", obs[0].Msg)
	}
}

func TestIsDTLSRecord(t *testing.T) {
	if hs, ok := IsDTLSRecord(dtlsHandshakeBytes()); !ok || !hs {
		t.Fatal("handshake record not recognized")
	}
	if hs, ok := IsDTLSRecord(dtlsAppDataBytes()); !ok || hs {
		t.Fatal("appdata record not recognized")
	}
	for _, bad := range [][]byte{nil, {0x16}, {0x18, 0xfe, 0xfd}, {0x16, 0x03, 0x03}, []byte("GET / HTTP/1.1")} {
		if _, ok := IsDTLSRecord(bad); ok {
			t.Fatalf("accepted %v", bad)
		}
	}
}

func TestConfirmPDNRequiresBothSignals(t *testing.T) {
	req := stun.BindingRequest("a:b", 1).Encode()
	a, b := "5.5.5.5:4000", "6.6.6.6:4001"

	// STUN only: not confirmed.
	stunOnly := []netsim.Packet{udpPkt(a, b, req, netsim.DirOut)}
	if ConfirmPDN(stunOnly) {
		t.Fatal("STUN alone must not confirm PDN")
	}
	// DTLS only: not confirmed.
	dtlsOnly := []netsim.Packet{tcpPkt(a, b, dtlsHandshakeBytes(), netsim.DirOut)}
	if ConfirmPDN(dtlsOnly) {
		t.Fatal("DTLS alone must not confirm PDN")
	}
	// STUN + DTLS on the same pair (different ports): confirmed.
	both := []netsim.Packet{
		udpPkt(a, b, req, netsim.DirOut),
		tcpPkt("5.5.5.5:9000", "6.6.6.6:9001", dtlsHandshakeBytes(), netsim.DirOut),
	}
	if !ConfirmPDN(both) {
		t.Fatal("STUN + DTLS on same pair should confirm PDN")
	}
	// DTLS between unrelated hosts: not confirmed.
	unrelated := []netsim.Packet{
		udpPkt(a, b, req, netsim.DirOut),
		tcpPkt("7.7.7.7:9000", "8.8.8.8:9001", dtlsHandshakeBytes(), netsim.DirOut),
	}
	if ConfirmPDN(unrelated) {
		t.Fatal("DTLS on unrelated pair must not confirm")
	}
	// AppData DTLS without handshake: not confirmed.
	appOnly := []netsim.Packet{
		udpPkt(a, b, req, netsim.DirOut),
		tcpPkt(a, b, dtlsAppDataBytes(), netsim.DirOut),
	}
	if ConfirmPDN(appOnly) {
		t.Fatal("appdata without handshake must not confirm")
	}
}

func TestConfirmPDNPairIsSymmetric(t *testing.T) {
	req := stun.BindingRequest("a:b", 1).Encode()
	pkts := []netsim.Packet{
		udpPkt("5.5.5.5:4000", "6.6.6.6:4001", req, netsim.DirOut),
		// DTLS initiated in the reverse direction.
		tcpPkt("6.6.6.6:9001", "5.5.5.5:9000", dtlsHandshakeBytes(), netsim.DirIn),
	}
	if !ConfirmPDN(pkts) {
		t.Fatal("pair matching must be direction-agnostic")
	}
}

func TestHarvestPeerIPs(t *testing.T) {
	self := netip.MustParseAddr("5.5.5.5")
	reqFromPeer := stun.BindingRequest("x:y", 1).Encode()
	respWithMapped := stun.BindingSuccess(stun.NewTxID(), ap("100.64.0.7:1234")).Encode()

	pkts := []netsim.Packet{
		// Inbound binding from a public peer: source harvested.
		udpPkt("9.9.9.9:4000", "5.5.5.5:4001", reqFromPeer, netsim.DirIn),
		// Inbound response carrying a mapped (CGN) address: both source
		// and mapped address harvested.
		udpPkt("7.7.7.7:3478", "5.5.5.5:4001", respWithMapped, netsim.DirIn),
		// Outbound message: source is self, not harvested from Src.
		udpPkt("5.5.5.5:4001", "9.9.9.9:4000", reqFromPeer, netsim.DirOut),
		// Duplicate inbound: no double counting.
		udpPkt("9.9.9.9:4000", "5.5.5.5:4001", reqFromPeer, netsim.DirIn),
	}
	got := HarvestPeerIPs(pkts, self)
	want := map[string]bool{"9.9.9.9": true, "7.7.7.7": true, "100.64.0.7": true}
	if len(got) != len(want) {
		t.Fatalf("harvested %v, want %d addrs", got, len(want))
	}
	for _, a := range got {
		if !want[a.String()] {
			t.Fatalf("unexpected harvested addr %v in %v", a, got)
		}
	}
}

func TestSummarize(t *testing.T) {
	req := stun.BindingRequest("a:b", 1).Encode()
	pkts := []netsim.Packet{
		udpPkt("1.1.1.1:1", "2.2.2.2:2", req, netsim.DirIn),
		tcpPkt("1.1.1.1:1", "2.2.2.2:2", dtlsHandshakeBytes(), netsim.DirOut),
		tcpPkt("1.1.1.1:1", "2.2.2.2:2", []byte("plain http"), netsim.DirOut),
	}
	s := Summarize(pkts)
	if s.Packets != 3 || s.STUNMessages != 1 || s.DTLSRecords != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.UDPBytes != int64(len(req)) || s.TCPBytes != int64(16+len("plain http")) {
		t.Fatalf("byte counts %+v", s)
	}
}

func TestRecorderUnlimited(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 1000; i++ {
		r.Tap(udpPkt("1.1.1.1:1", "2.2.2.2:2", []byte{1}, netsim.DirIn))
	}
	if len(r.Packets()) != 1000 {
		t.Fatal("unlimited recorder dropped packets")
	}
}
