// Package cdn implements the HTTP video origin/edge the testbed streams
// from: a real net/http server running on the simulated network, serving
// HLS master/media playlists and media segments for registered videos,
// with per-video byte accounting.
//
// The paper's testbed used a Wowza origin behind Amazon CloudFront; the
// experiments only depend on the CDN being an ordinary HTTP endpoint
// that (a) peers fall back to, (b) bills the customer for every byte,
// and (c) an attacker's proxy can impersonate (the fake-CDN pollution
// attack redirects a peer's segment requests to a look-alike server).
// All three hold here.
package cdn

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/hls"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/obs"
)

// LiveWindow is the number of segments a live media playlist exposes.
const LiveWindow = 6

// Server is a CDN node serving registered videos over HTTP.
type Server struct {
	mu      sync.Mutex
	videos  map[string]*media.Video
	started map[string]time.Time // live stream start times
	bytes   map[string]int64     // bytes served per video
	reqs    map[string]int64     // requests per video
	now     func() time.Time

	segCache segMemo

	reqsTotal  *obs.Counter
	bytesTotal *obs.Counter
	videoBytes *obs.CounterVec
	cacheHits  *obs.Counter
	cacheMiss  *obs.Counter
	tracer     *obs.Tracer

	httpSrv  *http.Server
	listener *netsim.Listener
	srvWG    sync.WaitGroup
}

// New constructs an empty CDN server.
func New() *Server {
	s := &Server{
		videos:  make(map[string]*media.Video),
		started: make(map[string]time.Time),
		bytes:   make(map[string]int64),
		reqs:    make(map[string]int64),
		now:     time.Now,
	}
	return s
}

// Instrument registers the server's metrics in reg. Call before Serve;
// nil reg is a no-op (handles stay nil-safe).
func (s *Server) Instrument(reg *obs.Registry) {
	s.reqsTotal = reg.Counter("cdn_requests_total", "HTTP requests served by the CDN")
	s.bytesTotal = reg.Counter("cdn_bytes_total", "bytes served by the CDN (billed to the customer)")
	s.videoBytes = reg.CounterVec("cdn_video_bytes_total", "bytes served per video", "video")
	s.cacheHits = reg.Counter("cdn_cache_hits_total", "segment responses satisfied from the edge cache")
	s.cacheMiss = reg.Counter("cdn_cache_misses_total", "segment responses synthesized at the origin")
}

// SetTracer installs a tracer for segment serves. A client falling back
// to the CDN sends its segment span's context in the traceparent header;
// the CDN's cdn_segment_serve span continues it, so pdntrace shows the
// fallback hop inside the client's stitched segment trace. Nil is a
// no-op (untraced CDN).
func (s *Server) SetTracer(t *obs.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

// Tracer returns the tracer installed with SetTracer (nil when untraced).
func (s *Server) Tracer() *obs.Tracer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tracer
}

// SetClock overrides the live-edge clock (tests).
func (s *Server) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// Register adds a video. Live assets start their clock at registration.
func (s *Server) Register(v *media.Video) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.videos[v.ID] = v
	if v.Live {
		s.started[v.ID] = s.now()
	}
}

// Video returns a registered video.
func (s *Server) Video(id string) (*media.Video, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.videos[id]
	return v, ok
}

// BytesServed reports total bytes served for a video ("" sums all).
func (s *Server) BytesServed(videoID string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if videoID != "" {
		return s.bytes[videoID]
	}
	var total int64
	for _, b := range s.bytes {
		total += b
	}
	return total
}

// Requests reports the request count for a video ("" sums all).
func (s *Server) Requests(videoID string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if videoID != "" {
		return s.reqs[videoID]
	}
	var total int64
	for _, r := range s.reqs {
		total += r
	}
	return total
}

// liveEdge returns the newest available segment index for a live asset.
func (s *Server) liveEdge(v *media.Video) int {
	s.mu.Lock()
	start, ok := s.started[v.ID]
	now := s.now()
	s.mu.Unlock()
	if !ok {
		return 0
	}
	elapsed := now.Sub(start).Seconds()
	return int(elapsed / v.SegmentDuration)
}

// LiveEdge reports the newest available segment index for a registered
// live video — the reference point for live-edge lag measurements.
// Unknown or VOD assets report 0.
func (s *Server) LiveEdge(videoID string) int {
	v, ok := s.Video(videoID)
	if !ok || !v.Live {
		return 0
	}
	return s.liveEdge(v)
}

// Handler returns the http.Handler implementing the CDN URL layout:
//
//	/v/<videoID>/master.m3u8
//	/v/<videoID>/<rendition>/playlist.m3u8
//	/v/<videoID>/<rendition>/seg<NNNNN>.ts
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(s.serve)
}

func (s *Server) serve(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/")
	if !strings.HasPrefix(path, "v/") {
		http.NotFound(w, r)
		return
	}
	rest := strings.TrimPrefix(path, "v/")

	switch {
	case strings.HasSuffix(rest, "/master.m3u8"):
		videoID := strings.TrimSuffix(rest, "/master.m3u8")
		s.serveMaster(w, r, videoID)
	case strings.HasSuffix(rest, "/hashes.json"):
		base := strings.TrimSuffix(rest, "/hashes.json")
		i := strings.LastIndexByte(base, '/')
		if i < 0 {
			http.NotFound(w, r)
			return
		}
		s.serveHashes(w, r, base[:i], base[i+1:])
	case strings.HasSuffix(rest, "/playlist.m3u8"):
		base := strings.TrimSuffix(rest, "/playlist.m3u8")
		i := strings.LastIndexByte(base, '/')
		if i < 0 {
			http.NotFound(w, r)
			return
		}
		s.servePlaylist(w, r, base[:i], base[i+1:])
	case strings.HasSuffix(rest, ".ts"):
		i := strings.LastIndexByte(rest, '/')
		if i < 0 {
			http.NotFound(w, r)
			return
		}
		segURI := rest[i+1:]
		base := rest[:i]
		j := strings.LastIndexByte(base, '/')
		if j < 0 {
			http.NotFound(w, r)
			return
		}
		s.serveSegment(w, r, base[:j], base[j+1:], segURI)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) serveMaster(w http.ResponseWriter, r *http.Request, videoID string) {
	v, ok := s.Video(videoID)
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.account(videoID, s.write(w, "application/vnd.apple.mpegurl", hls.ForVideo(v).Encode()))
}

func (s *Server) servePlaylist(w http.ResponseWriter, r *http.Request, videoID, rendition string) {
	v, ok := s.Video(videoID)
	if !ok {
		http.NotFound(w, r)
		return
	}
	if _, ok := v.Rendition(rendition); !ok {
		http.NotFound(w, r)
		return
	}
	var pl *hls.MediaPlaylist
	if v.Live {
		edge := s.liveEdge(v)
		from := edge - LiveWindow + 1
		if from < 0 {
			from = 0
		}
		pl = hls.Window(v, from, edge-from+1)
	} else {
		pl = hls.Window(v, 0, v.Segments)
	}
	s.account(videoID, s.write(w, "application/vnd.apple.mpegurl", pl.Encode()))
}

func (s *Server) serveSegment(w http.ResponseWriter, r *http.Request, videoID, rendition, segURI string) {
	span := s.Tracer().StartSpanRemote(r.Header.Get("traceparent"), "cdn_segment_serve",
		obs.A("video", videoID), obs.A("idx", segURI))
	v, ok := s.Video(videoID)
	if !ok {
		http.NotFound(w, r)
		span.End(obs.A("ok", false))
		return
	}
	idx, ok := hls.ParseSegmentURI(segURI)
	if !ok {
		http.NotFound(w, r)
		span.End(obs.A("ok", false))
		return
	}
	key := media.SegmentKey{Video: videoID, Rendition: rendition, Index: idx}
	data, ok := s.segCache.get(key)
	if ok {
		s.cacheHits.Inc()
	} else {
		s.cacheMiss.Inc()
		var err error
		data, err = v.SegmentData(rendition, idx)
		if err != nil {
			http.NotFound(w, r)
			span.End(obs.A("ok", false))
			return
		}
		s.segCache.put(key, data)
	}
	s.account(videoID, s.write(w, "video/mp2t", data))
	span.End(obs.A("ok", true), obs.A("cache", ok), obs.A("bytes", len(data)))
}

// serveHashes implements the alternative integrity defense the paper's
// disclosure section describes (Viblast's MD5 segment hashing, Peer5's
// custom delivery): the CDN publishes a per-segment hash list that
// every viewer downloads. It works, but every viewer pays the extra
// CDN bytes — the §V-B cost argument against it, measurable through
// BytesServed.
func (s *Server) serveHashes(w http.ResponseWriter, r *http.Request, videoID, rendition string) {
	v, ok := s.Video(videoID)
	if !ok || v.Live {
		// Live assets would need rolling hash updates; the deployed
		// plugins the paper cites target VOD.
		http.NotFound(w, r)
		return
	}
	if _, ok := v.Rendition(rendition); !ok {
		http.NotFound(w, r)
		return
	}
	hashes := make(map[string]string, v.Segments)
	for i := 0; i < v.Segments; i++ {
		data, err := v.SegmentData(rendition, i)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		key := media.SegmentKey{Video: videoID, Rendition: rendition, Index: i}
		hashes[key.String()] = media.IMHash(key, data)
	}
	body, err := json.Marshal(hashes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.account(videoID, s.write(w, "application/json", body))
}

// write sends a response body and returns the bytes written.
func (s *Server) write(w http.ResponseWriter, contentType string, body []byte) int64 {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	n, _ := w.Write(body)
	return int64(n)
}

func (s *Server) account(videoID string, n int64) {
	s.mu.Lock()
	s.bytes[videoID] += n
	s.reqs[videoID]++
	s.mu.Unlock()
	s.reqsTotal.Inc()
	s.bytesTotal.Add(n)
	s.videoBytes.With(videoID).Add(n)
}

// Serve starts the CDN's HTTP server on a simulated host and port.
// It returns once the listener is accepting.
func (s *Server) Serve(host *netsim.Host, port uint16) error {
	l, err := host.Listen(port)
	if err != nil {
		return fmt.Errorf("cdn: listen: %w", err)
	}
	s.listener = l
	s.httpSrv = &http.Server{Handler: s.Handler()}
	s.srvWG.Add(1)
	go func() {
		defer s.srvWG.Done()
		// Serve exits with ErrServerClosed on Close; other errors mean
		// the simulated listener died, which only happens at teardown.
		_ = s.httpSrv.Serve(l)
	}()
	return nil
}

// Close stops the HTTP server and waits for its serve goroutine.
func (s *Server) Close() error {
	if s.httpSrv == nil {
		return nil
	}
	err := s.httpSrv.Close()
	s.srvWG.Wait()
	return err
}

// URLs for the canonical layout, relative to a base like
// "http://1.2.3.4:80".

// MasterURL returns the master playlist URL for a video.
func MasterURL(base, videoID string) string {
	return fmt.Sprintf("%s/v/%s/master.m3u8", base, videoID)
}

// PlaylistURL returns a rendition playlist URL.
func PlaylistURL(base, videoID, rendition string) string {
	return fmt.Sprintf("%s/v/%s/%s/playlist.m3u8", base, videoID, rendition)
}

// SegmentURL returns a segment URL.
func SegmentURL(base, videoID, rendition string, index int) string {
	return fmt.Sprintf("%s/v/%s/%s/%s", base, videoID, rendition, hls.SegmentURI(index))
}

// HashesURL returns the per-segment hash list URL (VOD only).
func HashesURL(base, videoID, rendition string) string {
	return fmt.Sprintf("%s/v/%s/%s/hashes.json", base, videoID, rendition)
}
