package cdn

import (
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/hls"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
)

// fixture starts a CDN on a simulated network and returns an HTTP
// client dialing from a viewer host.
type fixture struct {
	srv    *Server
	base   string
	client *http.Client
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	n := netsim.New(netsim.Config{})
	cdnHost := n.MustHost(netip.MustParseAddr("93.184.216.34"))
	viewer := n.MustHost(netip.MustParseAddr("66.24.0.5"))

	s := New()
	if err := s.Serve(cdnHost, 80); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return &fixture{
		srv:  s,
		base: "http://93.184.216.34:80",
		client: &http.Client{
			Transport: &http.Transport{DialContext: viewer.Dialer()},
			Timeout:   5 * time.Second,
		},
	}
}

func (f *fixture) get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := f.client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func smallVOD(id string, segments int) *media.Video {
	return &media.Video{
		ID:              id,
		Renditions:      []media.Rendition{{Name: "360p", Bandwidth: 800_000, SegmentBytes: 4096}},
		Segments:        segments,
		SegmentDuration: 10,
	}
}

func TestMasterPlaylist(t *testing.T) {
	f := newFixture(t)
	f.srv.Register(media.NewVOD("bbb", 4))
	code, body := f.get(t, MasterURL(f.base, "bbb"))
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	mp, err := hls.ParseMasterPlaylist(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Variants) != 3 {
		t.Fatalf("variants %+v", mp.Variants)
	}
}

func TestVODPlaylistAndSegments(t *testing.T) {
	f := newFixture(t)
	v := smallVOD("bbb", 3)
	f.srv.Register(v)
	code, body := f.get(t, PlaylistURL(f.base, "bbb", "360p"))
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	pl, err := hls.ParseMediaPlaylist(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Segments) != 3 || pl.Live {
		t.Fatalf("playlist %+v", pl)
	}
	for i := 0; i < 3; i++ {
		code, seg := f.get(t, SegmentURL(f.base, "bbb", "360p", i))
		if code != 200 {
			t.Fatalf("segment %d status %d", i, code)
		}
		if !v.Verify("360p", i, seg) {
			t.Fatalf("segment %d failed verification", i)
		}
	}
}

func TestNotFoundCases(t *testing.T) {
	f := newFixture(t)
	f.srv.Register(smallVOD("bbb", 2))
	cases := []string{
		f.base + "/nope",
		MasterURL(f.base, "missing"),
		PlaylistURL(f.base, "bbb", "999p"),
		PlaylistURL(f.base, "missing", "360p"),
		SegmentURL(f.base, "bbb", "360p", 99),
		SegmentURL(f.base, "missing", "360p", 0),
		f.base + "/v/bbb/360p/garbage.ts",
		f.base + "/v/playlist.m3u8",
		f.base + "/v/x.ts",
	}
	for _, url := range cases {
		if code, _ := f.get(t, url); code != 404 {
			t.Errorf("GET %s = %d, want 404", url, code)
		}
	}
}

func TestLivePlaylistSlides(t *testing.T) {
	f := newFixture(t)
	now := time.Unix(10_000, 0)
	f.srv.SetClock(func() time.Time { return now })
	v := media.NewLive("ch1", 100)
	v.Renditions = []media.Rendition{{Name: "360p", Bandwidth: 800_000, SegmentBytes: 2048}}
	f.srv.Register(v)

	// At t=0 the edge is segment 0.
	_, body := f.get(t, PlaylistURL(f.base, "ch1", "360p"))
	pl, err := hls.ParseMediaPlaylist(body)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Live || pl.MediaSequence != 0 || len(pl.Segments) != 1 {
		t.Fatalf("initial live playlist %+v", pl)
	}

	// After 75s (7.5 segments at 10s), the edge is 7, window [2..7].
	now = now.Add(75 * time.Second)
	_, body = f.get(t, PlaylistURL(f.base, "ch1", "360p"))
	pl, err = hls.ParseMediaPlaylist(body)
	if err != nil {
		t.Fatal(err)
	}
	if pl.MediaSequence != 2 || len(pl.Segments) != LiveWindow {
		t.Fatalf("slid playlist seq=%d n=%d", pl.MediaSequence, len(pl.Segments))
	}
	if pl.Segments[len(pl.Segments)-1].URI != hls.SegmentURI(7) {
		t.Fatalf("edge segment %q", pl.Segments[len(pl.Segments)-1].URI)
	}
}

func TestByteAccounting(t *testing.T) {
	f := newFixture(t)
	v := smallVOD("bbb", 2)
	f.srv.Register(v)
	if f.srv.BytesServed("bbb") != 0 {
		t.Fatal("fresh video should have zero bytes")
	}
	_, seg := f.get(t, SegmentURL(f.base, "bbb", "360p", 0))
	if got := f.srv.BytesServed("bbb"); got != int64(len(seg)) {
		t.Fatalf("BytesServed = %d, want %d", got, len(seg))
	}
	if f.srv.Requests("bbb") != 1 {
		t.Fatalf("Requests = %d", f.srv.Requests("bbb"))
	}
	// Totals roll up.
	if f.srv.BytesServed("") != int64(len(seg)) || f.srv.Requests("") != 1 {
		t.Fatal("rollup mismatch")
	}
}

func TestConcurrentFetches(t *testing.T) {
	f := newFixture(t)
	v := smallVOD("bbb", 8)
	f.srv.Register(v)
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			resp, err := f.client.Get(SegmentURL(f.base, "bbb", "360p", i))
			if err != nil {
				errc <- err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err == nil && !v.Verify("360p", i, body) {
				err = fmt.Errorf("segment %d corrupt", i)
			}
			errc <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if f.srv.Requests("bbb") != 8 {
		t.Fatalf("requests %d", f.srv.Requests("bbb"))
	}
}

func TestURLHelpers(t *testing.T) {
	if got := MasterURL("http://h:1", "a/b"); got != "http://h:1/v/a/b/master.m3u8" {
		t.Fatalf("MasterURL %q", got)
	}
	if got := PlaylistURL("http://h:1", "a", "720p"); got != "http://h:1/v/a/720p/playlist.m3u8" {
		t.Fatalf("PlaylistURL %q", got)
	}
	if got := SegmentURL("http://h:1", "a", "720p", 3); got != "http://h:1/v/a/720p/seg00003.ts" {
		t.Fatalf("SegmentURL %q", got)
	}
}
