package cdn

import (
	"sync"

	"github.com/stealthy-peers/pdnsec/internal/media"
)

// segMemoLimit bounds the memo cache's payload bytes (~32 MiB). Segment
// synthesis is deterministic, so eviction only costs recomputation —
// the cache trades memory for the dominant per-request CPU cost without
// ever changing a response byte.
const segMemoLimit = 32 << 20

// segMemo memoizes synthesized segment payloads with FIFO eviction.
// The zero value is ready to use.
type segMemo struct {
	mu    sync.Mutex
	data  map[media.SegmentKey][]byte
	order []media.SegmentKey
	size  int
}

func (c *segMemo) get(key media.SegmentKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.data[key]
	return data, ok
}

func (c *segMemo) put(key media.SegmentKey, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.data == nil {
		c.data = make(map[media.SegmentKey][]byte)
	}
	if _, ok := c.data[key]; ok {
		return
	}
	for c.size+len(data) > segMemoLimit && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		c.size -= len(c.data[oldest])
		delete(c.data, oldest)
	}
	c.data[key] = data
	c.order = append(c.order, key)
	c.size += len(data)
}
