package chaos

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/pdnclient"
	"github.com/stealthy-peers/pdnsec/internal/population"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// adversarialScenarios is the table the determinism and green-run
// suites share: every behavioral scenario the chaos CLI ships, at the
// CLI's full spawn sizes (the log is schedule-only, so size costs
// nothing in the determinism runs).
func adversarialScenarios() []Scenario {
	return []Scenario{
		SybilFlood(10*time.Millisecond, 40),
		EclipseMatcher(15*time.Millisecond, 6),
		FreeRiderWave(10*time.Millisecond, 8, 60*time.Millisecond, 0.25),
		FlashCrowdLive(10*time.Millisecond, 30*time.Millisecond, 3, 12),
	}
}

// TestAdversarialScenarioLogsDeterministic extends the reproducibility
// contract to spawn-bearing schedules: five runs of each behavioral
// scenario at the same seed must produce byte-identical JSONL logs
// (CI repeats this under -race). Spawn events record only the
// schedule's parameters, so a no-op driver sees the same bytes the
// full harness would.
func TestAdversarialScenarioLogsDeterministic(t *testing.T) {
	for _, sc := range adversarialScenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			var first []byte
			for run := 0; run < 5; run++ {
				eng := newRoster(t, 42, 8)
				eng.SetSpawnDriver(func(b population.Behavior, count int, at time.Duration) error { return nil })
				if err := eng.Run(context.Background(), sc); err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				log := eng.LogBytes()
				if len(log) == 0 {
					t.Fatalf("run %d produced an empty log", run)
				}
				if run == 0 {
					first = log
					continue
				}
				if !bytes.Equal(first, log) {
					t.Fatalf("seed 42 run %d diverged:\nfirst:\n%s\nthis:\n%s", run, first, log)
				}
			}
		})
	}
}

// TestFreeRiderWaveSeedDivergence pins that the scenario suite's logs
// are genuinely seed-dependent, not merely constant: free_rider_wave
// carries a churn step whose victim selection must differ across seeds.
func TestFreeRiderWaveSeedDivergence(t *testing.T) {
	// Half of a 16-node roster gives the churn step a selection space
	// large enough that distinct seeds cannot plausibly collide.
	sc := FreeRiderWave(10*time.Millisecond, 8, 60*time.Millisecond, 0.5)
	logs := make([][]byte, 2)
	for i, seed := range []int64{42, 43} {
		eng := newRoster(t, seed, 16)
		eng.SetSpawnDriver(func(population.Behavior, int, time.Duration) error { return nil })
		if err := eng.Run(context.Background(), sc); err != nil {
			t.Fatal(err)
		}
		logs[i] = eng.LogBytes()
	}
	if bytes.Equal(logs[0], logs[1]) {
		t.Fatalf("seeds 42 and 43 produced identical free_rider_wave logs:\n%s", logs[0])
	}
}

// TestSpawnWithoutDriverFails pins that a spawn-bearing scenario run
// against an engine with no driver is a harness error, not a silently
// skipped band.
func TestSpawnWithoutDriverFails(t *testing.T) {
	eng := newRoster(t, 1, 2)
	err := eng.Run(context.Background(), SybilFlood(0, 3))
	if err == nil || !strings.Contains(err.Error(), "driver") {
		t.Fatalf("want missing-driver error, got %v", err)
	}
}

// TestScenarioSybilFlood runs the identity mill against the Hardened
// profile: one host joins under 24 identities, and the per-host ledger
// plus identity budget must keep its match-grant share capped while
// honest playback completes. Ten viewers give the geo-matching profile
// enough country overlap for an honest grant baseline.
func TestScenarioSybilFlood(t *testing.T) {
	res, err := RunScenario(context.Background(), SwarmConfig{
		Viewers:  10,
		Segments: 4,
		Seed:     *chaosSeed,
		Profile:  "hardened",
	}, SybilFlood(10*time.Millisecond, 24))
	if err != nil {
		t.Fatalf("seed=%d: %v", *chaosSeed, err)
	}
	requireInvariants(t, Invariants{
		PlaybackCompletes: true,
		MaxStalls:         0,
		NoPollutedCache:   true,
		NoViewerErrors:    true,
		MaxSybilSlotShare: 0.5,
	}, res)
	if share, peak := res.SybilSlotShare(); peak != 24 {
		t.Errorf("seed=%d: ledger saw identity peak %d (share %.2f), want the full 24-identity mill", *chaosSeed, peak, share)
	}
}

// TestScenarioEclipseMatcher floods the swarm with colluders that
// accept every connection and serve nothing. Matcher integrity must
// hold: every honest survivor keeps at least one non-colluder neighbor.
func TestScenarioEclipseMatcher(t *testing.T) {
	res, err := RunScenario(context.Background(), SwarmConfig{
		Viewers:  4,
		Segments: 4,
		Seed:     *chaosSeed,
		Pace:     20 * time.Millisecond,
	}, EclipseMatcher(15*time.Millisecond, 6))
	if err != nil {
		t.Fatalf("seed=%d: %v", *chaosSeed, err)
	}
	requireInvariants(t, Invariants{
		PlaybackCompletes:  true,
		MaxStalls:          0,
		NoPollutedCache:    true,
		NoViewerErrors:     true,
		MinHonestNeighbors: 1,
	}, res)
	if len(res.Colluders) != 6 {
		t.Errorf("seed=%d: recorded %d colluder IDs, want 6", *chaosSeed, len(res.Colluders))
	}
}

// TestScenarioFreeRiderWave injects a leech farm mid-playback and then
// churns part of the honest swarm out from under it. The fairness floor
// must hold — the farm downloads without uploading, but honest peers
// still share load sanely.
func TestScenarioFreeRiderWave(t *testing.T) {
	res, err := RunScenario(context.Background(), SwarmConfig{
		Viewers:  5,
		Segments: 4,
		Seed:     *chaosSeed,
	}, FreeRiderWave(10*time.Millisecond, 6, 60*time.Millisecond, 0.25))
	if err != nil {
		t.Fatalf("seed=%d: %v", *chaosSeed, err)
	}
	requireInvariants(t, Invariants{
		MaxStalls:       -1,
		NoPollutedCache: true,
		MinJainFairness: 0.05,
	}, res)
}

// TestScenarioFlashCrowdLive points a join storm at a live stream: two
// waves of honest joiners tune in at the live edge while the original
// viewers chase the sliding window. The p99 live-edge lag must stay
// bounded.
func TestScenarioFlashCrowdLive(t *testing.T) {
	res, err := RunScenario(context.Background(), SwarmConfig{
		Viewers:  4,
		Segments: 6,
		Seed:     *chaosSeed,
		Pace:     5 * time.Millisecond,
		Live:     true,
		VideoID:  "chaos-live",
	}, FlashCrowdLive(10*time.Millisecond, 30*time.Millisecond, 2, 6))
	if err != nil {
		t.Fatalf("seed=%d: %v", *chaosSeed, err)
	}
	// The lag bound is wall-clock-sensitive: the race detector's
	// slowdown stretches how far viewers trail the sliding window, so
	// it gets headroom there. The fire-test pins the bound's logic.
	lagBound := 40.0
	if raceEnabled {
		lagBound = 160
	}
	requireInvariants(t, Invariants{
		PlaybackCompletes: true,
		MaxStalls:         -1,
		NoPollutedCache:   true,
		NoViewerErrors:    true,
		MaxLiveLagP99:     lagBound,
	}, res)
	if len(res.LiveLag) == 0 {
		t.Fatalf("seed=%d: live run collected no lag samples", *chaosSeed)
	}
}

// TestJainFairnessInvariantFires is the intentional-violation fixture
// for the upload-fairness floor: one uploader carrying everything while
// another participant contributes nothing must trip the invariant, and
// the message must carry the scenario+seed replay line.
func TestJainFairnessInvariantFires(t *testing.T) {
	res := &Result{
		Scenario: "free_rider_wave",
		Seed:     321,
		Viewers: []*ViewerResult{
			{Name: "viewer-00", Stats: pdnclient.Stats{P2PUpBytes: 1 << 20, P2PDownBytes: 1}},
			{Name: "free_rider-000", Behavior: population.BehaviorFreeRider, Stats: pdnclient.Stats{P2PDownBytes: 1 << 20}},
		},
	}
	violations := Invariants{MaxStalls: -1, MinJainFairness: 0.9}.Check(res)
	if len(violations) != 1 {
		t.Fatalf("want 1 fairness violation, got %v", violations)
	}
	v := violations[0]
	if !strings.Contains(v, "jain fairness") || !strings.Contains(v, "scenario=free_rider_wave") || !strings.Contains(v, "seed=321") {
		t.Fatalf("fairness violation lacks replay info: %s", v)
	}
}

// TestLiveLagInvariantFires is the intentional-violation fixture for
// the live-edge lag bound: a p99 past the cap must trip it with the
// replay line attached.
func TestLiveLagInvariantFires(t *testing.T) {
	res := &Result{
		Scenario: "flash_crowd_live",
		Seed:     654,
		LiveLag:  []float64{1, 2, 2, 3, 80},
	}
	violations := Invariants{MaxStalls: -1, MaxLiveLagP99: 40}.Check(res)
	if len(violations) != 1 {
		t.Fatalf("want 1 lag violation, got %v", violations)
	}
	v := violations[0]
	if !strings.Contains(v, "live-edge lag p99") || !strings.Contains(v, "scenario=flash_crowd_live") || !strings.Contains(v, "seed=654") {
		t.Fatalf("lag violation lacks replay info: %s", v)
	}
}

// TestSybilShareInvariantFires is the intentional-violation fixture for
// the slot-share cap: a multi-identity host holding 90% of the grants
// must trip it with the replay line attached.
func TestSybilShareInvariantFires(t *testing.T) {
	res := &Result{
		Scenario: "sybil_flood",
		Seed:     111,
		HostStats: []signal.HostStat{
			{Identities: 30, PeakIdentities: 30, MatchGrants: 90},
			{Identities: 1, PeakIdentities: 1, MatchGrants: 10},
		},
	}
	violations := Invariants{MaxStalls: -1, MaxSybilSlotShare: 0.5}.Check(res)
	if len(violations) != 1 {
		t.Fatalf("want 1 sybil violation, got %v", violations)
	}
	v := violations[0]
	if !strings.Contains(v, "identity peak 30") || !strings.Contains(v, "scenario=sybil_flood") || !strings.Contains(v, "seed=111") {
		t.Fatalf("sybil violation lacks replay info: %s", v)
	}
}

// TestHonestNeighborsInvariantFires is the intentional-violation
// fixture for matcher integrity, driven through a real eclipse run: an
// impossible neighbor floor must fire for every honest survivor, each
// message carrying the scenario+seed replay line.
func TestHonestNeighborsInvariantFires(t *testing.T) {
	res, err := RunScenario(context.Background(), SwarmConfig{
		Viewers:  3,
		Segments: 3,
		Seed:     *chaosSeed,
	}, EclipseMatcher(10*time.Millisecond, 2))
	if err != nil {
		t.Fatalf("seed=%d: %v", *chaosSeed, err)
	}
	violations := Invariants{MaxStalls: -1, MinHonestNeighbors: 99}.Check(res)
	if len(violations) == 0 {
		t.Fatal("an impossible neighbor floor fired no violation")
	}
	for _, v := range violations {
		if !strings.Contains(v, "non-colluder neighbors") || !strings.Contains(v, "scenario=eclipse_matcher") || !strings.Contains(v, "seed=") {
			t.Fatalf("neighbor violation lacks replay info: %s", v)
		}
	}
}

// profileSeed pins the profile-comparison tests: CI rotates -chaos-seed
// for the scenario suite, but the cross-profile regressions compare
// timing-sensitive shares and stay on one committed seed.
const profileSeed = 20260805

// TestHardenedContainsSybilMill is the profile-regression half of the
// adversarial suite: the same 24-identity mill that squats the deployed
// profiles' matchers (no per-host accounting — the §IV squatting risk)
// must stay capped under Hardened's identity budget. Grant shares are
// timing-sensitive (how much honest matching overlaps the mill's
// joins), so only Hardened is held to an absolute cap; the deployed
// profiles — which advertise all 24 identities where Hardened's budget
// admits two — are gated relative to it. The ledger's identity peak is
// load-independent and must see the whole mill everywhere.
func TestHardenedContainsSybilMill(t *testing.T) {
	shares := make(map[string]float64)
	for _, profile := range []string{"peer5", "streamroot", "hardened"} {
		res, err := RunScenario(context.Background(), SwarmConfig{
			Viewers:  10,
			Segments: 4,
			Seed:     profileSeed,
			Profile:  profile,
		}, SybilFlood(10*time.Millisecond, 24))
		if err != nil {
			t.Fatalf("%s seed=%d: %v", profile, int64(profileSeed), err)
		}
		share, peak := res.SybilSlotShare()
		shares[profile] = share
		t.Logf("%s: sybil slot share %.2f (identity peak %d)", profile, share, peak)
		if peak != 24 {
			t.Errorf("%s: ledger saw identity peak %d, want the full 24-identity mill", profile, peak)
		}
	}
	for _, deployed := range []string{"peer5", "streamroot"} {
		if shares[deployed] <= shares["hardened"] {
			t.Errorf("%s held the mill to %.2f, at or below hardened's %.2f — without per-host accounting the squatting risk should reproduce",
				deployed, shares[deployed], shares["hardened"])
		}
	}
	if shares["hardened"] > 0.5 {
		t.Errorf("hardened let the mill take %.2f of match grants, cap 0.5", shares["hardened"])
	}
}

// TestHardenedKeepsLeechFarmFairness is the fairness half: a 32-member
// single-host leech farm floods the deployed profiles with zero-upload
// participants and drags Jain's index below Hardened's, while
// Hardened's identity budget quarantines the farm — at most the first
// in-budget identities ever exchange a P2P byte — and the honest
// swarm's index stays above the committed 0.25 bound. Only Hardened is
// held to the absolute bound; the deployed profiles' index is noisy
// enough under the race detector that they are gated relative to it
// plus the structural leech count.
func TestHardenedKeepsLeechFarmFairness(t *testing.T) {
	const fairnessBound = 0.25
	jains := make(map[string]float64)
	for _, profile := range []string{"peer5", "streamroot", "hardened"} {
		res, err := RunScenario(context.Background(), SwarmConfig{
			Viewers:  10,
			Segments: 8,
			Seed:     profileSeed,
			Pace:     5 * time.Millisecond,
			Profile:  profile,
		}, FreeRiderWave(10*time.Millisecond, 32, 0, 0))
		if err != nil {
			t.Fatalf("%s seed=%d: %v", profile, int64(profileSeed), err)
		}
		jain := res.JainFairness()
		leeching := 0
		for _, v := range res.Viewers {
			if v.Behavior == population.BehaviorFreeRider && v.Stats.P2PDownBytes > 0 {
				leeching++
			}
		}
		t.Logf("%s: jain fairness %.3f, %d/32 farm members leeched P2P bytes", profile, jain, leeching)
		jains[profile] = jain
		if profile == "hardened" {
			if jain < fairnessBound {
				t.Errorf("hardened fairness %.3f below committed bound %.2f", jain, fairnessBound)
			}
			if leeching > 2 {
				t.Errorf("hardened let %d farm members past the 2-identity budget", leeching)
			}
			continue
		}
		if leeching < 16 {
			t.Errorf("%s: only %d/32 farm members leeched — free-riding should reproduce undefended", profile, leeching)
		}
	}
	for _, deployed := range []string{"peer5", "streamroot"} {
		if jains[deployed] >= jains["hardened"] {
			t.Errorf("%s fairness %.3f should fall below hardened's %.3f under a farm only hardened can see",
				deployed, jains[deployed], jains["hardened"])
		}
	}
}
