// Package chaos turns the testbed into a fault-injection harness: it
// schedules impairments (peer churn, partitions, CDN brownouts, wire
// corruption) against a running swarm and checks that the properties
// the paper's measurements rely on survive them — playback always
// completes via CDN fallback, stalls stay bounded, and rejected
// segments never enter a peer's upload cache.
//
// Scenarios are declarative fault schedules. An Engine unfolds a
// schedule against a registered node roster, driving the netsim
// impairment hooks, and records every injected fault in a JSONL event
// log. The log is a pure function of (scenario, roster, seed): it
// captures what was injected and when on the scenario clock, never
// wall-clock timestamps or runtime reactions, so the same seed
// reproduces a byte-identical log — the property the determinism suite
// pins down and failure messages lean on ("rerun with this seed").
package chaos

import (
	"fmt"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/population"
)

// Canonical roster names for the testbed's infrastructure machines.
// Viewers use their own names (the swarm harness assigns "viewer-NN").
const (
	NodeCDN    = "cdn"
	NodeSignal = "signal"
)

// FaultKind enumerates the injectable faults.
type FaultKind string

const (
	// FaultKillFraction crashes a seeded random fraction of the killable
	// roster (nodes registered with a Kill hook).
	FaultKillFraction FaultKind = "kill_fraction"
	// FaultKillNodes crashes explicitly named nodes.
	FaultKillNodes FaultKind = "kill_nodes"
	// FaultPartition cuts a node off from every other host.
	FaultPartition FaultKind = "partition"
	// FaultHeal reverses a partition.
	FaultHeal FaultKind = "heal"
	// FaultSlow sets a node's access latency and bandwidth cap
	// (zero values restore full speed — a "brownout" ends with one).
	FaultSlow FaultKind = "slow"
	// FaultLinkLoss installs a directed per-link datagram loss rate.
	FaultLinkLoss FaultKind = "link_loss"
	// FaultCorrupt mangles stream chunks sent by a node.
	FaultCorrupt FaultKind = "corrupt"
	// FaultClearCorrupt removes a corruption rule.
	FaultClearCorrupt FaultKind = "clear_corrupt"
	// FaultSpawn injects a band of population members mid-run — the
	// behavioral counterpart of the infrastructure faults. The engine
	// hands the band to the harness's spawn driver; the log records only
	// the schedule's parameters (behavior, count), never runtime
	// reactions, so spawn-bearing scenarios replay byte-identically too.
	FaultSpawn FaultKind = "spawn"
)

// Step is one scheduled fault. At is an offset on the scenario clock
// (from engine start), not a wall-clock time.
type Step struct {
	At    time.Duration
	Fault FaultKind

	// Parameters; which ones apply depends on Fault.
	Frac     float64       // kill_fraction: fraction of killable nodes
	Nodes    []string      // kill_nodes / partition / heal / slow / corrupt targets
	From, To string        // link_loss endpoints (directed)
	Prob     float64       // link_loss / corrupt probability
	Truncate bool          // corrupt: truncate instead of flipping bytes
	Latency  time.Duration // slow: access latency to set
	RateBps  int64         // slow: bandwidth cap in bytes/sec (0 = unlimited)
	Behavior string        // spawn: population behavior to inject
	Count    int           // spawn: band size
}

// Scenario is a named, ordered fault schedule.
type Scenario struct {
	Name  string
	Steps []Step
}

// KillFraction schedules crashing the given fraction of killable nodes
// at the offset. Which nodes die is drawn from the engine's seeded RNG.
func KillFraction(at time.Duration, frac float64) Step {
	return Step{At: at, Fault: FaultKillFraction, Frac: frac}
}

// KillNodes schedules crashing the named nodes.
func KillNodes(at time.Duration, names ...string) Step {
	return Step{At: at, Fault: FaultKillNodes, Nodes: names}
}

// PartitionNode schedules cutting the named node off from the network.
func PartitionNode(at time.Duration, name string) Step {
	return Step{At: at, Fault: FaultPartition, Nodes: []string{name}}
}

// HealNode schedules reversing a PartitionNode.
func HealNode(at time.Duration, name string) Step {
	return Step{At: at, Fault: FaultHeal, Nodes: []string{name}}
}

// Slow schedules setting a node's access latency and bandwidth cap;
// Slow(at, name, 0, 0) restores full speed.
func Slow(at time.Duration, name string, latency time.Duration, rateBps int64) Step {
	return Step{At: at, Fault: FaultSlow, Nodes: []string{name}, Latency: latency, RateBps: rateBps}
}

// LinkLoss schedules a directed per-link datagram loss probability;
// p=0 restores the link, p=1 blackholes it.
func LinkLoss(at time.Duration, from, to string, p float64) Step {
	return Step{At: at, Fault: FaultLinkLoss, From: from, To: to, Prob: p}
}

// CorruptFrom schedules mangling each stream chunk the named node sends
// with probability p (truncation instead of byte flips when truncate).
func CorruptFrom(at time.Duration, name string, p float64, truncate bool) Step {
	return Step{At: at, Fault: FaultCorrupt, Nodes: []string{name}, Prob: p, Truncate: truncate}
}

// ClearCorruptFrom schedules removing a CorruptFrom rule.
func ClearCorruptFrom(at time.Duration, name string) Step {
	return Step{At: at, Fault: FaultClearCorrupt, Nodes: []string{name}}
}

// Spawn schedules injecting count population members of the given
// behavior at the offset (requires a spawn driver on the engine).
func Spawn(at time.Duration, behavior population.Behavior, count int) Step {
	return Step{At: at, Fault: FaultSpawn, Behavior: string(behavior), Count: count}
}

// PeerChurn is the "viewers close the tab" scenario: a fraction of the
// swarm crashes at once mid-playback. Survivors must evict the dead
// neighbors and finish via re-matching or CDN fallback.
func PeerChurn(at time.Duration, frac float64) Scenario {
	return Scenario{
		Name:  "peer_churn",
		Steps: []Step{KillFraction(at, frac)},
	}
}

// SignalPartition blackholes the signaling server for a window. Peers
// that joined keep playing (P2P with the neighbors they have, CDN
// otherwise); their reconnect loops restore signaling after the heal.
func SignalPartition(at, dur time.Duration) Scenario {
	return Scenario{
		Name: "signal_partition",
		Steps: []Step{
			PartitionNode(at, NodeSignal),
			HealNode(at+dur, NodeSignal),
		},
	}
}

// CDNBrownout degrades the CDN origin (added latency + bandwidth cap)
// for a window, then restores it. Playback must ride it out on the
// swarm's caches without unbounded stalling.
func CDNBrownout(at, dur, latency time.Duration, rateBps int64) Scenario {
	return Scenario{
		Name: "cdn_brownout",
		Steps: []Step{
			Slow(at, NodeCDN, latency, rateBps),
			Slow(at+dur, NodeCDN, 0, 0),
		},
	}
}

// SignalCrash kills one member of a federated signaling plane
// mid-playback. The ring hands its swarms to the survivors; stranded
// viewers must re-bootstrap through their peerstores and finish
// playback — the plane-level crash-recovery path under a real swarm.
func SignalCrash(at time.Duration, server string) Scenario {
	return Scenario{
		Name:  "signal_crash",
		Steps: []Step{KillNodes(at, server)},
	}
}

// PollutedWire corrupts every stream chunk a node sends for a window —
// the in-flight counterpart of the paper's pollution attack. DTLS
// authentication turns corrupt P2P records into dead connections, so
// the invariant under this scenario is eviction plus CDN fallback, not
// poisoned caches.
func PollutedWire(at, dur time.Duration, node string) Scenario {
	return Scenario{
		Name: "polluted_wire",
		Steps: []Step{
			CorruptFrom(at, node, 1, false),
			ClearCorruptFrom(at+dur, node),
		},
	}
}

// SybilFlood is the paper's resource-squatting risk at population
// scale: one host joins the swarm under `identities` peer identities,
// aiming to absorb the matcher's upload-slot grants. The invariant
// under it is the Sybil slot-share cap — and with the Hardened
// profile's per-host identity budget, quarantine of the whole mill.
func SybilFlood(at time.Duration, identities int) Scenario {
	return Scenario{
		Name:  "sybil_flood",
		Steps: []Step{Spawn(at, population.BehaviorSybil, identities)},
	}
}

// EclipseMatcher floods the swarm with colluders that accept every
// connection and serve nothing, trying to saturate honest peers'
// neighbor pools. The invariant is matcher integrity: every honest
// peer keeps at least K non-colluder neighbors.
func EclipseMatcher(at time.Duration, colluders int) Scenario {
	return Scenario{
		Name:  "eclipse_matcher",
		Steps: []Step{Spawn(at, population.BehaviorEclipse, colluders)},
	}
}

// FreeRiderWave injects a wave of leechers — full viewers that
// download from peers but refuse every upload (§IV-B free-riding at
// population scale) — then churns a fraction of the honest swarm while
// the wave is still draining it. The churn step also makes the fault
// log seed-dependent, which is what the divergent-seed determinism
// check leans on. The invariant is the upload-fairness floor.
func FreeRiderWave(at time.Duration, leechers int, churnAt time.Duration, churnFrac float64) Scenario {
	steps := []Step{Spawn(at, population.BehaviorFreeRider, leechers)}
	if churnFrac > 0 {
		steps = append(steps, KillFraction(churnAt, churnFrac))
	}
	return Scenario{Name: "free_rider_wave", Steps: steps}
}

// KeyCompromise models a leaked static identity key: `impersonators`
// peers join the swarm registering a key scraped from an honest viewer
// (the harness leaks viewer-00's). The matcher vouches for the key —
// the credential the join presented was valid — but every handshake
// fails the possession proof, so under the secure profile honest peers
// report the key and the signaling plane quarantines it. The invariant
// is MinSecureQuarantines; deployed profiles never quarantine (no
// possession proof exists), which is what the fire-test pins.
func KeyCompromise(at time.Duration, impersonators int) Scenario {
	return Scenario{
		Name:  "key_compromise",
		Steps: []Step{Spawn(at, population.BehaviorImpersonator, impersonators)},
	}
}

// FlashCrowdLive models a flash crowd against a live stream: `waves`
// bursts of `perWave` honest joiners hit the signaling plane at
// `interval` spacing while the original viewers chase a sliding
// live-HLS window. The invariant is the live-edge lag p99 bound —
// the join storm must not knock established viewers off the edge.
func FlashCrowdLive(start, interval time.Duration, waves, perWave int) Scenario {
	steps := make([]Step, 0, waves)
	for i := 0; i < waves; i++ {
		steps = append(steps, Spawn(start+time.Duration(i)*interval, population.BehaviorHonest, perWave))
	}
	return Scenario{Name: "flash_crowd_live", Steps: steps}
}

// Validate rejects malformed steps before a run starts (probabilities
// out of range, missing targets, negative offsets).
func (sc Scenario) Validate() error {
	for i, st := range sc.Steps {
		if st.At < 0 {
			return fmt.Errorf("chaos: step %d: negative offset %v", i, st.At)
		}
		switch st.Fault {
		case FaultKillFraction:
			if !(st.Frac >= 0 && st.Frac <= 1) {
				return fmt.Errorf("chaos: step %d: kill fraction %v outside [0,1]", i, st.Frac)
			}
		case FaultKillNodes, FaultPartition, FaultHeal, FaultSlow, FaultClearCorrupt:
			if len(st.Nodes) == 0 {
				return fmt.Errorf("chaos: step %d: %s needs target nodes", i, st.Fault)
			}
		case FaultLinkLoss:
			if st.From == "" || st.To == "" {
				return fmt.Errorf("chaos: step %d: link_loss needs from and to", i)
			}
			if !(st.Prob >= 0 && st.Prob <= 1) {
				return fmt.Errorf("chaos: step %d: link_loss probability %v outside [0,1]", i, st.Prob)
			}
		case FaultCorrupt:
			if len(st.Nodes) == 0 {
				return fmt.Errorf("chaos: step %d: corrupt needs target nodes", i)
			}
			if !(st.Prob >= 0 && st.Prob <= 1) {
				return fmt.Errorf("chaos: step %d: corrupt probability %v outside [0,1]", i, st.Prob)
			}
		case FaultSpawn:
			if !population.Behavior(st.Behavior).Valid() {
				return fmt.Errorf("chaos: step %d: unknown behavior %q", i, st.Behavior)
			}
			if st.Count < 1 {
				return fmt.Errorf("chaos: step %d: spawn needs a positive count", i)
			}
		default:
			return fmt.Errorf("chaos: step %d: unknown fault %q", i, st.Fault)
		}
	}
	return nil
}
