package chaos

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/pdnclient"
)

func statsPlayed(n int) pdnclient.Stats { return pdnclient.Stats{SegmentsPlayed: n} }

// chaosSeed drives the scenario suite. CI rotates it per run (logging
// the value); a failure message embeds the seed so the exact fault
// schedule can be replayed locally with
// go test ./internal/chaos -chaos-seed=<seed>.
var chaosSeed = flag.Int64("chaos-seed", 20260805, "seed for chaos scenario runs")

// newRoster builds an engine over a fresh network with n killable
// nodes named node-00..node-NN plus cdn/signal infrastructure nodes.
func newRoster(t *testing.T, seed int64, n int) *Engine {
	t.Helper()
	net := netsim.New(netsim.Config{Seed: seed})
	eng := NewEngine(net, seed)
	for i := 0; i < n+2; i++ {
		name := fmt.Sprintf("node-%02d", i)
		if i == n {
			name = NodeCDN
		} else if i == n+1 {
			name = NodeSignal
		}
		host, err := net.NewHost(netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}))
		if err != nil {
			t.Fatal(err)
		}
		node := Node{Name: name, Addr: host.Addr(), Host: host}
		if i < n {
			node.Kill = func() {}
		}
		eng.Register(node)
	}
	return eng
}

// fullScenario exercises every fault kind, with sub-millisecond
// offsets so determinism runs stay fast.
func fullScenario() Scenario {
	return Scenario{
		Name: "everything",
		Steps: []Step{
			KillFraction(0, 0.3),
			PartitionNode(time.Millisecond, NodeSignal),
			Slow(time.Millisecond, NodeCDN, 5*time.Millisecond, 1<<20),
			LinkLoss(2*time.Millisecond, "node-01", "node-02", 0.5),
			CorruptFrom(2*time.Millisecond, "node-03", 0.8, true),
			HealNode(3*time.Millisecond, NodeSignal),
			KillFraction(3*time.Millisecond, 0.5),
			KillNodes(4*time.Millisecond, NodeCDN),
			ClearCorruptFrom(4*time.Millisecond, "node-03"),
			Slow(4*time.Millisecond, NodeCDN, 0, 0),
		},
	}
}

// TestEventLogDeterministic is the reproducibility contract: the same
// seed yields a byte-identical JSONL event log run after run (CI
// repeats this under -race), and a different seed diverges.
func TestEventLogDeterministic(t *testing.T) {
	const seedA, seedB = 42, 43
	var first []byte
	for run := 0; run < 5; run++ {
		eng := newRoster(t, seedA, 10)
		if err := eng.Run(context.Background(), fullScenario()); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		log := eng.LogBytes()
		if run == 0 {
			first = log
			continue
		}
		if !bytes.Equal(first, log) {
			t.Fatalf("seed %d run %d diverged:\nfirst:\n%s\nthis:\n%s", seedA, run, first, log)
		}
	}
	if len(first) == 0 {
		t.Fatal("empty event log")
	}

	engB := newRoster(t, seedB, 10)
	if err := engB.Run(context.Background(), fullScenario()); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first, engB.LogBytes()) {
		t.Fatalf("seeds %d and %d produced identical kill selections", seedA, seedB)
	}
}

// TestKillFractionSpendsRoster checks selection bookkeeping: fractions
// compose over the shrinking killable roster and never repeat victims.
func TestKillFractionSpendsRoster(t *testing.T) {
	eng := newRoster(t, 7, 10)
	sc := Scenario{Name: "churn_twice", Steps: []Step{
		KillFraction(0, 0.5),
		KillFraction(time.Millisecond, 1),
	}}
	if err := eng.Run(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	killed := eng.Killed()
	if len(killed) != 10 {
		t.Fatalf("killed %d of 10 killable nodes: %v", len(killed), killed)
	}
	for _, name := range killed {
		if name == NodeCDN || name == NodeSignal {
			t.Fatalf("kill_fraction crashed infrastructure node %s", name)
		}
	}
	events := eng.Events()
	if len(events) != 2 || len(events[0].Targets) != 5 || len(events[1].Targets) != 5 {
		t.Fatalf("unexpected events: %+v", events)
	}
}

// TestEngineRejectsUnknownNode ensures a bad roster reference fails the
// run instead of silently skipping the fault.
func TestEngineRejectsUnknownNode(t *testing.T) {
	eng := newRoster(t, 1, 2)
	err := eng.Run(context.Background(), Scenario{Name: "bad", Steps: []Step{
		PartitionNode(0, "nonexistent"),
	}})
	if err == nil || !strings.Contains(err.Error(), "nonexistent") {
		t.Fatalf("want unknown-node error, got %v", err)
	}
}

// TestScenarioValidate covers the malformed-step guards.
func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"negative offset", Scenario{Steps: []Step{KillFraction(-time.Second, 0.5)}}},
		{"fraction above 1", Scenario{Steps: []Step{KillFraction(0, 1.5)}}},
		{"partition without target", Scenario{Steps: []Step{{Fault: FaultPartition}}}},
		{"link loss without endpoints", Scenario{Steps: []Step{{Fault: FaultLinkLoss, Prob: 0.5}}}},
		{"corrupt probability", Scenario{Steps: []Step{CorruptFrom(0, "x", 2, false)}}},
		{"unknown fault", Scenario{Steps: []Step{{Fault: "meteor"}}}},
	}
	for _, tc := range cases {
		if err := tc.sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed scenario", tc.name)
		}
	}
	if err := fullScenario().Validate(); err != nil {
		t.Errorf("well-formed scenario rejected: %v", err)
	}
}

// requireInvariants fails the test with the violations (each carries
// the seed for replay).
func requireInvariants(t *testing.T, inv Invariants, res *Result) {
	t.Helper()
	if violations := inv.Check(res); len(violations) > 0 {
		t.Fatalf("invariants violated (rerun: go test ./internal/chaos -chaos-seed=%d):\n%s\nfault log:\n%s",
			res.Seed, strings.Join(violations, "\n"), res.Log)
	}
}

// TestScenarioPeerChurn kills 40%% of the swarm mid-playback. The
// survivors must evict dead neighbors and finish clean off the CDN.
func TestScenarioPeerChurn(t *testing.T) {
	res, err := RunScenario(context.Background(), SwarmConfig{
		Viewers:  5,
		Segments: 5,
		Seed:     *chaosSeed,
	}, PeerChurn(25*time.Millisecond, 0.4))
	if err != nil {
		t.Fatalf("seed=%d: %v", *chaosSeed, err)
	}
	requireInvariants(t, Invariants{
		PlaybackCompletes: true,
		MaxStalls:         0,
		NoPollutedCache:   true,
		NoViewerErrors:    true,
	}, res)
	if killed := len(res.Viewers) - len(res.Survivors()); killed != 2 {
		t.Fatalf("seed=%d: scenario killed %d viewers, want 2\nlog:\n%s", *chaosSeed, killed, res.Log)
	}
}

// TestScenarioSignalPartition blackholes the signaling server for a
// window. Established viewers ride it out (their reconnect loops
// re-join after the heal); late joiners degrade to plain CDN viewers.
// Playback must complete either way.
func TestScenarioSignalPartition(t *testing.T) {
	res, err := RunScenario(context.Background(), SwarmConfig{
		Viewers:  4,
		Segments: 5,
		Seed:     *chaosSeed,
	}, SignalPartition(20*time.Millisecond, 150*time.Millisecond))
	if err != nil {
		t.Fatalf("seed=%d: %v", *chaosSeed, err)
	}
	requireInvariants(t, Invariants{
		PlaybackCompletes: true,
		MaxStalls:         0,
		NoPollutedCache:   true,
		NoViewerErrors:    true,
	}, res)
	if len(res.Events) != 2 {
		t.Fatalf("want partition+heal events, got %+v", res.Events)
	}
}

// TestScenarioCDNBrownout degrades the CDN origin for a window;
// playback leans on swarm caches and the slow origin and must still
// complete without hard stalls.
func TestScenarioCDNBrownout(t *testing.T) {
	res, err := RunScenario(context.Background(), SwarmConfig{
		Viewers:  4,
		Segments: 5,
		Seed:     *chaosSeed,
	}, CDNBrownout(15*time.Millisecond, 100*time.Millisecond, 10*time.Millisecond, 512<<10))
	if err != nil {
		t.Fatalf("seed=%d: %v", *chaosSeed, err)
	}
	requireInvariants(t, Invariants{
		PlaybackCompletes: true,
		MaxStalls:         0,
		NoPollutedCache:   true,
		NoViewerErrors:    true,
	}, res)
}

// TestScenarioPollutedWire corrupts everything one viewer sends. DTLS
// authentication turns the corruption into dead connections, so the
// swarm must evict and fall back — and no corrupt bytes may ever
// surface in a cache.
func TestScenarioPollutedWire(t *testing.T) {
	res, err := RunScenario(context.Background(), SwarmConfig{
		Viewers:      4,
		Segments:     5,
		Seed:         *chaosSeed,
		HashManifest: true,
	}, PollutedWire(20*time.Millisecond, 120*time.Millisecond, "viewer-00"))
	if err != nil {
		t.Fatalf("seed=%d: %v", *chaosSeed, err)
	}
	// The sick node's own uplink is destroyed for the window — its CDN
	// requests corrupt too — so it is exempt from completion, and the
	// stall bound covers its skipped segments. Cache integrity has no
	// exemptions: nobody may hold polluted bytes.
	requireInvariants(t, Invariants{
		PlaybackCompletes: true,
		MaxStalls:         int64(res.Segments),
		NoPollutedCache:   true,
		NoViewerErrors:    true,
		Exempt:            []string{"viewer-00"},
	}, res)
}

// TestScenarioFederatedSignalCrash runs the swarm against a 3-server
// federated plane and crashes the member that owns the swarm
// ("chaos-fed" hashes to s2 — the ring is deterministic, so the
// scenario can name its victim up front). The ring hands the swarm to
// a survivor, stranded viewers re-bootstrap through their peerstores,
// and playback must complete without a stall.
func TestScenarioFederatedSignalCrash(t *testing.T) {
	// Playback must outlast the crash recovery: the reconnect loop's
	// first rejoin lands ~70ms after the kill (50ms base backoff plus
	// detection), and a rejoin re-dials, re-joins, and re-gathers ICE —
	// work that stretches under -race on loaded runners while the pace
	// clock does not. 12 segments at 20ms keep viewers alive well past
	// the rejoin even when it runs slow.
	res, err := RunScenario(context.Background(), SwarmConfig{
		Viewers:  5,
		Segments: 12,
		Seed:     *chaosSeed,
		Pace:     20 * time.Millisecond,
		Servers:  3,
		VideoID:  "chaos-fed",
	}, SignalCrash(20*time.Millisecond, NodeSignal+"-2"))
	if err != nil {
		t.Fatalf("seed=%d: %v", *chaosSeed, err)
	}
	requireInvariants(t, Invariants{
		PlaybackCompletes: true,
		MaxStalls:         0,
		NoPollutedCache:   true,
		NoViewerErrors:    true,
	}, res)
	if got := res.Counter("pdn_signal_reconnects_total"); got == 0 {
		t.Errorf("seed=%d: no viewer re-bootstrapped after the owner crash\nlog:\n%s", *chaosSeed, res.Log)
	}
	if got := res.Counter("signal_redirects_total"); got == 0 {
		t.Errorf("seed=%d: federated joins never redirected", *chaosSeed)
	}
}

// TestInvariantMessagesCarrySeed pins the replay contract: every
// violation message embeds scenario name and seed.
func TestInvariantMessagesCarrySeed(t *testing.T) {
	res := &Result{
		Scenario: "synthetic",
		Seed:     987,
		Segments: 4,
		Viewers: []*ViewerResult{
			{Name: "viewer-00", Stats: statsPlayed(2)},
			{Name: "viewer-01", Killed: true},
		},
	}
	violations := Invariants{PlaybackCompletes: true, MaxStalls: -1}.Check(res)
	if len(violations) != 1 {
		t.Fatalf("want 1 violation (killed viewer exempt), got %v", violations)
	}
	if !strings.Contains(violations[0], "seed=987") || !strings.Contains(violations[0], "scenario=synthetic") {
		t.Fatalf("violation message lacks replay info: %s", violations[0])
	}
}
