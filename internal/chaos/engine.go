package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/population"
)

// SpawnDriver materializes a population band when a FaultSpawn step
// fires. The harness installs one (SetSpawnDriver) that knows how to
// build the band's peers; the driver should start them and return
// without waiting for them to finish.
type SpawnDriver func(behavior population.Behavior, count int, at time.Duration) error

// Node is one machine the engine can impair. Infrastructure nodes
// (CDN, signal server) register with Infra set (or without a Kill
// hook), which exempts them from KillFraction's seeded selection;
// explicit KillNodes still crashes them.
type Node struct {
	// Name is the roster key referenced by scenario steps.
	Name string
	// Addr is the node's network address (impairment target).
	Addr netip.Addr
	// Host, when set, enables crash and slow faults for the node.
	Host *netsim.Host
	// Kill, when set, stops the node's process (e.g. cancels a viewer's
	// context). The engine crashes the Host first so blocked I/O fails
	// fast, then calls Kill.
	Kill func()
	// Infra exempts the node from KillFraction even though it has a
	// Kill hook — peer-churn steps must never take down the signaling
	// plane or CDN by seed luck; only explicit KillNodes does that.
	Infra bool
}

// Event is one injected fault in the log. The log records the seeded
// schedule unfolding — fault kind, resolved targets, scenario-clock
// offset — and deliberately nothing runtime-dependent, so a run's log
// is byte-identical for the same (scenario, roster, seed).
type Event struct {
	Seq     int      `json:"seq"`
	AtMS    int64    `json:"at_ms"`
	Fault   string   `json:"fault"`
	Targets []string `json:"targets,omitempty"`
	Detail  string   `json:"detail,omitempty"`
}

// Engine applies scenarios to a registered roster over a network.
type Engine struct {
	net  *netsim.Network
	seed int64
	rng  *rand.Rand

	mu     sync.Mutex
	nodes  map[string]*Node
	killed map[string]bool
	events []Event
	spawn  SpawnDriver
}

// NewEngine builds an engine whose random decisions (KillFraction
// target selection) derive from seed alone.
func NewEngine(n *netsim.Network, seed int64) *Engine {
	return &Engine{
		net:    n,
		seed:   seed,
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  make(map[string]*Node),
		killed: make(map[string]bool),
	}
}

// Seed returns the engine's seed, for failure messages and reruns.
func (e *Engine) Seed() int64 { return e.seed }

// Register adds a node to the roster. Registration order does not
// matter — selections work on the name-sorted roster — but the full
// roster must be registered before Run for logs to reproduce.
func (e *Engine) Register(n Node) {
	if n.Name == "" {
		panic("chaos: node needs a name")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.nodes[n.Name]; dup {
		panic("chaos: duplicate node " + n.Name)
	}
	node := n
	e.nodes[n.Name] = &node
}

// SetSpawnDriver installs the harness hook FaultSpawn steps call.
func (e *Engine) SetSpawnDriver(fn SpawnDriver) {
	e.mu.Lock()
	e.spawn = fn
	e.mu.Unlock()
}

// Killed returns the names of nodes crashed so far, sorted.
func (e *Engine) Killed() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.killed))
	for name := range e.killed {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Events returns a copy of the event log so far.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, len(e.events))
	copy(out, e.events)
	return out
}

// WriteLog writes the event log as JSONL (one event per line).
func (e *Engine) WriteLog(w io.Writer) error {
	for _, ev := range e.Events() {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// LogBytes returns the JSONL event log as a byte slice.
func (e *Engine) LogBytes() []byte {
	var b []byte
	for _, ev := range e.Events() {
		line, _ := json.Marshal(ev)
		b = append(b, line...)
		b = append(b, '\n')
	}
	return b
}

// Run unfolds the scenario: it sleeps from one step offset to the
// next and applies each fault in order (ties applied in declaration
// order). It returns early if ctx ends or a step is malformed.
func (e *Engine) Run(ctx context.Context, sc Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	steps := make([]Step, len(sc.Steps))
	copy(steps, sc.Steps)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	elapsed := time.Duration(0)
	for _, st := range steps {
		if wait := st.At - elapsed; wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			}
		}
		elapsed = st.At
		if err := e.apply(st); err != nil {
			return err
		}
	}
	return nil
}

// lookupLocked resolves a roster name. Caller holds e.mu.
func (e *Engine) lookupLocked(name string) (*Node, error) {
	n, ok := e.nodes[name]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown node %q", name)
	}
	return n, nil
}

// apply injects one fault and records its event.
func (e *Engine) apply(st Step) error {
	switch st.Fault {
	case FaultKillFraction:
		return e.killFraction(st)
	case FaultKillNodes:
		return e.killNodes(st)
	case FaultPartition, FaultHeal:
		return e.partition(st)
	case FaultSlow:
		return e.slow(st)
	case FaultLinkLoss:
		return e.linkLoss(st)
	case FaultCorrupt, FaultClearCorrupt:
		return e.corrupt(st)
	case FaultSpawn:
		return e.doSpawn(st)
	}
	return fmt.Errorf("chaos: unknown fault %q", st.Fault)
}

// record appends an event; targets must already be sorted.
func (e *Engine) record(st Step, targets []string, detail string) {
	e.mu.Lock()
	e.events = append(e.events, Event{
		Seq:     len(e.events),
		AtMS:    st.At.Milliseconds(),
		Fault:   string(st.Fault),
		Targets: targets,
		Detail:  detail,
	})
	e.mu.Unlock()
}

// doSpawn hands a population band to the harness driver. The event is
// recorded before the driver runs and carries only the schedule's
// parameters, keeping the log a pure function of (scenario, roster,
// seed) even though the spawned peers' lives are runtime-dependent.
func (e *Engine) doSpawn(st Step) error {
	e.mu.Lock()
	fn := e.spawn
	e.mu.Unlock()
	if fn == nil {
		return fmt.Errorf("chaos: spawn step needs a driver (Engine.SetSpawnDriver)")
	}
	e.record(st, nil, fmt.Sprintf("behavior=%s count=%d", st.Behavior, st.Count))
	return fn(population.Behavior(st.Behavior), st.Count, st.At)
}

// killFraction crashes a seeded selection of the killable roster.
func (e *Engine) killFraction(st Step) error {
	e.mu.Lock()
	candidates := make([]string, 0, len(e.nodes))
	for name, n := range e.nodes {
		if n.Kill != nil && !n.Infra && !e.killed[name] {
			candidates = append(candidates, name)
		}
	}
	sort.Strings(candidates)
	// The shuffle consumes the engine RNG in roster-sorted order, so the
	// selection depends only on (roster, prior kills, seed).
	e.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	k := int(math.Round(st.Frac * float64(len(candidates))))
	doomed := candidates[:k]
	sort.Strings(doomed)
	for _, name := range doomed {
		e.killed[name] = true
	}
	victims := make([]*Node, 0, k)
	for _, name := range doomed {
		victims = append(victims, e.nodes[name])
	}
	e.mu.Unlock()

	e.record(st, doomed, fmt.Sprintf("frac=%.2f picked=%d", st.Frac, k))
	for _, n := range victims {
		e.crash(n)
	}
	return nil
}

// killNodes crashes explicitly named nodes.
func (e *Engine) killNodes(st Step) error {
	names := append([]string(nil), st.Nodes...)
	sort.Strings(names)
	e.mu.Lock()
	victims := make([]*Node, 0, len(names))
	for _, name := range names {
		n, err := e.lookupLocked(name)
		if err != nil {
			e.mu.Unlock()
			return err
		}
		if !e.killed[name] {
			e.killed[name] = true
			victims = append(victims, n)
		}
	}
	e.mu.Unlock()

	e.record(st, names, "")
	for _, n := range victims {
		e.crash(n)
	}
	return nil
}

// crash kills one node: the host first (so blocked I/O fails fast),
// then the process hook.
func (e *Engine) crash(n *Node) {
	if n.Host != nil {
		n.Host.Close()
	}
	if n.Kill != nil {
		n.Kill()
	}
}

func (e *Engine) partition(st Step) error {
	names := append([]string(nil), st.Nodes...)
	sort.Strings(names)
	e.mu.Lock()
	addrs := make([]netip.Addr, 0, len(names))
	for _, name := range names {
		n, err := e.lookupLocked(name)
		if err != nil {
			e.mu.Unlock()
			return err
		}
		addrs = append(addrs, n.Addr)
	}
	e.mu.Unlock()

	e.record(st, names, "")
	for _, a := range addrs {
		if st.Fault == FaultPartition {
			e.net.Isolate(a)
		} else {
			e.net.Rejoin(a)
		}
	}
	return nil
}

func (e *Engine) slow(st Step) error {
	names := append([]string(nil), st.Nodes...)
	sort.Strings(names)
	e.mu.Lock()
	hosts := make([]*netsim.Host, 0, len(names))
	for _, name := range names {
		n, err := e.lookupLocked(name)
		if err != nil {
			e.mu.Unlock()
			return err
		}
		if n.Host == nil {
			e.mu.Unlock()
			return fmt.Errorf("chaos: node %q has no host to slow", name)
		}
		hosts = append(hosts, n.Host)
	}
	e.mu.Unlock()

	e.record(st, names, fmt.Sprintf("latency=%v rate=%d", st.Latency, st.RateBps))
	for _, h := range hosts {
		h.SetLatency(st.Latency)
		h.SetRates(st.RateBps, st.RateBps)
	}
	return nil
}

func (e *Engine) linkLoss(st Step) error {
	e.mu.Lock()
	from, err := e.lookupLocked(st.From)
	if err == nil {
		var to *Node
		to, err = e.lookupLocked(st.To)
		if err == nil {
			e.mu.Unlock()
			e.record(st, []string{st.From, st.To}, fmt.Sprintf("p=%.3f", st.Prob))
			e.net.SetLinkLoss(from.Addr, to.Addr, st.Prob)
			return nil
		}
	}
	e.mu.Unlock()
	return err
}

func (e *Engine) corrupt(st Step) error {
	names := append([]string(nil), st.Nodes...)
	sort.Strings(names)
	e.mu.Lock()
	addrs := make([]netip.Addr, 0, len(names))
	for _, name := range names {
		n, err := e.lookupLocked(name)
		if err != nil {
			e.mu.Unlock()
			return err
		}
		addrs = append(addrs, n.Addr)
	}
	e.mu.Unlock()

	if st.Fault == FaultCorrupt {
		e.record(st, names, fmt.Sprintf("p=%.3f truncate=%v", st.Prob, st.Truncate))
		for _, a := range addrs {
			e.net.CorruptStreams(a, st.Prob, st.Truncate)
		}
		return nil
	}
	e.record(st, names, "")
	for _, a := range addrs {
		e.net.ClearCorrupt(a)
	}
	return nil
}
