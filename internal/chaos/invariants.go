package chaos

import "fmt"

// Invariants are the properties a scenario must not break. Each
// shipped scenario asserts an explicit instance; the checker returns
// human-readable violations that lead with the seed, because the seed
// is the reproduction: rerunning the same scenario with it replays an
// identical fault schedule.
type Invariants struct {
	// PlaybackCompletes demands every surviving viewer played the full
	// VOD — the "CDN fallback always saves playback" property.
	PlaybackCompletes bool
	// MaxStalls bounds the swarm-wide pdn_stalls_total counter.
	// Negative means unbounded.
	MaxStalls int64
	// NoPollutedCache demands every cached segment on every surviving
	// viewer verifies against the ground-truth video — rejected or
	// corrupt bytes must never enter the upload cache, or the swarm
	// would relay pollution.
	NoPollutedCache bool
	// NoViewerErrors demands surviving viewers finished without error
	// (graceful degradation, not hard failure).
	NoViewerErrors bool
	// Exempt names viewers excused from the completion/error/stall
	// checks — e.g. the designated sick node whose own uplink a
	// corruption scenario destroys. Cache integrity still applies to
	// them: even a sick node must never cache polluted bytes.
	Exempt []string
}

// Check evaluates the invariants against a run, returning one message
// per violation (empty = all held).
func (inv Invariants) Check(res *Result) []string {
	var violations []string
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		violations = append(violations, fmt.Sprintf("scenario=%s seed=%d: %s", res.Scenario, res.Seed, msg))
	}

	exempt := make(map[string]bool, len(inv.Exempt))
	for _, name := range inv.Exempt {
		exempt[name] = true
	}
	for _, v := range res.Survivors() {
		if inv.PlaybackCompletes && !exempt[v.Name] && v.Stats.SegmentsPlayed < res.Segments {
			fail("%s played %d/%d segments", v.Name, v.Stats.SegmentsPlayed, res.Segments)
		}
		if inv.NoViewerErrors && !exempt[v.Name] && v.Err != nil {
			fail("%s finished with error: %v", v.Name, v.Err)
		}
		if inv.NoPollutedCache && v.Peer != nil {
			for _, idx := range v.Peer.CachedIndices() {
				data, ok := v.Peer.CachedSegment(idx)
				if !ok {
					continue
				}
				if !res.Video.Verify(res.Rendition, idx, data) {
					fail("%s caches polluted segment %d", v.Name, idx)
				}
			}
		}
	}
	if inv.MaxStalls >= 0 {
		if stalls := res.Counter("pdn_stalls_total"); stalls > inv.MaxStalls {
			fail("pdn_stalls_total=%d exceeds bound %d", stalls, inv.MaxStalls)
		}
	}
	return violations
}
