package chaos

import (
	"fmt"
	"strings"
)

// Invariants are the properties a scenario must not break. Each
// shipped scenario asserts an explicit instance; the checker returns
// human-readable violations that lead with the seed, because the seed
// is the reproduction: rerunning the same scenario with it replays an
// identical fault schedule.
type Invariants struct {
	// PlaybackCompletes demands every surviving viewer played the full
	// VOD — the "CDN fallback always saves playback" property.
	PlaybackCompletes bool
	// MaxStalls bounds the swarm-wide pdn_stalls_total counter.
	// Negative means unbounded.
	MaxStalls int64
	// NoPollutedCache demands every cached segment on every surviving
	// viewer verifies against the ground-truth video — rejected or
	// corrupt bytes must never enter the upload cache, or the swarm
	// would relay pollution.
	NoPollutedCache bool
	// NoViewerErrors demands surviving viewers finished without error
	// (graceful degradation, not hard failure).
	NoViewerErrors bool
	// Exempt names viewers excused from the completion/error/stall
	// checks — e.g. the designated sick node whose own uplink a
	// corruption scenario destroys. Cache integrity still applies to
	// them: even a sick node must never cache polluted bytes.
	Exempt []string
}

// Check evaluates the invariants against a run, returning one message
// per violation (empty = all held).
func (inv Invariants) Check(res *Result) []string {
	var violations []string
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		violations = append(violations, fmt.Sprintf("scenario=%s seed=%d: %s", res.Scenario, res.Seed, msg))
	}
	// stallTrace names the viewer's most recent failed-fetch trace so a
	// violation can be looked up directly in the run's pdntrace output
	// ("pdntrace run.jsonl", find the trace ID) instead of replayed blind.
	stallTrace := func(v *ViewerResult) string {
		if v.Peer == nil {
			return ""
		}
		if id := v.Peer.LastStallTrace(); id != "" {
			return " trace=" + id
		}
		return ""
	}

	exempt := make(map[string]bool, len(inv.Exempt))
	for _, name := range inv.Exempt {
		exempt[name] = true
	}
	for _, v := range res.Survivors() {
		if inv.PlaybackCompletes && !exempt[v.Name] && v.Stats.SegmentsPlayed < res.Segments {
			fail("%s played %d/%d segments%s", v.Name, v.Stats.SegmentsPlayed, res.Segments, stallTrace(v))
		}
		if inv.NoViewerErrors && !exempt[v.Name] && v.Err != nil {
			fail("%s finished with error: %v%s", v.Name, v.Err, stallTrace(v))
		}
		if inv.NoPollutedCache && v.Peer != nil {
			for _, idx := range v.Peer.CachedIndices() {
				data, ok := v.Peer.CachedSegment(idx)
				if !ok {
					continue
				}
				if !res.Video.Verify(res.Rendition, idx, data) {
					fail("%s caches polluted segment %d", v.Name, idx)
				}
			}
		}
	}
	if inv.MaxStalls >= 0 {
		if stalls := res.Counter("pdn_stalls_total"); stalls > inv.MaxStalls {
			// The bound is swarm-wide, so cite every surviving viewer's
			// last stall trace — one of them is the offender.
			var ids []string
			for _, v := range res.Survivors() {
				if t := stallTrace(v); t != "" {
					ids = append(ids, v.Name+t)
				}
			}
			fail("pdn_stalls_total=%d exceeds bound %d (%s)", stalls, inv.MaxStalls, strings.Join(ids, ", "))
		}
	}
	return violations
}
