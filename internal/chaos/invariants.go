package chaos

import (
	"fmt"
	"strings"

	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// Invariants are the properties a scenario must not break. Each
// shipped scenario asserts an explicit instance; the checker returns
// human-readable violations that lead with the seed, because the seed
// is the reproduction: rerunning the same scenario with it replays an
// identical fault schedule.
type Invariants struct {
	// PlaybackCompletes demands every surviving viewer played the full
	// VOD — the "CDN fallback always saves playback" property.
	PlaybackCompletes bool
	// MaxStalls bounds the swarm-wide pdn_stalls_total counter.
	// Negative means unbounded.
	MaxStalls int64
	// NoPollutedCache demands every cached segment on every surviving
	// viewer verifies against the ground-truth video — rejected or
	// corrupt bytes must never enter the upload cache, or the swarm
	// would relay pollution.
	NoPollutedCache bool
	// NoViewerErrors demands surviving viewers finished without error
	// (graceful degradation, not hard failure).
	NoViewerErrors bool
	// Exempt names viewers excused from the completion/error/stall
	// checks — e.g. the designated sick node whose own uplink a
	// corruption scenario destroys. Cache integrity still applies to
	// them: even a sick node must never cache polluted bytes.
	Exempt []string
	// MinJainFairness is the floor for Jain's index over participants'
	// P2P upload bytes (0 = unchecked). Free-rider waves drag the index
	// toward 1/n; a defended swarm keeps it near 1.
	MinJainFairness float64
	// MinHonestNeighbors demands every surviving honest viewer had at
	// least this many non-colluder neighbors over its whole session
	// (0 = unchecked) — the matcher-integrity bound an eclipse attack
	// tries to break.
	MinHonestNeighbors int
	// MaxLiveLagP99 bounds the 99th-percentile live-edge lag in
	// segments (0 = unchecked). Only meaningful for Live runs.
	MaxLiveLagP99 float64
	// MaxSybilSlotShare caps the share of match grants the host with
	// the largest identity peak may take (0 = unchecked) — the
	// upload-slot squatting bound a Sybil mill attacks. Applied only
	// when the run granted at least sybilShareMinGrants matches.
	MaxSybilSlotShare float64
	// MinSecureQuarantines demands the signaling plane quarantined at
	// least this many static keys (0 = unchecked) — the key-compromise
	// scenario's containment bound: honest peers observing failed
	// possession proofs must get the leaked key cut from matching.
	MinSecureQuarantines int64
}

// sybilShareMinGrants is the matching-economy floor under which the
// Sybil slot-share cap does not apply — shares over a handful of
// grants are bootstrap noise, not squatting.
const sybilShareMinGrants = 10

// Check evaluates the invariants against a run, returning one message
// per violation (empty = all held).
func (inv Invariants) Check(res *Result) []string {
	var violations []string
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		violations = append(violations, fmt.Sprintf("scenario=%s seed=%d: %s", res.Scenario, res.Seed, msg))
	}
	// stallTrace names the viewer's most recent failed-fetch trace so a
	// violation can be looked up directly in the run's pdntrace output
	// ("pdntrace run.jsonl", find the trace ID) instead of replayed blind.
	stallTrace := func(v *ViewerResult) string {
		if v.Peer == nil {
			return ""
		}
		if id := v.Peer.LastStallTrace(); id != "" {
			return " trace=" + id
		}
		return ""
	}

	exempt := make(map[string]bool, len(inv.Exempt))
	for _, name := range inv.Exempt {
		exempt[name] = true
	}
	colluder := make(map[string]bool, len(res.Colluders))
	for _, id := range res.Colluders {
		colluder[id] = true
	}
	for _, v := range res.Survivors() {
		// Adversarial viewers are exempt from the cooperation checks —
		// refusing to finish or failing is their job — but never from
		// cache integrity: even a colluder must not relay pollution.
		if v.Honest() {
			if inv.PlaybackCompletes && !exempt[v.Name] && v.Stats.SegmentsPlayed < res.Segments {
				fail("%s played %d/%d segments%s", v.Name, v.Stats.SegmentsPlayed, res.Segments, stallTrace(v))
			}
			if inv.NoViewerErrors && !exempt[v.Name] && v.Err != nil {
				fail("%s finished with error: %v%s", v.Name, v.Err, stallTrace(v))
			}
			if inv.MinHonestNeighbors > 0 && !exempt[v.Name] && v.Peer != nil {
				honest := 0
				for _, id := range v.Peer.NeighborIDs() {
					if !colluder[id] {
						honest++
					}
				}
				if honest < inv.MinHonestNeighbors {
					fail("%s kept %d non-colluder neighbors, need >= %d (eclipse)", v.Name, honest, inv.MinHonestNeighbors)
				}
			}
		}
		if inv.NoPollutedCache && v.Peer != nil {
			for _, idx := range v.Peer.CachedIndices() {
				data, ok := v.Peer.CachedSegment(idx)
				if !ok {
					continue
				}
				if !res.Video.Verify(res.Rendition, idx, data) {
					fail("%s caches polluted segment %d", v.Name, idx)
				}
			}
		}
	}
	if inv.MaxStalls >= 0 {
		if stalls := res.Counter("pdn_stalls_total"); stalls > inv.MaxStalls {
			// The bound is swarm-wide, so cite every surviving viewer's
			// last stall trace — one of them is the offender.
			var ids []string
			for _, v := range res.Survivors() {
				if t := stallTrace(v); t != "" {
					ids = append(ids, v.Name+t)
				}
			}
			fail("pdn_stalls_total=%d exceeds bound %d (%s)", stalls, inv.MaxStalls, strings.Join(ids, ", "))
		}
	}
	if inv.MinJainFairness > 0 {
		if j := res.JainFairness(); j < inv.MinJainFairness {
			fail("jain fairness %.3f below floor %.3f (free-riding)", j, inv.MinJainFairness)
		}
	}
	if inv.MaxLiveLagP99 > 0 {
		if lag := res.LiveLagP99(); lag > inv.MaxLiveLagP99 {
			fail("live-edge lag p99 %.1f segments exceeds bound %.1f over %d samples", lag, inv.MaxLiveLagP99, len(res.LiveLag))
		}
	}
	if inv.MinSecureQuarantines > 0 {
		if q := res.Counter("signal_secure_quarantines_total"); q < inv.MinSecureQuarantines {
			fail("signaling plane quarantined %d static keys, need >= %d (key compromise uncontained)", q, inv.MinSecureQuarantines)
		}
	}
	if inv.MaxSybilSlotShare > 0 {
		// A share is only meaningful over a real matching economy: a
		// quarantined mill's first in-budget identities trading a couple
		// of bootstrap grants before honest matching starts would read
		// as 100%. Below the floor there is nothing to squat.
		total := signal.TotalGrants(res.HostStats)
		if share, peak := res.SybilSlotShare(); share > inv.MaxSybilSlotShare && total >= sybilShareMinGrants {
			fail("host with identity peak %d took %.0f%% of %d match grants, cap %.0f%% (sybil)", peak, share*100, total, inv.MaxSybilSlotShare*100)
		}
	}
	return violations
}
