package chaos

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/population"
)

// TestScenarioKeyCompromise runs the leaked-static-key attack against
// the secure profile: six impersonators join under viewer-00's public
// key, every possession proof fails at honest verifiers, the distinct
// failure reports quarantine the key at the matcher, and the
// impersonators extract nothing. The victim whose key leaked loses its
// P2P standing — its own key is burned — but playback still completes
// off the CDN (graceful degradation, the paper's availability
// baseline).
func TestScenarioKeyCompromise(t *testing.T) {
	res, err := RunScenario(context.Background(), SwarmConfig{
		Viewers:  8,
		Segments: 8,
		Seed:     *chaosSeed,
		Pace:     5 * time.Millisecond,
		Profile:  "secure",
	}, KeyCompromise(10*time.Millisecond, 6))
	if err != nil {
		t.Fatalf("seed=%d: %v", *chaosSeed, err)
	}
	requireInvariants(t, Invariants{
		PlaybackCompletes: true,
		MaxStalls:         -1,
		NoPollutedCache:   true,
		NoViewerErrors:    true,
		// Containment: the leaked key must actually get quarantined, not
		// just fail handshakes one at a time forever.
		MinSecureQuarantines: 1,
	}, res)
	for _, v := range res.Viewers {
		if v.Behavior != population.BehaviorImpersonator {
			continue
		}
		if v.Stats.P2PUpBytes > 0 || v.Stats.P2PDownBytes > 0 {
			t.Errorf("seed=%d: impersonator %s moved P2P bytes (up=%d down=%d); possession proof did not hold",
				*chaosSeed, v.Name, v.Stats.P2PUpBytes, v.Stats.P2PDownBytes)
		}
	}
	if reports := res.Counter("signal_secure_reports_total"); reports < 3 {
		t.Errorf("seed=%d: matcher received %d bad-key reports, want >= 3 (the quarantine threshold)", *chaosSeed, reports)
	}
}

// TestSecureQuarantineInvariantFires hand-builds a run where the
// matcher quarantined nothing and pins that the containment invariant
// actually fires with a replayable message — the fire-test every
// invariant in this file must have.
func TestSecureQuarantineInvariantFires(t *testing.T) {
	res := &Result{
		Scenario: "key_compromise",
		Seed:     987,
		Obs:      obs.NewRegistry(),
	}
	violations := Invariants{MinSecureQuarantines: 1}.Check(res)
	if len(violations) != 1 {
		t.Fatalf("got %d violations, want exactly the quarantine one: %v", len(violations), violations)
	}
	v := violations[0]
	if !strings.Contains(v, "scenario=key_compromise") || !strings.Contains(v, "seed=987") {
		t.Errorf("violation lacks the replay line: %q", v)
	}
	if !strings.Contains(v, "quarantined 0") {
		t.Errorf("violation does not state the observed count: %q", v)
	}
}

// TestScenarioPollutedWireSecure re-runs the polluted-wire fault under
// the secure profile: with signed per-segment manifests, corrupt bytes
// from the sick node's destroyed uplink must never enter any cache —
// the same invariant the hash-manifest run pins, now enforced by the
// provider's signature rather than a CDN-fetched hash list.
func TestScenarioPollutedWireSecure(t *testing.T) {
	res, err := RunScenario(context.Background(), SwarmConfig{
		Viewers:  4,
		Segments: 5,
		Seed:     *chaosSeed,
		Profile:  "secure",
	}, PollutedWire(20*time.Millisecond, 120*time.Millisecond, "viewer-00"))
	if err != nil {
		t.Fatalf("seed=%d: %v", *chaosSeed, err)
	}
	requireInvariants(t, Invariants{
		PlaybackCompletes: true,
		MaxStalls:         int64(res.Segments),
		NoPollutedCache:   true,
		NoViewerErrors:    true,
		Exempt:            []string{"viewer-00"},
	}, res)
}
