//go:build !race

package chaos

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
