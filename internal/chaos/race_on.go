//go:build race

package chaos

// raceEnabled reports whether the race detector is compiled in. Tests
// scale wall-clock-sensitive bounds (live-edge lag) by its slowdown;
// the invariant logic itself is covered by the fire-tests.
const raceEnabled = true
