package chaos

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/defense"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/pdnclient"
	"github.com/stealthy-peers/pdnsec/internal/population"
	"github.com/stealthy-peers/pdnsec/internal/provider"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// liveSegDur is the live asset's segment duration in seconds. Tiny, so
// the live edge advances at harness speed and a run sees the playlist
// window slide many times.
const liveSegDur = 0.05

// SwarmConfig sizes the deployment a scenario runs against.
type SwarmConfig struct {
	// Viewers is the swarm size (default 4).
	Viewers int
	// Segments is the VOD length each viewer plays (default 6).
	Segments int
	// Seed drives everything random: provider matching, viewer neighbor
	// selection, and the engine's fault targeting.
	Seed int64
	// Pace is each viewer's inter-segment delay (default 2ms) — it is
	// what gives mid-playback faults a playback to land in.
	Pace time.Duration
	// IM deploys the §V-B integrity-checking defense.
	IM bool
	// HashManifest makes viewers verify every segment against the
	// CDN-served hash list.
	HashManifest bool
	// SegBytes is the segment size (default 12 KiB).
	SegBytes int
	// Shards stripes the signaling server's swarm state. Zero keeps the
	// single-stripe layout; large-swarm scenarios (-viewers up to 10k)
	// want 16.
	Shards int
	// Servers federates the signaling plane across this many servers
	// (zero or one keeps the classic single server). Each extra server
	// runs on its own host and registers as an engine node
	// ("signal-1", "signal-2", ...) so scenarios can crash or partition
	// individual plane members.
	Servers int
	// VideoID names the VOD asset (default "chaos"). Federated
	// scenarios pick IDs whose swarm hashes to a specific plane member
	// — the ring is deterministic, so the choice is stable.
	VideoID string
	// Profile names the provider profile to deploy ("" = peer5). The
	// adversarial regression suite reruns one scenario across profiles
	// to compare their counter-knobs (Hardened's per-host identity
	// budget against the deployed services' per-identity matchers).
	Profile string
	// Live serves a sliding-window live asset instead of a VOD: viewers
	// tune in near the live edge (LiveEdgeSegments) and sample their
	// live-edge lag at every played segment for the lag-p99 invariant.
	Live bool
	// Traces, when set, gives every deployed process (signaling servers,
	// CDN, viewers) a process-stamped tracer. The JSONL it collects is
	// what lets a violation's trace ID be looked up in pdntrace.
	Traces *obs.TraceSet
}

// ViewerResult is one viewer's outcome.
type ViewerResult struct {
	Name   string
	Killed bool // crashed by the scenario; exempt from completion checks
	// Behavior classifies the viewer; empty means honest (the core
	// swarm). Adversarial viewers are exempt from the completion and
	// error invariants — refusing to cooperate is their job — but never
	// from cache integrity.
	Behavior population.Behavior
	Stats    pdnclient.Stats
	Err      error
	Peer     *pdnclient.Peer
}

// Honest reports whether the viewer is a protocol-following member.
func (v *ViewerResult) Honest() bool {
	return v.Behavior == "" || v.Behavior == population.BehaviorHonest
}

// Result is everything a scenario run produced, for invariant checks
// and reproduction: the seed, the JSONL fault log, the shared metrics
// registry, and per-viewer outcomes.
type Result struct {
	Scenario  string
	Seed      int64
	Events    []Event
	Log       []byte
	Obs       *obs.Registry
	Video     *media.Video
	Rendition string
	Segments  int
	Viewers   []*ViewerResult
	// Colluders lists the peer IDs of eclipse-behavior viewers, for the
	// matcher-integrity invariant (honest peers must keep non-colluder
	// neighbors).
	Colluders []string
	// LiveLag holds every live-edge lag sample (in segments) honest
	// viewers took while playing a live asset.
	LiveLag []float64
	// HostStats is the signaling plane's anonymized per-host matcher
	// footprint at run end — identity peaks and match-grant counts, no
	// addresses — for the Sybil slot-share invariant.
	HostStats []signal.HostStat
}

// Counter reads a counter from the swarm's shared registry (0 if the
// counter never registered).
func (r *Result) Counter(name string) int64 {
	//lint:ignore pdnlint/obsnames read-side lookup of an already-registered counter; the literal names live at the registration sites
	return r.Obs.Counter(name, "").Value()
}

// Survivors returns the viewers the scenario did not crash.
func (r *Result) Survivors() []*ViewerResult {
	out := make([]*ViewerResult, 0, len(r.Viewers))
	for _, v := range r.Viewers {
		if !v.Killed {
			out = append(out, v)
		}
	}
	return out
}

// JainFairness computes Jain's index over the P2P upload bytes of the
// run's participants — viewers that exchanged at least one P2P byte in
// either direction. Non-participants are excluded: a quarantined leech
// farm that never got a match is a defense success, not unfairness.
// Free-riders that did download count with zero upload, which is
// exactly the asymmetry the index punishes.
func (r *Result) JainFairness() float64 {
	var xs []float64
	for _, v := range r.Viewers {
		if v.Stats.P2PUpBytes+v.Stats.P2PDownBytes > 0 {
			xs = append(xs, float64(v.Stats.P2PUpBytes))
		}
	}
	return population.Jain(xs)
}

// SybilSlotShare reports the share of all match grants that went to
// the host with the largest identity peak, plus that peak. With no
// multi-identity host present the share is 0.
func (r *Result) SybilSlotShare() (share float64, peak int) {
	return signal.MaxHostShare(r.HostStats)
}

// LiveLagP99 is the 99th-percentile live-edge lag in segments (0 when
// the run collected no samples).
func (r *Result) LiveLagP99() float64 {
	return percentile(r.LiveLag, 0.99)
}

// percentile returns the nearest-rank q-quantile of xs (q in (0,1]).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// viewerCountries spreads the swarm across the default geo plan.
var viewerCountries = []string{"US", "DE", "FR", "GB", "JP", "BR", "IN", "CA"}

// resolveProfile maps a SwarmConfig profile name to the provider model.
func resolveProfile(name string) (provider.Profile, error) {
	if name == "" {
		return provider.Peer5(), nil
	}
	for _, p := range provider.AllProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return provider.Profile{}, fmt.Errorf("chaos: unknown provider profile %q", name)
}

// RunScenario deploys a fresh testbed, starts the swarm, unfolds the
// scenario against it, and returns the outcome once every viewer run
// ends. The returned error covers harness failures (deployment,
// malformed scenario); swarm-level damage is the point and lands in
// Result for the invariant checker.
func RunScenario(ctx context.Context, cfg SwarmConfig, sc Scenario) (*Result, error) {
	if cfg.Viewers <= 0 {
		cfg.Viewers = 4
	}
	if cfg.Segments <= 0 {
		cfg.Segments = 6
	}
	if cfg.Pace <= 0 {
		cfg.Pace = 2 * time.Millisecond
	}
	if cfg.SegBytes <= 0 {
		cfg.SegBytes = 12 << 10
	}
	if cfg.VideoID == "" {
		cfg.VideoID = "chaos"
	}
	prof, err := resolveProfile(cfg.Profile)
	if err != nil {
		return nil, err
	}
	rctx, cancel := context.WithTimeout(ctx, 90*time.Second)
	defer cancel()

	video := analyzer.SmallVideo(cfg.VideoID, cfg.Segments, cfg.SegBytes)
	if cfg.Live {
		video = analyzer.SmallLiveVideo(cfg.VideoID, cfg.SegBytes, liveSegDur)
	}
	reg := obs.NewRegistry()
	opts := provider.Options{Seed: cfg.Seed, Shards: cfg.Shards, Servers: cfg.Servers}
	if cfg.IM {
		pol := signal.DefaultPolicy()
		pol.RequireIMChecking = true
		opts.PolicyOverride = &pol
	}
	// The IM arbiter is deployed whenever something makes peers check —
	// the explicit IM flag or a profile shipping RequireIMChecking.
	// Secure-transport profiles are excluded: the testbed wires them a
	// signed secure.ManifestService instead, so every segment carries an
	// ed25519 manifest signature rather than a quorum-established hash.
	if (cfg.IM || prof.Policy.RequireIMChecking) && !prof.Policy.SecureTransport {
		checker, err := defense.NewIMChecker(defense.IMConfig{
			Reporters: 2,
			FetchCDN: func(key media.SegmentKey) ([]byte, error) {
				return video.SegmentData(key.Rendition, key.Index)
			},
		})
		if err != nil {
			return nil, err
		}
		opts.IM = checker
	}
	tb, err := analyzer.NewTestbed(rctx, analyzer.TestbedConfig{
		Profile: prof,
		Video:   video,
		Obs:     reg,
		Traces:  cfg.Traces,
		Options: opts,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	eng := NewEngine(tb.Net, cfg.Seed)
	eng.Register(Node{Name: NodeCDN, Addr: tb.CDNHost.Addr(), Host: tb.CDNHost})
	// Killing a plane member also fails it on the ring: the engine's
	// host close is the crash, Plane.Fail is the plane's failure
	// detection noticing it — routers stop redirecting peers to the
	// corpse and its arcs fall to the survivors.
	failPlane := func(i int) func() {
		return func() { _ = tb.Dep.Plane.Fail(i) }
	}
	eng.Register(Node{Name: NodeSignal, Addr: tb.SignalHost.Addr(), Host: tb.SignalHost, Kill: failPlane(0), Infra: true})
	for i, h := range tb.SignalHosts[1:] {
		eng.Register(Node{Name: fmt.Sprintf("%s-%d", NodeSignal, i+1), Addr: h.Addr(), Host: h, Kill: failPlane(i + 1), Infra: true})
	}

	// Live-edge lag sampling, shared by core viewers and spawned honest
	// members. Lag is measured against the CDN's live edge at play time.
	var lagMu sync.Mutex
	var liveLag []float64
	lagHist := reg.Histogram("chaos_live_lag_segments", "live-edge lag in segments, sampled at every segment an honest viewer plays")
	sampleLag := func(key media.SegmentKey, _ []byte, _ string) {
		lag := float64(tb.CDN.LiveEdge(key.Video) - key.Index)
		lagMu.Lock()
		liveLag = append(liveLag, lag)
		lagMu.Unlock()
		lagHist.Observe(int64(lag))
	}

	viewers := make([]*ViewerResult, cfg.Viewers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Viewers; i++ {
		name := fmt.Sprintf("viewer-%02d", i)
		host, err := tb.NewViewerHost(viewerCountries[i%len(viewerCountries)])
		if err != nil {
			cancel()
			wg.Wait()
			return nil, err
		}
		vcfg := tb.ViewerConfig(host, cfg.Seed+int64(i)+1)
		vcfg.MaxSegments = cfg.Segments
		vcfg.Pace = cfg.Pace
		vcfg.GracefulDegrade = true
		vcfg.VerifyHashManifest = cfg.HashManifest
		if cfg.Live {
			vcfg.LiveEdgeSegments = 3
			vcfg.OnSegment = sampleLag
		}
		peer, err := pdnclient.New(vcfg)
		if err != nil {
			cancel()
			wg.Wait()
			return nil, err
		}
		vctx, vcancel := context.WithCancel(rctx)
		eng.Register(Node{Name: name, Addr: host.Addr(), Host: host, Kill: vcancel})
		vr := &ViewerResult{Name: name, Behavior: population.BehaviorHonest, Peer: peer}
		viewers[i] = vr
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer vcancel()
			vr.Stats, vr.Err = peer.Run(vctx)
		}()
	}

	// The spawner materializes FaultSpawn bands. Its peers live under a
	// child context so teardown can end lingering colluders and Sybil
	// identities after the core swarm finishes.
	spawnCtx, spawnCancel := context.WithCancel(rctx)
	defer spawnCancel()
	sp := &spawner{tb: tb, cfg: cfg, ctx: spawnCtx, onSegment: sampleLag}
	// Key-compromise bands impersonate the first core viewer: its static
	// key is the one the scenario treats as leaked.
	if len(viewers) > 0 && viewers[0].Peer != nil {
		sp.leakedKey = viewers[0].Peer.StaticKeyHex
	}
	eng.SetSpawnDriver(sp.drive)

	if err := eng.Run(rctx, sc); err != nil && rctx.Err() == nil {
		cancel()
		wg.Wait()
		spawnCancel()
		sp.wgHonest.Wait()
		sp.wg.Wait()
		return nil, fmt.Errorf("chaos: scenario %s: %w", sc.Name, err)
	}
	wg.Wait()
	// Spawned honest members (flash-crowd joiners) get to finish their
	// own playback; only then are lingering colluders and Sybil
	// identities torn down. A fast honest swarm can finish while the
	// mill's later identities are still mid-join, so give lingerers a
	// bounded window to reach the signaling plane first — the host
	// ledger's identity peak must reflect the whole mill, not a
	// teardown race.
	sp.wgHonest.Wait()
	sp.waitForLingerJoins(5 * time.Second)
	spawnCancel()
	sp.wg.Wait()

	killed := make(map[string]bool)
	for _, name := range eng.Killed() {
		killed[name] = true
	}
	for _, v := range viewers {
		v.Killed = killed[v.Name]
	}
	viewers = append(viewers, sp.results()...)

	var colluders []string
	for _, v := range viewers {
		if v.Behavior == population.BehaviorEclipse && v.Peer != nil {
			if id := v.Peer.ID(); id != "" {
				colluders = append(colluders, id)
			}
		}
	}
	sort.Strings(colluders)

	var hostStats []signal.HostStat
	for i := 0; ; i++ {
		srv := tb.Dep.Plane.Server(i)
		if srv == nil {
			break
		}
		hostStats = append(hostStats, srv.HostStats()...)
	}

	res := &Result{
		Scenario:  sc.Name,
		Seed:      cfg.Seed,
		Events:    eng.Events(),
		Log:       eng.LogBytes(),
		Obs:       reg,
		Video:     video,
		Rendition: video.Renditions[0].Name,
		Segments:  cfg.Segments,
		Viewers:   viewers,
		Colluders: colluders,
		LiveLag:   liveLag,
		HostStats: hostStats,
	}
	reg.GaugeFunc("chaos_jain_fairness", "Jain upload-fairness index over the run's P2P participants", res.JainFairness)
	return res, nil
}

// spawner builds the peers FaultSpawn bands call for. All spawned
// members are full pdnclient peers running under the harness's spawn
// context; their outcomes land in extra (merged into Result.Viewers).
type spawner struct {
	tb  *analyzer.Testbed
	cfg SwarmConfig
	ctx context.Context
	// onSegment is the harness's live-lag sampler, shared with spawned
	// honest viewers on live runs.
	onSegment func(key media.SegmentKey, data []byte, source string)
	// leakedKey returns the static key a key-compromise band registers
	// as its own (the first core viewer's — the "victim" of the leak).
	leakedKey func() string
	// wgHonest tracks spawned honest viewers (waited to completion);
	// wg tracks everyone else (ended by cancelling the spawn context).
	wgHonest sync.WaitGroup
	wg       sync.WaitGroup

	mu      sync.Mutex
	extra   []*ViewerResult
	spawned map[population.Behavior]int
	// shared hosts: the Sybil mill and the leech farm each run all
	// their identities from one machine — that single-host concentration
	// is what the per-host ledger is built to see.
	shared map[population.Behavior]*netsim.Host
}

// sharedHost lazily allocates the one machine a single-host behavior
// (Sybil mill, leech farm) runs all its identities from.
func (sp *spawner) sharedHost(b population.Behavior) (*netsim.Host, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.shared == nil {
		sp.shared = make(map[population.Behavior]*netsim.Host)
	}
	if h, ok := sp.shared[b]; ok {
		return h, nil
	}
	h, err := sp.tb.NewViewerHost("US")
	if err != nil {
		return nil, err
	}
	sp.shared[b] = h
	return h, nil
}

// nextIndex reserves a per-behavior sequence number.
func (sp *spawner) nextIndex(b population.Behavior) int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.spawned == nil {
		sp.spawned = make(map[population.Behavior]int)
	}
	n := sp.spawned[b]
	sp.spawned[b] = n + 1
	return n
}

// results returns the spawned full viewers' outcomes.
func (sp *spawner) results() []*ViewerResult {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return append([]*ViewerResult(nil), sp.extra...)
}

// waitForLingerJoins blocks until every lingering spawned identity
// (Sybil mill, eclipse colluder) has registered with the signaling
// plane, or the deadline passes. Peer.ID() turns non-empty exactly
// when the join completes; a peer whose Run already failed never will,
// which is what the deadline is for.
func (sp *spawner) waitForLingerJoins(deadline time.Duration) {
	expire := time.NewTimer(deadline)
	defer expire.Stop()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		pending := 0
		sp.mu.Lock()
		for _, vr := range sp.extra {
			switch vr.Behavior {
			case population.BehaviorSybil, population.BehaviorEclipse, population.BehaviorImpersonator:
				if vr.Peer != nil && vr.Peer.ID() == "" {
					pending++
				}
			}
		}
		sp.mu.Unlock()
		if pending == 0 {
			return
		}
		select {
		case <-expire.C:
			return
		case <-tick.C:
		}
	}
}

// drive is the engine's SpawnDriver: it materializes one band and
// returns once its members are started (not finished).
func (sp *spawner) drive(b population.Behavior, count int, _ time.Duration) error {
	if !b.Valid() {
		return fmt.Errorf("chaos: spawner cannot drive behavior %q", b)
	}
	return sp.spawnViewers(b, count)
}

// spawnViewers starts count pdnclient peers of the given behavior.
// Honest members (the flash crowd) behave like the core swarm — own
// hosts, full protocol, live-edge tune-in on live runs. Free-riders
// play the whole stream from ONE shared host (a leech farm billing the
// customer, §IV-B) and refuse every upload. Sybil identities share one
// host too, but each plays a single segment and lingers: the mill's
// job is to be advertised and squat neighbor slots while serving
// nothing. Eclipse colluders do the same from their own hosts, which
// is what lets them slip past per-host accounting. Impersonators also
// take their own hosts — spread across countries so geo-matching
// profiles advertise them to honest peers — and register the leaked
// key instead of their own.
func (sp *spawner) spawnViewers(b population.Behavior, count int) error {
	for i := 0; i < count; i++ {
		n := sp.nextIndex(b)
		name := fmt.Sprintf("%s-%03d", b, n)
		var host *netsim.Host
		var err error
		if b == population.BehaviorFreeRider || b == population.BehaviorSybil {
			host, err = sp.sharedHost(b)
		} else {
			host, err = sp.tb.NewViewerHost(viewerCountries[n%len(viewerCountries)])
		}
		if err != nil {
			return err
		}
		vcfg := sp.tb.ViewerConfig(host, sp.cfg.Seed+1000+int64(n))
		vcfg.Pace = sp.cfg.Pace
		vcfg.GracefulDegrade = true
		vcfg.MaxSegments = sp.cfg.Segments
		switch b {
		case population.BehaviorHonest:
			if sp.cfg.Live {
				vcfg.LiveEdgeSegments = 3
				vcfg.OnSegment = sp.onSegment
			}
		case population.BehaviorEclipse, population.BehaviorSybil:
			vcfg.UploadPolicy = func(media.SegmentKey) bool { return false }
			vcfg.MaxSegments = 1
			vcfg.Linger = 5 * time.Minute
		case population.BehaviorImpersonator:
			// The impersonator holds the victim's *public* key only; its
			// handshakes sign with its own private key, so every possession
			// proof fails — which is exactly what honest peers report.
			if sp.leakedKey != nil {
				vcfg.SecureImpersonate = sp.leakedKey()
			}
			vcfg.UploadPolicy = func(media.SegmentKey) bool { return false }
			vcfg.MaxSegments = 1
			vcfg.Linger = 5 * time.Minute
		default: // free_rider
			vcfg.UploadPolicy = func(media.SegmentKey) bool { return false }
		}
		peer, err := pdnclient.New(vcfg)
		if err != nil {
			return err
		}
		vr := &ViewerResult{Name: name, Behavior: b, Peer: peer}
		sp.mu.Lock()
		sp.extra = append(sp.extra, vr)
		sp.mu.Unlock()
		wg := &sp.wg
		if b == population.BehaviorHonest {
			wg = &sp.wgHonest
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			vr.Stats, vr.Err = peer.Run(sp.ctx)
		}()
	}
	return nil
}
