package chaos

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/defense"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/pdnclient"
	"github.com/stealthy-peers/pdnsec/internal/provider"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// SwarmConfig sizes the deployment a scenario runs against.
type SwarmConfig struct {
	// Viewers is the swarm size (default 4).
	Viewers int
	// Segments is the VOD length each viewer plays (default 6).
	Segments int
	// Seed drives everything random: provider matching, viewer neighbor
	// selection, and the engine's fault targeting.
	Seed int64
	// Pace is each viewer's inter-segment delay (default 2ms) — it is
	// what gives mid-playback faults a playback to land in.
	Pace time.Duration
	// IM deploys the §V-B integrity-checking defense.
	IM bool
	// HashManifest makes viewers verify every segment against the
	// CDN-served hash list.
	HashManifest bool
	// SegBytes is the segment size (default 12 KiB).
	SegBytes int
	// Shards stripes the signaling server's swarm state. Zero keeps the
	// single-stripe layout; large-swarm scenarios (-viewers up to 10k)
	// want 16.
	Shards int
	// Servers federates the signaling plane across this many servers
	// (zero or one keeps the classic single server). Each extra server
	// runs on its own host and registers as an engine node
	// ("signal-1", "signal-2", ...) so scenarios can crash or partition
	// individual plane members.
	Servers int
	// VideoID names the VOD asset (default "chaos"). Federated
	// scenarios pick IDs whose swarm hashes to a specific plane member
	// — the ring is deterministic, so the choice is stable.
	VideoID string
	// Traces, when set, gives every deployed process (signaling servers,
	// CDN, viewers) a process-stamped tracer. The JSONL it collects is
	// what lets a violation's trace ID be looked up in pdntrace.
	Traces *obs.TraceSet
}

// ViewerResult is one viewer's outcome.
type ViewerResult struct {
	Name   string
	Killed bool // crashed by the scenario; exempt from completion checks
	Stats  pdnclient.Stats
	Err    error
	Peer   *pdnclient.Peer
}

// Result is everything a scenario run produced, for invariant checks
// and reproduction: the seed, the JSONL fault log, the shared metrics
// registry, and per-viewer outcomes.
type Result struct {
	Scenario  string
	Seed      int64
	Events    []Event
	Log       []byte
	Obs       *obs.Registry
	Video     *media.Video
	Rendition string
	Segments  int
	Viewers   []*ViewerResult
}

// Counter reads a counter from the swarm's shared registry (0 if the
// counter never registered).
func (r *Result) Counter(name string) int64 {
	//lint:ignore pdnlint/obsnames read-side lookup of an already-registered counter; the literal names live at the registration sites
	return r.Obs.Counter(name, "").Value()
}

// Survivors returns the viewers the scenario did not crash.
func (r *Result) Survivors() []*ViewerResult {
	out := make([]*ViewerResult, 0, len(r.Viewers))
	for _, v := range r.Viewers {
		if !v.Killed {
			out = append(out, v)
		}
	}
	return out
}

// viewerCountries spreads the swarm across the default geo plan.
var viewerCountries = []string{"US", "DE", "FR", "GB", "JP", "BR", "IN", "CA"}

// RunScenario deploys a fresh testbed, starts the swarm, unfolds the
// scenario against it, and returns the outcome once every viewer run
// ends. The returned error covers harness failures (deployment,
// malformed scenario); swarm-level damage is the point and lands in
// Result for the invariant checker.
func RunScenario(ctx context.Context, cfg SwarmConfig, sc Scenario) (*Result, error) {
	if cfg.Viewers <= 0 {
		cfg.Viewers = 4
	}
	if cfg.Segments <= 0 {
		cfg.Segments = 6
	}
	if cfg.Pace <= 0 {
		cfg.Pace = 2 * time.Millisecond
	}
	if cfg.SegBytes <= 0 {
		cfg.SegBytes = 12 << 10
	}
	if cfg.VideoID == "" {
		cfg.VideoID = "chaos"
	}
	rctx, cancel := context.WithTimeout(ctx, 90*time.Second)
	defer cancel()

	video := analyzer.SmallVideo(cfg.VideoID, cfg.Segments, cfg.SegBytes)
	reg := obs.NewRegistry()
	opts := provider.Options{Seed: cfg.Seed, Shards: cfg.Shards, Servers: cfg.Servers}
	if cfg.IM {
		pol := signal.DefaultPolicy()
		pol.RequireIMChecking = true
		opts.PolicyOverride = &pol
		checker, err := defense.NewIMChecker(defense.IMConfig{
			Reporters: 2,
			FetchCDN: func(key media.SegmentKey) ([]byte, error) {
				return video.SegmentData(key.Rendition, key.Index)
			},
		})
		if err != nil {
			return nil, err
		}
		opts.IM = checker
	}
	tb, err := analyzer.NewTestbed(rctx, analyzer.TestbedConfig{
		Profile: provider.Peer5(),
		Video:   video,
		Obs:     reg,
		Traces:  cfg.Traces,
		Options: opts,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	eng := NewEngine(tb.Net, cfg.Seed)
	eng.Register(Node{Name: NodeCDN, Addr: tb.CDNHost.Addr(), Host: tb.CDNHost})
	// Killing a plane member also fails it on the ring: the engine's
	// host close is the crash, Plane.Fail is the plane's failure
	// detection noticing it — routers stop redirecting peers to the
	// corpse and its arcs fall to the survivors.
	failPlane := func(i int) func() {
		return func() { _ = tb.Dep.Plane.Fail(i) }
	}
	eng.Register(Node{Name: NodeSignal, Addr: tb.SignalHost.Addr(), Host: tb.SignalHost, Kill: failPlane(0)})
	for i, h := range tb.SignalHosts[1:] {
		eng.Register(Node{Name: fmt.Sprintf("%s-%d", NodeSignal, i+1), Addr: h.Addr(), Host: h, Kill: failPlane(i + 1)})
	}

	viewers := make([]*ViewerResult, cfg.Viewers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Viewers; i++ {
		name := fmt.Sprintf("viewer-%02d", i)
		host, err := tb.NewViewerHost(viewerCountries[i%len(viewerCountries)])
		if err != nil {
			cancel()
			wg.Wait()
			return nil, err
		}
		vcfg := tb.ViewerConfig(host, cfg.Seed+int64(i)+1)
		vcfg.MaxSegments = cfg.Segments
		vcfg.Pace = cfg.Pace
		vcfg.GracefulDegrade = true
		vcfg.VerifyHashManifest = cfg.HashManifest
		peer, err := pdnclient.New(vcfg)
		if err != nil {
			cancel()
			wg.Wait()
			return nil, err
		}
		vctx, vcancel := context.WithCancel(rctx)
		eng.Register(Node{Name: name, Addr: host.Addr(), Host: host, Kill: vcancel})
		vr := &ViewerResult{Name: name, Peer: peer}
		viewers[i] = vr
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer vcancel()
			vr.Stats, vr.Err = peer.Run(vctx)
		}()
	}

	if err := eng.Run(rctx, sc); err != nil && rctx.Err() == nil {
		cancel()
		wg.Wait()
		return nil, fmt.Errorf("chaos: scenario %s: %w", sc.Name, err)
	}
	wg.Wait()

	killed := make(map[string]bool)
	for _, name := range eng.Killed() {
		killed[name] = true
	}
	for _, v := range viewers {
		v.Killed = killed[v.Name]
	}
	return &Result{
		Scenario:  sc.Name,
		Seed:      cfg.Seed,
		Events:    eng.Events(),
		Log:       eng.LogBytes(),
		Obs:       reg,
		Video:     video,
		Rendition: video.Renditions[0].Name,
		Segments:  cfg.Segments,
		Viewers:   viewers,
	}, nil
}
