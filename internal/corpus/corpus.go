// Package corpus generates the synthetic website and Android-app corpus
// the detector experiments scan — the reproduction's stand-in for
// Tranco's top domains (categorized via VirusTotal), NerdyData/
// PublicWWW source search, and AndroZoo's APK repository.
//
// Ground truth is planted to mirror the paper's measured landscape
// (§III-C/D): per-provider counts of signature-bearing "potential"
// customers, the subset whose PDN traffic actually triggers under
// dynamic analysis, the gates that prevented triggering for the rest
// (geo restrictions, subscriptions, deep pages), extractable vs
// obfuscated API keys with the paper's validity/allowlist split, and
// the private-PDN/adult-TURN/WebRTC-tracking population among generic
// WebRTC matches. The detector never reads the Truth fields — it sees
// only pages, APK metadata, and dynamic captures, and must rediscover
// the planted landscape.
package corpus

import (
	"fmt"
	"math/rand"
	"net/netip"

	"github.com/stealthy-peers/pdnsec/internal/dtls"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/stun"
)

// Gate explains why a potential customer's PDN traffic may not trigger
// during dynamic analysis (§III-C lists these failure modes).
type Gate int

// Gate values.
const (
	GateNone         Gate = iota // traffic triggers
	GateGeo                      // video source restricted by geolocation
	GateSubscription             // video requires a paid account
	GateDeepPage                 // PDN only on subpages the crawler missed
	GateDisabled                 // SDK present but service turned off
)

// String names the gate.
func (g Gate) String() string {
	switch g {
	case GateNone:
		return "none"
	case GateGeo:
		return "geo"
	case GateSubscription:
		return "subscription"
	case GateDeepPage:
		return "deep-page"
	case GateDisabled:
		return "disabled"
	default:
		return fmt.Sprintf("Gate(%d)", int(g))
	}
}

// WebRTCKind classifies generic-WebRTC sites (§III-D).
type WebRTCKind int

// WebRTC site kinds among generic matches.
const (
	WebRTCNone WebRTCKind = iota
	WebRTCPrivatePDN
	WebRTCAdultTURN
	WebRTCTracking
	WebRTCUntriggered
)

// Page is one crawlable page of a site.
type Page struct {
	HasVideoTag bool
	HTML        string
	Scripts     []string
	Links       []string // same-site paths
}

// SiteTruth is the planted ground truth (hidden from the detector).
type SiteTruth struct {
	Provider       string // "peer5", "streamroot", "viblast", "" for none
	Active         bool
	Gate           Gate
	APIKey         string
	KeyExtractable bool
	KeyValid       bool
	KeyAllowlisted bool
	WebRTC         WebRTCKind
	PrivateServer  string // signaling domain for private PDNs
	SigDepth       int    // page depth at which the signature lives
}

// Site is one website in the corpus.
type Site struct {
	Domain        string
	Rank          int
	Category      string
	MonthlyVisits int64
	Pages         map[string]*Page
	Truth         SiteTruth
}

// APK is one app version.
type APK struct {
	Version    int
	Namespaces []string
	Manifest   map[string]string
}

// AppTruth is the planted app ground truth.
type AppTruth struct {
	Provider       string
	Active         bool
	Gate           Gate
	CellularUpload bool
	SignedVersions int // versions carrying the SDK signature
}

// App is one Android application with its version history.
type App struct {
	Package   string
	Downloads int64
	Versions  []APK
	Truth     AppTruth
}

// Corpus is the generated landscape.
type Corpus struct {
	Sites []*Site
	Apps  []*App
}

// Params sizes the corpus. Zero values take the paper-scale defaults.
type Params struct {
	Seed int64
	// FillerSites is the number of video-related sites with no PDN at
	// all (the bulk of the 68,757 scanned domains). Default 1500 keeps
	// tests fast; cmd/experiments can raise it.
	FillerSites int
	// FillerApps is the number of non-PDN apps sampled. Default 800.
	FillerApps int
}

// Paper-scale constants (§III-C, Table I): potential = signature found,
// active = dynamic analysis triggers PDN traffic.
const (
	peer5Sites, peer5ActiveSites           = 60, 16
	streamrootSites, streamrootActiveSites = 53, 1
	viblastSites, viblastActiveSites       = 21, 0

	peer5Apps, peer5ActiveApps           = 31, 15
	streamrootApps, streamrootActiveApps = 6, 3
	viblastApps, viblastActiveApps       = 1, 0

	peer5APKs, peer5ActiveAPKs           = 548, 199
	streamrootAPKs, streamrootActiveAPKs = 68, 53
	viblastAPKs, viblastActiveAPKs       = 11, 0

	genericWebRTCSites = 385
	topWebRTCSites     = 57 // rank within top 10K → dynamically analyzed
	privatePDNSites    = 10
	adultTURNSites     = 2
	trackingSites      = 3

	// Key extraction (§IV-B): 44 extractable, 40 valid (36 peer5 of
	// which 11 without allowlist, 1 streamroot, 3 viblast), 4 expired.
	peer5ExtractableValid      = 36
	peer5NoAllowlist           = 11
	streamrootExtractableValid = 1
	viblastExtractableValid    = 3
	expiredExtractable         = 4
)

// Signature snippets planted into customer pages; these match the
// provider.Signatures URL patterns the detector scans for.
var sdkSnippets = map[string]func(key string) string{
	"peer5": func(key string) string {
		return `<script src="https://api.peer5.com/peer5.js?id=` + key + `"></script>`
	},
	"streamroot": func(key string) string {
		return `<script src="https://cdn.streamroot.io/dna-bundle.js"></script><script>window.streamrootKey="` + key + `";</script>`
	},
	"viblast": func(key string) string {
		return `<script src="https://viblast.com/player/viblast.js"></script><script>viblast({key:"` + key + `"});</script>`
	},
}

// obfuscatedSnippet hides the key the way the paper observed
// (_0x101f38[_0x2c4aeb(0x234)]-style packing).
func obfuscatedSnippet(providerName string) string {
	switch providerName {
	case "peer5":
		return `<script src="https://api.peer5.com/peer5.js?id="+_0x101f38[_0x2c4aeb(0x234)]></script>`
	case "streamroot":
		return `<script src="https://cdn.streamroot.io/dna-bundle.js"></script><script>window.streamrootKey=_0x4fe1[_0xd2(0x11)];</script>`
	default:
		return `<script src="https://viblast.com/player/viblast.js"></script><script>viblast({key:_0xab[_0xcd(0x9)]});</script>`
	}
}

var privateServers = []string{
	"hw-v2-web-player-tracker.biliapi-sim.test",
	"vm.mycdn-sim.test",
	"wsproxy.douyu-sim.test",
	"webrtcpunch.video.qq-sim.test",
	"broker-qx-ws2.iqiyi-sim.test",
	"wsapi.huya-sim.test",
	"ws.mmstat-sim.test",
	"ws2.mmstat-sim.test",
	"signal.api.mgtv-sim.test",
	"signaling.younow-sim.test",
}

// Generate builds a deterministic corpus.
func Generate(p Params) *Corpus {
	if p.FillerSites <= 0 {
		p.FillerSites = 1500
	}
	if p.FillerApps <= 0 {
		p.FillerApps = 800
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := &Corpus{}
	g := &generator{rng: rng, corpus: c}

	g.publicProviderSites("peer5", peer5Sites, peer5ActiveSites)
	g.publicProviderSites("streamroot", streamrootSites, streamrootActiveSites)
	g.publicProviderSites("viblast", viblastSites, viblastActiveSites)
	g.assignKeys()
	g.webrtcSites()
	g.fillerSites(p.FillerSites)

	g.providerApps("peer5", peer5Apps, peer5ActiveApps, peer5APKs, peer5ActiveAPKs)
	g.providerApps("streamroot", streamrootApps, streamrootActiveApps, streamrootAPKs, streamrootActiveAPKs)
	g.providerApps("viblast", viblastApps, viblastActiveApps, viblastAPKs, viblastActiveAPKs)
	g.fillerApps(p.FillerApps)

	g.assignRanks()
	return c
}

type generator struct {
	rng    *rand.Rand
	corpus *Corpus
	siteN  int
	appN   int
}

func (g *generator) domain(prefix string) string {
	g.siteN++
	return fmt.Sprintf("%s%04d.example", prefix, g.siteN)
}

// publicProviderSites plants a provider's potential customers.
func (g *generator) publicProviderSites(prov string, total, active int) {
	for i := 0; i < total; i++ {
		s := &Site{
			Domain:        g.domain(prov + "-cust"),
			Category:      "tv",
			MonthlyVisits: int64(g.rng.Intn(100_000_000)),
			Pages:         map[string]*Page{},
			Truth: SiteTruth{
				Provider: prov,
				Active:   i < active,
			},
		}
		if !s.Truth.Active {
			gates := []Gate{GateGeo, GateSubscription, GateDeepPage, GateDisabled}
			s.Truth.Gate = gates[g.rng.Intn(len(gates))]
		}
		// Signature placed at depth 0-2 (the paper crawls to depth 3).
		s.Truth.SigDepth = g.rng.Intn(3)
		g.corpus.Sites = append(g.corpus.Sites, s)
	}
}

// assignKeys distributes extractable/obfuscated keys matching §IV-B.
func (g *generator) assignKeys() {
	perProvider := map[string][]*Site{}
	for _, s := range g.corpus.Sites {
		if s.Truth.Provider != "" {
			perProvider[s.Truth.Provider] = append(perProvider[s.Truth.Provider], s)
		}
	}
	plant := func(prov string, validExtractable, noAllowlist, expired int) {
		sites := perProvider[prov]
		k := 0
		for _, s := range sites {
			key := fmt.Sprintf("%s-key-%04d", prov, k)
			s.Truth.APIKey = key
			switch {
			case k < validExtractable:
				s.Truth.KeyExtractable = true
				s.Truth.KeyValid = true
				s.Truth.KeyAllowlisted = k >= noAllowlist
			case k < validExtractable+expired:
				s.Truth.KeyExtractable = true
				s.Truth.KeyValid = false
			default:
				s.Truth.KeyExtractable = false // obfuscated
				s.Truth.KeyValid = true
				s.Truth.KeyAllowlisted = true
			}
			k++
		}
	}
	// The 4 expired keys are spread over peer5 customers for
	// simplicity; the paper does not break them down by provider.
	plant("peer5", peer5ExtractableValid, peer5NoAllowlist, expiredExtractable)
	plant("streamroot", streamrootExtractableValid, 0, 0)
	plant("viblast", viblastExtractableValid, 0, 0)
	for _, sites := range perProvider {
		for _, s := range sites {
			g.buildCustomerPages(s)
		}
	}
}

// buildCustomerPages lays the SDK snippet at the planted depth.
func (g *generator) buildCustomerPages(s *Site) {
	var snippet string
	if s.Truth.KeyExtractable {
		snippet = sdkSnippets[s.Truth.Provider](s.Truth.APIKey)
	} else {
		snippet = obfuscatedSnippet(s.Truth.Provider)
	}
	home := &Page{HasVideoTag: true, HTML: `<html><video src="live.m3u8"></video>`, Links: []string{"/watch", "/about"}}
	watch := &Page{HasVideoTag: true, HTML: `<html><video></video>`, Links: []string{"/watch/ch1"}}
	ch1 := &Page{HasVideoTag: true, HTML: `<html><video></video>`}
	s.Pages["/"] = home
	s.Pages["/watch"] = watch
	s.Pages["/watch/ch1"] = ch1
	s.Pages["/about"] = &Page{HTML: "<html>about us"}
	switch s.Truth.SigDepth {
	case 0:
		home.HTML += snippet
	case 1:
		watch.HTML += snippet
	default:
		ch1.HTML += snippet
	}
}

// webrtcSites plants the 385 generic WebRTC matches with the §III-D
// breakdown among the top-ranked 57.
func (g *generator) webrtcSites() {
	kindFor := func(i int) (WebRTCKind, string) {
		switch {
		case i < privatePDNSites:
			return WebRTCPrivatePDN, privateServers[i%len(privateServers)]
		case i < privatePDNSites+adultTURNSites:
			return WebRTCAdultTURN, ""
		case i < privatePDNSites+adultTURNSites+trackingSites:
			return WebRTCTracking, ""
		default:
			return WebRTCUntriggered, ""
		}
	}
	for i := 0; i < genericWebRTCSites; i++ {
		kind, server := WebRTCUntriggered, ""
		top := i < topWebRTCSites
		if top {
			kind, server = kindFor(i)
		}
		s := &Site{
			Domain:        g.domain("webrtc"),
			Category:      "media",
			MonthlyVisits: int64(g.rng.Intn(900_000_000)),
			Pages:         map[string]*Page{},
			Truth: SiteTruth{
				WebRTC:        kind,
				PrivateServer: server,
				Active:        kind == WebRTCPrivatePDN,
			},
		}
		html := `<html><video></video><script>const pc=new RTCPeerConnection({iceServers:[{urls:"stun:stun.` + s.Domain + `:3478"}]});</script>`
		if server != "" {
			html += `<script>const ws=new WebSocket("wss://` + server + `/signal");</script>`
		}
		s.Pages["/"] = &Page{HasVideoTag: true, HTML: html}
		g.corpus.Sites = append(g.corpus.Sites, s)
	}
}

// fillerSites plants video sites without any PDN.
func (g *generator) fillerSites(n int) {
	for i := 0; i < n; i++ {
		s := &Site{
			Domain:        g.domain("plain"),
			Category:      pick(g.rng, "tv", "media", "news", "streaming"),
			MonthlyVisits: int64(g.rng.Intn(10_000_000)),
			Pages: map[string]*Page{
				"/":  {HasVideoTag: g.rng.Intn(4) != 0, HTML: "<html><video></video><script>player.load()</script>", Links: []string{"/a"}},
				"/a": {HTML: "<html>plain page"},
			},
		}
		g.corpus.Sites = append(g.corpus.Sites, s)
	}
}

// providerApps plants a provider's app population with APK histories.
func (g *generator) providerApps(prov string, apps, activeApps, apks, activeAPKs int) {
	ns := map[string]string{
		"peer5":      "com.peer5.sdk",
		"streamroot": "io.streamroot.dna",
		"viblast":    "com.viblast.android",
	}[prov]
	mkey := map[string]string{
		"peer5":      "com.peer5.ApiKey",
		"streamroot": "io.streamroot.dna.StreamrootKey",
		"viblast":    "com.viblast.LicenseKey",
	}[prov]

	// Signed (signature-bearing) APK versions are split so that active
	// apps hold exactly activeAPKs of them — Table I's "confirmed APKs"
	// are the signed versions of apps whose traffic triggered.
	remainingActive := activeAPKs
	remainingInactive := apks - activeAPKs
	for i := 0; i < apps; i++ {
		g.appN++
		active := i < activeApps
		app := &App{
			Package:   fmt.Sprintf("com.%s.app%03d", prov, g.appN),
			Downloads: int64(g.rng.Intn(50_000_000)),
			Truth: AppTruth{
				Provider:       prov,
				Active:         active,
				CellularUpload: prov == "peer5" && i < 3, // the 3 cellular-upload apps (§IV-D)
			},
		}
		if !active {
			app.Truth.Gate = GateGeo
		}
		var signed int
		if active {
			left := activeApps - i
			signed = remainingActive / left
			remainingActive -= signed
		} else {
			left := apps - i // all remaining apps are inactive
			signed = remainingInactive / left
			remainingInactive -= signed
		}
		total := signed + 1 + g.rng.Intn(3) // some unsigned (pre-SDK) versions
		for ver := 0; ver < total; ver++ {
			apk := APK{Version: ver + 1, Manifest: map[string]string{"package": app.Package}}
			if ver >= total-signed {
				apk.Namespaces = []string{ns, "androidx.media3"}
				apk.Manifest[mkey] = fmt.Sprintf("%s-app-key-%03d", prov, g.appN)
				if prov == "peer5" {
					// The unprotected configuration variable the paper
					// read to find cellular-upload customers (§IV-D).
					cfg := `{"cellularDownload":true,"cellularUpload":false}`
					if app.Truth.CellularUpload {
						cfg = `{"cellularDownload":true,"cellularUpload":true}`
					}
					apk.Manifest["com.peer5.Config"] = cfg
				}
			} else {
				apk.Namespaces = []string{"androidx.media3"}
			}
			app.Versions = append(app.Versions, apk)
		}
		app.Truth.SignedVersions = signed
		g.corpus.Apps = append(g.corpus.Apps, app)
	}
}

// fillerApps plants non-PDN apps.
func (g *generator) fillerApps(n int) {
	for i := 0; i < n; i++ {
		g.appN++
		app := &App{
			Package:   fmt.Sprintf("com.filler.app%04d", g.appN),
			Downloads: int64(g.rng.Intn(1_000_000)),
		}
		for v := 0; v < 1+g.rng.Intn(4); v++ {
			app.Versions = append(app.Versions, APK{
				Version:    v + 1,
				Namespaces: []string{"androidx.core", "com.example.ads"},
				Manifest:   map[string]string{"package": app.Package},
			})
		}
		g.corpus.Apps = append(g.corpus.Apps, app)
	}
}

// assignRanks shuffles sites into a Tranco-like ranking, keeping the
// WebRTC platform sites disproportionately high-ranked (they are the
// Bilibili/Tencent/Youku tier) so "top 57 of the 385" is meaningful.
func (g *generator) assignRanks() {
	sites := g.corpus.Sites
	g.rng.Shuffle(len(sites), func(i, j int) { sites[i], sites[j] = sites[j], sites[i] })
	// First pass: give triggered private-PDN sites ranks within top 10K.
	rank := 1
	for _, s := range sites {
		if s.Truth.WebRTC == WebRTCPrivatePDN || s.Truth.WebRTC == WebRTCAdultTURN || s.Truth.WebRTC == WebRTCTracking {
			s.Rank = rank
			rank++
		}
	}
	// Remaining generic WebRTC: the first topWebRTCSites ranks are taken;
	// spread untriggered ones across the rest.
	for _, s := range sites {
		if s.Rank == 0 && s.Truth.WebRTC == WebRTCUntriggered {
			if rank <= topWebRTCSites {
				s.Rank = rank
			} else {
				s.Rank = 10_000 + rank
			}
			rank++
		}
	}
	for _, s := range sites {
		if s.Rank == 0 {
			s.Rank = 20_000 + rank
			rank++
		}
	}
}

func pick(rng *rand.Rand, options ...string) string {
	return options[rng.Intn(len(options))]
}

// DynamicCapture synthesizes the packet capture a 15-minute dynamic
// analysis session of this site would record (§III-C): active PDN
// customers produce plaintext STUN binding exchanges followed by DTLS
// handshakes between candidate peers; TURN-relayed adult sites produce
// DTLS to a relay without peer-pair STUN; tracking sites produce STUN
// without DTLS; everything else produces plain traffic only.
func (s *Site) DynamicCapture(seed int64) []netsim.Packet {
	rng := rand.New(rand.NewSource(seed))
	self := netip.AddrPortFrom(randAddr(rng), 40000)
	peer := netip.AddrPortFrom(randAddr(rng), 41000)
	server := netip.AddrPortFrom(randAddr(rng), 3478)

	var pkts []netsim.Packet
	udp := func(src, dst netip.AddrPort, payload []byte) {
		pkts = append(pkts, netsim.Packet{Proto: netsim.ProtoUDP, Dir: netsim.DirIn, Src: src, Dst: dst, Payload: payload})
	}
	tcp := func(src, dst netip.AddrPort, payload []byte) {
		pkts = append(pkts, netsim.Packet{Proto: netsim.ProtoTCP, Dir: netsim.DirOut, Src: src, Dst: dst, Payload: payload})
	}
	// All sessions carry some plain HTTPS-ish traffic.
	tcp(self, server, []byte("\x17\x03\x03 plain tls to web server"))

	pdnActive := (s.Truth.Provider != "" && s.Truth.Active && s.Truth.Gate == GateNone) ||
		s.Truth.WebRTC == WebRTCPrivatePDN
	switch {
	case pdnActive:
		req := stun.BindingRequest("corpus:peer", 1).Encode()
		resp := stun.BindingSuccess(stun.NewTxID(), peer).Encode()
		udp(peer, self, req)
		udp(self, peer, resp)
		pkts = append(pkts, dtlsHandshakePkt(self, peer))
	case s.Truth.WebRTC == WebRTCAdultTURN:
		// Relay-only: DTLS to the TURN server, no peer-pair STUN.
		pkts = append(pkts, dtlsHandshakePkt(self, server))
	case s.Truth.WebRTC == WebRTCTracking:
		// WebRTC used to discover the visitor's IP: STUN only.
		udp(self, server, stun.BindingRequest("", 0).Encode())
		udp(server, self, stun.BindingSuccess(stun.NewTxID(), self).Encode())
	}
	return pkts
}

// DynamicCapture synthesizes an app session's capture.
func (a *App) DynamicCapture(seed int64) []netsim.Packet {
	if !a.Truth.Active || a.Truth.Gate != GateNone {
		s := &Site{Truth: SiteTruth{}}
		return s.DynamicCapture(seed)
	}
	s := &Site{Truth: SiteTruth{Provider: a.Truth.Provider, Active: true}}
	return s.DynamicCapture(seed)
}

func dtlsHandshakePkt(src, dst netip.AddrPort) netsim.Packet {
	payload := make([]byte, 16)
	payload[0] = dtls.ContentHandshake
	payload[1], payload[2] = 0xfe, 0xfd
	return netsim.Packet{Proto: netsim.ProtoTCP, Dir: netsim.DirOut, Src: src, Dst: dst, Payload: payload}
}

func randAddr(rng *rand.Rand) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(20 + rng.Intn(80)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(250))})
}
