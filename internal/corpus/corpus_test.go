package corpus

import (
	"strings"
	"testing"

	"github.com/stealthy-peers/pdnsec/internal/capture"
)

func gen(t *testing.T, seed int64) *Corpus {
	t.Helper()
	return Generate(Params{Seed: seed, FillerSites: 100, FillerApps: 50})
}

func TestGroundTruthCounts(t *testing.T) {
	c := gen(t, 1)

	type counts struct{ sites, active, apps, activeApps, apks, activeAPKs int }
	got := map[string]*counts{}
	for _, s := range c.Sites {
		if s.Truth.Provider == "" {
			continue
		}
		cc, ok := got[s.Truth.Provider]
		if !ok {
			cc = &counts{}
			got[s.Truth.Provider] = cc
		}
		cc.sites++
		if s.Truth.Active && s.Truth.Gate == GateNone {
			cc.active++
		}
	}
	for _, a := range c.Apps {
		if a.Truth.Provider == "" {
			continue
		}
		cc := got[a.Truth.Provider]
		cc.apps++
		signed := 0
		for _, apk := range a.Versions {
			for _, ns := range apk.Namespaces {
				if strings.HasPrefix(ns, "com.peer5") || strings.HasPrefix(ns, "io.streamroot") || strings.HasPrefix(ns, "com.viblast") {
					signed++
					break
				}
			}
		}
		cc.apks += signed
		if a.Truth.Active {
			cc.activeApps++
			cc.activeAPKs += signed
		}
		if signed != a.Truth.SignedVersions {
			t.Errorf("%s: signed versions %d != truth %d", a.Package, signed, a.Truth.SignedVersions)
		}
	}

	want := map[string]counts{
		"peer5":      {60, 16, 31, 15, 548, 199},
		"streamroot": {53, 1, 6, 3, 68, 53},
		"viblast":    {21, 0, 1, 0, 11, 0},
	}
	for prov, w := range want {
		g := got[prov]
		if g == nil {
			t.Fatalf("no %s entries", prov)
		}
		if g.sites != w.sites || g.active != w.active || g.apps != w.apps ||
			g.activeApps != w.activeApps || g.apks != w.apks || g.activeAPKs != w.activeAPKs {
			t.Errorf("%s counts %+v, want %+v", prov, *g, w)
		}
	}
}

func TestKeyGroundTruth(t *testing.T) {
	c := gen(t, 2)
	extractable, valid, noAllow, expired := 0, 0, 0, 0
	for _, s := range c.Sites {
		if s.Truth.APIKey == "" {
			continue
		}
		if s.Truth.KeyExtractable {
			extractable++
			if s.Truth.KeyValid {
				valid++
				if !s.Truth.KeyAllowlisted {
					noAllow++
				}
			} else {
				expired++
			}
		}
	}
	if extractable != 44 || valid != 40 || expired != 4 {
		t.Fatalf("extractable/valid/expired = %d/%d/%d, want 44/40/4", extractable, valid, expired)
	}
	if noAllow != 11 {
		t.Fatalf("keys without allowlist = %d, want 11", noAllow)
	}
}

func TestWebRTCLandscape(t *testing.T) {
	c := gen(t, 3)
	kinds := map[WebRTCKind]int{}
	topRanked := 0
	for _, s := range c.Sites {
		if s.Truth.WebRTC == WebRTCNone {
			continue
		}
		kinds[s.Truth.WebRTC]++
		if s.Rank <= 10_000 {
			topRanked++
		}
	}
	total := kinds[WebRTCPrivatePDN] + kinds[WebRTCAdultTURN] + kinds[WebRTCTracking] + kinds[WebRTCUntriggered]
	if total != 385 {
		t.Fatalf("generic WebRTC sites %d, want 385", total)
	}
	if kinds[WebRTCPrivatePDN] != 10 || kinds[WebRTCAdultTURN] != 2 || kinds[WebRTCTracking] != 3 {
		t.Fatalf("kind split %+v", kinds)
	}
	if topRanked != 57 {
		t.Fatalf("top-10K WebRTC sites %d, want 57", topRanked)
	}
}

func TestDynamicCaptureClassification(t *testing.T) {
	c := gen(t, 4)
	for _, s := range c.Sites {
		pkts := s.DynamicCapture(4)
		isPDN := capture.ConfirmPDN(pkts)
		wantPDN := (s.Truth.Provider != "" && s.Truth.Active && s.Truth.Gate == GateNone) ||
			s.Truth.WebRTC == WebRTCPrivatePDN
		if isPDN != wantPDN {
			t.Fatalf("%s: ConfirmPDN=%v, truth active=%v (%+v)", s.Domain, isPDN, wantPDN, s.Truth)
		}
	}
}

func TestGatesPreventTriggering(t *testing.T) {
	c := gen(t, 5)
	for _, s := range c.Sites {
		if s.Truth.Provider != "" && !s.Truth.Active {
			if s.Truth.Gate == GateNone {
				t.Fatalf("%s inactive but ungated", s.Domain)
			}
			if capture.ConfirmPDN(s.DynamicCapture(5)) {
				t.Fatalf("%s gated by %v but traffic triggered", s.Domain, s.Truth.Gate)
			}
		}
	}
}

func TestCellularUploadApps(t *testing.T) {
	c := gen(t, 6)
	n := 0
	for _, a := range c.Apps {
		if a.Truth.CellularUpload {
			n++
			if a.Truth.Provider != "peer5" {
				t.Errorf("cellular-upload app %s on %s; the paper found them on Peer5", a.Package, a.Truth.Provider)
			}
		}
	}
	if n != 3 {
		t.Fatalf("cellular-upload apps = %d, want 3 (§IV-D)", n)
	}
}

func TestDomainsUnique(t *testing.T) {
	c := gen(t, 7)
	seen := map[string]bool{}
	for _, s := range c.Sites {
		if seen[s.Domain] {
			t.Fatalf("duplicate domain %s", s.Domain)
		}
		seen[s.Domain] = true
	}
	seenApp := map[string]bool{}
	for _, a := range c.Apps {
		if seenApp[a.Package] {
			t.Fatalf("duplicate package %s", a.Package)
		}
		seenApp[a.Package] = true
	}
}

func TestRanksAssignedAndUnique(t *testing.T) {
	c := gen(t, 8)
	seen := map[int]bool{}
	for _, s := range c.Sites {
		if s.Rank <= 0 {
			t.Fatalf("%s has no rank", s.Domain)
		}
		if seen[s.Rank] {
			t.Fatalf("duplicate rank %d", s.Rank)
		}
		seen[s.Rank] = true
	}
}

func TestGateString(t *testing.T) {
	for g, want := range map[Gate]string{
		GateNone: "none", GateGeo: "geo", GateSubscription: "subscription",
		GateDeepPage: "deep-page", GateDisabled: "disabled",
	} {
		if g.String() != want {
			t.Errorf("Gate(%d) = %q, want %q", g, g.String(), want)
		}
	}
	if Gate(99).String() == "" {
		t.Error("unknown gate should render")
	}
}

func TestDeterminism(t *testing.T) {
	a, b := gen(t, 9), gen(t, 9)
	if len(a.Sites) != len(b.Sites) || len(a.Apps) != len(b.Apps) {
		t.Fatal("sizes differ across equal seeds")
	}
	for i := range a.Sites {
		if a.Sites[i].Domain != b.Sites[i].Domain || a.Sites[i].Rank != b.Sites[i].Rank {
			t.Fatalf("site %d differs", i)
		}
	}
}
