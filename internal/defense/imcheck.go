package defense

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// ErrPeerBlacklisted is returned to peers that reported falsified IMs.
var ErrPeerBlacklisted = errors.New("defense: peer blacklisted")

// FetchFunc downloads the authentic segment from the CDN; the IM
// checker calls it only to resolve conflicting reports, keeping the
// defense's extra CDN cost proportional to attacker activity.
type FetchFunc func(key media.SegmentKey) ([]byte, error)

// IMConfig parameterizes the checker.
type IMConfig struct {
	// Reporters is the panel size k: a segment's IM is established once
	// k distinct peers report it. The attack succeeds only if all k
	// panelists are malicious (ablation: BenchmarkAblationIMReporters).
	Reporters int
	// FetchCDN resolves conflicts. Required.
	FetchCDN FetchFunc
}

// simEntry is an established, signed IM.
type simEntry struct {
	hash string
	sig  string
}

// IMChecker implements signal.IMService: the server side of the §V-B
// peer-assisted integrity-checking defense.
type IMChecker struct {
	cfg     IMConfig
	signPub ed25519.PublicKey
	signKey ed25519.PrivateKey

	mu          sync.Mutex
	pending     map[media.SegmentKey]map[string]string // key -> peerID -> hash
	established map[media.SegmentKey]simEntry
	blacklist   map[string]bool

	conflicts  int
	cdnFetches int
}

var _ signal.IMService = (*IMChecker)(nil)

// NewIMChecker constructs the checker with a fresh signing key.
func NewIMChecker(cfg IMConfig) (*IMChecker, error) {
	if cfg.FetchCDN == nil {
		return nil, errors.New("defense: IMConfig.FetchCDN is required")
	}
	if cfg.Reporters <= 0 {
		cfg.Reporters = 3
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("defense: keygen: %w", err)
	}
	return &IMChecker{
		cfg:         cfg,
		signPub:     pub,
		signKey:     priv,
		pending:     make(map[media.SegmentKey]map[string]string),
		established: make(map[media.SegmentKey]simEntry),
		blacklist:   make(map[string]bool),
	}, nil
}

// PublicKey returns the SIM verification key (distributed to peers via
// the SDK in a real deployment).
func (c *IMChecker) PublicKey() ed25519.PublicKey { return c.signPub }

// VerifySIM checks a SIM signature against the checker's public key.
func VerifySIM(pub ed25519.PublicKey, key media.SegmentKey, hash, sig string) bool {
	raw, err := hex.DecodeString(sig)
	if err != nil {
		return false
	}
	return ed25519.Verify(pub, simMessage(key, hash), raw)
}

func simMessage(key media.SegmentKey, hash string) []byte {
	return []byte(key.String() + "|" + hash)
}

// Report records a peer's IM for a CDN-fetched segment (§V-B): the
// first k distinct reporters form the segment's panel. Agreement
// establishes the SIM; disagreement triggers CDN arbitration and
// blacklists every peer that lied.
func (c *IMChecker) Report(peerID string, key media.SegmentKey, hash string) error {
	c.mu.Lock()
	if c.blacklist[peerID] {
		c.mu.Unlock()
		return ErrPeerBlacklisted
	}
	if est, ok := c.established[key]; ok {
		// Late report against an established SIM: liars are caught here
		// too.
		if est.hash != hash {
			c.blacklist[peerID] = true
			c.mu.Unlock()
			return ErrPeerBlacklisted
		}
		c.mu.Unlock()
		return nil
	}
	panel, ok := c.pending[key]
	if !ok {
		panel = make(map[string]string, c.cfg.Reporters)
		c.pending[key] = panel
	}
	panel[peerID] = hash
	if len(panel) < c.cfg.Reporters {
		c.mu.Unlock()
		return nil
	}
	// Panel complete: check agreement.
	agreed := true
	var first string
	for _, h := range panel {
		if first == "" {
			first = h
		} else if h != first {
			agreed = false
			break
		}
	}
	if agreed {
		c.establishLocked(key, first)
		delete(c.pending, key)
		c.mu.Unlock()
		return nil
	}
	// Conflict: arbitrate via the CDN.
	c.conflicts++
	c.cdnFetches++
	c.mu.Unlock()

	data, err := c.cfg.FetchCDN(key)
	if err != nil {
		return fmt.Errorf("defense: conflict arbitration fetch: %w", err)
	}
	authentic := media.IMHash(key, data)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.establishLocked(key, authentic)
	var callerBanned bool
	for pid, h := range c.pending[key] {
		if h != authentic {
			c.blacklist[pid] = true
			if pid == peerID {
				callerBanned = true
			}
		}
	}
	delete(c.pending, key)
	if callerBanned {
		return ErrPeerBlacklisted
	}
	return nil
}

func (c *IMChecker) establishLocked(key media.SegmentKey, hash string) {
	sig := ed25519.Sign(c.signKey, simMessage(key, hash))
	c.established[key] = simEntry{hash: hash, sig: hex.EncodeToString(sig)}
}

// SIM returns the signed integrity metadata for a segment.
func (c *IMChecker) SIM(key media.SegmentKey) (hash, sig string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.established[key]
	if !found {
		return "", "", false
	}
	return e.hash, e.sig, true
}

// Blacklisted reports whether a peer has been banned.
func (c *IMChecker) Blacklisted(peerID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blacklist[peerID]
}

// Stats reports arbitration counters.
func (c *IMChecker) Stats() (conflicts, cdnFetches, blacklisted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conflicts, c.cdnFetches, len(c.blacklist)
}
