package defense

import (
	"errors"
	"fmt"
	"testing"

	"github.com/stealthy-peers/pdnsec/internal/media"
)

func testKey(i int) media.SegmentKey {
	return media.SegmentKey{Video: "bbb", Rendition: "360p", Index: i}
}

// newChecker returns a checker whose CDN fetch serves the given video.
func newChecker(t *testing.T, v *media.Video, k int) *IMChecker {
	t.Helper()
	c, err := NewIMChecker(IMConfig{
		Reporters: k,
		FetchCDN: func(key media.SegmentKey) ([]byte, error) {
			return v.SegmentData(key.Rendition, key.Index)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func vid() *media.Video {
	return &media.Video{
		ID:              "bbb",
		Renditions:      []media.Rendition{{Name: "360p", Bandwidth: 800, SegmentBytes: 1024}},
		Segments:        8,
		SegmentDuration: 10,
	}
}

func TestAgreementEstablishesSIM(t *testing.T) {
	v := vid()
	c := newChecker(t, v, 3)
	key := testKey(0)
	data, _ := v.SegmentData("360p", 0)
	h := media.IMHash(key, data)

	if _, _, ok := c.SIM(key); ok {
		t.Fatal("SIM should not exist before reports")
	}
	for i := 0; i < 3; i++ {
		if err := c.Report(fmt.Sprintf("p%d", i), key, h); err != nil {
			t.Fatal(err)
		}
	}
	hash, sig, ok := c.SIM(key)
	if !ok || hash != h {
		t.Fatalf("SIM = %q %v", hash, ok)
	}
	if !VerifySIM(c.PublicKey(), key, hash, sig) {
		t.Fatal("SIM signature invalid")
	}
	if VerifySIM(c.PublicKey(), testKey(1), hash, sig) {
		t.Fatal("SIM signature must bind the segment key (replay defense)")
	}
	conflicts, fetches, banned := c.Stats()
	if conflicts != 0 || fetches != 0 || banned != 0 {
		t.Fatalf("stats %d %d %d", conflicts, fetches, banned)
	}
}

func TestConflictArbitrationBlacklistsLiar(t *testing.T) {
	v := vid()
	c := newChecker(t, v, 3)
	key := testKey(2)
	data, _ := v.SegmentData("360p", 2)
	authentic := media.IMHash(key, data)

	if err := c.Report("honest1", key, authentic); err != nil {
		t.Fatal(err)
	}
	if err := c.Report("honest2", key, authentic); err != nil {
		t.Fatal(err)
	}
	// The liar completes the panel with a fake IM → conflict → CDN
	// arbitration → liar banned.
	err := c.Report("liar", key, "deadbeef")
	if !errors.Is(err, ErrPeerBlacklisted) {
		t.Fatalf("liar's report: err = %v", err)
	}
	hash, _, ok := c.SIM(key)
	if !ok || hash != authentic {
		t.Fatal("arbitration should establish the authentic IM")
	}
	if !c.Blacklisted("liar") || c.Blacklisted("honest1") || c.Blacklisted("honest2") {
		t.Fatal("exactly the liar should be banned")
	}
	conflicts, fetches, banned := c.Stats()
	if conflicts != 1 || fetches != 1 || banned != 1 {
		t.Fatalf("stats %d %d %d", conflicts, fetches, banned)
	}
}

func TestAllMaliciousPanelWins(t *testing.T) {
	// The paper is explicit: the attack succeeds only when all randomly
	// selected peers are malicious — unanimous lies establish a fake SIM.
	v := vid()
	c := newChecker(t, v, 3)
	key := testKey(3)
	fake := "0000deadbeef"
	for i := 0; i < 3; i++ {
		if err := c.Report(fmt.Sprintf("evil%d", i), key, fake); err != nil {
			t.Fatal(err)
		}
	}
	hash, _, ok := c.SIM(key)
	if !ok || hash != fake {
		t.Fatal("unanimous malicious panel should win (the defense's stated limit)")
	}
}

func TestLateContradictionBanned(t *testing.T) {
	v := vid()
	c := newChecker(t, v, 2)
	key := testKey(4)
	data, _ := v.SegmentData("360p", 4)
	authentic := media.IMHash(key, data)
	c.Report("a", key, authentic)
	c.Report("b", key, authentic)
	// Established; a later contradicting report is an immediate ban.
	if err := c.Report("late-liar", key, "bogus"); !errors.Is(err, ErrPeerBlacklisted) {
		t.Fatalf("err = %v", err)
	}
	// A later agreeing report is fine.
	if err := c.Report("late-honest", key, authentic); err != nil {
		t.Fatal(err)
	}
}

func TestBlacklistedPeerRejected(t *testing.T) {
	v := vid()
	c := newChecker(t, v, 2)
	key := testKey(5)
	data, _ := v.SegmentData("360p", 5)
	authentic := media.IMHash(key, data)
	c.Report("honest", key, authentic)
	if err := c.Report("liar", key, "bogus"); !errors.Is(err, ErrPeerBlacklisted) {
		t.Fatalf("err = %v", err)
	}
	// The banned peer can no longer report anything.
	if err := c.Report("liar", testKey(6), authentic); !errors.Is(err, ErrPeerBlacklisted) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateReporterDoesNotFillPanel(t *testing.T) {
	v := vid()
	c := newChecker(t, v, 3)
	key := testKey(7)
	data, _ := v.SegmentData("360p", 7)
	h := media.IMHash(key, data)
	for i := 0; i < 5; i++ {
		c.Report("same-peer", key, h)
	}
	if _, _, ok := c.SIM(key); ok {
		t.Fatal("one peer reporting repeatedly must not establish a SIM")
	}
}

func TestIMConfigValidation(t *testing.T) {
	if _, err := NewIMChecker(IMConfig{}); err == nil {
		t.Fatal("missing FetchCDN should fail")
	}
	c, err := NewIMChecker(IMConfig{FetchCDN: func(media.SegmentKey) ([]byte, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.Reporters != 3 {
		t.Fatalf("default reporters = %d", c.cfg.Reporters)
	}
}
