// Package defense implements the paper's three mitigation proposals:
//
//   - §V-A: a disposable, video-binding authentication token (JWT with
//     HMAC-SHA256) that replaces the static API key, with TTL and
//     usage-limit enforcement;
//   - §V-B: peer-assisted integrity checking — randomly-selected peers
//     report integrity metadata (IM) for CDN-fetched segments, the PDN
//     server arbitrates conflicts by re-fetching from the CDN, signs
//     the authentic IM (SIM), and blacklists liars;
//   - §V-C: peer-privacy mitigations — a TURN relay that keeps peer
//     addresses out of each other's sight (geo-constrained matching
//     lives in the signaling server's policy).
package defense

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// PDNToken is the paper's Listing 1 token structure: a disposable,
// video-binding credential issued by the PDN customer's server.
type PDNToken struct {
	CustomerID string   `json:"customer_id"`
	PDNPeerID  string   `json:"pdn_peer_id"`
	VideoIDs   []string `json:"video_ids"`
	Timestamp  int64    `json:"timestamp"`
	TTL        int64    `json:"ttl"`
	UsageLimit int      `json:"usage_limit"`
}

// ExampleToken reproduces Listing 1 exactly; §V-A reports its signed
// JWT encoding at 283 bytes.
func ExampleToken() PDNToken {
	return PDNToken{
		CustomerID: "xx.yy",
		PDNPeerID:  "1",
		VideoIDs:   []string{"https://xx.yy/zz.m3u8", "https://xx.yy/hh.m3u8"},
		Timestamp:  1619814238,
		TTL:        60,
		UsageLimit: 1,
	}
}

// JWT errors.
var (
	ErrJWTFormat     = errors.New("defense: malformed JWT")
	ErrJWTSignature  = errors.New("defense: JWT signature mismatch")
	ErrTokenExpired  = errors.New("defense: token expired")
	ErrTokenVideo    = errors.New("defense: token not valid for this video")
	ErrTokenConsumed = errors.New("defense: token usage limit reached")
)

var b64 = base64.RawURLEncoding

// SignJWT encodes claims as an HS256 JSON Web Token.
func SignJWT(claims any, secret []byte) (string, error) {
	header := b64.EncodeToString([]byte(`{"alg":"HS256","typ":"JWT"}`))
	payload, err := json.Marshal(claims)
	if err != nil {
		return "", fmt.Errorf("defense: marshal claims: %w", err)
	}
	signingInput := header + "." + b64.EncodeToString(payload)
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(signingInput))
	return signingInput + "." + b64.EncodeToString(mac.Sum(nil)), nil
}

// VerifyJWT checks an HS256 JWT's signature and decodes its claims.
func VerifyJWT(token string, secret []byte, out any) error {
	parts := strings.Split(token, ".")
	if len(parts) != 3 {
		return ErrJWTFormat
	}
	signingInput := parts[0] + "." + parts[1]
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(signingInput))
	want := mac.Sum(nil)
	got, err := b64.DecodeString(parts[2])
	if err != nil {
		return ErrJWTFormat
	}
	if !hmac.Equal(want, got) {
		return ErrJWTSignature
	}
	payload, err := b64.DecodeString(parts[1])
	if err != nil {
		return ErrJWTFormat
	}
	if out != nil {
		if err := json.Unmarshal(payload, out); err != nil {
			return fmt.Errorf("defense: decode claims: %w", err)
		}
	}
	return nil
}

// TokenAuthority issues and validates video-binding tokens, enforcing
// TTL and usage limits server-side. It is the §V-A replacement for the
// static API key: a stolen token is useless for the attacker's own
// streams (video binding) and goes stale fast (TTL + usage limit).
type TokenAuthority struct {
	secret []byte

	mu   sync.Mutex
	uses map[string]int
	now  func() time.Time
}

// NewTokenAuthority creates an authority with the given HMAC secret.
func NewTokenAuthority(secret []byte) *TokenAuthority {
	return &TokenAuthority{
		secret: append([]byte(nil), secret...),
		uses:   make(map[string]int),
		now:    time.Now,
	}
}

// SetClock overrides the time source (tests).
func (a *TokenAuthority) SetClock(now func() time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.now = now
}

// Issue signs a token. Timestamp defaults to now when zero.
func (a *TokenAuthority) Issue(tok PDNToken) (string, error) {
	if tok.Timestamp == 0 {
		a.mu.Lock()
		tok.Timestamp = a.now().Unix()
		a.mu.Unlock()
	}
	return SignJWT(tok, a.secret)
}

// Validate checks a presented JWT for a given video, consuming one use.
func (a *TokenAuthority) Validate(jwt, videoID string) error {
	var tok PDNToken
	if err := VerifyJWT(jwt, a.secret, &tok); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.now().Unix() > tok.Timestamp+tok.TTL {
		return ErrTokenExpired
	}
	bound := false
	for _, v := range tok.VideoIDs {
		if v == videoID {
			bound = true
			break
		}
	}
	if !bound {
		return ErrTokenVideo
	}
	if tok.UsageLimit > 0 {
		if a.uses[jwt] >= tok.UsageLimit {
			return ErrTokenConsumed
		}
		a.uses[jwt]++
	}
	return nil
}
