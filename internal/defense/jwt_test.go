package defense

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var testSecret = []byte("pdnsec-test-secret")

func TestJWTRoundTrip(t *testing.T) {
	tok := ExampleToken()
	jwt, err := SignJWT(tok, testSecret)
	if err != nil {
		t.Fatal(err)
	}
	var got PDNToken
	if err := VerifyJWT(jwt, testSecret, &got); err != nil {
		t.Fatal(err)
	}
	if got.CustomerID != tok.CustomerID || len(got.VideoIDs) != 2 || got.TTL != 60 {
		t.Fatalf("claims %+v", got)
	}
}

func TestJWTExampleTokenSize(t *testing.T) {
	// §V-A: "the example token along with its HMAC-SHA256 signature will
	// result in an encoded JWT of 283 bytes."
	jwt, err := SignJWT(ExampleToken(), testSecret)
	if err != nil {
		t.Fatal(err)
	}
	if len(jwt) != 283 {
		t.Fatalf("encoded JWT is %d bytes, paper reports 283", len(jwt))
	}
}

func TestJWTTamperDetected(t *testing.T) {
	jwt, _ := SignJWT(ExampleToken(), testSecret)
	parts := strings.Split(jwt, ".")
	tampered := parts[0] + "." + parts[1] + "x." + parts[2]
	if err := VerifyJWT(tampered, testSecret, nil); err == nil {
		t.Fatal("tampered payload should fail verification")
	}
	wrongKey := append([]byte(nil), testSecret...)
	wrongKey[0] ^= 0xff
	if err := VerifyJWT(jwt, wrongKey, nil); err != ErrJWTSignature {
		t.Fatalf("wrong key: err = %v", err)
	}
	if err := VerifyJWT("garbage", testSecret, nil); err != ErrJWTFormat {
		t.Fatalf("garbage: err = %v", err)
	}
	if err := VerifyJWT("a.b", testSecret, nil); err != ErrJWTFormat {
		t.Fatalf("two parts: err = %v", err)
	}
}

func TestTokenAuthorityVideoBinding(t *testing.T) {
	a := NewTokenAuthority(testSecret)
	jwt, err := a.Issue(PDNToken{
		CustomerID: "victim.com",
		PDNPeerID:  "p1",
		VideoIDs:   []string{"https://cdn/legit.m3u8"},
		TTL:        60,
		UsageLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(jwt, "https://cdn/legit.m3u8"); err != nil {
		t.Fatal(err)
	}
	// The stolen token is useless for the attacker's own stream — this
	// is the economic kill-switch for free riding.
	if err := a.Validate(jwt, "https://attacker/own.m3u8"); err != ErrTokenVideo {
		t.Fatalf("err = %v, want ErrTokenVideo", err)
	}
}

func TestTokenAuthorityUsageLimit(t *testing.T) {
	a := NewTokenAuthority(testSecret)
	jwt, _ := a.Issue(PDNToken{VideoIDs: []string{"v"}, TTL: 60, UsageLimit: 1})
	if err := a.Validate(jwt, "v"); err != nil {
		t.Fatal(err)
	}
	// Replay: second use is rejected.
	if err := a.Validate(jwt, "v"); err != ErrTokenConsumed {
		t.Fatalf("err = %v, want ErrTokenConsumed", err)
	}
}

func TestTokenAuthorityTTL(t *testing.T) {
	a := NewTokenAuthority(testSecret)
	now := time.Unix(1_700_000_000, 0)
	a.SetClock(func() time.Time { return now })
	jwt, _ := a.Issue(PDNToken{VideoIDs: []string{"v"}, TTL: 60, UsageLimit: 0})
	if err := a.Validate(jwt, "v"); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if err := a.Validate(jwt, "v"); err != ErrTokenExpired {
		t.Fatalf("err = %v, want ErrTokenExpired", err)
	}
}

func TestUnlimitedUsage(t *testing.T) {
	a := NewTokenAuthority(testSecret)
	jwt, _ := a.Issue(PDNToken{VideoIDs: []string{"v"}, TTL: 60, UsageLimit: 0})
	for i := 0; i < 5; i++ {
		if err := a.Validate(jwt, "v"); err != nil {
			t.Fatalf("use %d: %v", i, err)
		}
	}
}

// Property: signing/verifying round-trips arbitrary token contents.
func TestQuickJWTRoundTrip(t *testing.T) {
	f := func(customer, peer string, ttl uint16) bool {
		tok := PDNToken{CustomerID: customer, PDNPeerID: peer, TTL: int64(ttl), Timestamp: 1}
		jwt, err := SignJWT(tok, testSecret)
		if err != nil {
			return false
		}
		var got PDNToken
		if err := VerifyJWT(jwt, testSecret, &got); err != nil {
			return false
		}
		return got.CustomerID == customer && got.PDNPeerID == peer && got.TTL == int64(ttl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
