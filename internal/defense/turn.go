package defense

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
)

// TURNRelay is the §V-C mitigation for the IP-leak risk: peers connect
// to the relay instead of to each other, so neither ever learns the
// other's address — at the cost of relaying every P2P byte, which is
// why the paper judges TURN infeasible at PDN scale. RelayedBytes makes
// that cost measurable (BenchmarkAblationTURN).
type TURNRelay struct {
	listener *netsim.Listener

	mu      sync.Mutex
	waiting map[string]net.Conn // room -> first arrival

	relayed atomic.Int64
	wg      sync.WaitGroup
	done    chan struct{}
}

// NewTURNRelay constructs an idle relay.
func NewTURNRelay() *TURNRelay {
	return &TURNRelay{
		waiting: make(map[string]net.Conn),
		done:    make(chan struct{}),
	}
}

// Serve starts the relay on a simulated host/port.
func (r *TURNRelay) Serve(host *netsim.Host, port uint16) error {
	l, err := host.Listen(port)
	if err != nil {
		return fmt.Errorf("defense: turn listen: %w", err)
	}
	r.listener = l
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				r.handle(conn)
			}()
		}
	}()
	return nil
}

// RelayedBytes reports the total bytes forwarded between peers.
func (r *TURNRelay) RelayedBytes() int64 { return r.relayed.Load() }

// Close stops the relay.
func (r *TURNRelay) Close() error {
	select {
	case <-r.done:
	default:
		close(r.done)
	}
	if r.listener != nil {
		r.listener.Close()
	}
	r.mu.Lock()
	waiting := r.waiting
	r.waiting = make(map[string]net.Conn)
	r.mu.Unlock()
	for _, c := range waiting {
		c.Close()
	}
	r.wg.Wait()
	return nil
}

// turnHello is the allocation request a client sends on connect.
type turnHello struct {
	Room string `json:"room"`
}

// The relay uses unbuffered frames (length-prefixed JSON read directly
// from the conn) for its two-message rendezvous so that no bytes of the
// subsequently bridged raw stream can be swallowed by a buffer.

func writeFrame(conn net.Conn, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	hdr := []byte{byte(len(body) >> 24), byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}
	if _, err := conn.Write(hdr); err != nil {
		return err
	}
	_, err = conn.Write(body)
	return err
}

func readFrame(conn net.Conn, out any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return err
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n < 0 || n > 1<<16 {
		return fmt.Errorf("defense: relay frame of %d bytes", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(conn, body); err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}

func (r *TURNRelay) handle(conn net.Conn) {
	var hello turnHello
	if err := readFrame(conn, &hello); err != nil || hello.Room == "" {
		conn.Close()
		return
	}

	r.mu.Lock()
	other, ok := r.waiting[hello.Room]
	if ok {
		delete(r.waiting, hello.Room)
	} else {
		r.waiting[hello.Room] = conn
	}
	r.mu.Unlock()

	if !ok {
		return // first arrival waits; its goroutine ends here
	}

	// Second arrival: acknowledge both and bridge.
	ackBoth := func(c net.Conn) bool {
		return writeFrame(c, map[string]string{"status": "bound"}) == nil
	}
	if !ackBoth(conn) || !ackBoth(other) {
		conn.Close()
		other.Close()
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.bridge(conn, other)
	}()
}

// bridge pipes bytes both ways, counting them. When either direction
// ends — a peer hung up or died — both conns are closed immediately so
// the survivor sees the death instead of a half-open stream (and so
// Close's wg.Wait cannot hang on an abandoned bridge).
func (r *TURNRelay) bridge(a, b net.Conn) {
	var wg sync.WaitGroup
	copyCount := func(dst, src net.Conn) {
		defer wg.Done()
		defer a.Close()
		defer b.Close()
		buf := make([]byte, 64<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				r.relayed.Add(int64(n))
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
	wg.Add(2)
	go copyCount(a, b)
	copyCount(b, a)
	wg.Wait()
}

// DialRelay connects a peer to the relay and waits until the room's
// other peer arrives. The returned connection carries raw bytes between
// the two peers; neither ever sees the other's address.
func DialRelay(ctx context.Context, host *netsim.Host, relay netip.AddrPort, room string) (net.Conn, error) {
	conn, err := host.Dial(ctx, relay)
	if err != nil {
		return nil, fmt.Errorf("defense: dial relay: %w", err)
	}
	if err := writeFrame(conn, turnHello{Room: room}); err != nil {
		conn.Close()
		return nil, err
	}
	// Wait for pairing.
	if d, ok := ctx.Deadline(); ok {
		conn.SetReadDeadline(d)
	} else {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	}
	var ack map[string]string
	if err := readFrame(conn, &ack); err != nil {
		conn.Close()
		return nil, fmt.Errorf("defense: relay pairing: %w", err)
	}
	if ack["status"] != "bound" {
		conn.Close()
		return nil, fmt.Errorf("defense: unexpected relay response %q", ack["status"])
	}
	conn.SetReadDeadline(time.Time{})
	return conn, nil
}
