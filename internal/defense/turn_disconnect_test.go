package defense

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
)

// relayEnv is the fixture for the disconnect table: a fresh network
// with a serving relay and two peer hosts.
type relayEnv struct {
	net   *netsim.Network
	relay *TURNRelay
	addr  netip.AddrPort
	a, b  *netsim.Host
}

func newRelayEnv(t *testing.T) *relayEnv {
	t.Helper()
	n := netsim.New(netsim.Config{})
	relayHost := n.MustHost(netip.MustParseAddr("50.50.50.50"))
	relay := NewTURNRelay()
	if err := relay.Serve(relayHost, 3479); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { relay.Close() })
	return &relayEnv{
		net:   n,
		relay: relay,
		addr:  netip.MustParseAddrPort("50.50.50.50:3479"),
		a:     n.MustHost(netip.MustParseAddr("66.24.0.1")),
		b:     n.MustHost(netip.MustParseAddr("36.96.0.1")),
	}
}

// assertBridges proves the relay still pairs and pipes: a fresh pair in
// the given room exchanges one payload each way.
func assertBridges(t *testing.T, e *relayEnv, room string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cb, err := DialRelay(ctx, e.b, e.addr, room)
		if err != nil {
			t.Errorf("probe dial b: %v", err)
			return
		}
		defer cb.Close()
		buf := make([]byte, 16)
		cb.SetReadDeadline(time.Now().Add(3 * time.Second))
		if n, err := cb.Read(buf); err != nil || string(buf[:n]) != "ping" {
			t.Errorf("probe read b: %v %q", err, buf[:n])
			return
		}
		cb.Write([]byte("pong"))
	}()
	ca, err := DialRelay(ctx, e.a, e.addr, room)
	if err != nil {
		t.Fatalf("probe dial a: %v", err)
	}
	defer ca.Close()
	if _, err := ca.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	ca.SetReadDeadline(time.Now().Add(3 * time.Second))
	n, err := ca.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("probe read a: %v %q", err, buf[:n])
	}
	wg.Wait()
}

// waitingConn polls until the relay has parked a first arrival for the
// room, so a test can kill it at a known rendezvous state.
func waitingConn(t *testing.T, r *TURNRelay, room string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		r.mu.Lock()
		_, ok := r.waiting[room]
		r.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("relay never parked a waiter for room %q", room)
}

// TestTURNRelayPeerDisconnects pins the relay's behavior when a peer
// dies at each rendezvous stage. In every case the relay itself must
// survive and keep pairing fresh rooms.
func TestTURNRelayPeerDisconnects(t *testing.T) {
	cases := []struct {
		name string
		// disrupt kills a peer at some stage and asserts the stage-local
		// fallout. proveRoom is the room the usability probe then uses —
		// reusing the disrupted room proves its state was reclaimed.
		disrupt   func(t *testing.T, e *relayEnv)
		proveRoom string
	}{
		{
			name: "dies before pairing",
			disrupt: func(t *testing.T, e *relayEnv) {
				// First arrival announces the room and dies. The corpse
				// sits in the waiting map until the next arrival pairs
				// with it, fails, and flushes the room.
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				defer cancel()
				conn, err := e.a.Dial(ctx, e.addr)
				if err != nil {
					t.Fatal(err)
				}
				if err := writeFrame(conn, turnHello{Room: "doomed"}); err != nil {
					t.Fatal(err)
				}
				waitingConn(t, e.relay, "doomed")
				conn.Close()

				// Second arrival meets the corpse: pairing either fails
				// outright or yields a conn that dies on first read.
				cb, err := DialRelay(ctx, e.b, e.addr, "doomed")
				if err == nil {
					cb.SetReadDeadline(time.Now().Add(2 * time.Second))
					if _, rerr := cb.Read(make([]byte, 1)); rerr == nil {
						t.Fatal("read from a corpse-paired conn succeeded")
					}
					cb.Close()
				}
			},
			proveRoom: "doomed",
		},
		{
			name: "dies mid bridge",
			disrupt: func(t *testing.T, e *relayEnv) {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				done := make(chan struct{})
				go func() {
					defer close(done)
					cb, err := DialRelay(ctx, e.b, e.addr, "live")
					if err != nil {
						t.Error(err)
						return
					}
					defer cb.Close()
					buf := make([]byte, 16)
					cb.SetReadDeadline(time.Now().Add(3 * time.Second))
					if n, err := cb.Read(buf); err != nil || string(buf[:n]) != "ping" {
						t.Errorf("bridge read: %v %q", err, buf[:n])
						return
					}
					// The other side hangs up mid-relay: the survivor's
					// next read must fail promptly (the bridge tears
					// down both conns), not sit out the read deadline.
					start := time.Now()
					if _, err := cb.Read(buf); err == nil {
						t.Error("read after peer death succeeded")
					}
					if time.Since(start) > 2*time.Second {
						t.Error("survivor read waited out the deadline instead of failing on teardown")
					}
				}()
				ca, err := DialRelay(ctx, e.a, e.addr, "live")
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ca.Write([]byte("ping")); err != nil {
					t.Fatal(err)
				}
				ca.Close()
				<-done
				if got := e.relay.RelayedBytes(); got != 4 {
					t.Fatalf("relayed bytes = %d, want 4", got)
				}
			},
			proveRoom: "fresh",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newRelayEnv(t)
			tc.disrupt(t, e)
			assertBridges(t, e, tc.proveRoom)
		})
	}
}
