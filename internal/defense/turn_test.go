package defense

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/capture"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
)

func TestTURNRelayBridges(t *testing.T) {
	n := netsim.New(netsim.Config{})
	relayHost := n.MustHost(netip.MustParseAddr("50.50.50.50"))
	a := n.MustHost(netip.MustParseAddr("66.24.0.1"))
	b := n.MustHost(netip.MustParseAddr("36.96.0.1"))

	relay := NewTURNRelay()
	if err := relay.Serve(relayHost, 3479); err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	addr := netip.MustParseAddrPort("50.50.50.50:3479")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	var gotB []byte
	go func() {
		defer wg.Done()
		cb, err := DialRelay(ctx, b, addr, "room1")
		if err != nil {
			t.Error(err)
			return
		}
		defer cb.Close()
		buf := make([]byte, 64)
		cb.SetReadDeadline(time.Now().Add(3 * time.Second))
		n, err := cb.Read(buf)
		if err != nil {
			t.Error(err)
			return
		}
		gotB = append(gotB, buf[:n]...)
		cb.Write([]byte("pong"))
	}()

	ca, err := DialRelay(ctx, a, addr, "room1")
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	if _, err := ca.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	ca.SetReadDeadline(time.Now().Add(3 * time.Second))
	nn, err := ca.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if string(gotB) != "ping" || string(buf[:nn]) != "pong" {
		t.Fatalf("bridge payloads %q %q", gotB, buf[:nn])
	}
	if relay.RelayedBytes() != 8 {
		t.Fatalf("relayed bytes = %d, want 8", relay.RelayedBytes())
	}
}

func TestTURNHidesPeerAddresses(t *testing.T) {
	n := netsim.New(netsim.Config{})
	relayHost := n.MustHost(netip.MustParseAddr("50.50.50.50"))
	a := n.MustHost(netip.MustParseAddr("66.24.0.1"))
	b := n.MustHost(netip.MustParseAddr("36.96.0.1"))

	// Capture everything peer A sees.
	rec := capture.NewRecorder(0)
	a.AddTap(rec.Tap)

	relay := NewTURNRelay()
	if err := relay.Serve(relayHost, 3479); err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	addr := netip.MustParseAddrPort("50.50.50.50:3479")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		cb, err := DialRelay(ctx, b, addr, "r")
		if err != nil {
			return
		}
		defer cb.Close()
		cb.Write([]byte("data-from-b"))
	}()
	ca, err := DialRelay(ctx, a, addr, "r")
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	buf := make([]byte, 64)
	ca.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := ca.Read(buf); err != nil {
		t.Fatal(err)
	}
	<-done

	// Every address in A's capture is either A itself or the relay —
	// B's address never appears.
	for _, p := range rec.Packets() {
		for _, ap := range []netip.Addr{p.Src.Addr(), p.Dst.Addr()} {
			if ap != a.Addr() && ap != relayHost.Addr() {
				t.Fatalf("peer A observed foreign address %v (leak)", ap)
			}
		}
	}
}

func TestRelayDistinctRooms(t *testing.T) {
	n := netsim.New(netsim.Config{})
	relayHost := n.MustHost(netip.MustParseAddr("50.50.50.50"))
	relay := NewTURNRelay()
	if err := relay.Serve(relayHost, 3479); err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	addr := netip.MustParseAddrPort("50.50.50.50:3479")

	hosts := make([]*netsim.Host, 4)
	for i := range hosts {
		hosts[i] = n.MustHost(netip.AddrFrom4([4]byte{66, 24, 1, byte(i + 1)}))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	results := make([]string, 2)
	for i, room := range []string{"roomA", "roomB"} {
		wg.Add(1)
		go func(i int, room string) {
			defer wg.Done()
			c, err := DialRelay(ctx, hosts[2*i], addr, room)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			c.Write([]byte(room))
		}(i, room)
		wg.Add(1)
		go func(i int, room string) {
			defer wg.Done()
			c, err := DialRelay(ctx, hosts[2*i+1], addr, room)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			buf := make([]byte, 32)
			c.SetReadDeadline(time.Now().Add(3 * time.Second))
			n, err := c.Read(buf)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = string(buf[:n])
		}(i, room)
	}
	wg.Wait()
	if results[0] != "roomA" || results[1] != "roomB" {
		t.Fatalf("room isolation broken: %v", results)
	}
}

func TestDialRelayTimeoutWhenAlone(t *testing.T) {
	n := netsim.New(netsim.Config{})
	relayHost := n.MustHost(netip.MustParseAddr("50.50.50.50"))
	a := n.MustHost(netip.MustParseAddr("66.24.0.1"))
	relay := NewTURNRelay()
	if err := relay.Serve(relayHost, 3479); err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := DialRelay(ctx, a, netip.MustParseAddrPort("50.50.50.50:3479"), "lonely"); err == nil {
		t.Fatal("pairing should time out with no partner")
	}
}
