// Package detector implements the paper's PDN customer detection
// framework (§III-C): a signature-based scanner over websites (BFS
// crawl to depth 3, gated on a <video> tag) and Android APKs
// (namespace + manifest-key matching), followed by dynamic confirmation
// that classifies a session capture — STUN binding requests followed by
// a DTLS handshake between candidate peers — as live PDN traffic. It
// also performs the §IV-B API-key extraction via regular expressions,
// which fails exactly where the paper's did: on obfuscated or
// runtime-loaded keys.
package detector

import (
	"context"
	"encoding/json"
	"regexp"
	"sort"
	"strings"

	"github.com/stealthy-peers/pdnsec/internal/capture"
	"github.com/stealthy-peers/pdnsec/internal/corpus"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

// MaxDepth is the crawl depth limit (§III-C: "within a depth of 3").
const MaxDepth = 3

// ScanResult is the static-scan verdict for one site.
type ScanResult struct {
	Domain string `json:"domain"`
	// Provider is the matched public provider ("" if none).
	Provider string `json:"provider,omitempty"`
	// GenericWebRTC marks sites matching only generic WebRTC patterns.
	GenericWebRTC bool `json:"generic_webrtc,omitempty"`
	// MatchedPath is where the signature was found.
	MatchedPath string `json:"matched_path,omitempty"`
	// PagesCrawled counts the crawl's work.
	PagesCrawled int `json:"pages_crawled"`
}

// Potential reports whether the static scan flagged the site.
func (r ScanResult) Potential() bool { return r.Provider != "" || r.GenericWebRTC }

// WebScanner matches provider signatures in crawled pages.
type WebScanner struct {
	sigs map[string][]string // provider name -> URL patterns
	// genericPatterns catch WebRTC use without a known provider.
	genericPatterns []string
}

// NewWebScanner builds a scanner from provider profiles.
func NewWebScanner(profiles []provider.Profile) *WebScanner {
	s := &WebScanner{
		sigs:            make(map[string][]string, len(profiles)),
		genericPatterns: []string{"RTCPeerConnection", "webrtc", "iceServers"},
	}
	for _, p := range profiles {
		s.sigs[p.Name] = append([]string(nil), p.Signatures.URLPatterns...)
	}
	return s
}

// ScanSite crawls one site breadth-first from "/" to MaxDepth, only if
// the landing page carries a video tag, stopping at the first provider
// signature.
func (s *WebScanner) ScanSite(site *corpus.Site) ScanResult {
	res := ScanResult{Domain: site.Domain}
	home := site.Pages["/"]
	if home == nil || !home.HasVideoTag {
		return res
	}
	type queued struct {
		path  string
		depth int
	}
	visited := map[string]bool{"/": true}
	queue := []queued{{path: "/", depth: 0}}
	generic := false
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		page := site.Pages[cur.path]
		if page == nil {
			continue
		}
		res.PagesCrawled++
		content := page.HTML + "\n" + strings.Join(page.Scripts, "\n")
		for prov, patterns := range s.sigs {
			for _, pat := range patterns {
				if strings.Contains(content, pat) {
					res.Provider = prov
					res.MatchedPath = cur.path
					return res
				}
			}
		}
		for _, pat := range s.genericPatterns {
			if strings.Contains(content, pat) {
				generic = true
			}
		}
		if cur.depth < MaxDepth {
			for _, link := range page.Links {
				if !visited[link] {
					visited[link] = true
					queue = append(queue, queued{path: link, depth: cur.depth + 1})
				}
			}
		}
	}
	res.GenericWebRTC = generic
	return res
}

// keyPatterns extract embedded API keys the way the paper did; they
// fail on obfuscated (_0x...) forms by construction.
var keyPatterns = map[string]*regexp.Regexp{
	"peer5":      regexp.MustCompile(`peer5\.js\?id=([A-Za-z0-9_-]+)"`),
	"streamroot": regexp.MustCompile(`window\.streamrootKey="([A-Za-z0-9_-]+)"`),
	"viblast":    regexp.MustCompile(`viblast\(\{key:"([A-Za-z0-9_-]+)"\}\)`),
}

// ExtractedKey is an API key recovered from a customer's pages.
type ExtractedKey struct {
	Domain   string `json:"domain"`
	Provider string `json:"provider"`
	Key      string `json:"key"`
}

// ExtractKeys runs the regex extraction over every page of a site.
func ExtractKeys(site *corpus.Site) []ExtractedKey {
	var out []ExtractedKey
	seen := map[string]bool{}
	paths := make([]string, 0, len(site.Pages))
	for p := range site.Pages {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		page := site.Pages[path]
		content := page.HTML + "\n" + strings.Join(page.Scripts, "\n")
		for prov, re := range keyPatterns {
			for _, m := range re.FindAllStringSubmatch(content, -1) {
				if !seen[m[1]] {
					seen[m[1]] = true
					out = append(out, ExtractedKey{Domain: site.Domain, Provider: prov, Key: m[1]})
				}
			}
		}
	}
	return out
}

// ScanAPK matches one APK's namespaces and manifest keys against
// provider signatures.
func ScanAPK(apk corpus.APK, profiles []provider.Profile) (string, bool) {
	for _, p := range profiles {
		for _, ns := range p.Signatures.Namespaces {
			for _, have := range apk.Namespaces {
				if strings.HasPrefix(have, ns) {
					return p.Name, true
				}
			}
		}
		for _, mk := range p.Signatures.ManifestKeys {
			if _, ok := apk.Manifest[mk]; ok {
				return p.Name, true
			}
		}
	}
	return "", false
}

// ConfirmDynamic applies the dynamic PDN-traffic rule to a capture.
func ConfirmDynamic(pkts []netsim.Packet) bool {
	return capture.ConfirmPDN(pkts)
}

// AppConfig is the SDK configuration recovered from an app's unprotected
// config variable (§IV-D, "resource squatting in the wild").
type AppConfig struct {
	CellularDownload bool `json:"cellularDownload"`
	CellularUpload   bool `json:"cellularUpload"`
}

// ExtractAppConfig recovers the SDK configuration from any version of
// an app that carries the unprotected config variable; the paper used
// this to find customers allowing cellular upload.
func ExtractAppConfig(app *corpus.App) (AppConfig, bool) {
	for _, apk := range app.Versions {
		raw, ok := apk.Manifest["com.peer5.Config"]
		if !ok {
			continue
		}
		var cfg AppConfig
		if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
			continue
		}
		return cfg, true
	}
	return AppConfig{}, false
}

// Report aggregates a full pipeline run — the material for Tables I-IV.
type Report struct {
	// Per public provider.
	PotentialSites map[string]int `json:"potential_sites"`
	ConfirmedSites map[string]int `json:"confirmed_sites"`
	PotentialApps  map[string]int `json:"potential_apps"`
	ConfirmedApps  map[string]int `json:"confirmed_apps"`
	PotentialAPKs  map[string]int `json:"potential_apks"`
	ConfirmedAPKs  map[string]int `json:"confirmed_apks"`

	// Generic WebRTC population (§III-D).
	GenericWebRTCSites int `json:"generic_webrtc_sites"`
	TopDynamicSites    int `json:"top_dynamic_sites"`
	ConfirmedPrivate   int `json:"confirmed_private"`
	AdultTURN          int `json:"adult_turn"`
	TrackingOnly       int `json:"tracking_only"`
	Untriggered        int `json:"untriggered"`

	// Key extraction (§IV-B).
	ExtractedKeys []ExtractedKey `json:"extracted_keys"`

	// CellularUploadApps lists apps whose recovered SDK config allows
	// cellular upload (§IV-D); LeechModeApps allow download only.
	CellularUploadApps []string `json:"cellular_upload_apps"`
	LeechModeApps      []string `json:"leech_mode_apps"`

	// Confirmed customer details for Tables II-IV.
	ConfirmedSiteList    []ConfirmedSite `json:"confirmed_site_list"`
	ConfirmedAppList     []ConfirmedApp  `json:"confirmed_app_list"`
	ConfirmedPrivateList []PrivateSite   `json:"confirmed_private_list"`

	SitesScanned int `json:"sites_scanned"`
	APKsScanned  int `json:"apks_scanned"`
}

// ConfirmedSite is a Table II row.
type ConfirmedSite struct {
	Domain        string `json:"domain"`
	Provider      string `json:"provider"`
	MonthlyVisits int64  `json:"monthly_visits"`
}

// ConfirmedApp is a Table III row.
type ConfirmedApp struct {
	Package   string `json:"package"`
	Provider  string `json:"provider"`
	Downloads int64  `json:"downloads"`
}

// PrivateSite is a Table IV row.
type PrivateSite struct {
	Domain        string `json:"domain"`
	Server        string `json:"server"`
	MonthlyVisits int64  `json:"monthly_visits"`
}

// topRankCutoff bounds which generic-WebRTC sites receive dynamic
// analysis (§III-D: "the top 57 websites that rank in top 10K").
const topRankCutoff = 10_000

// WebRTCVerdict classifies a generic-WebRTC site's dynamic capture.
// The string values are part of the checkpoint format.
type WebRTCVerdict string

// WebRTC verdicts for dynamically analyzed generic-WebRTC sites.
const (
	WebRTCNotAnalyzed WebRTCVerdict = ""            // not flagged or below the rank cutoff
	WebRTCPrivatePDN  WebRTCVerdict = "private"     // STUN + DTLS between peers: a private PDN
	WebRTCRelayOnly   WebRTCVerdict = "relay"       // DTLS to a relay, no peer STUN (adult TURN)
	WebRTCTracking    WebRTCVerdict = "tracking"    // STUN without DTLS: IP discovery only
	WebRTCUntriggered WebRTCVerdict = "untriggered" // nothing triggered in the session
)

// SiteOutcome is everything the pipeline learns about one site: the
// static scan, any extracted keys, and the dynamic-analysis verdicts.
// It is the unit of work the dispatch engine schedules and checkpoints,
// so all fields round-trip through JSON.
type SiteOutcome struct {
	Scan      ScanResult     `json:"scan"`
	Keys      []ExtractedKey `json:"keys,omitempty"`
	Confirmed bool           `json:"confirmed,omitempty"`
	WebRTC    WebRTCVerdict  `json:"webrtc,omitempty"`
}

// ScanSiteFull runs one site through the whole per-site flow: static
// signature scan, key extraction, and — when the static scan or the
// §III-D rank gate calls for it — dynamic confirmation.
func (s *WebScanner) ScanSiteFull(site *corpus.Site, seed int64) SiteOutcome {
	out := SiteOutcome{Scan: s.ScanSite(site)}
	switch {
	case out.Scan.Provider != "":
		out.Keys = ExtractKeys(site)
		out.Confirmed = ConfirmDynamic(site.DynamicCapture(seed))
	case out.Scan.GenericWebRTC && site.Rank <= topRankCutoff:
		pkts := site.DynamicCapture(seed)
		switch {
		case ConfirmDynamic(pkts):
			out.WebRTC = WebRTCPrivatePDN
		case isRelayOnly(pkts):
			out.WebRTC = WebRTCRelayOnly
		case isTrackingOnly(pkts):
			out.WebRTC = WebRTCTracking
		default:
			out.WebRTC = WebRTCUntriggered
		}
	}
	return out
}

// AppOutcome is one app's scan product (static APK scan over every
// version, config recovery, dynamic confirmation), JSON-stable for
// checkpointing.
type AppOutcome struct {
	Provider        string     `json:"provider,omitempty"`
	SignedVersions  int        `json:"signed_versions,omitempty"`
	VersionsScanned int        `json:"versions_scanned"`
	Config          *AppConfig `json:"config,omitempty"`
	Confirmed       bool       `json:"confirmed,omitempty"`
}

// ScanAppFull runs one app through the per-app flow.
func ScanAppFull(app *corpus.App, profiles []provider.Profile, seed int64) AppOutcome {
	out := AppOutcome{VersionsScanned: len(app.Versions)}
	for _, apk := range app.Versions {
		if prov, ok := ScanAPK(apk, profiles); ok {
			out.Provider = prov
			out.SignedVersions++
		}
	}
	if out.Provider == "" {
		return out
	}
	if cfg, ok := ExtractAppConfig(app); ok {
		out.Config = &cfg
	}
	out.Confirmed = ConfirmDynamic(app.DynamicCapture(seed))
	return out
}

// Reduce folds per-item outcomes into the Report, walking them in
// corpus order. Because every outcome is positionally tied to its site
// or app, the fold — and therefore every rendered table — is identical
// whether the outcomes were computed sequentially or by a racing worker
// pool.
func Reduce(c *corpus.Corpus, sites []SiteOutcome, apps []AppOutcome) *Report {
	rep := &Report{
		PotentialSites: map[string]int{},
		ConfirmedSites: map[string]int{},
		PotentialApps:  map[string]int{},
		ConfirmedApps:  map[string]int{},
		PotentialAPKs:  map[string]int{},
		ConfirmedAPKs:  map[string]int{},
	}
	for i, out := range sites {
		site := c.Sites[i]
		rep.SitesScanned++
		switch {
		case out.Scan.Provider != "":
			rep.PotentialSites[out.Scan.Provider]++
			rep.ExtractedKeys = append(rep.ExtractedKeys, out.Keys...)
			if out.Confirmed {
				rep.ConfirmedSites[out.Scan.Provider]++
				rep.ConfirmedSiteList = append(rep.ConfirmedSiteList, ConfirmedSite{
					Domain: site.Domain, Provider: out.Scan.Provider, MonthlyVisits: site.MonthlyVisits,
				})
			}
		case out.Scan.GenericWebRTC:
			rep.GenericWebRTCSites++
			if site.Rank <= topRankCutoff {
				rep.TopDynamicSites++
				switch out.WebRTC {
				case WebRTCPrivatePDN:
					rep.ConfirmedPrivate++
					rep.ConfirmedPrivateList = append(rep.ConfirmedPrivateList, PrivateSite{
						Domain: site.Domain, Server: site.Truth.PrivateServer, MonthlyVisits: site.MonthlyVisits,
					})
				case WebRTCRelayOnly:
					rep.AdultTURN++
				case WebRTCTracking:
					rep.TrackingOnly++
				default:
					rep.Untriggered++
				}
			}
		}
	}
	for i, out := range apps {
		app := c.Apps[i]
		rep.APKsScanned += out.VersionsScanned
		if out.Provider == "" {
			continue
		}
		if out.Config != nil {
			if out.Config.CellularUpload {
				rep.CellularUploadApps = append(rep.CellularUploadApps, app.Package)
			} else if out.Config.CellularDownload {
				rep.LeechModeApps = append(rep.LeechModeApps, app.Package)
			}
		}
		rep.PotentialApps[out.Provider]++
		rep.PotentialAPKs[out.Provider] += out.SignedVersions
		if out.Confirmed {
			rep.ConfirmedApps[out.Provider]++
			rep.ConfirmedAPKs[out.Provider] += out.SignedVersions
			rep.ConfirmedAppList = append(rep.ConfirmedAppList, ConfirmedApp{
				Package: app.Package, Provider: out.Provider, Downloads: app.Downloads,
			})
		}
	}
	return rep
}

// Pipeline runs the full detection flow over a corpus sequentially,
// checking ctx between items so a scan can be cancelled mid-corpus.
// It is the single-threaded reference the dispatch-backed
// ParallelPipeline must match byte for byte.
func Pipeline(ctx context.Context, c *corpus.Corpus, profiles []provider.Profile, seed int64) (*Report, error) {
	scanner := NewWebScanner(profiles)
	siteOut := make([]SiteOutcome, len(c.Sites))
	for i, site := range c.Sites {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		siteOut[i] = scanner.ScanSiteFull(site, seed)
	}
	appOut := make([]AppOutcome, len(c.Apps))
	for i, app := range c.Apps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		appOut[i] = ScanAppFull(app, profiles, seed)
	}
	return Reduce(c, siteOut, appOut), nil
}

// isRelayOnly matches TURN-style captures: DTLS records present but no
// STUN binding between peer pairs.
func isRelayOnly(pkts []netsim.Packet) bool {
	return len(capture.FindDTLS(pkts)) > 0 && len(capture.FindSTUN(pkts)) == 0
}

// isTrackingOnly matches WebRTC-for-tracking captures: STUN without any
// DTLS transport.
func isTrackingOnly(pkts []netsim.Packet) bool {
	return len(capture.FindSTUN(pkts)) > 0 && len(capture.FindDTLS(pkts)) == 0
}
