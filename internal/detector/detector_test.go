package detector

import (
	"context"
	"testing"

	"github.com/stealthy-peers/pdnsec/internal/corpus"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

func profiles() []provider.Profile { return provider.PublicProfiles() }

// runPipeline runs the sequential reference pipeline, failing the test
// on error.
func runPipeline(t *testing.T, c *corpus.Corpus, seed int64) *Report {
	t.Helper()
	rep, err := Pipeline(context.Background(), c, profiles(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestPipelineReproducesTableI(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 1, FillerSites: 200, FillerApps: 100})
	rep := runPipeline(t, c, 1)

	// Table I: potential / confirmed per provider.
	want := []struct {
		prov                string
		potSites, confSites int
		potApps, confApps   int
		potAPKs, confAPKs   int
	}{
		{"peer5", 60, 16, 31, 15, 548, 199},
		{"streamroot", 53, 1, 6, 3, 68, 53},
		{"viblast", 21, 0, 1, 0, 11, 0},
	}
	for _, w := range want {
		if got := rep.PotentialSites[w.prov]; got != w.potSites {
			t.Errorf("%s potential sites = %d, want %d", w.prov, got, w.potSites)
		}
		if got := rep.ConfirmedSites[w.prov]; got != w.confSites {
			t.Errorf("%s confirmed sites = %d, want %d", w.prov, got, w.confSites)
		}
		if got := rep.PotentialApps[w.prov]; got != w.potApps {
			t.Errorf("%s potential apps = %d, want %d", w.prov, got, w.potApps)
		}
		if got := rep.ConfirmedApps[w.prov]; got != w.confApps {
			t.Errorf("%s confirmed apps = %d, want %d", w.prov, got, w.confApps)
		}
		if got := rep.PotentialAPKs[w.prov]; got != w.potAPKs {
			t.Errorf("%s potential APKs = %d, want %d", w.prov, got, w.potAPKs)
		}
		if got := rep.ConfirmedAPKs[w.prov]; got != w.confAPKs {
			t.Errorf("%s confirmed APKs = %d, want %d", w.prov, got, w.confAPKs)
		}
	}
}

func TestPipelineReproducesPrivateLandscape(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 2, FillerSites: 200, FillerApps: 50})
	rep := runPipeline(t, c, 2)

	if rep.GenericWebRTCSites != 385 {
		t.Errorf("generic WebRTC sites = %d, want 385", rep.GenericWebRTCSites)
	}
	if rep.TopDynamicSites != 57 {
		t.Errorf("top dynamic sites = %d, want 57", rep.TopDynamicSites)
	}
	if rep.ConfirmedPrivate != 10 {
		t.Errorf("confirmed private = %d, want 10", rep.ConfirmedPrivate)
	}
	if rep.AdultTURN != 2 {
		t.Errorf("adult TURN = %d, want 2", rep.AdultTURN)
	}
	if rep.TrackingOnly != 3 {
		t.Errorf("tracking-only = %d, want 3", rep.TrackingOnly)
	}
	if rep.Untriggered != 42 {
		t.Errorf("untriggered = %d, want 42", rep.Untriggered)
	}
	if len(rep.ConfirmedPrivateList) != 10 {
		t.Fatalf("private list %d", len(rep.ConfirmedPrivateList))
	}
	for _, p := range rep.ConfirmedPrivateList {
		if p.Server == "" {
			t.Errorf("private site %s missing signaling server", p.Domain)
		}
	}
}

func TestKeyExtractionMatchesPaper(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 3, FillerSites: 50, FillerApps: 10})
	rep := runPipeline(t, c, 3)
	// §IV-B: 44 keys extractable by regex (40 valid + 4 expired);
	// obfuscated keys are not recoverable.
	if len(rep.ExtractedKeys) != 44 {
		t.Fatalf("extracted %d keys, want 44", len(rep.ExtractedKeys))
	}
	perProv := map[string]int{}
	for _, k := range rep.ExtractedKeys {
		perProv[k.Provider]++
	}
	if perProv["peer5"] != 40 || perProv["streamroot"] != 1 || perProv["viblast"] != 3 {
		t.Fatalf("per-provider extraction %v", perProv)
	}
}

func TestScanSiteRespectsDepthAndVideoTag(t *testing.T) {
	s := NewWebScanner(profiles())

	// No video tag on the landing page: not crawled.
	noVideo := &corpus.Site{Domain: "x", Pages: map[string]*corpus.Page{
		"/": {HasVideoTag: false, HTML: `<script src="https://api.peer5.com/peer5.js?id=k"></script>`},
	}}
	if s.ScanSite(noVideo).Potential() {
		t.Fatal("sites without a video tag must be skipped")
	}

	// Signature at depth 4: beyond the crawl budget.
	deep := &corpus.Site{Domain: "y", Pages: map[string]*corpus.Page{
		"/":  {HasVideoTag: true, HTML: "<video>", Links: []string{"/a"}},
		"/a": {HTML: "x", Links: []string{"/b"}},
		"/b": {HTML: "x", Links: []string{"/c"}},
		"/c": {HTML: "x", Links: []string{"/d"}},
		"/d": {HTML: `<script src="https://api.peer5.com/peer5.js?id=k"></script>`},
	}}
	if res := s.ScanSite(deep); res.Provider != "" {
		t.Fatalf("depth-4 signature should be missed, got %+v", res)
	}

	// Signature at depth 3: found.
	found := &corpus.Site{Domain: "z", Pages: map[string]*corpus.Page{
		"/":  {HasVideoTag: true, HTML: "<video>", Links: []string{"/a"}},
		"/a": {HTML: "x", Links: []string{"/b"}},
		"/b": {HTML: "x", Links: []string{"/c"}},
		"/c": {HTML: `<script src="https://api.peer5.com/peer5.js?id=k"></script>`},
	}}
	if res := s.ScanSite(found); res.Provider != "peer5" || res.MatchedPath != "/c" {
		t.Fatalf("depth-3 signature should be found, got %+v", res)
	}
}

func TestExtractKeysSkipsObfuscated(t *testing.T) {
	site := &corpus.Site{Domain: "ob", Pages: map[string]*corpus.Page{
		"/": {HasVideoTag: true, HTML: `<script src="https://api.peer5.com/peer5.js?id="+_0x101f38[_0x2c4aeb(0x234)]></script>`},
	}}
	if keys := ExtractKeys(site); len(keys) != 0 {
		t.Fatalf("obfuscated key extracted: %+v", keys)
	}
	site2 := &corpus.Site{Domain: "ok", Pages: map[string]*corpus.Page{
		"/": {HasVideoTag: true, HTML: `<script src="https://api.peer5.com/peer5.js?id=abc123"></script>`},
	}}
	keys := ExtractKeys(site2)
	if len(keys) != 1 || keys[0].Key != "abc123" {
		t.Fatalf("extraction failed: %+v", keys)
	}
}

func TestScanAPK(t *testing.T) {
	apk := corpus.APK{Namespaces: []string{"io.streamroot.dna.core"}}
	prov, ok := ScanAPK(apk, profiles())
	if !ok || prov != "streamroot" {
		t.Fatalf("namespace scan: %q %v", prov, ok)
	}
	apk2 := corpus.APK{Manifest: map[string]string{"com.peer5.ApiKey": "k"}}
	prov, ok = ScanAPK(apk2, profiles())
	if !ok || prov != "peer5" {
		t.Fatalf("manifest scan: %q %v", prov, ok)
	}
	apk3 := corpus.APK{Namespaces: []string{"androidx.core"}}
	if _, ok := ScanAPK(apk3, profiles()); ok {
		t.Fatal("plain APK flagged")
	}
}

func TestDeterministicPipeline(t *testing.T) {
	a := runPipeline(t, corpus.Generate(corpus.Params{Seed: 9, FillerSites: 50, FillerApps: 20}), 9)
	b := runPipeline(t, corpus.Generate(corpus.Params{Seed: 9, FillerSites: 50, FillerApps: 20}), 9)
	if a.SitesScanned != b.SitesScanned || a.PotentialSites["peer5"] != b.PotentialSites["peer5"] ||
		len(a.ExtractedKeys) != len(b.ExtractedKeys) {
		t.Fatal("pipeline not deterministic for equal seeds")
	}
}

func TestCellularConfigExtraction(t *testing.T) {
	c := corpus.Generate(corpus.Params{Seed: 11, FillerSites: 50, FillerApps: 20})
	rep := runPipeline(t, c, 11)
	// §IV-D: 3 popular apps allow cellular upload; the rest of the
	// Peer5 customers are in leech mode.
	if len(rep.CellularUploadApps) != 3 {
		t.Fatalf("cellular-upload apps = %v, want 3", rep.CellularUploadApps)
	}
	if len(rep.LeechModeApps) != 28 { // 31 peer5 apps - 3 cellular-upload
		t.Fatalf("leech-mode apps = %d, want 28", len(rep.LeechModeApps))
	}
}

func TestExtractAppConfigMissing(t *testing.T) {
	app := &corpus.App{Versions: []corpus.APK{{Manifest: map[string]string{"x": "y"}}}}
	if _, ok := ExtractAppConfig(app); ok {
		t.Fatal("config extracted from app without the variable")
	}
	bad := &corpus.App{Versions: []corpus.APK{{Manifest: map[string]string{"com.peer5.Config": "not-json"}}}}
	if _, ok := ExtractAppConfig(bad); ok {
		t.Fatal("malformed config should not parse")
	}
}
