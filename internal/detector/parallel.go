// This file holds the dispatch-backed detector: the same per-site and
// per-app scan functions as the sequential Pipeline, scheduled over
// the internal/dispatch engine and folded back in corpus order so
// Tables I-IV come out byte-identical at any worker count.

package detector

import (
	"context"
	"fmt"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/corpus"
	"github.com/stealthy-peers/pdnsec/internal/dispatch"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

// Options tunes the parallel detection pipeline.
type Options struct {
	// Workers sizes the worker pool. <=0 → GOMAXPROCS.
	Workers int
	// Checkpoint is a path for resumable scan state ("" disables).
	// Entries are keyed by seed, so a checkpoint from a different run
	// configuration is ignored rather than mixed in.
	Checkpoint string
	// RateLimit bounds per-domain scan pressure (zero Rate disables).
	// The synthetic corpus doesn't need politeness, but a real Tranco
	// sweep does.
	RateLimit dispatch.RateLimit
	// Metrics, when set, collects the scan's counters and latency
	// quantiles (shared across the site and app passes).
	Metrics *dispatch.Metrics
	// OnProgress is invoked after every settled job; it may be called
	// concurrently.
	OnProgress func(dispatch.Snapshot)
	// SimulateRTT adds one network round-trip's worth of latency per
	// fetched page (sites) or APK version (apps). The synthetic corpus
	// lives in memory, so this is how the engine's behavior under a
	// live crawl's I/O profile is studied and benchmarked; it does not
	// change any result.
	SimulateRTT time.Duration
	// Tracer, when set, records the scan's dispatch spans (run, per-job,
	// retries). The detector itself stays clock-free; timestamps come
	// from the tracer's own injected clock.
	Tracer *obs.Tracer
}

// simulateFetches blocks for roundTrips×rtt or until ctx is done,
// standing in for the network time a live crawl would spend.
func simulateFetches(ctx context.Context, rtt time.Duration, roundTrips int) error {
	if rtt <= 0 || roundTrips <= 0 {
		return nil
	}
	t := time.NewTimer(rtt * time.Duration(roundTrips))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ParallelPipeline runs the detection flow with the work-dispatch
// engine: every site and app becomes one job, executed by a worker
// pool with optional rate limiting and checkpoint/resume, and the
// positional results are reduced in corpus order. Output is
// byte-identical to Pipeline for any Workers value.
func ParallelPipeline(ctx context.Context, c *corpus.Corpus, profiles []provider.Profile, seed int64, opts Options) (*Report, error) {
	scanner := NewWebScanner(profiles)

	cfg := dispatch.Config{
		Workers:    opts.Workers,
		RateLimit:  opts.RateLimit,
		Metrics:    opts.Metrics,
		OnProgress: opts.OnProgress,
		Tracer:     opts.Tracer,
	}
	if opts.Metrics == nil {
		// Share one collector across both passes so a progress hook
		// sees the whole scan as a single job stream.
		cfg.Metrics = dispatch.NewMetrics()
	}
	if opts.Checkpoint != "" {
		ckpt, err := dispatch.OpenCheckpoint(opts.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("detector: %w", err)
		}
		defer ckpt.Close()
		cfg.Checkpoint = ckpt
	}

	siteJobs := make([]dispatch.Job[SiteOutcome], len(c.Sites))
	for i, site := range c.Sites {
		site := site
		siteJobs[i] = dispatch.Job[SiteOutcome]{
			Key:    fmt.Sprintf("site/%d/%s", seed, site.Domain),
			Domain: site.Domain,
			Do: func(ctx context.Context) (SiteOutcome, error) {
				out := scanner.ScanSiteFull(site, seed)
				// One round trip for the landing fetch plus one per
				// crawled page.
				if err := simulateFetches(ctx, opts.SimulateRTT, 1+out.Scan.PagesCrawled); err != nil {
					return SiteOutcome{}, err
				}
				return out, nil
			},
		}
	}
	siteOut, err := dispatch.New[SiteOutcome](cfg).Run(ctx, siteJobs)
	if err != nil {
		return nil, err
	}

	appJobs := make([]dispatch.Job[AppOutcome], len(c.Apps))
	for i, app := range c.Apps {
		app := app
		appJobs[i] = dispatch.Job[AppOutcome]{
			Key:    fmt.Sprintf("app/%d/%s", seed, app.Package),
			Domain: app.Package,
			Do: func(ctx context.Context) (AppOutcome, error) {
				out := ScanAppFull(app, profiles, seed)
				if err := simulateFetches(ctx, opts.SimulateRTT, out.VersionsScanned); err != nil {
					return AppOutcome{}, err
				}
				return out, nil
			},
		}
	}
	appOut, err := dispatch.New[AppOutcome](cfg).Run(ctx, appJobs)
	if err != nil {
		return nil, err
	}

	return Reduce(c, siteOut, appOut), nil
}
