package detector_test

import (
	"context"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/corpus"
	"github.com/stealthy-peers/pdnsec/internal/detector"
	"github.com/stealthy-peers/pdnsec/internal/dispatch"
	"github.com/stealthy-peers/pdnsec/internal/experiments"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

func renderTables(rep *detector.Report, c *corpus.Corpus) string {
	det := &experiments.DetectionResult{Report: rep, Corpus: c}
	return det.RenderTableI() + det.RenderTableII() + det.RenderTableIII() +
		det.RenderTableIV() + det.RenderResourceSquattingWild()
}

// TestParallelParity is the tentpole's contract: for multiple seeds
// and worker counts, the dispatch-backed pipeline produces a Report
// deeply equal to the sequential one, and Tables I-IV render
// byte-identically.
func TestParallelParity(t *testing.T) {
	ctx := context.Background()
	profiles := provider.PublicProfiles()
	for _, seed := range []int64{1, 2, 7} {
		c := corpus.Generate(corpus.Params{Seed: seed, FillerSites: 300, FillerApps: 120})
		seq, err := detector.Pipeline(ctx, c, profiles, seed)
		if err != nil {
			t.Fatal(err)
		}
		golden := renderTables(seq, c)
		for _, workers := range []int{1, 4, 16} {
			par, err := detector.ParallelPipeline(ctx, c, profiles, seed, detector.Options{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("seed %d workers %d: parallel Report differs from sequential", seed, workers)
			}
			if got := renderTables(par, c); got != golden {
				t.Errorf("seed %d workers %d: rendered tables not byte-identical", seed, workers)
			}
		}
	}
}

func TestParallelPipelineCheckpointResume(t *testing.T) {
	ctx := context.Background()
	profiles := provider.PublicProfiles()
	c := corpus.Generate(corpus.Params{Seed: 5, FillerSites: 100, FillerApps: 40})
	seq, err := detector.Pipeline(ctx, c, profiles, 5)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "scan.ckpt")
	m1 := dispatch.NewMetrics()
	first, err := detector.ParallelPipeline(ctx, c, profiles, 5, detector.Options{Workers: 8, Checkpoint: path, Metrics: m1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, first) {
		t.Fatal("checkpointed run differs from sequential")
	}
	if snap := m1.Snapshot(); snap.Resumed != 0 || snap.Done == 0 {
		t.Fatalf("first run metrics: %+v", snap)
	}

	// The re-run resumes every job from the checkpoint and still
	// reduces to the same report.
	m2 := dispatch.NewMetrics()
	second, err := detector.ParallelPipeline(ctx, c, profiles, 5, detector.Options{Workers: 8, Checkpoint: path, Metrics: m2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, second) {
		t.Fatal("resumed run differs from sequential")
	}
	snap := m2.Snapshot()
	if snap.Done != 0 || snap.Resumed != int64(len(c.Sites)+len(c.Apps)) {
		t.Fatalf("resume metrics: %+v (corpus %d sites %d apps)", snap, len(c.Sites), len(c.Apps))
	}

	// A different seed must not be satisfied by this checkpoint: its
	// keys are seed-scoped.
	m3 := dispatch.NewMetrics()
	if _, err := detector.ParallelPipeline(ctx, c, profiles, 6, detector.Options{Workers: 8, Checkpoint: path, Metrics: m3}); err != nil {
		t.Fatal(err)
	}
	if snap := m3.Snapshot(); snap.Resumed != 0 {
		t.Fatalf("seed-6 run resumed %d jobs from a seed-5 checkpoint", snap.Resumed)
	}
}

func TestParallelPipelineProgressAndCancellation(t *testing.T) {
	profiles := provider.PublicProfiles()
	c := corpus.Generate(corpus.Params{Seed: 3, FillerSites: 100, FillerApps: 40})

	var calls atomic.Int64
	_, err := detector.ParallelPipeline(context.Background(), c, profiles, 3, detector.Options{
		Workers:    4,
		OnProgress: func(dispatch.Snapshot) { calls.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(c.Sites) + len(c.Apps)); calls.Load() != want {
		t.Fatalf("progress calls = %d, want %d", calls.Load(), want)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := detector.ParallelPipeline(ctx, c, profiles, 3, detector.Options{Workers: 4}); err == nil {
		t.Fatal("cancelled parallel pipeline should fail")
	}

	// Sequential reference honors cancellation too.
	if _, err := detector.Pipeline(ctx, c, profiles, 3); err == nil {
		t.Fatal("cancelled sequential pipeline should fail")
	}
}

// TestParallelRateLimitedScanStillExact exercises the politeness path:
// a rate-limited scan is slower but loses nothing.
func TestParallelRateLimitedScanStillExact(t *testing.T) {
	ctx := context.Background()
	profiles := provider.PublicProfiles()
	c := corpus.Generate(corpus.Params{Seed: 4, FillerSites: 20, FillerApps: 10})
	seq, err := detector.Pipeline(ctx, c, profiles, 4)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	par, err := detector.ParallelPipeline(ctx, c, profiles, 4, detector.Options{
		Workers: 8,
		// Every corpus domain is unique, so a tight per-domain limit
		// must not slow the sweep down materially — this is the
		// "polite to each host, fast overall" property.
		RateLimit: dispatch.RateLimit{Rate: 50, Burst: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("rate-limited run differs from sequential")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("unique-domain scan should not serialize behind the limiter, took %v", elapsed)
	}
}
