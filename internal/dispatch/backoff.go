package dispatch

import (
	"context"
	"hash/fnv"
	"time"
)

// Backoff is the retry schedule: exponential growth with deterministic
// jitter. The jitter is derived from the job key and attempt number
// rather than a global RNG so that a re-run of the same workload waits
// the same amounts — scan runs stay reproducible end to end.
type Backoff struct {
	// Base is the first retry's delay. Default 50ms.
	Base time.Duration
	// Max caps the grown delay. Default 5s.
	Max time.Duration
	// Factor multiplies the delay each further attempt. Default 2.
	Factor float64
	// Jitter is the fraction of the delay that is randomized away
	// (0.5 → delays land in [0.5d, d]). Default 0.5.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.5
	}
	return b
}

// delay returns the wait before retry `attempt` (1 = first retry) of
// the job identified by key.
func (b Backoff) delay(key string, attempt int) time.Duration {
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{byte(attempt), byte(attempt >> 8)})
		// Scale into [1-Jitter, 1] of the computed delay.
		frac := float64(h.Sum64()%1000) / 1000
		d *= 1 - b.Jitter*frac
	}
	return time.Duration(d)
}

// sleep waits for d or until ctx is done, reporting which.
func sleep(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
