package dispatch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Checkpoint persists completed job results as append-only JSON lines
// so an interrupted scan can resume where it left off: on the next run
// the engine satisfies already-recorded jobs from the file instead of
// re-executing them. A partially written final line (crash mid-append)
// is tolerated and dropped on load.
type Checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	done map[string]json.RawMessage
}

type checkpointEntry struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// OpenCheckpoint loads any prior state at path and opens it for
// appending, creating the file if needed.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dispatch: open checkpoint: %w", err)
	}
	c := &Checkpoint{f: f, done: make(map[string]json.RawMessage)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		var e checkpointEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue // torn or corrupt line: redo that job
		}
		c.done[e.Key] = e.Result
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("dispatch: read checkpoint: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("dispatch: seek checkpoint: %w", err)
	}
	c.w = bufio.NewWriter(f)
	return c, nil
}

// Len reports how many completed jobs the checkpoint holds.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// lookup returns the recorded result for key, if any.
func (c *Checkpoint) lookup(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.done[key]
	return raw, ok
}

// record appends one completed job. The line is flushed to the OS
// immediately so a killed process loses at most the in-flight jobs.
func (c *Checkpoint) record(key string, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("dispatch: marshal checkpoint result for %s: %w", key, err)
	}
	line, err := json.Marshal(checkpointEntry{Key: key, Result: raw})
	if err != nil {
		return fmt.Errorf("dispatch: marshal checkpoint entry for %s: %w", key, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[key] = raw
	c.w.Write(line)
	c.w.WriteByte('\n')
	return c.w.Flush()
}

// Close flushes and closes the backing file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.w != nil {
		if err := c.w.Flush(); err != nil {
			c.f.Close()
			return err
		}
	}
	return c.f.Close()
}
