package dispatch

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

type scanRecord struct {
	Domain string `json:"domain"`
	Hits   int    `json:"hits"`
}

func checkpointJobs(n int, ran *atomic.Int64) []Job[scanRecord] {
	jobs := make([]Job[scanRecord], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[scanRecord]{
			Key: fmt.Sprintf("site-%03d", i),
			Do: func(context.Context) (scanRecord, error) {
				ran.Add(1)
				return scanRecord{Domain: fmt.Sprintf("d%03d.example", i), Hits: i}, nil
			},
		}
	}
	return jobs
}

func TestCheckpointResumeSkipsCompletedJobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	ctx := testCtx(t)

	var firstRan atomic.Int64
	ckpt, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	e := New[scanRecord](Config{Workers: 4, Checkpoint: ckpt})
	// First run completes only half the corpus.
	res1, err := e.Run(ctx, checkpointJobs(50, &firstRan)[:25])
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	if firstRan.Load() != 25 || len(res1) != 25 {
		t.Fatalf("first run: ran=%d res=%d", firstRan.Load(), len(res1))
	}

	// Second run over the full corpus resumes the 25 recorded jobs.
	ckpt2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt2.Close()
	if ckpt2.Len() != 25 {
		t.Fatalf("reloaded checkpoint holds %d entries, want 25", ckpt2.Len())
	}
	var secondRan atomic.Int64
	e2 := New[scanRecord](Config{Workers: 4, Checkpoint: ckpt2})
	res2, err := e2.Run(ctx, checkpointJobs(50, &secondRan))
	if err != nil {
		t.Fatal(err)
	}
	if secondRan.Load() != 25 {
		t.Fatalf("second run re-executed %d jobs, want 25", secondRan.Load())
	}
	for i, r := range res2 {
		want := scanRecord{Domain: fmt.Sprintf("d%03d.example", i), Hits: i}
		if r != want {
			t.Fatalf("res2[%d] = %+v, want %+v", i, r, want)
		}
	}
	snap := e2.Metrics().Snapshot()
	if snap.Resumed != 25 || snap.Done != 25 {
		t.Fatalf("resume metrics: %+v", snap)
	}
}

func TestCheckpointToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	ctx := testCtx(t)
	ckpt, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	e := New[scanRecord](Config{Workers: 2, Checkpoint: ckpt})
	if _, err := e.Run(ctx, checkpointJobs(10, &ran)); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop the final line in half.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := strings.TrimRight(string(data), "\n")
	cut := len(trimmed) - 20
	if err := os.WriteFile(path, []byte(trimmed[:cut]), 0o644); err != nil {
		t.Fatal(err)
	}

	ckpt2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt2.Close()
	if n := ckpt2.Len(); n != 9 {
		t.Fatalf("torn checkpoint loaded %d entries, want 9", n)
	}
	// The torn job re-runs; the nine intact ones resume.
	var ran2 atomic.Int64
	e2 := New[scanRecord](Config{Workers: 2, Checkpoint: ckpt2})
	res, err := e2.Run(ctx, checkpointJobs(10, &ran2))
	if err != nil {
		t.Fatal(err)
	}
	if ran2.Load() != 1 {
		t.Fatalf("re-ran %d jobs after torn tail, want 1", ran2.Load())
	}
	for i, r := range res {
		if r.Hits != i {
			t.Fatalf("res[%d] = %+v", i, r)
		}
	}
}

func TestCheckpointRejectsUnreadablePath(t *testing.T) {
	if _, err := OpenCheckpoint(filepath.Join(t.TempDir(), "no", "such", "dir", "x.ckpt")); err == nil {
		t.Fatal("expected error for unreachable checkpoint path")
	}
}
