// Package dispatch is the scan-orchestration engine behind the
// detector's corpus sweeps: a generic, context-aware work dispatcher
// with a sharded bounded job queue, a configurable worker pool,
// per-domain token-bucket rate limiting, retry with exponential
// backoff and deterministic jitter, checkpoint/resume of partial scan
// state, and progress/metrics hooks (queued / in-flight / done /
// failed counters plus p50/p99 job latency).
//
// The engine is deliberately workload-agnostic — a Job carries an
// arbitrary closure and a typed result — so the same scheduler that
// drives the §III-C website/APK scans can later run analyzer risk
// batteries or wild-measurement sweeps. Results come back positionally
// (results[i] belongs to jobs[i]) regardless of worker scheduling,
// which is what lets the detector's parallel pipeline reduce them in
// corpus order and emit byte-identical tables at any worker count.
package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/obs"
)

// Job is one schedulable unit of work producing an R.
type Job[R any] struct {
	// Key is the job's stable identity, used for checkpoint lookup and
	// jitter derivation. It must be unique within a Run.
	Key string
	// Domain groups jobs for rate limiting and queue-shard affinity
	// (e.g. the crawl target's host). Defaults to Key.
	Domain string
	// Do performs the work. It must honor ctx cancellation.
	Do func(ctx context.Context) (R, error)
}

// Config parameterizes an Engine.
type Config struct {
	// Workers is the worker-pool size. <=0 → GOMAXPROCS.
	Workers int
	// QueueShards is the number of queue shards. <=0 → 8.
	QueueShards int
	// ShardDepth bounds each shard's buffer. <=0 → 64.
	ShardDepth int
	// MaxAttempts is the per-job attempt budget. <=0 → 1 (no retry).
	MaxAttempts int
	// Backoff shapes the retry schedule (zero value = defaults).
	Backoff Backoff
	// RateLimit throttles per-domain attempts. Zero Rate disables.
	RateLimit RateLimit
	// Checkpoint, when set, records completed jobs and satisfies
	// already-recorded ones without re-executing. Results must
	// round-trip through encoding/json.
	Checkpoint *Checkpoint
	// Metrics, when set, is used instead of a fresh collector —
	// sharing one aggregates multiple engines into a single report.
	Metrics *Metrics
	// OnProgress, when set, is called with a fresh snapshot after each
	// job settles (done, failed, or resumed). It may be called
	// concurrently from multiple workers.
	OnProgress func(Snapshot)
	// Tracer, when set, records the run and each job's lifecycle
	// (queue→attempt→retry→settle) as spans and events. Nil disables
	// tracing at the cost of one branch per operation.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueShards <= 0 {
		c.QueueShards = 8
	}
	if c.ShardDepth <= 0 {
		c.ShardDepth = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	c.Backoff = c.Backoff.withDefaults()
	return c
}

// Engine schedules batches of jobs over its worker pool.
type Engine[R any] struct {
	cfg     Config
	metrics *Metrics
	limiter *rateLimiter
}

// New builds an engine from cfg.
func New[R any](cfg Config) *Engine[R] {
	cfg = cfg.withDefaults()
	e := &Engine[R]{cfg: cfg, metrics: cfg.Metrics}
	if e.metrics == nil {
		e.metrics = NewMetrics()
	}
	if cfg.RateLimit.Rate > 0 {
		e.limiter = newRateLimiter(cfg.RateLimit)
	}
	return e
}

// Metrics exposes the engine's collector (shared or internal).
func (e *Engine[R]) Metrics() *Metrics { return e.metrics }

// task is a queued job plus its slot in the result slice.
type task[R any] struct {
	idx int
	job Job[R]
}

// Run executes jobs and returns their results positionally:
// results[i] is jobs[i]'s output no matter which worker ran it or
// when. Jobs already present in the checkpoint are loaded, not re-run.
// On context cancellation Run returns the context's error; otherwise
// it returns the join of all per-job failures (nil if none). Partial
// results are always returned — failed slots hold R's zero value.
func (e *Engine[R]) Run(ctx context.Context, jobs []Job[R]) ([]R, error) {
	run := e.cfg.Tracer.Begin("dispatch_run", obs.A("jobs", len(jobs)), obs.A("workers", e.cfg.Workers))
	results := make([]R, len(jobs))
	errs := make([]error, len(jobs))
	q := newShardedQueue[task[R]](e.cfg.QueueShards, e.cfg.ShardDepth)

	// Feeder: satisfy checkpointed jobs inline, queue the rest with
	// backpressure from the bounded shards.
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		defer q.close()
		for i, job := range jobs {
			if e.cfg.Checkpoint != nil {
				if raw, ok := e.cfg.Checkpoint.lookup(job.Key); ok {
					if err := json.Unmarshal(raw, &results[i]); err == nil {
						e.metrics.addResumed(1)
						e.progress()
						continue
					}
				}
			}
			e.metrics.addQueued(1)
			if err := q.push(ctx, q.shardOf(e.domainOf(job)), task[R]{idx: i, job: job}); err != nil {
				return // context done; workers drain and exit
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := q.consumer(w)
			for {
				t, ok := c.next(ctx)
				if !ok {
					return
				}
				e.execute(ctx, t, results, errs)
			}
		}(w)
	}
	wg.Wait()
	<-feederDone

	snap := e.metrics.Snapshot()
	run.End(obs.A("done", snap.Done), obs.A("failed", snap.Failed), obs.A("resumed", snap.Resumed))
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, errors.Join(errs...)
}

func (e *Engine[R]) domainOf(job Job[R]) string {
	if job.Domain != "" {
		return job.Domain
	}
	return job.Key
}

// execute runs one job through rate limiting and the retry budget,
// writing its private slots in results/errs (index-disjoint with every
// other job, so no locking is needed).
func (e *Engine[R]) execute(ctx context.Context, t task[R], results []R, errs []error) {
	start := time.Now()
	e.metrics.jobStart(start.UnixNano())
	span := e.cfg.Tracer.Begin("dispatch_job", obs.A("key", t.job.Key))
	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= e.cfg.MaxAttempts; attempt++ {
		attempts = attempt
		if attempt > 1 {
			e.metrics.addRetry()
			e.cfg.Tracer.Event("dispatch_retry", obs.A("key", t.job.Key), obs.A("attempt", attempt))
			if err := sleep(ctx, e.cfg.Backoff.delay(t.job.Key, attempt-1)); err != nil {
				lastErr = err
				break
			}
		}
		if e.limiter != nil {
			if err := e.limiter.wait(ctx, e.domainOf(t.job)); err != nil {
				lastErr = err
				break
			}
		}
		r, err := t.job.Do(ctx)
		if err == nil {
			results[t.idx] = r
			if e.cfg.Checkpoint != nil {
				if cerr := e.cfg.Checkpoint.record(t.job.Key, r); cerr != nil {
					// The work itself succeeded — keep the result and
					// report the lost resumability through Run's error.
					errs[t.idx] = cerr
				}
			}
			end := time.Now()
			e.metrics.jobEnd(end.Sub(start), true, end.UnixNano())
			span.End(obs.A("ok", true), obs.A("attempts", attempts))
			e.progress()
			return
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	errs[t.idx] = fmt.Errorf("dispatch: job %q: %w", t.job.Key, lastErr)
	end := time.Now()
	e.metrics.jobEnd(end.Sub(start), false, end.UnixNano())
	span.End(obs.A("ok", false), obs.A("attempts", attempts))
	e.progress()
}

func (e *Engine[R]) progress() {
	if e.cfg.OnProgress != nil {
		e.cfg.OnProgress(e.metrics.Snapshot())
	}
}
