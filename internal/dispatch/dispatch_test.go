package dispatch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// squareJobs builds n jobs whose result is their index squared.
func squareJobs(n int, ran *atomic.Int64) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job-%04d", i),
			Do: func(context.Context) (int, error) {
				if ran != nil {
					ran.Add(1)
				}
				return i * i, nil
			},
		}
	}
	return jobs
}

func TestRunReturnsResultsPositionally(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		e := New[int](Config{Workers: workers, QueueShards: 4, ShardDepth: 2})
		res, err := e.Run(testCtx(t), squareJobs(300, nil))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range res {
			if r != i*i {
				t.Fatalf("workers=%d: res[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	e := New[string](Config{Workers: 8})
	res, err := e.Run(testCtx(t), nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: %v %v", res, err)
	}
	res, err = e.Run(testCtx(t), []Job[string]{{Key: "only", Do: func(context.Context) (string, error) { return "ok", nil }}})
	if err != nil || len(res) != 1 || res[0] != "ok" {
		t.Fatalf("single run: %v %v", res, err)
	}
}

func TestRetryWithBackoffEventuallySucceeds(t *testing.T) {
	var attempts atomic.Int64
	e := New[string](Config{
		Workers:     2,
		MaxAttempts: 4,
		Backoff:     Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	job := Job[string]{Key: "flaky", Do: func(context.Context) (string, error) {
		if attempts.Add(1) < 3 {
			return "", errors.New("transient")
		}
		return "recovered", nil
	}}
	res, err := e.Run(testCtx(t), []Job[string]{job})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "recovered" || attempts.Load() != 3 {
		t.Fatalf("res=%q attempts=%d", res[0], attempts.Load())
	}
	snap := e.Metrics().Snapshot()
	if snap.Retries != 2 || snap.Done != 1 || snap.Failed != 0 {
		t.Fatalf("metrics after retries: %+v", snap)
	}
}

func TestExhaustedAttemptsReportPerJobError(t *testing.T) {
	var attempts atomic.Int64
	e := New[int](Config{
		Workers:     3,
		MaxAttempts: 3,
		Backoff:     Backoff{Base: time.Microsecond, Max: time.Microsecond},
	})
	jobs := []Job[int]{
		{Key: "good", Do: func(context.Context) (int, error) { return 7, nil }},
		{Key: "doomed", Do: func(context.Context) (int, error) {
			attempts.Add(1)
			return 0, errors.New("permanent failure")
		}},
	}
	res, err := e.Run(testCtx(t), jobs)
	if err == nil || !strings.Contains(err.Error(), `job "doomed"`) || !strings.Contains(err.Error(), "permanent failure") {
		t.Fatalf("want doomed-job error, got %v", err)
	}
	if res[0] != 7 || res[1] != 0 {
		t.Fatalf("partial results wrong: %v", res)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}
	snap := e.Metrics().Snapshot()
	if snap.Done != 1 || snap.Failed != 1 || snap.Retries != 2 {
		t.Fatalf("metrics: %+v", snap)
	}
}

func TestCancellationStopsTheRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	jobs := make([]Job[int], 500)
	for i := range jobs {
		jobs[i] = Job[int]{Key: fmt.Sprintf("slow-%d", i), Do: func(ctx context.Context) (int, error) {
			if started.Add(1) == 4 {
				cancel()
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(5 * time.Millisecond):
				return 1, nil
			}
		}}
	}
	e := New[int](Config{Workers: 4, ShardDepth: 1})
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = e.Run(ctx, jobs)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 500 {
		t.Fatalf("cancellation should stop the sweep early, ran %d", n)
	}
}

func TestPerDomainRateLimit(t *testing.T) {
	// 5 jobs on one domain at 200/s with burst 1: the run must take at
	// least 4 inter-token gaps of 5ms.
	e := New[int](Config{
		Workers:   8,
		RateLimit: RateLimit{Rate: 200, Burst: 1},
	})
	jobs := make([]Job[int], 5)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key:    fmt.Sprintf("hit-%d", i),
			Domain: "one.example",
			Do:     func(context.Context) (int, error) { return 1, nil },
		}
	}
	start := time.Now()
	if _, err := e.Run(testCtx(t), jobs); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Fatalf("rate limit not applied: 5 jobs on one domain finished in %v", elapsed)
	}

	// The same load spread over distinct domains is not throttled.
	for i := range jobs {
		jobs[i].Key = fmt.Sprintf("spread-%d", i)
		jobs[i].Domain = fmt.Sprintf("host-%d.example", i)
	}
	start = time.Now()
	if _, err := e.Run(testCtx(t), jobs); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Millisecond {
		t.Fatalf("distinct domains should not queue behind each other, took %v", elapsed)
	}
}

func TestSharedMetricsAggregateAcrossEngines(t *testing.T) {
	m := NewMetrics()
	var ran atomic.Int64
	for range 2 {
		e := New[int](Config{Workers: 4, Metrics: m})
		if _, err := e.Run(testCtx(t), squareJobs(50, &ran)); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	if snap.Done != 100 || snap.Queued != 100 || snap.InFlight != 0 {
		t.Fatalf("shared metrics: %+v", snap)
	}
	if snap.P50 < 0 || snap.P99 < snap.P50 {
		t.Fatalf("quantiles inconsistent: %+v", snap)
	}
}

func TestOnProgressSeesEveryJob(t *testing.T) {
	var calls atomic.Int64
	var last atomic.Int64
	e := New[int](Config{
		Workers: 4,
		OnProgress: func(s Snapshot) {
			calls.Add(1)
			last.Store(s.Done)
		},
	})
	if _, err := e.Run(testCtx(t), squareJobs(40, nil)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 40 {
		t.Fatalf("progress calls = %d, want 40", calls.Load())
	}
	if last.Load() != 40 {
		t.Fatalf("final snapshot saw done=%d, want 40", last.Load())
	}
}

func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0.5}.withDefaults()
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := b.delay("some-job", attempt)
		d2 := b.delay("some-job", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: jitter not deterministic (%v vs %v)", attempt, d1, d2)
		}
		if d1 <= 0 || d1 > 80*time.Millisecond {
			t.Fatalf("attempt %d: delay %v out of bounds", attempt, d1)
		}
	}
	if b.delay("job-a", 1) == b.delay("job-b", 1) {
		t.Fatal("different keys should jitter differently")
	}
}

func TestQueueShardAffinity(t *testing.T) {
	q := newShardedQueue[int](8, 4)
	if a, b := q.shardOf("cdn.example"), q.shardOf("cdn.example"); a != b {
		t.Fatal("shardOf not stable")
	}
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[q.shardOf(fmt.Sprintf("host-%d", i))] = true
	}
	if len(seen) < 4 {
		t.Fatalf("64 domains landed on only %d shards", len(seen))
	}
}

func TestLatencyHistogramQuantiles(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 99; i++ {
		m.Latency().Observe(time.Millisecond.Nanoseconds())
	}
	m.Latency().Observe(time.Second.Nanoseconds())
	p50, p99 := m.Quantile(0.50), m.Quantile(0.99)
	if p50 < 800*time.Microsecond || p50 > 1200*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	if p99 < 800*time.Microsecond || p99 > 1200*time.Microsecond {
		t.Fatalf("p99 = %v, want ~1ms", p99)
	}
	if p100 := m.Quantile(1); p100 < 800*time.Millisecond {
		t.Fatalf("max quantile = %v, want ~1s", p100)
	}
}
