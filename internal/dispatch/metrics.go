package dispatch

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/obs"
)

// Metrics collects a dispatch run's counters and job-latency
// distribution (an obs.Histogram — the log-scale layout that used to
// live here, now shared repo-wide). All methods are safe for concurrent
// use; a single Metrics may be shared across engines to aggregate
// phases of one logical scan (the detector shares one across its site
// and app passes).
type Metrics struct {
	queued   atomic.Int64
	resumed  atomic.Int64
	inflight atomic.Int64
	done     atomic.Int64
	failed   atomic.Int64
	retries  atomic.Int64

	lat *obs.Histogram

	// startNS/endNS bracket the observed run for throughput: first
	// job start to latest job end, wall-clock UnixNano.
	startNS atomic.Int64
	endNS   atomic.Int64
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics { return &Metrics{lat: obs.NewHistogram()} }

// Snapshot is a point-in-time view of a run's progress.
type Snapshot struct {
	Queued     int64 // jobs accepted into the queue
	Resumed    int64 // jobs satisfied from the checkpoint
	InFlight   int64 // jobs currently executing
	Done       int64 // jobs completed successfully
	Failed     int64 // jobs that exhausted their attempts
	Retries    int64 // extra attempts beyond each job's first
	P50        time.Duration
	P90        time.Duration
	P99        time.Duration
	Max        time.Duration // exact worst-case job latency
	Throughput float64       // settled jobs per second of observed run time
}

// String renders the snapshot as a one-line progress report.
func (s Snapshot) String() string {
	return fmt.Sprintf("queued=%d resumed=%d inflight=%d done=%d failed=%d retries=%d p50=%v p90=%v p99=%v max=%v jobs/s=%.1f",
		s.Queued, s.Resumed, s.InFlight, s.Done, s.Failed, s.Retries, s.P50, s.P90, s.P99, s.Max, s.Throughput)
}

// Snapshot captures the current counters, latency quantiles, and
// throughput.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Queued:   m.queued.Load(),
		Resumed:  m.resumed.Load(),
		InFlight: m.inflight.Load(),
		Done:     m.done.Load(),
		Failed:   m.failed.Load(),
		Retries:  m.retries.Load(),
		P50:      m.Quantile(0.50),
		P90:      m.Quantile(0.90),
		P99:      m.Quantile(0.99),
		Max:      time.Duration(m.lat.Max()),
	}
	if start, end := m.startNS.Load(), m.endNS.Load(); start != 0 && end > start {
		s.Throughput = float64(s.Done+s.Failed) / (float64(end-start) / float64(time.Second))
	}
	return s
}

// Quantile returns the q-th job-latency quantile (0 < q <= 1) from the
// log-scale histogram; zero when nothing has completed.
func (m *Metrics) Quantile(q float64) time.Duration {
	return time.Duration(m.lat.Quantile(q))
}

// Latency exposes the underlying histogram so callers can register it
// in an obs.Registry without double-recording.
func (m *Metrics) Latency() *obs.Histogram { return m.lat }

func (m *Metrics) addQueued(n int64)  { m.queued.Add(n) }
func (m *Metrics) addResumed(n int64) { m.resumed.Add(n) }
func (m *Metrics) addRetry()          { m.retries.Add(1) }

func (m *Metrics) jobStart(nowNS int64) {
	m.inflight.Add(1)
	m.startNS.CompareAndSwap(0, nowNS)
}

func (m *Metrics) jobEnd(d time.Duration, ok bool, nowNS int64) {
	m.inflight.Add(-1)
	if ok {
		m.done.Add(1)
	} else {
		m.failed.Add(1)
	}
	m.lat.Observe(d.Nanoseconds())
	for {
		cur := m.endNS.Load()
		if nowNS <= cur || m.endNS.CompareAndSwap(cur, nowNS) {
			return
		}
	}
}
