package dispatch

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// latSubBits gives each power-of-two latency octave 2^latSubBits
// sub-buckets, bounding the quantile error at ~1/2^latSubBits without
// any locking on the record path.
const latSubBits = 3

// latBuckets covers durations from 1ns to beyond an hour.
const latBuckets = 64 << latSubBits

// Metrics collects a dispatch run's counters and job-latency
// distribution. All methods are safe for concurrent use; a single
// Metrics may be shared across engines to aggregate phases of one
// logical scan (the detector shares one across its site and app
// passes).
type Metrics struct {
	queued   atomic.Int64
	resumed  atomic.Int64
	inflight atomic.Int64
	done     atomic.Int64
	failed   atomic.Int64
	retries  atomic.Int64

	lat      [latBuckets]atomic.Int64
	latCount atomic.Int64
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics { return &Metrics{} }

// Snapshot is a point-in-time view of a run's progress.
type Snapshot struct {
	Queued   int64 // jobs accepted into the queue
	Resumed  int64 // jobs satisfied from the checkpoint
	InFlight int64 // jobs currently executing
	Done     int64 // jobs completed successfully
	Failed   int64 // jobs that exhausted their attempts
	Retries  int64 // extra attempts beyond each job's first
	P50      time.Duration
	P99      time.Duration
}

// String renders the snapshot as a one-line progress report.
func (s Snapshot) String() string {
	return fmt.Sprintf("queued=%d resumed=%d inflight=%d done=%d failed=%d retries=%d p50=%v p99=%v",
		s.Queued, s.Resumed, s.InFlight, s.Done, s.Failed, s.Retries, s.P50, s.P99)
}

// Snapshot captures the current counters and latency quantiles.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Queued:   m.queued.Load(),
		Resumed:  m.resumed.Load(),
		InFlight: m.inflight.Load(),
		Done:     m.done.Load(),
		Failed:   m.failed.Load(),
		Retries:  m.retries.Load(),
		P50:      m.Quantile(0.50),
		P99:      m.Quantile(0.99),
	}
}

// Quantile returns the q-th job-latency quantile (0 < q <= 1) from the
// log-scale histogram; zero when nothing has completed.
func (m *Metrics) Quantile(q float64) time.Duration {
	total := m.latCount.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < latBuckets; i++ {
		seen += m.lat[i].Load()
		if seen >= target {
			return latValue(i)
		}
	}
	return latValue(latBuckets - 1)
}

func (m *Metrics) addQueued(n int64)  { m.queued.Add(n) }
func (m *Metrics) addResumed(n int64) { m.resumed.Add(n) }
func (m *Metrics) addRetry()          { m.retries.Add(1) }
func (m *Metrics) jobStart()          { m.inflight.Add(1) }

func (m *Metrics) jobEnd(d time.Duration, ok bool) {
	m.inflight.Add(-1)
	if ok {
		m.done.Add(1)
	} else {
		m.failed.Add(1)
	}
	m.observe(d)
}

func (m *Metrics) observe(d time.Duration) {
	m.lat[latIndex(uint64(d.Nanoseconds()))].Add(1)
	m.latCount.Add(1)
}

// latIndex maps a nanosecond duration to its histogram bucket:
// buckets are exact below 2^latSubBits and geometric above, with
// 2^latSubBits sub-buckets per octave.
func latIndex(ns uint64) int {
	if ns < 1<<latSubBits {
		return int(ns)
	}
	e := bits.Len64(ns) - 1
	sub := (ns >> uint(e-latSubBits)) & (1<<latSubBits - 1)
	idx := (e-latSubBits+1)<<latSubBits | int(sub)
	if idx >= latBuckets {
		idx = latBuckets - 1
	}
	return idx
}

// latValue returns a bucket's representative (midpoint) duration.
func latValue(idx int) time.Duration {
	if idx < 1<<latSubBits {
		return time.Duration(idx)
	}
	e := idx>>latSubBits + latSubBits - 1
	sub := uint64(idx & (1<<latSubBits - 1))
	width := uint64(1) << uint(e-latSubBits)
	base := uint64(1)<<uint(e) | sub*width
	return time.Duration(base + width/2)
}
