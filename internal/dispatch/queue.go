package dispatch

import (
	"context"
	"hash/fnv"
	"time"
)

// shardedQueue is a bounded multi-producer multi-consumer queue split
// into independently buffered shards. Producers hash jobs to a shard,
// giving same-domain jobs natural affinity; consumers drain their own
// shard first and steal from the others when it runs dry, so a slow
// shard cannot idle the pool.
type shardedQueue[T any] struct {
	shards []chan T
}

func newShardedQueue[T any](shards, depth int) *shardedQueue[T] {
	q := &shardedQueue[T]{shards: make([]chan T, shards)}
	for i := range q.shards {
		q.shards[i] = make(chan T, depth)
	}
	return q
}

// shardOf maps a key to its home shard.
func (q *shardedQueue[T]) shardOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % len(q.shards)
}

// push blocks while the target shard is full (backpressure on the
// producer) and fails only when ctx is done.
func (q *shardedQueue[T]) push(ctx context.Context, shard int, v T) error {
	select {
	case q.shards[shard] <- v:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close marks the queue complete; consumers drain the remaining items.
func (q *shardedQueue[T]) close() {
	for _, ch := range q.shards {
		close(ch)
	}
}

// consumer is one worker's view of the queue: it remembers which
// shards it has seen closed so the steal scan and the blocking wait
// never spin on a dead channel.
type consumer[T any] struct {
	q      *shardedQueue[T]
	home   int
	closed []bool
	open   int
}

func (q *shardedQueue[T]) consumer(home int) *consumer[T] {
	return &consumer[T]{q: q, home: home % len(q.shards), closed: make([]bool, len(q.shards)), open: len(q.shards)}
}

// next returns the next item, preferring the consumer's home shard and
// stealing round-robin otherwise. It blocks until an item arrives,
// every shard is closed and drained, or ctx is done; ok=false means no
// more work for this consumer.
func (c *consumer[T]) next(ctx context.Context) (v T, ok bool) {
	n := len(c.q.shards)
	for {
		for i := 0; i < n; i++ {
			s := (c.home + i) % n
			if c.closed[s] {
				continue
			}
			select {
			case v, alive := <-c.q.shards[s]:
				if alive {
					return v, true
				}
				c.closed[s] = true
				c.open--
			default:
			}
		}
		if c.open == 0 {
			return v, false
		}
		// Every open shard was momentarily empty: block on the first
		// open shard from home, re-scanning steal targets on a short
		// timer so work appearing elsewhere is picked up promptly.
		block := c.home
		for c.closed[block] {
			block = (block + 1) % n
		}
		timer := time.NewTimer(200 * time.Microsecond)
		select {
		case v, alive := <-c.q.shards[block]:
			timer.Stop()
			if alive {
				return v, true
			}
			c.closed[block] = true
			c.open--
		case <-ctx.Done():
			timer.Stop()
			return v, false
		case <-timer.C:
		}
	}
}
