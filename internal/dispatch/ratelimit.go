package dispatch

import (
	"context"
	"sync"
	"time"
)

// RateLimit configures per-domain token buckets. Every job names a
// Domain (the crawl target's host, a provider API, ...) and the engine
// draws one token from that domain's bucket before each attempt, so a
// thousand-worker pool still touches any single domain at a polite,
// configured pace.
type RateLimit struct {
	// Rate is the sustained jobs/second allowed per domain.
	// Zero disables rate limiting.
	Rate float64
	// Burst is the bucket capacity — how many jobs may hit a cold
	// domain back to back. Default max(Rate, 1).
	Burst float64
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter holds the per-domain buckets. Reservation runs under one
// mutex (cheap: a map lookup and a few float ops); the waiting itself
// happens outside the lock.
type rateLimiter struct {
	cfg RateLimit
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

func newRateLimiter(cfg RateLimit) *rateLimiter {
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &rateLimiter{cfg: cfg, now: time.Now, buckets: make(map[string]*tokenBucket)}
}

// reserve draws one token from domain's bucket, going negative if none
// is available, and returns how long the caller must wait before the
// reservation becomes valid (0 = proceed now).
func (l *rateLimiter) reserve(domain string) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[domain]
	if b == nil {
		b = &tokenBucket{tokens: l.cfg.Burst, last: now}
		l.buckets[domain] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.cfg.Rate
	if b.tokens > l.cfg.Burst {
		b.tokens = l.cfg.Burst
	}
	b.last = now
	b.tokens--
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / l.cfg.Rate * float64(time.Second))
}

// wait blocks until domain's next token is available or ctx is done.
func (l *rateLimiter) wait(ctx context.Context, domain string) error {
	d := l.reserve(domain)
	if d <= 0 {
		return nil
	}
	return sleep(ctx, d)
}
