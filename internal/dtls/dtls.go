// Package dtls implements the DTLS-like secure transport that carries
// peer-to-peer video data in the pdnsec testbed: an authenticated
// Diffie-Hellman handshake bound to certificate fingerprints (as WebRTC
// binds DTLS certificates to SDP fingerprints), followed by an AES-GCM
// record layer.
//
// Fidelity notes relative to the paper. (1) Peer traffic really is
// encrypted and integrity-protected in transit — the paper stresses that
// PDN's channels are protected, which is why its pollution attack
// poisons the content *before* it enters the channel rather than on the
// wire. (2) Record headers are observable plaintext: the first byte
// distinguishes handshake (0x16) from application data (0x17) records,
// which is exactly the signal the paper's dynamic detector uses to
// confirm "a DTLS connection between known candidate peer pairs".
// (3) Encryption work is metered via an optional hook so the resource
// monitor can attribute CPU cost to crypto, which the paper identifies
// as the main source of PDN's +15% CPU overhead.
package dtls

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Record content types, matching real (D)TLS code points.
const (
	ContentHandshake byte = 0x16
	ContentAppData   byte = 0x17
)

// recordVersion is the DTLS 1.2 wire version.
const recordVersion uint16 = 0xfefd

// maxRecord bounds a single record's plaintext size. Segments larger
// than this are sent as multiple records by Conn.Send.
const maxRecord = 1 << 20

// Errors returned by the handshake and record layer.
var (
	ErrFingerprintMismatch = errors.New("dtls: peer certificate fingerprint mismatch")
	ErrBadSignature        = errors.New("dtls: invalid handshake signature")
	ErrRecordTooLarge      = errors.New("dtls: record exceeds size limit")
	ErrDecrypt             = errors.New("dtls: record authentication failed")
)

// Identity is a peer's long-lived "certificate": an Ed25519 keypair whose
// public-key hash is the fingerprint advertised through signaling.
type Identity struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewIdentity generates a fresh identity.
func NewIdentity() (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("dtls: generate identity: %w", err)
	}
	return &Identity{pub: pub, priv: priv}, nil
}

// Fingerprint returns the hex SHA-256 of the identity's public key, the
// value a peer publishes in its (simulated) SDP.
func (id *Identity) Fingerprint() string {
	sum := sha256.Sum256(id.pub)
	return hex.EncodeToString(sum[:])
}

// Config parameterizes a handshake.
type Config struct {
	// Identity is this side's certificate. Required.
	Identity *Identity
	// ExpectedPeerFingerprint, when non-empty, is verified against the
	// peer's certificate, as WebRTC verifies the SDP fingerprint. An
	// empty value skips verification (the weaker deployments the paper
	// describes).
	ExpectedPeerFingerprint string
	// OnCrypto, when set, is called with the number of plaintext bytes
	// encrypted or decrypted; the resource monitor uses it to attribute
	// CPU cost.
	OnCrypto func(n int)
	// OnEncrypt and OnDecrypt, when set, are called per direction in
	// addition to OnCrypto; the cost model prices encryption and
	// decryption differently.
	OnEncrypt func(n int)
	OnDecrypt func(n int)
}

// handshakeMsg is the wire form of ClientHello/ServerHello.
// Layout: random(32) | dhPub(32) | certPub(32) | sig(64).
const handshakeLen = 32 + 32 + 32 + 64

// Conn is an established secure channel. It is message-oriented: one
// Send corresponds to one Recv on the peer (possibly split into several
// records internally). Conn is safe for one concurrent sender and one
// concurrent receiver.
type Conn struct {
	raw       net.Conn
	sendAEAD  cipher.AEAD
	recvAEAD  cipher.AEAD
	onCrypto  func(int)
	onEncrypt func(int)
	onDecrypt func(int)

	peerFingerprint string

	sendMu  sync.Mutex
	sendSeq uint64
	recvMu  sync.Mutex
	recvSeq uint64
	pending []byte // reassembly buffer for multi-record messages
}

// Client performs the initiating side of the handshake over raw.
func Client(raw net.Conn, cfg Config) (*Conn, error) { return handshake(raw, cfg, true) }

// Server performs the responding side of the handshake over raw.
func Server(raw net.Conn, cfg Config) (*Conn, error) { return handshake(raw, cfg, false) }

func handshake(raw net.Conn, cfg Config, isClient bool) (*Conn, error) {
	if cfg.Identity == nil {
		return nil, errors.New("dtls: config requires an Identity")
	}
	dhPriv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("dtls: ecdh keygen: %w", err)
	}
	var random [32]byte
	if _, err := rand.Read(random[:]); err != nil {
		return nil, fmt.Errorf("dtls: rand: %w", err)
	}

	local := buildHello(random, dhPriv.PublicKey().Bytes(), cfg.Identity)

	var remote []byte
	if isClient {
		if err := writeRecord(raw, ContentHandshake, 0, local); err != nil {
			return nil, fmt.Errorf("dtls: send hello: %w", err)
		}
		_, remote, err = readRecord(raw)
	} else {
		_, remote, err = readRecord(raw)
		if err == nil {
			err = writeRecord(raw, ContentHandshake, 0, local)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("dtls: handshake exchange: %w", err)
	}

	peerRandom, peerDH, peerCert, err := parseHello(remote)
	if err != nil {
		return nil, err
	}
	if cfg.ExpectedPeerFingerprint != "" {
		sum := sha256.Sum256(peerCert)
		if hex.EncodeToString(sum[:]) != cfg.ExpectedPeerFingerprint {
			return nil, ErrFingerprintMismatch
		}
	}

	peerPub, err := ecdh.X25519().NewPublicKey(peerDH)
	if err != nil {
		return nil, fmt.Errorf("dtls: peer DH key: %w", err)
	}
	shared, err := dhPriv.ECDH(peerPub)
	if err != nil {
		return nil, fmt.Errorf("dtls: ECDH: %w", err)
	}

	// Key schedule: bind both randoms; derive one key per direction.
	clientRandom, serverRandom := random, peerRandom
	if !isClient {
		clientRandom, serverRandom = peerRandom, random
	}
	c2s := deriveKey(shared, clientRandom[:], serverRandom[:], "c2s")
	s2c := deriveKey(shared, clientRandom[:], serverRandom[:], "s2c")

	sendKey, recvKey := c2s, s2c
	if !isClient {
		sendKey, recvKey = s2c, c2s
	}
	sendAEAD, err := newAEAD(sendKey)
	if err != nil {
		return nil, err
	}
	recvAEAD, err := newAEAD(recvKey)
	if err != nil {
		return nil, err
	}

	fp := sha256.Sum256(peerCert)
	return &Conn{
		raw:             raw,
		sendAEAD:        sendAEAD,
		recvAEAD:        recvAEAD,
		onCrypto:        cfg.OnCrypto,
		onEncrypt:       cfg.OnEncrypt,
		onDecrypt:       cfg.OnDecrypt,
		peerFingerprint: hex.EncodeToString(fp[:]),
	}, nil
}

func buildHello(random [32]byte, dhPub []byte, id *Identity) []byte {
	msg := make([]byte, 0, handshakeLen)
	msg = append(msg, random[:]...)
	msg = append(msg, dhPub...)
	msg = append(msg, id.pub...)
	sig := ed25519.Sign(id.priv, msg) // binds cert to DH share and random
	return append(msg, sig...)
}

func parseHello(msg []byte) (random [32]byte, dhPub, certPub []byte, err error) {
	if len(msg) != handshakeLen {
		return random, nil, nil, fmt.Errorf("dtls: hello length %d, want %d", len(msg), handshakeLen)
	}
	copy(random[:], msg[0:32])
	dhPub = msg[32:64]
	certPub = msg[64:96]
	sig := msg[96:160]
	if !ed25519.Verify(ed25519.PublicKey(certPub), msg[:96], sig) {
		return random, nil, nil, ErrBadSignature
	}
	return random, dhPub, certPub, nil
}

func deriveKey(shared, clientRandom, serverRandom []byte, label string) []byte {
	h := sha256.New()
	h.Write(shared)
	h.Write(clientRandom)
	h.Write(serverRandom)
	h.Write([]byte(label))
	return h.Sum(nil)[:16] // AES-128
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("dtls: aes: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("dtls: gcm: %w", err)
	}
	return aead, nil
}

// PeerFingerprint returns the hex SHA-256 fingerprint of the peer's
// certificate observed during the handshake.
func (c *Conn) PeerFingerprint() string { return c.peerFingerprint }

// record header: type(1) | version(2) | seq(8) | flags(1) | len(4).
// flags bit0 marks the final record of a message.
const recordHeaderLen = 16

func writeRecord(w io.Writer, typ byte, flags byte, payload []byte) error {
	return writeRecordSeq(w, typ, flags, 0, payload)
}

func writeRecordSeq(w io.Writer, typ byte, flags byte, seq uint64, payload []byte) error {
	if len(payload) > maxRecord+64 {
		return ErrRecordTooLarge
	}
	hdr := make([]byte, recordHeaderLen)
	hdr[0] = typ
	binary.BigEndian.PutUint16(hdr[1:3], recordVersion)
	binary.BigEndian.PutUint64(hdr[3:11], seq)
	hdr[11] = flags
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readRecord(r io.Reader) (hdr [recordHeaderLen]byte, payload []byte, err error) {
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return hdr, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > maxRecord+64 {
		return hdr, nil, ErrRecordTooLarge
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return hdr, nil, err
	}
	return hdr, payload, nil
}

// Send encrypts and transmits one message. Large messages are split into
// maxRecord-sized records and reassembled by the peer's Recv.
func (c *Conn) Send(msg []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	rest := msg
	for {
		chunk := rest
		final := byte(1)
		if len(chunk) > maxRecord {
			chunk, rest = chunk[:maxRecord], rest[maxRecord:]
			final = 0
		} else {
			rest = nil
		}
		var nonce [12]byte
		binary.BigEndian.PutUint64(nonce[4:], c.sendSeq)
		sealed := c.sendAEAD.Seal(nil, nonce[:], chunk, nil)
		if c.onCrypto != nil {
			c.onCrypto(len(chunk))
		}
		if c.onEncrypt != nil {
			c.onEncrypt(len(chunk))
		}
		if err := writeRecordSeq(c.raw, ContentAppData, final, c.sendSeq, sealed); err != nil {
			return fmt.Errorf("dtls: send: %w", err)
		}
		c.sendSeq++
		if final == 1 {
			return nil
		}
	}
}

// Recv reads and decrypts the next message.
func (c *Conn) Recv() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	var out []byte
	if len(c.pending) > 0 {
		out = c.pending
		c.pending = nil
	}
	for {
		hdr, sealed, err := readRecord(c.raw)
		if err != nil {
			return nil, err
		}
		if hdr[0] != ContentAppData {
			return nil, fmt.Errorf("dtls: unexpected record type 0x%02x", hdr[0])
		}
		seq := binary.BigEndian.Uint64(hdr[3:11])
		if seq != c.recvSeq {
			return nil, fmt.Errorf("dtls: record sequence %d, want %d", seq, c.recvSeq)
		}
		var nonce [12]byte
		binary.BigEndian.PutUint64(nonce[4:], seq)
		plain, err := c.recvAEAD.Open(nil, nonce[:], sealed, nil)
		if err != nil {
			return nil, ErrDecrypt
		}
		if c.onCrypto != nil {
			c.onCrypto(len(plain))
		}
		if c.onDecrypt != nil {
			c.onDecrypt(len(plain))
		}
		c.recvSeq++
		out = append(out, plain...)
		if hdr[11]&1 == 1 {
			return out, nil
		}
	}
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.raw.Close() }
