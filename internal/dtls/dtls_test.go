package dtls

import (
	"bytes"
	"net"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// pipePair returns an in-memory full-duplex conn pair.
func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

func mustIdentity(t *testing.T) *Identity {
	t.Helper()
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// connect runs a full handshake over a pipe and returns both conns.
func connect(t *testing.T, ccfg, scfg Config) (*Conn, *Conn) {
	t.Helper()
	a, b := pipePair()
	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := Server(b, scfg)
		ch <- res{c, err}
	}()
	client, err := Client(a, ccfg)
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("server handshake: %v", r.err)
	}
	return client, r.c
}

func TestHandshakeAndEcho(t *testing.T) {
	ci, si := mustIdentity(t), mustIdentity(t)
	client, server := connect(t,
		Config{Identity: ci, ExpectedPeerFingerprint: si.Fingerprint()},
		Config{Identity: si, ExpectedPeerFingerprint: ci.Fingerprint()},
	)
	go func() {
		msg, err := server.Recv()
		if err == nil {
			server.Send(append([]byte("ack:"), msg...))
		}
	}()
	if err := client.Send([]byte("segment-bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ack:segment-bytes" {
		t.Fatalf("got %q", got)
	}
	if client.PeerFingerprint() != si.Fingerprint() {
		t.Fatal("client's view of server fingerprint wrong")
	}
	if server.PeerFingerprint() != ci.Fingerprint() {
		t.Fatal("server's view of client fingerprint wrong")
	}
}

func TestFingerprintMismatchRejected(t *testing.T) {
	ci, si := mustIdentity(t), mustIdentity(t)
	evil := mustIdentity(t)
	a, b := pipePair()
	go Server(b, Config{Identity: si})
	_, err := Client(a, Config{Identity: ci, ExpectedPeerFingerprint: evil.Fingerprint()})
	if err != ErrFingerprintMismatch {
		t.Fatalf("err = %v, want ErrFingerprintMismatch", err)
	}
}

func TestNoFingerprintCheckAllowsAnyPeer(t *testing.T) {
	ci, si := mustIdentity(t), mustIdentity(t)
	client, server := connect(t, Config{Identity: ci}, Config{Identity: si})
	defer client.Close()
	defer server.Close()
}

func TestLargeMessageFragmentation(t *testing.T) {
	ci, si := mustIdentity(t), mustIdentity(t)
	client, server := connect(t, Config{Identity: ci}, Config{Identity: si})
	// 3MB segment: the paper's Table VI uses 3MB segments.
	big := bytes.Repeat([]byte{0xab}, 3*1024*1024)
	go client.Send(big)
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("large message corrupted: len %d vs %d", len(got), len(big))
	}
}

func TestCryptoHookCountsBytes(t *testing.T) {
	ci, si := mustIdentity(t), mustIdentity(t)
	var clientBytes, serverBytes atomic.Int64
	client, server := connect(t,
		Config{Identity: ci, OnCrypto: func(n int) { clientBytes.Add(int64(n)) }},
		Config{Identity: si, OnCrypto: func(n int) { serverBytes.Add(int64(n)) }},
	)
	msg := make([]byte, 10_000)
	go client.Send(msg)
	if _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	if clientBytes.Load() != 10_000 {
		t.Fatalf("client crypto bytes = %d", clientBytes.Load())
	}
	if serverBytes.Load() != 10_000 {
		t.Fatalf("server crypto bytes = %d", serverBytes.Load())
	}
}

func TestTamperedRecordRejected(t *testing.T) {
	ci, si := mustIdentity(t), mustIdentity(t)
	a, b := pipePair()
	// Interpose a tampering relay on the client side.
	ta, tb := pipePair()
	go func() {
		// Pass handshake record through untouched, then flip a byte in
		// everything after.
		var hdr [recordHeaderLen]byte
		h, payload, err := readRecord(ta)
		if err != nil {
			return
		}
		hdr = h
		writeRecordSeq(a, hdr[0], hdr[11], 0, payload)
		for {
			h, payload, err := readRecord(ta)
			if err != nil {
				return
			}
			if len(payload) > 0 {
				payload[0] ^= 0xff
			}
			seq := uint64(0)
			writeRecordSeq(a, h[0], h[11], seq, payload)
		}
	}()
	go func() { // relay server->client honestly
		for {
			h, payload, err := readRecord(a)
			if err != nil {
				return
			}
			writeRecordSeq(ta, h[0], h[11], 0, payload)
		}
	}()

	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := Server(b, Config{Identity: si})
		ch <- res{c, err}
	}()
	client, err := Client(tb, Config{Identity: ci})
	if err != nil {
		t.Fatalf("client handshake through relay: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("server handshake: %v", r.err)
	}
	go client.Send([]byte("hello"))
	if _, err := r.c.Recv(); err != ErrDecrypt {
		t.Fatalf("tampered record: err = %v, want ErrDecrypt", err)
	}
}

func TestHelloParseErrors(t *testing.T) {
	if _, _, _, err := parseHello(nil); err == nil {
		t.Fatal("nil hello should fail")
	}
	id := mustIdentity(t)
	var random [32]byte
	msg := buildHello(random, make([]byte, 32), id)
	msg[0] ^= 0x01 // break the signature
	if _, _, _, err := parseHello(msg); err != ErrBadSignature {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestConfigRequiresIdentity(t *testing.T) {
	a, _ := pipePair()
	if _, err := Client(a, Config{}); err == nil {
		t.Fatal("missing identity should fail")
	}
}

func TestDirectionKeysDiffer(t *testing.T) {
	shared := []byte("shared-secret-bytes")
	cr, sr := []byte("client-random"), []byte("server-random")
	if bytes.Equal(deriveKey(shared, cr, sr, "c2s"), deriveKey(shared, cr, sr, "s2c")) {
		t.Fatal("directional keys must differ")
	}
}

// Property: any payload round-trips the record layer byte-exactly.
func TestQuickSendRecv(t *testing.T) {
	ci, si := mustIdentity(t), mustIdentity(t)
	client, server := connect(t, Config{Identity: ci}, Config{Identity: si})
	f := func(msg []byte) bool {
		errc := make(chan error, 1)
		go func() { errc <- client.Send(msg) }()
		got, err := server.Recv()
		if err != nil || <-errc != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayedRecordRejected(t *testing.T) {
	// A replayed (duplicated) record must fail the strict sequence
	// check — the record layer's replay protection.
	ci, si := mustIdentity(t), mustIdentity(t)
	a, b := pipePair()
	// Relay that duplicates the first appdata record.
	ra, rb := pipePair()
	go func() {
		h, payload, err := readRecord(ra)
		if err != nil {
			return
		}
		writeRecordSeq(a, h[0], h[11], 0, payload) // handshake passthrough
		h2, payload2, err := readRecord(ra)
		if err != nil {
			return
		}
		writeRecordSeq(a, h2[0], h2[11], 0, payload2) // original
		writeRecordSeq(a, h2[0], h2[11], 0, payload2) // replay
	}()
	go func() { // server->client passthrough
		for {
			h, payload, err := readRecord(a)
			if err != nil {
				return
			}
			writeRecordSeq(ra, h[0], h[11], 0, payload)
		}
	}()
	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := Server(b, Config{Identity: si})
		ch <- res{c, err}
	}()
	client, err := Client(rb, Config{Identity: ci})
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	go client.Send([]byte("once"))
	if _, err := r.c.Recv(); err != nil {
		t.Fatalf("original record should decrypt: %v", err)
	}
	if _, err := r.c.Recv(); err == nil {
		t.Fatal("replayed record must be rejected")
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	a, b := pipePair()
	go func() {
		hdr := make([]byte, recordHeaderLen)
		hdr[0] = ContentAppData
		hdr[12], hdr[13], hdr[14], hdr[15] = 0xff, 0xff, 0xff, 0xff
		a.Write(hdr)
	}()
	if _, _, err := readRecord(b); err != ErrRecordTooLarge {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
}
