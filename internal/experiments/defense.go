package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/defense"
	"github.com/stealthy-peers/pdnsec/internal/dtls"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/monitor"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

// TableVIRow is one control group of the IM-checking evaluation.
type TableVIRow struct {
	PDN        bool          `json:"pdn"`
	IMChecking bool          `json:"im_checking"`
	CPURatio   float64       `json:"cpu_ratio"` // vs the no-PDN group
	MemRatio   float64       `json:"mem_ratio"`
	Latency    time.Duration `json:"latency"` // per-segment delivery latency
}

// TableVIResult backs Table VI: the overhead of peer-assisted
// integrity checking.
type TableVIResult struct {
	Rows        []TableVIRow `json:"rows"`
	SegmentSize int          `json:"segment_size"`
}

// RunTableVI reproduces the paper's three control groups: plain
// playback, PDN delivery, and PDN delivery with IM calculation and
// verification. Resource ratios come from the cost model under each
// group's workload; latency is measured live on a shaped link as
// T_recv − T_send for one segment (§V-B measures 3MB segments; the
// default here uses the same size).
func RunTableVI(ctx context.Context, segmentSize int) (*TableVIResult, error) {
	if segmentSize <= 0 {
		segmentSize = 3 << 20
	}
	res := &TableVIResult{SegmentSize: segmentSize}

	// Resource groups, paper workload shape: each receiver plays X
	// bytes; PDN groups move half of it over P2P; the IM group
	// additionally hashes every P2P segment on both ends and the
	// CDN-fetching senders hash for reporting.
	model := monitor.DefaultCostModel()
	x := int64(10 * segmentSize)
	group := func(pdn, im bool) *monitor.Meter {
		m := monitor.NewMeter(model, nil)
		m.OnPlayback(int(x))
		if !pdn {
			m.OnHTTP(int(x))
			return m
		}
		m.SetPDNLoaded(true)
		m.SetNeighbors(3)
		m.SetCacheBytes(int64(5 * segmentSize)) // SDK cache window
		m.OnHTTP(int(x / 2))
		m.OnDecrypt(int(x / 2))
		m.OnEncrypt(int(x / 2))
		if im {
			// Hash P2P-received segments for verification plus
			// CDN-received segments for reporting.
			m.OnHash(int(x))
		}
		return m
	}
	base := group(false, false).Snapshot()
	noIM := group(true, false).Snapshot()
	withIM := group(true, true).Snapshot()

	// Latency groups, measured live over a DTLS transport on a shaped
	// link (the paper's testbed spans real containers; we give each
	// host a 15ms access latency so the numbers land in the same tens-
	// of-milliseconds regime).
	latNoIM, latIM, err := measureIMLatency(ctx, segmentSize, 10*time.Millisecond)
	if err != nil {
		return nil, err
	}

	res.Rows = []TableVIRow{
		{PDN: false, IMChecking: false, CPURatio: 1, MemRatio: 1},
		{PDN: true, IMChecking: false,
			CPURatio: noIM.CPUUnits / base.CPUUnits,
			MemRatio: float64(noIM.MemBytes) / float64(base.MemBytes),
			Latency:  latNoIM},
		{PDN: true, IMChecking: true,
			CPURatio: withIM.CPUUnits / base.CPUUnits,
			MemRatio: float64(withIM.MemBytes) / float64(base.MemBytes),
			Latency:  latIM},
	}
	return res, nil
}

// wallClock is the latency-measurement clock. The simulated network
// produces its delays with real sleeps, so measuring them needs wall
// time; keeping the clock injectable (time.Now is referenced as a
// value, never called inline) preserves the package's determinism
// contract for tests that want to fake it.
var wallClock = time.Now

// measureIMLatency times one segment's P2P delivery (T_recv − T_send)
// without and with IM checking. With IM, the sender computes the IM
// before sending and the receiver fetches the SIM from the PDN server
// (one shaped round trip) and verifies the hash after receiving.
func measureIMLatency(ctx context.Context, segmentSize int, hostLatency time.Duration) (noIM, withIM time.Duration, err error) {
	n := netsim.New(netsim.Config{})
	mk := func(ip string) *netsim.Host {
		h := n.MustHost(mustAddr(ip))
		h.SetLatency(hostLatency)
		return h
	}
	sender := mk("66.24.0.1")
	receiver := mk("36.96.0.1")
	server := mk("44.1.1.1")

	// A trivial SIM endpoint on the PDN server: one request frame in,
	// one response frame out (content is irrelevant to timing).
	l, err := server.Listen(443)
	if err != nil {
		return 0, 0, err
	}
	// Teardown order (defers run LIFO): close the client conns first so
	// the per-conn goroutines unblock, then the listener so the accept
	// loop exits, then wait for all of them.
	var srvWG sync.WaitGroup
	defer srvWG.Wait()
	defer l.Close()
	srvWG.Add(1)
	go func() {
		defer srvWG.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			srvWG.Add(1)
			go func() {
				defer srvWG.Done()
				defer c.Close()
				buf := make([]byte, 256)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
					if _, err := c.Write([]byte("sim-response")); err != nil {
						return
					}
				}
			}()
		}
	}()

	idS, err := dtls.NewIdentity()
	if err != nil {
		return 0, 0, err
	}
	idR, err := dtls.NewIdentity()
	if err != nil {
		return 0, 0, err
	}
	rawS, rawR := netsim.Pair(sender, receiver,
		mustAP("66.24.0.1:40000"), mustAP("36.96.0.1:40000"))
	var wg sync.WaitGroup
	var connR *dtls.Conn
	var errR error
	wg.Add(1)
	go func() {
		defer wg.Done()
		connR, errR = dtls.Server(rawR, dtls.Config{Identity: idR})
	}()
	connS, err := dtls.Client(rawS, dtls.Config{Identity: idS})
	if err != nil {
		return 0, 0, err
	}
	wg.Wait()
	if errR != nil {
		return 0, 0, errR
	}
	defer connS.Close()

	simConn, err := receiver.Dial(ctx, mustAP("44.1.1.1:443"))
	if err != nil {
		return 0, 0, err
	}
	defer simConn.Close()

	video := analyzer.SmallVideo("lat", 2, segmentSize)
	segment, err := video.SegmentData("360p", 0)
	if err != nil {
		return 0, 0, err
	}
	key := media.SegmentKey{Video: "lat", Rendition: "360p", Index: 0}

	transfer := func(im bool) (time.Duration, error) {
		recvDone := make(chan error, 1)
		var elapsed time.Duration
		start := wallClock()
		go func() {
			data, err := connR.Recv()
			if err != nil {
				recvDone <- err
				return
			}
			if im {
				// Fetch the SIM from the server, then verify the hash.
				if _, err := simConn.Write([]byte("get-sim")); err != nil {
					recvDone <- err
					return
				}
				buf := make([]byte, 256)
				if _, err := simConn.Read(buf); err != nil {
					recvDone <- err
					return
				}
				_ = media.IMHash(key, data)
			}
			elapsed = wallClock().Sub(start)
			recvDone <- nil
		}()
		if im {
			_ = media.IMHash(key, segment) // sender-side IM calculation
		}
		if err := connS.Send(segment); err != nil {
			return 0, err
		}
		if err := <-recvDone; err != nil {
			return 0, err
		}
		return elapsed, nil
	}

	if noIM, err = transfer(false); err != nil {
		return 0, 0, err
	}
	if withIM, err = transfer(true); err != nil {
		return 0, 0, err
	}
	return noIM, withIM, nil
}

// Render prints Table VI's rows.
func (r *TableVIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VI: Evaluation for IM checking (%s segments)\n", humanCount(int64(r.SegmentSize)))
	fmt.Fprintf(&b, "%-6s %-12s %8s %8s %10s\n", "PDN", "IM checking", "CPU", "Memory", "Latency")
	for _, row := range r.Rows {
		lat := "-"
		if row.Latency > 0 {
			lat = row.Latency.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-6s %-12s %8.2f %8.2f %10s\n", yn(row.PDN), yn(row.IMChecking), row.CPURatio, row.MemRatio, lat)
	}
	return b.String()
}

func yn(v bool) string {
	if v {
		return "Yes"
	}
	return "No"
}

// TokenSizeResult backs the §V-A token-size claim.
type TokenSizeResult struct {
	JWT   string `json:"jwt"`
	Bytes int    `json:"bytes"`
}

// RunTokenSize signs the paper's Listing 1 token and reports its
// encoded size (the paper reports 283 bytes).
func RunTokenSize() (*TokenSizeResult, error) {
	jwt, err := defense.SignJWT(defense.ExampleToken(), []byte("pdn-provider-secret"))
	if err != nil {
		return nil, err
	}
	return &TokenSizeResult{JWT: jwt, Bytes: len(jwt)}, nil
}

// Render prints the token-size result.
func (r *TokenSizeResult) Render() string {
	return fmt.Sprintf("§V-A disposable video-binding token: encoded JWT is %d bytes (paper: 283)\n", r.Bytes)
}

// IMDefenseResult backs the §V-B end-to-end defense check.
type IMDefenseResult struct {
	PollutedWithoutDefense int `json:"polluted_without_defense"`
	PollutedWithDefense    int `json:"polluted_with_defense"`
	RejectedByIM           int `json:"rejected_by_im"`
}

// RunIMDefense runs the segment pollution attack against an undefended
// and a defended deployment.
func RunIMDefense(ctx context.Context) (*IMDefenseResult, error) {
	res := &IMDefenseResult{}
	undefended, err := analyzer.PollutionTest(ctx, provider.Peer5(), true, nil)
	if err != nil {
		return nil, err
	}
	defended, err := analyzer.PollutionTest(ctx, provider.Peer5(), true, analyzer.DefaultPolicyWithIM())
	if err != nil {
		return nil, err
	}
	if undefended.Vulnerable {
		res.PollutedWithoutDefense = 1
	}
	if defended.Vulnerable {
		res.PollutedWithDefense = 1
	}
	return res, nil
}

// Render prints the defense outcome.
func (r *IMDefenseResult) Render() string {
	return fmt.Sprintf("§V-B peer-assisted IM checking: pollution without defense = %v, with defense = %v\n",
		r.PollutedWithoutDefense == 1, r.PollutedWithDefense == 1)
}
