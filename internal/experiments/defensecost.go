package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/attack"
	"github.com/stealthy-peers/pdnsec/internal/defense"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/mitm"
	"github.com/stealthy-peers/pdnsec/internal/provider"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// DefenseStrategy names an integrity-defense deployment option.
type DefenseStrategy string

// The three strategies §V-B weighs against each other.
const (
	DefenseNone         DefenseStrategy = "none"
	DefenseHashManifest DefenseStrategy = "hash-manifest"    // CDN-published hashes (Viblast/Peer5-premium style)
	DefensePeerIM       DefenseStrategy = "peer-assisted-im" // the paper's proposal
)

// DefenseCostRow compares one strategy under the same pollution attack.
type DefenseCostRow struct {
	Strategy         DefenseStrategy `json:"strategy"`
	PollutedSegments int             `json:"polluted_segments"`
	VictimCDNBytes   int64           `json:"victim_cdn_bytes"`
	DefenseCDNBytes  int64           `json:"defense_cdn_bytes"` // extra CDN bytes attributable to the defense
	P2PSegments      int             `json:"p2p_segments"`
}

// DefenseCostResult backs the §V-B cost-comparison extension.
type DefenseCostResult struct {
	Rows []DefenseCostRow `json:"rows"`
}

// RunDefenseCost runs the same segment-pollution attack against three
// deployments — undefended, CDN hash manifest, and peer-assisted IM —
// and compares protection and CDN cost. It quantifies the paper's
// argument for peer-assisted checking: hash manifests protect but every
// viewer pays CDN bytes for them on every session, while peer-assisted
// IM pays arbitration fetches only when an attack actually produces
// conflicting reports — cost scales with attacker activity, not with
// the viewer population.
func RunDefenseCost(ctx context.Context) (*DefenseCostResult, error) {
	res := &DefenseCostResult{}
	for _, strategy := range []DefenseStrategy{DefenseNone, DefenseHashManifest, DefensePeerIM} {
		row, err := defenseCostRow(ctx, strategy)
		if err != nil {
			return nil, fmt.Errorf("experiments: defense cost %s: %w", strategy, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func defenseCostRow(ctx context.Context, strategy DefenseStrategy) (DefenseCostRow, error) {
	row := DefenseCostRow{Strategy: strategy}
	video := analyzer.SmallVideo("bbb", 6, 16<<10)

	opts := provider.Options{Seed: 13}
	var checker *defense.IMChecker
	if strategy == DefensePeerIM {
		var err error
		checker, err = defense.NewIMChecker(defense.IMConfig{
			Reporters: 2,
			FetchCDN: func(key media.SegmentKey) ([]byte, error) {
				return video.SegmentData(key.Rendition, key.Index)
			},
		})
		if err != nil {
			return row, err
		}
		opts.IM = checker
		pol := signal.DefaultPolicy()
		pol.RequireIMChecking = true
		opts.PolicyOverride = &pol
	}
	tb, err := analyzer.NewTestbed(ctx, analyzer.TestbedConfig{Profile: provider.Peer5(), Video: video, Options: opts})
	if err != nil {
		return row, err
	}
	defer tb.Close()

	fakeHost, err := tb.Net.NewHost(analyzer.FakeCDNIP())
	if err != nil {
		return row, err
	}
	malHost, err := tb.NewViewerHost("US")
	if err != nil {
		return row, err
	}
	atk, err := attack.LaunchPollution(ctx, attack.PollutionParams{
		Network:       tb.Net,
		SignalAddr:    tb.Dep.SignalAddr,
		STUNAddr:      tb.Dep.STUNAddr,
		RealCDNBase:   tb.CDNBase,
		FakeCDNHost:   fakeHost,
		MaliciousHost: malHost,
		APIKey:        tb.Key,
		Origin:        "https://customer.com",
		Video:         video.ID,
		Rendition:     "360p",
		Pollute:       mitm.SameSizePollution([]int{3, 4}),
		Segments:      video.Segments,
	})
	if err != nil {
		return row, err
	}
	defer atk.Close()

	cdnBefore := tb.CDN.BytesServed(video.ID)
	victimHost, err := tb.NewViewerHost("GB")
	if err != nil {
		return row, err
	}
	vcfg := tb.ViewerConfig(victimHost, 21)
	if strategy == DefenseHashManifest {
		vcfg.VerifyHashManifest = true
	}
	vcfg.MaxSegments = video.Segments
	var polluted int
	vcfg.OnSegment = func(key media.SegmentKey, data []byte, source string) {
		if !video.Verify(key.Rendition, key.Index, data) {
			polluted++
		}
	}
	st, err := tb.RunViewer(ctx, vcfg)
	if err != nil {
		return row, err
	}
	row.PollutedSegments = polluted
	row.P2PSegments = st.FromP2P
	row.VictimCDNBytes = tb.CDN.BytesServed(video.ID) - cdnBefore

	// Defense-attributable CDN bytes: the hash list for hash-manifest;
	// the arbitration fetches for peer-assisted IM (here resolved from
	// ground truth, so count them explicitly).
	switch strategy {
	case DefenseHashManifest:
		// One hashes.json fetch per viewer session; approximate by the
		// size of the list.
		perSeg := int64(64 + 24) // hex hash + key per entry, JSON framing
		row.DefenseCDNBytes = int64(video.Segments) * perSeg
	case DefensePeerIM:
		if checker != nil {
			_, fetches, _ := checker.Stats()
			row.DefenseCDNBytes = int64(fetches) * int64(16<<10)
		}
	}
	return row, nil
}

// Render prints the comparison.
func (r *DefenseCostResult) Render() string {
	var b strings.Builder
	b.WriteString("§V-B defense cost comparison (same segment-pollution attack):\n")
	fmt.Fprintf(&b, "  %-18s %10s %14s %16s %8s\n", "strategy", "polluted", "victim-cdn-B", "defense-cdn-B", "p2p-seg")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-18s %10d %14d %16d %8d\n",
			row.Strategy, row.PollutedSegments, row.VictimCDNBytes, row.DefenseCDNBytes, row.P2PSegments)
	}
	return b.String()
}
