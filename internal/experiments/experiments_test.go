package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func detection(t *testing.T) *DetectionResult {
	t.Helper()
	det, err := RunDetection(testCtx(t), 1, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestTablesIThroughIVRender(t *testing.T) {
	det := detection(t)
	t1 := det.RenderTableI()
	for _, want := range []string{"peer5", "16/60", "15/31", "199/548", "17/134", "18/38", "252/627"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q:\n%s", want, t1)
		}
	}
	t2 := det.RenderTableII()
	if !strings.Contains(t2, "peer5") || strings.Count(t2, "\n") < 17 {
		t.Errorf("Table II too small:\n%s", t2)
	}
	t3 := det.RenderTableIII()
	if strings.Count(t3, "\n") < 18 {
		t.Errorf("Table III should list 18 confirmed apps:\n%s", t3)
	}
	t4 := det.RenderTableIV()
	for _, want := range []string{"mgtv-sim", "huya-sim", "adult TURN relays: 2", "WebRTC tracking: 3", "untriggered: 42"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table IV missing %q:\n%s", want, t4)
		}
	}
}

func TestTableVMatrix(t *testing.T) {
	det := detection(t)
	res, err := RunTableV(testCtx(t), det)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 {
		t.Fatalf("columns %d", len(res.Columns))
	}
	// §IV-B key probe: peer5 11/36, streamroot 0/1, viblast 0/3, 4 expired.
	p5 := res.Columns[0].KeyProbe
	if p5.Vulnerable != 11 || p5.Valid != 36 || p5.Expired != 4 {
		t.Errorf("peer5 key probe %+v, want 11/36 (+4 expired)", p5)
	}
	sr := res.Columns[1].KeyProbe
	if sr.Vulnerable != 0 || sr.Valid != 1 {
		t.Errorf("streamroot key probe %+v, want 0/1", sr)
	}
	vb := res.Columns[2].KeyProbe
	if vb.Vulnerable != 0 || vb.Valid != 3 {
		t.Errorf("viblast key probe %+v, want 0/3", vb)
	}

	text := res.Render()
	for _, want := range []string{"11/36", "0/1", "0/3", "domain-spoofing", "segment pollution"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table V missing %q:\n%s", want, text)
		}
	}
	// Every provider column: spoof vulnerable, direct pollution safe,
	// segment pollution vulnerable, leak + squatting vulnerable.
	for _, col := range res.Columns {
		for _, v := range col.Verdicts {
			switch v.Risk {
			case "domain-spoofing", "segment-pollution", "ip-leak", "resource-squatting":
				if !v.Vulnerable {
					t.Errorf("%s/%s should be vulnerable (%s)", col.Provider, v.Risk, v.Detail)
				}
			case "direct-pollution":
				if v.Vulnerable {
					t.Errorf("%s/direct-pollution should be safe (%s)", col.Provider, v.Detail)
				}
			}
		}
	}
}

func TestTableVI(t *testing.T) {
	res, err := RunTableVI(testCtx(t), 3<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	base, noIM, withIM := res.Rows[0], res.Rows[1], res.Rows[2]
	if base.CPURatio != 1 || base.MemRatio != 1 {
		t.Fatalf("base row %+v", base)
	}
	if noIM.CPURatio < 1.05 || noIM.CPURatio > 1.20 {
		t.Errorf("PDN CPU ratio %.3f outside [1.05,1.20] (paper: 1.11)", noIM.CPURatio)
	}
	if withIM.CPURatio <= noIM.CPURatio || withIM.CPURatio > 1.30 {
		t.Errorf("IM CPU ratio %.3f should exceed %.3f slightly (paper: 1.14)", withIM.CPURatio, noIM.CPURatio)
	}
	if noIM.MemRatio < 1.10 || noIM.MemRatio > 1.35 {
		t.Errorf("PDN mem ratio %.3f outside [1.10,1.35] (paper: 1.21)", noIM.MemRatio)
	}
	if withIM.MemRatio < noIM.MemRatio {
		t.Errorf("IM mem ratio %.3f below no-IM %.3f", withIM.MemRatio, noIM.MemRatio)
	}
	if noIM.Latency <= 0 || withIM.Latency <= noIM.Latency {
		t.Errorf("latency ordering: noIM=%v withIM=%v (paper: 67ms -> 140ms)", noIM.Latency, withIM.Latency)
	}
	if withIM.Latency-noIM.Latency > 500*time.Millisecond {
		t.Errorf("IM latency overhead %v implausibly large", withIM.Latency-noIM.Latency)
	}
	if !strings.Contains(res.Render(), "Latency") {
		t.Error("render missing latency column")
	}
}

func TestFigure4Shape(t *testing.T) {
	res, err := RunFigure4(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: +15% CPU, +10% memory for PDN peers vs no-peer. Peer B
	// (the downloader) carries the decrypt cost; assert its ratios and
	// the weaker bound for A.
	if res.PeerB.CPURatio < 1.05 || res.PeerB.CPURatio > 1.30 {
		t.Errorf("peer B CPU ratio %.3f outside [1.05,1.30]", res.PeerB.CPURatio)
	}
	if res.PeerB.MemRatio < 1.03 || res.PeerB.MemRatio > 1.30 {
		t.Errorf("peer B mem ratio %.3f outside [1.03,1.30]", res.PeerB.MemRatio)
	}
	if res.PeerA.CPURatio <= 1.0 {
		t.Errorf("peer A CPU ratio %.3f should exceed control", res.PeerA.CPURatio)
	}
	if res.PeerA.UpBytes == 0 || res.PeerB.DownBytes == 0 {
		t.Error("P2P traffic missing from NIC counters")
	}
	if res.NoPeer.UpBytes > res.PeerA.UpBytes/10 {
		t.Errorf("no-peer control should barely upload: %d vs %d", res.NoPeer.UpBytes, res.PeerA.UpBytes)
	}
}

func TestFigure5UploadScaling(t *testing.T) {
	res, err := RunFigure5(testCtx(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points %d", len(res.Points))
	}
	// Upload grows with neighbor count...
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].SeederUpBytes <= res.Points[i-1].SeederUpBytes {
			t.Errorf("upload not increasing: %+v", res.Points)
		}
	}
	// ...reaching roughly 2x the seeder's download at 3 neighbors
	// (paper: "up to 200% of the download traffic with 3 peers").
	last := res.Points[2]
	if last.UploadRatio < 1.5 || last.UploadRatio > 2.5 {
		t.Errorf("upload/download at 3 peers = %.2f, want ≈2.0", last.UploadRatio)
	}
	// CPU roughly flat (within ~10% across 1..3 neighbors).
	if res.Points[2].CPUUnits > res.Points[0].CPUUnits*1.10 {
		t.Errorf("CPU grew %.3fx from 1 to 3 neighbors; paper reports no significant difference",
			res.Points[2].CPUUnits/res.Points[0].CPUUnits)
	}
}

func TestIPLeakLabAllProvidersLeak(t *testing.T) {
	res, err := RunIPLeakLab(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	for prov, leaked := range res.PerProvider {
		if !leaked {
			t.Errorf("%s should leak peer IPs", prov)
		}
	}
	if len(res.PerProvider) != 4 {
		t.Fatalf("providers tested: %d", len(res.PerProvider))
	}
}

func TestIPLeakWildNumbers(t *testing.T) {
	res, err := RunIPLeakWild(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Combined.Total != 7740 {
		t.Fatalf("combined harvest %d, want 7740 (7055 + 685)", res.Combined.Total)
	}
	huya := res.Channels[0]
	if huya.Total != 7055 {
		t.Fatalf("huya harvest %d", huya.Total)
	}
	cnShare := float64(huya.ByCountry["CN"]) / float64(huya.Public)
	if cnShare < 0.95 {
		t.Errorf("huya CN share %.3f, paper reports 98%%", cnShare)
	}
	rt := res.Channels[1]
	if rt.Total != 685 {
		t.Fatalf("rtnews harvest %d", rt.Total)
	}
	if rt.TopCountries[0].Country != "US" {
		t.Errorf("rtnews top country %s, want US", rt.TopCountries[0].Country)
	}
	// Bogon split ordered like the paper's 543 private / 33 NAT / 5 reserved.
	c := res.Combined
	if !(c.Private > c.SharedNAT && c.SharedNAT > c.Reserved && c.Bogons > 0) {
		t.Errorf("bogon split %d/%d/%d", c.Private, c.SharedNAT, c.Reserved)
	}
	if c.Bogons < 400 || c.Bogons > 800 {
		t.Errorf("bogons %d, paper reports 581", c.Bogons)
	}
}

func TestGeoMatchMitigation(t *testing.T) {
	res, err := RunGeoMatchMitigation(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results %d", len(res))
	}
	rt, huya := res[0], res[1]
	// Paper: only 35% of RT News leaks remain for a same-country (US)
	// controlled peer; none of Huya's (98% CN) remain.
	if rt.ShareAfter < 0.25 || rt.ShareAfter > 0.45 {
		t.Errorf("RT News share after geo matching %.3f, want ≈0.35", rt.ShareAfter)
	}
	if huya.ShareAfter > 0.05 {
		t.Errorf("Huya share after geo matching %.3f, want ≈0", huya.ShareAfter)
	}
}

func TestFreeRideBilling(t *testing.T) {
	res, err := RunFreeRideBilling(testCtx(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.JoinAccepted {
		t.Fatal("free riders should join a Peer5-like service")
	}
	if res.P2PBytes == 0 {
		t.Fatal("no P2P traffic generated")
	}
	if res.VictimUsage < res.P2PBytes {
		t.Errorf("victim metered %d < generated %d", res.VictimUsage, res.P2PBytes)
	}
	if res.VictimCost <= 0 {
		t.Error("victim bill did not increase")
	}
}

func TestTokenSize(t *testing.T) {
	res, err := RunTokenSize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 283 {
		t.Fatalf("token size %d, paper reports 283", res.Bytes)
	}
}

func TestIMDefense(t *testing.T) {
	res, err := RunIMDefense(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.PollutedWithoutDefense != 1 {
		t.Error("pollution should succeed without the defense")
	}
	if res.PollutedWithDefense != 0 {
		t.Error("pollution should fail with IM checking")
	}
}

func TestECDN(t *testing.T) {
	res, err := RunECDN(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.FreeRiding {
		t.Error("eCDN free riding should be prevented (tenant ID not public)")
	}
	if !res.SegmentPollution {
		t.Error("eCDN should still fall to segment pollution (§VI)")
	}
}

func TestDefenseCostComparison(t *testing.T) {
	res, err := RunDefenseCost(testCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	none, hash, im := res.Rows[0], res.Rows[1], res.Rows[2]
	if none.PollutedSegments == 0 {
		t.Error("undefended deployment should admit pollution")
	}
	if hash.PollutedSegments != 0 || im.PollutedSegments != 0 {
		t.Errorf("both defenses should block pollution: hash=%d im=%d", hash.PollutedSegments, im.PollutedSegments)
	}
	// The hash manifest costs CDN bytes on every viewer session;
	// peer-assisted IM costs arbitration fetches only when a conflict
	// actually occurs — here the malicious peer self-reports its
	// poisoned IMs, so the cost is bounded by the number of attacked
	// segments (2), not by the viewer count.
	if hash.DefenseCDNBytes == 0 {
		t.Error("hash manifest should carry a CDN cost")
	}
	if im.DefenseCDNBytes > 2*int64(16<<10) {
		t.Errorf("peer-assisted IM arbitration cost %d exceeds the attacked segments", im.DefenseCDNBytes)
	}
	if !strings.Contains(res.Render(), "hash-manifest") {
		t.Error("render missing strategy rows")
	}
}
