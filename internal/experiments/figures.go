package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/monitor"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

// RoleUsage is one peer's resource summary in a figure experiment.
type RoleUsage struct {
	Role      string  `json:"role"`
	CPUUnits  float64 `json:"cpu_units"`
	MemBytes  int64   `json:"mem_bytes"`
	UpBytes   int64   `json:"up_bytes"`
	DownBytes int64   `json:"down_bytes"`
	CPURatio  float64 `json:"cpu_ratio"` // vs the no-peer control
	MemRatio  float64 `json:"mem_ratio"`
}

// Figure4Result backs Fig. 4: resource consumption of serving as a PDN
// peer, against a no-peer control.
type Figure4Result struct {
	NoPeer RoleUsage `json:"no_peer"`
	PeerA  RoleUsage `json:"peer_a"`
	PeerB  RoleUsage `json:"peer_b"`
}

// RunFigure4 plays the same stream three ways: a plain CDN viewer
// (control), a seeding PDN peer (A), and a later PDN peer (B) that
// leeches from A, each with a resource meter attached.
func RunFigure4(ctx context.Context) (*Figure4Result, error) {
	// 1 MiB segments: large enough that the segment cache and crypto
	// work dominate the overhead the way they do in a real player.
	video := analyzer.SmallVideo("bbb", 8, 1<<20)
	tb, err := analyzer.NewTestbed(ctx, analyzer.TestbedConfig{Profile: provider.Peer5(), Video: video})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	// Control.
	ctrlHost, err := tb.NewViewerHost("US")
	if err != nil {
		return nil, err
	}
	ctrlCfg := tb.ViewerConfig(ctrlHost, 1)
	ctrlCfg.DisableP2P = true
	ctrlMeter := analyzer.MeterFor(&ctrlCfg, ctrlHost)
	if _, err := tb.RunViewer(ctx, ctrlCfg); err != nil {
		return nil, err
	}

	// Peer A seeds, Peer B leeches.
	hostA, err := tb.NewViewerHost("US")
	if err != nil {
		return nil, err
	}
	cfgA := tb.ViewerConfig(hostA, 2)
	meterA := analyzer.MeterFor(&cfgA, hostA)
	_, stopA, err := tb.Seeder(ctx, cfgA, video.Segments)
	if err != nil {
		return nil, err
	}
	hostB, err := tb.NewViewerHost("GB")
	if err != nil {
		return nil, err
	}
	cfgB := tb.ViewerConfig(hostB, 3)
	meterB := analyzer.MeterFor(&cfgB, hostB)
	if _, err := tb.RunViewer(ctx, cfgB); err != nil {
		return nil, err
	}
	stopA()

	ctrl := usageOf("no-peer", ctrlMeter, monitor.Usage{})
	res := &Figure4Result{
		NoPeer: ctrl,
		PeerA:  ratioed(usageOf("peer-a", meterA, monitor.Usage{}), ctrl),
		PeerB:  ratioed(usageOf("peer-b", meterB, monitor.Usage{}), ctrl),
	}
	res.NoPeer.CPURatio, res.NoPeer.MemRatio = 1, 1
	return res, nil
}

func usageOf(role string, m *monitor.Meter, _ monitor.Usage) RoleUsage {
	u := m.Snapshot()
	return RoleUsage{
		Role:      role,
		CPUUnits:  u.CPUUnits,
		MemBytes:  u.MemBytes,
		UpBytes:   u.UpBytes,
		DownBytes: u.DownBytes,
	}
}

func ratioed(u, base RoleUsage) RoleUsage {
	if base.CPUUnits > 0 {
		u.CPURatio = u.CPUUnits / base.CPUUnits
	}
	if base.MemBytes > 0 {
		u.MemRatio = float64(u.MemBytes) / float64(base.MemBytes)
	}
	return u
}

// Render prints Fig. 4's series as a summary table.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: Resource consumption of serving as a PDN peer\n")
	fmt.Fprintf(&b, "%-10s %12s %10s %12s %12s %8s %8s\n",
		"role", "cpu-units", "mem", "down", "up", "cpu-x", "mem-x")
	for _, u := range []RoleUsage{r.NoPeer, r.PeerA, r.PeerB} {
		fmt.Fprintf(&b, "%-10s %12.0f %10s %12d %12d %8.2f %8.2f\n",
			u.Role, u.CPUUnits, humanCount(u.MemBytes), u.DownBytes, u.UpBytes, u.CPURatio, u.MemRatio)
	}
	return b.String()
}

// Figure5Point is one neighbor-count datapoint.
type Figure5Point struct {
	Neighbors       int     `json:"neighbors"`
	SeederUpBytes   int64   `json:"seeder_up_bytes"`
	SeederDownBytes int64   `json:"seeder_down_bytes"`
	UploadRatio     float64 `json:"upload_ratio"` // upload / download
	CPUUnits        float64 `json:"cpu_units"`
	MemBytes        int64   `json:"mem_bytes"`
}

// Figure5Result backs Fig. 5: bandwidth consumption of serving
// multiple peers.
type Figure5Result struct {
	Points []Figure5Point `json:"points"`
}

// RunFigure5 measures the seeding peer's upload as 1..maxPeers leeches
// consume the stream from it sequentially (each leech arrives after the
// previous finished, so the seeder is the only P2P source).
func RunFigure5(ctx context.Context, maxPeers int) (*Figure5Result, error) {
	if maxPeers <= 0 {
		maxPeers = 3
	}
	res := &Figure5Result{}
	for k := 1; k <= maxPeers; k++ {
		video := analyzer.SmallVideo("bbb", 6, 64<<10)
		tb, err := analyzer.NewTestbed(ctx, analyzer.TestbedConfig{Profile: provider.Peer5(), Video: video})
		if err != nil {
			return nil, err
		}
		hostA, err := tb.NewViewerHost("US")
		if err != nil {
			tb.Close()
			return nil, err
		}
		cfgA := tb.ViewerConfig(hostA, 1)
		meterA := analyzer.MeterFor(&cfgA, hostA)
		_, stopA, err := tb.Seeder(ctx, cfgA, video.Segments)
		if err != nil {
			tb.Close()
			return nil, err
		}
		for i := 0; i < k; i++ {
			hostB, err := tb.NewViewerHost("GB")
			if err != nil {
				tb.Close()
				return nil, err
			}
			cfgB := tb.ViewerConfig(hostB, int64(10+i))
			if _, err := tb.RunViewer(ctx, cfgB); err != nil {
				tb.Close()
				return nil, err
			}
		}
		stopA()
		u := meterA.Snapshot()
		pt := Figure5Point{
			Neighbors:       k,
			SeederUpBytes:   u.UpBytes,
			SeederDownBytes: u.DownBytes,
			CPUUnits:        u.CPUUnits,
			MemBytes:        u.MemBytes,
		}
		if u.DownBytes > 0 {
			pt.UploadRatio = float64(u.UpBytes) / float64(u.DownBytes)
		}
		res.Points = append(res.Points, pt)
		tb.Close()
	}
	return res, nil
}

// Render prints Fig. 5's series.
func (r *Figure5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: Bandwidth consumption of serving multiple peers\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %10s %12s %10s\n", "neighbors", "seeder-up", "seeder-down", "up/down", "cpu-units", "mem")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10d %14d %14d %10.2f %12.0f %10s\n",
			p.Neighbors, p.SeederUpBytes, p.SeederDownBytes, p.UploadRatio, p.CPUUnits, humanCount(p.MemBytes))
	}
	return b.String()
}
