package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/attack"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/mitm"
	"github.com/stealthy-peers/pdnsec/internal/pdnclient"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

// PropagationResult backs the pollution-propagation experiment: §IV-C
// argues (citing Wang et al.) that pollution in a P2P live system
// "will quickly propagate to 47% of viewers in the initial stage even
// when the initial number of polluters is small"; here one malicious
// seeder poisons a swarm of honest viewers who cache and re-serve what
// they receive.
type PropagationResult struct {
	Viewers          int     `json:"viewers"`
	AffectedViewers  int     `json:"affected_viewers"`
	AffectedFraction float64 `json:"affected_fraction"`
	PollutedPlays    int     `json:"polluted_plays"`
	MaliciousUploads int     `json:"malicious_uploads"` // polluted segments served by the attacker itself
	SecondarySpread  bool    `json:"secondary_spread"`  // victims re-served poison to other victims
	TotalP2PSegments int     `json:"total_p2p_segments"`
}

// RunPollutionPropagation seeds a swarm with one malicious peer
// (feeding from a fake CDN that poisons two mid-stream segments) and
// runs `viewers` honest viewers with staggered arrivals. Because
// honest peers cache and re-serve P2P segments, the poison spreads
// beyond the attacker's own uploads.
func RunPollutionPropagation(ctx context.Context, viewers int) (*PropagationResult, error) {
	if viewers <= 0 {
		viewers = 10
	}
	const segBytes = 16 << 10
	video := analyzer.SmallVideo("live-event", 6, segBytes)
	tb, err := analyzer.NewTestbed(ctx, analyzer.TestbedConfig{Profile: provider.Peer5(), Video: video})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	fakeHost, err := tb.Net.NewHost(analyzer.FakeCDNIP())
	if err != nil {
		return nil, err
	}
	malHost, err := tb.NewViewerHost("US")
	if err != nil {
		return nil, err
	}
	polluted := []int{3, 4}
	atk, err := attack.LaunchPollution(ctx, attack.PollutionParams{
		Network:       tb.Net,
		SignalAddr:    tb.Dep.SignalAddr,
		STUNAddr:      tb.Dep.STUNAddr,
		RealCDNBase:   tb.CDNBase,
		FakeCDNHost:   fakeHost,
		MaliciousHost: malHost,
		APIKey:        tb.Key,
		Origin:        "https://customer.com",
		Video:         video.ID,
		Rendition:     "360p",
		Pollute:       mitm.SameSizePollution(polluted),
		Segments:      video.Segments,
	})
	if err != nil {
		return nil, err
	}

	countries := []string{"US", "GB", "DE", "FR", "CA", "JP", "BR", "IN", "AU", "ES"}
	res := &PropagationResult{Viewers: viewers}
	var mu sync.Mutex
	affected := make([]bool, viewers)

	var wg sync.WaitGroup
	errs := make(chan error, viewers)
	for i := 0; i < viewers; i++ {
		host, err := tb.NewViewerHost(countries[i%len(countries)])
		if err != nil {
			return nil, err
		}
		cfg := tb.ViewerConfig(host, int64(100+i))
		cfg.MaxSegments = video.Segments
		cfg.Linger = 5 * time.Second // stay online to re-serve (and re-spread)
		idx := i
		cfg.OnSegment = func(key media.SegmentKey, data []byte, source string) {
			mu.Lock()
			defer mu.Unlock()
			if source == pdnclient.SourceP2P {
				res.TotalP2PSegments++
			}
			if !video.Verify(key.Rendition, key.Index, data) {
				res.PollutedPlays++
				affected[idx] = true
			}
		}
		peer, err := pdnclient.New(cfg)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := peer.Run(ctx); err != nil {
				errs <- err
			}
			peer.StopLinger()
		}()
		// Staggered arrivals, as a live audience joins.
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	malStats := atk.Close()

	for _, hit := range affected {
		if hit {
			res.AffectedViewers++
		}
	}
	res.AffectedFraction = float64(res.AffectedViewers) / float64(viewers)
	res.MaliciousUploads = int(malStats.P2PUpBytes) / segBytes
	// If victims played more polluted segments than the attacker itself
	// served, infected viewers re-served the poison.
	res.SecondarySpread = res.PollutedPlays > res.MaliciousUploads
	return res, nil
}

// Render prints the propagation outcome.
func (r *PropagationResult) Render() string {
	var b strings.Builder
	b.WriteString("§IV-C pollution propagation (1 malicious seeder, honest swarm):\n")
	fmt.Fprintf(&b, "  viewers=%d affected=%d (%.0f%%) polluted-plays=%d attacker-served=%d secondary-spread=%v\n",
		r.Viewers, r.AffectedViewers, r.AffectedFraction*100, r.PollutedPlays, r.MaliciousUploads, r.SecondarySpread)
	b.WriteString("  (the paper cites ~47% of viewers affected in the initial stage of a live system)\n")
	return b.String()
}
