package experiments

import "testing"

func TestPollutionPropagation(t *testing.T) {
	res, err := RunPollutionPropagation(testCtx(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.AffectedViewers == 0 {
		t.Fatalf("pollution did not propagate: %+v", res)
	}
	if res.AffectedFraction < 0.25 {
		t.Errorf("affected fraction %.2f below the paper's initial-stage regime (~0.47)", res.AffectedFraction)
	}
	if res.TotalP2PSegments == 0 {
		t.Fatal("swarm moved nothing over P2P")
	}
}
