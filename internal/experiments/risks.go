package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/attack"
	"github.com/stealthy-peers/pdnsec/internal/auth"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

// KeyProbeResult is the per-extracted-key cross-domain outcome backing
// Table V's "a/b = vulnerable/valid keys" cells.
type KeyProbeResult struct {
	Provider   string `json:"provider"`
	Valid      int    `json:"valid"`
	Expired    int    `json:"expired"`
	Vulnerable int    `json:"vulnerable"` // valid keys without an allowlist
}

// ProviderColumn is one provider's Table V column.
type ProviderColumn struct {
	Provider string             `json:"provider"`
	KeyProbe KeyProbeResult     `json:"key_probe"`
	Verdicts []analyzer.Verdict `json:"verdicts"`
}

// TableVResult is the full risk matrix.
type TableVResult struct {
	Columns []ProviderColumn `json:"columns"`
	Private ProviderColumn   `json:"private"`
}

// RunTableV executes the peer-authentication key probes (against the
// corpus's extracted keys) and the full analyzer battery per provider,
// plus the private-service column (Mango-like).
func RunTableV(ctx context.Context, det *DetectionResult) (*TableVResult, error) {
	res := &TableVResult{}
	for _, prof := range provider.PublicProfiles() {
		col, err := providerColumn(ctx, prof, det)
		if err != nil {
			return nil, fmt.Errorf("experiments: table V %s: %w", prof.Name, err)
		}
		res.Columns = append(res.Columns, col)
	}
	priv, err := providerColumn(ctx, provider.MangoPrivate(), det)
	if err != nil {
		return nil, fmt.Errorf("experiments: table V private: %w", err)
	}
	res.Private = priv
	return res, nil
}

func providerColumn(ctx context.Context, prof provider.Profile, det *DetectionResult) (ProviderColumn, error) {
	col := ProviderColumn{Provider: prof.Name}
	if det != nil && prof.Public {
		probe, err := probeExtractedKeys(ctx, prof, det)
		if err != nil {
			return col, err
		}
		col.KeyProbe = probe
	}
	verdicts, err := analyzer.RunAll(ctx, prof)
	if err != nil {
		return col, err
	}
	col.Verdicts = verdicts
	return col, nil
}

// probeExtractedKeys reproduces §IV-B's real-world validation: every
// regex-extracted key is installed into a deployed provider exactly as
// its corpus ground truth describes (valid/expired, allowlisted or
// not), then probed with the cross-domain attack.
func probeExtractedKeys(ctx context.Context, prof provider.Profile, det *DetectionResult) (KeyProbeResult, error) {
	res := KeyProbeResult{Provider: prof.Name}
	tb, err := analyzer.NewTestbed(ctx, analyzer.TestbedConfig{Profile: prof})
	if err != nil {
		return res, err
	}
	defer tb.Close()

	// Index corpus truth by key value.
	truthByKey := map[string]*struct {
		valid, allowlisted bool
		domain             string
	}{}
	for _, site := range det.Corpus.Sites {
		if site.Truth.APIKey != "" {
			truthByKey[site.Truth.APIKey] = &struct {
				valid, allowlisted bool
				domain             string
			}{site.Truth.KeyValid, site.Truth.KeyAllowlisted, site.Domain}
		}
	}

	attackerHost, err := tb.NewViewerHost("US")
	if err != nil {
		return res, err
	}
	for _, ek := range det.Report.ExtractedKeys {
		if ek.Provider != prof.Name {
			continue
		}
		truth, ok := truthByKey[ek.Key]
		if !ok {
			continue
		}
		var allow []string
		if truth.allowlisted {
			allow = []string{truth.domain}
		}
		tb.Dep.Keys.AddKey(auth.Key{
			Value:     ek.Key,
			Customer:  truth.domain,
			Allowlist: allow,
			Expired:   !truth.valid,
		})
		if !truth.valid {
			res.Expired++
			continue
		}
		res.Valid++
		vulnerable, err := attack.CrossDomain(ctx, attackerHost, tb.Dep.SignalAddr, ek.Key)
		if err != nil {
			return res, err
		}
		if vulnerable {
			res.Vulnerable++
		}
	}
	return res, nil
}

// Render prints the risk matrix in Table V's shape.
func (r *TableVResult) Render() string {
	var b strings.Builder
	b.WriteString("Table V: Security and privacy risks of PDN services\n")
	cols := append([]ProviderColumn(nil), r.Columns...)
	cols = append(cols, r.Private)
	fmt.Fprintf(&b, "%-24s", "Risk")
	for _, c := range cols {
		fmt.Fprintf(&b, " %-14s", c.Provider)
	}
	b.WriteString("\n")

	row := func(label, risk string) {
		fmt.Fprintf(&b, "%-24s", label)
		for _, c := range cols {
			cell := "?"
			for _, v := range c.Verdicts {
				if v.Risk != risk {
					continue
				}
				switch {
				case !v.Applicable:
					cell = "n/a"
				case risk == "cross-domain" && c.KeyProbe.Valid > 0:
					cell = fmt.Sprintf("%d/%d", c.KeyProbe.Vulnerable, c.KeyProbe.Valid)
				case v.Vulnerable:
					cell = "vulnerable"
				default:
					cell = "safe"
				}
			}
			fmt.Fprintf(&b, " %-14s", cell)
		}
		b.WriteString("\n")
	}
	b.WriteString("Peer Authentication\n")
	row("  cross-domain attack", analyzer.RiskCrossDomain)
	row("  domain-spoofing", analyzer.RiskDomainSpoofing)
	b.WriteString("Content Integrity\n")
	row("  direct pollution", analyzer.RiskDirectPollution)
	row("  segment pollution", analyzer.RiskSegmentPollution)
	b.WriteString("Peer Privacy\n")
	row("  IP leak", analyzer.RiskIPLeak)
	row("  resource squatting", analyzer.RiskResourceSquatting)
	return b.String()
}
