// Package experiments regenerates every table and figure in the paper's
// evaluation from the reproduction's own pipelines. Each experiment
// returns a structured result plus a Render method producing rows
// shaped like the paper's, and EXPERIMENTS.md records paper-vs-measured
// for each.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/stealthy-peers/pdnsec/internal/corpus"
	"github.com/stealthy-peers/pdnsec/internal/detector"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

// DetectionResult backs Tables I-IV.
type DetectionResult struct {
	Report *detector.Report
	Corpus *corpus.Corpus
}

// RunDetection executes the sequential reference detector pipeline
// over a generated corpus. fillerSites/fillerApps size the non-PDN
// background population (0 for defaults).
func RunDetection(ctx context.Context, seed int64, fillerSites, fillerApps int) (*DetectionResult, error) {
	c := corpus.Generate(corpus.Params{Seed: seed, FillerSites: fillerSites, FillerApps: fillerApps})
	rep, err := detector.Pipeline(ctx, c, provider.PublicProfiles(), seed)
	if err != nil {
		return nil, err
	}
	return &DetectionResult{Report: rep, Corpus: c}, nil
}

// RunDetectionOpts executes the detection pipeline on the dispatch
// engine — worker pool, optional rate limit and checkpoint/resume per
// opts — with output identical to RunDetection's.
func RunDetectionOpts(ctx context.Context, seed int64, fillerSites, fillerApps int, opts detector.Options) (*DetectionResult, error) {
	c := corpus.Generate(corpus.Params{Seed: seed, FillerSites: fillerSites, FillerApps: fillerApps})
	rep, err := detector.ParallelPipeline(ctx, c, provider.PublicProfiles(), seed, opts)
	if err != nil {
		return nil, err
	}
	return &DetectionResult{Report: rep, Corpus: c}, nil
}

// providerOrder is the paper's table ordering.
var providerOrder = []string{"peer5", "streamroot", "viblast"}

// RenderTableI prints detected PDN customers per provider (Table I).
func (r *DetectionResult) RenderTableI() string {
	var b strings.Builder
	b.WriteString("Table I: Detected PDN customers (confirmed/potential)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "Provider", "websites", "apps", "APKs")
	totals := [6]int{}
	for _, prov := range providerOrder {
		rep := r.Report
		fmt.Fprintf(&b, "%-12s %7d/%-6d %7d/%-6d %7d/%-6d\n", prov,
			rep.ConfirmedSites[prov], rep.PotentialSites[prov],
			rep.ConfirmedApps[prov], rep.PotentialApps[prov],
			rep.ConfirmedAPKs[prov], rep.PotentialAPKs[prov])
		totals[0] += rep.ConfirmedSites[prov]
		totals[1] += rep.PotentialSites[prov]
		totals[2] += rep.ConfirmedApps[prov]
		totals[3] += rep.PotentialApps[prov]
		totals[4] += rep.ConfirmedAPKs[prov]
		totals[5] += rep.PotentialAPKs[prov]
	}
	fmt.Fprintf(&b, "%-12s %7d/%-6d %7d/%-6d %7d/%-6d\n", "Total",
		totals[0], totals[1], totals[2], totals[3], totals[4], totals[5])
	return b.String()
}

// RenderTableII prints the confirmed PDN websites with their traffic
// (Table II shape: domain, provider, monthly visits).
func (r *DetectionResult) RenderTableII() string {
	rows := append([]detector.ConfirmedSite(nil), r.Report.ConfirmedSiteList...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].MonthlyVisits > rows[j].MonthlyVisits })
	var b strings.Builder
	b.WriteString("Table II: Confirmed PDN websites\n")
	fmt.Fprintf(&b, "%-28s %-12s %14s\n", "Website", "Provider", "MonthlyVisits")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-28s %-12s %14s\n", row.Domain, row.Provider, humanCount(row.MonthlyVisits))
	}
	return b.String()
}

// RenderTableIII prints the confirmed PDN apps (Table III shape).
func (r *DetectionResult) RenderTableIII() string {
	rows := append([]detector.ConfirmedApp(nil), r.Report.ConfirmedAppList...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Downloads > rows[j].Downloads })
	var b strings.Builder
	b.WriteString("Table III: Confirmed PDN apps\n")
	fmt.Fprintf(&b, "%-28s %-12s %14s\n", "App", "Provider", "Downloads")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-28s %-12s %14s\n", row.Package, row.Provider, humanCount(row.Downloads))
	}
	return b.String()
}

// RenderTableIV prints the confirmed private PDN services (Table IV
// shape: website, signaling server, monthly visits).
func (r *DetectionResult) RenderTableIV() string {
	rows := append([]detector.PrivateSite(nil), r.Report.ConfirmedPrivateList...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].MonthlyVisits > rows[j].MonthlyVisits })
	var b strings.Builder
	b.WriteString("Table IV: Confirmed private PDN services\n")
	fmt.Fprintf(&b, "%-22s %-44s %14s\n", "Website", "PDN server", "MonthlyVisits")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-22s %-44s %14s\n", row.Domain, row.Server, humanCount(row.MonthlyVisits))
	}
	fmt.Fprintf(&b, "(generic WebRTC matches: %d; dynamically analyzed top sites: %d; adult TURN relays: %d; WebRTC tracking: %d; untriggered: %d)\n",
		r.Report.GenericWebRTCSites, r.Report.TopDynamicSites, r.Report.AdultTURN, r.Report.TrackingOnly, r.Report.Untriggered)
	return b.String()
}

// RenderResourceSquattingWild prints the §IV-D cellular-configuration
// finding: apps whose recovered SDK config lets the PDN spend viewers'
// cellular data on uploads.
func (r *DetectionResult) RenderResourceSquattingWild() string {
	var b strings.Builder
	b.WriteString("§IV-D resource squatting in the wild (recovered SDK configs):\n")
	fmt.Fprintf(&b, "  apps allowing cellular upload: %d\n", len(r.Report.CellularUploadApps))
	for _, pkg := range r.Report.CellularUploadApps {
		fmt.Fprintf(&b, "    %s\n", pkg)
	}
	fmt.Fprintf(&b, "  apps in leech mode (cellular download only): %d\n", len(r.Report.LeechModeApps))
	return b.String()
}

func humanCount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.0fB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.0fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.0fK", float64(n)/1e3)
	default:
		return fmt.Sprint(n)
	}
}
