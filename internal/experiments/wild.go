package experiments

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/attack"
	"github.com/stealthy-peers/pdnsec/internal/capture"
	"github.com/stealthy-peers/pdnsec/internal/geoip"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/population"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

func mustAddr(s string) netip.Addr   { return netip.MustParseAddr(s) }
func mustAP(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

// IPLeakLabResult backs the §IV-D lab test: two remote peers exchange
// real addresses via STUN on every provider.
type IPLeakLabResult struct {
	PerProvider map[string]bool `json:"per_provider"` // provider -> leaked
}

// RunIPLeakLab runs the two-peer IP-leak test against each public
// provider plus the private profile.
func RunIPLeakLab(ctx context.Context) (*IPLeakLabResult, error) {
	res := &IPLeakLabResult{PerProvider: map[string]bool{}}
	profiles := append(provider.PublicProfiles(), provider.MangoPrivate())
	for _, prof := range profiles {
		v, err := analyzer.IPLeakTest(ctx, prof)
		if err != nil {
			return nil, fmt.Errorf("experiments: ip leak %s: %w", prof.Name, err)
		}
		res.PerProvider[prof.Name] = v.Vulnerable
	}
	return res, nil
}

// Render prints the lab outcome.
func (r *IPLeakLabResult) Render() string {
	var b strings.Builder
	b.WriteString("§IV-D IP leak (lab, two remote peers):\n")
	for _, prov := range []string{"peer5", "streamroot", "viblast", "mango-private"} {
		leaked, ok := r.PerProvider[prov]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-14s leaked=%v\n", prov, leaked)
	}
	return b.String()
}

// IPLeakWildResult backs the in-the-wild harvest: one controlled peer
// in a live channel for a simulated week.
type IPLeakWildResult struct {
	Channels []population.HarvestSummary `json:"channels"`
	Combined population.HarvestSummary   `json:"combined"`
}

// RunIPLeakWild replays the paper's two channel populations (Huya-like
// and RT-News-like) against a controlled peer's capture and runs the
// real harvest + classification pipeline over it.
func RunIPLeakWild(seed int64) (*IPLeakWildResult, error) {
	db := geoip.NewDB()
	controlled := mustAP("66.24.0.250:40000")
	res := &IPLeakWildResult{}

	var allAddrs []netip.Addr
	for i, model := range []population.ChannelModel{population.HuyaLike(), population.RTNewsLike()} {
		viewers, err := model.Generate(db, seed+int64(i))
		if err != nil {
			return nil, err
		}
		pkts := population.HarvestPackets(viewers, controlled, seed+int64(i))
		addrs := capture.HarvestPeerIPs(pkts, controlled.Addr())
		res.Channels = append(res.Channels, population.Summarize(model.Name, addrs, db))
		allAddrs = append(allAddrs, addrs...)
	}
	res.Combined = population.Summarize("combined", allAddrs, db)
	return res, nil
}

// Render prints the harvest the way §IV-D reports it.
func (r *IPLeakWildResult) Render() string {
	var b strings.Builder
	b.WriteString("§IV-D IP leak in the wild (controlled peer, one-week harvest):\n")
	for _, s := range append(r.Channels, r.Combined) {
		fmt.Fprintf(&b, "  %-14s total=%d public=%d bogons=%d (private=%d nat=%d reserved=%d) countries=%d cities=%d\n",
			s.Channel, s.Total, s.Public, s.Bogons, s.Private, s.SharedNAT, s.Reserved, s.Countries, s.Cities)
		for i, tc := range s.TopCountries {
			if i >= 3 {
				break
			}
			fmt.Fprintf(&b, "      top%d %s %d (%.0f%%)\n", i+1, tc.Country, tc.Count, tc.Share*100)
		}
	}
	return b.String()
}

// GeoMatchResult backs the §V-C geo-matching mitigation estimate.
type GeoMatchResult struct {
	Channel      string  `json:"channel"`
	ControlledIn string  `json:"controlled_in"`
	LeakedBefore int     `json:"leaked_before"`
	LeakedAfter  int     `json:"leaked_after"`
	ShareAfter   float64 `json:"share_after"`
}

// RunGeoMatchMitigation estimates how same-country matching shrinks the
// harvest: only viewers in the controlled peer's country remain visible.
// The paper: 35% of RT News leaks remain (US peer), 0% of Huya leaks
// (non-CN peer).
func RunGeoMatchMitigation(seed int64) ([]GeoMatchResult, error) {
	db := geoip.NewDB()
	cases := []struct {
		model        population.ChannelModel
		controlledIn string
	}{
		{population.RTNewsLike(), "US"},
		{population.HuyaLike(), "US"},
	}
	var out []GeoMatchResult
	for i, c := range cases {
		viewers, err := c.model.Generate(db, seed+int64(i))
		if err != nil {
			return nil, err
		}
		before, after := 0, 0
		for _, v := range viewers {
			if geoip.Classify(v.Addr) != geoip.ClassPublic {
				continue
			}
			before++
			if v.Country == c.controlledIn {
				after++
			}
		}
		res := GeoMatchResult{
			Channel:      c.model.Name,
			ControlledIn: c.controlledIn,
			LeakedBefore: before,
			LeakedAfter:  after,
		}
		if before > 0 {
			res.ShareAfter = float64(after) / float64(before)
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderGeoMatch prints the mitigation estimate.
func RenderGeoMatch(results []GeoMatchResult) string {
	var b strings.Builder
	b.WriteString("§V-C same-country matching mitigation:\n")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-14s controlled peer in %s: leaked %d -> %d (%.0f%%)\n",
			r.Channel, r.ControlledIn, r.LeakedBefore, r.LeakedAfter, r.ShareAfter*100)
	}
	return b.String()
}

// FreeRideBillingResult backs the §IV-B billing-impact demonstration.
type FreeRideBillingResult struct {
	Provider     string  `json:"provider"`
	P2PBytes     int64   `json:"p2p_bytes"`
	VictimUsage  int64   `json:"victim_usage_bytes"`
	VictimCost   float64 `json:"victim_cost_dollars"`
	JoinAccepted bool    `json:"join_accepted"`
}

// RunFreeRideBilling free-rides a Peer5-like service with attacker
// peers streaming the attacker's own video under the victim's key, and
// reads the victim's bill afterwards.
func RunFreeRideBilling(ctx context.Context, attackerPeers int) (*FreeRideBillingResult, error) {
	if attackerPeers < 2 {
		attackerPeers = 3
	}
	video := analyzer.SmallVideo("attacker-movie", 6, 64<<10)
	tb, err := analyzer.NewTestbed(ctx, analyzer.TestbedConfig{Profile: provider.Peer5(), Video: video, CustomerDomain: "victim.com"})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	hosts := make([]*netsim.Host, attackerPeers)
	for i := range hosts {
		h, err := tb.NewViewerHost("US")
		if err != nil {
			return nil, err
		}
		hosts[i] = h
	}
	res, err := attack.GenerateTraffic(ctx, attack.TrafficParams{
		Network:         tb.Net,
		SignalAddr:      tb.Dep.SignalAddr,
		STUNAddr:        tb.Dep.STUNAddr,
		CDNBase:         tb.CDNBase,
		StolenKey:       tb.Key,
		Origin:          "https://freerider.evil",
		Video:           video.ID,
		Rendition:       "360p",
		Hosts:           hosts,
		SegmentsPerPeer: video.Segments,
	})
	if err != nil {
		return nil, err
	}
	// Stats frames are sent just before each peer disconnects; give the
	// server a moment to process the last ones.
	timeout := time.NewTimer(5 * time.Second)
	defer timeout.Stop()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for waiting := true; waiting && tb.Dep.Keys.Usage("victim.com").P2PBytes < res.P2PBytes; {
		select {
		case <-timeout.C:
			waiting = false
		case <-ctx.Done():
			waiting = false
		case <-tick.C:
		}
	}
	return &FreeRideBillingResult{
		Provider:     "peer5",
		P2PBytes:     res.P2PBytes,
		VictimUsage:  tb.Dep.Keys.Usage("victim.com").P2PBytes,
		VictimCost:   tb.Dep.Keys.Cost("victim.com"),
		JoinAccepted: res.JoinAccepted,
	}, nil
}

// Render prints the billing impact.
func (r *FreeRideBillingResult) Render() string {
	return fmt.Sprintf("§IV-B free-riding billing: attacker generated %d P2P bytes; victim metered %d bytes, billed $%.6f (join accepted: %v)\n",
		r.P2PBytes, r.VictimUsage, r.VictimCost, r.JoinAccepted)
}

// ECDNResult backs the §VI Microsoft eCDN follow-up.
type ECDNResult struct {
	FreeRiding       bool `json:"free_riding"`
	SegmentPollution bool `json:"segment_pollution"`
}

// RunECDN checks the eCDN profile: free riding prevented (tenant ID not
// public), segment pollution still effective.
func RunECDN(ctx context.Context) (*ECDNResult, error) {
	prof := provider.ECDN()
	cd, err := analyzer.CrossDomainTest(ctx, prof)
	if err != nil {
		return nil, err
	}
	sp, err := analyzer.PollutionTest(ctx, prof, true, nil)
	if err != nil {
		return nil, err
	}
	return &ECDNResult{FreeRiding: cd.Vulnerable, SegmentPollution: sp.Vulnerable}, nil
}

// Render prints the eCDN outcome.
func (r *ECDNResult) Render() string {
	return fmt.Sprintf("§VI Microsoft eCDN: free riding = %v (tenant ID not public), segment pollution = %v\n",
		r.FreeRiding, r.SegmentPollution)
}
