package federation

import (
	"context"
	"errors"
	"fmt"
	"net/netip"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// maxRedirectHops bounds a redirect chain. A consistent ring resolves
// in one hop; more than a couple means the membership view is churning
// under us and the next bootstrap candidate is a better bet.
const maxRedirectHops = 4

// JoinResult is a successful bootstrap: a connected client, its
// welcome, and the server that finally admitted it (the swarm owner).
type JoinResult struct {
	Client  *signal.Client
	Welcome signal.Welcome
	// Server is the address of the admitting server — what the client
	// should prefer on reconnect while the owner stays alive.
	Server netip.AddrPort
}

// Join bootstraps a peer into its swarm through any live server. It
// walks the peerstore's candidates best-first, follows redirects to
// the swarm's owner (refreshing the store from each redirect's server
// list), and records reachability so dead servers back off. The
// request's AcceptRedirect flag is forced on: a federation-aware
// client always prefers one extra round trip over a spliced session.
//
// setup, when non-nil, runs on each freshly dialed client before its
// join round trip — the place to install OnRelay/OnPeerGone handlers
// so no early push is dropped.
//
// This is also the crash-recovery path: when a swarm's owner dies, the
// ring rebalances server-side, the dead address fails fast here and is
// marked down, and the next candidate redirects (or admits) the peer
// under the new ownership — no pinned address, no strand.
func Join(ctx context.Context, host *netsim.Host, store *Peerstore, req signal.JoinRequest, setup func(*signal.Client)) (*JoinResult, error) {
	req.AcceptRedirect = true
	var lastErr error
	for _, addr := range store.Candidates() {
		res, err := joinVia(ctx, host, store, addr, req, setup)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("federation: peerstore has no servers")
	}
	return nil, fmt.Errorf("federation: bootstrap failed: %w", lastErr)
}

// joinVia attempts one bootstrap entry point, following its redirect
// chain.
func joinVia(ctx context.Context, host *netsim.Host, store *Peerstore, addr netip.AddrPort, req signal.JoinRequest, setup func(*signal.Client)) (*JoinResult, error) {
	for hop := 0; hop <= maxRedirectHops; hop++ {
		cli, err := signal.Dial(ctx, host, addr)
		if err != nil {
			store.MarkBad(addr)
			return nil, err
		}
		if setup != nil {
			setup(cli)
		}
		w, err := cli.Join(ctx, req)
		if err == nil {
			store.MarkGood(addr)
			return &JoinResult{Client: cli, Welcome: w, Server: addr}, nil
		}
		cli.Close()

		var rd *signal.RedirectError
		if !errors.As(err, &rd) {
			// The server answered — auth failures and the like are not
			// reachability problems — but this join is going nowhere.
			store.MarkGood(addr)
			return nil, err
		}
		store.MarkGood(addr)
		next, perr := netip.ParseAddrPort(rd.Redirect.Addr)
		if perr != nil {
			return nil, fmt.Errorf("federation: bad redirect address %q: %w", rd.Redirect.Addr, perr)
		}
		learned := make([]netip.AddrPort, 0, len(rd.Redirect.Servers))
		for _, s := range rd.Redirect.Servers {
			if ap, err := netip.ParseAddrPort(s); err == nil {
				learned = append(learned, ap)
			}
		}
		store.Update(learned)
		addr = next
	}
	return nil, fmt.Errorf("federation: redirect chain exceeded %d hops", maxRedirectHops)
}
