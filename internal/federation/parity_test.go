package federation

import (
	"fmt"
	"net/netip"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// fedTrace is one plane's observable behavior with every peer ID
// normalized to its fingerprint, so a 1-server run ("p3") and a
// 4-server run ("s2p1") can be compared as what a viewer would
// actually experience.
type fedTrace struct {
	matches1 [][]string          // per join-order survivor row, fingerprint lists
	matches2 [][]string          // post-churn round
	relays   map[string]int      // "fromFp->toFp#seq" -> delivery count
	gone     map[string][]string // receiverFp -> sorted leaver fps
}

// fedPeer is one scripted client in the parity workload.
type fedPeer struct {
	c  *signal.Client
	fp string
	id string

	mu     sync.Mutex
	relays []string // "fromID#payload" raw, normalized later
	gone   []string // raw leaver IDs
}

// runFederatedWorkload drives the identical serial workload — joins
// across two swarms through rotated bootstrap lists, a match round, a
// churn wave, a second match round, then seq-numbered relays — against
// a plane with n servers, and returns the normalized trace.
func runFederatedWorkload(t *testing.T, n int, videos []string) *fedTrace {
	t.Helper()
	const peers = 24
	swarms := len(videos)
	reg := obs.NewRegistry()
	sim := netsim.New(netsim.Config{Seed: 11})
	hosts := make([]*netsim.Host, n)
	for i := range hosts {
		hosts[i] = sim.MustHost(netip.AddrFrom4([4]byte{44, 0, 0, byte(i + 1)}))
	}
	p := NewPlane(PlaneConfig{Servers: n, Base: signal.Config{Policy: signal.DefaultPolicy(), Seed: 7, Obs: reg}})
	if err := p.Serve(hosts, 443); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	seeds := p.Addrs()

	idToFp := make(map[string]string, peers)
	all := make([]*fedPeer, peers)
	for i := 0; i < peers; i++ {
		fp := fmt.Sprintf("fp%02d", i)
		pr := &fedPeer{fp: fp}
		host := sim.MustHost(netip.AddrFrom4([4]byte{66, 20, byte(n), byte(i + 1)}))
		rot := make([]netip.AddrPort, len(seeds))
		for j := range seeds {
			rot[j] = seeds[(i+j)%len(seeds)]
		}
		store := NewPeerstore(rot, time.Now)
		res, err := Join(testCtx, host, store, signal.JoinRequest{
			Video:       videos[i%swarms],
			Rendition:   "r",
			Fingerprint: fp,
		}, func(c *signal.Client) {
			c.OnRelay(func(rel signal.Relay) {
				pr.mu.Lock()
				pr.relays = append(pr.relays, rel.From+"#"+string(rel.Payload))
				pr.mu.Unlock()
			})
			c.OnPeerGone(func(id string) {
				pr.mu.Lock()
				pr.gone = append(pr.gone, id)
				pr.mu.Unlock()
			})
		})
		if err != nil {
			t.Fatalf("n=%d: join peer %d: %v", n, i, err)
		}
		t.Cleanup(func() { res.Client.Close() })
		pr.c, pr.id = res.Client, res.Welcome.PeerID
		idToFp[pr.id] = pr.fp
		all[i] = pr
	}

	if n > 1 {
		// The fan-out must actually be federated: the scripted swarms
		// were chosen to land on distinct owners of the 4-server ring.
		owners := make(map[string]bool)
		for _, v := range videos {
			owners[p.Owner(v+"/r")] = true
		}
		if len(owners) < 2 {
			t.Fatalf("n=%d: all swarms owned by one server %v; parity would not exercise federation", n, owners)
		}
	}

	tr := &fedTrace{relays: make(map[string]int), gone: make(map[string][]string)}
	match := func(dst *[][]string) {
		t.Helper()
		for i, pr := range all {
			if pr == nil {
				continue
			}
			infos, err := pr.c.GetPeers(testCtx, 5)
			if err != nil {
				t.Fatalf("n=%d: match peer %d: %v", n, i, err)
			}
			row := make([]string, len(infos))
			for k, in := range infos {
				row[k] = idToFp[in.ID]
			}
			*dst = append(*dst, row)
		}
	}
	match(&tr.matches1)

	// Churn: every fourth peer leaves, serially, each departure awaited
	// plane-wide so pool mutations stay ordered.
	for i := 3; i < peers; i += 4 {
		pr := all[i]
		all[i] = nil
		want := p.PeerCount() - 1
		pr.c.Close()
		waitFor(t, 15*time.Second, func() bool { return p.PeerCount() == want })
	}

	match(&tr.matches2)

	// Relay wave: every survivor sends one numbered frame along each of
	// its post-churn matches; every frame must arrive exactly once.
	seq, sent := 0, 0
	row := 0
	for i, pr := range all {
		if pr == nil {
			continue
		}
		for _, toFp := range tr.matches2[row] {
			to := all[fpIndex(toFp)]
			if to == nil {
				t.Fatalf("n=%d: peer %d matched churned peer %s post-churn", n, i, toFp)
			}
			if err := pr.c.Relay(to.id, "parity", seq); err != nil {
				t.Fatal(err)
			}
			seq++
			sent++
		}
		row++
	}
	waitFor(t, 15*time.Second, func() bool {
		got := 0
		for _, pr := range all {
			if pr != nil {
				pr.mu.Lock()
				got += len(pr.relays)
				pr.mu.Unlock()
			}
		}
		return got >= sent
	})

	for _, pr := range all {
		if pr == nil {
			continue
		}
		pr.mu.Lock()
		for _, raw := range pr.relays {
			var from string
			for id, fp := range idToFp {
				if len(raw) > len(id) && raw[:len(id)] == id && raw[len(id)] == '#' {
					from = fp + raw[len(id):]
					break
				}
			}
			tr.relays[from+"->"+pr.fp]++
		}
		fps := make([]string, 0, len(pr.gone))
		for _, id := range pr.gone {
			fps = append(fps, idToFp[id])
		}
		sort.Strings(fps)
		tr.gone[pr.fp] = fps
		pr.mu.Unlock()
	}
	if got := len(tr.relays); got != sent {
		t.Fatalf("n=%d: %d distinct relays delivered, want %d", n, got, sent)
	}
	return tr
}

func fpIndex(fp string) int {
	var i int
	fmt.Sscanf(fp, "fp%d", &i)
	return i
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met before timeout")
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFederationParity is the subsystem's acceptance property: for the
// same seed and the same scripted workload, a 1-server plane and a
// 4-server plane produce identical observable behavior — the same
// pairing decisions, the same exactly-once relay deliveries, and the
// same departure-notice audiences — modulo peer-ID namespacing, which
// the traces normalize away via fingerprints. Federation is a routing
// layer, never a behavior change.
func TestFederationParity(t *testing.T) {
	// Pick two swarms with provably distinct owners on the 4-server
	// ring — the ring is deterministic, so the scan is too.
	ring := NewRing(0)
	for i := 0; i < 4; i++ {
		ring.Add(fmt.Sprintf("s%d", i), testAddr(i))
	}
	first, _, _ := ring.Owner("w0/r")
	videos := []string{"w0"}
	for i := 1; len(videos) < 2 && i < 64; i++ {
		v := fmt.Sprintf("w%d", i)
		if owner, _, _ := ring.Owner(v + "/r"); owner != first {
			videos = append(videos, v)
		}
	}
	if len(videos) < 2 {
		t.Fatal("no second swarm with a distinct owner in 64 candidates")
	}

	base := runFederatedWorkload(t, 1, videos)
	fed := runFederatedWorkload(t, 4, videos)

	if !reflect.DeepEqual(base.matches1, fed.matches1) {
		t.Errorf("first-round pairings diverge:\n1 server: %v\n4 servers: %v", base.matches1, fed.matches1)
	}
	if !reflect.DeepEqual(base.matches2, fed.matches2) {
		t.Errorf("post-churn pairings diverge:\n1 server: %v\n4 servers: %v", base.matches2, fed.matches2)
	}
	if !reflect.DeepEqual(base.relays, fed.relays) {
		t.Errorf("delivered relay multisets diverge:\n1 server: %v\n4 servers: %v", base.relays, fed.relays)
	}
	if !reflect.DeepEqual(base.gone, fed.gone) {
		t.Errorf("departure audiences diverge:\n1 server: %v\n4 servers: %v", base.gone, fed.gone)
	}
}
