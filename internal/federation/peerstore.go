package federation

import (
	"net/netip"
	"sort"
	"sync"
	"time"
)

// Backoff bounds for bootstrap retry scheduling.
const (
	backoffBase = 250 * time.Millisecond
	backoffMax  = 8 * time.Second
)

// serverState is the peerstore's health record for one bootstrap
// server.
type serverState struct {
	addr     netip.AddrPort
	lastSeen time.Time // last successful contact (zero until first)
	fails    int       // consecutive failures since lastSeen
	retryAt  time.Time // don't prefer this server before then
	order    int       // insertion order, for deterministic iteration
}

// Peerstore tracks the known bootstrap servers of a signaling plane:
// the seed list the client shipped with, plus every server a redirect
// response advertised, with last-seen timestamps and exponential
// backoff for servers that stopped answering. It is the discovery
// layer that lets a peer rejoin after its swarm's owner crashes: the
// dead owner backs off, the next candidate answers, and the refreshed
// server list from its redirect replaces the stale view.
//
// The clock is injected so deterministic packages can drive it from a
// simulated time source; all methods are safe for concurrent use.
type Peerstore struct {
	now func() time.Time

	mu      sync.Mutex
	servers map[netip.AddrPort]*serverState
	nextOrd int
}

// NewPeerstore seeds a store with the shipped server list. now
// supplies the clock (time.Now outside deterministic packages).
func NewPeerstore(seeds []netip.AddrPort, now func() time.Time) *Peerstore {
	p := &Peerstore{now: now, servers: make(map[netip.AddrPort]*serverState)}
	p.Update(seeds)
	return p
}

// Update merges newly learned server addresses (from a redirect's
// Servers list). Known addresses keep their health state; new ones
// start fresh.
func (p *Peerstore) Update(addrs []netip.AddrPort) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, a := range addrs {
		if !a.IsValid() {
			continue
		}
		if _, ok := p.servers[a]; !ok {
			p.servers[a] = &serverState{addr: a, order: p.nextOrd}
			p.nextOrd++
		}
	}
}

// MarkGood records a successful contact: last-seen advances and any
// backoff clears.
func (p *Peerstore) MarkGood(addr netip.AddrPort) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.servers[addr]
	if !ok {
		st = &serverState{addr: addr, order: p.nextOrd}
		p.nextOrd++
		p.servers[addr] = st
	}
	st.lastSeen = p.now()
	st.fails = 0
	st.retryAt = time.Time{}
}

// MarkBad records a failed contact and schedules exponential backoff:
// 250ms doubling to 8s.
func (p *Peerstore) MarkBad(addr netip.AddrPort) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.servers[addr]
	if !ok {
		return
	}
	st.fails++
	d := backoffBase << (st.fails - 1)
	if d > backoffMax || d <= 0 {
		d = backoffMax
	}
	st.retryAt = p.now().Add(d)
}

// LastSeen returns when addr last answered (zero time if never or
// unknown).
func (p *Peerstore) LastSeen(addr netip.AddrPort) time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.servers[addr]; ok {
		return st.lastSeen
	}
	return time.Time{}
}

// Candidates returns every known server, best first: servers not in
// backoff in insertion order, then backed-off servers by earliest
// retry time. Backed-off servers are still returned — when the whole
// plane looks down, trying the least-recently-failed server beats
// bricking the client — they are just tried last.
func (p *Peerstore) Candidates() []netip.AddrPort {
	now := p.now()
	p.mu.Lock()
	ready := make([]*serverState, 0, len(p.servers))
	waiting := make([]*serverState, 0)
	for _, st := range p.servers {
		if st.retryAt.After(now) {
			waiting = append(waiting, st)
		} else {
			ready = append(ready, st)
		}
	}
	p.mu.Unlock()
	sort.Slice(ready, func(i, j int) bool { return ready[i].order < ready[j].order })
	sort.Slice(waiting, func(i, j int) bool {
		if !waiting[i].retryAt.Equal(waiting[j].retryAt) {
			return waiting[i].retryAt.Before(waiting[j].retryAt)
		}
		return waiting[i].order < waiting[j].order
	})
	out := make([]netip.AddrPort, 0, len(ready)+len(waiting))
	for _, st := range ready {
		out = append(out, st.addr)
	}
	for _, st := range waiting {
		out = append(out, st.addr)
	}
	return out
}

// Len reports how many servers the store knows.
func (p *Peerstore) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.servers)
}
