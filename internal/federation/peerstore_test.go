package federation

import (
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-cranked time source for deterministic backoff
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestPeerstoreCandidatesOrderAndBackoff(t *testing.T) {
	a, b, c := testAddr(0), testAddr(1), testAddr(2)
	clk := newFakeClock()
	ps := NewPeerstore([]netip.AddrPort{a, b, c}, clk.now)

	if got := ps.Candidates(); !reflect.DeepEqual(got, []netip.AddrPort{a, b, c}) {
		t.Fatalf("fresh candidates = %v, want seed order", got)
	}

	// One failure sends a to the back of the line but never drops it —
	// a fully backed-off store must still offer every server.
	ps.MarkBad(a)
	if got := ps.Candidates(); !reflect.DeepEqual(got, []netip.AddrPort{b, c, a}) {
		t.Fatalf("after MarkBad(a): %v", got)
	}

	// b fails twice: its retry time (1000ms+500ms) sorts after a's
	// (1000ms+250ms) among the backed-off tail.
	ps.MarkBad(b)
	ps.MarkBad(b)
	if got := ps.Candidates(); !reflect.DeepEqual(got, []netip.AddrPort{c, a, b}) {
		t.Fatalf("after double MarkBad(b): %v", got)
	}

	// Backoff expires on the injected clock: everything becomes ready
	// again in insertion order.
	clk.advance(time.Second)
	if got := ps.Candidates(); !reflect.DeepEqual(got, []netip.AddrPort{a, b, c}) {
		t.Fatalf("after backoff expiry: %v", got)
	}

	// Success clears failure state entirely.
	ps.MarkBad(a)
	ps.MarkGood(a)
	if got := ps.Candidates(); !reflect.DeepEqual(got, []netip.AddrPort{a, b, c}) {
		t.Fatalf("after MarkGood(a): %v", got)
	}
	if seen := ps.LastSeen(a); !seen.Equal(clk.now()) {
		t.Errorf("LastSeen(a) = %v, want %v", seen, clk.now())
	}
	if seen := ps.LastSeen(b); !seen.IsZero() {
		t.Errorf("LastSeen(b) = %v, want zero (never answered)", seen)
	}
}

func TestPeerstoreBackoffCapsAt8s(t *testing.T) {
	a := testAddr(0)
	clk := newFakeClock()
	ps := NewPeerstore([]netip.AddrPort{a, testAddr(1)}, clk.now)
	// 40 consecutive failures would left-shift into overflow without the
	// cap; the retry horizon must stay at backoffMax.
	for i := 0; i < 40; i++ {
		ps.MarkBad(a)
	}
	clk.advance(backoffMax - time.Millisecond)
	if got := ps.Candidates()[0]; got != testAddr(1) {
		t.Fatalf("a should still be backed off just before the cap, candidates lead with %v", got)
	}
	clk.advance(2 * time.Millisecond)
	if got := ps.Candidates(); !reflect.DeepEqual(got, []netip.AddrPort{a, testAddr(1)}) {
		t.Fatalf("a should be ready after the 8s cap: %v", got)
	}
}

func TestPeerstoreUpdateMergesWithoutResettingHealth(t *testing.T) {
	a, b, c := testAddr(0), testAddr(1), testAddr(2)
	clk := newFakeClock()
	ps := NewPeerstore([]netip.AddrPort{a}, clk.now)
	ps.MarkBad(a)

	// A redirect advertises (a, b, c): a keeps its backoff, b and c are
	// appended in learned order; the invalid zero addr is dropped.
	ps.Update([]netip.AddrPort{a, b, {}, c})
	if ps.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ps.Len())
	}
	if got := ps.Candidates(); !reflect.DeepEqual(got, []netip.AddrPort{b, c, a}) {
		t.Fatalf("after merge: %v (a must still be backed off)", got)
	}

	// MarkGood on an unknown server adopts it — the admitting owner may
	// not have been in any redirect list yet.
	d := testAddr(3)
	ps.MarkGood(d)
	if ps.Len() != 4 {
		t.Fatalf("Len = %d after adopting d, want 4", ps.Len())
	}
	if seen := ps.LastSeen(d); seen.IsZero() {
		t.Error("adopted server has zero last-seen")
	}
	// MarkBad on a totally unknown address is a no-op, not a panic.
	ps.MarkBad(testAddr(9))
	if ps.Len() != 4 {
		t.Fatalf("Len changed on unknown MarkBad: %d", ps.Len())
	}
}
