package federation

import (
	"fmt"
	"net/netip"
	"sync"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// PlaneConfig parameterizes a federated signaling plane.
type PlaneConfig struct {
	// Servers is the number of signal.Server instances (default 1 — the
	// single-server deployment every earlier PR ran).
	Servers int
	// Vnodes is the ring's virtual-node count per server
	// (DefaultVnodes when zero).
	Vnodes int
	// Base is the per-server configuration template. ServerName and
	// Router are owned by the plane and overwritten; everything else
	// (auth, policy, seed, shards, obs, tracer) is shared verbatim, so
	// a swarm's matching sequence depends only on (Seed, swarm ID) —
	// never on which server owns it. That seed discipline is what makes
	// 1-server and 4-server planes observably identical.
	Base signal.Config
	// Traces, when set, gives each server its own process-stamped tracer
	// from the set (keyed by server name), overriding Base.Tracer. This
	// is what makes a federated trace attributable: without it every
	// server would write spans into one shared tracer and pdntrace could
	// not tell ingress from owner.
	Traces *obs.TraceSet
}

// planeMember is one server slot in the plane.
type planeMember struct {
	name string
	srv  *signal.Server
	addr netip.AddrPort
	live bool
}

// Plane is a set of federated signal.Servers sharing one consistent-
// hash ring. Each server sees the ring through its own Router view, so
// a join landing anywhere is redirected or proxied to the swarm's
// owner. With Servers=1 the ring has one arc and every route is local:
// the single-server path is this same code, not a bypass.
type Plane struct {
	ring *Ring

	mu      sync.Mutex
	members []*planeMember
}

// memberRouter is one server's view of the plane's ring.
type memberRouter struct {
	p    *Plane
	self string
}

// Route implements signal.Router.
func (r *memberRouter) Route(swarmID string) signal.Route {
	name, addr, ok := r.p.ring.Owner(swarmID)
	if !ok || name == r.self {
		return signal.Route{Server: r.self, Local: true}
	}
	return signal.Route{Server: name, Addr: addr}
}

// Servers implements signal.Router.
func (r *memberRouter) Servers() []netip.AddrPort { return r.p.ring.Addrs() }

// NewPlane builds the plane's servers (delivery pipelines started, not
// yet listening — call Serve). Server i is named "s<i>"; with one
// server the signal ServerName is left empty so peer IDs keep the
// seed-era "pN" format.
func NewPlane(cfg PlaneConfig) *Plane {
	n := cfg.Servers
	if n <= 0 {
		n = 1
	}
	p := &Plane{ring: NewRing(cfg.Vnodes)}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%d", i)
		sc := cfg.Base
		if n > 1 {
			sc.ServerName = name
		}
		sc.Router = &memberRouter{p: p, self: name}
		if cfg.Traces != nil {
			sc.Tracer = cfg.Traces.Tracer(name)
		}
		p.members = append(p.members, &planeMember{name: name, srv: signal.NewServer(sc)})
	}
	return p
}

// Serve binds server i to hosts[i] on the given port and places it on
// the ring. Exactly one host per server.
func (p *Plane) Serve(hosts []*netsim.Host, port uint16) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(hosts) != len(p.members) {
		return fmt.Errorf("federation: %d hosts for %d servers", len(hosts), len(p.members))
	}
	for i, m := range p.members {
		if err := m.srv.Serve(hosts[i], port); err != nil {
			return fmt.Errorf("federation: serve %s: %w", m.name, err)
		}
		m.addr = netip.AddrPortFrom(hosts[i].VisibleAddr(), port)
		m.live = true
		p.ring.Add(m.name, m.addr)
	}
	return nil
}

// N reports the plane's server-slot count (live or failed).
func (p *Plane) N() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.members)
}

// Server returns server i (nil when out of range). Failed servers are
// still returned; check the ring for liveness.
func (p *Plane) Server(i int) *signal.Server {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.members) {
		return nil
	}
	return p.members[i].srv
}

// Addr returns server i's signaling address (zero before Serve).
func (p *Plane) Addr(i int) netip.AddrPort {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.members) {
		return netip.AddrPort{}
	}
	return p.members[i].addr
}

// Addrs returns the live servers' addresses — the seed list clients
// bootstrap from.
func (p *Plane) Addrs() []netip.AddrPort { return p.ring.Addrs() }

// Ring exposes the ownership ring (tests, monitoring).
func (p *Plane) Ring() *Ring { return p.ring }

// Owner returns the name of the server owning the given swarm.
func (p *Plane) Owner(swarmID string) string {
	name, _, _ := p.ring.Owner(swarmID)
	return name
}

// PeerCount sums connected peers across live servers.
func (p *Plane) PeerCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, m := range p.members {
		if m.live {
			total += m.srv.PeerCount()
		}
	}
	return total
}

// Fail simulates server i crashing: it leaves the ring first (so
// routers stop sending peers there) and then shuts down, severing its
// sessions. Its swarms' arcs fall to the ring's survivors; stranded
// peers re-bootstrap through the peerstore and land on the new owners.
func (p *Plane) Fail(i int) error {
	p.mu.Lock()
	if i < 0 || i >= len(p.members) {
		p.mu.Unlock()
		return fmt.Errorf("federation: no server %d", i)
	}
	m := p.members[i]
	if !m.live {
		p.mu.Unlock()
		return nil
	}
	m.live = false
	p.mu.Unlock()
	p.ring.Remove(m.name)
	return m.srv.Close()
}

// Close shuts down every live server.
func (p *Plane) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	for _, m := range p.members {
		if !m.live {
			continue
		}
		m.live = false
		p.ring.Remove(m.name)
		if err := m.srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
