package federation

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

var testCtx = context.Background()

// testPlane boots an n-server plane on its own simulated network and
// returns it with the shared registry and a host factory for clients.
func testPlane(t *testing.T, n int, seed int64) (*Plane, *obs.Registry, func() *netsim.Host) {
	t.Helper()
	reg := obs.NewRegistry()
	net := netsim.New(netsim.Config{Seed: seed})
	hosts := make([]*netsim.Host, n)
	for i := range hosts {
		hosts[i] = net.MustHost(netip.AddrFrom4([4]byte{44, 0, 0, byte(i + 1)}))
	}
	p := NewPlane(PlaneConfig{Servers: n, Base: signal.Config{Policy: signal.DefaultPolicy(), Seed: seed, Obs: reg}})
	if err := p.Serve(hosts, 443); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	next := byte(1)
	return p, reg, func() *netsim.Host {
		h := net.MustHost(netip.AddrFrom4([4]byte{66, 10, 0, next}))
		next++
		return h
	}
}

// swarmOwnedBy hunts for a video whose swarm lands on the wanted
// server — the ring is deterministic, so the scan always terminates at
// the same video.
func swarmOwnedBy(t *testing.T, p *Plane, server string) string {
	t.Helper()
	for i := 0; i < 64; i++ {
		v := fmt.Sprintf("vod-%d", i)
		if p.Owner(v+"/720p") == server {
			return v
		}
	}
	t.Fatalf("no swarm owned by %s in 64 candidates", server)
	return ""
}

func serverIndex(t *testing.T, name string) int {
	t.Helper()
	var i int
	if _, err := fmt.Sscanf(name, "s%d", &i); err != nil {
		t.Fatalf("bad server name %q", name)
	}
	return i
}

// TestPlaneRedirectPath pins the opt-in redirect flow: a join for a
// remote swarm answered with the owner's address plus the full server
// list, and a federation.Join that follows it to the owner.
func TestPlaneRedirectPath(t *testing.T) {
	p, reg, newHost := testPlane(t, 3, 7)
	video := swarmOwnedBy(t, p, "s1")

	// Raw client against the wrong server: the redirect surfaces as a
	// typed error carrying the owner and the bootstrap list.
	cli, err := signal.Dial(testCtx, newHost(), p.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Join(testCtx, signal.JoinRequest{Video: video, Rendition: "720p", Fingerprint: "fpA", AcceptRedirect: true})
	var rd *signal.RedirectError
	if !errors.As(err, &rd) {
		t.Fatalf("join via non-owner returned %v, want RedirectError", err)
	}
	if rd.Redirect.Owner != "s1" {
		t.Errorf("redirect owner = %q, want s1", rd.Redirect.Owner)
	}
	if rd.Redirect.Addr != p.Addr(1).String() {
		t.Errorf("redirect addr = %q, want %v", rd.Redirect.Addr, p.Addr(1))
	}
	if len(rd.Redirect.Servers) != 3 {
		t.Errorf("redirect advertised %d servers, want 3", len(rd.Redirect.Servers))
	}
	if got := reg.Counter("signal_redirects_total", "").Value(); got == 0 {
		t.Error("signal_redirects_total never incremented")
	}

	// The bootstrap path follows the same redirect and lands on the
	// owner; the peerstore learns the other two servers from it.
	store := NewPeerstore([]netip.AddrPort{p.Addr(0)}, time.Now)
	res, err := Join(testCtx, newHost(), store, signal.JoinRequest{Video: video, Rendition: "720p", Fingerprint: "fpB"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Client.Close()
	if res.Server != p.Addr(1) {
		t.Errorf("bootstrap admitted by %v, want owner %v", res.Server, p.Addr(1))
	}
	if !strings.HasPrefix(res.Welcome.PeerID, "s1p") {
		t.Errorf("peer ID %q not in the owner's namespace", res.Welcome.PeerID)
	}
	if store.Len() != 3 {
		t.Errorf("peerstore knows %d servers after redirect, want 3", store.Len())
	}
}

// TestPlaneProxyPath pins the transparent path for clients that never
// opted into redirects: the ingress splices the session through to the
// owner, relays flow end to end, and the forwarded-frames counter
// proves the link carried them.
func TestPlaneProxyPath(t *testing.T) {
	p, reg, newHost := testPlane(t, 3, 7)
	video := swarmOwnedBy(t, p, "s2")

	join := func(via netip.AddrPort, fp string) (*signal.Client, signal.Welcome) {
		t.Helper()
		cli, err := signal.Dial(testCtx, newHost(), via)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		w, err := cli.Join(testCtx, signal.JoinRequest{Video: video, Rendition: "720p", Fingerprint: fp})
		if err != nil {
			t.Fatalf("proxied join via %v: %v", via, err)
		}
		return cli, w
	}

	// Both peers enter through the WRONG server with no AcceptRedirect:
	// a legacy client that only knows one address.
	c1, w1 := join(p.Addr(0), "fp1")
	c2, w2 := join(p.Addr(1), "fp2")
	for _, w := range []signal.Welcome{w1, w2} {
		if !strings.HasPrefix(w.PeerID, "s2p") {
			t.Errorf("proxied peer got ID %q, want owner namespace s2p*", w.PeerID)
		}
	}

	got := make(chan signal.Relay, 1)
	c2.OnRelay(func(rel signal.Relay) { got <- rel })

	infos, err := c1.GetPeers(testCtx, 4)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range infos {
		if in.ID == w2.PeerID {
			found = true
		}
	}
	if !found {
		t.Fatalf("proxied peers not matched to each other: %v", infos)
	}
	if err := c1.Relay(w2.PeerID, "offer", 1); err != nil {
		t.Fatal(err)
	}
	select {
	case rel := <-got:
		if rel.From != w1.PeerID {
			t.Errorf("relay from %q, want %q", rel.From, w1.PeerID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("relay never crossed the spliced sessions")
	}
	if fwd := reg.Counter("signal_forwarded_relays_total", "").Value(); fwd == 0 {
		t.Error("signal_forwarded_relays_total = 0; the proxy link carried nothing?")
	}
}

// TestPlaneOwnerCrashRebalance pins crash recovery end to end: the
// owner dies, the ring hands its arcs to the survivors, and a stranded
// peer re-bootstrapping through its peerstore is admitted by the new
// owner — without ever pinning a server address.
func TestPlaneOwnerCrashRebalance(t *testing.T) {
	p, _, newHost := testPlane(t, 3, 7)
	video := swarmOwnedBy(t, p, "s0")

	store := NewPeerstore(p.Addrs(), time.Now)
	res, err := Join(testCtx, newHost(), store, signal.JoinRequest{Video: video, Rendition: "720p", Fingerprint: "fpX"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Server != p.Addr(0) {
		t.Fatalf("admitted by %v, want s0 %v", res.Server, p.Addr(0))
	}
	res.Client.Close()

	if err := p.Fail(0); err != nil {
		t.Fatal(err)
	}
	newOwner := p.Owner(video + "/720p")
	if newOwner == "s0" || newOwner == "" {
		t.Fatalf("ring did not rebalance: owner still %q", newOwner)
	}

	// Re-bootstrap: s0 fails fast and backs off, a survivor redirects
	// (or admits) under the new ownership.
	res2, err := Join(testCtx, newHost(), store, signal.JoinRequest{Video: video, Rendition: "720p", Fingerprint: "fpX"}, nil)
	if err != nil {
		t.Fatalf("re-bootstrap after owner crash: %v", err)
	}
	defer res2.Client.Close()
	if want := p.Addr(serverIndex(t, newOwner)); res2.Server != want {
		t.Errorf("re-admitted by %v, want new owner %s at %v", res2.Server, newOwner, want)
	}
	if !strings.HasPrefix(res2.Welcome.PeerID, newOwner+"p") {
		t.Errorf("recovered peer ID %q not in %s's namespace", res2.Welcome.PeerID, newOwner)
	}

	// The dead server is now the store's last resort, not its first.
	if cand := store.Candidates(); cand[len(cand)-1] != p.Addr(0) {
		t.Errorf("dead s0 should be the last candidate: %v", cand)
	}
}

// TestPlaneSingleServerKeepsSeedBehavior pins the N=1 special case:
// same code path, no redirects, and peer IDs keep the seed-era "pN"
// format so single-server deployments are byte-compatible.
func TestPlaneSingleServerKeepsSeedBehavior(t *testing.T) {
	p, reg, newHost := testPlane(t, 1, 7)
	store := NewPeerstore(p.Addrs(), time.Now)
	res, err := Join(testCtx, newHost(), store, signal.JoinRequest{Video: "v", Rendition: "r", Fingerprint: "fp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Client.Close()
	if strings.Contains(res.Welcome.PeerID, "s0") {
		t.Errorf("N=1 peer ID %q carries a server prefix", res.Welcome.PeerID)
	}
	if got := reg.Counter("signal_redirects_total", "").Value(); got != 0 {
		t.Errorf("N=1 plane issued %d redirects", got)
	}
	if p.Owner("v/r") != "s0" {
		t.Errorf("owner = %q, want s0", p.Owner("v/r"))
	}
	if p.PeerCount() != 1 {
		t.Errorf("PeerCount = %d, want 1", p.PeerCount())
	}
}
