// Package federation scales the signaling plane past one server: a
// consistent-hash ring assigns every swarm to exactly one of N
// signal.Server instances, a bootstrap peerstore lets clients join
// through *any* live server and be redirected (or transparently
// proxied) to the swarm's owner, and a Plane ties both to running
// servers on simulated hosts.
//
// The design models what the paper's measurements imply about
// commercial PDN back-ends: providers operate fleets of signaling
// servers fronting millions of concurrent viewers, clients bootstrap
// through a published server list, and any server can route a session
// to the regional tier that owns it (cf. the smartrouter peer-CDN
// architecture). A single-server deployment is the N=1 special case of
// the same machinery, which is what the federation-parity test pins.
package federation

import (
	"hash/fnv"
	"net/netip"
	"sort"
	"sync"
)

// DefaultVnodes is the virtual-node count per server. 64 keeps the
// max/min ownership skew under 1.3 for realistic swarm populations
// (pinned by TestRingSkew) at a memory cost of 64 points per server.
const DefaultVnodes = 64

// Member is one server on the ring.
type Member struct {
	Name string
	Addr netip.AddrPort
}

// point is one virtual node: a position on the hash circle owned by a
// server.
type point struct {
	h    uint64
	node string
}

// Ring is a consistent-hash ring mapping swarm IDs to servers. Adding
// or removing a server moves only the swarms whose arc changed hands
// (~1/N of the space), so an owner crash rebalances without
// reshuffling every swarm — the minimal-movement property
// TestRingMinimalMovement pins. All methods are safe for concurrent
// use; lookups take a read lock only.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point
	nodes  map[string]netip.AddrPort
}

// NewRing returns an empty ring with the given virtual-node count per
// server (DefaultVnodes when <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]netip.AddrPort)}
}

// mix64 is a murmur3-style finalizer. Raw FNV-1a has weak avalanche in
// the high bits for short, similar keys ("load-0", "load-1", ...):
// sequential swarm IDs cluster on the circle and an unmixed ring skews
// worse than 30x. One finalizer pass restores uniformity and keeps the
// 1.3 skew bound honest.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fnv64 hashes s with FNV-1a — the repo's standard non-cryptographic
// hash (shard keying, swarm seeding) — plus the avalanche finalizer.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// ringSalt seasons vnode placement. The layout is deterministic
// forever, so the constant was chosen (by exhaustive scan over the
// plane's "s0".."s7" name space) to keep the worst-case arc-share skew
// across 2..8-server fleets at 1.19 — comfortably inside the 1.3 bound
// TestRingSkew pins — without raising the vnode count.
const ringSalt = 1694

// vnodeHash places virtual node i of a server on the circle. The
// layout depends only on the server name, so every Plane member and
// every test derives the identical assignment — the golden-assignment
// guarantee.
func vnodeHash(name string, i int) uint64 {
	salt := uint16(ringSalt)
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{'#', byte(i), byte(i >> 8), byte(salt), byte(salt >> 8), 0, 0})
	return mix64(h.Sum64())
}

// Add places a server (and its virtual nodes) on the ring. Re-adding
// an existing name updates its address without moving any points.
func (r *Ring) Add(name string, addr netip.AddrPort) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[name]; ok {
		r.nodes[name] = addr
		return
	}
	r.nodes[name] = addr
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{h: vnodeHash(name, i), node: name})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove takes a server off the ring; its arcs fall to the next
// points on the circle.
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[name]; !ok {
		return
	}
	delete(r.nodes, name)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != name {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the server owning swarmID. ok is false on an empty
// ring.
func (r *Ring) Owner(swarmID string) (name string, addr netip.AddrPort, ok bool) {
	h := fnv64(swarmID)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", netip.AddrPort{}, false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	name = r.points[i].node
	return name, r.nodes[name], true
}

// Members returns the live servers sorted by name.
func (r *Ring) Members() []Member {
	r.mu.RLock()
	out := make([]Member, 0, len(r.nodes))
	for name, addr := range r.nodes {
		out = append(out, Member{Name: name, Addr: addr})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Addrs returns the live servers' addresses in name order — the
// bootstrap list a redirect response carries.
func (r *Ring) Addrs() []netip.AddrPort {
	members := r.Members()
	out := make([]netip.AddrPort, len(members))
	for i, m := range members {
		out[i] = m.Addr
	}
	return out
}

// Len reports the number of live servers.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}
