package federation

import (
	"fmt"
	"net/netip"
	"strconv"
	"testing"
)

func testAddr(i int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}), 443)
}

func ringOf(n int) *Ring {
	r := NewRing(DefaultVnodes)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("s%d", i), testAddr(i))
	}
	return r
}

// TestRingSkew pins the load-balance property DefaultVnodes buys: over
// a realistic swarm population the busiest server owns less than 1.3x
// the quietest server's share.
func TestRingSkew(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		ring := ringOf(n)
		counts := make(map[string]int, n)
		const swarms = 20000
		for i := 0; i < swarms; i++ {
			name, _, ok := ring.Owner("load-" + strconv.Itoa(i))
			if !ok {
				t.Fatalf("n=%d: no owner for swarm %d", n, i)
			}
			counts[name]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d servers own swarms: %v", n, len(counts), counts)
		}
		min, max := swarms, 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		ratio := float64(max) / float64(min)
		t.Logf("n=%d: ownership %v, skew %.3f", n, counts, ratio)
		if ratio >= 1.3 {
			t.Errorf("n=%d: ownership skew %.3f >= 1.3 (min %d, max %d)", n, ratio, min, max)
		}
	}
}

// TestRingGoldenAssignment pins the exact owner of a fixed swarm set on
// a 3-server ring. The assignment is pure function of the server names
// and vnode hashing — if this test moves, every deployed router
// disagrees with every client's expectation mid-rollout, so changing
// it is a breaking protocol change, not a refactor.
func TestRingGoldenAssignment(t *testing.T) {
	ring := ringOf(3)
	golden := map[string]string{
		"load-0":      "s0",
		"load-1":      "s2",
		"load-2":      "s1",
		"load-3":      "s0",
		"load-4":      "s0",
		"load-5":      "s0",
		"load-6":      "s2",
		"load-7":      "s2",
		"vod:news":    "s0",
		"vod:sports":  "s0",
		"live:launch": "s2",
	}
	for swarm, want := range golden {
		got, addr, ok := ring.Owner(swarm)
		if !ok {
			t.Fatalf("no owner for %q", swarm)
		}
		if got != want {
			t.Errorf("Owner(%q) = %s, want %s", swarm, got, want)
		}
		if !addr.IsValid() {
			t.Errorf("Owner(%q) returned invalid addr", swarm)
		}
	}
}

// TestRingMinimalMovement pins consistent hashing's defining property:
// membership changes move only the arcs that changed hands. A leave
// moves exactly the departed server's swarms; a re-join restores the
// original assignment byte for byte; a fresh join steals roughly 1/N+1
// of the space and nothing else moves.
func TestRingMinimalMovement(t *testing.T) {
	const swarms = 10000
	ring := ringOf(4)
	before := make(map[string]string, swarms)
	for i := 0; i < swarms; i++ {
		id := "load-" + strconv.Itoa(i)
		before[id], _, _ = ring.Owner(id)
	}

	// Leave: only s3's swarms may move, and they must all move.
	ring.Remove("s3")
	moved := 0
	for id, was := range before {
		now, _, _ := ring.Owner(id)
		if was == "s3" {
			if now == "s3" {
				t.Fatalf("%s still owned by removed s3", id)
			}
			moved++
		} else if now != was {
			t.Errorf("%s moved %s -> %s though s3's departure didn't touch it", id, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("s3 owned nothing; skew test should have caught this")
	}

	// Re-join: the assignment must return to the original exactly.
	ring.Add("s3", testAddr(3))
	for id, was := range before {
		if now, _, _ := ring.Owner(id); now != was {
			t.Errorf("after re-add, %s owned by %s, want %s", id, now, was)
		}
	}

	// Fresh join: s4 takes some arcs; every other swarm stays put.
	ring.Add("s4", testAddr(4))
	stolen := 0
	for id, was := range before {
		now, _, _ := ring.Owner(id)
		switch {
		case now == was:
		case now == "s4":
			stolen++
		default:
			t.Errorf("%s moved %s -> %s on s4's join without s4 taking it", id, was, now)
		}
	}
	frac := float64(stolen) / swarms
	t.Logf("s4 join moved %d/%d swarms (%.3f)", stolen, swarms, frac)
	if frac < 0.10 || frac > 0.35 {
		t.Errorf("s4 took %.3f of the space, want roughly 1/5 (0.10..0.35)", frac)
	}
}

// TestRingEdgeCases covers the empty ring, address updates, and
// idempotent removal.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if _, _, ok := r.Owner("anything"); ok {
		t.Error("empty ring claimed an owner")
	}
	r.Add("s0", testAddr(0))
	name, addr, ok := r.Owner("x")
	if !ok || name != "s0" || addr != testAddr(0) {
		t.Fatalf("singleton ring Owner = %s %v %v", name, addr, ok)
	}
	// Re-adding updates the address without disturbing the points.
	r.Add("s0", testAddr(9))
	if _, addr, _ := r.Owner("x"); addr != testAddr(9) {
		t.Errorf("re-add did not update addr: %v", addr)
	}
	r.Remove("ghost") // unknown name is a no-op
	if r.Len() != 1 {
		t.Errorf("Len = %d after ghost removal, want 1", r.Len())
	}
	mem := r.Members()
	if len(mem) != 1 || mem[0].Name != "s0" || mem[0].Addr != testAddr(9) {
		t.Errorf("Members = %v", mem)
	}
	r.Remove("s0")
	if r.Len() != 0 {
		t.Errorf("Len = %d after removal, want 0", r.Len())
	}
}
