package federation

import (
	"net/netip"
	"strings"
	"testing"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/signal"
	"github.com/stealthy-peers/pdnsec/internal/traceview"
)

// TestForwardSpliceTrace pins the cross-server stitching of the proxy
// path: a legacy client (no AcceptRedirect) joins through the wrong
// server, and the one resulting trace must chain client → ingress
// (signal_forward_splice) → owner (signal_join_serve) with no orphans —
// the ingress re-stamps the forwarded join with its splice span's
// context, which is what welds the two servers into the client's trace.
func TestForwardSpliceTrace(t *testing.T) {
	reg := obs.NewRegistry()
	network := netsim.New(netsim.Config{Seed: 9})
	hosts := make([]*netsim.Host, 2)
	for i := range hosts {
		hosts[i] = network.MustHost(netip.AddrFrom4([4]byte{44, 0, 0, byte(i + 1)}))
	}
	set := obs.NewTraceSet(network.Now, 9)
	p := NewPlane(PlaneConfig{
		Servers: 2,
		Traces:  set,
		Base:    signal.Config{Policy: signal.DefaultPolicy(), Seed: 9, Obs: reg},
	})
	if err := p.Serve(hosts, 443); err != nil {
		t.Fatal(err)
	}

	video := swarmOwnedBy(t, p, "s1")
	clientHost := network.MustHost(netip.AddrFrom4([4]byte{66, 10, 0, 1}))
	cli, err := signal.Dial(testCtx, clientHost, p.Addr(0)) // the WRONG server
	if err != nil {
		t.Fatal(err)
	}
	ctr := set.Tracer("client")
	cctx, root := ctr.StartSpan(testCtx, "peer_join")
	w, err := cli.Join(cctx, signal.JoinRequest{Video: video, Rendition: "720p", Fingerprint: "fpT"})
	if err != nil {
		t.Fatalf("proxied join: %v", err)
	}
	if !strings.HasPrefix(w.PeerID, "s1p") {
		t.Fatalf("peer ID %q not in the owner's namespace", w.PeerID)
	}
	root.End()
	// Closing the client tears the splice down, which is when the
	// ingress's splice span records; Close on the plane waits the
	// handlers out before we read the buffers.
	cli.Close()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := set.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	recs, st, err := traceview.Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	a := traceview.Stitch(recs, st)
	tr, ok := a.TraceByID(root.TraceContext().TraceID)
	if !ok {
		t.Fatalf("join trace %s not in the stitched set", root.TraceContext().TraceIDString())
	}
	if !tr.FullyStitched() {
		t.Fatalf("splice trace has %d orphans, %d loose events", tr.Orphans, tr.LooseEvents)
	}
	if got := strings.Join(tr.Procs, ","); got != "client,s0,s1" {
		t.Fatalf("trace procs = %s, want client,s0,s1", got)
	}
	// Walk the spine: peer_join → signal_forward_splice → signal_join_serve.
	r := tr.Root()
	if r == nil || r.Rec.Name != "peer_join" || r.Rec.Proc != "client" {
		t.Fatalf("root = %+v, want client peer_join", r)
	}
	splice := findChild(r, "signal_forward_splice")
	if splice == nil || splice.Rec.Proc != "s0" {
		t.Fatalf("no ingress splice span under the join root: %+v", r.Children)
	}
	serve := findChild(splice, "signal_join_serve")
	if serve == nil || serve.Rec.Proc != "s1" {
		t.Fatalf("owner's join_serve not parented under the splice: %+v", splice.Children)
	}
	// The ingress's forward event must ride on the splice span.
	for _, ev := range splice.Events {
		if ev.Name == "signal_forward" {
			return
		}
	}
	t.Fatalf("signal_forward event missing from the splice span: %+v", splice.Events)
}

func findChild(n *traceview.Node, name string) *traceview.Node {
	for _, c := range n.Children {
		if c.Rec.Name == name {
			return c
		}
	}
	return nil
}
