// Package geoip provides a synthetic IP address plan and a WHOIS-like
// lookup database for the simulated Internet used throughout pdnsec.
//
// The paper's in-the-wild IP-leak experiment classifies harvested peer
// addresses into public IPs (geolocated via IPInfo) and bogons (private
// RFC 1918, shared-address-space RFC 6598 "NAT" addresses, and reserved
// ranges). This package reproduces both halves: an Allocator hands out
// deterministic, country- and ISP-tagged "public" addresses to simulated
// viewers, and Classify/DB.Lookup reproduce the classification and
// geolocation steps performed by the paper's analysis scripts.
package geoip

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
)

// AddrClass is the coarse classification the paper applies to every
// harvested peer IP before geolocation.
type AddrClass int

// Address classes, mirroring the paper's taxonomy (§IV-D, "IP leak in the
// wild"): 7,159 public, 543 private, 33 NAT (shared address space), and 5
// reserved addresses.
const (
	ClassPublic AddrClass = iota + 1
	ClassPrivate
	ClassSharedNAT
	ClassReserved
)

// String returns the human-readable class name used in experiment output.
func (c AddrClass) String() string {
	switch c {
	case ClassPublic:
		return "public"
	case ClassPrivate:
		return "private"
	case ClassSharedNAT:
		return "nat"
	case ClassReserved:
		return "reserved"
	default:
		return fmt.Sprintf("AddrClass(%d)", int(c))
	}
}

// IsBogon reports whether the class is any of the non-public categories,
// matching the paper's use of "bogon" for private+NAT+reserved addresses.
func (c AddrClass) IsBogon() bool { return c != ClassPublic }

var (
	prefixPrivate = []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("172.16.0.0/12"),
		netip.MustParsePrefix("192.168.0.0/16"),
	}
	prefixSharedNAT = []netip.Prefix{
		netip.MustParsePrefix("100.64.0.0/10"), // RFC 6598 shared address space
	}
	prefixReserved = []netip.Prefix{
		netip.MustParsePrefix("0.0.0.0/8"),
		netip.MustParsePrefix("127.0.0.0/8"),
		netip.MustParsePrefix("169.254.0.0/16"),
		netip.MustParsePrefix("192.0.0.0/24"),
		netip.MustParsePrefix("192.0.2.0/24"),
		netip.MustParsePrefix("198.18.0.0/15"),
		netip.MustParsePrefix("198.51.100.0/24"),
		netip.MustParsePrefix("203.0.113.0/24"),
		netip.MustParsePrefix("224.0.0.0/4"),
		netip.MustParsePrefix("240.0.0.0/4"),
	}
)

// Classify assigns an address class to ip using the same range taxonomy as
// the paper's bogon filtering step.
func Classify(ip netip.Addr) AddrClass {
	ip = ip.Unmap()
	for _, p := range prefixPrivate {
		if p.Contains(ip) {
			return ClassPrivate
		}
	}
	for _, p := range prefixSharedNAT {
		if p.Contains(ip) {
			return ClassSharedNAT
		}
	}
	for _, p := range prefixReserved {
		if p.Contains(ip) {
			return ClassReserved
		}
	}
	return ClassPublic
}

// Record is the WHOIS-like answer returned by DB.Lookup, analogous to the
// IPInfo responses the paper queried for each harvested address.
type Record struct {
	Addr    netip.Addr `json:"addr"`
	Class   AddrClass  `json:"class"`
	Country string     `json:"country,omitempty"` // ISO code, e.g. "CN"
	City    string     `json:"city,omitempty"`
	ISP     string     `json:"isp,omitempty"`
}

// countryPlan is one country's slice of the synthetic address plan.
type countryPlan struct {
	code     string
	cities   []string
	isps     []string
	prefixes []netip.Prefix
}

// DB is a synthetic geolocation database. It owns the address plan: every
// public address an Allocator hands out is drawn from a prefix registered
// to exactly one country, so Lookup is exact for allocated addresses.
//
// The zero value is not usable; construct with NewDB.
type DB struct {
	mu        sync.RWMutex
	countries map[string]*countryPlan
	// ordered list of (prefix, country) for lookup
	ranges []rangeEntry
}

type rangeEntry struct {
	prefix  netip.Prefix
	country string
}

// NewDB returns a database preloaded with DefaultPlan.
func NewDB() *DB {
	db := &DB{countries: make(map[string]*countryPlan)}
	for _, c := range DefaultPlan() {
		db.Register(c)
	}
	return db
}

// NewEmptyDB returns a database with no registered countries, for tests
// that build a bespoke plan.
func NewEmptyDB() *DB {
	return &DB{countries: make(map[string]*countryPlan)}
}

// Country describes one country's synthetic address plan entry.
type Country struct {
	Code     string
	Cities   []string
	ISPs     []string
	Prefixes []string // CIDR, must be public space
}

// Register adds a country to the plan. Registering the same code twice
// replaces the previous entry's metadata and appends its prefixes.
func (db *DB) Register(c Country) {
	db.mu.Lock()
	defer db.mu.Unlock()
	plan, ok := db.countries[c.Code]
	if !ok {
		plan = &countryPlan{code: c.Code}
		db.countries[c.Code] = plan
	}
	plan.cities = append([]string(nil), c.Cities...)
	plan.isps = append([]string(nil), c.ISPs...)
	for _, s := range c.Prefixes {
		p := netip.MustParsePrefix(s)
		plan.prefixes = append(plan.prefixes, p)
		db.ranges = append(db.ranges, rangeEntry{prefix: p, country: c.Code})
	}
}

// Countries returns the registered country codes in sorted order.
func (db *DB) Countries() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.countries))
	for code := range db.countries {
		out = append(out, code)
	}
	sort.Strings(out)
	return out
}

// Lookup geolocates ip. Bogon addresses come back with only Class set,
// mirroring IPInfo's behaviour for unroutable space. Public addresses
// outside the plan return a public record with empty geodata.
func (db *DB) Lookup(ip netip.Addr) Record {
	rec := Record{Addr: ip, Class: Classify(ip)}
	if rec.Class != ClassPublic {
		return rec
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, re := range db.ranges {
		if re.prefix.Contains(ip) {
			plan := db.countries[re.country]
			rec.Country = plan.code
			// Derive stable city/ISP from the address bits so repeated
			// lookups of one address agree without storing per-IP state.
			h := addrHash(ip)
			if len(plan.cities) > 0 {
				rec.City = plan.cities[h%uint64(len(plan.cities))]
			}
			if len(plan.isps) > 0 {
				rec.ISP = plan.isps[(h/7)%uint64(len(plan.isps))]
			}
			return rec
		}
	}
	return rec
}

func addrHash(ip netip.Addr) uint64 {
	b := ip.As4()
	// FNV-1a over the 4 bytes; tiny and stable.
	var h uint64 = 14695981039346656037
	for _, x := range b {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}

// Allocator hands out unique synthetic addresses from the plan.
// It is safe for concurrent use.
type Allocator struct {
	db *DB

	mu   sync.Mutex
	rng  *rand.Rand
	next map[string]int // country -> allocation counter
}

// NewAllocator returns an allocator over db, seeded deterministically.
func NewAllocator(db *DB, seed int64) *Allocator {
	return &Allocator{
		db:   db,
		rng:  rand.New(rand.NewSource(seed)),
		next: make(map[string]int),
	}
}

// Alloc returns the next unique public address for the given country code.
// It returns an error if the country is unknown or its space is exhausted.
func (a *Allocator) Alloc(country string) (netip.Addr, error) {
	a.db.mu.RLock()
	plan, ok := a.db.countries[country]
	a.db.mu.RUnlock()
	if !ok {
		return netip.Addr{}, fmt.Errorf("geoip: unknown country %q", country)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.next[country]
	a.next[country] = n + 1
	return nthAddr(plan.prefixes, n)
}

// AllocPrivate returns a unique RFC 1918 address, used for hosts placed
// behind simulated NAT boxes.
func (a *Allocator) AllocPrivate() netip.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.next["_private"]
	a.next["_private"] = n + 1
	addr, err := nthAddr(prefixPrivate[:1], n) // carve from 10.0.0.0/8
	if err != nil {
		// 10/8 has ~16.7M usable addresses; treat exhaustion as a bug.
		panic(fmt.Sprintf("geoip: private space exhausted: %v", err))
	}
	return addr
}

// AllocSharedNAT returns a unique RFC 6598 (100.64.0.0/10) address, used
// as the external face of carrier-grade NAT boxes.
func (a *Allocator) AllocSharedNAT() netip.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.next["_cgn"]
	a.next["_cgn"] = n + 1
	addr, err := nthAddr(prefixSharedNAT, n)
	if err != nil {
		panic(fmt.Sprintf("geoip: shared NAT space exhausted: %v", err))
	}
	return addr
}

// nthAddr maps a linear index onto a prefix list, skipping network (.0)
// and broadcast-looking (.255) final octets to keep addresses plausible.
func nthAddr(prefixes []netip.Prefix, n int) (netip.Addr, error) {
	idx := n
	for _, p := range prefixes {
		bits := 32 - p.Bits()
		size := 1 << bits
		// usable hosts per /24-equivalent chunk: skip .0 and .255
		usable := size - size/128
		if usable <= 0 {
			usable = size
		}
		if idx >= usable {
			idx -= usable
			continue
		}
		base := ipToU32(p.Addr())
		// walk addresses, skipping .0/.255 tails
		off := uint32(idx + idx/254*2 + 1)
		raw := base + off
		last := raw & 0xff
		if last == 0 {
			raw++
		} else if last == 255 {
			raw += 2
		}
		return u32ToIP(raw), nil
	}
	return netip.Addr{}, fmt.Errorf("geoip: address space exhausted (index %d)", n)
}

func ipToU32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func u32ToIP(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// DefaultPlan returns the address plan used by the experiments: a mix of
// countries matching the viewer distributions the paper reports for the
// RT News (US 35%, GB 17%, CA 13%, long tail) and Huya (98% CN) channels.
func DefaultPlan() []Country {
	return []Country{
		{Code: "CN", Cities: []string{"Beijing", "Shanghai", "Guangzhou", "Shenzhen", "Chengdu", "Wuhan", "Hangzhou", "Nanjing"},
			ISPs:     []string{"China Telecom", "China Unicom", "China Mobile"},
			Prefixes: []string{"36.96.0.0/13", "114.80.0.0/14", "183.0.0.0/13"}},
		{Code: "US", Cities: []string{"New York", "Los Angeles", "Chicago", "Houston", "Seattle", "Denver", "Miami", "Atlanta"},
			ISPs:     []string{"Comcast", "AT&T", "Verizon", "Charter"},
			Prefixes: []string{"23.112.0.0/13", "66.24.0.0/14", "98.160.0.0/14"}},
		{Code: "GB", Cities: []string{"London", "Manchester", "Birmingham", "Leeds", "Glasgow"},
			ISPs:     []string{"BT", "Sky", "Virgin Media"},
			Prefixes: []string{"81.128.0.0/14", "86.128.0.0/15"}},
		{Code: "CA", Cities: []string{"Toronto", "Vancouver", "Montreal", "Calgary"},
			ISPs:     []string{"Bell", "Rogers", "Telus"},
			Prefixes: []string{"99.224.0.0/14", "142.112.0.0/15"}},
		{Code: "DE", Cities: []string{"Berlin", "Munich", "Hamburg", "Cologne"},
			ISPs:     []string{"Deutsche Telekom", "Vodafone DE"},
			Prefixes: []string{"84.128.0.0/13"}},
		{Code: "FR", Cities: []string{"Paris", "Lyon", "Marseille", "Toulouse"},
			ISPs:     []string{"Orange", "Free", "SFR"},
			Prefixes: []string{"90.0.0.0/13"}},
		{Code: "RU", Cities: []string{"Moscow", "Saint Petersburg", "Novosibirsk"},
			ISPs:     []string{"Rostelecom", "MTS"},
			Prefixes: []string{"95.24.0.0/14"}},
		{Code: "BR", Cities: []string{"Sao Paulo", "Rio de Janeiro", "Brasilia"},
			ISPs:     []string{"Vivo", "Claro BR"},
			Prefixes: []string{"177.32.0.0/14"}},
		{Code: "IN", Cities: []string{"Mumbai", "Delhi", "Bangalore", "Chennai"},
			ISPs:     []string{"Jio", "Airtel"},
			Prefixes: []string{"106.192.0.0/13"}},
		{Code: "JP", Cities: []string{"Tokyo", "Osaka", "Nagoya"},
			ISPs:     []string{"NTT", "KDDI"},
			Prefixes: []string{"118.0.0.0/14"}},
		{Code: "AU", Cities: []string{"Sydney", "Melbourne", "Brisbane"},
			ISPs:     []string{"Telstra", "Optus"},
			Prefixes: []string{"120.16.0.0/14"}},
		{Code: "ES", Cities: []string{"Madrid", "Barcelona", "Valencia"},
			ISPs:     []string{"Telefonica", "Vodafone ES"},
			Prefixes: []string{"88.0.0.0/14"}},
		{Code: "IT", Cities: []string{"Rome", "Milan", "Naples"},
			ISPs:     []string{"TIM", "Fastweb"},
			Prefixes: []string{"79.0.0.0/14"}},
		{Code: "KR", Cities: []string{"Seoul", "Busan", "Incheon"},
			ISPs:     []string{"KT", "SK Broadband"},
			Prefixes: []string{"121.128.0.0/14"}},
		{Code: "MX", Cities: []string{"Mexico City", "Guadalajara"},
			ISPs:     []string{"Telmex", "Izzi"},
			Prefixes: []string{"187.128.0.0/14"}},
		{Code: "NL", Cities: []string{"Amsterdam", "Rotterdam"},
			ISPs:     []string{"KPN", "Ziggo"},
			Prefixes: []string{"84.24.0.0/15"}},
		{Code: "SE", Cities: []string{"Stockholm", "Gothenburg"},
			ISPs:     []string{"Telia", "Telenor SE"},
			Prefixes: []string{"78.64.0.0/15"}},
		{Code: "PL", Cities: []string{"Warsaw", "Krakow"},
			ISPs:     []string{"Orange PL", "Play"},
			Prefixes: []string{"83.0.0.0/15"}},
		{Code: "TR", Cities: []string{"Istanbul", "Ankara"},
			ISPs:     []string{"Turk Telekom", "Turkcell"},
			Prefixes: []string{"85.96.0.0/15"}},
		{Code: "AR", Cities: []string{"Buenos Aires", "Cordoba"},
			ISPs:     []string{"Telecom Argentina", "Telecentro"},
			Prefixes: []string{"181.0.0.0/15"}},
	}
}
