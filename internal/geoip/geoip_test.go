package geoip

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		ip   string
		want AddrClass
	}{
		{"10.1.2.3", ClassPrivate},
		{"172.16.0.1", ClassPrivate},
		{"172.31.255.254", ClassPrivate},
		{"172.32.0.1", ClassPublic},
		{"192.168.1.1", ClassPrivate},
		{"100.64.0.1", ClassSharedNAT},
		{"100.127.255.254", ClassSharedNAT},
		{"100.128.0.1", ClassPublic},
		{"127.0.0.1", ClassReserved},
		{"169.254.10.10", ClassReserved},
		{"224.0.0.251", ClassReserved},
		{"240.1.1.1", ClassReserved},
		{"198.51.100.7", ClassReserved},
		{"8.8.8.8", ClassPublic},
		{"36.96.1.2", ClassPublic},
	}
	for _, tc := range cases {
		got := Classify(netip.MustParseAddr(tc.ip))
		if got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.ip, got, tc.want)
		}
	}
}

func TestAddrClassString(t *testing.T) {
	if ClassPublic.String() != "public" || ClassPrivate.String() != "private" ||
		ClassSharedNAT.String() != "nat" || ClassReserved.String() != "reserved" {
		t.Fatalf("unexpected class names: %v %v %v %v", ClassPublic, ClassPrivate, ClassSharedNAT, ClassReserved)
	}
	if AddrClass(0).String() == "" {
		t.Error("zero class should still render")
	}
}

func TestIsBogon(t *testing.T) {
	if ClassPublic.IsBogon() {
		t.Error("public must not be bogon")
	}
	for _, c := range []AddrClass{ClassPrivate, ClassSharedNAT, ClassReserved} {
		if !c.IsBogon() {
			t.Errorf("%v must be bogon", c)
		}
	}
}

func TestAllocatorUniqueAndGeolocated(t *testing.T) {
	db := NewDB()
	alloc := NewAllocator(db, 1)
	seen := make(map[netip.Addr]bool)
	for i := 0; i < 5000; i++ {
		ip, err := alloc.Alloc("CN")
		if err != nil {
			t.Fatalf("Alloc(CN) #%d: %v", i, err)
		}
		if seen[ip] {
			t.Fatalf("duplicate address %v at i=%d", ip, i)
		}
		seen[ip] = true
		rec := db.Lookup(ip)
		if rec.Class != ClassPublic {
			t.Fatalf("allocated %v classified %v, want public", ip, rec.Class)
		}
		if rec.Country != "CN" {
			t.Fatalf("Lookup(%v).Country = %q, want CN", ip, rec.Country)
		}
		if rec.City == "" || rec.ISP == "" {
			t.Fatalf("Lookup(%v) missing city/isp: %+v", ip, rec)
		}
	}
}

func TestAllocatorUnknownCountry(t *testing.T) {
	alloc := NewAllocator(NewDB(), 1)
	if _, err := alloc.Alloc("XX"); err == nil {
		t.Fatal("expected error for unknown country")
	}
}

func TestAllocPrivateAndSharedNAT(t *testing.T) {
	alloc := NewAllocator(NewDB(), 7)
	seen := make(map[netip.Addr]bool)
	for i := 0; i < 1000; i++ {
		p := alloc.AllocPrivate()
		if Classify(p) != ClassPrivate {
			t.Fatalf("AllocPrivate returned %v (class %v)", p, Classify(p))
		}
		if seen[p] {
			t.Fatalf("duplicate private %v", p)
		}
		seen[p] = true
		n := alloc.AllocSharedNAT()
		if Classify(n) != ClassSharedNAT {
			t.Fatalf("AllocSharedNAT returned %v (class %v)", n, Classify(n))
		}
		if seen[n] {
			t.Fatalf("duplicate cgn %v", n)
		}
		seen[n] = true
	}
}

func TestLookupStable(t *testing.T) {
	db := NewDB()
	alloc := NewAllocator(db, 3)
	ip, err := alloc.Alloc("US")
	if err != nil {
		t.Fatal(err)
	}
	a, b := db.Lookup(ip), db.Lookup(ip)
	if a != b {
		t.Fatalf("Lookup not stable: %+v vs %+v", a, b)
	}
}

func TestLookupBogonHasNoGeo(t *testing.T) {
	db := NewDB()
	rec := db.Lookup(netip.MustParseAddr("192.168.4.4"))
	if rec.Class != ClassPrivate || rec.Country != "" || rec.ISP != "" {
		t.Fatalf("bogon lookup should have empty geodata: %+v", rec)
	}
}

func TestLookupUnplannedPublic(t *testing.T) {
	db := NewDB()
	rec := db.Lookup(netip.MustParseAddr("8.8.8.8"))
	if rec.Class != ClassPublic {
		t.Fatalf("8.8.8.8 should be public, got %v", rec.Class)
	}
	if rec.Country != "" {
		t.Fatalf("unplanned address should have no country, got %q", rec.Country)
	}
}

func TestCountriesSorted(t *testing.T) {
	db := NewDB()
	cs := db.Countries()
	if len(cs) < 10 {
		t.Fatalf("default plan too small: %d countries", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("countries not sorted: %v", cs)
		}
	}
}

func TestRegisterCustomCountry(t *testing.T) {
	db := NewEmptyDB()
	db.Register(Country{Code: "ZZ", Cities: []string{"Zed"}, ISPs: []string{"ZedNet"}, Prefixes: []string{"203.1.0.0/16"}})
	alloc := NewAllocator(db, 1)
	ip, err := alloc.Alloc("ZZ")
	if err != nil {
		t.Fatal(err)
	}
	rec := db.Lookup(ip)
	if rec.Country != "ZZ" || rec.City != "Zed" || rec.ISP != "ZedNet" {
		t.Fatalf("custom country lookup: %+v", rec)
	}
}

// Property: no allocated public address is ever classified as a bogon, and
// classification round-trips netip parsing.
func TestQuickAllocatedNeverBogon(t *testing.T) {
	db := NewDB()
	alloc := NewAllocator(db, 99)
	countries := db.Countries()
	f := func(n uint16) bool {
		c := countries[int(n)%len(countries)]
		ip, err := alloc.Alloc(c)
		if err != nil {
			return false
		}
		return Classify(ip) == ClassPublic && db.Lookup(ip).Country == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: nthAddr never emits a .0 or .255 final octet.
func TestQuickNthAddrUsable(t *testing.T) {
	prefixes := []netip.Prefix{netip.MustParsePrefix("23.112.0.0/13")}
	f := func(n uint16) bool {
		ip, err := nthAddr(prefixes, int(n))
		if err != nil {
			return false
		}
		last := ip.As4()[3]
		return last != 0 && last != 255
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
