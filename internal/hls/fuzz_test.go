package hls

import "testing"

// FuzzParseMediaPlaylist hardens the playlist parser against arbitrary
// CDN responses (the fake-CDN attack path feeds peers bytes an attacker
// chose).
func FuzzParseMediaPlaylist(f *testing.F) {
	f.Add([]byte("#EXTM3U\n#EXT-X-VERSION:3\n#EXT-X-TARGETDURATION:10\n#EXTINF:10,\nseg00000.ts\n#EXT-X-ENDLIST\n"))
	f.Add([]byte("#EXTM3U\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseMediaPlaylist(data)
		if err != nil {
			return
		}
		// Valid parses re-encode into something that parses again with
		// the same segment list.
		q, err := ParseMediaPlaylist(p.Encode())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(q.Segments) != len(p.Segments) || q.MediaSequence != p.MediaSequence {
			t.Fatalf("round trip mismatch: %+v vs %+v", p, q)
		}
	})
}

// FuzzParseMasterPlaylist does the same for the variant parser.
func FuzzParseMasterPlaylist(f *testing.F) {
	f.Add([]byte("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=100,NAME=\"x\"\nv.m3u8\n"))
	f.Add([]byte("#EXTM3U\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseMasterPlaylist(data)
		if err != nil {
			return
		}
		if _, err := ParseMasterPlaylist(p.Encode()); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
	})
}
