// Package hls implements the subset of HTTP Live Streaming playlists the
// pdnsec testbed serves: master playlists with variant streams and media
// playlists with segment entries, including live-window (sliding
// media-sequence) playlists.
//
// Both the CDN and the PDN SDK consume manifests through this package,
// as do the attacks — the paper's fake-CDN pollution attack rewrites the
// segments a manifest references, and its direct-pollution variant is
// detected precisely because the first segments of a playlist are always
// fetched from the CDN ("slow start").
package hls

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"github.com/stealthy-peers/pdnsec/internal/media"
)

// Segment is one entry in a media playlist.
type Segment struct {
	// URI is the segment location, relative to the playlist.
	URI string `json:"uri"`
	// Duration is the playback duration in seconds.
	Duration float64 `json:"duration"`
}

// MediaPlaylist is a variant playlist listing media segments.
type MediaPlaylist struct {
	Version        int       `json:"version"`
	TargetDuration int       `json:"target_duration"`
	MediaSequence  int       `json:"media_sequence"`
	Live           bool      `json:"live"` // live playlists omit EXT-X-ENDLIST
	Segments       []Segment `json:"segments"`
}

// Encode renders the playlist as an .m3u8 document.
func (p *MediaPlaylist) Encode() []byte {
	var b bytes.Buffer
	b.WriteString("#EXTM3U\n")
	fmt.Fprintf(&b, "#EXT-X-VERSION:%d\n", max(p.Version, 3))
	fmt.Fprintf(&b, "#EXT-X-TARGETDURATION:%d\n", p.TargetDuration)
	fmt.Fprintf(&b, "#EXT-X-MEDIA-SEQUENCE:%d\n", p.MediaSequence)
	for _, s := range p.Segments {
		fmt.Fprintf(&b, "#EXTINF:%.3f,\n%s\n", s.Duration, s.URI)
	}
	if !p.Live {
		b.WriteString("#EXT-X-ENDLIST\n")
	}
	return b.Bytes()
}

// ParseMediaPlaylist decodes an .m3u8 media playlist.
func ParseMediaPlaylist(data []byte) (*MediaPlaylist, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "#EXTM3U" {
		return nil, fmt.Errorf("hls: missing #EXTM3U header")
	}
	p := &MediaPlaylist{Live: true}
	var pendingDur float64
	var havePending bool
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#EXT-X-VERSION:"):
			v, err := strconv.Atoi(strings.TrimPrefix(line, "#EXT-X-VERSION:"))
			if err != nil {
				return nil, fmt.Errorf("hls: bad version: %w", err)
			}
			p.Version = v
		case strings.HasPrefix(line, "#EXT-X-TARGETDURATION:"):
			v, err := strconv.Atoi(strings.TrimPrefix(line, "#EXT-X-TARGETDURATION:"))
			if err != nil {
				return nil, fmt.Errorf("hls: bad target duration: %w", err)
			}
			p.TargetDuration = v
		case strings.HasPrefix(line, "#EXT-X-MEDIA-SEQUENCE:"):
			v, err := strconv.Atoi(strings.TrimPrefix(line, "#EXT-X-MEDIA-SEQUENCE:"))
			if err != nil {
				return nil, fmt.Errorf("hls: bad media sequence: %w", err)
			}
			p.MediaSequence = v
		case strings.HasPrefix(line, "#EXTINF:"):
			spec := strings.TrimPrefix(line, "#EXTINF:")
			spec = strings.SplitN(spec, ",", 2)[0]
			d, err := strconv.ParseFloat(spec, 64)
			if err != nil {
				return nil, fmt.Errorf("hls: bad EXTINF: %w", err)
			}
			pendingDur, havePending = d, true
		case line == "#EXT-X-ENDLIST":
			p.Live = false
		case strings.HasPrefix(line, "#"):
			// Unknown tag: ignore, as real players do.
		default:
			if !havePending {
				return nil, fmt.Errorf("hls: segment %q without EXTINF", line)
			}
			p.Segments = append(p.Segments, Segment{URI: line, Duration: pendingDur})
			havePending = false
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hls: scan: %w", err)
	}
	return p, nil
}

// Variant is one entry of a master playlist.
type Variant struct {
	URI       string `json:"uri"`
	Bandwidth int    `json:"bandwidth"`
	Name      string `json:"name"`
}

// MasterPlaylist lists the variant streams of an asset.
type MasterPlaylist struct {
	Variants []Variant `json:"variants"`
}

// Encode renders the master playlist as an .m3u8 document.
func (p *MasterPlaylist) Encode() []byte {
	var b bytes.Buffer
	b.WriteString("#EXTM3U\n")
	for _, v := range p.Variants {
		fmt.Fprintf(&b, "#EXT-X-STREAM-INF:BANDWIDTH=%d,NAME=%q\n%s\n", v.Bandwidth, v.Name, v.URI)
	}
	return b.Bytes()
}

// ParseMasterPlaylist decodes an .m3u8 master playlist.
func ParseMasterPlaylist(data []byte) (*MasterPlaylist, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "#EXTM3U" {
		return nil, fmt.Errorf("hls: missing #EXTM3U header")
	}
	p := &MasterPlaylist{}
	var pending Variant
	var havePending bool
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#EXT-X-STREAM-INF:"):
			pending = Variant{}
			for _, attr := range splitAttrs(strings.TrimPrefix(line, "#EXT-X-STREAM-INF:")) {
				k, v, _ := strings.Cut(attr, "=")
				switch k {
				case "BANDWIDTH":
					bw, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("hls: bad BANDWIDTH: %w", err)
					}
					pending.Bandwidth = bw
				case "NAME":
					pending.Name = strings.Trim(v, `"`)
				}
			}
			havePending = true
		case strings.HasPrefix(line, "#"):
			// ignore
		default:
			if !havePending {
				return nil, fmt.Errorf("hls: variant URI %q without STREAM-INF", line)
			}
			pending.URI = line
			p.Variants = append(p.Variants, pending)
			havePending = false
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hls: scan: %w", err)
	}
	return p, nil
}

// splitAttrs splits an attribute list on commas outside quotes.
func splitAttrs(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// SegmentURI formats the canonical segment filename used by the testbed
// CDN layout: seg<index>.ts, zero-padded to five digits.
func SegmentURI(index int) string {
	return fmt.Sprintf("seg%05d.ts", index)
}

// ParseSegmentURI inverts SegmentURI, accepting any digit run.
func ParseSegmentURI(uri string) (int, bool) {
	base := uri
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if !strings.HasPrefix(base, "seg") || !strings.HasSuffix(base, ".ts") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, "seg"), ".ts"))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// ForVideo builds the master playlist for a media.Video, with variant
// playlists at "<rendition>/playlist.m3u8".
func ForVideo(v *media.Video) *MasterPlaylist {
	mp := &MasterPlaylist{Variants: make([]Variant, 0, len(v.Renditions))}
	for _, r := range v.Renditions {
		mp.Variants = append(mp.Variants, Variant{
			URI:       r.Name + "/playlist.m3u8",
			Bandwidth: r.Bandwidth,
			Name:      r.Name,
		})
	}
	return mp
}

// Window builds the media playlist for a rendition of v covering segment
// indices [from, from+count). VOD assets clamp to the asset length and
// include ENDLIST; live assets slide and stay open.
func Window(v *media.Video, from, count int) *MediaPlaylist {
	if from < 0 {
		from = 0
	}
	if !v.Live {
		if from > v.Segments {
			from = v.Segments
		}
		if from+count > v.Segments {
			count = v.Segments - from
		}
	}
	p := &MediaPlaylist{
		Version:        3,
		TargetDuration: int(v.SegmentDuration + 0.999),
		MediaSequence:  from,
		Live:           v.Live,
	}
	p.Segments = make([]Segment, 0, count)
	for i := 0; i < count; i++ {
		p.Segments = append(p.Segments, Segment{
			URI:      SegmentURI(from + i),
			Duration: v.SegmentDuration,
		})
	}
	return p
}
