package hls

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/stealthy-peers/pdnsec/internal/media"
)

func TestMediaPlaylistRoundTrip(t *testing.T) {
	p := &MediaPlaylist{
		Version:        3,
		TargetDuration: 10,
		MediaSequence:  42,
		Live:           false,
		Segments: []Segment{
			{URI: "seg00042.ts", Duration: 10},
			{URI: "seg00043.ts", Duration: 9.5},
		},
	}
	got, err := ParseMediaPlaylist(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", p, got)
	}
}

func TestLivePlaylistHasNoEndlist(t *testing.T) {
	p := &MediaPlaylist{Version: 3, TargetDuration: 10, Live: true,
		Segments: []Segment{{URI: "seg00001.ts", Duration: 10}}}
	text := string(p.Encode())
	if strings.Contains(text, "ENDLIST") {
		t.Fatal("live playlist must not contain ENDLIST")
	}
	got, err := ParseMediaPlaylist([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Live {
		t.Fatal("parsed playlist should be live")
	}
}

func TestParseMediaPlaylistErrors(t *testing.T) {
	cases := []string{
		"",
		"not a playlist",
		"#EXTM3U\n#EXT-X-VERSION:x\n",
		"#EXTM3U\n#EXT-X-TARGETDURATION:x\n",
		"#EXTM3U\n#EXT-X-MEDIA-SEQUENCE:x\n",
		"#EXTM3U\n#EXTINF:abc,\nseg.ts\n",
		"#EXTM3U\nseg-without-extinf.ts\n",
	}
	for _, c := range cases {
		if _, err := ParseMediaPlaylist([]byte(c)); err == nil {
			t.Errorf("ParseMediaPlaylist(%q) should fail", c)
		}
	}
}

func TestParseIgnoresUnknownTags(t *testing.T) {
	doc := "#EXTM3U\n#EXT-X-VERSION:3\n#EXT-X-FOO:bar\n#EXT-X-TARGETDURATION:10\n#EXTINF:10,\nseg00000.ts\n#EXT-X-ENDLIST\n"
	p, err := ParseMediaPlaylist([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 1 {
		t.Fatalf("segments: %+v", p.Segments)
	}
}

func TestMasterPlaylistRoundTrip(t *testing.T) {
	p := &MasterPlaylist{Variants: []Variant{
		{URI: "360p/playlist.m3u8", Bandwidth: 800_000, Name: "360p"},
		{URI: "720p/playlist.m3u8", Bandwidth: 2_400_000, Name: "720p"},
	}}
	got, err := ParseMasterPlaylist(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", p, got)
	}
}

func TestMasterPlaylistQuotedName(t *testing.T) {
	// NAME with a comma inside quotes must not split attributes.
	doc := "#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=100,NAME=\"hi, there\"\nv.m3u8\n"
	p, err := ParseMasterPlaylist([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Variants[0].Name != "hi, there" {
		t.Fatalf("name %q", p.Variants[0].Name)
	}
}

func TestParseMasterPlaylistErrors(t *testing.T) {
	for _, c := range []string{"", "#EXTM3U\nuri-without-inf\n", "#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=abc\nv\n"} {
		if _, err := ParseMasterPlaylist([]byte(c)); err == nil {
			t.Errorf("ParseMasterPlaylist(%q) should fail", c)
		}
	}
}

func TestSegmentURIRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 99999, 123456} {
		idx, ok := ParseSegmentURI(SegmentURI(n))
		if !ok || idx != n {
			t.Fatalf("round trip %d -> %q -> %d %v", n, SegmentURI(n), idx, ok)
		}
	}
	idx, ok := ParseSegmentURI("720p/seg00007.ts")
	if !ok || idx != 7 {
		t.Fatalf("path-qualified parse: %d %v", idx, ok)
	}
	for _, bad := range []string{"", "seg.ts", "segXX.ts", "foo00001.ts", "seg00001.mp4", "seg-1.ts"} {
		if _, ok := ParseSegmentURI(bad); ok {
			t.Errorf("ParseSegmentURI(%q) accepted", bad)
		}
	}
}

func TestForVideo(t *testing.T) {
	v := media.NewVOD("bbb", 10)
	mp := ForVideo(v)
	if len(mp.Variants) != len(v.Renditions) {
		t.Fatalf("variants %d", len(mp.Variants))
	}
	if mp.Variants[1].URI != "720p/playlist.m3u8" {
		t.Fatalf("uri %q", mp.Variants[1].URI)
	}
}

func TestWindowVOD(t *testing.T) {
	v := media.NewVOD("bbb", 5)
	p := Window(v, 0, 100)
	if len(p.Segments) != 5 || p.Live {
		t.Fatalf("VOD window clamps to asset: %d live=%v", len(p.Segments), p.Live)
	}
	p = Window(v, 3, 100)
	if len(p.Segments) != 2 || p.MediaSequence != 3 {
		t.Fatalf("offset window: %d seq %d", len(p.Segments), p.MediaSequence)
	}
	p = Window(v, 99, 10)
	if len(p.Segments) != 0 {
		t.Fatal("window past end should be empty")
	}
	p = Window(v, -5, 2)
	if p.MediaSequence != 0 {
		t.Fatal("negative from should clamp to 0")
	}
}

func TestWindowLiveSlides(t *testing.T) {
	v := media.NewLive("ch", 6)
	p := Window(v, 100, 6)
	if len(p.Segments) != 6 || !p.Live || p.MediaSequence != 100 {
		t.Fatalf("live window: %d live=%v seq=%d", len(p.Segments), p.Live, p.MediaSequence)
	}
	if p.Segments[0].URI != SegmentURI(100) {
		t.Fatalf("first URI %q", p.Segments[0].URI)
	}
}

// Property: Window's live semantics survive the wire. For any asset
// shape and any sliding-window schedule, every published window must
// encode and parse back intact: ENDLIST present iff the asset is VOD,
// media sequence monotone non-decreasing as the window slides, segment
// URIs naming exactly the window's indices, and VOD windows never
// referencing past the asset end. This is the contract the live
// flash-crowd chaos scenario leans on.
func TestQuickWindowLiveSemantics(t *testing.T) {
	check := func(seed int64, liveAsset bool, lenSeed, winSeed, stepSeed uint8) error {
		rng := rand.New(rand.NewSource(seed))
		segs := 1 + int(lenSeed%30)
		var v *media.Video
		if liveAsset {
			v = media.NewLive("ch", segs)
		} else {
			v = media.NewVOD("vod", segs)
		}
		// Non-integer durations exercise the EXTINF decimal formatting.
		v.SegmentDuration = float64(1+rng.Intn(10_000)) / 1000
		winLen := 1 + int(winSeed%8)
		from, lastSeq := 0, -1
		for step := 0; step < 1+int(stepSeed%10); step++ {
			p := Window(v, from, winLen)
			data := p.Encode()
			if bytes.Contains(data, []byte("#EXT-X-ENDLIST")) == v.Live {
				return fmt.Errorf("ENDLIST presence must match live=%v:\n%s", v.Live, data)
			}
			got, err := ParseMediaPlaylist(data)
			if err != nil {
				return fmt.Errorf("window [%d,+%d) does not parse back: %v", from, winLen, err)
			}
			if got.Live != v.Live || got.MediaSequence != p.MediaSequence {
				return fmt.Errorf("round-trip drift: live %v->%v seq %d->%d",
					p.Live, got.Live, p.MediaSequence, got.MediaSequence)
			}
			if got.MediaSequence < lastSeq {
				return fmt.Errorf("media sequence went backwards: %d after %d", got.MediaSequence, lastSeq)
			}
			lastSeq = got.MediaSequence
			if len(got.Segments) != len(p.Segments) {
				return fmt.Errorf("segment count drift: %d->%d", len(p.Segments), len(got.Segments))
			}
			for i, s := range got.Segments {
				idx, ok := ParseSegmentURI(s.URI)
				if !ok || idx != got.MediaSequence+i {
					return fmt.Errorf("segment %d URI %q does not name index %d", i, s.URI, got.MediaSequence+i)
				}
				if s.Duration != v.SegmentDuration {
					return fmt.Errorf("segment duration drift: %v->%v", v.SegmentDuration, s.Duration)
				}
			}
			if !v.Live && got.MediaSequence+len(got.Segments) > v.Segments {
				return fmt.Errorf("VOD window [%d,+%d) references past asset end %d", from, winLen, v.Segments)
			}
			from += rng.Intn(3)
		}
		return nil
	}
	f := func(seed int64, liveAsset bool, lenSeed, winSeed, stepSeed uint8) bool {
		if err := check(seed, liveAsset, lenSeed, winSeed, stepSeed); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(20260808))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode/Parse round-trips arbitrary well-formed playlists.
func TestQuickMediaRoundTrip(t *testing.T) {
	f := func(seq uint16, n uint8, live bool) bool {
		p := &MediaPlaylist{Version: 3, TargetDuration: 10, MediaSequence: int(seq), Live: live}
		for i := 0; i < int(n%20); i++ {
			p.Segments = append(p.Segments, Segment{URI: SegmentURI(int(seq) + i), Duration: 10})
		}
		got, err := ParseMediaPlaylist(p.Encode())
		return err == nil && reflect.DeepEqual(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
