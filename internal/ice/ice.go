// Package ice implements Interactive Connectivity Establishment for the
// pdnsec testbed: candidate gathering (host and server-reflexive via
// STUN), connectivity checks over the simulated network's real NAT
// behaviour, and nomination of a working candidate pair.
//
// This layer is where the paper's IP-leak risk materializes: to connect
// two viewers, each one's addresses — including the public address
// discovered via STUN — are shared with the other through the PDN
// server, and connectivity-check datagrams carrying those addresses
// cross the network in plaintext. A malicious peer needs nothing more
// than its own capture to harvest every candidate it is offered
// (§IV-D). The bogon addresses the paper observed (private, shared-NAT,
// reserved) arise here too: host candidates of NATed viewers are private
// addresses, and they are advertised regardless of whether traversal
// will succeed.
package ice

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/stun"
)

// Candidate types.
const (
	TypeHost  = "host"
	TypeSrflx = "srflx"
)

// Type preferences per RFC 8445 §5.1.2.2.
const (
	prefHost  = 126
	prefSrflx = 100
)

// Candidate is one transport address a peer advertises.
type Candidate struct {
	Type     string         `json:"type"`
	Addr     netip.AddrPort `json:"addr"`
	Priority uint32         `json:"priority"`
}

// Errors returned by the agent.
var (
	ErrNoCandidates = errors.New("ice: no remote candidates")
	ErrCheckFailed  = errors.New("ice: all connectivity checks failed")
)

// Agent runs ICE for one peer over a single UDP socket.
type Agent struct {
	host *netsim.Host
	pc   *netsim.PacketConn

	ufrag string

	mu        sync.Mutex
	locals    []Candidate
	pending   map[stun.TxID]netip.AddrPort // in-flight checks by tx
	succeeded map[netip.AddrPort]bool      // remote candidates that answered

	waiters  waiterMap // srflx queries awaiting a mapped address
	loopOnce sync.Once
	done     chan struct{}
}

// NewAgent binds an ICE socket on the host.
func NewAgent(host *netsim.Host, ufrag string) (*Agent, error) {
	pc, err := host.ListenPacket(0)
	if err != nil {
		return nil, fmt.Errorf("ice: bind: %w", err)
	}
	return &Agent{
		host:      host,
		pc:        pc,
		ufrag:     ufrag,
		pending:   make(map[stun.TxID]netip.AddrPort),
		succeeded: make(map[netip.AddrPort]bool),
		done:      make(chan struct{}),
	}, nil
}

// Close releases the agent's socket and stops its read loop.
func (a *Agent) Close() error {
	select {
	case <-a.done:
	default:
		close(a.done)
	}
	return a.pc.Close()
}

// Gather collects this agent's candidates: the host candidate (the
// socket's own, possibly private, address) and — when a STUN server is
// provided — the server-reflexive candidate carrying the peer's public
// (post-NAT) address.
func (a *Agent) Gather(ctx context.Context, stunServer netip.AddrPort) ([]Candidate, error) {
	a.startLoop()
	cands := []Candidate{{
		Type:     TypeHost,
		Addr:     a.pc.LocalAddrPort(),
		Priority: priority(prefHost, 1),
	}}
	if stunServer.IsValid() {
		mapped, err := a.querySTUN(ctx, stunServer)
		if err != nil {
			return nil, fmt.Errorf("ice: srflx discovery: %w", err)
		}
		if mapped != cands[0].Addr {
			cands = append(cands, Candidate{
				Type:     TypeSrflx,
				Addr:     mapped,
				Priority: priority(prefSrflx, 1),
			})
		}
	}
	a.mu.Lock()
	a.locals = append([]Candidate(nil), cands...)
	a.mu.Unlock()
	return cands, nil
}

// querySTUN asks the STUN server for this socket's reflexive address.
func (a *Agent) querySTUN(ctx context.Context, server netip.AddrPort) (netip.AddrPort, error) {
	req := stun.BindingRequest("", 0)
	respCh := make(chan netip.AddrPort, 1)
	a.mu.Lock()
	a.pending[req.Tx] = server
	a.mu.Unlock()
	a.registerWaiter(req.Tx, respCh)
	defer a.unregisterWaiter(req.Tx)

	deadline := time.Now().Add(5 * time.Second)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for attempt := 0; attempt < 5; attempt++ {
		if _, err := a.pc.WriteToAddrPort(req.Encode(), server); err != nil {
			return netip.AddrPort{}, err
		}
		select {
		case ap := <-respCh:
			return ap, nil
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return netip.AddrPort{}, ctx.Err()
		}
		if time.Now().After(deadline) {
			break
		}
	}
	return netip.AddrPort{}, errors.New("ice: STUN server timeout")
}

// waiterMap maps transaction IDs to response channels for srflx queries.
type waiterMap struct {
	mu sync.Mutex
	m  map[stun.TxID]chan netip.AddrPort
}

func (a *Agent) registerWaiter(tx stun.TxID, ch chan netip.AddrPort) {
	a.waiters.mu.Lock()
	defer a.waiters.mu.Unlock()
	if a.waiters.m == nil {
		a.waiters.m = make(map[stun.TxID]chan netip.AddrPort)
	}
	a.waiters.m[tx] = ch
}

func (a *Agent) unregisterWaiter(tx stun.TxID) {
	a.waiters.mu.Lock()
	defer a.waiters.mu.Unlock()
	delete(a.waiters.m, tx)
}

func (a *Agent) waiterFor(tx stun.TxID) (chan netip.AddrPort, bool) {
	a.waiters.mu.Lock()
	defer a.waiters.mu.Unlock()
	ch, ok := a.waiters.m[tx]
	return ch, ok
}

// startLoop launches the agent's receive loop once.
func (a *Agent) startLoop() {
	a.loopOnce.Do(func() {
		go a.readLoop()
	})
}

// readLoop answers inbound binding requests (reflecting the sender's
// visible address — the leak) and dispatches binding responses.
func (a *Agent) readLoop() {
	buf := make([]byte, 64<<10)
	for {
		select {
		case <-a.done:
			return
		default:
		}
		a.pc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, from, err := a.pc.ReadFromAddrPort(buf)
		if err != nil {
			if errors.Is(err, netsim.ErrClosed) {
				return
			}
			continue // deadline tick
		}
		msg, err := stun.Decode(buf[:n])
		if err != nil {
			continue
		}
		switch msg.Type {
		case stun.TypeBindingRequest:
			resp := stun.BindingSuccess(msg.Tx, from)
			a.pc.WriteToAddrPort(resp.Encode(), from)
		case stun.TypeBindingSuccess:
			if ch, ok := a.waiterFor(msg.Tx); ok {
				select {
				case ch <- msg.XORMappedAddress:
				default:
				}
				continue
			}
			a.mu.Lock()
			if remote, ok := a.pending[msg.Tx]; ok {
				delete(a.pending, msg.Tx)
				a.succeeded[remote] = true
			}
			a.mu.Unlock()
		}
	}
}

// Check runs connectivity checks against the remote candidates and
// returns the highest-priority remote candidate that answered. Both
// peers must run Check concurrently (as real agents do) so that their
// outbound packets open the NAT mappings the other side's checks need.
func (a *Agent) Check(ctx context.Context, remotes []Candidate) (Candidate, error) {
	if len(remotes) == 0 {
		return Candidate{}, ErrNoCandidates
	}
	a.startLoop()

	ordered := append([]Candidate(nil), remotes...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Priority > ordered[j].Priority })

	deadline := time.Now().Add(3 * time.Second)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for time.Now().Before(deadline) {
		for _, rc := range ordered {
			req := stun.BindingRequest(a.ufrag, rc.Priority)
			a.mu.Lock()
			a.pending[req.Tx] = rc.Addr
			a.mu.Unlock()
			a.pc.WriteToAddrPort(req.Encode(), rc.Addr)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return Candidate{}, ctx.Err()
		}
		a.mu.Lock()
		var best *Candidate
		for i := range ordered {
			if a.succeeded[ordered[i].Addr] {
				best = &ordered[i]
				break
			}
		}
		a.mu.Unlock()
		if best != nil {
			return *best, nil
		}
	}
	return Candidate{}, ErrCheckFailed
}

// LocalAddr returns the agent's bound socket address.
func (a *Agent) LocalAddr() netip.AddrPort { return a.pc.LocalAddrPort() }

// LocalCandidateFor returns this agent's own candidate whose address the
// remote peer would have reached when answering checks: the srflx
// candidate if one was gathered, else the host candidate.
func (a *Agent) LocalCandidateFor() Candidate {
	a.mu.Lock()
	defer a.mu.Unlock()
	var host, srflx *Candidate
	for i := range a.locals {
		switch a.locals[i].Type {
		case TypeHost:
			host = &a.locals[i]
		case TypeSrflx:
			srflx = &a.locals[i]
		}
	}
	if srflx != nil {
		return *srflx
	}
	if host != nil {
		return *host
	}
	return Candidate{Type: TypeHost, Addr: a.pc.LocalAddrPort(), Priority: priority(prefHost, 1)}
}

// priority computes the RFC 8445 candidate priority.
func priority(typePref, componentID uint32) uint32 {
	return typePref<<24 | 0xffff<<8 | (256 - componentID)
}

// ServeSTUN runs a minimal STUN binding server on pc until the context
// is cancelled; it reflects each request's observed source address.
func ServeSTUN(ctx context.Context, pc *netsim.PacketConn) {
	buf := make([]byte, 64<<10)
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		pc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, from, err := pc.ReadFromAddrPort(buf)
		if err != nil {
			if errors.Is(err, netsim.ErrClosed) {
				return
			}
			continue
		}
		msg, err := stun.Decode(buf[:n])
		if err != nil || msg.Type != stun.TypeBindingRequest {
			continue
		}
		pc.WriteToAddrPort(stun.BindingSuccess(msg.Tx, from).Encode(), from)
	}
}
