package ice

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/capture"
	"github.com/stealthy-peers/pdnsec/internal/geoip"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
)

// testbed wires a network with one public STUN server.
type testbed struct {
	net        *netsim.Network
	stunServer netip.AddrPort
	cancel     context.CancelFunc
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	n := netsim.New(netsim.Config{})
	srv := n.MustHost(netip.MustParseAddr("8.8.8.8"))
	pc, err := srv.ListenPacket(3478)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go ServeSTUN(ctx, pc)
	t.Cleanup(cancel)
	return &testbed{net: n, stunServer: netip.MustParseAddrPort("8.8.8.8:3478"), cancel: cancel}
}

func TestGatherPublicHost(t *testing.T) {
	tb := newTestbed(t)
	h := tb.net.MustHost(netip.MustParseAddr("20.0.0.1"))
	a, err := NewAgent(h, "u1")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cands, err := a.Gather(context.Background(), tb.stunServer)
	if err != nil {
		t.Fatal(err)
	}
	// Public host: reflexive address equals host address, so only the
	// host candidate is reported.
	if len(cands) != 1 || cands[0].Type != TypeHost {
		t.Fatalf("candidates %+v", cands)
	}
	if cands[0].Addr.Addr() != netip.MustParseAddr("20.0.0.1") {
		t.Fatalf("host candidate %v", cands[0].Addr)
	}
}

func TestGatherBehindNATYieldsSrflx(t *testing.T) {
	tb := newTestbed(t)
	nat := tb.net.MustNAT(netip.MustParseAddr("6.6.6.6"), netsim.NATFullCone)
	h := nat.MustHost(netip.MustParseAddr("192.168.0.5"))
	a, err := NewAgent(h, "u1")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cands, err := a.Gather(context.Background(), tb.stunServer)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("want host+srflx, got %+v", cands)
	}
	var host, srflx *Candidate
	for i := range cands {
		switch cands[i].Type {
		case TypeHost:
			host = &cands[i]
		case TypeSrflx:
			srflx = &cands[i]
		}
	}
	if host == nil || srflx == nil {
		t.Fatalf("missing candidate type: %+v", cands)
	}
	if geoip.Classify(host.Addr.Addr()) != geoip.ClassPrivate {
		t.Fatalf("host candidate should be private, got %v", host.Addr)
	}
	if srflx.Addr.Addr() != netip.MustParseAddr("6.6.6.6") {
		t.Fatalf("srflx should be the NAT external address, got %v", srflx.Addr)
	}
	if host.Priority <= srflx.Priority {
		t.Fatal("host candidates must outrank srflx")
	}
}

func TestGatherNoSTUNServer(t *testing.T) {
	tb := newTestbed(t)
	h := tb.net.MustHost(netip.MustParseAddr("20.0.0.2"))
	a, _ := NewAgent(h, "u")
	defer a.Close()
	cands, err := a.Gather(context.Background(), netip.AddrPort{})
	if err != nil || len(cands) != 1 {
		t.Fatalf("gather without STUN: %v %+v", err, cands)
	}
}

// connectPair runs gather+check on both agents concurrently and returns
// the nominated remote candidate on each side.
func connectPair(t *testing.T, tb *testbed, a, b *Agent) (Candidate, Candidate) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ca, err := a.Gather(ctx, tb.stunServer)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Gather(ctx, tb.stunServer)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var nomA, nomB Candidate
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); nomA, errA = a.Check(ctx, cb) }()
	go func() { defer wg.Done(); nomB, errB = b.Check(ctx, ca) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("checks failed: %v / %v", errA, errB)
	}
	return nomA, nomB
}

func TestCheckPublicToPublic(t *testing.T) {
	tb := newTestbed(t)
	ha := tb.net.MustHost(netip.MustParseAddr("20.0.0.1"))
	hb := tb.net.MustHost(netip.MustParseAddr("20.0.0.2"))
	a, _ := NewAgent(ha, "a")
	b, _ := NewAgent(hb, "b")
	defer a.Close()
	defer b.Close()
	nomA, nomB := connectPair(t, tb, a, b)
	if nomA.Addr.Addr() != hb.Addr() || nomB.Addr.Addr() != ha.Addr() {
		t.Fatalf("nominations %v / %v", nomA, nomB)
	}
}

func TestCheckThroughFullConeNATs(t *testing.T) {
	tb := newTestbed(t)
	natA := tb.net.MustNAT(netip.MustParseAddr("6.6.6.6"), netsim.NATFullCone)
	natB := tb.net.MustNAT(netip.MustParseAddr("7.7.7.7"), netsim.NATFullCone)
	ha := natA.MustHost(netip.MustParseAddr("192.168.0.5"))
	hb := natB.MustHost(netip.MustParseAddr("192.168.7.5"))
	a, _ := NewAgent(ha, "a")
	b, _ := NewAgent(hb, "b")
	defer a.Close()
	defer b.Close()
	nomA, nomB := connectPair(t, tb, a, b)
	// Host candidates (private) are unreachable across NATs; the
	// nominated pair must be the srflx candidates.
	if nomA.Addr.Addr() != netip.MustParseAddr("7.7.7.7") {
		t.Fatalf("A nominated %v, want B's NAT", nomA)
	}
	if nomB.Addr.Addr() != netip.MustParseAddr("6.6.6.6") {
		t.Fatalf("B nominated %v, want A's NAT", nomB)
	}
}

func TestCheckThroughAddressRestrictedNATs(t *testing.T) {
	tb := newTestbed(t)
	natA := tb.net.MustNAT(netip.MustParseAddr("6.6.6.6"), netsim.NATAddressRestricted)
	natB := tb.net.MustNAT(netip.MustParseAddr("7.7.7.7"), netsim.NATAddressRestricted)
	ha := natA.MustHost(netip.MustParseAddr("192.168.0.5"))
	hb := natB.MustHost(netip.MustParseAddr("192.168.1.5"))
	a, _ := NewAgent(ha, "a")
	b, _ := NewAgent(hb, "b")
	defer a.Close()
	defer b.Close()
	nomA, nomB := connectPair(t, tb, a, b)
	if nomA.Type != TypeSrflx || nomB.Type != TypeSrflx {
		t.Fatalf("expected srflx nominations, got %+v / %+v", nomA, nomB)
	}
}

func TestCheckFailsBetweenSymmetricNATs(t *testing.T) {
	tb := newTestbed(t)
	natA := tb.net.MustNAT(netip.MustParseAddr("6.6.6.6"), netsim.NATSymmetric)
	natB := tb.net.MustNAT(netip.MustParseAddr("7.7.7.7"), netsim.NATSymmetric)
	ha := natA.MustHost(netip.MustParseAddr("192.168.0.5"))
	hb := natB.MustHost(netip.MustParseAddr("192.168.1.5"))
	a, _ := NewAgent(ha, "a")
	b, _ := NewAgent(hb, "b")
	defer a.Close()
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	ca, err := a.Gather(ctx, tb.stunServer)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Gather(ctx, tb.stunServer)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); _, errA = a.Check(ctx, cb) }()
	go func() { defer wg.Done(); _, errB = b.Check(ctx, ca) }()
	wg.Wait()
	if errA == nil || errB == nil {
		t.Fatalf("symmetric<->symmetric should fail, got %v / %v", errA, errB)
	}
}

func TestCheckNoCandidates(t *testing.T) {
	tb := newTestbed(t)
	h := tb.net.MustHost(netip.MustParseAddr("20.0.0.9"))
	a, _ := NewAgent(h, "a")
	defer a.Close()
	if _, err := a.Check(context.Background(), nil); err != ErrNoCandidates {
		t.Fatalf("err = %v", err)
	}
}

func TestPunchAfterNomination(t *testing.T) {
	tb := newTestbed(t)
	natA := tb.net.MustNAT(netip.MustParseAddr("6.6.6.6"), netsim.NATFullCone)
	ha := natA.MustHost(netip.MustParseAddr("192.168.0.5"))
	hb := tb.net.MustHost(netip.MustParseAddr("20.0.0.2"))
	a, _ := NewAgent(ha, "a")
	b, _ := NewAgent(hb, "b")
	defer a.Close()
	defer b.Close()
	nomA, nomB := connectPair(t, tb, a, b)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	type res struct {
		c   *netsim.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := tb.net.Punch(ctx, hb, b.LocalCandidateFor().Addr, nomB.Addr)
		ch <- res{c, err}
	}()
	ca, err := tb.net.Punch(ctx, ha, a.LocalCandidateFor().Addr, nomA.Addr)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	// Data flows.
	go ca.Write([]byte("via punched flow"))
	buf := make([]byte, 64)
	r.c.SetReadDeadline(time.Now().Add(time.Second))
	n, err := r.c.Read(buf)
	if err != nil || string(buf[:n]) != "via punched flow" {
		t.Fatalf("punched read: %v %q", err, buf[:n])
	}
	// The remote address B observes is A's srflx (NAT) address.
	if got := r.c.RemoteAddr().String(); got != nomB.Addr.String() {
		t.Fatalf("B sees %v, want %v", got, nomB.Addr)
	}
}

func TestIPLeakObservableInCapture(t *testing.T) {
	tb := newTestbed(t)
	// Attacker peer on a public host records its own traffic.
	attacker := tb.net.MustHost(netip.MustParseAddr("66.24.0.10"))
	rec := capture.NewRecorder(0)
	attacker.AddTap(rec.Tap)

	nat := tb.net.MustNAT(netip.MustParseAddr("36.96.0.99"), netsim.NATFullCone)
	victim := nat.MustHost(netip.MustParseAddr("10.0.0.7"))

	a, _ := NewAgent(attacker, "atk")
	v, _ := NewAgent(victim, "vic")
	defer a.Close()
	defer v.Close()
	connectPair(t, tb, a, v)

	ips := capture.HarvestPeerIPs(rec.Packets(), attacker.Addr())
	found := false
	for _, ip := range ips {
		if ip == netip.MustParseAddr("36.96.0.99") {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim's public IP not harvested; got %v", ips)
	}
}

func TestAgentCloseStopsCheck(t *testing.T) {
	tb := newTestbed(t)
	h := tb.net.MustHost(netip.MustParseAddr("20.0.0.11"))
	a, _ := NewAgent(h, "a")
	remote := []Candidate{{Type: TypeHost, Addr: netip.MustParseAddrPort("20.9.9.9:1"), Priority: 1}}
	done := make(chan error, 1)
	go func() {
		_, err := a.Check(context.Background(), remote)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("check against dead candidate should fail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Check did not terminate after Close")
	}
}

func TestPriorityOrdering(t *testing.T) {
	if priority(prefHost, 1) <= priority(prefSrflx, 1) {
		t.Fatal("host priority must exceed srflx")
	}
}

func TestLocalCandidateForDefaults(t *testing.T) {
	tb := newTestbed(t)
	h := tb.net.MustHost(netip.MustParseAddr("20.0.0.12"))
	a, _ := NewAgent(h, "a")
	defer a.Close()
	// Before any gather: falls back to the socket's host candidate.
	c := a.LocalCandidateFor()
	if c.Type != TypeHost || c.Addr != a.LocalAddr() {
		t.Fatalf("default candidate %+v", c)
	}
	// After gathering with STUN behind no NAT: host candidate.
	if _, err := a.Gather(context.Background(), tb.stunServer); err != nil {
		t.Fatal(err)
	}
	if got := a.LocalCandidateFor(); got.Type != TypeHost {
		t.Fatalf("public host should prefer host candidate, got %+v", got)
	}
}

func TestGatherSTUNServerUnreachable(t *testing.T) {
	tb := newTestbed(t)
	h := tb.net.MustHost(netip.MustParseAddr("20.0.0.13"))
	a, _ := NewAgent(h, "a")
	defer a.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := a.Gather(ctx, netip.MustParseAddrPort("9.9.9.9:3478")); err == nil {
		t.Fatal("gather against dead STUN server should fail")
	}
}
