package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantComment extracts the expectation regexps from a `// want "re"`
// comment, analysistest-style: multiple patterns — double- or
// backtick-quoted — may follow one want marker.
var wantComment = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")
var wantPattern = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// runAnalysisTest loads internal/lint/testdata/src/<pkgdir>, runs the
// analyzer (with suppression handling, so //lint:ignore directives can
// be exercised in testdata too), and verifies the findings against the
// want comments: every finding must be expected and every expectation
// must fire.
func runAnalysisTest(t *testing.T, a *Analyzer, pkgdir string) {
	t.Helper()
	pkgs, err := Load(repoRoot(t), "./internal/lint/testdata/src/"+pkgdir)
	if err != nil {
		t.Fatal(err)
	}
	// Testdata may import real repo packages (obsnames imports obs), in
	// which case the module deps come back too; analyze only the target.
	var pkg *Package
	for _, p := range pkgs {
		if strings.HasSuffix(p.ImportPath, "testdata/src/"+pkgdir) {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatalf("testdata package %s not among %d loaded packages", pkgdir, len(pkgs))
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantComment.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantPattern.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					wants[key] = append(wants[key], &want{re: regexp.MustCompile(pat)})
				}
			}
		}
	}

	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q did not fire", key, w.re)
			}
		}
	}
}
