package lint

import "testing"

// Each analyzer is exercised against a testdata package seeded with
// violations (the `// want` comments) and compliant counterexamples
// that must stay silent, including one //lint:ignore suppression per
// analyzer.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		pkgdir   string
	}{
		{Detrand, "netsim"},
		{Ctxflow, "signal"},
		{Mutexspan, "mutexspan"},
		{Errwrap, "errwrap"},
		{Goleak, "goleak"},
		{Obsnames, "obsnames"},
		{Peertaint, "peertaint"},
		{Lockorder, "lockorder"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			runAnalysisTest(t, tc.analyzer, tc.pkgdir)
		})
	}
}

// TestSuiteOrder pins the registry: CI output ordering and the
// suppression namespace (pdnlint/<name>) both key off these names.
func TestSuiteOrder(t *testing.T) {
	want := []string{"detrand", "ctxflow", "mutexspan", "errwrap", "goleak", "obsnames", "peertaint", "lockorder"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s: missing doc", a.Name)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("%s: exactly one of Run and RunModule must be set", a.Name)
		}
	}
}
