package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph the interprocedural
// analyzers (peertaint, lockorder) run on. The construction is
// CHA-style on the standard library alone: static calls resolve to
// their single target, interface method calls resolve to every module
// type implementing the interface, and calls of function-typed values
// resolve to every module function or closure whose value is taken
// somewhere with an identical signature. The approximation
// over-reports edges and never drops one, which is the right polarity
// for both clients: taint that might flow is reported, a lock that
// might be acquired is ordered.

// FuncNode is one function in the call graph: a declared function or
// method (Obj set) or a function literal (Lit set). Only functions
// with bodies in the loaded module become nodes.
type FuncNode struct {
	// Obj is the declared function or method, nil for closures.
	Obj *types.Func
	// Lit is the function literal, nil for declared functions.
	Lit *ast.FuncLit
	// Body is the function's body block.
	Body *ast.BlockStmt
	// Pkg is the package the body lives in.
	Pkg *Package
	// Name is the stable display name: "pkg.Func", "pkg.Type.Method",
	// or "pkg.Func$1" for the first closure inside pkg.Func.
	Name string
	// Sig is the function's signature.
	Sig *types.Signature
	// Calls lists the call sites in the body, in source order. Calls
	// inside nested function literals belong to the literal's node.
	Calls []*CallSite
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Obj.Pos()
}

// CallSite is one call expression inside a FuncNode.
type CallSite struct {
	// Call is the expression.
	Call *ast.CallExpr
	// Callees are the module-internal targets (with bodies). Empty for
	// calls that only reach code outside the module.
	Callees []*FuncNode
	// Ext is the statically resolved non-module callee (stdlib),
	// nil when the call resolves inside the module or dynamically.
	Ext *types.Func
	// Dynamic marks interface dispatch and function-value calls, where
	// Callees is a CHA over-approximation rather than the single target.
	Dynamic bool
}

// CallGraph is the module-wide call graph.
type CallGraph struct {
	// Nodes in deterministic (position) order.
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
}

// NodeFor returns the node of a declared function, or nil.
func (g *CallGraph) NodeFor(obj *types.Func) *FuncNode { return g.byObj[obj] }

// LitNode returns the node of a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// cgBuilder carries the intermediate state of one construction.
type cgBuilder struct {
	graph *CallGraph
	// namedTypes are all package-level named types of the module, the
	// CHA universe interface calls resolve against.
	namedTypes []*types.Named
	// taken indexes address-taken functions by signature string: every
	// declared function, method value, or literal whose value escapes
	// into a variable, field, argument, or return.
	taken map[string][]*FuncNode
	// ifaceCache memoizes interface-method resolutions.
	ifaceCache map[*types.Func][]*FuncNode
	// funcVars maps function-typed variables to the literals or
	// declared functions assigned to them anywhere in the module. A
	// call through such a variable resolves to exactly these targets
	// instead of the signature-wide CHA set: `f := func(){...}; f()`
	// has one callee, not every func() in the module.
	funcVars map[*types.Var][]*FuncNode
}

// BuildCallGraph constructs the call graph over the loaded module
// packages. The result is deterministic: nodes and edges are ordered
// by source position.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	b := &cgBuilder{
		graph:      &CallGraph{byObj: make(map[*types.Func]*FuncNode), byLit: make(map[*ast.FuncLit]*FuncNode)},
		taken:      make(map[string][]*FuncNode),
		ifaceCache: make(map[*types.Func][]*FuncNode),
		funcVars:   make(map[*types.Var][]*FuncNode),
	}
	b.collectNodes(pkgs)
	b.collectNamedTypes(pkgs)
	b.collectAddressTaken(pkgs)
	b.collectFuncVars(pkgs)
	for _, n := range b.graph.Nodes {
		b.resolveCalls(n)
	}
	return b.graph
}

// collectNodes registers every declared function and function literal
// with a body, naming closures after their enclosing declaration.
func (b *cgBuilder) collectNodes(pkgs []*Package) {
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{
					Obj:  obj,
					Body: fd.Body,
					Pkg:  pkg,
					Name: declName(pkg, fd, obj),
					Sig:  obj.Type().(*types.Signature),
				}
				b.graph.Nodes = append(b.graph.Nodes, node)
				b.graph.byObj[obj] = node
				b.collectLits(pkg, node, fd.Body)
			}
		}
	}
	sort.Slice(b.graph.Nodes, func(i, j int) bool { return b.graph.Nodes[i].Pos() < b.graph.Nodes[j].Pos() })
}

// collectLits registers the function literals directly inside body
// (literals nested in other literals recurse with the inner node as
// parent, so "f$1$2" is the second literal inside f's first).
func (b *cgBuilder) collectLits(pkg *Package, parent *FuncNode, body *ast.BlockStmt) {
	n := 0
	inspectShallow(body, func(lit *ast.FuncLit) {
		n++
		sig, _ := pkg.Info.Types[lit].Type.(*types.Signature)
		node := &FuncNode{
			Lit:  lit,
			Body: lit.Body,
			Pkg:  pkg,
			Name: fmt.Sprintf("%s$%d", parent.Name, n),
			Sig:  sig,
		}
		b.graph.Nodes = append(b.graph.Nodes, node)
		b.graph.byLit[lit] = node
		b.collectLits(pkg, node, lit.Body)
	})
}

// inspectShallow visits the function literals immediately inside body,
// without descending into them.
func inspectShallow(body *ast.BlockStmt, fn func(*ast.FuncLit)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fn(lit)
			return false
		}
		return true
	})
}

// declName renders the stable display name of a declaration.
func declName(pkg *Package, fd *ast.FuncDecl, obj *types.Func) string {
	base := pkgBase(pkg)
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return base + "." + obj.Name()
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	recv := types.ExprString(t)
	// Strip type parameters from generic receivers for display.
	if i := strings.IndexByte(recv, '['); i > 0 {
		recv = recv[:i]
	}
	return base + "." + recv + "." + obj.Name()
}

// collectNamedTypes gathers the CHA universe: every package-level named
// type of the module.
func (b *cgBuilder) collectNamedTypes(pkgs []*Package) {
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				b.namedTypes = append(b.namedTypes, named)
			}
		}
	}
}

// sigKey renders a signature for address-taken matching. Parameter
// names are not printed, so structurally identical function types from
// different packages collide — which is exactly the CHA intent.
func sigKey(sig *types.Signature) string {
	if sig == nil {
		return ""
	}
	return types.TypeString(sig, nil)
}

// addTaken registers node as address-taken under its value signature.
func (b *cgBuilder) addTaken(key string, node *FuncNode) {
	if node == nil || key == "" {
		return
	}
	for _, have := range b.taken[key] {
		if have == node {
			return
		}
	}
	b.taken[key] = append(b.taken[key], node)
}

// collectAddressTaken finds every function whose value escapes: a
// declared function or method referenced outside call position, and
// every function literal (a literal in call position is resolved as a
// direct call, but registering it too only adds edges the dynamic call
// might genuinely take).
func (b *cgBuilder) collectAddressTaken(pkgs []*Package) {
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			// callIdents are the identifiers naming a callee, excluded
			// from address-taken registration.
			callIdents := make(map[*ast.Ident]bool)
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					callIdents[fun] = true
				case *ast.SelectorExpr:
					callIdents[fun.Sel] = true
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					if node := b.graph.byLit[n]; node != nil {
						b.addTaken(sigKey(node.Sig), node)
					}
				case *ast.Ident:
					if callIdents[n] {
						return true
					}
					f, ok := info.Uses[n].(*types.Func)
					if !ok {
						return true
					}
					sig := f.Type().(*types.Signature)
					if recv := sig.Recv(); recv != nil {
						// Method value: the escaping value's signature
						// drops the receiver.
						valueSig := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
						if types.IsInterface(recv.Type()) {
							for _, impl := range b.resolveInterfaceMethod(f) {
								b.addTaken(sigKey(valueSig), impl)
							}
						} else if node := b.graph.byObj[f]; node != nil {
							b.addTaken(sigKey(valueSig), node)
						}
						return true
					}
					if node := b.graph.byObj[f]; node != nil {
						b.addTaken(sigKey(sig), node)
					}
				}
				return true
			})
		}
	}
	for key := range b.taken {
		nodes := b.taken[key]
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Pos() < nodes[j].Pos() })
	}
}

// collectFuncVars records, for every function-typed variable, the
// function values assigned to it (literals and declared functions).
// Variables assigned only such values resolve precisely at call sites;
// anything fancier (params, fields, channel receives) falls back to
// signature CHA.
func (b *cgBuilder) collectFuncVars(pkgs []*Package) {
	for _, pkg := range pkgs {
		info := pkg.Info
		record := func(lhs, rhs ast.Expr) {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				return
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() {
				return
			}
			if _, ok := v.Type().Underlying().(*types.Signature); !ok {
				return
			}
			var target *FuncNode
			switch rhs := ast.Unparen(rhs).(type) {
			case *ast.FuncLit:
				target = b.graph.byLit[rhs]
			case *ast.Ident:
				if f, ok := info.Uses[rhs].(*types.Func); ok {
					target = b.graph.byObj[f]
				}
			case *ast.SelectorExpr:
				if f, ok := info.Uses[rhs.Sel].(*types.Func); ok {
					target = b.graph.byObj[f]
				}
			}
			if target != nil {
				b.funcVars[v] = append(b.funcVars[v], target)
			}
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i := range n.Lhs {
							record(n.Lhs[i], n.Rhs[i])
						}
					}
				case *ast.ValueSpec:
					if len(n.Names) == len(n.Values) {
						for i := range n.Names {
							record(n.Names[i], n.Values[i])
						}
					}
				}
				return true
			})
		}
	}
	for v := range b.funcVars {
		nodes := b.funcVars[v]
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Pos() < nodes[j].Pos() })
	}
}

// resolveInterfaceMethod returns the module methods a call of the
// interface method m can dispatch to, in deterministic order.
func (b *cgBuilder) resolveInterfaceMethod(m *types.Func) []*FuncNode {
	if impls, ok := b.ifaceCache[m]; ok {
		return impls
	}
	recv := m.Type().(*types.Signature).Recv()
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var impls []*FuncNode
	seen := make(map[*FuncNode]bool)
	for _, named := range b.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		f, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node := b.graph.byObj[f]; node != nil && !seen[node] {
			seen[node] = true
			impls = append(impls, node)
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].Pos() < impls[j].Pos() })
	b.ifaceCache[m] = impls
	return impls
}

// resolveCalls populates node.Calls: every call expression in the
// body (excluding nested literal bodies), with its resolved targets.
func (b *cgBuilder) resolveCalls(node *FuncNode) {
	info := node.Pkg.Info
	walk := func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literal bodies are their own nodes
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if site := b.resolveCall(node, info, call); site != nil {
			node.Calls = append(node.Calls, site)
		}
		return true
	}
	ast.Inspect(node.Body, walk)
}

// resolveCall classifies one call expression. It returns nil for
// conversions and builtins.
func (b *cgBuilder) resolveCall(node *FuncNode, info *types.Info, call *ast.CallExpr) *CallSite {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return nil
	}
	site := &CallSite{Call: call}

	// Direct call of a literal: func(){...}().
	if lit, ok := fun.(*ast.FuncLit); ok {
		if target := b.graph.byLit[lit]; target != nil {
			site.Callees = append(site.Callees, target)
		}
		return site
	}

	if f := calleeFunc(info, call); f != nil {
		sig := f.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
			site.Dynamic = true
			site.Callees = b.resolveInterfaceMethod(f)
			return site
		}
		if target := b.graph.byObj[f]; target != nil {
			site.Callees = append(site.Callees, target)
		} else {
			site.Ext = f
		}
		b.addClosureArgs(node, info, call, site)
		return site
	}

	// Call of a function-typed variable whose assignments are all
	// visible: resolve to exactly those targets.
	if id, ok := fun.(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			if targets := b.funcVars[v]; len(targets) > 0 {
				site.Dynamic = true
				site.Callees = append(site.Callees, targets...)
				return site
			}
		}
	}

	// Call of any other function-typed value: CHA over address-taken
	// functions with the identical signature. Parameterless
	// no-result signatures (plain `func()`) are too common to match
	// against — every cleanup closure in the module would become a
	// callee — so those calls stay unresolved.
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			site.Dynamic = true
			if sig.Params().Len()+sig.Results().Len() > 0 {
				site.Callees = append(site.Callees, b.taken[sigKey(sig)]...)
			}
			return site
		}
	}
	return site
}

// addClosureArgs treats function literals passed to functions outside
// the module (sort.Slice, ast.Inspect, ...) as invoked at the call
// site: the callee's body is invisible, and assuming the callback runs
// under the caller's locks and taint is the sound default.
func (b *cgBuilder) addClosureArgs(node *FuncNode, info *types.Info, call *ast.CallExpr, site *CallSite) {
	if site.Ext == nil {
		return
	}
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			if target := b.graph.byLit[lit]; target != nil {
				site.Callees = append(site.Callees, target)
			}
		}
	}
}

// DebugString renders the graph as deterministic "caller -> callee"
// lines, one call site per line, dynamic edges marked. The golden
// call-graph fixture pins this rendering.
func (g *CallGraph) DebugString() string {
	var sb strings.Builder
	for _, n := range g.Nodes {
		for _, site := range n.Calls {
			if len(site.Callees) == 0 {
				continue
			}
			names := make([]string, len(site.Callees))
			for i, c := range site.Callees {
				names[i] = c.Name
			}
			sort.Strings(names)
			kind := "->"
			if site.Dynamic {
				kind = "~>"
			}
			fmt.Fprintf(&sb, "%s %s %s\n", n.Name, kind, strings.Join(names, " "))
		}
	}
	return sb.String()
}
