package lint

import (
	"flag"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden regenerates the call-graph fixture:
// go test ./internal/lint -run TestCallGraphGolden -args -update
var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// loadTestdataGraph builds the call graph over one testdata package.
func loadTestdataGraph(t *testing.T, pkgdir string) (*CallGraph, *Package) {
	t.Helper()
	pkgs, err := Load(repoRoot(t), "./internal/lint/testdata/src/"+pkgdir)
	if err != nil {
		t.Fatal(err)
	}
	var pkg *Package
	for _, p := range pkgs {
		if strings.HasSuffix(p.ImportPath, "testdata/src/"+pkgdir) {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatalf("testdata package %s not loaded", pkgdir)
	}
	return BuildCallGraph([]*Package{pkg}), pkg
}

// nodeByName finds a node by display name.
func nodeByName(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("node %s not in graph (have %d nodes)", name, len(g.Nodes))
	return nil
}

// calleeNames flattens a node's resolved callees.
func calleeNames(n *FuncNode) []string {
	var out []string
	for _, site := range n.Calls {
		for _, c := range site.Callees {
			out = append(out, c.Name)
		}
	}
	return out
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestCallGraphStatic(t *testing.T) {
	g, _ := loadTestdataGraph(t, "callgraph")
	static := nodeByName(t, g, "callgraph.static")
	names := calleeNames(static)
	if len(names) != 2 || names[0] != "callgraph.leaf" || names[1] != "callgraph.leaf" {
		t.Errorf("static calls = %v, want two callgraph.leaf edges", names)
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g, _ := loadTestdataGraph(t, "callgraph")
	dispatch := nodeByName(t, g, "callgraph.dispatch")
	if len(dispatch.Calls) != 1 || !dispatch.Calls[0].Dynamic {
		t.Fatalf("dispatch: want one dynamic call site, got %+v", dispatch.Calls)
	}
	names := calleeNames(dispatch)
	if !contains(names, "callgraph.English.Greet") || !contains(names, "callgraph.French.Greet") {
		t.Errorf("interface dispatch resolved to %v, want both Greet implementations", names)
	}
}

func TestCallGraphMethodValue(t *testing.T) {
	g, _ := loadTestdataGraph(t, "callgraph")
	call := nodeByName(t, g, "callgraph.callMethodValue")
	names := calleeNames(call)
	// e.Greet escaped as a func() string method value, so the dynamic
	// call must see at least the bound method among its candidates.
	if !contains(names, "callgraph.English.Greet") {
		t.Errorf("method-value call resolved to %v, want callgraph.English.Greet among candidates", names)
	}
}

func TestCallGraphClosures(t *testing.T) {
	g, _ := loadTestdataGraph(t, "callgraph")
	closures := nodeByName(t, g, "callgraph.closures")
	names := calleeNames(closures)
	if !contains(names, "callgraph.closures$1") {
		t.Errorf("local closure var call resolved to %v, want callgraph.closures$1", names)
	}
	if !contains(names, "callgraph.closures$2") {
		t.Errorf("direct literal call resolved to %v, want callgraph.closures$2", names)
	}
	// The nested literal belongs to its parent literal's node.
	inner := nodeByName(t, g, "callgraph.closures$2")
	if !contains(calleeNames(inner), "callgraph.closures$2$1") {
		t.Errorf("nested literal call resolved to %v, want callgraph.closures$2$1", calleeNames(inner))
	}
}

func TestCallGraphClosureToExternal(t *testing.T) {
	g, _ := loadTestdataGraph(t, "callgraph")
	sorted := nodeByName(t, g, "callgraph.sorted")
	if !contains(calleeNames(sorted), "callgraph.sorted$1") {
		t.Errorf("closure passed to sort.Slice not treated as invoked: %v", calleeNames(sorted))
	}
}

func TestCallGraphFuncVar(t *testing.T) {
	g, _ := loadTestdataGraph(t, "callgraph")
	fv := nodeByName(t, g, "callgraph.funcVar")
	names := calleeNames(fv)
	if !contains(names, "callgraph.leaf") || !contains(names, "callgraph.two") {
		t.Errorf("func-var call resolved to %v, want exactly its two assignments", names)
	}
	// Precision: the variable's assignments are visible, so unrelated
	// same-signature functions (static) must NOT be candidates.
	if contains(names, "callgraph.static") {
		t.Errorf("func-var call over-resolved to unrelated callgraph.static: %v", names)
	}
}

func TestCallGraphMethodLookup(t *testing.T) {
	g, pkg := loadTestdataGraph(t, "callgraph")
	scope := pkg.Types.Scope()
	obj := scope.Lookup("static")
	f, ok := obj.(*types.Func)
	if !ok {
		t.Fatal("static is not a func")
	}
	if g.NodeFor(f) == nil {
		t.Error("NodeFor(static) = nil")
	}
}

// TestCallGraphGolden pins the full deterministic rendering, so any
// resolution change shows up as a reviewable fixture diff. Regenerate
// with: go test ./internal/lint -run TestCallGraphGolden -args -update
func TestCallGraphGolden(t *testing.T) {
	g, _ := loadTestdataGraph(t, "callgraph")
	got := g.DebugString()
	golden := filepath.Join(repoRoot(t), "internal", "lint", "testdata", "callgraph.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("call graph drifted from golden fixture:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
