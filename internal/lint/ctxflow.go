package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxPkgs are the packages whose exported surfaces must accept a
// context.Context whenever they can block: the scan engine, the
// detector, and the signaling/interception layers whose handlers the
// paper's experiments cancel and time-bound.
var ctxPkgs = map[string]bool{
	"dispatch": true,
	"detector": true,
	"signal":   true,
	"mitm":     true,
	"analyzer": true,
}

// Ctxflow flags (a) exported functions in the scoped packages that
// perform blocking operations — channel sends/receives, selects without
// default, Wait calls, net/http calls — directly or via same-package
// callees, without accepting a context.Context, and (b) any call to
// context.Background or context.TODO below cmd/ (non-main packages),
// where a caller's context should be derived instead.
//
// Methods implementing io.Closer (Close() error) are exempt: Close is
// conventionally prompt and its signature is fixed by the interface.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "require context.Context on blocking exported APIs and forbid context.Background below cmd/",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) error {
	info := pass.Info()
	if pass.Pkg.Types.Name() != "main" {
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgCall(info, call, "context", "Background", "TODO") {
					pass.Reportf(call.Pos(), "context.%s below cmd/; accept a context.Context and derive from it", calleeFunc(info, call).Name())
				}
				return true
			})
		}
	}
	if !ctxPkgs[pkgBase(pass.Pkg)] {
		return nil
	}

	decls := packageFuncDecls(pass.Pkg)
	blocking := make(map[*types.Func]bool)
	for f, fd := range decls {
		if directlyBlocks(info, fd.Body) {
			blocking[f] = true
		}
	}
	propagateBlocking(info, decls, blocking)

	for f, fd := range decls {
		if !fd.Name.IsExported() || !blocking[f] {
			continue
		}
		sig := f.Type().(*types.Signature)
		if hasContextParam(sig) || isCloserMethod(fd, sig) {
			continue
		}
		pass.Reportf(fd.Name.Pos(), "exported %s blocks (channel/Wait/net operation) but takes no context.Context", fd.Name.Name)
	}
	return nil
}

// packageFuncDecls maps every package-level function and method with a
// body to its declaration.
func packageFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if f, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[f] = fd
			}
		}
	}
	return out
}

// directlyBlocks reports whether body contains a blocking operation in
// its own statements (function literals are skipped: goroutine and
// callback bodies block their own executors, not this function).
func directlyBlocks(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	visitBlocking(info, body, false, func(ast.Node, string) { found = true })
	return found
}

// visitBlocking walks n and calls report for every blocking operation:
// channel sends/receives, range over a channel, selects without a
// default, Wait and net/http calls (plus time.Sleep when includeSleep).
// Function literals are skipped — their bodies run on other goroutines.
// A select with a default clause is non-blocking, so its comm
// expressions are skipped while its clause bodies are still visited.
func visitBlocking(info *types.Info, n ast.Node, includeSleep bool, report func(n ast.Node, what string)) {
	visitClauseBodies := func(sel *ast.SelectStmt) {
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				for _, s := range cc.Body {
					visitBlocking(info, s, includeSleep, report)
				}
			}
		}
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				report(n, "blocking select")
			}
			visitClauseBodies(n)
			return false
		case *ast.SendStmt:
			report(n, "channel send")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				report(n, "channel receive")
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(n, "range over channel")
				}
			}
		case *ast.CallExpr:
			if isBlockingCall(info, n) || (includeSleep && isPkgCall(info, n, "time", "Sleep")) {
				report(n, "potentially blocking call")
			}
		}
		return true
	})
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isBlockingCall recognizes the call forms treated as blocking: anything
// into net or net/http (dials, requests, conn reads/writes) and Wait on
// the sync primitives.
func isBlockingCall(info *types.Info, call *ast.CallExpr) bool {
	if methodOn(info, call, "Wait", "sync.WaitGroup", "sync.Cond") {
		return true
	}
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	path := funcPkgPath(f)
	if path == "net" || path == "net/http" {
		return true
	}
	// Methods on net / net/http types reached through other packages
	// (e.g. an http.Client field) block too.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selection, ok := info.Selections[sel]; ok {
			rt := recvTypeString(selection.Recv())
			if strings.HasPrefix(rt, "net.") || strings.HasPrefix(rt, "net/http.") {
				return true
			}
		}
	}
	return false
}

// propagateBlocking closes the blocking set over same-package static
// calls: a function calling a blocking same-package function blocks.
// `go f(args)` is excluded — f blocks the new goroutine, not the
// spawner — but its arguments still count, since they are evaluated on
// the spawning goroutine.
func propagateBlocking(info *types.Info, decls map[*types.Func]*ast.FuncDecl, blocking map[*types.Func]bool) {
	for changed := true; changed; {
		changed = false
		for f, fd := range decls {
			if blocking[f] {
				continue
			}
			var visit func(n ast.Node) bool
			visit = func(n ast.Node) bool {
				if blocking[f] {
					return false
				}
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.GoStmt:
					for _, arg := range n.Call.Args {
						ast.Inspect(arg, visit)
					}
					return false
				case *ast.CallExpr:
					if callee := calleeFunc(info, n); callee != nil && blocking[callee] {
						// Calls that already receive this function's context
						// still count: the rule is about offering callers a
						// context at the exported boundary.
						blocking[f] = true
						changed = true
					}
				}
				return true
			}
			ast.Inspect(fd.Body, visit)
		}
	}
}

// isCloserMethod reports whether fd is a Close() error method — the
// io.Closer shape, whose signature the interface fixes.
func isCloserMethod(fd *ast.FuncDecl, sig *types.Signature) bool {
	if fd.Recv == nil || fd.Name.Name != "Close" {
		return false
	}
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type())
}
