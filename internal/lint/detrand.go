package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the packages whose outputs (Tables I–IV, figure
// data, experiment reports) must be byte-identical run-to-run and at any
// dispatch worker count. Scoping is by package base name so the same
// rules apply to testdata packages in this suite's own tests.
var deterministicPkgs = map[string]bool{
	"netsim":      true,
	"detector":    true,
	"experiments": true,
	"provider":    true,
	"analyzer":    true,
	"chaos":       true,
	"swarmload":   true,
	"federation":  true,
}

// randAllowed are the math/rand package-level constructors that build
// seeded local sources; everything else at package level consults the
// process-global source and is banned in deterministic packages.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

// Detrand flags wall-clock reads (time.Now, time.Since), global-source
// math/rand calls, and map-order-dependent iteration feeding formatted
// output inside the deterministic packages. Passing time.Now itself as a
// default for an injectable clock field is allowed — only calls are
// flagged.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock and global-rand reads, and map-ordered output, " +
		"in packages whose results must be byte-identical across runs",
	Run: runDetrand,
}

func runDetrand(pass *Pass) error {
	if !deterministicPkgs[pkgBase(pass.Pkg)] {
		return nil
	}
	info := pass.Info()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetrandCall(pass, info, n)
			case *ast.RangeStmt:
				checkMapRangeOutput(pass, info, n)
			}
			return true
		})
	}
	return nil
}

func checkDetrandCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	f := calleeFunc(info, call)
	if f == nil || f.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch funcPkgPath(f) {
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" || f.Name() == "Until" {
			pass.Reportf(call.Pos(), "call to time.%s in deterministic package; inject a clock (func() time.Time) or restructure around timers", f.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randAllowed[f.Name()] {
			pass.Reportf(call.Pos(), "call to global-source rand.%s in deterministic package; use a seeded *rand.Rand", f.Name())
		}
	}
}

// checkMapRangeOutput flags `for ... := range m` over a map whose body
// produces formatted output: Go randomizes map iteration order, so the
// produced bytes differ run to run. Sort the keys first.
func checkMapRangeOutput(pass *Pass, info *types.Info, rng *ast.RangeStmt) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // deferred/spawned bodies run outside the loop
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isOutputCall(info, call) {
			pass.Reportf(rng.Pos(), "map iteration order feeds output (%s); iterate sorted keys instead", pass.Fset().Position(call.Pos()))
			return false
		}
		return true
	})
}

// isOutputCall recognizes fmt printing and Write*-style methods — the
// sinks whose byte order the tables depend on.
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	if isPkgCall(info, call, "fmt",
		"Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln", "Sprint", "Sprintf", "Sprintln") {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		// Only count genuine method calls (not conversions or funcs).
		if f, ok := info.Uses[sel.Sel].(*types.Func); ok {
			return f.Type().(*types.Signature).Recv() != nil
		}
	}
	return false
}
