package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// Errwrap flags fmt.Errorf calls that format an error value with %v or
// %s: the produced error loses its chain, so errors.Is/As stop seeing
// the cause. %w preserves it. Non-error arguments formatted with %v/%s
// are fine.
var Errwrap = &Analyzer{
	Name: "errwrap",
	Doc:  "require %w (not %v/%s) when fmt.Errorf formats an error value",
	Run:  runErrwrap,
}

func runErrwrap(pass *Pass) error {
	info := pass.Info()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgCall(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			verbs, ok := scanVerbs(format)
			if !ok {
				return true // explicit arg indexes etc.: out of scope
			}
			for i, verb := range verbs {
				argIdx := 1 + i
				if argIdx >= len(call.Args) || (verb != 'v' && verb != 's') {
					continue
				}
				tv, ok := info.Types[call.Args[argIdx]]
				if !ok {
					continue
				}
				if implementsError(tv.Type) {
					pass.Reportf(call.Args[argIdx].Pos(), "%%%c applied to error value loses the chain; use %%w", verb)
				}
			}
			return true
		})
	}
	return nil
}

// scanVerbs returns one entry per argument the format string consumes:
// the verb letter for ordinary verbs, '*' for star width/precision
// arguments. It reports !ok for explicit argument indexes (%[n]d),
// which reorder consumption.
func scanVerbs(format string) ([]byte, bool) {
	var out []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// flags, width, precision — stars consume arguments.
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				out = append(out, '*')
				i++
				continue
			}
			if strings.IndexByte("+-# 0.", c) >= 0 || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			out = append(out, format[i])
		}
	}
	return out, true
}
