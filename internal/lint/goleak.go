package lint

import (
	"go/ast"
	"go/types"
)

// Goleak flags `go` statements that launch work with no cancellation or
// completion path. A launched function is considered tracked when its
// body (or, for calls of same-package functions, the callee's body)
// references a context.Context, calls Done/Add on a sync.WaitGroup, or
// performs any channel operation (send, receive, select, range) — a
// goroutine that owns none of these can neither be stopped nor awaited,
// which is how scans outlive their deadline and tests leak runners.
// Launch sites directly preceded by a WaitGroup Add call are also
// accepted (`wg.Add(1); go f()` where f calls wg.Done).
var Goleak = &Analyzer{
	Name: "goleak",
	Doc:  "forbid goroutine launches without a cancellation or completion path",
	Run:  runGoleak,
}

func runGoleak(pass *Pass) error {
	info := pass.Info()
	decls := packageFuncDecls(pass.Pkg)
	bodies := make(map[*types.Func]*ast.BlockStmt, len(decls))
	for f, fd := range decls {
		bodies[f] = fd.Body
	}
	for _, file := range pass.Pkg.Files {
		// Walk statement lists manually so each go statement sees its
		// preceding siblings (for the wg.Add-before-launch pattern).
		ast.Inspect(file, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				g, ok := stmt.(*ast.GoStmt)
				if !ok {
					continue
				}
				if precededByWGAdd(info, block.List[:i]) || launchTracked(info, g.Call, bodies) {
					continue
				}
				pass.Reportf(g.Pos(), "goroutine has no cancellation or completion path (no context, WaitGroup, or channel operation)")
			}
			return true
		})
	}
	return nil
}

// precededByWGAdd reports whether the immediately preceding non-empty
// statement is a sync.WaitGroup Add call.
func precededByWGAdd(info *types.Info, before []ast.Stmt) bool {
	if len(before) == 0 {
		return false
	}
	es, ok := before[len(before)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && methodOn(info, call, "Add", "sync.WaitGroup")
}

// launchTracked decides whether the launched call has a cancellation or
// completion path.
func launchTracked(info *types.Info, call *ast.CallExpr, bodies map[*types.Func]*ast.BlockStmt) bool {
	// A context argument hands the callee its cancellation signal.
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
			return true
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return bodyHasCancellationPath(info, lit.Body)
	}
	// Same-package callee: look through to its body.
	if f := calleeFunc(info, call); f != nil {
		if body, ok := bodies[f]; ok {
			return bodyHasCancellationPath(info, body)
		}
	}
	return false
}

// bodyHasCancellationPath scans a launched body for context use,
// WaitGroup bookkeeping, or channel operations. Nested function
// literals count too: a tracked inner launch implies the outer one
// at least signals through the same structures.
func bodyHasCancellationPath(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if methodOn(info, n, "Done", "sync.WaitGroup") || methodOn(info, n, "Add", "sync.WaitGroup") {
				found = true
			}
			// close(ch) is a completion signal: whoever receives from
			// (or ranges over) ch observes the goroutine finishing.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}
