// Package lint is a repo-specific static-analysis suite enforcing the
// invariants pdnsec's reproducibility guarantees rest on: no wall-clock
// or global-rand reads in deterministic packages, context plumbed
// through blocking paths, no mutexes held across blocking operations,
// error chains preserved with %w, no goroutine launched without a
// cancellation or completion path, and telemetry names literal
// snake_case. See docs/lint.md for the rules and the suppression
// syntax.
//
// The package mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer / Pass / Diagnostic) on the standard library alone, so the
// suite builds offline with zero dependencies; migrating an analyzer to
// x/tools later is mechanical.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, in the image of analysis.Analyzer.
// Exactly one of Run and RunModule is set: Run analyzers see one package
// at a time, RunModule analyzers (peertaint, lockorder) see the whole
// module at once plus its call graph, which is what lets them follow a
// value or a held lock across function and package boundaries.
type Analyzer struct {
	// Name identifies the analyzer in findings and suppressions,
	// e.g. "detrand".
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
	// RunModule inspects every module package at once, with the
	// interprocedural call graph built and shared across analyzers.
	RunModule func(*ModulePass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Fset returns the file set positioning the package.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Info returns the type-checker fact tables for the package.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// ModulePass carries one module-wide analyzer's view of the whole load.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	// Graph is the interprocedural call graph over Pkgs, shared by every
	// module analyzer of one Run.
	Graph *CallGraph

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkgs[0].Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Fset returns the file set positioning the module.
func (p *ModulePass) Fset() *token.FileSet { return p.Pkgs[0].Fset }

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col: [name] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// ignoreDirective matches the suppression comment syntax:
//
//	//lint:ignore pdnlint/<name> reason
//
// The directive suppresses findings of <name> on its own line or, when
// written as a standalone comment, on the line below. A reason is
// mandatory.
var ignoreDirective = regexp.MustCompile(`^//\s*lint:ignore\s+pdnlint/([a-z]+)\s+(\S.*)$`)

// suppressor indexes the ignore directives of one package. A directive
// suppresses findings of the named analyzer on its own line (trailing
// comment) and on the line below (standalone comment above the finding).
// Maps are keyed per file so line numbers don't collide across files.
type suppressor struct {
	byFile map[string]map[string]map[int]bool // file -> analyzer -> line
}

func newSuppressor(pkg *Package) *suppressor {
	s := &suppressor{byFile: make(map[string]map[string]map[int]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byAn := s.byFile[pos.Filename]
				if byAn == nil {
					byAn = make(map[string]map[int]bool)
					s.byFile[pos.Filename] = byAn
				}
				lines := byAn[m[1]]
				if lines == nil {
					lines = make(map[int]bool)
					byAn[m[1]] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return s
}

func (s *suppressor) suppressed(d Diagnostic) bool {
	return s.byFile[d.Pos.Filename][d.Analyzer][d.Pos.Line]
}

// Run applies every analyzer to every package and returns the surviving
// findings ordered by position. Per-package analyzers run package by
// package; module analyzers run once over the whole load, sharing one
// call graph.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	sups := make([]*suppressor, len(pkgs))
	for i, pkg := range pkgs {
		sups[i] = newSuppressor(pkg)
	}
	suppressed := func(d Diagnostic) bool {
		for _, s := range sups {
			if s.suppressed(d) {
				return true
			}
		}
		return false
	}
	for i, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diags {
				if !sups[i].suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	var graph *CallGraph
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if len(pkgs) == 0 {
			break
		}
		if graph == nil {
			graph = BuildCallGraph(pkgs)
		}
		pass := &ModulePass{Analyzer: a, Pkgs: pkgs, Graph: graph}
		if err := a.RunModule(pass); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if !suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// All returns the full pdnlint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Ctxflow, Mutexspan, Errwrap, Goleak, Obsnames, Peertaint, Lockorder}
}

// ---- shared type/AST helpers used by the analyzers ----

// pkgBase returns the last path element of the package import path,
// which is how analyzers scope themselves to named packages (matching
// both internal/<name> in the repo and testdata/src/<name> in tests).
func pkgBase(p *Package) string {
	path := p.ImportPath
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for builtins, conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring f, or ""
// for builtins.
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isPkgCall reports whether call invokes one of the named package-level
// functions of the package with import path pkgPath.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	f := calleeFunc(info, call)
	if f == nil || funcPkgPath(f) != pkgPath {
		return false
	}
	if f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context (through aliases
// like analyzer's ctxT).
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasContextParam reports whether any (possibly variadic) parameter of
// sig is a context.Context.
func hasContextParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// recvTypeString renders the receiver's base named type as pkgpath.Name
// (e.g. "sync.Mutex"), or "".
func recvTypeString(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// methodOn reports whether call is sel-style method call named name on a
// receiver whose base type is one of the fully-qualified types given.
func methodOn(info *types.Info, call *ast.CallExpr, name string, recvTypes ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	rt := recvTypeString(selection.Recv())
	for _, want := range recvTypes {
		if rt == want {
			return true
		}
	}
	return false
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}

// exportedFuncs yields every package-level exported function or method
// declaration with a body.
func exportedFuncs(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			out = append(out, fd)
		}
	}
	return out
}
