package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the resolved import path (vendored stdlib deps keep
	// their "vendor/..." prefix, matching `go list`).
	ImportPath string
	// Dir is the directory holding the package sources.
	Dir string
	// Fset positions all files of the whole load, shared across packages.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, in go-list order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's fact tables for Files. It is only
	// populated for packages of the main module (the ones analyzers run
	// on); bare dependencies carry a nil Info.
	Info *types.Info
	// Module reports whether the package belongs to the main module.
	Module bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	Goroot     bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// LoadError aggregates every package go list reported broken: a bad
// import, a syntax error, a build-constraint dead end. Surfacing all of
// them at once — instead of failing on the first or, worse, silently
// analyzing the partial module that did load — is what keeps "pdnlint
// passed" meaningful: a module that cannot be fully loaded is not
// verified.
type LoadError struct {
	// Problems holds one "importpath: reason" entry per broken package,
	// in go-list order.
	Problems []string
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("lint: %d package(s) failed to load:\n  %s",
		len(e.Problems), strings.Join(e.Problems, "\n  "))
}

// Load resolves patterns with `go list -e -json -deps` run in dir and
// type-checks every listed package from source, dependencies first. It
// works fully offline: the only inputs are GOROOT sources and the module
// rooted at dir. Cgo is disabled so the pure-Go stdlib variants are
// selected, which go/types can check without invoking the C toolchain.
//
// Only packages belonging to the module in dir are returned; their
// dependencies are type-checked internally but not analyzed. If any
// listed package carries a go-list Error (the -e flag turns hard
// failures into per-package diagnostics), Load returns a *LoadError
// naming every broken package rather than a partial module.
func Load(dir string, patterns ...string) ([]*Package, error) {
	raw, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var lerr LoadError
	for _, lp := range raw {
		if lp.Error != nil {
			lerr.Problems = append(lerr.Problems, lp.ImportPath+": "+strings.TrimSpace(lp.Error.Err))
		}
	}
	if len(lerr.Problems) > 0 {
		return nil, &lerr
	}
	fset := token.NewFileSet()
	universe := make(map[string]*types.Package, len(raw))
	var out []*Package
	for _, lp := range raw {
		if lp.ImportPath == "unsafe" {
			universe["unsafe"] = types.Unsafe
			continue
		}
		inModule := lp.Module != nil && !lp.Standard
		files, err := parseFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		var info *types.Info
		if inModule {
			info = &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				Implicits:  make(map[ast.Node]types.Object),
				Scopes:     make(map[ast.Node]*types.Scope),
			}
		}
		cfg := types.Config{
			Importer:    &mapImporter{universe: universe, importMap: lp.ImportMap},
			FakeImportC: true,
		}
		tpkg, err := cfg.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", lp.ImportPath, err)
		}
		universe[lp.ImportPath] = tpkg
		if inModule {
			out = append(out, &Package{
				ImportPath: lp.ImportPath,
				Dir:        lp.Dir,
				Fset:       fset,
				Files:      files,
				Types:      tpkg,
				Info:       info,
				Module:     true,
			})
		}
	}
	return out, nil
}

// goList invokes the go command and decodes its JSON stream. -deps lists
// every package in dependency-before-dependent order, which lets the
// loader type-check in a single forward pass. -e keeps go list from
// dying on the first broken package: broken entries come back with a
// non-nil Error field, which Load aggregates into one *LoadError.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var pkgs []listPkg
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// mapImporter resolves imports against the packages checked so far,
// applying the per-package vendor map go list reports (stdlib files
// import e.g. "golang.org/x/net/http2/hpack", resolved to a
// "vendor/..." path).
type mapImporter struct {
	universe  map[string]*types.Package
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if pkg, ok := m.universe[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("lint: import %q not in dependency closure", path)
}
