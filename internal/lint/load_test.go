package lint

import (
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot locates the module root from this source file's position.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestLoadModule type-checks the entire repository offline; this is the
// load path pdnlint itself uses.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck is slow")
	}
	pkgs, err := Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded %d module packages, expected the whole repo", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Info == nil || p.Types == nil {
			t.Errorf("%s: missing type info", p.ImportPath)
		}
	}
}
