package lint

import (
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot locates the module root from this source file's position.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestLoadModule type-checks the entire repository offline; this is the
// load path pdnlint itself uses.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck is slow")
	}
	pkgs, err := Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded %d module packages, expected the whole repo", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Info == nil || p.Types == nil {
			t.Errorf("%s: missing type info", p.ImportPath)
		}
	}
}

// TestLoadBrokenPackage pins the -e load path: a package with an
// unresolvable import must come back as a *LoadError naming the broken
// package — not as an opaque go-list failure, and never as a silently
// partial module.
func TestLoadBrokenPackage(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./internal/lint/testdata/src/brokenimport")
	if err == nil {
		t.Fatalf("Load succeeded with %d packages, want *LoadError", len(pkgs))
	}
	var lerr *LoadError
	if !errors.As(err, &lerr) {
		t.Fatalf("Load error = %T %v, want *LoadError", err, err)
	}
	if len(lerr.Problems) == 0 {
		t.Fatal("LoadError carries no problems")
	}
	msg := lerr.Error()
	if !strings.Contains(msg, "does-not-exist") {
		t.Errorf("LoadError does not name the unresolvable import:\n%s", msg)
	}
	if pkgs != nil {
		t.Errorf("Load returned %d packages alongside the error; partial modules must not be analyzed", len(pkgs))
	}
}

// TestLoadValidUnaffectedByErrFlag guards the happy path under -e: a
// clean explicit pattern still loads exactly as before.
func TestLoadValidUnaffectedByErrFlag(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./internal/privacy")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pkgs {
		if strings.HasSuffix(p.ImportPath, "internal/privacy") && p.Module {
			found = true
		}
	}
	if !found {
		t.Errorf("internal/privacy not among %d loaded packages", len(pkgs))
	}
}
