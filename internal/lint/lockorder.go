package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Lockorder verifies the module's declared lock-acquisition order
// across the federated signaling plane. The deadlock budget of the
// system is written down as three rules (DESIGN.md, docs/lint.md):
//
//   - federation.Plane.mu is the top of the hierarchy: it may be held
//     while taking Ring, shard, or peer-directory locks, but never the
//     reverse ("Plane before Server").
//   - signal shard locks nest only in ascending index order, and any
//     same-class nesting site must carry a //lockorder:ascending
//     annotation stating that invariant.
//   - federation.Peerstore.mu is never acquired (directly or through
//     any call chain) while a signal shard lock is held.
//
// The analyzer builds a lock-acquisition graph: syntactic Lock/RLock →
// Unlock/RUnlock spans per function (deferred unlocks pin the lock to
// function end), plus transitive may-acquire summaries over the module
// call graph, so a call made under a lock contributes every lock the
// callee may take, through any depth of calls and interface dispatch.
// It reports declared-order inversions, forbidden pairs, unannotated
// same-class nesting, and any cycle in the observed graph.
//
// Lock classes are named pkgbase.Type.field (receiver-insensitive:
// every shard's mu is one class). Packages may extend the declared
// order with file comments:
//
//	//lockorder:order pkga.T.mu pkgb.U.mu   (left before right)
//	//lockorder:never pkga.T.mu pkgb.U.mu   (right forbidden under left)
var Lockorder = &Analyzer{
	Name:      "lockorder",
	Doc:       "verify lock-acquisition order across signal shards, the federation plane, peerstore, and TURN relay; flag cycles and declared-order violations",
	RunModule: runLockorder,
}

// The built-in declared order for the repo's own lock hierarchy; chains
// read left-before-right. Package directives append to these.
var loDefaultOrder = [][]string{
	{"federation.Plane.mu", "federation.Ring.mu"},
	{"federation.Plane.mu", "signal.shard.mu"},
	{"federation.Plane.mu", "signal.dirStripe.mu"},
}

var loDefaultNever = [][2]string{
	{"signal.shard.mu", "federation.Peerstore.mu"},
}

var (
	loOrderDirective = regexp.MustCompile(`^//\s*lockorder:order\s+(\S.*)$`)
	loNeverDirective = regexp.MustCompile(`^//\s*lockorder:never\s+(\S+)\s+(\S+)\s*$`)
	loAscDirective   = regexp.MustCompile(`^//\s*lockorder:ascending\b`)
)

// lockClass is one lock identity: the types.Object of the mutex
// variable or field, shared across instances.
type lockClass struct {
	obj  types.Object
	name string // pkgbase.Type.field or pkgbase.var
}

// loEdge records "to acquired while from was held", with the witness
// position and, for transitive acquisitions, the call chain.
type loEdge struct {
	from, to *lockClass
	pos      token.Pos
	via      []string
}

// loEvent is one source-ordered lock-relevant action in a function.
type loEvent struct {
	kind  int // 0 lock, 1 unlock, 2 defer-unlock, 3 call
	class *lockClass
	site  *CallSite
	pos   token.Pos
}

type loState struct {
	pass    *ModulePass
	graph   *CallGraph
	classes map[types.Object]*lockClass
	// acquires is the transitive may-acquire summary: for each function,
	// each lock class it may take, with the first callee hop (nil for a
	// direct acquisition in the function body).
	acquires  map[*FuncNode]map[*lockClass]*FuncNode
	events    map[*FuncNode][]loEvent
	order     map[string]map[string]bool // order[a][b]: a declared before b
	never     map[string]map[string]bool
	ascending map[string]map[int]bool // file -> lines annotated ascending
	edges     map[[2]*lockClass]*loEdge
}

func runLockorder(pass *ModulePass) error {
	st := &loState{
		pass:      pass,
		graph:     pass.Graph,
		classes:   make(map[types.Object]*lockClass),
		acquires:  make(map[*FuncNode]map[*lockClass]*FuncNode),
		events:    make(map[*FuncNode][]loEvent),
		order:     make(map[string]map[string]bool),
		never:     make(map[string]map[string]bool),
		ascending: make(map[string]map[int]bool),
		edges:     make(map[[2]*lockClass]*loEdge),
	}
	for _, chain := range loDefaultOrder {
		st.addOrderChain(chain)
	}
	for _, pair := range loDefaultNever {
		st.addNever(pair[0], pair[1])
	}
	st.collectDirectives()
	for _, node := range st.graph.Nodes {
		st.collectEvents(node)
	}
	st.buildSummaries()
	for _, node := range st.graph.Nodes {
		st.simulate(node)
	}
	reported := st.checkEdges()
	st.checkCycles(reported)
	return nil
}

func (st *loState) addOrderChain(chain []string) {
	for i := 0; i < len(chain); i++ {
		for j := i + 1; j < len(chain); j++ {
			m := st.order[chain[i]]
			if m == nil {
				m = make(map[string]bool)
				st.order[chain[i]] = m
			}
			m[chain[j]] = true
		}
	}
}

func (st *loState) addNever(a, b string) {
	m := st.never[a]
	if m == nil {
		m = make(map[string]bool)
		st.never[a] = m
	}
	m[b] = true
}

// collectDirectives scans every file's comments for order, never, and
// ascending directives.
func (st *loState) collectDirectives() {
	for _, pkg := range st.pass.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					switch {
					case loOrderDirective.MatchString(c.Text):
						m := loOrderDirective.FindStringSubmatch(c.Text)
						st.addOrderChain(strings.Fields(m[1]))
					case loNeverDirective.MatchString(c.Text):
						m := loNeverDirective.FindStringSubmatch(c.Text)
						st.addNever(m[1], m[2])
					case loAscDirective.MatchString(c.Text):
						pos := pkg.Fset.Position(c.Pos())
						lines := st.ascending[pos.Filename]
						if lines == nil {
							lines = make(map[int]bool)
							st.ascending[pos.Filename] = lines
						}
						lines[pos.Line] = true
						lines[pos.Line+1] = true
					}
				}
			}
		}
	}
}

// classOf resolves the lock class of the receiver expression of a
// Lock/Unlock call: a mutex field (named per owning type) or a mutex
// variable.
func (st *loState) classOf(pkg *Package, x ast.Expr) *lockClass {
	info := pkg.Info
	var obj types.Object
	name := ""
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
		owner := fieldOwnerName(info, x)
		if owner == "" {
			owner = pkgBase(pkg) + ".(anon)"
		}
		if i := strings.IndexByte(owner, '.'); i >= 0 {
			// owner is already pkgbase.Type
			name = owner + "." + x.Sel.Name
		} else {
			name = pkgBase(pkg) + "." + owner + "." + x.Sel.Name
		}
	case *ast.Ident:
		obj = info.Uses[x]
		name = pkgBase(pkg) + "." + x.Name
	default:
		return nil
	}
	if obj == nil {
		return nil
	}
	if c, ok := st.classes[obj]; ok {
		return c
	}
	c := &lockClass{obj: obj, name: name}
	st.classes[obj] = c
	return c
}

// lockCall classifies call as a Lock/RLock (kind 0) or Unlock/RUnlock
// (kind 1) on a sync mutex and returns its class.
func (st *loState) lockCall(pkg *Package, call *ast.CallExpr) (*lockClass, int, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, 0, false
	}
	kind := -1
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = 0
	case "Unlock", "RUnlock":
		kind = 1
	default:
		return nil, 0, false
	}
	if !methodOn(pkg.Info, call, sel.Sel.Name, "sync.Mutex", "sync.RWMutex") {
		return nil, 0, false
	}
	class := st.classOf(pkg, sel.X)
	if class == nil {
		return nil, 0, false
	}
	return class, kind, true
}

// collectEvents linearizes one function body into source-ordered lock,
// unlock, defer-unlock, and call events. Function literals are their
// own nodes and are skipped here.
func (st *loState) collectEvents(node *FuncNode) {
	pkg := node.Pkg
	sites := make(map[*ast.CallExpr]*CallSite, len(node.Calls))
	for _, s := range node.Calls {
		sites[s.Call] = s
	}
	var events []loEvent
	ast.Inspect(node.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if class, kind, ok := st.lockCall(pkg, n.Call); ok && kind == 1 {
				events = append(events, loEvent{kind: 2, class: class, pos: n.Pos()})
			}
			// Deferred calls run at return time, when the lock set is
			// unknown; they contribute no edges.
			return false
		case *ast.GoStmt:
			// A spawned goroutine does not inherit the caller's lock
			// set: its body (a separate node) is analyzed on its own,
			// and it contributes nothing to this function's summary.
			return false
		case *ast.CallExpr:
			if class, kind, ok := st.lockCall(pkg, n); ok {
				events = append(events, loEvent{kind: kind, class: class, pos: n.Pos()})
				return false
			}
			if site, ok := sites[n]; ok && (len(site.Callees) > 0) {
				events = append(events, loEvent{kind: 3, site: site, pos: n.Pos()})
			}
			return true
		}
		return true
	})
	st.events[node] = events
}

// buildSummaries computes the transitive may-acquire sets to a
// fixpoint over the call graph.
func (st *loState) buildSummaries() {
	for _, node := range st.graph.Nodes {
		m := make(map[*lockClass]*FuncNode)
		for _, ev := range st.events[node] {
			if ev.kind == 0 {
				m[ev.class] = nil
			}
		}
		st.acquires[node] = m
	}
	// Only synchronous call sites (the kind-3 events; go and defer
	// subtrees were excluded above) extend a function's summary.
	for changed := true; changed; {
		changed = false
		for _, node := range st.graph.Nodes {
			m := st.acquires[node]
			for _, ev := range st.events[node] {
				if ev.kind != 3 {
					continue
				}
				for _, callee := range ev.site.Callees {
					for class := range st.acquires[callee] {
						if _, ok := m[class]; !ok {
							m[class] = callee
							changed = true
						}
					}
				}
			}
		}
	}
}

// heldLock is one entry of the simulated lock stack.
type heldLock struct {
	class  *lockClass
	pinned bool // deferred unlock: held to function end
}

// simulate replays one function's events against a lock stack,
// recording acquisition edges from every held class.
func (st *loState) simulate(node *FuncNode) {
	var held []heldLock
	for _, ev := range st.events[node] {
		switch ev.kind {
		case 0: // lock
			for _, h := range held {
				st.addEdge(h.class, ev.class, ev.pos, nil)
			}
			held = append(held, heldLock{class: ev.class})
		case 1: // unlock: drop the most recent unpinned hold of the class
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].class == ev.class && !held[i].pinned {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case 2: // defer unlock: pin the most recent hold of the class
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].class == ev.class {
					held[i].pinned = true
					break
				}
			}
		case 3: // call while holding locks
			if len(held) == 0 {
				continue
			}
			for _, callee := range ev.site.Callees {
				for class, via := range st.acquires[callee] {
					chain := []string{callee.Name}
					for hop := via; hop != nil; {
						chain = append(chain, hop.Name)
						hop = st.acquires[hop][class]
						if len(chain) > 8 {
							break
						}
					}
					for _, h := range held {
						st.addEdge(h.class, class, ev.pos, chain)
					}
				}
			}
		}
	}
}

// addEdge records the first witness of a (from held → to acquired)
// pair.
func (st *loState) addEdge(from, to *lockClass, pos token.Pos, via []string) {
	key := [2]*lockClass{from, to}
	if prev, ok := st.edges[key]; ok {
		// Prefer a direct witness over a transitive one.
		if len(prev.via) > 0 && len(via) == 0 {
			st.edges[key] = &loEdge{from: from, to: to, pos: pos}
		}
		return
	}
	st.edges[key] = &loEdge{from: from, to: to, pos: pos, via: via}
}

func (st *loState) sortedEdges() []*loEdge {
	out := make([]*loEdge, 0, len(st.edges))
	for _, e := range st.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		if out[i].from.name != out[j].from.name {
			return out[i].from.name < out[j].from.name
		}
		return out[i].to.name < out[j].to.name
	})
	return out
}

// checkEdges reports declared-order inversions, forbidden pairs, and
// unannotated same-class nesting, returning the set of edges reported
// so cycle detection doesn't re-report an already-flagged pair.
func (st *loState) checkEdges() map[*loEdge]bool {
	reported := make(map[*loEdge]bool)
	for _, e := range st.sortedEdges() {
		via := ""
		if len(e.via) > 0 {
			via = " (via " + strings.Join(e.via, " -> ") + ")"
		}
		switch {
		case e.from == e.to:
			if !st.ascendingAt(e.pos) {
				st.pass.Reportf(e.pos, "same-class lock nesting on %s%s; if acquisition is index-ascending, annotate the site with //lockorder:ascending", e.from.name, via)
			}
			reported[e] = true
		case st.never[e.from.name][e.to.name]:
			st.pass.Reportf(e.pos, "forbidden lock nesting: %s acquired while %s is held%s", e.to.name, e.from.name, via)
			reported[e] = true
		case st.order[e.to.name][e.from.name]:
			st.pass.Reportf(e.pos, "lock order violation: %s acquired while %s is held%s; declared order is %s before %s", e.to.name, e.from.name, via, e.to.name, e.from.name)
			reported[e] = true
		}
	}
	return reported
}

// ascendingAt reports whether the witness line (or the line above it)
// carries a //lockorder:ascending annotation.
func (st *loState) ascendingAt(pos token.Pos) bool {
	p := st.pass.Fset().Position(pos)
	return st.ascending[p.Filename][p.Line]
}

// checkCycles finds cycles among distinct lock classes in the observed
// acquisition graph and reports each once, at its smallest witness.
// Edges already reported as order or ban violations are excluded: the
// cycle they close is the violation already flagged.
func (st *loState) checkCycles(skip map[*loEdge]bool) {
	succ := make(map[*lockClass][]*loEdge)
	for _, e := range st.sortedEdges() {
		if e.from != e.to && !skip[e] {
			succ[e.from] = append(succ[e.from], e)
		}
	}
	// Iterative-deepening DFS from each class in name order; a cycle is
	// reported only from its lexicographically smallest member so each
	// cycle appears once.
	var classes []*lockClass
	for c := range succ {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].name < classes[j].name })
	reported := make(map[string]bool)
	for _, start := range classes {
		var path []*loEdge
		onPath := map[*lockClass]bool{start: true}
		var dfs func(c *lockClass) bool
		dfs = func(c *lockClass) bool {
			for _, e := range succ[c] {
				if e.to == start {
					names := []string{start.name}
					for _, pe := range path {
						names = append(names, pe.to.name)
					}
					min := 0
					for i, n := range names {
						if n < names[min] {
							min = i
						}
					}
					if min != 0 {
						return false // reported from the smallest member's walk
					}
					key := strings.Join(names, " -> ")
					if !reported[key] {
						reported[key] = true
						st.pass.Reportf(e.pos, "lock-order cycle: %s (deadlock risk)", strings.Join(append(names, names[0]), " -> "))
					}
					return true
				}
				if onPath[e.to] {
					continue
				}
				onPath[e.to] = true
				path = append(path, e)
				found := dfs(e.to)
				path = path[:len(path)-1]
				delete(onPath, e.to)
				if found {
					return true
				}
			}
			return false
		}
		dfs(start)
	}
}
