package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mutexspan flags statements between a sync.Mutex/RWMutex Lock and its
// matching Unlock (in the same block) that perform operations which may
// block indefinitely: channel sends/receives, selects without default,
// WaitGroup/Cond waits, net/http calls, and time.Sleep. A goroutine
// parked on one of these while holding a lock stalls every other
// goroutine contending for it — the failure mode that turns one slow
// peer into a wedged scan.
//
// The span is syntactic: it starts at `x.Lock()` / `x.RLock()` and ends
// at the first `x.Unlock()` / `x.RUnlock()` statement in the same block
// (deferred unlocks extend the span to the end of the block). Function
// literal bodies inside the span are not executed under the lock and
// are skipped.
var Mutexspan = &Analyzer{
	Name: "mutexspan",
	Doc:  "forbid blocking operations while holding a mutex",
	Run:  runMutexspan,
}

func runMutexspan(pass *Pass) error {
	info := pass.Info()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkBlockSpans(pass, info, block)
			return true
		})
	}
	return nil
}

// checkBlockSpans scans one block's statement list for lock spans.
func checkBlockSpans(pass *Pass, info *types.Info, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		mutex, ok := lockedMutex(info, stmt)
		if !ok {
			continue
		}
		for j := i + 1; j < len(block.List); j++ {
			if unlocked, ok := unlockTarget(info, block.List[j]); ok && unlocked == mutex {
				break
			}
			// An unlock buried in a nested statement (early-return
			// branches) ends the tracked span positionally: operations
			// past the first nested unlock may run with the lock
			// released, so only ops before it are reported.
			limit := nestedUnlockPos(info, block.List[j], mutex)
			reportBlockingIn(pass, info, block.List[j], mutex, limit)
			if limit.IsValid() {
				break
			}
		}
	}
}

// nestedUnlockPos returns the position of the first unlock of mutex
// anywhere under stmt, or token.NoPos.
func nestedUnlockPos(info *types.Info, stmt ast.Stmt, mutex string) token.Pos {
	pos := token.NoPos
	ast.Inspect(stmt, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			if unlocked, ok := unlockTarget(info, s); ok && unlocked == mutex {
				pos = s.Pos()
				return false
			}
		}
		return true
	})
	return pos
}

// lockedMutex matches `x.Lock()` / `x.RLock()` expression statements on
// sync mutexes and returns the canonical receiver text.
func lockedMutex(info *types.Info, stmt ast.Stmt) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	for _, name := range []string{"Lock", "RLock"} {
		if methodOn(info, call, name, "sync.Mutex", "sync.RWMutex") {
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			return types.ExprString(sel.X), true
		}
	}
	return "", false
}

// unlockTarget matches `x.Unlock()` / `x.RUnlock()` statements (plain or
// deferred — a deferred unlock ends the *tracked* span because from
// there on the function intends to hold the lock to the end, which the
// analyzer treats as "rest of block" by keeping the span open only for
// plain unlocks).
func unlockTarget(info *types.Info, stmt ast.Stmt) (string, bool) {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	default:
		return "", false
	}
	if call == nil {
		return "", false
	}
	for _, name := range []string{"Unlock", "RUnlock"} {
		if methodOn(info, call, name, "sync.Mutex", "sync.RWMutex") {
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			return types.ExprString(sel.X), true
		}
	}
	return "", false
}

// reportBlockingIn reports every blocking operation under stmt before
// limit (when valid), skipping function literals (not executed under
// the lock).
func reportBlockingIn(pass *Pass, info *types.Info, stmt ast.Stmt, mutex string, limit token.Pos) {
	visitBlocking(info, stmt, true, func(n ast.Node, what string) {
		if limit.IsValid() && n.Pos() >= limit {
			return
		}
		pass.Reportf(n.Pos(), "%s while holding %s", what, mutex)
	})
}
