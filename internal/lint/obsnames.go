package lint

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
)

// Obsnames enforces the telemetry naming contract: every metric or span
// name handed to internal/obs — Registry constructors (Counter, Gauge,
// GaugeFunc, Histogram, CounterVec) and Tracer span/event starts (Begin,
// Event, StartSpan, StartSpanRemote) — must be a literal snake_case
// string. Literal names keep the metric namespace greppable (a dashboard
// query can be traced to its source line) and stop dynamic names from
// exploding registry cardinality; snake_case matches Prometheus
// exposition conventions. pdntrace's hop classification also keys on
// span-name prefixes, so a dynamic span name would silently fall out of
// its latency breakdown.
var Obsnames = &Analyzer{
	Name: "obsnames",
	Doc:  "require literal snake_case names in internal/obs metric and span constructors",
	Run:  runObsnames,
}

// obsNamedCalls maps each internal/obs function taking a registry or
// trace name to the argument index the name occupies (the span starters
// that take a context or an encoded remote parent first put the name
// second).
var obsNamedCalls = map[string]int{
	"Counter":         0,
	"Gauge":           0,
	"GaugeFunc":       0,
	"Histogram":       0,
	"CounterVec":      0,
	"Begin":           0,
	"Event":           0,
	"StartSpan":       1,
	"StartSpanRemote": 1,
}

var snakeCaseName = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func runObsnames(pass *Pass) error {
	info := pass.Info()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			f := calleeFunc(info, call)
			if f == nil || !strings.HasSuffix(funcPkgPath(f), "/internal/obs") {
				return true
			}
			idx, named := obsNamedCalls[f.Name()]
			if !named || len(call.Args) <= idx {
				return true
			}
			lit, ok := ast.Unparen(call.Args[idx]).(*ast.BasicLit)
			if !ok {
				pass.Reportf(call.Args[idx].Pos(),
					"obs.%s name must be a literal string, not an expression", f.Name())
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true // not a string literal (type error elsewhere)
			}
			if !snakeCaseName.MatchString(name) {
				pass.Reportf(call.Args[idx].Pos(),
					"obs.%s name %q is not snake_case", f.Name(), name)
			}
			return true
		})
	}
	return nil
}
