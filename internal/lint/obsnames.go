package lint

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
)

// Obsnames enforces the telemetry naming contract: every metric or span
// name handed to internal/obs — Registry constructors (Counter, Gauge,
// GaugeFunc, Histogram, CounterVec) and Tracer span/event starts (Begin,
// Event) — must be a literal snake_case string. Literal names keep the
// metric namespace greppable (a dashboard query can be traced to its
// source line) and stop dynamic names from exploding registry
// cardinality; snake_case matches Prometheus exposition conventions.
var Obsnames = &Analyzer{
	Name: "obsnames",
	Doc:  "require literal snake_case names in internal/obs metric and span constructors",
	Run:  runObsnames,
}

// obsNamedCalls are the internal/obs functions whose first argument is a
// registry or trace name.
var obsNamedCalls = map[string]bool{
	"Counter":    true,
	"Gauge":      true,
	"GaugeFunc":  true,
	"Histogram":  true,
	"CounterVec": true,
	"Begin":      true,
	"Event":      true,
}

var snakeCaseName = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func runObsnames(pass *Pass) error {
	info := pass.Info()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			f := calleeFunc(info, call)
			if f == nil || !obsNamedCalls[f.Name()] ||
				!strings.HasSuffix(funcPkgPath(f), "/internal/obs") {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				pass.Reportf(call.Args[0].Pos(),
					"obs.%s name must be a literal string, not an expression", f.Name())
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true // not a string literal (type error elsewhere)
			}
			if !snakeCaseName.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"obs.%s name %q is not snake_case", f.Name(), name)
			}
			return true
		})
	}
	return nil
}
