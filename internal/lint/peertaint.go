package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Peertaint is the interprocedural peer-identity taint analyzer: the
// static enforcement of the repo's privacy invariant (DESIGN.md §2a).
// The paper's §IV-D finding is that peer-assisted CDNs leak viewer IP
// addresses; this reproduction implements those protocol flows
// deliberately, so the invariant is not "no address ever moves" but
// "no peer-identifying value reaches an *observability or wire* sink
// unsanitized": log lines, trace attributes, metric label values,
// chaos fault-log fields, and ad-hoc wire payloads must only carry
// addresses after passing through internal/privacy.
//
// Sources: net.Conn.RemoteAddr() (any zero-arg RemoteAddr method),
// the forwarded join address signal.JoinRequest.FwdAddr, geoip
// DB.Lookup records (their coarse Country/City/ISP fields are exempt),
// and federation.Peerstore entries (Candidates).
//
// Sinks: log/fmt printing, obs.A trace-attribute values, obs
// CounterVec/GaugeVec label values, wire Codec.Send/Write and dtls
// Conn.Send payloads, and chaos.Event field values.
//
// Sanitizers: internal/privacy Redact/RedactAddr/HashAddr/Truncate.
//
// The analysis is flow- and call-site-insensitive: taint lives on
// types.Object (locals, params, named results, struct fields — fields
// are instance-insensitive) plus a per-function "returns tainted"
// summary, propagated to a fixpoint over the module call graph. Calls
// into code outside the module pass taint through from receiver or
// arguments to results, except results of error, bool, or numeric
// type, which are declared identity-free. Packages that exist to
// *measure* the leak (attack, capture, experiments, detector,
// examples/*) are exempt as sinks — exposing addresses is their job.
var Peertaint = &Analyzer{
	Name:      "peertaint",
	Doc:       "forbid peer-identifying values (addresses, geo records) from reaching logs, traces, metric labels, chaos events, or ad-hoc wire payloads without passing internal/privacy sanitizers",
	RunModule: runPeertaint,
}

// taintFact is the provenance of one tainted object: where the value
// entered and the function-level path it took.
type taintFact struct {
	desc string // source description, e.g. "RemoteAddr()"
	pos  token.Pos
	path []string // function names, source first
}

// maxTaintPath bounds provenance chains (recursion, long pipelines).
const maxTaintPath = 12

// ptSinkExempt are the package bases whose purpose is reproducing the
// paper's attacks and measurements: their output *is* harvested peer
// data, so sinks there are not findings. Sources and propagation are
// still tracked through them.
var ptSinkExempt = map[string]bool{
	"attack":      true,
	"capture":     true,
	"experiments": true,
	"detector":    true,
}

// ptCoarseGeoFields are geoip.Record fields carrying k-anonymous,
// country-grade data — the §V-C geo-matching mitigation depends on
// exactly these being usable, so reading them sheds the taint.
var ptCoarseGeoFields = map[string]bool{"Country": true, "City": true, "ISP": true}

type ptState struct {
	pass    *ModulePass
	graph   *CallGraph
	objs    map[types.Object]*taintFact
	rets    map[*FuncNode]*taintFact
	changed bool
}

func runPeertaint(pass *ModulePass) error {
	st := &ptState{
		pass:  pass,
		graph: pass.Graph,
		objs:  make(map[types.Object]*taintFact),
		rets:  make(map[*FuncNode]*taintFact),
	}
	// Fixpoint: propagate until no object or summary changes. The
	// lattice is two-point per object, so the loop terminates; the
	// bound is belt and braces.
	for i := 0; i < 100; i++ {
		st.changed = false
		for _, node := range st.graph.Nodes {
			st.analyze(node)
		}
		if !st.changed {
			break
		}
	}
	for _, node := range st.graph.Nodes {
		st.checkSinks(node)
	}
	return nil
}

// markObj taints obj with fact, recording whether anything changed.
func (st *ptState) markObj(obj types.Object, fact *taintFact) {
	if obj == nil || fact == nil {
		return
	}
	if _, ok := st.objs[obj]; ok {
		return
	}
	st.objs[obj] = fact
	st.changed = true
}

// extendPath returns fact with fn appended to its hop list.
func extendPath(fact *taintFact, fn string) *taintFact {
	if fact == nil {
		return nil
	}
	if n := len(fact.path); n > 0 && fact.path[n-1] == fn || n >= maxTaintPath {
		return fact
	}
	next := &taintFact{desc: fact.desc, pos: fact.pos}
	next.path = append(append([]string(nil), fact.path...), fn)
	return next
}

// analyze walks one function body, propagating taint through
// assignments, calls, ranges, sends, and returns.
func (st *ptState) analyze(node *FuncNode) {
	info := node.Pkg.Info
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literal bodies are their own nodes
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.assign(node, info, n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			if len(n.Values) > 0 {
				lhs := make([]ast.Expr, len(n.Names))
				for i, id := range n.Names {
					lhs[i] = id
				}
				st.assign(node, info, lhs, n.Values)
			}
		case *ast.RangeStmt:
			if fact := st.eval(node, info, n.X); fact != nil {
				// Numeric range variables (slice indices, ledger counts)
				// are identity-free even when the container is tainted.
				if !identityFree(typeOf(info, n.Key)) {
					st.markLValue(info, n.Key, fact)
				}
				if !identityFree(typeOf(info, n.Value)) {
					st.markLValue(info, n.Value, fact)
				}
			}
		case *ast.IncDecStmt:
			st.keyTaint(node, info, n.X)
		case *ast.SendStmt:
			if fact := st.eval(node, info, n.Value); fact != nil {
				st.markLValue(info, n.Chan, fact)
			}
		case *ast.ReturnStmt:
			st.ret(node, info, n)
		case *ast.CallExpr:
			st.eval(node, info, n) // argument→parameter propagation
		}
		return true
	})
}

// keyTaint handles the key side of an index write: m[tainted] = v (or
// m[tainted]++) poisons the container itself, because an addr-keyed
// ledger leaks through iteration even when its values are clean counts.
func (st *ptState) keyTaint(node *FuncNode, info *types.Info, l ast.Expr) {
	ix, ok := ast.Unparen(l).(*ast.IndexExpr)
	if !ok {
		return
	}
	if fact := st.eval(node, info, ix.Index); fact != nil {
		st.markLValue(info, ix.X, fact)
	}
}

// assign handles n:n assignments and the 1-call:n-lhs tuple form.
func (st *ptState) assign(node *FuncNode, info *types.Info, lhs, rhs []ast.Expr) {
	for _, l := range lhs {
		st.keyTaint(node, info, l)
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		if fact := st.eval(node, info, rhs[0]); fact != nil {
			for _, l := range lhs {
				if identityFree(typeOf(info, l)) {
					continue // ok/err/count results of a tainted call
				}
				st.markLValue(info, l, fact)
			}
		}
		return
	}
	for i := range lhs {
		if i >= len(rhs) {
			break
		}
		if fact := st.eval(node, info, rhs[i]); fact != nil {
			st.markLValue(info, lhs[i], fact)
		}
	}
}

// ret merges tainted results into the function summary, including
// named results of bare returns.
func (st *ptState) ret(node *FuncNode, info *types.Info, r *ast.ReturnStmt) {
	if _, ok := st.rets[node]; ok {
		return
	}
	if len(r.Results) == 0 && node.Sig != nil {
		res := node.Sig.Results()
		for i := 0; i < res.Len(); i++ {
			if fact := st.objs[res.At(i)]; fact != nil {
				st.rets[node] = fact
				st.changed = true
				return
			}
		}
		return
	}
	for _, e := range r.Results {
		if fact := st.eval(node, info, e); fact != nil && !identityFree(typeOf(info, e)) {
			st.rets[node] = fact
			st.changed = true
			return
		}
	}
}

// markLValue taints the object behind an assignment target: a local,
// a named field (instance-insensitive), or the container of an index
// expression.
func (st *ptState) markLValue(info *types.Info, e ast.Expr, fact *taintFact) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		if obj := info.Defs[e]; obj != nil {
			st.markObj(obj, fact)
			return
		}
		st.markObj(info.Uses[e], fact)
	case *ast.SelectorExpr:
		st.markObj(info.Uses[e.Sel], fact)
	case *ast.IndexExpr:
		st.markLValue(info, e.X, fact)
	case *ast.StarExpr:
		st.markLValue(info, e.X, fact)
	}
}

// eval computes the taint of an expression, propagating call arguments
// into callee parameters as a side effect.
func (st *ptState) eval(node *FuncNode, info *types.Info, e ast.Expr) *taintFact {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return st.objs[obj]
		}
		return st.objs[info.Defs[e]]
	case *ast.SelectorExpr:
		return st.evalSelector(node, info, e)
	case *ast.CallExpr:
		return st.evalCall(node, info, e)
	case *ast.BinaryExpr:
		if e.Op == token.ADD { // string concatenation carries identity
			if fact := st.eval(node, info, e.X); fact != nil {
				return fact
			}
			return st.eval(node, info, e.Y)
		}
		return nil
	case *ast.UnaryExpr:
		return st.eval(node, info, e.X) // &x, <-ch, -x
	case *ast.StarExpr:
		return st.eval(node, info, e.X)
	case *ast.IndexExpr:
		return st.eval(node, info, e.X)
	case *ast.SliceExpr:
		return st.eval(node, info, e.X)
	case *ast.TypeAssertExpr:
		return st.eval(node, info, e.X)
	case *ast.KeyValueExpr:
		return st.eval(node, info, e.Value)
	case *ast.CompositeLit:
		// Struct literals are field-granular: a tainted element taints
		// the matching *field object*, never the whole value —
		// otherwise session{addr: tainted, id: clean} would poison
		// every field read, flagging intentional protocol flows.
		if t := typeOf(info, e); t != nil {
			if s, ok := t.Underlying().(*types.Struct); ok {
				st.structLit(node, info, e, s)
				return nil
			}
		}
		for _, elt := range e.Elts {
			if fact := st.eval(node, info, elt); fact != nil {
				return fact
			}
		}
		return nil
	}
	return nil
}

// structLit propagates tainted struct-literal elements onto their
// field objects (instance-insensitive, like all field taint).
func (st *ptState) structLit(node *FuncNode, info *types.Info, lit *ast.CompositeLit, s *types.Struct) {
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if fact := st.eval(node, info, kv.Value); fact != nil {
				if key, ok := kv.Key.(*ast.Ident); ok {
					st.markObj(info.Uses[key], fact)
				}
			}
			continue
		}
		if fact := st.eval(node, info, elt); fact != nil && i < s.NumFields() {
			st.markObj(s.Field(i), fact)
		}
	}
}

// evalSelector resolves field reads: declared source fields taint,
// declared coarse geo fields shed taint, tainted field objects and
// tainted container values propagate.
func (st *ptState) evalSelector(node *FuncNode, info *types.Info, sel *ast.SelectorExpr) *taintFact {
	obj := info.Uses[sel.Sel]
	field, isField := obj.(*types.Var)
	if isField && field.IsField() {
		owner := fieldOwnerName(info, sel)
		if ptCoarseGeoFields[field.Name()] && owner == "geoip.Record" {
			return nil
		}
		if field.Name() == "FwdAddr" && strings.HasSuffix(owner, ".JoinRequest") {
			return &taintFact{desc: "JoinRequest.FwdAddr", pos: sel.Pos(), path: []string{node.Name}}
		}
		if fact := st.objs[field]; fact != nil {
			return fact
		}
		return st.eval(node, info, sel.X) // field of a tainted value
	}
	if obj != nil {
		if fact := st.objs[obj]; fact != nil {
			return fact
		}
	}
	return nil
}

// fieldOwnerName renders the base named type a field was selected
// from, as "pkgbase.Type" (empty for anonymous structs).
func fieldOwnerName(info *types.Info, sel *ast.SelectorExpr) string {
	selection, ok := info.Selections[sel]
	if !ok {
		return ""
	}
	full := recvTypeString(selection.Recv())
	if full == "" {
		return ""
	}
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		full = full[i+1:]
	}
	return full
}

// evalCall is the interprocedural step: sources start taint,
// sanitizers stop it, module callees receive argument taint in their
// parameters and contribute their return summaries, and unknown
// callees pass taint through.
func (st *ptState) evalCall(node *FuncNode, info *types.Info, call *ast.CallExpr) *taintFact {
	// Conversions preserve taint unless converting to an identity-free
	// type (counts, flags).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && !identityFree(tv.Type) {
			return st.eval(node, info, call.Args[0])
		}
		return nil
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsBuiltin() {
		return st.evalBuiltin(node, info, call)
	}

	callee := calleeFunc(info, call)
	if isSanitizer(callee) {
		// Arguments still evaluated so a tainted argument expression's
		// own propagation happened before this point; the result is clean.
		for _, a := range call.Args {
			st.eval(node, info, a)
		}
		return nil
	}
	if fact := sourceCall(node, info, call, callee); fact != nil {
		return fact
	}

	site := st.siteFor(node, call)

	// Propagate receiver and argument taint into module callees.
	var recvFact *taintFact
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if callee == nil || callee.Type().(*types.Signature).Recv() != nil {
			recvFact = st.eval(node, info, sel.X)
		}
	}
	argFacts := make([]*taintFact, len(call.Args))
	anyArg := recvFact
	for i, a := range call.Args {
		argFacts[i] = st.eval(node, info, a)
		if anyArg == nil {
			anyArg = argFacts[i]
		}
	}

	var result *taintFact
	if site != nil {
		for _, target := range site.Callees {
			if recvFact != nil && target.Sig != nil {
				st.markObj(target.Sig.Recv(), extendPath(recvFact, target.Name))
			}
			st.propagateArgs(target, argFacts)
			if ret := st.rets[target]; ret != nil && result == nil {
				result = extendPath(ret, node.Name)
			}
		}
		if len(site.Callees) > 0 {
			if result != nil && identityFree(typeOf(info, call)) {
				return nil
			}
			return result
		}
	}

	// Unknown callee (stdlib or unresolved dynamic): taint passes
	// through from inputs to identity-bearing results.
	if anyArg != nil && !identityFree(typeOf(info, call)) {
		return anyArg
	}
	return nil
}

// siteFor finds the resolved call site of call within node.
func (st *ptState) siteFor(node *FuncNode, call *ast.CallExpr) *CallSite {
	for _, s := range node.Calls {
		if s.Call == call {
			return s
		}
	}
	return nil
}

// propagateArgs marks the callee's parameters tainted where the
// matching argument is, folding extra variadic arguments onto the
// final parameter.
func (st *ptState) propagateArgs(target *FuncNode, argFacts []*taintFact) {
	if target.Sig == nil {
		return
	}
	params := target.Sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, fact := range argFacts {
		if fact == nil {
			continue
		}
		j := i
		if j >= params.Len() {
			j = params.Len() - 1
		}
		st.markObj(params.At(j), extendPath(fact, target.Name))
	}
}

// evalBuiltin: append carries element taint, everything else (len,
// cap, make, new, delete, min, max over counts) is identity-free.
func (st *ptState) evalBuiltin(node *FuncNode, info *types.Info, call *ast.CallExpr) *taintFact {
	name := ""
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		name = id.Name
	}
	if name == "append" {
		for _, a := range call.Args {
			if fact := st.eval(node, info, a); fact != nil {
				return fact
			}
		}
	}
	return nil
}

// identityFree reports types that cannot carry a recoverable peer
// identity: booleans, numerics, and errors. (Parse errors may echo
// input; accepting that gap keeps every err.Error() send from
// flagging — the declared precision cut, see docs/lint.md.)
func identityFree(t types.Type) bool {
	if t == nil {
		return false
	}
	if implementsError(t) {
		return true
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&(types.IsBoolean|types.IsNumeric) != 0
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	// Idents introduced by a := range clause have no Types entry, only
	// a definition object.
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isSanitizer matches the internal/privacy helpers.
func isSanitizer(f *types.Func) bool {
	if f == nil {
		return false
	}
	if path := funcPkgPath(f); path == "" || !strings.HasSuffix(path, "privacy") {
		return false
	}
	switch f.Name() {
	case "Redact", "RedactAddr", "HashAddr", "Truncate":
		return true
	}
	return false
}

// sourceCall matches the declared taint sources.
func sourceCall(node *FuncNode, info *types.Info, call *ast.CallExpr, f *types.Func) *taintFact {
	if f == nil {
		return nil
	}
	sig := f.Type().(*types.Signature)
	mk := func(desc string) *taintFact {
		return &taintFact{desc: desc, pos: call.Pos(), path: []string{node.Name}}
	}
	if sig.Recv() != nil {
		recv := recvBaseName(sig.Recv().Type())
		switch {
		case f.Name() == "RemoteAddr" && sig.Params().Len() == 0:
			return mk("RemoteAddr()")
		case f.Name() == "Lookup" && pkgBaseOfFunc(f) == "geoip":
			return mk("geoip.Lookup record")
		case f.Name() == "Candidates" && recv == "Peerstore" && pkgBaseOfFunc(f) != "federation":
			// federation.Peerstore stores bootstrap *server* addresses
			// — published infrastructure, not peer identity — so it is
			// carved out of the generic Peerstore-entries source.
			return mk("peerstore entries")
		}
		return nil
	}
	return nil
}

// recvBaseName returns the bare receiver type name ("Peerstore").
func recvBaseName(t types.Type) string {
	full := recvTypeString(t)
	if i := strings.LastIndexByte(full, '.'); i >= 0 {
		return full[i+1:]
	}
	return full
}

func pkgBaseOfFunc(f *types.Func) string {
	path := funcPkgPath(f)
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ---- sink checking ----

// checkSinks walks a fully propagated function and reports tainted
// values reaching declared sinks.
func (st *ptState) checkSinks(node *FuncNode) {
	if ptSinkExempt[pkgBase(node.Pkg)] || strings.Contains(node.Pkg.ImportPath, "/examples/") {
		return
	}
	info := node.Pkg.Info
	for _, site := range node.Calls {
		st.checkSinkCall(node, info, site.Call)
	}
	// Struct-field sinks: chaos.Event fault-log fields, and the Trace
	// propagation fields the distributed-tracing protocol messages carry.
	// A propagated TraceContext is opaque hex by construction; anything
	// address-shaped assigned to these fields would ride the wire into
	// every downstream process's trace file, so they are sinks.
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			named := namedTypeName(typeOf(info, n))
			if named == "chaos.Event" {
				for _, elt := range n.Elts {
					if fact := st.eval(node, info, elt); fact != nil {
						st.report(node, elt.Pos(), "chaos event field", fact)
					}
				}
			}
			if ptTraceFieldOwner(named) {
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Trace" {
						continue
					}
					if fact := st.eval(node, info, kv.Value); fact != nil {
						st.report(node, kv.Value.Pos(), "trace propagation field", fact)
					}
				}
			}
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				owner := fieldOwnerName(info, sel)
				switch {
				case owner == "chaos.Event":
					if fact := st.eval(node, info, n.Rhs[i]); fact != nil {
						st.report(node, n.Rhs[i].Pos(), "chaos event field", fact)
					}
				case sel.Sel.Name == "Trace" && ptTraceFieldOwner(owner):
					if fact := st.eval(node, info, n.Rhs[i]); fact != nil {
						st.report(node, n.Rhs[i].Pos(), "trace propagation field", fact)
					}
				}
			}
		}
		return true
	})
}

// ptTraceFieldOwner reports whether a named type ("pkgbase.Type") is one
// of the protocol messages whose Trace field propagates an encoded
// obs.TraceContext across processes. Matched by type-name suffix, like
// the JoinRequest.FwdAddr source, so fixtures can model the shape.
func ptTraceFieldOwner(owner string) bool {
	return strings.HasSuffix(owner, ".JoinRequest") ||
		strings.HasSuffix(owner, ".GetPeersReq") ||
		strings.HasSuffix(owner, ".Relay") ||
		strings.HasSuffix(owner, ".p2pMsg")
}

// namedTypeName renders a (possibly pointer) named type as
// "pkgbase.Name", or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	full := recvTypeString(t)
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		full = full[i+1:]
	}
	return full
}

// checkSinkCall classifies one call against the sink table.
func (st *ptState) checkSinkCall(node *FuncNode, info *types.Info, call *ast.CallExpr) {
	f := calleeFunc(info, call)
	if f == nil {
		return
	}
	name := f.Name()
	pkg := pkgBaseOfFunc(f)
	sig := f.Type().(*types.Signature)

	check := func(kind string, args []ast.Expr) {
		for _, a := range args {
			if fact := st.eval(node, info, a); fact != nil {
				st.report(node, call.Pos(), kind, fact)
				return
			}
		}
	}

	if sig.Recv() == nil {
		switch {
		case funcPkgPath(f) == "log":
			check("log output", call.Args)
		case funcPkgPath(f) == "fmt" && (name == "Print" || name == "Printf" || name == "Println"):
			check("log output", call.Args)
		case funcPkgPath(f) == "fmt" && (name == "Fprint" || name == "Fprintf" || name == "Fprintln"):
			if len(call.Args) > 1 {
				check("log output", call.Args[1:])
			}
		case pkg == "obs" && name == "A":
			if len(call.Args) == 2 {
				check("trace attribute", call.Args[1:2])
			}
		}
		return
	}

	recv := recvBaseName(sig.Recv().Type())
	switch {
	case funcPkgPath(f) == "log" && recv == "Logger":
		check("log output", call.Args)
	case pkg == "obs" && (recv == "CounterVec" || recv == "GaugeVec") && (name == "With" || name == "WithFunc"):
		if len(call.Args) >= 1 {
			check("metric label value", call.Args[:1])
		}
	case pkg == "wire" && recv == "Codec" && name == "Send":
		if len(call.Args) == 2 {
			check("wire frame payload", call.Args[1:])
		}
	case pkg == "wire" && recv == "Codec" && name == "Write":
		check("wire frame payload", call.Args)
	case pkg == "dtls" && recv == "Conn" && name == "Send":
		check("peer data-channel payload", call.Args)
	}
}

// report emits one finding with the source→sink provenance path.
func (st *ptState) report(node *FuncNode, pos token.Pos, kind string, fact *taintFact) {
	src := st.pass.Fset().Position(fact.pos)
	path := fact.path
	if n := len(path); n == 0 || path[n-1] != node.Name {
		path = append(append([]string(nil), path...), node.Name)
	}
	st.pass.Reportf(pos, "peer-identifying value from %s (%s:%d) reaches %s; path: %s; sanitize with internal/privacy",
		fact.desc, filepath.Base(src.Filename), src.Line, kind, strings.Join(path, " -> "))
}

var _ = fmt.Sprintf // keep fmt for future debug hooks
