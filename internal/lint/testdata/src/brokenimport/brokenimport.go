// Package brokenimport is the regression fixture for load-error
// aggregation: its import does not resolve, so go list -e reports it
// with a per-package Error, and Load must surface that as a *LoadError
// instead of analyzing a partial module. (Directories named "testdata"
// are invisible to ./... patterns, so this package never breaks a
// repo-wide pdnlint run.)
package brokenimport

import missing "github.com/stealthy-peers/pdnsec/internal/does-not-exist"

var _ = missing.Nothing
