// Package callgraph is the golden-fixture input for the call-graph
// builder: static calls, method calls, interface dispatch, method
// values, closures (direct, assigned, nested, and passed to external
// callees), and function-typed variables.
package callgraph

import "sort"

type Greeter interface{ Greet() string }

type English struct{}

func (English) Greet() string { return "hello" }

type French struct{}

func (French) Greet() string { return "bonjour" }

// static call chain
func leaf() int { return 1 }

func static() int { return leaf() + leaf() }

// interface dispatch resolves to every implementation
func dispatch(g Greeter) string { return g.Greet() }

// method value: the receiver-bound Greet escapes as func() string
func methodValue(e English) func() string {
	f := e.Greet
	return f
}

// callMethodValue invokes a func() string value: CHA over everything
// address-taken with that signature, including both Greet methods via
// the method value above.
func callMethodValue(f func() string) string { return f() }

// closures: direct call, local-variable call, nested literal
func closures() int {
	n := 0
	add := func(d int) int { // callgraph.closures$1
		n += d
		return n
	}
	add(1)
	func() { // callgraph.closures$2, called directly
		inner := func() int { return 2 } // callgraph.closures$2$1
		n += inner()
	}()
	return n
}

// a closure passed to an external callee is invoked at the call site
func sorted(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// function-typed variable resolves to its assignments, not all of CHA
func funcVar(flip bool) int {
	f := leaf
	if flip {
		f = two
	}
	return f()
}

func two() int { return 2 }
