// Package errwrap is errwrap analyzer testdata.
package errwrap

import (
	"errors"
	"fmt"
)

type codedError struct{ code int }

func (e *codedError) Error() string { return fmt.Sprintf("code %d", e.code) }

func verbV(err error) error {
	return fmt.Errorf("scan failed: %v", err) // want `%v applied to error value loses the chain; use %w`
}

func verbS(err error) error {
	return fmt.Errorf("scan failed: %s", err) // want `%s applied to error value loses the chain; use %w`
}

func flaggedVerb(err error) error {
	return fmt.Errorf("scan failed: %+v", err) // want `%v applied to error value loses the chain; use %w`
}

func concreteErrorType(e *codedError) error {
	return fmt.Errorf("upstream: %v", e) // want `%v applied to error value loses the chain; use %w`
}

func secondArg(name string, err error) error {
	return fmt.Errorf("scan %s: %v", name, err) // want `%v applied to error value loses the chain; use %w`
}

func wrapped(err error) error {
	return fmt.Errorf("scan failed: %w", err) // %w preserves the chain: allowed
}

func nonErrorArgs(name string, n int) error {
	return fmt.Errorf("scan %s: %v rows", name, n) // %v on non-error: allowed
}

func stringified(err error) error {
	return errors.New("opaque: " + err.Error()) // not fmt.Errorf: out of scope
}

func suppressed(err error) error {
	//lint:ignore pdnlint/errwrap testdata exercises the suppression path
	return fmt.Errorf("boundary: %v", err)
}
