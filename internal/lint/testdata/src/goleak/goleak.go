// Package goleak is goleak analyzer testdata.
package goleak

import (
	"context"
	"sync"
)

type pump struct {
	wg   sync.WaitGroup
	jobs chan int
}

func fireAndForget(work func()) {
	go func() { // want `goroutine has no cancellation or completion path`
		for {
			work()
		}
	}()
}

func spin() {
	for {
	}
}

func namedFireAndForget() {
	go spin() // want `goroutine has no cancellation or completion path`
}

func ctxLoop(ctx context.Context, work func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

func ctxArg(ctx context.Context) {
	go runUntil(ctx) // context argument is the cancellation path
}

func runUntil(ctx context.Context) {
	<-ctx.Done()
}

func (p *pump) tracked(work func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

func (p *pump) addBeforeNamedLaunch() {
	p.wg.Add(1)
	go p.drain() // preceding wg.Add tracks the launch
}

func (p *pump) drain() {
	defer p.wg.Done()
	for range p.jobs {
	}
}

func (p *pump) rangeOverChannel(work func(int)) {
	go func() {
		for v := range p.jobs { // closing jobs terminates the goroutine
			work(v)
		}
	}()
}

func completionChannel() <-chan int {
	done := make(chan int, 1)
	go func() {
		done <- 42 // completion signal: awaitable
	}()
	return done
}

func closeOnCompletion(work func()) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done) // closing done signals completion: awaitable
	}()
	return done
}

func suppressedLaunch() {
	//lint:ignore pdnlint/goleak testdata exercises the suppression path
	go spin()
}
