// Package lockorder exercises the lock-acquisition-order analyzer:
// declared-order inversions (direct, transitive, through interface
// dispatch, and via defer-pinned holds), forbidden pairs, same-class
// nesting with and without the ascending annotation, cycles, and the
// goroutine / release negative cases.
//
//lockorder:order lockorder.A2.mu lockorder.B2.mu
//lockorder:order lockorder.A3.mu lockorder.B3.mu
//lockorder:order lockorder.A4.mu lockorder.B4.mu
//lockorder:order lockorder.A5.mu lockorder.B5.mu
//lockorder:order lockorder.A6.mu lockorder.B6.mu
//lockorder:order lockorder.A7.mu lockorder.B7.mu
//lockorder:order lockorder.A8.mu lockorder.B8.mu
//lockorder:order lockorder.G1.mu lockorder.G2.mu lockorder.G3.mu
//lockorder:never lockorder.N1.mu lockorder.N2.mu
package lockorder

import "sync"

type A1 struct{ mu sync.Mutex }
type B1 struct{ mu sync.Mutex }
type A2 struct{ mu sync.Mutex }
type B2 struct{ mu sync.Mutex }
type A3 struct{ mu sync.Mutex }
type B3 struct{ mu sync.Mutex }
type A4 struct{ mu sync.Mutex }
type B4 struct{ mu sync.Mutex }
type A5 struct{ mu sync.Mutex }
type B5 struct{ mu sync.Mutex }
type A6 struct{ mu sync.Mutex }
type B6 struct{ mu sync.Mutex }
type A7 struct{ mu sync.Mutex }
type B7 struct{ mu sync.Mutex }
type A8 struct{ mu sync.Mutex }
type B8 struct{ mu sync.Mutex }
type C1 struct{ mu sync.Mutex }
type C2 struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }
type G1 struct{ mu sync.Mutex }
type G3 struct{ mu sync.Mutex }
type N1 struct{ mu sync.Mutex }
type N2 struct{ mu sync.Mutex }
type R struct{ mu sync.RWMutex }

// Ascending acquisition is fine: A1 is not ordered against B1, so the
// edge is recorded but nothing fires.
func ok(a *A1, b *B1) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// Direct inversion of a declared order.
func inverted(a *A2, b *B2) {
	b.mu.Lock()
	a.mu.Lock() // want `lock order violation: lockorder.A2.mu acquired while lockorder.B2.mu is held`
	a.mu.Unlock()
	b.mu.Unlock()
}

// Forbidden pair.
func banned(x *N1, y *N2) {
	x.mu.Lock()
	y.mu.Lock() // want `forbidden lock nesting: lockorder.N2.mu acquired while lockorder.N1.mu is held`
	y.mu.Unlock()
	x.mu.Unlock()
}

// Same-class nesting without the annotation.
func sameClass(e1, e2 *E) {
	e1.mu.Lock()
	e2.mu.Lock() // want `same-class lock nesting on lockorder.E.mu`
	e2.mu.Unlock()
	e1.mu.Unlock()
}

// Same-class nesting with the declared ascending invariant.
func sameClassAscending(d1, d2 *D) {
	d1.mu.Lock()
	//lockorder:ascending
	d2.mu.Lock()
	d2.mu.Unlock()
	d1.mu.Unlock()
}

// Transitive inversion: the held-side function only makes a call; the
// violating acquisition happens one frame down.
func lockA3(a *A3) {
	a.mu.Lock()
	a.mu.Unlock()
}

func transitive(a *A3, b *B3) {
	b.mu.Lock()
	lockA3(a) // want `lock order violation: lockorder.A3.mu acquired while lockorder.B3.mu is held \(via lockorder.lockA3\)`
	b.mu.Unlock()
}

// Two frames down.
func lockA4(a *A4) {
	a.mu.Lock()
	a.mu.Unlock()
}

func viaMid(a *A4) {
	lockA4(a)
}

func twoHop(a *A4, b *B4) {
	b.mu.Lock()
	viaMid(a) // want `lock order violation: lockorder.A4.mu acquired while lockorder.B4.mu is held \(via lockorder.viaMid -> lockorder.lockA4\)`
	b.mu.Unlock()
}

// A cycle between classes with no declared order is still a deadlock.
func cycleOneWay(x *C1, y *C2) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

func cycleOtherWay(x *C1, y *C2) {
	y.mu.Lock()
	x.mu.Lock() // want `lock-order cycle: lockorder.C1.mu -> lockorder.C2.mu -> lockorder.C1.mu`
	x.mu.Unlock()
	y.mu.Unlock()
}

// A deferred unlock pins the hold to function end, so the late
// acquisition still inverts.
func deferPinned(a *A5, b *B5) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock order violation: lockorder.A5.mu acquired while lockorder.B5.mu is held`
	a.mu.Unlock()
}

// A spawned goroutine does not run under the caller's locks.
func lockA6(a *A6) {
	a.mu.Lock()
	a.mu.Unlock()
}

func goroutineClean(a *A6, b *B6) {
	b.mu.Lock()
	go lockA6(a)
	b.mu.Unlock()
}

// Released before the next acquisition: no nesting.
func releasedClean(a *A7, b *B7) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// Inversion through interface dispatch: CHA resolves the dynamic call
// to the implementation that takes the ordered lock.
type locker interface{ DoLock() }

type a8Locker struct{ a *A8 }

func (l *a8Locker) DoLock() {
	l.a.mu.Lock()
	l.a.mu.Unlock()
}

func viaInterface(l locker, b *B8) {
	b.mu.Lock()
	l.DoLock() // want `lock order violation: lockorder.A8.mu acquired while lockorder.B8.mu is held \(via lockorder.a8Locker.DoLock\)`
	b.mu.Unlock()
}

// Chain declarations order every pair in the chain, not just adjacent
// ones: G1 before G3 follows from "G1 G2 G3".
func chainPair(g1 *G1, g3 *G3) {
	g3.mu.Lock()
	g1.mu.Lock() // want `lock order violation: lockorder.G1.mu acquired while lockorder.G3.mu is held`
	g1.mu.Unlock()
	g3.mu.Unlock()
}

// Read locks participate in ordering like write locks.
func rwSameClass(r1, r2 *R) {
	r1.mu.RLock()
	r2.mu.RLock() // want `same-class lock nesting on lockorder.R.mu`
	r2.mu.RUnlock()
	r1.mu.RUnlock()
}
