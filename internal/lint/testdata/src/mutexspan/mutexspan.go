// Package mutexspan is mutexspan analyzer testdata.
package mutexspan

import (
	"sync"
	"time"
)

type box struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	ch  chan int
	val int
}

func (b *box) recvUnderLock() {
	b.mu.Lock()
	v := <-b.ch // want `channel receive while holding b\.mu`
	b.mu.Unlock()
	b.val = v
}

func (b *box) sendUnderLock(v int) {
	b.mu.Lock()
	b.ch <- v // want `channel send while holding b\.mu`
	b.mu.Unlock()
}

func (b *box) sleepUnderDeferredLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // want `potentially blocking call while holding b\.mu`
}

func (b *box) selectUnderRLock() {
	b.rw.RLock()
	select { // want `blocking select while holding b\.rw`
	case v := <-b.ch:
		b.val = v
	case b.ch <- 1:
	}
	b.rw.RUnlock()
}

func (b *box) recvAfterUnlock() int {
	b.mu.Lock()
	v := b.val
	b.mu.Unlock()
	return v + <-b.ch // released before the receive: allowed
}

func (b *box) nonBlockingSelectUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		b.val = v
	default:
	}
}

func (b *box) launchUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.ch <- 1 // runs without the lock: allowed
	}()
}

func (b *box) earlyUnlockBranch(fast bool) {
	b.mu.Lock()
	if fast {
		b.mu.Unlock()
		<-b.ch // nested unlock precedes the receive: allowed
		return
	}
	b.mu.Unlock()
}

func (b *box) blockBeforeNestedUnlock(fast bool) {
	b.mu.Lock()
	if fast {
		<-b.ch // want `channel receive while holding b\.mu`
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
}

func (b *box) suppressedRecv() {
	b.mu.Lock()
	//lint:ignore pdnlint/mutexspan testdata exercises the suppression path
	v := <-b.ch
	b.mu.Unlock()
	b.val = v
}
