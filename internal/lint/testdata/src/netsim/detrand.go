// Package netsim is detrand analyzer testdata: its base name puts it in
// the deterministic-package scope.
package netsim

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// Clock injection: referencing time.Now as a value is the sanctioned
// default for an injectable clock and must not be flagged.
var defaultClock = time.Now

type sim struct {
	now func() time.Time
	rng *rand.Rand
}

func newSim(seed int64) *sim {
	return &sim{
		now: defaultClock,
		rng: rand.New(rand.NewSource(seed)), // seeded source: allowed
	}
}

func wallClock() time.Duration {
	start := time.Now()      // want `call to time\.Now in deterministic package`
	_ = time.Until(start)    // want `call to time\.Until in deterministic package`
	return time.Since(start) // want `call to time\.Since in deterministic package`
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `global-source rand\.Shuffle`
	return rand.Intn(10)               // want `global-source rand\.Intn`
}

func seededRand(s *sim) int {
	return s.rng.Intn(10) // method on a seeded *rand.Rand: allowed
}

func mapOrderedOutput(m map[string]int) {
	for k, v := range m { // want `map iteration order feeds output`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func mapOrderedWrite(m map[string]int, f *os.File) {
	for k := range m { // want `map iteration order feeds output`
		f.WriteString(k)
	}
}

func mapAccumulate(m map[string]int) int {
	total := 0
	for _, v := range m { // order-independent aggregation: allowed
		total += v
	}
	return total
}

func suppressedClock() time.Time {
	//lint:ignore pdnlint/detrand testdata exercises the suppression path
	return time.Now()
}
