// Package obsnames is obsnames analyzer testdata. It imports the real
// internal/obs package so the analyzer's package-path matching runs
// against the same symbols production code uses.
package obsnames

import (
	"context"
	"fmt"

	"github.com/stealthy-peers/pdnsec/internal/obs"
)

func literalSnakeCase(ctx context.Context, reg *obs.Registry, tr *obs.Tracer) {
	reg.Counter("cdn_bytes_total", "bytes served") // allowed
	reg.Gauge("swarm_peers", "current swarm size") // allowed
	reg.GaugeFunc("cache_ratio", "hit ratio", func() float64 { return 0 })
	reg.Histogram("segment_latency", "per-segment fetch latency")
	reg.CounterVec("video_bytes_total", "bytes per video", "video")
	tr.Begin("dispatch_job").End()
	tr.Event("slow_start_exit")
	_, sp := tr.StartSpan(ctx, "segment_fetch") // allowed: name is arg 1
	sp.Event("cache_probe")
	sp.End()
	tr.StartSpanRemote("", "signal_join_serve").End() // allowed
}

func dynamicName(reg *obs.Registry, video string) {
	reg.Counter("bytes_"+video, "per-video bytes") // want `obs.Counter name must be a literal string, not an expression`
}

func sprintfName(reg *obs.Registry, shard int) {
	reg.Gauge(fmt.Sprintf("queue_%d", shard), "shard depth") // want `obs.Gauge name must be a literal string, not an expression`
}

func camelCase(reg *obs.Registry) {
	reg.Counter("cdnBytesTotal", "bytes served") // want `obs.Counter name "cdnBytesTotal" is not snake_case`
}

func upperCase(reg *obs.Registry) {
	reg.Histogram("Segment_Latency", "latency") // want `obs.Histogram name "Segment_Latency" is not snake_case`
}

func hyphenated(tr *obs.Tracer) {
	tr.Event("slow-start-exit") // want `obs.Event name "slow-start-exit" is not snake_case`
}

func trailingUnderscore(tr *obs.Tracer) {
	tr.Begin("dispatch_job_").End() // want `obs.Begin name "dispatch_job_" is not snake_case`
}

func variableName(reg *obs.Registry) {
	const name = "ok_constant_but_not_literal"
	reg.Counter(name, "help") // want `obs.Counter name must be a literal string, not an expression`
}

func spanDynamicName(ctx context.Context, tr *obs.Tracer, video string) {
	_, sp := tr.StartSpan(ctx, "segment_"+video) // want `obs.StartSpan name must be a literal string, not an expression`
	sp.End()
}

func spanRemoteCamel(tr *obs.Tracer, enc string) {
	// The first argument is the propagated context, not the name: only
	// the second must be a literal.
	tr.StartSpanRemote(enc, "SignalJoinServe").End() // want `obs.StartSpanRemote name "SignalJoinServe" is not snake_case`
}

func spanEventHyphen(ctx context.Context, tr *obs.Tracer) {
	_, sp := tr.StartSpan(ctx, "segment_fetch")
	sp.Event("cdn-fallback") // want `obs.Event name "cdn-fallback" is not snake_case`
	sp.End()
}

func otherPackagesUnaffected(video string) string {
	// Name-shaped calls outside internal/obs are out of scope.
	return fmt.Sprintf("bytes_%s", video)
}

func suppressed(reg *obs.Registry, video string) {
	//lint:ignore pdnlint/obsnames testdata exercises the suppression path
	reg.Counter("bytes_"+video, "per-video bytes")
}
