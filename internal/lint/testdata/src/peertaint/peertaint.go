// Package peertaint exercises the interprocedural peer-identity taint
// analyzer: sources (RemoteAddr, JoinRequest.FwdAddr, geoip lookups,
// peerstore entries), sinks (logs, trace attributes, metric labels,
// wire payloads, chaos events), sanitizers (internal/privacy), and the
// field-granular struct taint that keeps intentional protocol flows
// quiet.
package peertaint

import (
	"fmt"
	"log"
	"net"
	"net/netip"

	"github.com/stealthy-peers/pdnsec/internal/chaos"
	"github.com/stealthy-peers/pdnsec/internal/geoip"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/privacy"
	"github.com/stealthy-peers/pdnsec/internal/wire"
)

// ---- direct source → sink ----

func direct(conn net.Conn) {
	log.Printf("conn from %s", conn.RemoteAddr()) // want `peer-identifying value from RemoteAddr\(\) .* reaches log output`
}

// ---- interprocedural: source and sink in different functions ----

// clientAddr is the source function: the taint enters here and flows
// out through the return value.
func clientAddr(conn net.Conn) string {
	return conn.RemoteAddr().String()
}

// logIt is the sink function: the tainted argument arrives through the
// parameter.
func logIt(s string) {
	log.Println("peer", s) // want `peer-identifying value from RemoteAddr\(\) .* reaches log output; path: .*clientAddr.*logIt`
}

func relay(conn net.Conn) {
	logIt(clientAddr(conn))
}

func useReturn(conn net.Conn) {
	a := clientAddr(conn)
	fmt.Println(a) // want `peer-identifying value from RemoteAddr\(\) .* reaches log output`
}

// ---- observability sinks ----

func traceAttr(tr *obs.Tracer, conn net.Conn) {
	a := conn.RemoteAddr().String()
	tr.Event("join", obs.A("addr", a)) // want `peer-identifying value from RemoteAddr\(\) .* reaches trace attribute`
}

func metricLabel(vec *obs.CounterVec, conn net.Conn) {
	vec.With(clientAddr(conn)).Inc() // want `peer-identifying value from RemoteAddr\(\) .* reaches metric label value`
}

func wirePayload(codec *wire.Codec, conn net.Conn) {
	codec.Send("gossip", clientAddr(conn)) // want `peer-identifying value from RemoteAddr\(\) .* reaches wire frame payload`
}

func chaosEvent(conn net.Conn) chaos.Event {
	return chaos.Event{Fault: "partition", Detail: clientAddr(conn)} // want `peer-identifying value from RemoteAddr\(\) .* reaches chaos event field`
}

// ---- trace propagation fields are sinks ----

// Relay models the signaling relay message: its Trace field carries an
// encoded obs.TraceContext to another process's trace file.
type Relay struct {
	To    string
	Trace string
}

type p2pMsg struct {
	Op    string
	Trace string
}

func traceFieldLiteral(conn net.Conn) Relay {
	return Relay{To: "p2", Trace: clientAddr(conn)} // want `peer-identifying value from RemoteAddr\(\) .* reaches trace propagation field`
}

func traceFieldAssign(conn net.Conn) {
	var m p2pMsg
	m.Trace = clientAddr(conn) // want `peer-identifying value from RemoteAddr\(\) .* reaches trace propagation field`
	_ = m
}

func traceFieldClean(tc string) Relay {
	// Opaque encoded trace contexts (hex identifiers) are the intended
	// payload; sibling fields stay unchecked.
	return Relay{To: "p2", Trace: tc}
}

// ---- declared source fields and types ----

type JoinRequest struct {
	Video   string
	FwdAddr string
}

func forwarded(j JoinRequest) {
	log.Println("fwd", j.FwdAddr) // want `peer-identifying value from JoinRequest.FwdAddr .* reaches log output`
}

type Peerstore struct{ entries []string }

func (p *Peerstore) Candidates() []string { return p.entries }

func storeDump(p *Peerstore) {
	for _, e := range p.Candidates() {
		log.Println("candidate", e) // want `peer-identifying value from peerstore entries .* reaches log output`
	}
}

// ---- geoip: coarse fields are exempt, the record is not ----

func geoCoarse(db *geoip.DB, a netip.Addr) {
	log.Println("country", db.Lookup(a).Country) // coarse field: clean
}

func geoRecord(db *geoip.DB, a netip.Addr) {
	rec := db.Lookup(a)
	log.Println("rec", rec.Addr) // want `peer-identifying value from geoip.Lookup record .* reaches log output`
}

// ---- sanitizers stop the flow ----

func sanitized(conn net.Conn, tr *obs.Tracer) {
	log.Println("peer", privacy.Redact(clientAddr(conn)))
	tr.Event("join", obs.A("addr", privacy.Truncate(privacy.Redact(clientAddr(conn)), 16)))
}

// ---- struct taint is field-granular ----

type session struct {
	id   string
	addr string
}

func fieldGranular(conn net.Conn) {
	s := session{id: "p1", addr: clientAddr(conn)}
	log.Println("session", s.id)   // sibling field: clean
	log.Println("session", s.addr) // want `peer-identifying value from RemoteAddr\(\) .* reaches log output`
}

// ---- per-host ledgers: addr-keyed maps leak via keys, not counts ----

// identityCounts models the matcher's host ledger: a map keyed by the
// client address. The key write poisons the container itself.
func identityCounts(conns []net.Conn) map[string]int {
	counts := make(map[string]int)
	for _, c := range conns {
		counts[clientAddr(c)]++
	}
	return counts
}

func ledgerDumpKeys(conns []net.Conn) {
	for addr, n := range identityCounts(conns) {
		log.Printf("host %s holds %d identities", addr, n) // want `peer-identifying value from RemoteAddr\(\) .* reaches log output`
	}
}

func ledgerAggregates(conns []net.Conn) {
	peak := 0
	for _, n := range identityCounts(conns) {
		if n > peak {
			peak = n
		}
	}
	log.Println("peak identities", peak) // int-only aggregate: clean
}

func ledgerRedacted(conns []net.Conn, tr *obs.Tracer) {
	for addr, n := range identityCounts(conns) {
		tr.Event("host", obs.A("host", privacy.Redact(addr)), obs.A("identities", fmt.Sprint(n)))
	}
}

// hostFootprint mirrors signal.HostStat: the anonymized per-host
// aggregate is int-only by design, so publishing it stays clean.
type hostFootprint struct {
	Identities int
	Peak       int
}

func footprints(conns []net.Conn) []hostFootprint {
	var out []hostFootprint
	for _, n := range identityCounts(conns) {
		out = append(out, hostFootprint{Identities: n, Peak: n})
	}
	return out
}

func footprintDump(conns []net.Conn) {
	for _, f := range footprints(conns) {
		log.Printf("host identities=%d peak=%d", f.Identities, f.Peak) // anonymized aggregates: clean
	}
}

// ---- identity-free derivations are clean ----

func derived(conn net.Conn) {
	a := clientAddr(conn)
	log.Println("len", len(a))
	log.Println("ok", a != "")
}

// ---- suppression directive is honored ----

func suppressed(conn net.Conn) {
	//lint:ignore pdnlint/peertaint attack-measurement harness output
	log.Println("raw", clientAddr(conn))
}
