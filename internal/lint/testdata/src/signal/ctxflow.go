// Package signal is ctxflow analyzer testdata: its base name puts it in
// the context-required scope.
package signal

import (
	"context"
	"net"
	"sync"
)

type server struct {
	jobs chan int
	wg   sync.WaitGroup
}

// RecvJob blocks on a channel without accepting a context.
func (s *server) RecvJob() int { // want `exported RecvJob blocks .* but takes no context\.Context`
	return <-s.jobs
}

// SendJob blocks on a channel send without accepting a context.
func (s *server) SendJob(v int) { // want `exported SendJob blocks .* but takes no context\.Context`
	s.jobs <- v
}

// WaitIdle blocks in WaitGroup.Wait without accepting a context.
func (s *server) WaitIdle() { // want `exported WaitIdle blocks .* but takes no context\.Context`
	s.wg.Wait()
}

// DialUpstream performs a net call without accepting a context.
func DialUpstream(addr string) (net.Conn, error) { // want `exported DialUpstream blocks .* but takes no context\.Context`
	return net.Dial("tcp", addr)
}

// Relay blocks only through a same-package helper; the transitive pass
// must still flag it.
func (s *server) Relay(v int) { // want `exported Relay blocks .* but takes no context\.Context`
	s.push(v)
}

func (s *server) push(v int) {
	s.jobs <- v
}

// RecvJobCtx accepts a context: compliant.
func (s *server) RecvJobCtx(ctx context.Context) (int, error) {
	select {
	case v := <-s.jobs:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// TryRecv uses a select with default: never blocks, no context needed.
func (s *server) TryRecv() (int, bool) {
	select {
	case v := <-s.jobs:
		return v, true
	default:
		return 0, false
	}
}

// Close is exempt as io.Closer even though it waits.
func (s *server) Close() error {
	s.wg.Wait()
	return nil
}

// Detached builds a root context below cmd/.
func Detached() context.Context {
	return context.Background() // want `context\.Background below cmd/`
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO below cmd/`
}

// Spawn only launches a goroutine; the literal's body blocks the new
// goroutine, not Spawn itself.
func (s *server) Spawn(ctx context.Context) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case <-s.jobs:
		case <-ctx.Done():
		}
	}()
}

// StartWorkers only spawns named workers; drain blocks the new
// goroutines, not StartWorkers itself — the transitive pass must not
// follow a go statement's callee.
func (s *server) StartWorkers(n int) {
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.drain()
	}
}

func (s *server) drain() {
	defer s.wg.Done()
	for range s.jobs {
	}
}

// SpawnEager evaluates a blocking argument before launching the
// goroutine, so it blocks the caller and must still be flagged.
func (s *server) SpawnEager() { // want `exported SpawnEager blocks .* but takes no context\.Context`
	go s.discard(s.takeOne())
}

func (s *server) discard(int) {}

func (s *server) takeOne() int { return <-s.jobs }
