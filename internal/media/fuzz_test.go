package media

import "testing"

// FuzzParseHeader hardens the segment-identity parser: pollution
// verification calls it on attacker-controlled payloads.
func FuzzParseHeader(f *testing.F) {
	v := NewVOD("fuzz", 4)
	seed, _ := v.SegmentData("360p", 0)
	f.Add(seed[:256])
	f.Add([]byte("PDNSEG1\x00a|b|3\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, rend, idx, ok := ParseHeader(data)
		if !ok {
			return
		}
		if idx < 0 {
			t.Fatalf("accepted negative index %d", idx)
		}
		_ = id
		_ = rend
	})
}
