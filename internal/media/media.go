// Package media provides deterministic synthetic video sources for the
// pdnsec experiments: segment payload generation, bitrate ladders, and
// segment integrity hashing.
//
// The paper streamed a customized video through Wowza + CloudFront; for
// the reproduction, what matters is that segments are content-addressable
// so pollution is detectable automatically (the paper verified pollution
// visually from screen recordings). Every byte of a segment is a pure
// function of (video ID, rendition, segment index), so any peer — or any
// test — can independently recompute what a segment should contain.
package media

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
)

// Rendition is one rung of an adaptive-bitrate ladder.
type Rendition struct {
	// Name identifies the rendition in playlists, e.g. "720p".
	Name string `json:"name"`
	// Bandwidth is the nominal bitrate in bits per second.
	Bandwidth int `json:"bandwidth"`
	// SegmentBytes is the size of each media segment at this rendition.
	SegmentBytes int `json:"segment_bytes"`
}

// DefaultLadder mirrors a typical three-rung HLS ladder; segment sizes
// assume the paper's 10-second segment duration.
func DefaultLadder() []Rendition {
	return []Rendition{
		{Name: "360p", Bandwidth: 800_000, SegmentBytes: 1_000_000},
		{Name: "720p", Bandwidth: 2_400_000, SegmentBytes: 3_000_000},
		{Name: "1080p", Bandwidth: 4_800_000, SegmentBytes: 6_000_000},
	}
}

// Video describes one synthetic video asset.
type Video struct {
	// ID is the stable identifier, e.g. "bbb" or "live/main".
	ID string `json:"id"`
	// Renditions is the bitrate ladder, lowest first.
	Renditions []Rendition `json:"renditions"`
	// Segments is the total number of segments for VOD assets; live
	// streams treat this as the rolling horizon and wrap.
	Segments int `json:"segments"`
	// SegmentDuration is the playback duration of each segment in
	// seconds (the paper uses 10-second segments).
	SegmentDuration float64 `json:"segment_duration"`
	// Live marks endless (live-window) assets.
	Live bool `json:"live"`
}

// NewVOD constructs a VOD asset with the default ladder.
func NewVOD(id string, segments int) *Video {
	return &Video{
		ID:              id,
		Renditions:      DefaultLadder(),
		Segments:        segments,
		SegmentDuration: 10,
	}
}

// NewLive constructs a live asset with the default ladder and the given
// live-window horizon.
func NewLive(id string, horizon int) *Video {
	return &Video{
		ID:              id,
		Renditions:      DefaultLadder(),
		Segments:        horizon,
		SegmentDuration: 10,
		Live:            true,
	}
}

// Rendition returns the rendition with the given name.
func (v *Video) Rendition(name string) (Rendition, bool) {
	for _, r := range v.Renditions {
		if r.Name == name {
			return r, true
		}
	}
	return Rendition{}, false
}

// SegmentData deterministically generates the payload of one segment.
// The payload begins with a parseable header (so tests and the pollution
// verifier can identify a segment from its bytes) followed by
// pseudo-random filler derived from the segment identity.
func (v *Video) SegmentData(rendition string, index int) ([]byte, error) {
	r, ok := v.Rendition(rendition)
	if !ok {
		return nil, fmt.Errorf("media: video %q has no rendition %q", v.ID, rendition)
	}
	if index < 0 || (!v.Live && index >= v.Segments) {
		return nil, fmt.Errorf("media: video %q segment %d out of range [0,%d)", v.ID, index, v.Segments)
	}
	return generate(v.ID, rendition, index, r.SegmentBytes), nil
}

// segmentMagic marks the start of a synthetic segment payload.
const segmentMagic = "PDNSEG1\x00"

// generate produces size bytes: header + keyed keystream.
func generate(videoID, rendition string, index, size int) []byte {
	if size < 64 {
		size = 64
	}
	out := make([]byte, 0, size)
	header := fmt.Sprintf("%s%s|%s|%d\n", segmentMagic, videoID, rendition, index)
	out = append(out, header...)

	// Keystream: chained SHA-256 over the segment identity. ~32 bytes per
	// round; cheap enough for multi-MB segments in tests and benches.
	seed := sha256.Sum256([]byte(header))
	block := seed[:]
	var ctr [8]byte
	var n uint64
	for len(out) < size {
		binary.BigEndian.PutUint64(ctr[:], n)
		h := sha256.New()
		h.Write(block)
		h.Write(ctr[:])
		block = h.Sum(nil)
		out = append(out, block...)
		n++
	}
	return out[:size]
}

// ParseHeader extracts the (videoID, rendition, index) identity from a
// segment payload, reporting ok=false for foreign or polluted prefixes.
func ParseHeader(payload []byte) (videoID, rendition string, index int, ok bool) {
	if len(payload) < len(segmentMagic) || string(payload[:len(segmentMagic)]) != segmentMagic {
		return "", "", 0, false
	}
	rest := payload[len(segmentMagic):]
	// header line ends at '\n'
	end := -1
	for i, b := range rest {
		if b == '\n' {
			end = i
			break
		}
		if i > 256 {
			break
		}
	}
	if end < 0 {
		return "", "", 0, false
	}
	line := string(rest[:end])
	// split into videoID|rendition|index, from the right to allow '|' in IDs
	lastSep := -1
	midSep := -1
	for i := len(line) - 1; i >= 0; i-- {
		if line[i] == '|' {
			if lastSep == -1 {
				lastSep = i
			} else {
				midSep = i
				break
			}
		}
	}
	if lastSep < 0 || midSep < 0 {
		return "", "", 0, false
	}
	idx, err := strconv.Atoi(line[lastSep+1:])
	if err != nil {
		return "", "", 0, false
	}
	return line[:midSep], line[midSep+1 : lastSep], idx, true
}

// Verify recomputes the expected payload for the claimed identity and
// reports whether data matches exactly. This is the ground-truth check
// the experiments use to decide whether pollution reached a victim.
func (v *Video) Verify(rendition string, index int, data []byte) bool {
	want, err := v.SegmentData(rendition, index)
	if err != nil {
		return false
	}
	if len(want) != len(data) {
		return false
	}
	return sha256.Sum256(want) == sha256.Sum256(data)
}

// Hash returns the hex SHA-256 of a segment payload — the integrity
// metadata (IM) primitive used by the paper's peer-assisted defense.
func Hash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// IMHash computes the integrity metadata for a segment: the hash of the
// tuple (content, video identifier, rendition, position), as §V-B
// specifies — binding position and identity defeats cross-segment and
// cross-video replay of a recorded (segment, SIM) pair.
func IMHash(key SegmentKey, data []byte) string {
	h := sha256.New()
	h.Write(data)
	h.Write([]byte{0})
	h.Write([]byte(key.String()))
	return hex.EncodeToString(h.Sum(nil))
}

// SegmentKey names a segment uniquely across videos and renditions.
type SegmentKey struct {
	Video     string `json:"video"`
	Rendition string `json:"rendition"`
	Index     int    `json:"index"`
}

// String formats the key as video/rendition/index.
func (k SegmentKey) String() string {
	return k.Video + "/" + k.Rendition + "/" + strconv.Itoa(k.Index)
}
