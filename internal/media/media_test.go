package media

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestSegmentDataDeterministic(t *testing.T) {
	v := NewVOD("bbb", 10)
	a, err := v.SegmentData("720p", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.SegmentData("720p", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("segment generation not deterministic")
	}
	if len(a) != 3_000_000 {
		t.Fatalf("len = %d, want 3000000", len(a))
	}
}

func TestSegmentDataDistinct(t *testing.T) {
	v := NewVOD("bbb", 10)
	a, _ := v.SegmentData("720p", 1)
	b, _ := v.SegmentData("720p", 2)
	c, _ := v.SegmentData("360p", 1)
	if bytes.Equal(a[:64], b[:64]) {
		t.Fatal("segments 1 and 2 share a prefix")
	}
	if bytes.Equal(a[64:256], b[64:256]) || bytes.Equal(a[64:256], c[64:256]) {
		t.Fatal("distinct segments should have distinct bodies")
	}
	w := NewVOD("other", 10)
	d, _ := w.SegmentData("720p", 1)
	if bytes.Equal(a[64:256], d[64:256]) {
		t.Fatal("distinct videos should have distinct bodies")
	}
}

func TestSegmentDataErrors(t *testing.T) {
	v := NewVOD("bbb", 5)
	if _, err := v.SegmentData("999p", 0); err == nil {
		t.Fatal("unknown rendition should error")
	}
	if _, err := v.SegmentData("720p", 5); err == nil {
		t.Fatal("out-of-range index should error")
	}
	if _, err := v.SegmentData("720p", -1); err == nil {
		t.Fatal("negative index should error")
	}
}

func TestLiveWraps(t *testing.T) {
	v := NewLive("ch1", 6)
	if _, err := v.SegmentData("720p", 1000); err != nil {
		t.Fatalf("live assets have unbounded indices: %v", err)
	}
}

func TestParseHeaderRoundTrip(t *testing.T) {
	v := NewVOD("my/video|weird", 4)
	data, err := v.SegmentData("1080p", 2)
	if err != nil {
		t.Fatal(err)
	}
	id, rend, idx, ok := ParseHeader(data)
	if !ok {
		t.Fatal("ParseHeader failed")
	}
	if id != "my/video|weird" || rend != "1080p" || idx != 2 {
		t.Fatalf("got %q %q %d", id, rend, idx)
	}
}

func TestParseHeaderRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		[]byte("short"),
		[]byte("PDNSEG1\x00noseparators\n"),
		[]byte("PDNSEG1\x00a|b|notanum\n"),
		bytes.Repeat([]byte{0xff}, 128),
		[]byte("PDNSEG1\x00" + strings.Repeat("x", 400)), // no newline in window
	} {
		if _, _, _, ok := ParseHeader(bad); ok {
			t.Fatalf("ParseHeader accepted %q", bad)
		}
	}
}

func TestVerify(t *testing.T) {
	v := NewVOD("bbb", 4)
	data, _ := v.SegmentData("360p", 0)
	if !v.Verify("360p", 0, data) {
		t.Fatal("Verify rejected authentic segment")
	}
	polluted := append([]byte(nil), data...)
	polluted[len(polluted)/2] ^= 0xff
	if v.Verify("360p", 0, polluted) {
		t.Fatal("Verify accepted polluted segment")
	}
	if v.Verify("360p", 1, data) {
		t.Fatal("Verify accepted misplaced segment (replay)")
	}
	if v.Verify("360p", 0, data[:len(data)-1]) {
		t.Fatal("Verify accepted truncated segment")
	}
}

func TestHashStable(t *testing.T) {
	if Hash([]byte("x")) != Hash([]byte("x")) {
		t.Fatal("Hash not stable")
	}
	if Hash([]byte("x")) == Hash([]byte("y")) {
		t.Fatal("Hash collision on trivial input")
	}
	if len(Hash(nil)) != 64 {
		t.Fatalf("hex sha256 should be 64 chars, got %d", len(Hash(nil)))
	}
}

func TestRenditionLookup(t *testing.T) {
	v := NewVOD("bbb", 1)
	r, ok := v.Rendition("720p")
	if !ok || r.SegmentBytes != 3_000_000 {
		t.Fatalf("Rendition(720p) = %+v %v", r, ok)
	}
	if _, ok := v.Rendition("nope"); ok {
		t.Fatal("unknown rendition should not resolve")
	}
}

func TestSegmentKeyString(t *testing.T) {
	k := SegmentKey{Video: "v", Rendition: "720p", Index: 7}
	if k.String() != "v/720p/7" {
		t.Fatalf("got %q", k.String())
	}
}

func TestMinimumSegmentSize(t *testing.T) {
	v := &Video{ID: "tiny", Renditions: []Rendition{{Name: "t", SegmentBytes: 1}}, Segments: 1, SegmentDuration: 1}
	data, err := v.SegmentData("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 64 {
		t.Fatalf("segments have a 64-byte floor, got %d", len(data))
	}
}

// Property: header parse is the inverse of generation for arbitrary
// well-formed identities.
func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(idRaw, rendRaw string, idx uint16) bool {
		id := clip(strings.Map(dropControl, idRaw), 80)
		rend := clip(strings.ReplaceAll(strings.Map(dropControl, rendRaw), "|", "_"), 40)
		if id == "" {
			id = "v"
		}
		if rend == "" {
			rend = "r"
		}
		data := generate(id, rend, int(idx), 256)
		gid, grend, gidx, ok := ParseHeader(data)
		return ok && gid == id && grend == rend && gidx == int(idx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// clip truncates s to at most n bytes on a rune boundary; segment IDs in
// playlists are short, and ParseHeader's scan window is 256 bytes.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	for n > 0 && (s[n]&0xc0) == 0x80 {
		n--
	}
	return s[:n]
}

func dropControl(r rune) rune {
	if r == '\n' || r == '\r' {
		return -1
	}
	return r
}

// Property: Verify accepts exactly the generated payload and rejects any
// single-byte mutation.
func TestQuickVerifyMutation(t *testing.T) {
	v := &Video{ID: "q", Renditions: []Rendition{{Name: "r", SegmentBytes: 512}}, Segments: 8, SegmentDuration: 10}
	f := func(idx uint8, pos uint16, flip byte) bool {
		i := int(idx) % 8
		data, err := v.SegmentData("r", i)
		if err != nil {
			return false
		}
		if !v.Verify("r", i, data) {
			return false
		}
		if flip == 0 {
			flip = 1
		}
		mut := append([]byte(nil), data...)
		mut[int(pos)%len(mut)] ^= flip
		return !v.Verify("r", i, mut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
