// Package mitm implements the attacker-side interception tooling the
// paper's PDN analyzer uses: a fake CDN that substitutes video content,
// and a signaling proxy that rewrites messages (Origin/Referer headers)
// in flight.
//
// Both reproduce §IV's threat model: the attacker controls a peer and
// the network path between that peer and the PDN/CDN servers (the paper
// configures the peer with a self-signed root certificate to decrypt
// its own proxy'd traffic). Neither component touches other peers'
// traffic — the attacks work by corrupting what the attacker's own
// client fetches and letting the PDN propagate it.
package mitm

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/hls"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/wire"
)

// PolluteFunc decides the substitute bytes for a fetched segment.
// Returning (nil, false) passes the original through.
type PolluteFunc func(key media.SegmentKey, original []byte) ([]byte, bool)

// SameSizePollution returns a PolluteFunc that replaces the payload of
// the selected segment indices with attacker bytes of *identical
// length* — the refined "video segment pollution" attack that survives
// the SDK's bitrate-consistency check. Selecting nil indices pollutes
// every segment.
func SameSizePollution(indices []int) PolluteFunc {
	sel := make(map[int]bool, len(indices))
	for _, i := range indices {
		sel[i] = true
	}
	return func(key media.SegmentKey, original []byte) ([]byte, bool) {
		if len(sel) > 0 && !sel[key.Index] {
			return nil, false
		}
		fake := make([]byte, len(original))
		marker := []byte("POLLUTED:" + key.String() + ":")
		for i := range fake {
			fake[i] = marker[i%len(marker)]
		}
		return fake, true
	}
}

// ForeignVideoPollution returns a PolluteFunc modelling the *direct*
// content pollution attack: every segment is replaced with content from
// a different video — different bitrate, hence different size — which
// the SDK's consistency check catches.
func ForeignVideoPollution(foreign *media.Video, rendition string) PolluteFunc {
	return func(key media.SegmentKey, original []byte) ([]byte, bool) {
		idx := key.Index
		if !foreign.Live && foreign.Segments > 0 {
			idx = key.Index % foreign.Segments
		}
		data, err := foreign.SegmentData(rendition, idx)
		if err != nil {
			return nil, false
		}
		return data, true
	}
}

// FakeCDN is an HTTP server that forwards to a real CDN and substitutes
// segment payloads. The attacker's peer is pointed at it (the paper
// redirects the peer's video source URL via its proxy).
type FakeCDN struct {
	upstream string // real CDN base URL
	client   *http.Client
	pollute  PolluteFunc

	substitutions atomic.Int64
	subsMetric    *obs.Counter
	tracer        *obs.Tracer

	httpSrv *http.Server
	srvWG   sync.WaitGroup
}

// Instrument registers the fake CDN's substitution counter and attaches
// a tracer for per-substitution events. Nil arguments are no-ops.
func (f *FakeCDN) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	f.subsMetric = reg.Counter("mitm_substitutions_total", "segment payloads replaced by the fake CDN")
	f.tracer = tr
}

// NewFakeCDN constructs a fake CDN forwarding to upstream; outbound
// requests are dialed from the given simulated host.
func NewFakeCDN(host *netsim.Host, upstream string, pollute PolluteFunc) *FakeCDN {
	return &FakeCDN{
		upstream: upstream,
		client: &http.Client{
			Transport: &http.Transport{DialContext: host.Dialer()},
			Timeout:   10 * time.Second,
		},
		pollute: pollute,
	}
}

// Substitutions reports how many segment payloads were replaced.
func (f *FakeCDN) Substitutions() int64 { return f.substitutions.Load() }

// Serve starts the fake CDN on a host/port.
func (f *FakeCDN) Serve(host *netsim.Host, port uint16) error {
	l, err := host.Listen(port)
	if err != nil {
		return fmt.Errorf("mitm: fake cdn listen: %w", err)
	}
	f.httpSrv = &http.Server{Handler: http.HandlerFunc(f.handle)}
	f.srvWG.Add(1)
	go func() {
		defer f.srvWG.Done()
		_ = f.httpSrv.Serve(l)
	}()
	return nil
}

// Close stops the server and waits for its serve goroutine.
func (f *FakeCDN) Close() error {
	if f.httpSrv == nil {
		return nil
	}
	err := f.httpSrv.Close()
	f.srvWG.Wait()
	return err
}

func (f *FakeCDN) handle(w http.ResponseWriter, r *http.Request) {
	resp, err := f.client.Get(f.upstream + r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if resp.StatusCode == http.StatusOK && f.pollute != nil {
		if key, ok := segmentKeyFromPath(r.URL.Path); ok {
			if fake, polluted := f.pollute(key, body); polluted {
				body = fake
				f.substitutions.Add(1)
				f.subsMetric.Inc()
				f.tracer.Event("mitm_substitute", obs.A("video", key.Video), obs.A("idx", key.Index))
			}
		}
	}
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// segmentKeyFromPath parses /v/<video>/<rendition>/seg<NNNNN>.ts.
func segmentKeyFromPath(path string) (media.SegmentKey, bool) {
	idx, ok := hls.ParseSegmentURI(path)
	if !ok {
		return media.SegmentKey{}, false
	}
	// strip leading "/v/" and trailing "/segNNNNN.ts"
	const prefix = "/v/"
	if len(path) < len(prefix) || path[:len(prefix)] != prefix {
		return media.SegmentKey{}, false
	}
	rest := path[len(prefix):]
	last := -1
	for i := len(rest) - 1; i >= 0; i-- {
		if rest[i] == '/' {
			last = i
			break
		}
	}
	if last < 0 {
		return media.SegmentKey{}, false
	}
	base := rest[:last]
	mid := -1
	for i := len(base) - 1; i >= 0; i-- {
		if base[i] == '/' {
			mid = i
			break
		}
	}
	if mid < 0 {
		return media.SegmentKey{}, false
	}
	return media.SegmentKey{Video: base[:mid], Rendition: base[mid+1:], Index: idx}, true
}

// RewriteFunc inspects/modifies a signaling envelope in flight.
// Returning the (possibly modified) envelope forwards it.
type RewriteFunc func(fromClient bool, env wire.Envelope) wire.Envelope

// SignalProxy is a TCP-level MITM on the signaling channel: it accepts
// SDK connections, dials the real PDN server, and pipes frames through
// a rewrite hook — the paper's domain-spoofing proxy.
type SignalProxy struct {
	host     *netsim.Host
	upstream netip.AddrPort
	rewrite  RewriteFunc

	rewrites *obs.Counter
	tracer   *obs.Tracer

	listener *netsim.Listener
	wg       sync.WaitGroup
	done     chan struct{}
}

// Instrument registers the proxy's rewrite counter and attaches a
// tracer for per-rewrite events. Nil arguments are no-ops.
func (p *SignalProxy) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	p.rewrites = reg.Counter("mitm_rewrites_total", "signaling envelopes passed through the rewrite hook")
	p.tracer = tr
}

// NewSignalProxy constructs a proxy dialing upstream from host.
func NewSignalProxy(host *netsim.Host, upstream netip.AddrPort, rewrite RewriteFunc) *SignalProxy {
	return &SignalProxy{host: host, upstream: upstream, rewrite: rewrite, done: make(chan struct{})}
}

// Serve starts the proxy on a port of its host. ctx bounds the upstream
// dial of every piped connection.
func (p *SignalProxy) Serve(ctx context.Context, port uint16) error {
	l, err := p.host.Listen(port)
	if err != nil {
		return fmt.Errorf("mitm: proxy listen: %w", err)
	}
	p.listener = l
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.pipe(ctx, conn)
			}()
		}
	}()
	return nil
}

// Close stops the proxy.
func (p *SignalProxy) Close() error {
	select {
	case <-p.done:
	default:
		close(p.done)
	}
	if p.listener != nil {
		p.listener.Close()
	}
	p.wg.Wait()
	return nil
}

// pipe relays envelopes between a client conn and the upstream server,
// applying the rewrite hook in both directions.
func (p *SignalProxy) pipe(ctx context.Context, clientConn net.Conn) {
	defer clientConn.Close()
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	upstreamConn, err := p.host.Dial(dctx, p.upstream)
	cancel()
	if err != nil {
		return
	}
	defer upstreamConn.Close()

	clientCodec := wire.NewCodec(clientConn)
	upstreamCodec := wire.NewCodec(upstreamConn)

	relay := func(src, dst *wire.Codec, fromClient bool) {
		for {
			env, err := src.Read()
			if err != nil {
				dst.Close()
				return
			}
			if p.rewrite != nil {
				env = p.rewrite(fromClient, env)
				p.rewrites.Inc()
				p.tracer.Event("mitm_rewrite", obs.A("type", env.Type), obs.A("from_client", fromClient))
			}
			if err := dst.Write(env); err != nil {
				src.Close()
				return
			}
		}
	}
	done := make(chan struct{})
	go func() {
		relay(upstreamCodec, clientCodec, false)
		close(done)
	}()
	relay(clientCodec, upstreamCodec, true)
	<-done
}

// SpoofOrigin returns a RewriteFunc that rewrites join requests to
// claim the victim domain — the paper's domain-spoofing attack run
// against an *unmodified* SDK.
func SpoofOrigin(victimDomain string) RewriteFunc {
	return func(fromClient bool, env wire.Envelope) wire.Envelope {
		if !fromClient || env.Type != signalJoinType {
			return env
		}
		var join map[string]any
		if err := json.Unmarshal(env.Data, &join); err != nil {
			return env
		}
		join["origin"] = "https://" + victimDomain
		join["referer"] = "https://" + victimDomain + "/watch"
		raw, err := json.Marshal(join)
		if err != nil {
			return env
		}
		env.Data = raw
		return env
	}
}

// signalJoinType mirrors signal.MsgJoin without importing the package
// (mitm sits below the signaling layer and treats frames as data).
const signalJoinType = "join"
