package mitm

import (
	"context"
	"io"
	"net/http"
	"net/netip"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/auth"
	"github.com/stealthy-peers/pdnsec/internal/cdn"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

func testVideo() *media.Video {
	const segBytes = 16 << 10
	return &media.Video{
		ID:              "bbb",
		Renditions:      []media.Rendition{{Name: "360p", Bandwidth: segBytes * 8 / 10, SegmentBytes: segBytes}},
		Segments:        4,
		SegmentDuration: 10,
	}
}

func TestFakeCDNPassThroughAndSubstitution(t *testing.T) {
	n := netsim.New(netsim.Config{})
	realHost := n.MustHost(netip.MustParseAddr("93.184.216.34"))
	fakeHost := n.MustHost(netip.MustParseAddr("13.13.13.13"))
	client := n.MustHost(netip.MustParseAddr("66.24.0.1"))

	v := testVideo()
	real := cdn.New()
	real.Register(v)
	if err := real.Serve(realHost, 80); err != nil {
		t.Fatal(err)
	}
	defer real.Close()

	fake := NewFakeCDN(fakeHost, "http://93.184.216.34:80", SameSizePollution([]int{2}))
	if err := fake.Serve(fakeHost, 80); err != nil {
		t.Fatal(err)
	}
	defer fake.Close()

	hc := &http.Client{Transport: &http.Transport{DialContext: client.Dialer()}, Timeout: 5 * time.Second}
	get := func(url string) (int, []byte) {
		t.Helper()
		resp, err := hc.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Playlists pass through untouched.
	code, body := get(cdn.PlaylistURL("http://13.13.13.13:80", "bbb", "360p"))
	if code != 200 || len(body) == 0 {
		t.Fatalf("playlist via fake cdn: %d", code)
	}
	// Segment 1 is authentic.
	_, seg1 := get(cdn.SegmentURL("http://13.13.13.13:80", "bbb", "360p", 1))
	if !v.Verify("360p", 1, seg1) {
		t.Fatal("unpolluted segment should verify")
	}
	// Segment 2 is polluted — same length, different bytes.
	_, seg2 := get(cdn.SegmentURL("http://13.13.13.13:80", "bbb", "360p", 2))
	want, _ := v.SegmentData("360p", 2)
	if len(seg2) != len(want) {
		t.Fatalf("same-size pollution changed length: %d vs %d", len(seg2), len(want))
	}
	if v.Verify("360p", 2, seg2) {
		t.Fatal("segment 2 should be polluted")
	}
	if fake.Substitutions() != 1 {
		t.Fatalf("substitutions = %d", fake.Substitutions())
	}
	// 404 passes through.
	code, _ = get(cdn.SegmentURL("http://13.13.13.13:80", "bbb", "360p", 99))
	if code != 404 {
		t.Fatalf("missing segment status %d", code)
	}
}

func TestForeignVideoPollutionChangesSize(t *testing.T) {
	v := testVideo()
	foreign := &media.Video{
		ID:              "attacker-movie",
		Renditions:      []media.Rendition{{Name: "360p", Bandwidth: 999, SegmentBytes: 4 << 10}},
		Segments:        2,
		SegmentDuration: 10,
	}
	f := ForeignVideoPollution(foreign, "360p")
	orig, _ := v.SegmentData("360p", 0)
	fake, ok := f(media.SegmentKey{Video: "bbb", Rendition: "360p", Index: 0}, orig)
	if !ok {
		t.Fatal("foreign pollution should substitute")
	}
	if len(fake) == len(orig) {
		t.Fatal("foreign video should differ in size — that is what gets it caught")
	}
}

func TestSameSizePollutionAllSegments(t *testing.T) {
	f := SameSizePollution(nil)
	orig := make([]byte, 100)
	fake, ok := f(media.SegmentKey{Video: "v", Rendition: "r", Index: 7}, orig)
	if !ok || len(fake) != 100 {
		t.Fatalf("nil selection should pollute everything: %v %d", ok, len(fake))
	}
}

func TestSegmentKeyFromPath(t *testing.T) {
	key, ok := segmentKeyFromPath("/v/my/video/720p/seg00042.ts")
	if !ok || key.Video != "my/video" || key.Rendition != "720p" || key.Index != 42 {
		t.Fatalf("parsed %+v %v", key, ok)
	}
	for _, bad := range []string{"/v/x.ts", "/other/path", "/v/a/b/playlist.m3u8", "/v/seg00001.ts"} {
		if _, ok := segmentKeyFromPath(bad); ok {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestSignalProxySpoofsOrigin(t *testing.T) {
	n := netsim.New(netsim.Config{})
	serverHost := n.MustHost(netip.MustParseAddr("44.1.1.1"))
	proxyHost := n.MustHost(netip.MustParseAddr("13.13.13.13"))
	clientHost := n.MustHost(netip.MustParseAddr("66.24.0.1"))

	keys := auth.NewRegistry(auth.PlanPerTraffic)
	key := keys.Issue("victim.com", []string{"victim.com"})
	srv := signal.NewServer(signal.Config{Keys: keys, RequireAuth: true, Policy: signal.DefaultPolicy()})
	if err := srv.Serve(serverHost, 443); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	proxy := NewSignalProxy(proxyHost, netip.MustParseAddrPort("44.1.1.1:443"), SpoofOrigin("victim.com"))
	if err := proxy.Serve(context.Background(), 443); err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Direct join with the attacker origin: denied by the allowlist.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	direct, err := signal.Dial(ctx, clientHost, netip.MustParseAddrPort("44.1.1.1:443"))
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	_, err = direct.Join(context.Background(), signal.JoinRequest{APIKey: key, Origin: "https://attacker.evil", Video: "v", Rendition: "r"})
	if err == nil {
		t.Fatal("direct cross-domain join should fail")
	}

	// The same join through the spoofing proxy succeeds.
	viaProxy, err := signal.Dial(ctx, clientHost, netip.MustParseAddrPort("13.13.13.13:443"))
	if err != nil {
		t.Fatal(err)
	}
	defer viaProxy.Close()
	w, err := viaProxy.Join(context.Background(), signal.JoinRequest{APIKey: key, Origin: "https://attacker.evil", Video: "v", Rendition: "r"})
	if err != nil {
		t.Fatalf("spoofed join should pass: %v", err)
	}
	if w.PeerID == "" {
		t.Fatal("no peer ID")
	}
	// And requests keep flowing through the proxied session.
	if _, err := viaProxy.GetPeers(context.Background(), 4); err != nil {
		t.Fatalf("proxied session broken: %v", err)
	}
}
