package mitm_test

// MITM-vs-secure-transport regressions: the on-path attacker who could
// rewrite signaling and substitute segment bytes against the deployed
// profiles (the paper's §IV results) gets hard failures — never silent
// acceptance, never a panic — from the authenticated transport, and a
// pinned SDK refuses the downgrade that would re-open the old surface.

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/analyzer"
	"github.com/stealthy-peers/pdnsec/internal/attack"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/mitm"
	"github.com/stealthy-peers/pdnsec/internal/pdnclient"
	"github.com/stealthy-peers/pdnsec/internal/provider"
	"github.com/stealthy-peers/pdnsec/internal/secure"
)

// securePair builds two vouched identities in one swarm, as the
// matcher would after two successful joins.
func securePair(t *testing.T) (cfgA, cfgB secure.ChannelConfig) {
	t.Helper()
	ta, err := secure.NewTransportAuthority()
	if err != nil {
		t.Fatal(err)
	}
	idA, err := secure.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	idB, err := secure.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	const swarm = "bbb/360p"
	vouchA, err := ta.Vouch("p1", swarm, idA.PublicKeyHex())
	if err != nil {
		t.Fatal(err)
	}
	vouchB, err := ta.Vouch("p2", swarm, idB.PublicKeyHex())
	if err != nil {
		t.Fatal(err)
	}
	cfgA = secure.ChannelConfig{
		Identity: idA, PeerID: "p1", SwarmID: swarm,
		Voucher: vouchA, AuthorityKey: ta.PublicKeyHex(),
		ExpectedPeerKey: idB.PublicKeyHex(),
	}
	cfgB = secure.ChannelConfig{
		Identity: idB, PeerID: "p2", SwarmID: swarm,
		Voucher: vouchB, AuthorityKey: ta.PublicKeyHex(),
	}
	return cfgA, cfgB
}

// TestTamperedHandshakeFails: an on-path attacker flipping bytes in the
// handshake flight makes both sides hard-fail — tampering can deny the
// channel but never yield an authenticated one.
func TestTamperedHandshakeFails(t *testing.T) {
	cfgA, cfgB := securePair(t)
	rawA, rawB := net.Pipe()
	defer rawA.Close()
	defer rawB.Close()
	tampered := mitm.NewTamperConn(rawB, nil)
	tampered.Arm(true)

	errc := make(chan error, 1)
	go func() {
		_, err := secure.Client(rawA, cfgA)
		errc <- err
	}()
	_, errB := secure.Server(tampered, cfgB)
	if errB == nil {
		t.Fatal("server accepted a tampered handshake")
	}
	select {
	case errA := <-errc:
		if errA == nil {
			t.Fatal("client completed a handshake the server rejected")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client did not unblock after the server rejected the handshake")
	}
	if tampered.Tampered() == 0 {
		t.Fatal("tamper hook never fired; the test exercised nothing")
	}
}

// TestTamperedRecordsFailClosed: with a clean handshake, flipping bytes
// in the AEAD record stream makes Recv return an error — substituted
// segment bytes cannot pass the channel, and corrupt frames never
// panic the reader.
func TestTamperedRecordsFailClosed(t *testing.T) {
	cfgA, cfgB := securePair(t)
	rawA, rawB := net.Pipe()
	defer rawA.Close()
	defer rawB.Close()
	tampered := mitm.NewTamperConn(rawB, nil)

	type sres struct {
		c   *secure.Conn
		err error
	}
	done := make(chan sres, 1)
	go func() {
		c, err := secure.Client(rawA, cfgA)
		done <- sres{c, err}
	}()
	b, err := secure.Server(tampered, cfgB)
	if err != nil {
		t.Fatalf("clean handshake failed: %v", err)
	}
	a := <-done
	if a.err != nil {
		t.Fatalf("clean handshake failed: %v", a.err)
	}

	// Attack only the established record stream.
	tampered.Arm(true)
	go a.c.Send([]byte("segment bytes the attacker rewrites in flight"))
	if payload, err := b.Recv(); err == nil {
		t.Fatalf("Recv accepted a tampered record: %q", payload)
	}
	if tampered.Tampered() == 0 {
		t.Fatal("tamper hook never fired; the test exercised nothing")
	}
}

// TestDowngradeStripped is the satellite's before/after: a MITM proxy
// strips the secure-transport policy from the welcome. The pinned SDK
// (what the secure profile ships) hard-fails the join; a deployed,
// unpinned SDK accepts the downgrade and keeps playing — which is why
// pinning is part of the profile, not an optional extra.
func TestDowngradeStripped(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	tb, err := analyzer.NewTestbed(ctx, analyzer.TestbedConfig{
		Profile: provider.Secure(),
		Video:   analyzer.SmallVideo("bbb", 4, 8<<10),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	proxyHost, err := tb.NewViewerHost("US")
	if err != nil {
		t.Fatal(err)
	}
	proxy := mitm.NewSignalProxy(proxyHost, tb.Dep.SignalAddr, mitm.StripSecure())
	if err := proxy.Serve(ctx, 8444); err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxyAddr := netip.AddrPortFrom(proxyHost.VisibleAddr(), 8444)

	viaProxy := func(seed int64, pinned bool) (pdnclient.Stats, error) {
		host, err := tb.NewViewerHost("US")
		if err != nil {
			t.Fatal(err)
		}
		cfg := tb.ViewerConfig(host, seed)
		cfg.SignalAddr = proxyAddr
		cfg.SignalAddrs = nil
		cfg.MaxSegments = 4
		cfg.RequireSecureTransport = pinned
		return tb.RunViewer(ctx, cfg)
	}

	if _, err := viaProxy(1, true); err == nil {
		t.Error("pinned SDK accepted a welcome the MITM stripped the secure transport from")
	}
	st, err := viaProxy(2, false)
	if err != nil {
		t.Errorf("unpinned SDK failed under the downgrade (want silent acceptance, the deployed behavior): %v", err)
	}
	if st.SegmentsPlayed != 4 {
		t.Errorf("unpinned SDK played %d/4 segments under the downgrade", st.SegmentsPlayed)
	}
}

// TestSubstitutionBeforeAfter replays the §IV-C segment substitution
// (fake CDN + malicious peer) against one deployed profile and the
// secure profile: the deployed viewer plays attacker bytes, the secure
// viewer plays and caches none.
func TestSubstitutionBeforeAfter(t *testing.T) {
	if testing.Short() {
		t.Skip("two full pollution runs are not a -short test")
	}
	run := func(t *testing.T, prof provider.Profile) (polluted int, pollutedCached int) {
		ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
		defer cancel()
		video := analyzer.SmallVideo("bbb", 6, 8<<10)
		tb, err := analyzer.NewTestbed(ctx, analyzer.TestbedConfig{Profile: prof, Video: video})
		if err != nil {
			t.Fatal(err)
		}
		defer tb.Close()

		fakeHost, err := tb.Net.NewHost(analyzer.FakeCDNIP())
		if err != nil {
			t.Fatal(err)
		}
		malHost, err := tb.NewViewerHost("US")
		if err != nil {
			t.Fatal(err)
		}
		malCfg := tb.ViewerConfig(malHost, 7)
		atk, err := attack.LaunchPollution(ctx, attack.PollutionParams{
			Network:       tb.Net,
			SignalAddr:    tb.Dep.SignalAddr,
			STUNAddr:      tb.Dep.STUNAddr,
			RealCDNBase:   tb.CDNBase,
			FakeCDNHost:   fakeHost,
			MaliciousHost: malHost,
			APIKey:        malCfg.APIKey,
			Origin:        malCfg.Origin,
			Token:         malCfg.Token,
			VideoURL:      malCfg.VideoURL,
			Video:         video.ID,
			Rendition:     "360p",
			Pollute:       mitm.SameSizePollution([]int{3, 4}),
			Segments:      6,
			Insecure:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer atk.Close()

		victimHost, err := tb.NewViewerHost("US")
		if err != nil {
			t.Fatal(err)
		}
		cfg := tb.ViewerConfig(victimHost, 99)
		cfg.MaxSegments = 6
		cfg.OnSegment = func(key media.SegmentKey, data []byte, source string) {
			if !video.Verify(key.Rendition, key.Index, data) {
				polluted++
			}
		}
		victim, err := pdnclient.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := victim.Run(ctx); err != nil {
			t.Fatalf("victim run: %v", err)
		}
		for _, idx := range victim.CachedIndices() {
			if data, ok := victim.CachedSegment(idx); ok && !video.Verify("360p", idx, data) {
				pollutedCached++
			}
		}
		return polluted, pollutedCached
	}

	t.Run("deployed", func(t *testing.T) {
		polluted, _ := run(t, provider.Peer5())
		if polluted == 0 {
			t.Error("deployed profile blocked the substitution; the before/after lost its before")
		}
	})
	t.Run("secure", func(t *testing.T) {
		polluted, cached := run(t, provider.Secure())
		if polluted != 0 {
			t.Errorf("secure viewer played %d substituted segments, want 0", polluted)
		}
		if cached != 0 {
			t.Errorf("secure viewer cached %d substituted segments, want 0", cached)
		}
	})
}
