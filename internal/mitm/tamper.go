package mitm

import (
	"encoding/json"
	"net"
	"sync"
	"sync/atomic"

	"github.com/stealthy-peers/pdnsec/internal/wire"
)

// TamperConn wraps a net.Conn with a byte-mutation hook on reads — the
// on-path attacker against the secure transport's wire image. The hook
// sees ciphertext (handshake frames, AEAD records); flipping any byte
// must make the receiving side hard-fail, never accept or crash. Arm
// gates the hook so a test can let the handshake complete clean and
// attack only the record stream (or vice versa).
type TamperConn struct {
	net.Conn
	mutate func(b []byte)
	armed  atomic.Bool

	mu       sync.Mutex
	tampered int64
}

// NewTamperConn wraps conn; mutate is applied in place to every read
// chunk while armed. A nil mutate flips the first byte of each chunk.
func NewTamperConn(conn net.Conn, mutate func(b []byte)) *TamperConn {
	if mutate == nil {
		mutate = func(b []byte) {
			if len(b) > 0 {
				b[0] ^= 0xff
			}
		}
	}
	return &TamperConn{Conn: conn, mutate: mutate}
}

// Arm switches tampering on or off.
func (t *TamperConn) Arm(on bool) { t.armed.Store(on) }

// Tampered reports how many read chunks were mutated.
func (t *TamperConn) Tampered() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tampered
}

//lint:ignore pdnlint/ctxflow net.Conn interface method; blocking and cancellation belong to the wrapped conn's deadlines and Close
func (t *TamperConn) Read(p []byte) (int, error) {
	n, err := t.Conn.Read(p)
	if n > 0 && t.armed.Load() {
		t.mutate(p[:n])
		t.mu.Lock()
		t.tampered++
		t.mu.Unlock()
	}
	return n, err
}

// StripSecure returns a RewriteFunc modelling the downgrade MITM: it
// rewrites server welcomes to erase the secure-transport policy — no
// voucher, no transport or manifest keys, secure_transport off — the
// way an on-path attacker would try to talk a client back down to the
// deployed plaintext protocol. A pinned client
// (pdnclient.Config.RequireSecureTransport) must hard-fail the join;
// only an unpinned client proceeds, which is exactly the before/after
// the downgrade tests pin.
func StripSecure() RewriteFunc {
	return func(fromClient bool, env wire.Envelope) wire.Envelope {
		if fromClient || env.Type != signalWelcomeType {
			return env
		}
		var welcome map[string]any
		if err := json.Unmarshal(env.Data, &welcome); err != nil {
			return env
		}
		delete(welcome, "voucher")
		if pol, ok := welcome["policy"].(map[string]any); ok {
			delete(pol, "secure_transport")
			delete(pol, "transport_pub_key")
			delete(pol, "manifest_pub_key")
			welcome["policy"] = pol
		}
		raw, err := json.Marshal(welcome)
		if err != nil {
			return env
		}
		env.Data = raw
		return env
	}
}

// signalWelcomeType mirrors signal.MsgWelcome without importing the
// package, as with signalJoinType.
const signalWelcomeType = "welcome"
