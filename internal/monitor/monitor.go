// Package monitor implements the testbed's per-peer resource
// accounting — the stand-in for the paper's Docker Engine stats API.
//
// The paper measured container CPU%, memory, and network I/O per second
// while peers streamed (Fig. 4/5, Table VI). The reproduction cannot
// measure a browser's real CPU, so it uses an explicit cost model fed by
// the work the peer actually performs: bytes decoded for playback,
// bytes encrypted/decrypted by the DTLS transport, bytes hashed for
// integrity metadata, and real transmit/receive counters from the
// simulated NIC. The model's coefficients are calibrated so that the
// paper's *relative* findings reproduce under the paper's workloads:
// a PDN peer costs ~15% more CPU and ~10% more memory than a plain CDN
// viewer (Fig. 4), CPU stays roughly flat as neighbor count grows while
// upload scales (Fig. 5), and IM checking adds ~3 points of CPU and
// memory (Table VI). The coefficients are data, not magic: experiments
// report them and the ablation benches vary them.
package monitor

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
)

// CostModel prices each kind of work in abstract CPU work-units per
// byte, plus the memory footprint model.
type CostModel struct {
	// PlayPerByte is the cost of decoding/rendering one video byte —
	// the baseline every viewer pays.
	PlayPerByte float64
	// EncryptPerByte / DecryptPerByte price DTLS work. Decryption on
	// the hot receive path dominates; encryption of uploads pipelines
	// with idle cores, which keeps CPU roughly flat as uploads grow —
	// matching the paper's Fig. 5 observation.
	EncryptPerByte float64
	DecryptPerByte float64
	// HashPerByte prices integrity-metadata computation (Table VI).
	HashPerByte float64
	// HTTPPerByte prices plain CDN transfer handling.
	HTTPPerByte float64

	// BaseMemBytes is the resident footprint of the bare player.
	BaseMemBytes int64
	// PDNMemBytes is the fixed extra footprint of loading the PDN SDK.
	PDNMemBytes int64
	// PerNeighborMemBytes is the per-connection buffer footprint.
	PerNeighborMemBytes int64
}

// DefaultCostModel returns the calibrated model (see package comment).
func DefaultCostModel() CostModel {
	return CostModel{
		PlayPerByte:         1.0,
		EncryptPerByte:      0.04,
		DecryptPerByte:      0.22,
		HashPerByte:         0.06,
		HTTPPerByte:         0.02,
		BaseMemBytes:        100 << 20, // 100 MiB player baseline
		PDNMemBytes:         4 << 20,   // SDK + bookkeeping
		PerNeighborMemBytes: 512 << 10, // per-connection buffers
	}
}

// Meter accumulates one peer's work. All methods are safe for
// concurrent use; the On* methods are designed to be plugged into
// dtls.Config and the SDK's fetch paths.
type Meter struct {
	model CostModel
	host  *netsim.Host // optional: real NIC counters

	playBytes    atomic.Int64
	encryptBytes atomic.Int64
	decryptBytes atomic.Int64
	hashBytes    atomic.Int64
	httpBytes    atomic.Int64

	cacheBytes atomic.Int64
	neighbors  atomic.Int64
	pdnLoaded  atomic.Bool
}

// NewMeter creates a meter using the given model; host may be nil if
// NIC counters are not needed.
func NewMeter(model CostModel, host *netsim.Host) *Meter {
	return &Meter{model: model, host: host}
}

// OnPlayback records video bytes decoded for playback.
func (m *Meter) OnPlayback(n int) { m.playBytes.Add(int64(n)) }

// OnEncrypt records plaintext bytes encrypted (DTLS send path).
func (m *Meter) OnEncrypt(n int) { m.encryptBytes.Add(int64(n)) }

// OnDecrypt records plaintext bytes decrypted (DTLS receive path).
func (m *Meter) OnDecrypt(n int) { m.decryptBytes.Add(int64(n)) }

// OnHash records bytes hashed for integrity metadata.
func (m *Meter) OnHash(n int) { m.hashBytes.Add(int64(n)) }

// OnHTTP records bytes moved over plain HTTP (CDN path).
func (m *Meter) OnHTTP(n int) { m.httpBytes.Add(int64(n)) }

// SetCacheBytes sets the current segment-cache footprint.
func (m *Meter) SetCacheBytes(n int64) { m.cacheBytes.Store(n) }

// SetNeighbors sets the current P2P connection count.
func (m *Meter) SetNeighbors(n int) { m.neighbors.Store(int64(n)) }

// SetPDNLoaded marks the PDN SDK as active (adds its fixed footprint).
func (m *Meter) SetPDNLoaded(v bool) { m.pdnLoaded.Store(v) }

// Usage is a snapshot of cumulative work and current footprint.
type Usage struct {
	// CPUUnits is cumulative work in model units; rates and ratios are
	// derived by the sampler/experiments.
	CPUUnits float64 `json:"cpu_units"`
	// MemBytes is the modelled resident footprint right now.
	MemBytes int64 `json:"mem_bytes"`
	// UpBytes/DownBytes are real NIC counters (0 without a host).
	UpBytes   int64 `json:"up_bytes"`
	DownBytes int64 `json:"down_bytes"`

	PlayBytes    int64 `json:"play_bytes"`
	EncryptBytes int64 `json:"encrypt_bytes"`
	DecryptBytes int64 `json:"decrypt_bytes"`
	HashBytes    int64 `json:"hash_bytes"`
	HTTPBytes    int64 `json:"http_bytes"`
}

// Snapshot returns the current cumulative usage.
func (m *Meter) Snapshot() Usage {
	u := Usage{
		PlayBytes:    m.playBytes.Load(),
		EncryptBytes: m.encryptBytes.Load(),
		DecryptBytes: m.decryptBytes.Load(),
		HashBytes:    m.hashBytes.Load(),
		HTTPBytes:    m.httpBytes.Load(),
	}
	u.CPUUnits = float64(u.PlayBytes)*m.model.PlayPerByte +
		float64(u.EncryptBytes)*m.model.EncryptPerByte +
		float64(u.DecryptBytes)*m.model.DecryptPerByte +
		float64(u.HashBytes)*m.model.HashPerByte +
		float64(u.HTTPBytes)*m.model.HTTPPerByte
	u.MemBytes = m.model.BaseMemBytes + m.cacheBytes.Load() +
		m.neighbors.Load()*m.model.PerNeighborMemBytes
	if m.pdnLoaded.Load() {
		u.MemBytes += m.model.PDNMemBytes
	}
	if m.host != nil {
		u.UpBytes = m.host.BytesUp()
		u.DownBytes = m.host.BytesDown()
	}
	return u
}

// Sample is one timed observation.
type Sample struct {
	T     time.Time `json:"t"`
	Usage Usage     `json:"usage"`
}

// Sampler periodically snapshots a meter, reproducing the paper's
// "per-second container stats" recording.
type Sampler struct {
	meter    *Meter
	interval time.Duration

	mu       sync.Mutex
	samples  []Sample
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSampler creates a sampler over meter at the given interval.
func NewSampler(meter *Meter, interval time.Duration) *Sampler {
	return &Sampler{
		meter:    meter,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start begins sampling in a goroutine.
func (s *Sampler) Start() {
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				samp := Sample{T: time.Now(), Usage: s.meter.Snapshot()}
				s.mu.Lock()
				// Coarse clocks can hand two ticks the same wall time;
				// keep the series strictly increasing so rate math
				// downstream never divides by a zero interval.
				if n := len(s.samples); n == 0 || samp.T.After(s.samples[n-1].T) {
					s.samples = append(s.samples, samp)
				}
				s.mu.Unlock()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts sampling and waits for the sampler goroutine to exit. It
// is idempotent and safe to call from multiple goroutines.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Samples returns the collected observations.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}
