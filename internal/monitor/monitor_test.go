package monitor

import (
	"net/netip"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/netsim"
)

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter(DefaultCostModel(), nil)
	m.OnPlayback(1000)
	m.OnEncrypt(100)
	m.OnDecrypt(200)
	m.OnHash(300)
	m.OnHTTP(400)
	u := m.Snapshot()
	if u.PlayBytes != 1000 || u.EncryptBytes != 100 || u.DecryptBytes != 200 || u.HashBytes != 300 || u.HTTPBytes != 400 {
		t.Fatalf("counters %+v", u)
	}
	model := DefaultCostModel()
	want := 1000*model.PlayPerByte + 100*model.EncryptPerByte + 200*model.DecryptPerByte +
		300*model.HashPerByte + 400*model.HTTPPerByte
	if u.CPUUnits != want {
		t.Fatalf("CPUUnits = %v, want %v", u.CPUUnits, want)
	}
}

func TestMemoryModel(t *testing.T) {
	model := DefaultCostModel()
	m := NewMeter(model, nil)
	base := m.Snapshot().MemBytes
	if base != model.BaseMemBytes {
		t.Fatalf("base mem %d", base)
	}
	m.SetPDNLoaded(true)
	m.SetCacheBytes(6 << 20)
	m.SetNeighbors(4)
	u := m.Snapshot()
	want := model.BaseMemBytes + model.PDNMemBytes + (6 << 20) + 4*model.PerNeighborMemBytes
	if u.MemBytes != want {
		t.Fatalf("mem = %d, want %d", u.MemBytes, want)
	}
	// PDN peer memory overhead lands in the paper's ballpark (~10%).
	ratio := float64(u.MemBytes) / float64(base)
	if ratio < 1.05 || ratio > 1.20 {
		t.Fatalf("PDN memory overhead ratio %.3f outside [1.05,1.20]", ratio)
	}
}

func TestCPUOverheadCalibration(t *testing.T) {
	// Reproduce the Fig. 4 workload shape: a viewer plays X bytes; a PDN
	// peer additionally decrypts X/2 (P2P download) and encrypts X/2
	// (upload). The calibrated model should land near +15% CPU.
	model := DefaultCostModel()
	const x = 100 << 20

	plain := NewMeter(model, nil)
	plain.OnPlayback(x)
	plain.OnHTTP(x)

	pdn := NewMeter(model, nil)
	pdn.OnPlayback(x)
	pdn.OnHTTP(x / 2)
	pdn.OnDecrypt(x / 2)
	pdn.OnEncrypt(x / 2)

	ratio := pdn.Snapshot().CPUUnits / plain.Snapshot().CPUUnits
	if ratio < 1.10 || ratio > 1.20 {
		t.Fatalf("PDN CPU overhead ratio %.3f outside [1.10,1.20]", ratio)
	}
}

func TestCPURoughlyFlatWithMoreNeighbors(t *testing.T) {
	// Fig. 5: upload grows with neighbors but CPU "does not have
	// significant differences". With 3 neighbors upload triples; CPU
	// should grow by only a few percent.
	model := DefaultCostModel()
	const x = 100 << 20
	cpuWithUpload := func(up int64) float64 {
		m := NewMeter(model, nil)
		m.OnPlayback(x)
		m.OnHTTP(x / 2)
		m.OnDecrypt(x / 2)
		m.OnEncrypt(int(up))
		return m.Snapshot().CPUUnits
	}
	one := cpuWithUpload(x / 2)
	three := cpuWithUpload(3 * x / 2)
	growth := three / one
	if growth > 1.05 {
		t.Fatalf("CPU grew %.3fx with 3x upload; model should keep it roughly flat", growth)
	}
}

func TestNICCounters(t *testing.T) {
	n := netsim.New(netsim.Config{})
	h := n.MustHost(netip.MustParseAddr("10.0.0.1"))
	m := NewMeter(DefaultCostModel(), h)
	pc, err := h.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	pc.WriteToAddrPort(make([]byte, 500), netip.MustParseAddrPort("10.0.0.2:1"))
	u := m.Snapshot()
	if u.UpBytes != 500 {
		t.Fatalf("UpBytes = %d", u.UpBytes)
	}
}

func TestSampler(t *testing.T) {
	m := NewMeter(DefaultCostModel(), nil)
	s := NewSampler(m, 5*time.Millisecond)
	s.Start()
	m.OnPlayback(1)
	time.Sleep(30 * time.Millisecond)
	s.Stop()
	samples := s.Samples()
	if len(samples) < 2 {
		t.Fatalf("sampler collected %d samples", len(samples))
	}
	// Stop is idempotent.
	s.Stop()
	// Samples returns a copy.
	samples[0].Usage.PlayBytes = 999
	if s.Samples()[0].Usage.PlayBytes == 999 {
		t.Fatal("Samples must return a copy")
	}
}

func TestConcurrentMeterUse(t *testing.T) {
	m := NewMeter(DefaultCostModel(), nil)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				m.OnPlayback(1)
				m.OnEncrypt(1)
				m.Snapshot()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	u := m.Snapshot()
	if u.PlayBytes != 4000 || u.EncryptBytes != 4000 {
		t.Fatalf("lost updates: %+v", u)
	}
}
