package monitor

import (
	"sync"
	"testing"
	"time"
)

// TestSamplerMonotonicUnderLoad hammers the meter from several
// goroutines while a fast sampler records, then checks the series is
// strictly increasing in time — no duplicate and no zero-interval
// samples, which would break rate derivation downstream.
func TestSamplerMonotonicUnderLoad(t *testing.T) {
	m := NewMeter(DefaultCostModel(), nil)
	s := NewSampler(m, time.Millisecond)
	s.Start()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				m.OnPlayback(1)
				m.OnDecrypt(1)
				m.SetNeighbors(j % 5)
			}
		}()
	}
	wg.Wait()
	time.Sleep(20 * time.Millisecond)
	s.Stop()

	samples := s.Samples()
	if len(samples) == 0 {
		t.Fatal("sampler collected no samples")
	}
	for i := 1; i < len(samples); i++ {
		if !samples[i].T.After(samples[i-1].T) {
			t.Fatalf("sample %d at %v not after sample %d at %v",
				i, samples[i].T, i-1, samples[i-1].T)
		}
	}
	last := samples[len(samples)-1].Usage
	if last.PlayBytes != 16000 {
		t.Fatalf("final sample PlayBytes = %d, want 16000", last.PlayBytes)
	}
}

// TestManySamplersConcurrently runs a sampler per peer the way the
// testbed does, all at a 1ms interval, and checks every series
// independently stays ordered and duplicate-free.
func TestManySamplersConcurrently(t *testing.T) {
	const peers = 6
	meters := make([]*Meter, peers)
	samplers := make([]*Sampler, peers)
	for i := range meters {
		meters[i] = NewMeter(DefaultCostModel(), nil)
		samplers[i] = NewSampler(meters[i], time.Millisecond)
		samplers[i].Start()
	}

	var wg sync.WaitGroup
	for i := range meters {
		wg.Add(1)
		go func(m *Meter) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.OnPlayback(10)
				m.OnHTTP(3)
			}
		}(meters[i])
	}
	wg.Wait()
	time.Sleep(15 * time.Millisecond)

	for i, s := range samplers {
		s.Stop()
		samples := s.Samples()
		if len(samples) == 0 {
			t.Fatalf("sampler %d collected no samples", i)
		}
		seen := make(map[int64]bool, len(samples))
		for j, samp := range samples {
			ns := samp.T.UnixNano()
			if seen[ns] {
				t.Fatalf("sampler %d: duplicate timestamp %v at index %d", i, samp.T, j)
			}
			seen[ns] = true
			if j > 0 && !samp.T.After(samples[j-1].T) {
				t.Fatalf("sampler %d: non-increasing timestamp at index %d", i, j)
			}
		}
	}
}

// TestSamplerStopConcurrent checks Stop is safe to call from multiple
// goroutines at once and that Samples can race with Stop.
func TestSamplerStopConcurrent(t *testing.T) {
	m := NewMeter(DefaultCostModel(), nil)
	s := NewSampler(m, time.Millisecond)
	s.Start()
	time.Sleep(5 * time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Stop()
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Samples()
		}()
	}
	wg.Wait()
	if got := s.Samples(); len(got) != len(s.Samples()) {
		t.Fatal("samples changed after Stop returned")
	}
}
