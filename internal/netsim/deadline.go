package netsim

import (
	"sync"
	"time"
)

// deadline is a cancellable timer gating blocking I/O, modelled on the
// net package's internal pipeDeadline.
type deadline struct {
	mu     sync.Mutex
	timer  *time.Timer
	cancel chan struct{} // closed when the deadline passes
}

func makeDeadline() deadline {
	return deadline{cancel: make(chan struct{})}
}

// set arms the deadline at t; the zero time disarms it.
func (d *deadline) set(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()

	if d.timer != nil && !d.timer.Stop() {
		//lint:ignore pdnlint/mutexspan the AfterFunc callback only closes cancel and never takes d.mu, so this receive is prompt (stdlib pipeDeadline pattern)
		<-d.cancel // wait for the timer callback to finish and close cancel
	}
	d.timer = nil

	// Determine whether the deadline is in the past.
	closed := isClosedChan(d.cancel)

	if t.IsZero() {
		if closed {
			d.cancel = make(chan struct{})
		}
		return
	}

	//lint:ignore pdnlint/detrand deadlines are absolute wall times armed via time.AfterFunc, which runs on the wall clock; an injected clock cannot drive it
	if dur := time.Until(t); dur > 0 {
		if closed {
			d.cancel = make(chan struct{})
		}
		cancel := d.cancel
		d.timer = time.AfterFunc(dur, func() { close(cancel) })
		return
	}

	// Deadline already passed.
	if !closed {
		close(d.cancel)
	}
}

// wait returns a channel closed when the deadline passes.
func (d *deadline) wait() chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cancel
}

func isClosedChan(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}
