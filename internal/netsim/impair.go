package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the programmable impairment engine: per-link and
// per-host overrides for loss, latency, jitter, partitions, host
// crashes, and stream-level corruption/truncation. The engine exists so
// chaos scenarios (internal/chaos) can reproduce the failure modes the
// paper's attacks hinge on — peers vanishing mid-segment, polluted
// bytes in flight, a browned-out CDN — while the zero state stays an
// exact no-op: until the first impairment is installed every hook is a
// single atomic load, so the parity gates (Tables I–IV byte-identity)
// hold with the engine present but disabled.
//
// All randomness (per-link loss decisions, jitter draws, corruption
// positions) comes from one seeded source derived from Config.Seed, so
// a run is reproducible given the same seed and traffic order.

// impairSeedMix decorrelates the impairment RNG stream from the global
// UDP-loss stream that shares Config.Seed.
const impairSeedMix int64 = 0x5e3779b97f4a7c15

// linkKey identifies a directed host pair (sender → receiver) by the
// hosts' own addresses (private addresses for NATed hosts).
type linkKey struct{ from, to netip.Addr }

// corruptRule mangles stream chunks sent by one host.
type corruptRule struct {
	prob     float64
	truncate bool
}

// impairments holds all installed overrides. The zero value (no maps,
// active=false) impairs nothing.
type impairments struct {
	active atomic.Bool // set once the first override is installed

	mu          sync.Mutex
	rng         *rand.Rand
	linkLoss    map[linkKey]float64
	linkLatency map[linkKey]time.Duration
	linkJitter  map[linkKey]time.Duration
	blocked     map[linkKey]bool
	isolated    map[netip.Addr]bool
	corrupt     map[netip.Addr]corruptRule
}

// ensureLocked lazily allocates the override maps. Caller holds imp.mu.
func (imp *impairments) ensureLocked(seed int64) {
	if imp.rng == nil {
		imp.rng = rand.New(rand.NewSource(seed ^ impairSeedMix))
		imp.linkLoss = make(map[linkKey]float64)
		imp.linkLatency = make(map[linkKey]time.Duration)
		imp.linkJitter = make(map[linkKey]time.Duration)
		imp.blocked = make(map[linkKey]bool)
		imp.isolated = make(map[netip.Addr]bool)
		imp.corrupt = make(map[netip.Addr]corruptRule)
	}
}

// install runs fn with the engine locked and marks the engine active.
func (n *Network) install(fn func(imp *impairments)) {
	imp := &n.imp
	imp.mu.Lock()
	imp.ensureLocked(n.cfg.Seed)
	fn(imp)
	imp.mu.Unlock()
	imp.active.Store(true)
}

// SetLinkLoss installs a loss probability for datagrams sent from one
// host address to another, overriding the network-wide LossProb for
// that direction. p must be in [0,1]; p=1 drops everything, p=0
// restores reliability for the link regardless of the global setting.
func (n *Network) SetLinkLoss(from, to netip.Addr, p float64) {
	if !(p >= 0 && p <= 1) { // also rejects NaN
		panic(fmt.Sprintf("netsim: SetLinkLoss probability %v outside [0,1]", p))
	}
	n.install(func(imp *impairments) { imp.linkLoss[linkKey{from, to}] = p })
}

// SetLinkLatency adds extra one-way latency to traffic sent from one
// host address to another, on top of the hosts' access latencies.
func (n *Network) SetLinkLatency(from, to netip.Addr, d time.Duration) {
	n.install(func(imp *impairments) { imp.linkLatency[linkKey{from, to}] = d })
}

// SetLinkJitter adds a uniformly-drawn extra delay in [0,max) to each
// transmission from one host address to another. Draws come from the
// engine's seeded RNG.
func (n *Network) SetLinkJitter(from, to netip.Addr, max time.Duration) {
	if max < 0 {
		panic(fmt.Sprintf("netsim: SetLinkJitter negative bound %v", max))
	}
	n.install(func(imp *impairments) { imp.linkJitter[linkKey{from, to}] = max })
}

// ClearLink removes all loss/latency/jitter overrides for the directed
// pair.
func (n *Network) ClearLink(from, to netip.Addr) {
	n.install(func(imp *impairments) {
		key := linkKey{from, to}
		delete(imp.linkLoss, key)
		delete(imp.linkLatency, key)
		delete(imp.linkJitter, key)
	})
}

// Partition blocks all traffic between two host addresses, in both
// directions, and severs established streams between them. New dials
// fail with ErrUnreachable and datagrams are silently dropped, exactly
// as a routing blackhole behaves; severing stands in for the
// keepalive/RST death a real long partition inflicts on TCP.
func (n *Network) Partition(a, b netip.Addr) {
	n.install(func(imp *impairments) {
		imp.blocked[linkKey{a, b}] = true
		imp.blocked[linkKey{b, a}] = true
	})
	n.severConns(func(x, y *Host) bool {
		return (x.ip == a && y.ip == b) || (x.ip == b && y.ip == a)
	})
}

// Heal removes a Partition between two host addresses.
func (n *Network) Heal(a, b netip.Addr) {
	n.install(func(imp *impairments) {
		delete(imp.blocked, linkKey{a, b})
		delete(imp.blocked, linkKey{b, a})
	})
}

// Isolate cuts one host address off from every other host (the "signal
// server partition" chaos primitive) and severs its established
// streams. Traffic between other hosts is unaffected.
func (n *Network) Isolate(ip netip.Addr) {
	n.install(func(imp *impairments) { imp.isolated[ip] = true })
	n.severConns(func(x, y *Host) bool { return x.ip == ip || y.ip == ip })
}

// Rejoin reverses Isolate.
func (n *Network) Rejoin(ip netip.Addr) {
	n.install(func(imp *impairments) { delete(imp.isolated, ip) })
}

// CorruptStreams makes each stream chunk sent by the given host address
// be mangled with the given probability: a corruption flips bytes at
// seeded positions, a truncation cuts the chunk short. This models the
// paper's in-flight degradation cases without touching the sender's
// own state. p must be in [0,1].
func (n *Network) CorruptStreams(from netip.Addr, p float64, truncate bool) {
	if !(p >= 0 && p <= 1) {
		panic(fmt.Sprintf("netsim: CorruptStreams probability %v outside [0,1]", p))
	}
	n.install(func(imp *impairments) { imp.corrupt[from] = corruptRule{prob: p, truncate: truncate} })
}

// ClearCorrupt removes a CorruptStreams rule.
func (n *Network) ClearCorrupt(from netip.Addr) {
	n.install(func(imp *impairments) { delete(imp.corrupt, from) })
}

// blockedPath reports whether traffic from one address to the other is
// cut by a partition or isolation.
func (n *Network) blockedPath(from, to netip.Addr) bool {
	imp := &n.imp
	if !imp.active.Load() {
		return false
	}
	imp.mu.Lock()
	defer imp.mu.Unlock()
	if imp.blocked == nil {
		return false
	}
	return imp.blocked[linkKey{from, to}] || imp.isolated[from] || imp.isolated[to]
}

// dropImpaired decides link-override loss for a datagram. The second
// return reports whether an override exists (otherwise the caller falls
// back to the global LossProb).
func (n *Network) dropImpaired(from, to netip.Addr) (drop, overridden bool) {
	imp := &n.imp
	if !imp.active.Load() {
		return false, false
	}
	imp.mu.Lock()
	defer imp.mu.Unlock()
	if imp.linkLoss == nil {
		return false, false
	}
	p, ok := imp.linkLoss[linkKey{from, to}]
	if !ok {
		return false, false
	}
	return imp.rng.Float64() < p, true
}

// extraLatency returns the installed fixed-plus-jitter delay for a
// directed pair.
func (n *Network) extraLatency(from, to netip.Addr) time.Duration {
	imp := &n.imp
	if !imp.active.Load() {
		return 0
	}
	imp.mu.Lock()
	defer imp.mu.Unlock()
	if imp.linkLatency == nil {
		return 0
	}
	key := linkKey{from, to}
	d := imp.linkLatency[key]
	if j := imp.linkJitter[key]; j > 0 {
		d += time.Duration(imp.rng.Int63n(int64(j)))
	}
	return d
}

// mangleStream applies the sender's corruption rule to a chunk the
// caller owns (chunks are already copied before transmission). It
// returns the possibly-mutated chunk.
func (n *Network) mangleStream(from netip.Addr, chunk []byte) []byte {
	imp := &n.imp
	if !imp.active.Load() || len(chunk) == 0 {
		return chunk
	}
	imp.mu.Lock()
	defer imp.mu.Unlock()
	if imp.corrupt == nil {
		return chunk
	}
	rule, ok := imp.corrupt[from]
	if !ok || imp.rng.Float64() >= rule.prob {
		return chunk
	}
	if rule.truncate {
		// Keep at least one byte so stream readers never see a spurious
		// zero-length Read.
		return chunk[:1+imp.rng.Intn(len(chunk))]
	}
	// Flip a handful of bytes at seeded positions.
	flips := 1 + imp.rng.Intn(4)
	for i := 0; i < flips; i++ {
		pos := imp.rng.Intn(len(chunk))
		chunk[pos] ^= byte(1 + imp.rng.Intn(255))
	}
	return chunk
}

// severConns closes every established stream whose two endpoints match
// the predicate. Connections are collected under each host's lock and
// closed outside it (Conn.Close re-enters host locks).
func (n *Network) severConns(match func(a, b *Host) bool) {
	n.mu.RLock()
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	n.mu.RUnlock()
	var doomed []*Conn
	for _, h := range hosts {
		h.mu.Lock()
		for c := range h.conns {
			if match(c.host, c.peerHost) {
				doomed = append(doomed, c)
			}
		}
		h.mu.Unlock()
	}
	for _, c := range doomed {
		c.Close()
	}
}

// Close crashes the host: every listener, socket, and established
// stream dies immediately and all future Listen/ListenPacket/Dial calls
// on it fail. Remote peers observe connection resets, exactly what the
// paper's churn measurements see when a viewer closes the tab. Close is
// idempotent; the address stays registered (a crashed machine does not
// free its IP).
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	listeners := make([]*Listener, 0, len(h.listeners))
	for _, l := range h.listeners {
		if l != nil {
			listeners = append(listeners, l)
		}
	}
	socks := make([]*packetConn, 0, len(h.udpSocks))
	for _, pc := range h.udpSocks {
		socks = append(socks, pc)
	}
	conns := make([]*Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()

	for _, l := range listeners {
		l.Close()
	}
	for _, pc := range socks {
		pc.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// Closed reports whether the host has been crashed via Close.
func (h *Host) Closed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// registerConn tracks an established stream endpoint for crash/partition
// severing.
func (h *Host) registerConn(c *Conn) {
	h.mu.Lock()
	if h.conns == nil {
		h.conns = make(map[*Conn]struct{})
	}
	h.conns[c] = struct{}{}
	h.mu.Unlock()
}

// unregisterConn drops a closed stream endpoint.
func (h *Host) unregisterConn(c *Conn) {
	h.mu.Lock()
	delete(h.conns, c)
	h.mu.Unlock()
}
