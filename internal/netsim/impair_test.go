package netsim

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

// dialPair establishes a stream between two fresh hosts and returns
// both ends.
func dialPair(t *testing.T, n *Network, aIP, bIP string) (*Conn, *Conn) {
	t.Helper()
	a := n.MustHost(mustAddr(aIP))
	b := n.MustHost(mustAddr(bIP))
	l, err := b.Listen(7000)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c.(*Conn)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ca, err := a.Dial(ctx, mustAP(bIP+":7000"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case cb := <-accepted:
		return ca, cb
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
		return nil, nil
	}
}

func TestHostCloseKillsEverything(t *testing.T) {
	n := New(Config{})
	ca, cb := dialPair(t, n, "10.0.0.1", "10.0.0.2")
	a := n.Host(mustAddr("10.0.0.1"))

	pc, err := a.ListenPacket(9000)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if !a.Closed() {
		t.Fatal("host should report closed")
	}

	// Established streams die on both sides.
	if _, err := ca.Write([]byte("x")); err == nil {
		t.Fatal("write on crashed host should fail")
	}
	if _, err := cb.Read(make([]byte, 4)); !errors.Is(err, io.EOF) {
		t.Fatalf("remote read = %v, want EOF", err)
	}
	// Sockets die.
	if _, _, err := pc.ReadFromAddrPort(make([]byte, 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("packet read = %v, want ErrClosed", err)
	}
	// New activity on the crashed host fails.
	if _, err := a.Listen(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Listen = %v, want ErrClosed", err)
	}
	if _, err := a.ListenPacket(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("ListenPacket = %v, want ErrClosed", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := a.Dial(ctx, mustAP("10.0.0.2:7000")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Dial = %v, want ErrClosed", err)
	}
	// Dialing the crashed host is refused (its listeners are gone).
	c := n.MustHost(mustAddr("10.0.0.3"))
	if _, err := c.Dial(ctx, mustAP("10.0.0.1:7000")); err == nil {
		t.Fatal("dialing a crashed host should fail")
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSeversAndBlocks(t *testing.T) {
	n := New(Config{})
	ca, cb := dialPair(t, n, "10.0.0.1", "10.0.0.2")

	n.Partition(mustAddr("10.0.0.1"), mustAddr("10.0.0.2"))

	// Established stream was severed.
	if _, err := cb.Read(make([]byte, 4)); !errors.Is(err, io.EOF) {
		t.Fatalf("read across partition = %v, want EOF", err)
	}
	_ = ca
	// New dials fail.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	a := n.Host(mustAddr("10.0.0.1"))
	if _, err := a.Dial(ctx, mustAP("10.0.0.2:7000")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dial across partition = %v, want ErrUnreachable", err)
	}
	// UDP is silently dropped.
	pa, _ := a.ListenPacket(9000)
	b := n.Host(mustAddr("10.0.0.2"))
	pb, _ := b.ListenPacket(9000)
	if _, err := pa.WriteToAddrPort([]byte("x"), mustAP("10.0.0.2:9000")); err != nil {
		t.Fatal(err)
	}
	pb.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := pb.ReadFromAddrPort(make([]byte, 4)); err == nil {
		t.Fatal("datagram should not cross a partition")
	}

	// Heal restores connectivity.
	n.Heal(mustAddr("10.0.0.1"), mustAddr("10.0.0.2"))
	l, err := b.Listen(7001)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if c, err := l.Accept(); err == nil {
			c.Close()
		}
	}()
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if _, err := a.Dial(hctx, mustAP("10.0.0.2:7001")); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

func TestIsolateCutsOneHostOnly(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	c := n.MustHost(mustAddr("10.0.0.3"))
	lb, err := b.Listen(7000)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := lb.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	defer lb.Close()

	n.Isolate(a.Addr())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := a.Dial(ctx, mustAP("10.0.0.2:7000")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("isolated dial = %v, want ErrUnreachable", err)
	}
	// Third parties are unaffected.
	if _, err := c.Dial(ctx, mustAP("10.0.0.2:7000")); err != nil {
		t.Fatalf("bystander dial: %v", err)
	}
	n.Rejoin(a.Addr())
	if _, err := a.Dial(ctx, mustAP("10.0.0.2:7000")); err != nil {
		t.Fatalf("dial after rejoin: %v", err)
	}
}

func TestLinkLossOverridesGlobal(t *testing.T) {
	// Global loss near-total, but the override restores the a→b link.
	n := New(Config{LossProb: 0.999999, Seed: 7})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	n.SetLinkLoss(a.Addr(), b.Addr(), 0)
	pa, _ := a.ListenPacket(9000)
	pb, _ := b.ListenPacket(9000)
	if _, err := pa.WriteToAddrPort([]byte("x"), mustAP("10.0.0.2:9000")); err != nil {
		t.Fatal(err)
	}
	pb.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := pb.ReadFromAddrPort(make([]byte, 4)); err != nil {
		t.Fatalf("override to 0 loss should deliver: %v", err)
	}
	// Reverse direction keeps the global near-total loss.
	if _, err := pb.WriteToAddrPort([]byte("y"), mustAP("10.0.0.1:9000")); err != nil {
		t.Fatal(err)
	}
	pa.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := pa.ReadFromAddrPort(make([]byte, 4)); err == nil {
		t.Fatal("reverse direction should still be lossy")
	}
}

func TestLinkLatencyAndJitter(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	n.SetLinkLatency(a.Addr(), b.Addr(), 30*time.Millisecond)
	n.SetLinkJitter(a.Addr(), b.Addr(), 10*time.Millisecond)
	pa, _ := a.ListenPacket(9000)
	pb, _ := b.ListenPacket(9000)
	start := time.Now()
	if _, err := pa.WriteToAddrPort([]byte("x"), mustAP("10.0.0.2:9000")); err != nil {
		t.Fatal(err)
	}
	pb.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := pb.ReadFromAddrPort(make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("link latency not applied: delivered in %v", d)
	}
	// ClearLink removes the override.
	n.ClearLink(a.Addr(), b.Addr())
	start = time.Now()
	pa.WriteToAddrPort([]byte("y"), mustAP("10.0.0.2:9000"))
	pb.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := pb.ReadFromAddrPort(make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 25*time.Millisecond {
		t.Fatalf("latency override not cleared: delivered in %v", d)
	}
}

func TestCorruptStreamsFlipsBytes(t *testing.T) {
	n := New(Config{Seed: 3})
	ca, cb := dialPair(t, n, "10.0.0.1", "10.0.0.2")
	n.CorruptStreams(mustAddr("10.0.0.1"), 1, false)

	payload := bytes.Repeat([]byte("segment-data-"), 64)
	go ca.Write(payload)
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(cb, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("corruption rule did not mutate the chunk")
	}
	if len(got) != len(payload) {
		t.Fatalf("corruption changed length: %d != %d", len(got), len(payload))
	}

	// ClearCorrupt restores clean delivery.
	n.ClearCorrupt(mustAddr("10.0.0.1"))
	go ca.Write(payload)
	if _, err := io.ReadFull(cb, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("chunk corrupted after ClearCorrupt")
	}
}

func TestCorruptStreamsTruncates(t *testing.T) {
	n := New(Config{Seed: 5})
	ca, cb := dialPair(t, n, "10.0.0.1", "10.0.0.2")
	n.CorruptStreams(mustAddr("10.0.0.1"), 1, true)

	payload := bytes.Repeat([]byte("x"), 4096)
	done := make(chan int, 1)
	go func() {
		n, _ := ca.Write(payload)
		done <- n
	}()
	buf := make([]byte, 8192)
	cb.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, err := cb.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Fatal("truncation must keep at least one byte")
	}
	// The sender still believes it wrote everything (the network ate the
	// tail), matching how a crashed receiver looks to a TCP sender.
	if sent := <-done; sent != len(payload) {
		t.Fatalf("sender saw %d, want %d", sent, len(payload))
	}
	// With the seeded RNG and prob 1 the first chunk is truncated; it
	// must be strictly shorter than the payload or this test proves
	// nothing (1+Intn(n) can return n, but not for this seed).
	if got >= len(payload) {
		t.Fatalf("chunk not truncated: got %d bytes", got)
	}
}

func TestImpairmentValidation(t *testing.T) {
	n := New(Config{})
	for _, fn := range []func(){
		func() { n.SetLinkLoss(mustAddr("10.0.0.1"), mustAddr("10.0.0.2"), 1.5) },
		func() { n.SetLinkLoss(mustAddr("10.0.0.1"), mustAddr("10.0.0.2"), -1) },
		func() { n.CorruptStreams(mustAddr("10.0.0.1"), 2, false) },
		func() { n.SetLinkJitter(mustAddr("10.0.0.1"), mustAddr("10.0.0.2"), -time.Second) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid impairment parameter")
				}
			}()
			fn()
		}()
	}
}
