package netsim

import (
	"fmt"
	"net/netip"
	"sync"
)

// NATType selects the mapping and filtering behaviour of a simulated NAT
// box. The distinction matters for the paper's IP-leak analysis: peers
// behind well-behaved (full-cone) NATs leak their NAT's public address
// via STUN, whereas failed traversal through symmetric NATs is what
// produces the private/shared-address "bogon" IPs the paper harvested.
type NATType int

// Supported NAT behaviours.
const (
	// NATFullCone uses endpoint-independent mapping and no inbound
	// filtering: once an internal endpoint maps, anyone may send to it.
	NATFullCone NATType = iota + 1
	// NATAddressRestricted uses endpoint-independent mapping but only
	// accepts inbound traffic from addresses the internal host has
	// contacted.
	NATAddressRestricted
	// NATSymmetric allocates a distinct external port per destination
	// and only accepts traffic from that exact destination. STUN-derived
	// reflexive candidates are useless against it, so direct traversal
	// between two symmetric NATs fails.
	NATSymmetric
)

// String names the NAT type.
func (t NATType) String() string {
	switch t {
	case NATFullCone:
		return "full-cone"
	case NATAddressRestricted:
		return "address-restricted"
	case NATSymmetric:
		return "symmetric"
	default:
		return fmt.Sprintf("NATType(%d)", int(t))
	}
}

type natMapKey struct {
	internal netip.AddrPort
	dst      netip.AddrPort // zero except for symmetric NATs
}

type natMapping struct {
	internal netip.AddrPort
	extPort  uint16
	// contacted records destinations the internal host has sent to,
	// enforcing address-restricted filtering.
	contacted map[netip.Addr]bool
	// boundDst is the single permitted remote for symmetric mappings.
	boundDst netip.AddrPort
}

// NAT is a simulated network address translator with one external
// address fronting any number of private hosts.
type NAT struct {
	net   *Network
	extIP netip.Addr
	typ   NATType

	mu       sync.Mutex
	byKey    map[natMapKey]*natMapping
	byPort   map[uint16]*natMapping
	forwards map[uint16]netip.AddrPort // explicit TCP port-forwards
	nextPort uint16
}

// NewNAT registers a NAT box with the given external address.
func (n *Network) NewNAT(extIP netip.Addr, typ NATType) (*NAT, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[extIP]; ok {
		return nil, fmt.Errorf("netsim: address %v belongs to a host", extIP)
	}
	if _, ok := n.nats[extIP]; ok {
		return nil, fmt.Errorf("netsim: NAT %v already exists", extIP)
	}
	nat := &NAT{
		net:      n,
		extIP:    extIP,
		typ:      typ,
		byKey:    make(map[natMapKey]*natMapping),
		byPort:   make(map[uint16]*natMapping),
		forwards: make(map[uint16]netip.AddrPort),
		nextPort: 40000,
	}
	n.nats[extIP] = nat
	return nat, nil
}

// MustNAT is NewNAT that panics on error.
func (n *Network) MustNAT(extIP netip.Addr, typ NATType) *NAT {
	nat, err := n.NewNAT(extIP, typ)
	if err != nil {
		panic(err)
	}
	return nat
}

// ExternalAddr returns the NAT's public address.
func (nat *NAT) ExternalAddr() netip.Addr { return nat.extIP }

// Type returns the NAT behaviour.
func (nat *NAT) Type() NATType { return nat.typ }

// NewHost registers a private host behind this NAT. Host addresses are
// unique network-wide (even private ones): netsim routes by address, so
// allocate private addresses from a shared pool (geoip.AllocPrivate)
// rather than reusing the same RFC 1918 address behind different NATs.
func (nat *NAT) NewHost(privIP netip.Addr) (*Host, error) {
	nat.net.mu.Lock()
	defer nat.net.mu.Unlock()
	if _, ok := nat.net.hosts[privIP]; ok {
		return nil, fmt.Errorf("netsim: host %v already exists", privIP)
	}
	h := newHost(nat.net, privIP, nat)
	nat.net.hosts[privIP] = h
	return h, nil
}

// MustHost is NewHost that panics on error.
func (nat *NAT) MustHost(privIP netip.Addr) *Host {
	h, err := nat.NewHost(privIP)
	if err != nil {
		panic(err)
	}
	return h
}

// Forward installs an explicit inbound TCP port-forward from the NAT's
// external port to an internal address, for servers hosted behind NAT.
func (nat *NAT) Forward(extPort uint16, internal netip.AddrPort) {
	nat.mu.Lock()
	defer nat.mu.Unlock()
	nat.forwards[extPort] = internal
}

func (nat *NAT) forwardLookup(extPort uint16) (netip.AddrPort, bool) {
	nat.mu.Lock()
	defer nat.mu.Unlock()
	ap, ok := nat.forwards[extPort]
	return ap, ok
}

// mapOutbound returns the external address visible for a packet from the
// internal endpoint to dst, creating a mapping if needed.
func (nat *NAT) mapOutbound(internal, dst netip.AddrPort, _ Proto) netip.AddrPort {
	key := natMapKey{internal: internal}
	if nat.typ == NATSymmetric {
		key.dst = dst
	}
	nat.mu.Lock()
	defer nat.mu.Unlock()
	m, ok := nat.byKey[key]
	if !ok {
		port := nat.allocPortLocked()
		m = &natMapping{
			internal:  internal,
			extPort:   port,
			contacted: make(map[netip.Addr]bool),
			boundDst:  key.dst,
		}
		nat.byKey[key] = m
		nat.byPort[port] = m
	}
	m.contacted[dst.Addr()] = true
	return netip.AddrPortFrom(nat.extIP, m.extPort)
}

// translateInbound resolves a packet arriving at the NAT's external port
// to the internal endpoint, applying the type's filtering rules.
func (nat *NAT) translateInbound(from netip.AddrPort, extPort uint16, _ Proto) (netip.AddrPort, bool) {
	nat.mu.Lock()
	defer nat.mu.Unlock()
	m, ok := nat.byPort[extPort]
	if !ok {
		return netip.AddrPort{}, false
	}
	switch nat.typ {
	case NATFullCone:
		return m.internal, true
	case NATAddressRestricted:
		if m.contacted[from.Addr()] {
			return m.internal, true
		}
		return netip.AddrPort{}, false
	case NATSymmetric:
		if m.boundDst == from {
			return m.internal, true
		}
		return netip.AddrPort{}, false
	default:
		return netip.AddrPort{}, false
	}
}

func (nat *NAT) allocPortLocked() uint16 {
	for {
		p := nat.nextPort
		nat.nextPort++
		if nat.nextPort == 0 {
			nat.nextPort = 40000
		}
		if _, used := nat.byPort[p]; !used {
			if _, fwd := nat.forwards[p]; !fwd {
				return p
			}
		}
	}
}
