// Package netsim implements the virtual Internet that all pdnsec
// experiments run on: an in-memory network of hosts with routable
// synthetic addresses, optional NAT boxes between them, TCP-like streams
// (net.Conn / net.Listener, so net/http servers run unmodified), UDP-like
// datagrams (net.PacketConn, carrying the plaintext STUN traffic the
// paper's IP-leak analysis observes), per-host latency and bandwidth
// shaping, byte accounting, and packet-capture taps.
//
// The paper ran peers as Docker containers on a shared bridge and captured
// docker0 with tcpdump; netsim reproduces that observability — every
// datagram and stream chunk can be tapped at the sending and receiving
// host with post-NAT source addresses, which is exactly what a packet
// capture at the receiver would show.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// Common errors returned by the simulated network.
var (
	ErrRefused     = errors.New("netsim: connection refused")
	ErrUnreachable = errors.New("netsim: host unreachable")
	ErrClosed      = errors.New("netsim: use of closed connection")
	ErrPortInUse   = errors.New("netsim: port already in use")
)

// Proto identifies the transport of a captured packet.
type Proto int

// Transport protocols observable in captures.
const (
	ProtoUDP Proto = iota + 1
	ProtoTCP
)

// String returns the conventional lowercase protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoUDP:
		return "udp"
	case ProtoTCP:
		return "tcp"
	default:
		return fmt.Sprintf("Proto(%d)", int(p))
	}
}

// Direction tells whether a captured packet was sent or received by the
// tapped host.
type Direction int

// Capture directions.
const (
	DirOut Direction = iota + 1
	DirIn
)

// String returns "out" or "in".
func (d Direction) String() string {
	if d == DirOut {
		return "out"
	}
	return "in"
}

// Packet is one captured transmission unit: a UDP datagram or a TCP
// stream chunk. Src and Dst are the addresses visible at the tap point
// (post-NAT at the receiver).
type Packet struct {
	Time    time.Time
	Proto   Proto
	Dir     Direction
	Src     netip.AddrPort
	Dst     netip.AddrPort
	Payload []byte
}

// Tap receives a copy of every packet crossing the tapped host.
// Taps must not block for long; they run on the sender's goroutine.
type Tap func(Packet)

// Config holds network-wide defaults. The zero value means an ideal
// network: no latency, unlimited bandwidth, no loss.
type Config struct {
	// DefaultLatency is the one-way access latency added at each host;
	// the path latency between two hosts is the sum of their access
	// latencies.
	DefaultLatency time.Duration
	// LossProb is the probability in [0,1) that a UDP datagram is
	// silently dropped in transit. Streams are never lossy.
	LossProb float64
	// Seed drives the loss process; captures and routing are
	// deterministic regardless.
	Seed int64
}

// Network is the root object: a set of hosts and NAT boxes sharing one
// address space.
type Network struct {
	cfg Config

	mu    sync.RWMutex
	hosts map[netip.Addr]*Host
	nats  map[netip.Addr]*NAT

	lossMu sync.Mutex
	rng    *rand.Rand

	// imp is the programmable impairment engine (impair.go). Its zero
	// value impairs nothing and costs one atomic load per hook.
	imp impairments

	punchMu      sync.Mutex
	punchWaiters map[[2]netip.AddrPort]*punchWaiter

	now func() time.Time // injectable clock for tests
}

// Now reads the network's clock. Components running on the simulated
// network (and observability layered over them) stamp time through this
// accessor so a test-injected clock governs everything consistently.
func (n *Network) Now() time.Time { return n.now() }

// punchWaiter is one side of a pending hole-punch rendezvous.
type punchWaiter struct {
	host  *Host
	local netip.AddrPort
	ch    chan *Conn
}

// Punch materializes the data flow for an ICE-nominated candidate pair:
// both peers call Punch with their own (local) and the peer's (remote)
// nominated candidate addresses, and each receives one side of a
// connected stream whose visible endpoints are those candidates. Punch
// must only be called after connectivity checks succeeded — it performs
// no NAT validation itself (the checks already did, over real simulated
// NAT).
func (n *Network) Punch(ctx context.Context, host *Host, local, remote netip.AddrPort) (*Conn, error) {
	key := punchKey(local, remote)
	n.punchMu.Lock()
	if n.punchWaiters == nil {
		n.punchWaiters = make(map[[2]netip.AddrPort]*punchWaiter)
	}
	if w, ok := n.punchWaiters[key]; ok && w.local == remote {
		delete(n.punchWaiters, key)
		n.punchMu.Unlock()
		mine, theirs := Pair(host, w.host, local, remote)
		select {
		case w.ch <- theirs:
			return mine, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	w := &punchWaiter{host: host, local: local, ch: make(chan *Conn)}
	n.punchWaiters[key] = w
	n.punchMu.Unlock()

	select {
	case c := <-w.ch:
		return c, nil
	case <-ctx.Done():
		n.punchMu.Lock()
		if n.punchWaiters[key] == w {
			delete(n.punchWaiters, key)
		}
		n.punchMu.Unlock()
		return nil, ctx.Err()
	}
}

func punchKey(a, b netip.AddrPort) [2]netip.AddrPort {
	if b.Addr().Less(a.Addr()) || (b.Addr() == a.Addr() && b.Port() < a.Port()) {
		a, b = b, a
	}
	return [2]netip.AddrPort{a, b}
}

// New creates an empty network with the given configuration. It panics
// if LossProb is outside [0,1) — a misconfigured loss process would
// silently skew every experiment built on the network.
func New(cfg Config) *Network {
	if !(cfg.LossProb >= 0 && cfg.LossProb < 1) { // also rejects NaN
		panic(fmt.Sprintf("netsim: Config.LossProb %v outside [0,1)", cfg.LossProb))
	}
	return &Network{
		cfg:   cfg,
		hosts: make(map[netip.Addr]*Host),
		nats:  make(map[netip.Addr]*NAT),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		now:   time.Now,
	}
}

// NewHost registers a public host with the given address. It returns an
// error if the address is already taken.
func (n *Network) NewHost(ip netip.Addr) (*Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[ip]; ok {
		return nil, fmt.Errorf("netsim: host %v already exists", ip)
	}
	if _, ok := n.nats[ip]; ok {
		return nil, fmt.Errorf("netsim: address %v belongs to a NAT", ip)
	}
	h := newHost(n, ip, nil)
	n.hosts[ip] = h
	return h, nil
}

// MustHost is NewHost that panics on error, for test and experiment setup
// where a duplicate address is a programming bug.
func (n *Network) MustHost(ip netip.Addr) *Host {
	h, err := n.NewHost(ip)
	if err != nil {
		panic(err)
	}
	return h
}

// Host returns the registered host for ip, or nil.
func (n *Network) Host(ip netip.Addr) *Host {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.hosts[ip]
}

// dropUDP decides whether to drop a datagram according to LossProb.
func (n *Network) dropUDP() bool {
	if n.cfg.LossProb <= 0 {
		return false
	}
	n.lossMu.Lock()
	defer n.lossMu.Unlock()
	return n.rng.Float64() < n.cfg.LossProb
}

// lookupUDP resolves a visible destination address to the concrete host
// socket that should receive the datagram, translating NAT if needed.
// sender scopes private addressing: a host behind a NAT is directly
// addressable only from hosts behind the same NAT; everyone else must
// come through the NAT's external address.
func (n *Network) lookupUDP(sender *Host, from netip.AddrPort, dst netip.AddrPort) (*Host, uint16, bool) {
	n.mu.RLock()
	nat := n.nats[dst.Addr()]
	host := n.hosts[dst.Addr()]
	n.mu.RUnlock()
	if nat != nil {
		internal, ok := nat.translateInbound(from, dst.Port(), ProtoUDP)
		if !ok {
			return nil, 0, false
		}
		n.mu.RLock()
		host = n.hosts[internal.Addr()]
		n.mu.RUnlock()
		if host == nil {
			return nil, 0, false
		}
		return host, internal.Port(), true
	}
	if host == nil {
		return nil, 0, false
	}
	if host.nat != nil && (sender == nil || sender.nat != host.nat) {
		return nil, 0, false // private address not visible from outside its NAT
	}
	return host, dst.Port(), true
}

// lookupTCP resolves a dial destination, translating NAT port forwards.
// PDN experiments only dial public services (CDN, signaling, proxies), so
// inbound TCP through NAT requires an explicit Forward on the NAT.
func (n *Network) lookupTCP(sender *Host, dst netip.AddrPort) (*Host, uint16, bool) {
	n.mu.RLock()
	nat := n.nats[dst.Addr()]
	host := n.hosts[dst.Addr()]
	n.mu.RUnlock()
	if nat != nil {
		internal, ok := nat.forwardLookup(dst.Port())
		if !ok {
			return nil, 0, false
		}
		n.mu.RLock()
		host = n.hosts[internal.Addr()]
		n.mu.RUnlock()
		if host == nil {
			return nil, 0, false
		}
		return host, internal.Port(), true
	}
	if host == nil {
		return nil, 0, false
	}
	if host.nat != nil && (sender == nil || sender.nat != host.nat) {
		return nil, 0, false // private address not visible from outside its NAT
	}
	return host, dst.Port(), true
}

// Host is one endpoint on the simulated network. A host has exactly one
// address; hosts constructed via NAT.NewHost carry a private address and
// all their traffic is translated at the NAT.
type Host struct {
	net *Network
	ip  netip.Addr
	nat *NAT // nil for public hosts

	// Shaping. Zero values inherit network defaults / mean unlimited.
	latency  time.Duration
	upRate   int64 // bytes/sec, 0 = unlimited
	downRate int64

	mu        sync.Mutex
	listeners map[uint16]*Listener
	udpSocks  map[uint16]*packetConn
	conns     map[*Conn]struct{} // established stream endpoints, for crash/partition severing
	nextPort  uint16
	taps      []Tap
	closed    bool

	upGate   rateGate
	downGate rateGate

	bytesUp   atomic.Int64
	bytesDown atomic.Int64
}

func newHost(n *Network, ip netip.Addr, nat *NAT) *Host {
	return &Host{
		net:       n,
		ip:        ip,
		nat:       nat,
		latency:   n.cfg.DefaultLatency,
		listeners: make(map[uint16]*Listener),
		udpSocks:  make(map[uint16]*packetConn),
		nextPort:  32768,
	}
}

// Addr returns the host's own address (private if behind NAT).
func (h *Host) Addr() netip.Addr { return h.ip }

// Behind reports the NAT this host sits behind, or nil.
func (h *Host) Behind() *NAT { return h.nat }

// VisibleAddr returns the address other public hosts see traffic from:
// the NAT's external address for NATed hosts, the host address otherwise.
func (h *Host) VisibleAddr() netip.Addr {
	if h.nat != nil {
		return h.nat.extIP
	}
	return h.ip
}

// SetLatency sets the host's one-way access latency.
func (h *Host) SetLatency(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.latency = d
}

// SetRates limits the host's upload and download bandwidth in bytes per
// second; zero means unlimited.
func (h *Host) SetRates(up, down int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.upRate = up
	h.downRate = down
}

// AddTap registers a capture tap on this host.
func (h *Host) AddTap(t Tap) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.taps = append(h.taps, t)
}

// BytesUp returns the total bytes this host has transmitted.
func (h *Host) BytesUp() int64 { return h.bytesUp.Load() }

// BytesDown returns the total bytes this host has received.
func (h *Host) BytesDown() int64 { return h.bytesDown.Load() }

// tap delivers a capture copy to every registered tap.
func (h *Host) tap(p Packet) {
	h.mu.Lock()
	taps := h.taps
	h.mu.Unlock()
	if len(taps) == 0 {
		return
	}
	cp := p
	cp.Payload = append([]byte(nil), p.Payload...)
	for _, t := range taps {
		t(cp)
	}
}

func (h *Host) pathLatency(other *Host) time.Duration {
	h.mu.Lock()
	a := h.latency
	h.mu.Unlock()
	if other == nil {
		return a
	}
	other.mu.Lock()
	b := other.latency
	other.mu.Unlock()
	return a + b + h.net.extraLatency(h.ip, other.ip)
}

// allocPortLocked returns a free ephemeral port. Caller holds h.mu.
func (h *Host) allocPortLocked(proto Proto) (uint16, error) {
	for i := 0; i < 65536; i++ {
		p := h.nextPort
		h.nextPort++
		if h.nextPort == 0 {
			h.nextPort = 32768
		}
		if p < 1024 {
			continue
		}
		switch proto {
		case ProtoTCP:
			if _, used := h.listeners[p]; !used {
				return p, nil
			}
		case ProtoUDP:
			if _, used := h.udpSocks[p]; !used {
				return p, nil
			}
		}
	}
	return 0, errors.New("netsim: ephemeral ports exhausted")
}

// rateGate serializes transmissions against a byte-per-second budget.
type rateGate struct {
	mu   sync.Mutex
	next time.Time
}

// wait blocks until n bytes may pass at the given rate, and returns
// immediately for rate<=0. The clock is injected so shaped timestamps
// follow the network's (possibly test-controlled) time source.
func (g *rateGate) wait(n int, rate int64, clock func() time.Time) {
	if rate <= 0 || n <= 0 {
		return
	}
	dur := time.Duration(float64(n) / float64(rate) * float64(time.Second))
	g.mu.Lock()
	now := clock()
	start := g.next
	if start.Before(now) {
		start = now
	}
	g.next = start.Add(dur)
	wait := g.next.Sub(now)
	g.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

func (h *Host) shapeUp(n int) {
	h.mu.Lock()
	rate := h.upRate
	h.mu.Unlock()
	h.upGate.wait(n, rate, h.net.now)
	h.bytesUp.Add(int64(n))
}

func (h *Host) shapeDown(n int) {
	h.mu.Lock()
	rate := h.downRate
	h.mu.Unlock()
	h.downGate.wait(n, rate, h.net.now)
	h.bytesDown.Add(int64(n))
}

// Dialer returns a DialContext-compatible function routing through this
// host, suitable for http.Transport.
func (h *Host) Dialer() func(ctx context.Context, network, address string) (net.Conn, error) {
	return func(ctx context.Context, network, address string) (net.Conn, error) {
		ap, err := netip.ParseAddrPort(address)
		if err != nil {
			return nil, fmt.Errorf("netsim: dial %s: %w", address, err)
		}
		return h.Dial(ctx, ap)
	}
}

// HTTPClient returns an *http.Client whose transport dials over the
// simulated network from this host.
func (h *Host) HTTPClient() *HTTPClientShim { return &HTTPClientShim{host: h} }

// HTTPClientShim is a tiny indirection so that packages needing an
// http.Client construct it themselves from Dialer(); keeping net/http out
// of netsim's API avoids an import cycle with capture helpers.
type HTTPClientShim struct{ host *Host }

// DialContext implements the single method http.Transport needs.
func (s *HTTPClientShim) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	return s.host.Dialer()(ctx, network, address)
}
