package netsim

import (
	"context"
	"io"

	"os"
	"testing"
	"time"
)

func TestPunchTimesOutAlone(t *testing.T) {
	n := New(Config{})
	h := n.MustHost(mustAddr("10.0.0.1"))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := n.Punch(ctx, h, mustAP("10.0.0.1:1"), mustAP("10.0.0.2:1"))
	if err == nil {
		t.Fatal("lonely punch should time out")
	}
}

func TestPunchPairsAndCleansUp(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	apA, apB := mustAP("10.0.0.1:1000"), mustAP("10.0.0.2:2000")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := n.Punch(ctx, b, apB, apA)
		ch <- res{c, err}
	}()
	ca, err := n.Punch(ctx, a, apA, apB)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	go ca.Write([]byte("x"))
	buf := make([]byte, 4)
	r.c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := r.c.Read(buf); err != nil {
		t.Fatal(err)
	}
	// A second rendezvous on the same key works (no stale waiter).
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, err := n.Punch(ctx2, a, apA, apB); err == nil {
		t.Fatal("fresh punch without a partner should time out again")
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := New(Config{})
	h := n.MustHost(mustAddr("10.0.0.1"))
	l, err := h.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Accept should fail after Close")
		}
	case <-time.After(time.Second):
		t.Fatal("Accept not unblocked by Close")
	}
	// Port is reusable after close.
	if _, err := h.Listen(80); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
}

func TestDownloadShaping(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	b.SetRates(0, 100_000) // 100 KB/s down at the receiver

	l, _ := b.Listen(80)
	go func() {
		c, _ := l.Accept()
		io.Copy(io.Discard, c)
	}()
	c, err := a.Dial(context.Background(), mustAP("10.0.0.2:80"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	c.Write(make([]byte, 20_000))
	// The write returns after sender-side work; receiver shaping happens
	// on delivery, so allow the copy goroutine to finish.
	waitFor(t, 2*time.Second, func() bool { return b.BytesDown() == 20_000 })
	if time.Since(start) < 150*time.Millisecond {
		t.Fatal("download shaping not applied")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	l, _ := b.Listen(80)
	go func() {
		c, _ := l.Accept()
		c.Close()
	}()
	c, err := a.Dial(context.Background(), mustAP("10.0.0.2:80"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool {
		_, err := c.Write([]byte("x"))
		return err != nil
	})
}

func TestWriteDeadline(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	l, _ := b.Listen(80)
	accepted := make(chan *Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c.(*Conn)
	}()
	c, err := a.Dial(context.Background(), mustAP("10.0.0.2:80"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	<-accepted // peer never reads
	c.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
	// Fill the peer's inbox until the write blocks and the deadline fires.
	var werr error
	for i := 0; i < 200; i++ {
		if _, werr = c.Write(make([]byte, 1024)); werr != nil {
			break
		}
	}
	if werr != os.ErrDeadlineExceeded {
		t.Fatalf("want deadline exceeded, got %v", werr)
	}
}

func TestUDPPortConflictAndEphemeral(t *testing.T) {
	n := New(Config{})
	h := n.MustHost(mustAddr("10.0.0.1"))
	if _, err := h.ListenPacket(5000); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ListenPacket(5000); err == nil {
		t.Fatal("expected port conflict")
	}
	p1, _ := h.ListenPacket(0)
	p2, _ := h.ListenPacket(0)
	if p1.LocalAddrPort().Port() == p2.LocalAddrPort().Port() {
		t.Fatal("ephemeral ports must differ")
	}
	p1.Close()
	// Closed ports are reusable.
	if _, err := h.ListenPacket(p1.LocalAddrPort().Port()); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestVisibleAddr(t *testing.T) {
	n := New(Config{})
	pub := n.MustHost(mustAddr("8.8.8.8"))
	if pub.VisibleAddr() != pub.Addr() {
		t.Fatal("public host visible addr mismatch")
	}
	nat := n.MustNAT(mustAddr("5.5.5.5"), NATFullCone)
	priv := nat.MustHost(mustAddr("192.168.0.2"))
	if priv.VisibleAddr() != mustAddr("5.5.5.5") {
		t.Fatalf("NATed host visible addr %v", priv.VisibleAddr())
	}
	if priv.Behind() != nat {
		t.Fatal("Behind() mismatch")
	}
}

func TestAddressCollisions(t *testing.T) {
	n := New(Config{})
	n.MustHost(mustAddr("8.8.8.8"))
	if _, err := n.NewNAT(mustAddr("8.8.8.8"), NATFullCone); err == nil {
		t.Fatal("NAT on a host address should fail")
	}
	n.MustNAT(mustAddr("5.5.5.5"), NATFullCone)
	if _, err := n.NewHost(mustAddr("5.5.5.5")); err == nil {
		t.Fatal("host on a NAT address should fail")
	}
	if _, err := n.NewNAT(mustAddr("5.5.5.5"), NATSymmetric); err == nil {
		t.Fatal("duplicate NAT should fail")
	}
}

func TestNATTypeString(t *testing.T) {
	if NATFullCone.String() != "full-cone" || NATSymmetric.String() != "symmetric" ||
		NATAddressRestricted.String() != "address-restricted" {
		t.Fatal("NAT type names")
	}
	if NATType(0).String() == "" {
		t.Fatal("unknown NAT type should render")
	}
}

func TestProtoAndDirectionStrings(t *testing.T) {
	if ProtoUDP.String() != "udp" || ProtoTCP.String() != "tcp" || Proto(9).String() == "" {
		t.Fatal("proto names")
	}
	if DirOut.String() != "out" || DirIn.String() != "in" {
		t.Fatal("direction names")
	}
}

func TestDialContextCancel(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	a.SetLatency(200 * time.Millisecond)
	b.SetLatency(200 * time.Millisecond)
	l, _ := b.Listen(80)
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Dial(ctx, mustAP("10.0.0.2:80")); err == nil {
		t.Fatal("dial should respect context during connection latency")
	}
}
