package netsim

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/netip"
	"os"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func mustAP(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

func TestHostRegistration(t *testing.T) {
	n := New(Config{})
	h, err := n.NewHost(mustAddr("1.2.3.4"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Addr() != mustAddr("1.2.3.4") {
		t.Fatalf("Addr = %v", h.Addr())
	}
	if _, err := n.NewHost(mustAddr("1.2.3.4")); err == nil {
		t.Fatal("duplicate host registration should fail")
	}
	if n.Host(mustAddr("1.2.3.4")) != h {
		t.Fatal("Host lookup failed")
	}
	if n.Host(mustAddr("9.9.9.9")) != nil {
		t.Fatal("unknown host should be nil")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))

	l, err := b.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 64)
		nn, err := c.Read(buf)
		if err != nil {
			done <- err
			return
		}
		_, err = c.Write(append([]byte("echo:"), buf[:nn]...))
		done <- err
	}()

	conn, err := a.Dial(context.Background(), mustAP("10.0.0.2:8080"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	nn, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(buf[:nn]); got != "echo:hello" {
		t.Fatalf("got %q", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDialRefusedAndUnreachable(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	n.MustHost(mustAddr("10.0.0.2"))

	if _, err := a.Dial(context.Background(), mustAP("10.0.0.2:9999")); err == nil {
		t.Fatal("expected refused")
	}
	if _, err := a.Dial(context.Background(), mustAP("10.9.9.9:80")); err == nil {
		t.Fatal("expected unreachable")
	}
}

func TestListenerPortConflict(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	if _, err := a.Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Listen(80); err == nil {
		t.Fatal("expected port-in-use")
	}
}

func TestStreamEOFOnClose(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	l, _ := b.Listen(80)
	go func() {
		c, _ := l.Accept()
		c.Write([]byte("bye"))
		c.Close()
	}()
	conn, err := a.Dial(context.Background(), mustAP("10.0.0.2:80"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(data) != "bye" {
		t.Fatalf("got %q", data)
	}
}

func TestReadDeadline(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	l, _ := b.Listen(80)
	go func() {
		c, _ := l.Accept()
		defer c.Close()
		time.Sleep(500 * time.Millisecond)
	}()
	conn, err := a.Dial(context.Background(), mustAP("10.0.0.2:80"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 8)
	if _, err := conn.Read(buf); err != os.ErrDeadlineExceeded {
		t.Fatalf("Read err = %v, want deadline exceeded", err)
	}
	// Clearing the deadline makes reads block again (until close/EOF).
	conn.SetReadDeadline(time.Time{})
}

func TestPacketRoundTrip(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	pa, err := a.ListenPacket(5000)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.ListenPacket(6000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pa.WriteToAddrPort([]byte("ping"), mustAP("10.0.0.2:6000")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	pb.SetReadDeadline(time.Now().Add(time.Second))
	nn, from, err := pb.ReadFromAddrPort(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nn]) != "ping" {
		t.Fatalf("payload %q", buf[:nn])
	}
	if from != mustAP("10.0.0.1:5000") {
		t.Fatalf("from = %v", from)
	}
	// Reply.
	if _, err := pb.WriteToAddrPort([]byte("pong"), from); err != nil {
		t.Fatal(err)
	}
	pa.SetReadDeadline(time.Now().Add(time.Second))
	nn, from2, err := pa.ReadFromAddrPort(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nn]) != "pong" || from2 != mustAP("10.0.0.2:6000") {
		t.Fatalf("reply %q from %v", buf[:nn], from2)
	}
}

func TestPacketToNowhereIsDropped(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	pa, _ := a.ListenPacket(0)
	if _, err := pa.WriteToAddrPort([]byte("x"), mustAP("10.99.99.99:1")); err != nil {
		t.Fatalf("UDP to unreachable must not error: %v", err)
	}
}

func TestNATFullConeMappingAndReply(t *testing.T) {
	n := New(Config{})
	server := n.MustHost(mustAddr("8.8.8.8"))
	nat := n.MustNAT(mustAddr("5.5.5.5"), NATFullCone)
	inside := nat.MustHost(mustAddr("192.168.1.10"))

	ps, _ := server.ListenPacket(3478)
	pi, _ := inside.ListenPacket(4000)

	if _, err := pi.WriteToAddrPort([]byte("hi"), mustAP("8.8.8.8:3478")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	ps.SetReadDeadline(time.Now().Add(time.Second))
	_, from, err := ps.ReadFromAddrPort(buf)
	if err != nil {
		t.Fatal(err)
	}
	if from.Addr() != mustAddr("5.5.5.5") {
		t.Fatalf("server saw %v, want NAT external 5.5.5.5", from)
	}
	// Reply through the mapping reaches the inside host.
	if _, err := ps.WriteToAddrPort([]byte("yo"), from); err != nil {
		t.Fatal(err)
	}
	pi.SetReadDeadline(time.Now().Add(time.Second))
	nn, _, err := pi.ReadFromAddrPort(buf)
	if err != nil || string(buf[:nn]) != "yo" {
		t.Fatalf("inside read: %v %q", err, buf[:nn])
	}
	// Full cone: a third party can use the same mapping.
	third := n.MustHost(mustAddr("9.9.9.9"))
	pt, _ := third.ListenPacket(0)
	if _, err := pt.WriteToAddrPort([]byte("3rd"), from); err != nil {
		t.Fatal(err)
	}
	pi.SetReadDeadline(time.Now().Add(time.Second))
	nn, _, err = pi.ReadFromAddrPort(buf)
	if err != nil || string(buf[:nn]) != "3rd" {
		t.Fatalf("full-cone third-party delivery failed: %v %q", err, buf[:nn])
	}
}

func TestNATAddressRestrictedFiltering(t *testing.T) {
	n := New(Config{})
	server := n.MustHost(mustAddr("8.8.8.8"))
	third := n.MustHost(mustAddr("9.9.9.9"))
	nat := n.MustNAT(mustAddr("5.5.5.5"), NATAddressRestricted)
	inside := nat.MustHost(mustAddr("192.168.1.10"))

	ps, _ := server.ListenPacket(3478)
	pi, _ := inside.ListenPacket(4000)
	pt, _ := third.ListenPacket(0)

	pi.WriteToAddrPort([]byte("hi"), mustAP("8.8.8.8:3478"))
	buf := make([]byte, 64)
	ps.SetReadDeadline(time.Now().Add(time.Second))
	_, ext, _ := ps.ReadFromAddrPort(buf)

	// Third party blocked.
	pt.WriteToAddrPort([]byte("x"), ext)
	pi.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := pi.ReadFromAddrPort(buf); err == nil {
		t.Fatal("address-restricted NAT should filter unknown sender")
	}
	// Contacted address allowed.
	ps.WriteToAddrPort([]byte("ok"), ext)
	pi.SetReadDeadline(time.Now().Add(time.Second))
	if nn, _, err := pi.ReadFromAddrPort(buf); err != nil || string(buf[:nn]) != "ok" {
		t.Fatalf("contacted sender should pass: %v", err)
	}
}

func TestNATSymmetricPerDestinationPorts(t *testing.T) {
	n := New(Config{})
	s1 := n.MustHost(mustAddr("8.8.8.8"))
	s2 := n.MustHost(mustAddr("9.9.9.9"))
	nat := n.MustNAT(mustAddr("5.5.5.5"), NATSymmetric)
	inside := nat.MustHost(mustAddr("192.168.1.10"))

	p1, _ := s1.ListenPacket(1000)
	p2, _ := s2.ListenPacket(1000)
	pi, _ := inside.ListenPacket(4000)

	pi.WriteToAddrPort([]byte("a"), mustAP("8.8.8.8:1000"))
	pi.WriteToAddrPort([]byte("b"), mustAP("9.9.9.9:1000"))

	buf := make([]byte, 64)
	p1.SetReadDeadline(time.Now().Add(time.Second))
	_, ext1, err := p1.ReadFromAddrPort(buf)
	if err != nil {
		t.Fatal(err)
	}
	p2.SetReadDeadline(time.Now().Add(time.Second))
	_, ext2, err := p2.ReadFromAddrPort(buf)
	if err != nil {
		t.Fatal(err)
	}
	if ext1 == ext2 {
		t.Fatalf("symmetric NAT must allocate distinct ports per destination, got %v for both", ext1)
	}
	// s2 cannot reach inside via s1's mapping.
	p2.WriteToAddrPort([]byte("steal"), ext1)
	pi.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := pi.ReadFromAddrPort(buf); err == nil {
		t.Fatal("symmetric NAT should filter cross-destination inbound")
	}
}

func TestTCPThroughNATShowsExternalAddr(t *testing.T) {
	n := New(Config{})
	server := n.MustHost(mustAddr("8.8.8.8"))
	nat := n.MustNAT(mustAddr("5.5.5.5"), NATFullCone)
	inside := nat.MustHost(mustAddr("192.168.1.10"))

	l, _ := server.Listen(80)
	got := make(chan string, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			got <- err.Error()
			return
		}
		got <- c.RemoteAddr().String()
		c.Close()
	}()
	c, err := inside.Dial(context.Background(), mustAP("8.8.8.8:80"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	remote := <-got
	ap, err := netip.ParseAddrPort(remote)
	if err != nil {
		t.Fatalf("remote %q: %v", remote, err)
	}
	if ap.Addr() != mustAddr("5.5.5.5") {
		t.Fatalf("server saw %v, want NAT external", ap)
	}
}

func TestNATForwardTCP(t *testing.T) {
	n := New(Config{})
	outside := n.MustHost(mustAddr("8.8.8.8"))
	nat := n.MustNAT(mustAddr("5.5.5.5"), NATFullCone)
	inside := nat.MustHost(mustAddr("192.168.1.10"))
	l, _ := inside.Listen(8080)
	nat.Forward(80, mustAP("192.168.1.10:8080"))
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Write([]byte("fwd"))
			c.Close()
		}
	}()
	c, err := outside.Dial(context.Background(), mustAP("5.5.5.5:80"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(c)
	if string(data) != "fwd" {
		t.Fatalf("got %q", data)
	}
}

func TestCaptureTapsSeePostNATSource(t *testing.T) {
	n := New(Config{})
	server := n.MustHost(mustAddr("8.8.8.8"))
	nat := n.MustNAT(mustAddr("5.5.5.5"), NATFullCone)
	inside := nat.MustHost(mustAddr("192.168.1.10"))

	var mu sync.Mutex
	var captured []Packet
	server.AddTap(func(p Packet) {
		mu.Lock()
		captured = append(captured, p)
		mu.Unlock()
	})

	ps, _ := server.ListenPacket(3478)
	pi, _ := inside.ListenPacket(4000)
	pi.WriteToAddrPort([]byte("stun-ish"), mustAP("8.8.8.8:3478"))
	buf := make([]byte, 64)
	ps.SetReadDeadline(time.Now().Add(time.Second))
	ps.ReadFromAddrPort(buf)

	mu.Lock()
	defer mu.Unlock()
	if len(captured) != 1 {
		t.Fatalf("captured %d packets, want 1", len(captured))
	}
	p := captured[0]
	if p.Dir != DirIn || p.Proto != ProtoUDP {
		t.Fatalf("capture meta: %+v", p)
	}
	if p.Src.Addr() != mustAddr("5.5.5.5") {
		t.Fatalf("capture src %v, want post-NAT 5.5.5.5", p.Src)
	}
	if string(p.Payload) != "stun-ish" {
		t.Fatalf("capture payload %q", p.Payload)
	}
}

func TestByteAccounting(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	l, _ := b.Listen(80)
	go func() {
		c, _ := l.Accept()
		io.Copy(io.Discard, c)
	}()
	c, err := a.Dial(context.Background(), mustAP("10.0.0.2:80"))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 10_000)
	c.Write(payload)
	c.Close()
	if up := a.BytesUp(); up != 10_000 {
		t.Fatalf("a.BytesUp = %d", up)
	}
	waitFor(t, time.Second, func() bool { return b.BytesDown() == 10_000 })
}

func TestBandwidthShaping(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	a.SetRates(100_000, 0) // 100 KB/s up

	l, _ := b.Listen(80)
	go func() {
		c, _ := l.Accept()
		io.Copy(io.Discard, c)
	}()
	c, err := a.Dial(context.Background(), mustAP("10.0.0.2:80"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	c.Write(make([]byte, 20_000)) // should take ~200ms at 100KB/s
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("shaping too fast: %v", elapsed)
	}
}

func TestLatency(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	a.SetLatency(25 * time.Millisecond)
	b.SetLatency(25 * time.Millisecond)

	pa, _ := a.ListenPacket(1000)
	pb, _ := b.ListenPacket(1000)
	start := time.Now()
	pa.WriteToAddrPort([]byte("x"), mustAP("10.0.0.2:1000"))
	buf := make([]byte, 8)
	pb.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := pb.ReadFromAddrPort(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("latency not applied: %v", d)
	}
}

func TestPacketLoss(t *testing.T) {
	// Config.LossProb is [0,1) by contract; total loss is expressed as a
	// per-link override, which admits the closed upper bound.
	n := New(Config{LossProb: 0.999999})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	n.SetLinkLoss(a.Addr(), b.Addr(), 1)
	pa, _ := a.ListenPacket(1000)
	pb, _ := b.ListenPacket(1000)
	pa.WriteToAddrPort([]byte("x"), mustAP("10.0.0.2:1000"))
	pb.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 8)
	if _, _, err := pb.ReadFromAddrPort(buf); err == nil {
		t.Fatal("link loss 1 should drop everything")
	}
}

func TestConfigLossProbValidation(t *testing.T) {
	cases := []struct {
		p  float64
		ok bool
	}{
		{0, true},
		{0.5, true},
		{0.999, true},
		{1.0, false},
		{-0.1, false},
		{math.NaN(), false},
		{math.Inf(1), false},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				r := recover()
				if tc.ok && r != nil {
					t.Errorf("LossProb=%v: unexpected panic %v", tc.p, r)
				}
				if !tc.ok && r == nil {
					t.Errorf("LossProb=%v: expected New to panic", tc.p)
				}
			}()
			New(Config{LossProb: tc.p})
		}()
	}
}

func TestHTTPOverNetsim(t *testing.T) {
	n := New(Config{})
	serverHost := n.MustHost(mustAddr("93.184.216.34"))
	clientHost := n.MustHost(mustAddr("10.1.1.1"))

	l, err := serverHost.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/hello", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hi %s", r.RemoteAddr)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(l)
	defer srv.Close()

	client := &http.Client{
		Transport: &http.Transport{DialContext: clientHost.Dialer()},
		Timeout:   5 * time.Second,
	}
	resp, err := client.Get("http://93.184.216.34:80/hello")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if want := "hi 10.1.1.1:"; len(body) < len(want) || string(body[:len(want)]) != want {
		t.Fatalf("body %q", body)
	}
}

func TestConcurrentStreams(t *testing.T) {
	n := New(Config{})
	server := n.MustHost(mustAddr("10.0.0.99"))
	l, _ := server.Listen(80)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c) // echo
			}()
		}
	}()
	defer l.Close()

	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := n.MustHost(mustAddr(fmt.Sprintf("10.0.1.%d", i+1)))
			c, err := h.Dial(context.Background(), mustAP("10.0.0.99:80"))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			msg := fmt.Sprintf("msg-%d", i)
			c.Write([]byte(msg))
			buf := make([]byte, 64)
			c.SetReadDeadline(time.Now().Add(2 * time.Second))
			nn, err := c.Read(buf)
			if err != nil || string(buf[:nn]) != msg {
				t.Errorf("echo %d: %v %q", i, err, buf[:nn])
			}
		}(i)
	}
	wg.Wait()
}

// Property: every UDP payload delivered equals the payload sent, for
// arbitrary binary contents.
func TestQuickPacketPayloadIntegrity(t *testing.T) {
	n := New(Config{})
	a := n.MustHost(mustAddr("10.0.0.1"))
	b := n.MustHost(mustAddr("10.0.0.2"))
	pa, _ := a.ListenPacket(1000)
	pb, _ := b.ListenPacket(1000)
	buf := make([]byte, 70000)
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		pa.WriteToAddrPort(payload, mustAP("10.0.0.2:1000"))
		pb.SetReadDeadline(time.Now().Add(time.Second))
		nn, _, err := pb.ReadFromAddrPort(buf)
		if err != nil || nn != len(payload) {
			return false
		}
		for i := range payload {
			if buf[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met before timeout")
}
