package netsim

import (
	"fmt"
	"net"
	"net/netip"
	"os"
	"time"
)

// datagram is an in-flight UDP payload with its visible source address.
type datagram struct {
	from    netip.AddrPort
	payload []byte
}

// packetConn is a simulated UDP socket bound to one host port. It
// implements net.PacketConn. STUN and the DTLS-like transport run on it.
type packetConn struct {
	host  *Host
	port  uint16
	inbox chan datagram
	done  chan struct{}

	readDL  deadline
	writeDL deadline
}

var _ net.PacketConn = (*packetConn)(nil)

// PacketConn is the exported view of a simulated UDP socket.
type PacketConn = packetConn

// ListenPacket binds a UDP-like socket on the given port (0 picks an
// ephemeral port).
func (h *Host) ListenPacket(port uint16) (*PacketConn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if port == 0 {
		p, err := h.allocPortLocked(ProtoUDP)
		if err != nil {
			return nil, err
		}
		port = p
	} else if _, used := h.udpSocks[port]; used {
		return nil, fmt.Errorf("netsim: listen udp %v:%d: %w", h.ip, port, ErrPortInUse)
	}
	pc := &packetConn{
		host:    h,
		port:    port,
		inbox:   make(chan datagram, 256),
		done:    make(chan struct{}),
		readDL:  makeDeadline(),
		writeDL: makeDeadline(),
	}
	h.udpSocks[port] = pc
	return pc, nil
}

// LocalAddrPort returns the socket's bound address on its own host
// (private if behind NAT).
func (pc *packetConn) LocalAddrPort() netip.AddrPort {
	return netip.AddrPortFrom(pc.host.ip, pc.port)
}

// WriteToAddrPort sends a datagram to dst. Unreachable destinations are
// silently dropped, as with real UDP.
func (pc *packetConn) WriteToAddrPort(b []byte, dst netip.AddrPort) (int, error) {
	select {
	case <-pc.done:
		return 0, ErrClosed
	default:
	}
	if isClosedChan(pc.writeDL.wait()) {
		return 0, os.ErrDeadlineExceeded
	}

	src := netip.AddrPortFrom(pc.host.ip, pc.port)
	visibleSrc := src
	if pc.host.nat != nil {
		visibleSrc = pc.host.nat.mapOutbound(src, dst, ProtoUDP)
	}

	payload := append([]byte(nil), b...)
	pc.host.shapeUp(len(payload))

	pkt := Packet{
		Time:    pc.host.net.now(),
		Proto:   ProtoUDP,
		Dir:     DirOut,
		Src:     visibleSrc,
		Dst:     dst,
		Payload: payload,
	}
	pc.host.tap(pkt)

	dstHost, dstPort, ok := pc.host.net.lookupUDP(pc.host, visibleSrc, dst)
	if !ok {
		return len(b), nil // unreachable: dropped
	}
	if pc.host.net.blockedPath(pc.host.ip, dstHost.ip) {
		return len(b), nil // partitioned: dropped, like a routing blackhole
	}
	if drop, overridden := pc.host.net.dropImpaired(pc.host.ip, dstHost.ip); overridden {
		if drop {
			return len(b), nil
		}
	} else if pc.host.net.dropUDP() {
		return len(b), nil
	}
	dstHost.mu.Lock()
	sock := dstHost.udpSocks[dstPort]
	dstHost.mu.Unlock()
	if sock == nil {
		return len(b), nil // no listener: dropped
	}

	deliver := func() {
		dstHost.shapeDown(len(payload))
		inPkt := pkt
		inPkt.Dir = DirIn
		inPkt.Dst = netip.AddrPortFrom(dstHost.ip, dstPort)
		dstHost.tap(inPkt)
		select {
		case sock.inbox <- datagram{from: visibleSrc, payload: payload}:
		default: // receive buffer full: drop, like a real socket
		}
	}
	if lat := pc.host.pathLatency(dstHost); lat > 0 {
		time.AfterFunc(lat, deliver)
	} else {
		deliver()
	}
	return len(b), nil
}

// ReadFromAddrPort receives the next datagram.
func (pc *packetConn) ReadFromAddrPort(b []byte) (int, netip.AddrPort, error) {
	if isClosedChan(pc.readDL.wait()) {
		return 0, netip.AddrPort{}, os.ErrDeadlineExceeded
	}
	select {
	case d := <-pc.inbox:
		n := copy(b, d.payload)
		return n, d.from, nil
	case <-pc.done:
		return 0, netip.AddrPort{}, ErrClosed
	case <-pc.readDL.wait():
		return 0, netip.AddrPort{}, os.ErrDeadlineExceeded
	}
}

// ReadFrom implements net.PacketConn.
func (pc *packetConn) ReadFrom(b []byte) (int, net.Addr, error) {
	n, ap, err := pc.ReadFromAddrPort(b)
	if err != nil {
		return n, nil, err
	}
	return n, net.UDPAddrFromAddrPort(ap), nil
}

// WriteTo implements net.PacketConn.
func (pc *packetConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	ua, ok := addr.(*net.UDPAddr)
	if !ok {
		return 0, fmt.Errorf("netsim: WriteTo: unsupported addr type %T", addr)
	}
	return pc.WriteToAddrPort(b, ua.AddrPort())
}

// Close releases the socket and its port.
func (pc *packetConn) Close() error {
	pc.host.mu.Lock()
	if pc.host.udpSocks[pc.port] == pc {
		delete(pc.host.udpSocks, pc.port)
	}
	pc.host.mu.Unlock()
	select {
	case <-pc.done:
	default:
		close(pc.done)
	}
	return nil
}

// LocalAddr implements net.PacketConn.
func (pc *packetConn) LocalAddr() net.Addr {
	return net.UDPAddrFromAddrPort(pc.LocalAddrPort())
}

// SetDeadline implements net.PacketConn.
func (pc *packetConn) SetDeadline(t time.Time) error {
	pc.readDL.set(t)
	pc.writeDL.set(t)
	return nil
}

// SetReadDeadline implements net.PacketConn.
func (pc *packetConn) SetReadDeadline(t time.Time) error {
	pc.readDL.set(t)
	return nil
}

// SetWriteDeadline implements net.PacketConn.
func (pc *packetConn) SetWriteDeadline(t time.Time) error {
	pc.writeDL.set(t)
	return nil
}
