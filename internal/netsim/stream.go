package netsim

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"sync"
	"time"
)

// Listener accepts simulated TCP connections on a host port. It
// implements net.Listener, so net/http servers run on it unmodified.
type Listener struct {
	host   *Host
	port   uint16
	accept chan *Conn
	done   chan struct{}
}

var _ net.Listener = (*Listener)(nil)

// Listen opens a TCP-like listener on the given port (0 picks an
// ephemeral port).
func (h *Host) Listen(port uint16) (*Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if port == 0 {
		p, err := h.allocPortLocked(ProtoTCP)
		if err != nil {
			return nil, err
		}
		port = p
	} else if _, used := h.listeners[port]; used {
		return nil, fmt.Errorf("netsim: listen %v:%d: %w", h.ip, port, ErrPortInUse)
	}
	l := &Listener{
		host: h,
		port: port,
		// The accept queue is the SYN backlog: under a join storm
		// (swarmload ramps thousands of dials at one server) dialers park
		// here instead of serializing on the Accept loop's pace.
		accept: make(chan *Conn, 64),
		done:   make(chan struct{}),
	}
	h.listeners[port] = l
	return l, nil
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Close stops the listener. In-flight connections are unaffected.
func (l *Listener) Close() error {
	l.host.mu.Lock()
	if l.host.listeners[l.port] == l {
		delete(l.host.listeners, l.port)
	}
	l.host.mu.Unlock()
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	return nil
}

// Addr returns the listening address.
func (l *Listener) Addr() net.Addr {
	return &net.TCPAddr{IP: l.host.ip.AsSlice(), Port: int(l.port)}
}

// AddrPort returns the listening address as a netip.AddrPort on the
// host's visible (post-NAT) address, which is what remote peers dial.
func (l *Listener) AddrPort() netip.AddrPort {
	return netip.AddrPortFrom(l.host.VisibleAddr(), l.port)
}

// Dial opens a simulated TCP connection from this host to dst. The
// context bounds connection establishment only.
func (h *Host) Dial(ctx context.Context, dst netip.AddrPort) (*Conn, error) {
	if h.Closed() {
		return nil, fmt.Errorf("netsim: dial %v: %w", dst, ErrClosed)
	}
	dstHost, dstPort, ok := h.net.lookupTCP(h, dst)
	if !ok {
		return nil, fmt.Errorf("netsim: dial %v: %w", dst, ErrUnreachable)
	}
	if h.net.blockedPath(h.ip, dstHost.ip) {
		return nil, fmt.Errorf("netsim: dial %v: %w", dst, ErrUnreachable)
	}
	dstHost.mu.Lock()
	l := dstHost.listeners[dstPort]
	dstHost.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("netsim: dial %v: %w", dst, ErrRefused)
	}

	h.mu.Lock()
	srcPort, err := h.allocPortLocked(ProtoTCP)
	if err != nil {
		h.mu.Unlock()
		return nil, err
	}
	// Reserve the port by installing a placeholder listener entry.
	h.listeners[srcPort] = nil
	h.mu.Unlock()

	visibleSrc := netip.AddrPortFrom(h.VisibleAddr(), srcPort)
	if h.nat != nil {
		visibleSrc = h.nat.mapOutbound(netip.AddrPortFrom(h.ip, srcPort), dst, ProtoTCP)
	}

	local := &Conn{
		host:       h,
		peerHost:   dstHost,
		localAddr:  netip.AddrPortFrom(h.ip, srcPort),
		remoteAddr: dst,
		inbox:      make(chan []byte, 64),
		closed:     make(chan struct{}),
		readDL:     makeDeadline(),
		writeDL:    makeDeadline(),
	}
	remote := &Conn{
		host:       dstHost,
		peerHost:   h,
		localAddr:  netip.AddrPortFrom(dstHost.ip, dstPort),
		remoteAddr: visibleSrc,
		inbox:      make(chan []byte, 64),
		closed:     make(chan struct{}),
		readDL:     makeDeadline(),
		writeDL:    makeDeadline(),
	}
	local.peer = remote
	remote.peer = local

	// Simulate connection setup latency (one RTT-ish).
	if lat := h.pathLatency(dstHost); lat > 0 {
		t := time.NewTimer(2 * lat)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}

	select {
	case l.accept <- remote:
	case <-l.done:
		return nil, fmt.Errorf("netsim: dial %v: %w", dst, ErrRefused)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	h.registerConn(local)
	dstHost.registerConn(remote)
	return local, nil
}

// Pair directly connects two hosts with a stream, bypassing dial/accept.
// ICE uses it to materialize the transport for a nominated candidate
// pair: real WebRTC agents keep exchanging data on the hole-punched UDP
// flow, which netsim models as a reliable stream between the nominated
// addresses. aVis/bVis are the candidate addresses each side advertises
// (post-NAT for srflx candidates), so captures and RemoteAddr report the
// same endpoints the STUN exchange leaked.
func Pair(a, b *Host, aVis, bVis netip.AddrPort) (*Conn, *Conn) {
	ca := &Conn{
		host:       a,
		peerHost:   b,
		localAddr:  netip.AddrPortFrom(a.ip, aVis.Port()),
		remoteAddr: bVis,
		inbox:      make(chan []byte, 64),
		closed:     make(chan struct{}),
		readDL:     makeDeadline(),
		writeDL:    makeDeadline(),
	}
	cb := &Conn{
		host:       b,
		peerHost:   a,
		localAddr:  netip.AddrPortFrom(b.ip, bVis.Port()),
		remoteAddr: aVis,
		inbox:      make(chan []byte, 64),
		closed:     make(chan struct{}),
		readDL:     makeDeadline(),
		writeDL:    makeDeadline(),
	}
	ca.peer = cb
	cb.peer = ca
	a.registerConn(ca)
	b.registerConn(cb)
	return ca, cb
}

// Conn is one side of a simulated TCP connection. It implements net.Conn.
type Conn struct {
	host     *Host
	peerHost *Host
	peer     *Conn

	localAddr  netip.AddrPort // this side's own address (private if NATed)
	remoteAddr netip.AddrPort // peer's visible address

	inbox     chan []byte
	residual  []byte
	closed    chan struct{}
	closeOnce sync.Once

	readDL  deadline
	writeDL deadline
}

var _ net.Conn = (*Conn)(nil)

// Read reads data from the connection.
func (c *Conn) Read(b []byte) (int, error) {
	if len(c.residual) > 0 {
		n := copy(b, c.residual)
		c.residual = c.residual[n:]
		return n, nil
	}
	if isClosedChan(c.readDL.wait()) {
		return 0, os.ErrDeadlineExceeded
	}
	select {
	case chunk, ok := <-c.inbox:
		if !ok {
			return 0, io.EOF
		}
		n := copy(b, chunk)
		if n < len(chunk) {
			c.residual = chunk[n:]
		}
		return n, nil
	case <-c.closed:
		// Drain anything already delivered before reporting EOF.
		select {
		case chunk, ok := <-c.inbox:
			if ok {
				n := copy(b, chunk)
				if n < len(chunk) {
					c.residual = chunk[n:]
				}
				return n, nil
			}
		default:
		}
		return 0, io.EOF
	case <-c.readDL.wait():
		return 0, os.ErrDeadlineExceeded
	}
}

// Write sends data to the peer, applying the sender's upload shaping and
// the receiver's download shaping, and feeding both hosts' capture taps.
func (c *Conn) Write(b []byte) (int, error) {
	select {
	case <-c.closed:
		return 0, ErrClosed
	default:
	}
	if isClosedChan(c.writeDL.wait()) {
		return 0, os.ErrDeadlineExceeded
	}
	if c.host.net.blockedPath(c.host.ip, c.peerHost.ip) {
		// A partition installed concurrently with establishment; severing
		// handles existing conns, this guards the race.
		return 0, ErrUnreachable
	}

	chunk := append([]byte(nil), b...)
	chunk = c.host.net.mangleStream(c.host.ip, chunk)
	c.host.shapeUp(len(chunk))
	if lat := c.host.pathLatency(c.peerHost); lat > 0 {
		time.Sleep(lat)
	}

	pkt := Packet{
		Time:    c.host.net.now(),
		Proto:   ProtoTCP,
		Src:     c.peer.remoteAddr, // how the receiver sees us (post-NAT)
		Dst:     c.remoteAddr,
		Payload: chunk,
	}
	pkt.Dir = DirOut
	c.host.tap(pkt)

	select {
	case c.peer.inbox <- chunk:
	case <-c.peer.closed:
		return 0, ErrClosed
	case <-c.closed:
		return 0, ErrClosed
	case <-c.writeDL.wait():
		return 0, os.ErrDeadlineExceeded
	}
	c.peerHost.shapeDown(len(chunk))
	pkt.Dir = DirIn
	pkt.Dst = netip.AddrPortFrom(c.peerHost.ip, c.peer.localAddr.Port())
	c.peerHost.tap(pkt)
	return len(b), nil
}

// Close closes both directions of the connection.
func (c *Conn) Close() error {
	c.closeSide()
	c.peer.closeSide()
	return nil
}

// closeSide is safe for concurrent use: net.Conn.Close may race itself
// (a session handler's deferred Close against a proxy splice's), and a
// select/default guard alone would let two goroutines both reach the
// close.
func (c *Conn) closeSide() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.host.unregisterConn(c)
	})
}

// LocalAddr returns the local address of the connection.
func (c *Conn) LocalAddr() net.Addr {
	return &net.TCPAddr{IP: c.localAddr.Addr().AsSlice(), Port: int(c.localAddr.Port())}
}

// RemoteAddr returns the peer's visible (post-NAT) address; this is what
// origin-checking servers and IP-harvesting attackers observe.
func (c *Conn) RemoteAddr() net.Addr {
	return &net.TCPAddr{IP: c.remoteAddr.Addr().AsSlice(), Port: int(c.remoteAddr.Port())}
}

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.readDL.set(t)
	c.writeDL.set(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.readDL.set(t)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.writeDL.set(t)
	return nil
}
