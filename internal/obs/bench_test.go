package obs_test

import (
	"context"
	"strconv"
	"testing"

	"github.com/stealthy-peers/pdnsec/internal/dispatch"
	"github.com/stealthy-peers/pdnsec/internal/obs"
)

// BenchmarkObsOverhead measures what instrumentation costs the dispatch
// hot path. The acceptance bar is that the metrics-instrumented engine
// stays within 5% of the bare one; the tracer sub-benchmark is recorded
// for reference (it buffers one span per job, so it is expected to cost
// more than counters alone).
func BenchmarkObsOverhead(b *testing.B) {
	const jobs = 512

	// cfg is built per iteration: a tracer buffers one span per job, so
	// reusing it across iterations would grow the buffers without bound
	// and measure append cost at sizes no real run reaches.
	run := func(b *testing.B, mkcfg func() dispatch.Config) {
		b.Helper()
		work := make([]dispatch.Job[int], jobs)
		for i := range work {
			i := i
			work[i] = dispatch.Job[int]{
				Key: "job/" + strconv.Itoa(i),
				Do:  func(context.Context) (int, error) { return i * 2, nil },
			}
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			out, err := dispatch.New[int](mkcfg()).Run(context.Background(), work)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != jobs {
				b.Fatalf("got %d results, want %d", len(out), jobs)
			}
		}
	}

	b.Run("bare", func(b *testing.B) {
		run(b, func() dispatch.Config { return dispatch.Config{Workers: 4} })
	})
	b.Run("metrics", func(b *testing.B) {
		run(b, func() dispatch.Config {
			return dispatch.Config{Workers: 4, Metrics: dispatch.NewMetrics()}
		})
	})
	b.Run("metrics+tracer", func(b *testing.B) {
		run(b, func() dispatch.Config {
			return dispatch.Config{
				Workers: 4,
				Metrics: dispatch.NewMetrics(),
				Tracer:  obs.NewTracer(nil),
			}
		})
	})
}

// BenchmarkCounterInc isolates the cheapest obs primitive.
func BenchmarkCounterInc(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_counter_total", "bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkHistogramObserve isolates the latency-histogram hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := obs.NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v = (v*2 + 1) & 0xfffff
		}
	})
}
