package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges render
// directly; histograms render as summaries (quantile series plus
// _sum/_count), which is what a log-scale sketch can answer exactly.
// The registry lock is held only while snapshotting handles, never
// while writing to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, e := range r.snapshot() {
		if err := writePromEntry(w, e); err != nil {
			return err
		}
	}
	return nil
}

func writePromEntry(w io.Writer, e *entry) error {
	help := strings.ReplaceAll(strings.ReplaceAll(e.help, "\\", `\\`), "\n", `\n`)
	switch e.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			e.name, help, e.name, e.name, e.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			e.name, help, e.name, e.name, e.gauge.Value())
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
			e.name, help, e.name, e.name, e.gaugeFn())
		return err
	case kindHistogram:
		h := e.histogram
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", e.name, help, e.name); err != nil {
			return err
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %d\n", e.name, fmt.Sprintf("%g", q), h.Quantile(q)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", e.name, h.Sum(), e.name, h.Count())
		return err
	case kindCounterVec:
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", e.name, help, e.name); err != nil {
			return err
		}
		for _, lv := range e.vec.sorted() {
			if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", e.name, e.vec.label, lv.value, lv.count); err != nil {
				return err
			}
		}
		return nil
	case kindGaugeVec:
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", e.name, help, e.name); err != nil {
			return err
		}
		for _, lv := range e.gvec.sorted() {
			if _, err := fmt.Fprintf(w, "%s{%s=%q} %g\n", e.name, e.gvec.label, lv.value, lv.v); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

// WriteJSON renders the registry as one flat expvar-style JSON object:
// scalar metrics map to numbers, histograms to {p50,p90,p99,max,sum,
// count} objects, counter families to {label: count} objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	obj := make(map[string]any)
	for _, e := range r.snapshot() {
		switch e.kind {
		case kindCounter:
			obj[e.name] = e.counter.Value()
		case kindGauge:
			obj[e.name] = e.gauge.Value()
		case kindGaugeFunc:
			obj[e.name] = e.gaugeFn()
		case kindHistogram:
			h := e.histogram
			obj[e.name] = map[string]int64{
				"p50": h.Quantile(0.5), "p90": h.Quantile(0.9), "p99": h.Quantile(0.99),
				"max": h.Max(), "sum": h.Sum(), "count": h.Count(),
			}
		case kindCounterVec:
			children := make(map[string]int64)
			for _, lv := range e.vec.sorted() {
				children[lv.value] = lv.count
			}
			obj[e.name] = children
		case kindGaugeVec:
			children := make(map[string]float64)
			for _, lv := range e.gvec.sorted() {
				children[lv.value] = lv.v
			}
			obj[e.name] = children
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}

// Handler serves the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the expvar-style JSON dump.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}

// HealthHandler serves per-subsystem readiness: every HealthFunc
// registered on the registry runs, the JSON body reports each check
// ("ok" or the error text) plus an overall status, and the HTTP code
// is 200 only when every check passes (503 otherwise) — so load
// balancers and CI smoke loops can gate on the status line alone. A
// registry with no registered checks reports healthy.
func (r *Registry) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		names, fns := r.healthSnapshot()
		checks := make(map[string]string, len(names))
		healthy := true
		for i, name := range names {
			if err := fns[i](); err != nil {
				checks[name] = err.Error()
				healthy = false
			} else {
				checks[name] = "ok"
			}
		}
		status := "ok"
		code := http.StatusOK
		if !healthy {
			status = "unhealthy"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(struct {
			Status string            `json:"status"`
			Checks map[string]string `json:"checks"`
		}{Status: status, Checks: checks})
	})
}

// DebugMux builds the standard debug surface for a long-running
// process: /metrics (Prometheus), /healthz (readiness), /debug/vars
// (JSON), and the net/http/pprof handlers under /debug/pprof/.
// Handlers are registered explicitly so importing obs does not pollute
// http.DefaultServeMux.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/healthz", r.HealthHandler())
	mux.Handle("/debug/vars", r.JSONHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
