package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func populated() *Registry {
	r := NewRegistry()
	r.Counter("cdn_bytes_total", "bytes served by the CDN").Add(1024)
	r.Gauge("signal_swarm_peers", "connected peers").Set(12)
	r.GaugeFunc("customer_cost", "billed cost", func() float64 { return 2.5 })
	h := r.Histogram("job_latency_ns", "job latency")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	v := r.CounterVec("cdn_video_bytes_total", "per-video bytes", "video")
	v.With("news").Add(10)
	v.With("live").Add(20)
	gv := r.GaugeVec("signal_ring_owned_swarms", "swarms owned per server", "server")
	gv.With("s0").Set(4)
	gv.WithFunc("s1", func() float64 { return 6 })
	return r
}

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := populated().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE cdn_bytes_total counter",
		"cdn_bytes_total 1024",
		"# TYPE signal_swarm_peers gauge",
		"signal_swarm_peers 12",
		"# TYPE customer_cost gauge",
		"customer_cost 2.5",
		"# TYPE job_latency_ns summary",
		`job_latency_ns{quantile="0.5"}`,
		`job_latency_ns{quantile="0.99"}`,
		"job_latency_ns_count 100",
		"# TYPE cdn_video_bytes_total counter",
		`cdn_video_bytes_total{video="live"} 20`,
		`cdn_video_bytes_total{video="news"} 10`,
		"# TYPE signal_ring_owned_swarms gauge",
		`signal_ring_owned_swarms{server="s0"} 4`,
		`signal_ring_owned_swarms{server="s1"} 6`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Registration order is stable, so a second render is byte-identical.
	var sb2 strings.Builder
	reg := populated()
	_ = reg.WritePrometheus(&sb2)
	var sb3 strings.Builder
	_ = reg.WritePrometheus(&sb3)
	if sb2.String() != sb3.String() {
		t.Error("two renders of the same registry differ")
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := populated().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &obj); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if obj["cdn_bytes_total"].(float64) != 1024 {
		t.Fatalf("cdn_bytes_total = %v", obj["cdn_bytes_total"])
	}
	hist := obj["job_latency_ns"].(map[string]any)
	if hist["count"].(float64) != 100 {
		t.Fatalf("histogram count = %v", hist["count"])
	}
	vec := obj["cdn_video_bytes_total"].(map[string]any)
	if vec["live"].(float64) != 20 {
		t.Fatalf("vec live = %v", vec["live"])
	}
	gvec := obj["signal_ring_owned_swarms"].(map[string]any)
	if gvec["s0"].(float64) != 4 || gvec["s1"].(float64) != 6 {
		t.Fatalf("gauge vec = %v", gvec)
	}
}

func TestDebugMux(t *testing.T) {
	mux := DebugMux(populated())
	for path, want := range map[string]string{
		"/metrics":    "cdn_bytes_total 1024",
		"/debug/vars": `"signal_swarm_peers": 12`,
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("%s missing %q:\n%s", path, want, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/cmdline: status %d", rec.Code)
	}
}
