package obs

import (
	"math/bits"
	"sync/atomic"
)

// histSubBits gives each power-of-two octave 2^histSubBits sub-buckets,
// bounding the quantile error at ~1/2^histSubBits without any locking
// on the record path. This is the log-scale layout dispatch's latency
// histogram shipped with, generalized here so every subsystem shares
// one implementation.
const histSubBits = 3

// histBuckets covers values from 1 to beyond 2^63/2 — for nanosecond
// durations, from 1ns to beyond an hour.
const histBuckets = 64 << histSubBits

// Histogram is a lock-free log-scale histogram of non-negative int64
// values. All methods are safe for concurrent use; a nil *Histogram
// no-ops. The unit is the caller's — by convention the metric name
// carries it (_ns, _bytes).
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty histogram, for use outside a Registry
// (dispatch embeds one directly in its Metrics).
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the exact largest observed value (the buckets only bound
// it to ~12%, so it is tracked separately).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns the q-th quantile (0 < q <= 1) as the representative
// value of the bucket containing it; zero when nothing was observed.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= target {
			return bucketValue(i)
		}
	}
	return bucketValue(histBuckets - 1)
}

// bucketIndex maps a value to its bucket: exact below 2^histSubBits and
// geometric above, with 2^histSubBits sub-buckets per octave.
func bucketIndex(v uint64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	e := bits.Len64(v) - 1
	sub := (v >> uint(e-histSubBits)) & (1<<histSubBits - 1)
	idx := (e-histSubBits+1)<<histSubBits | int(sub)
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketValue returns a bucket's representative (midpoint) value.
func bucketValue(idx int) int64 {
	if idx < 1<<histSubBits {
		return int64(idx)
	}
	e := idx>>histSubBits + histSubBits - 1
	sub := uint64(idx & (1<<histSubBits - 1))
	width := uint64(1) << uint(e-histSubBits)
	base := uint64(1)<<uint(e) | sub*width
	return int64(base + width/2)
}
