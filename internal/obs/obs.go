// Package obs is the testbed's unified observability layer: a metrics
// registry (counters, gauges, log-scale histograms) with Prometheus
// text-format and expvar-style JSON exposition, and a lightweight span
// tracer whose clock is injectable so deterministic packages stay
// deterministic (netsim-domain spans stamp from netsim.Network's clock,
// process-domain spans from time.Now).
//
// The package is engineered around two constraints. First, it must be
// cheap enough to leave on: every hot-path instrument (Counter.Add,
// Histogram.Observe, Span.End) is lock-free or a single short critical
// section, and every handle is nil-safe — a component wired to a nil
// *Registry or nil *Tracer pays one predictable branch per operation
// and allocates nothing, so instrumentation does not fork the code
// paths it observes. Second, it must not perturb experiment output:
// nothing in obs feeds experiment results, and the tracer never reads
// a clock the caller didn't hand it.
//
// Metric names are part of the repo's public monitoring surface and are
// linted (pdnlint obsnames): names passed to the constructors below
// must be literal snake_case strings. See docs/observability.md for the
// naming conventions.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// kind discriminates registered metrics for exposition.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindCounterVec
	kindGaugeVec
)

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind kind

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
	vec       *CounterVec
	gvec      *GaugeVec
}

// Registry holds named metrics. Registration is idempotent by name:
// asking for an existing name returns the existing handle, which is how
// many peers sharing one registry aggregate into one set of counters.
// All methods are safe for concurrent use and safe on a nil receiver
// (they return nil handles whose operations no-op).
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string

	healthMu sync.Mutex
	health   map[string]HealthFunc
	horder   []string
}

// HealthFunc reports one subsystem's readiness: nil when healthy, an
// error describing why not. Funcs are evaluated on every /healthz
// request, so they must be cheap and safe for concurrent use.
type HealthFunc func() error

// RegisterHealth registers a named readiness check, surfaced by the
// DebugMux /healthz endpoint. Re-registering a name replaces its
// check. Nil-safe; a nil fn is ignored.
func (r *Registry) RegisterHealth(name string, fn HealthFunc) {
	if r == nil || fn == nil {
		return
	}
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	if r.health == nil {
		r.health = make(map[string]HealthFunc)
	}
	if _, ok := r.health[name]; !ok {
		r.horder = append(r.horder, name)
	}
	r.health[name] = fn
}

// healthSnapshot copies the registered checks in registration order so
// evaluation runs without holding the registry lock.
func (r *Registry) healthSnapshot() ([]string, []HealthFunc) {
	if r == nil {
		return nil, nil
	}
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	names := append([]string(nil), r.horder...)
	fns := make([]HealthFunc, len(names))
	for i, name := range names {
		fns[i] = r.health[name]
	}
	return names, fns
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// lookup returns the entry for name, creating it with make when absent.
// It panics if the name is already registered with a different kind —
// that is a programming error the first test run catches.
func (r *Registry) lookup(name, help string, k kind, make func(*entry)) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != k {
			panic("obs: metric " + name + " re-registered with a different kind")
		}
		return e
	}
	e := &entry{name: name, help: help, kind: k}
	make(e)
	r.entries[name] = e
	r.order = append(r.order, name)
	return e
}

// Counter returns the named monotonically-increasing counter,
// registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, func(e *entry) { e.counter = &Counter{} }).counter
}

// Gauge returns the named settable gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, func(e *entry) { e.gauge = &Gauge{} }).gauge
}

// GaugeFunc registers a callback gauge: fn is evaluated at exposition
// time. Use it to surface values a component already tracks (swarm
// size, bytes served) without double-counting on the hot path. The
// first registration of a name wins; later fns for the same name are
// ignored, matching the shared-registry aggregation model.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.lookup(name, help, kindGaugeFunc, func(e *entry) { e.gaugeFn = fn })
}

// Histogram returns the named log-scale histogram, registering it on
// first use. Values are int64 in whatever unit the name declares
// (convention: _ns for durations, _bytes for sizes).
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, func(e *entry) { e.histogram = NewHistogram() }).histogram
}

// CounterVec returns the named counter family partitioned by one label,
// registering it on first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounterVec, func(e *entry) {
		e.vec = &CounterVec{label: label, children: make(map[string]*Counter)}
	}).vec
}

// GaugeVec returns the named gauge family partitioned by one label,
// registering it on first use.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGaugeVec, func(e *entry) {
		e.gvec = &GaugeVec{label: label, children: make(map[string]*gaugeChild)}
	}).gvec
}

// snapshot copies the registered entries in registration order so
// exposition can render without holding the registry lock.
func (r *Registry) snapshot() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.entries[name])
	}
	return out
}

// Counter is a monotonically-increasing int64. The zero value is ready
// to use; a nil *Counter no-ops, so callers can hold handles from a nil
// registry without branching.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct {
	label    string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label value, creating it
// on first use. Nil-safe.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// gaugeChild is one member of a GaugeVec: either a settable gauge or a
// callback evaluated at exposition time, never both.
type gaugeChild struct {
	g  *Gauge
	fn func() float64
}

// value reads the child at exposition time.
func (c *gaugeChild) value() float64 {
	if c.fn != nil {
		return c.fn()
	}
	return float64(c.g.Value())
}

// GaugeVec is a family of gauges keyed by one label value. Each server
// in a federated signaling plane claims its own child, so one shared
// registry exposes per-server series (e.g. signal_ring_owned_swarms)
// without name collisions.
type GaugeVec struct {
	label    string
	mu       sync.Mutex
	children map[string]*gaugeChild
}

// With returns the settable child gauge for the given label value,
// creating it on first use. The first claim of a value wins: WithFunc
// followed by With for the same value returns a detached gauge whose
// writes are accepted but not exposed, mirroring GaugeFunc's
// first-registration-wins contract. Nil-safe.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &gaugeChild{g: &Gauge{}}
		v.children[value] = c
	}
	if c.g == nil {
		return &Gauge{}
	}
	return c.g
}

// WithFunc registers a callback child for the given label value,
// evaluated at exposition time. First registration of a value wins.
// Nil-safe.
func (v *GaugeVec) WithFunc(value string, fn func() float64) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.children[value]; !ok {
		v.children[value] = &gaugeChild{fn: fn}
	}
}

// gaugeLabelValue pairs one child's label value with its reading, for
// exposition.
type gaugeLabelValue struct {
	value string
	v     float64
}

// sorted returns the children as (value, reading) pairs in label order
// so exposition output is stable. Callback children are evaluated here,
// outside the family lock's critical section for writes but inside it
// for map access — callbacks must not re-enter the same GaugeVec.
func (v *GaugeVec) sorted() []gaugeLabelValue {
	v.mu.Lock()
	kids := make(map[string]*gaugeChild, len(v.children))
	for value, c := range v.children {
		kids[value] = c
	}
	v.mu.Unlock()
	out := make([]gaugeLabelValue, 0, len(kids))
	for value, c := range kids {
		out = append(out, gaugeLabelValue{value: value, v: c.value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

// labelValue pairs one child's label value with its count, for
// exposition.
type labelValue struct {
	value string
	count int64
}

// sorted returns the children as (value, count) pairs in label order so
// exposition output is stable.
func (v *CounterVec) sorted() []labelValue {
	v.mu.Lock()
	out := make([]labelValue, 0, len(v.children))
	for value, c := range v.children {
		out = append(out, labelValue{value: value, count: c.Value()})
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}
