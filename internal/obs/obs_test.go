package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("jobs_total", "jobs")
	b := r.Counter("jobs_total", "jobs")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if got := a.Value(); got != 3 {
		t.Fatalf("aggregated count = %d, want 3", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter held a value")
	}
	g := r.Gauge("b", "")
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge held a value")
	}
	r.GaugeFunc("c", "", func() float64 { return 1 })
	h := r.Histogram("d_ns", "")
	h.Observe(3)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram held observations")
	}
	v := r.CounterVec("e_total", "", "video")
	v.With("v1").Inc()
	if v.With("v1").Value() != 0 {
		t.Fatal("nil counter vec held a value")
	}
	gv := r.GaugeVec("f", "", "server")
	gv.With("s0").Set(3)
	gv.WithFunc("s1", func() float64 { return 9 })
	if gv.With("s0").Value() != 0 {
		t.Fatal("nil gauge vec held a value")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v len=%d", err, sb.Len())
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("peers", "")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("bytes_total", "", "video")
	v.With("b").Add(2)
	v.With("a").Add(1)
	v.With("b").Add(3)
	got := v.sorted()
	if len(got) != 2 || got[0].value != "a" || got[0].count != 1 || got[1].value != "b" || got[1].count != 5 {
		t.Fatalf("sorted = %+v", got)
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("ring_owned", "", "server")
	v.With("s1").Set(5)
	v.With("s0").Set(2)
	v.WithFunc("s2", func() float64 { return 7 })
	v.With("s1").Add(-1)
	got := v.sorted()
	if len(got) != 3 ||
		got[0].value != "s0" || got[0].v != 2 ||
		got[1].value != "s1" || got[1].v != 4 ||
		got[2].value != "s2" || got[2].v != 7 {
		t.Fatalf("sorted = %+v", got)
	}
	// First claim of a label value wins; a later With on a func child
	// returns a detached gauge rather than clobbering the callback.
	v.With("s2").Set(100)
	if got := v.sorted(); got[2].v != 7 {
		t.Fatalf("func child clobbered: %+v", got)
	}
	v.WithFunc("s0", func() float64 { return 100 })
	if got := v.sorted(); got[0].v != 2 {
		t.Fatalf("gauge child clobbered: %+v", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 500500 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 400 || p50 > 640 {
		t.Fatalf("p50 = %d, want within a bucket of 500", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900 || p99 > 1100 {
		t.Fatalf("p99 = %d, want within a bucket of 990", p99)
	}
	if h.Quantile(1) < p99 {
		t.Fatal("p100 below p99")
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5) // clamps to 0
	for i := int64(0); i < 1<<histSubBits; i++ {
		h.Observe(i)
	}
	// Below 2^histSubBits buckets are exact.
	if got := h.Quantile(1); got != (1<<histSubBits)-1 {
		t.Fatalf("p100 = %d, want %d", got, (1<<histSubBits)-1)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if h.Max() != 999 {
		t.Fatalf("max = %d, want 999", h.Max())
	}
}

func TestBucketRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 7, 8, 9, 100, 1 << 20, 1<<40 + 12345} {
		idx := bucketIndex(v)
		rep := bucketValue(idx)
		if v >= 1<<histSubBits {
			lo, hi := float64(v)*(1-2.0/(1<<histSubBits)), float64(v)*(1+2.0/(1<<histSubBits))
			if float64(rep) < lo || float64(rep) > hi {
				t.Fatalf("value %d: representative %d outside [%g, %g]", v, rep, lo, hi)
			}
		} else if rep != int64(v) {
			t.Fatalf("small value %d: representative %d not exact", v, rep)
		}
	}
}
