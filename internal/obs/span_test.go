package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xdeadbeefcafe0001, SpanID: 0x0123456789abcdef}
	enc := tc.String()
	if len(enc) != 55 {
		t.Fatalf("encoded length = %d, want 55 (%q)", len(enc), enc)
	}
	got, ok := ParseTraceContext(enc)
	if !ok || got != tc {
		t.Fatalf("round trip = %+v ok=%v, want %+v", got, ok, tc)
	}
	if (TraceContext{}).String() != "" {
		t.Fatal("invalid context encoded to non-empty string")
	}
	for _, bad := range []string{
		"",
		"00-x-y-01",
		"01-0000000000000000deadbeefcafe0001-0123456789abcdef-01", // unknown version
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace ID
		"00-0000000000000000deadbeefcafe0001-0000000000000000-01", // zero span ID
		"00-0000000000000000deadbeefcafe000g-0123456789abcdef-01", // bad hex
		strings.Repeat("0", 55),
	} {
		if _, ok := ParseTraceContext(bad); ok {
			t.Errorf("ParseTraceContext(%q) accepted garbage", bad)
		}
	}
	// Any flags byte is tolerated (sampled/unsampled both stitch).
	if _, ok := ParseTraceContext("00-0000000000000000deadbeefcafe0001-0123456789abcdef-00"); !ok {
		t.Error("flags byte 00 rejected")
	}
}

// TestSpanIDUniqueAcrossShards hammers one tracer from many goroutines
// (records land in all 16 shards) and checks that every minted span
// identifier is globally unique. Run under -race this also exercises
// the identifier counter and shard buffers for data races.
func TestSpanIDUniqueAcrossShards(t *testing.T) {
	tr := NewTracerSeeded(newFakeClock().now, "uniq", 42)
	const goroutines = 16
	const perG = 200
	ids := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx, sp := tr.StartSpan(context.Background(), "work")
				_, child := tr.StartSpan(ctx, "work_child")
				child.End()
				sp.End()
				ids[g] = append(ids[g], sp.TraceContext().SpanID, child.TraceContext().SpanID)
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool, goroutines*perG*2)
	for _, chunk := range ids {
		for _, id := range chunk {
			if id == 0 {
				t.Fatal("minted the reserved zero identifier")
			}
			if seen[id] {
				t.Fatalf("span ID %016x minted twice", id)
			}
			seen[id] = true
		}
	}
	if tr.Len() != goroutines*perG*2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), goroutines*perG*2)
	}
}

// TestDeterministicTraceIDs pins the reproducibility contract: the same
// (seed, proc) and the same seeded clock produce byte-identical JSONL,
// and a different seed produces different identifiers.
func TestDeterministicTraceIDs(t *testing.T) {
	render := func(seed int64) string {
		tr := NewTracerSeeded(newFakeClock().now, "viewer-1", seed)
		ctx, root := tr.StartSpan(context.Background(), "segment", A("idx", 0))
		_, child := tr.StartSpan(ctx, "p2p_request")
		child.End(A("found", true))
		root.End()
		var sb strings.Builder
		if err := tr.WriteJSONL(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := render(7), render(7)
	if a != b {
		t.Fatalf("same seed produced different JSONL:\n%s\n--\n%s", a, b)
	}
	if c := render(8); c == a {
		t.Fatal("different seeds produced identical identifier streams")
	}
}

func TestStartSpanChains(t *testing.T) {
	tr := NewTracerSeeded(newFakeClock().now, "p", 1)
	ctx, root := tr.StartSpan(context.Background(), "segment")
	cctx, child := tr.StartSpan(ctx, "p2p_request")
	if child.TraceContext().TraceID != root.TraceContext().TraceID {
		t.Fatal("child left its parent's trace")
	}
	if child.parent != root.TraceContext().SpanID {
		t.Fatal("child does not point at its parent span")
	}
	if enc := ContextString(cctx); enc == "" || enc != child.TraceContext().String() {
		t.Fatalf("ContextString = %q, want the child's encoding", enc)
	}
	if ContextString(context.Background()) != "" {
		t.Fatal("span-less context encoded non-empty")
	}
}

func TestStartSpanRemote(t *testing.T) {
	client := NewTracerSeeded(newFakeClock().now, "client", 1)
	server := NewTracerSeeded(newFakeClock().now, "server", 1)
	_, req := client.StartSpan(context.Background(), "segment")
	serve := server.StartSpanRemote(req.TraceContext().String(), "signal_join_serve")
	if serve.TraceContext().TraceID != req.TraceContext().TraceID {
		t.Fatal("remote span did not join the propagated trace")
	}
	if serve.parent != req.TraceContext().SpanID {
		t.Fatal("remote span does not point at the propagated parent")
	}
	// Two same-seed tracers differ by proc, so their streams stay
	// disjoint even when stitched into one trace.
	if serve.TraceContext().SpanID == req.TraceContext().SpanID {
		t.Fatal("client and server minted the same span identifier")
	}
	// Garbage starts a fresh root instead of corrupting stitching.
	fresh := server.StartSpanRemote("not-a-traceparent", "signal_join_serve")
	if fresh.TraceContext().TraceID == req.TraceContext().TraceID || fresh.parent != 0 {
		t.Fatalf("garbage propagation joined a trace: %+v", fresh.tc)
	}
	serve.End()
	fresh.End()
}

func TestTraceSetSharedStitching(t *testing.T) {
	set := NewTraceSet(newFakeClock().now, 3)
	if set.Tracer("a") != set.Tracer("a") {
		t.Fatal("same proc returned distinct tracers")
	}
	a, b := set.Tracer("a"), set.Tracer("b")
	_, root := a.StartSpan(context.Background(), "segment")
	b.StartSpanRemote(root.TraceContext().String(), "p2p_serve").End()
	root.End()
	var sb strings.Builder
	if err := set.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, `"pdnsec_trace_schema"`) != 2 {
		t.Fatalf("want one schema header per process:\n%s", out)
	}
	if strings.Count(out, root.TraceContext().TraceIDString()) < 2 {
		t.Fatalf("trace ID did not appear in both processes' records:\n%s", out)
	}
	var nilSet *TraceSet
	if nilSet.Tracer("x") != nil {
		t.Fatal("nil set returned a live tracer")
	}
	if err := nilSet.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
}
