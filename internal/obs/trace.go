package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Arg is one key/value annotation on a span or event.
type Arg struct {
	Key   string
	Value any
}

// A constructs an Arg.
func A(key string, value any) Arg { return Arg{Key: key, Value: value} }

// traceShards bounds contention on the record path: spans land in a
// round-robin shard, each with its own buffer and lock, approximating
// per-goroutine buffering without goroutine identity.
const traceShards = 16

// Tracer records spans and instant events with a caller-injected clock.
// A nil *Tracer no-ops on every method, so instrumented components can
// carry the handle unconditionally. The clock choice is what keeps the
// deterministic packages deterministic: components running on the
// simulated network are handed a tracer built on netsim.Network's
// clock, process-domain components one built on time.Now — the
// packages themselves never read a clock.
type Tracer struct {
	now    func() time.Time
	next   atomic.Uint64
	shards [traceShards]traceShard
}

type traceShard struct {
	mu     sync.Mutex
	events []traceEvent
}

// traceEvent is one buffered record. phase follows the Chrome
// trace-event convention: 'X' complete (duration) events, 'i' instants.
type traceEvent struct {
	name  string
	phase byte
	start int64 // clock reading at begin, UnixNano
	dur   int64 // nanoseconds ('X' only)
	tid   int   // buffer shard, stands in for a thread lane
	args  []Arg
}

// NewTracer builds a tracer stamping from now; nil now means time.Now
// (process-domain tracing).
func NewTracer(now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now}
}

// Span is an open interval started by Begin. The zero Span (from a nil
// tracer) is valid and End on it no-ops.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	args  []Arg
}

// Begin opens a span. The name must be a literal snake_case string
// (enforced by pdnlint obsnames); variable detail goes in args.
func (t *Tracer) Begin(name string, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: t.now(), args: args}
}

// End closes the span, appending args to those given at Begin.
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	end := s.t.now()
	all := s.args
	if len(args) > 0 {
		all = append(append([]Arg(nil), s.args...), args...)
	}
	s.t.record(traceEvent{
		name:  s.name,
		phase: 'X',
		start: s.start.UnixNano(),
		dur:   end.Sub(s.start).Nanoseconds(),
		args:  all,
	})
}

// Event records an instant.
func (t *Tracer) Event(name string, args ...Arg) {
	if t == nil {
		return
	}
	t.record(traceEvent{name: name, phase: 'i', start: t.now().UnixNano(), args: args})
}

func (t *Tracer) record(ev traceEvent) {
	n := t.next.Add(1) % traceShards
	ev.tid = int(n)
	shard := &t.shards[n]
	shard.mu.Lock()
	shard.events = append(shard.events, ev)
	shard.mu.Unlock()
}

// Len returns the number of buffered records.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += len(t.shards[i].events)
		t.shards[i].mu.Unlock()
	}
	return n
}

// drain copies all shards' events in start-time order.
func (t *Tracer) drainSorted() []traceEvent {
	var out []traceEvent
	for i := range t.shards {
		t.shards[i].mu.Lock()
		out = append(out, t.shards[i].events...)
		t.shards[i].mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out
}

// argsJSON renders args as a JSON object, preserving order.
func argsJSON(args []Arg) ([]byte, error) {
	if len(args) == 0 {
		return []byte("{}"), nil
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		k, err := json.Marshal(a.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(a.Value)
		if err != nil {
			return nil, err
		}
		b.Write(k)
		b.WriteByte(':')
		b.Write(v)
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// chromeLine renders one event as a Chrome trace-event object with
// microsecond timestamps relative to epoch (the earliest buffered
// start).
func chromeLine(ev traceEvent, epoch int64) ([]byte, error) {
	args, err := argsJSON(ev.args)
	if err != nil {
		return nil, err
	}
	name, err := json.Marshal(ev.name)
	if err != nil {
		return nil, err
	}
	ts := (ev.start - epoch) / 1000
	if ev.phase == 'X' {
		return []byte(fmt.Sprintf(`{"name":%s,"ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d,"args":%s}`,
			name, ts, ev.dur/1000, ev.tid, args)), nil
	}
	return []byte(fmt.Sprintf(`{"name":%s,"ph":"i","s":"g","ts":%d,"pid":1,"tid":%d,"args":%s}`,
		name, ts, ev.tid, args)), nil
}

// WriteChrome emits the buffer as a Chrome trace-event JSON array,
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	events := t.drainSorted()
	var epoch int64
	if len(events) > 0 {
		epoch = events[0].start
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		line, err := chromeLine(ev, epoch)
		if err != nil {
			return err
		}
		if i < len(events)-1 {
			line = append(line, ',')
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// WriteJSONL emits the buffer as one trace-event object per line —
// greppable, streamable, and still Perfetto-loadable (Perfetto accepts
// newline-separated trace events).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	events := t.drainSorted()
	var epoch int64
	if len(events) > 0 {
		epoch = events[0].start
	}
	for _, ev := range events {
		line, err := chromeLine(ev, epoch)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile flushes the buffer to path: ".jsonl" selects the JSONL
// form, anything else the Chrome JSON array.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = t.WriteJSONL(f)
	} else {
		err = t.WriteChrome(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// tracerKey carries a Tracer through a context.
type tracerKey struct{}

// WithTracer returns a context carrying t. Deterministic packages
// (analyzer, experiments) receive their tracer this way so their
// exported signatures stay stable and they never construct clocks.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the context's tracer, or nil — and nil is safe to
// call Begin/Event on, so call sites need no guard.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}
