package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Arg is one key/value annotation on a span or event.
type Arg struct {
	Key   string
	Value any
}

// A constructs an Arg.
func A(key string, value any) Arg { return Arg{Key: key, Value: value} }

// traceShards bounds contention on the record path: spans land in a
// round-robin shard, each with its own buffer and lock, approximating
// per-goroutine buffering without goroutine identity.
const traceShards = 16

// TraceSchema names the JSONL trace file format emitted by WriteJSONL.
// Every file opens with a metadata line carrying this version, so
// pdntrace can reject files written by an incompatible tracer instead
// of mis-stitching them.
const TraceSchema = "pdnsec-trace/1"

// TraceContext is the compact causal identity propagated across
// process boundaries: which trace a request belongs to and which span
// is its remote parent. It travels encoded in the W3C traceparent
// shape (version-traceid-spanid-flags) inside signaling messages, p2p
// want frames, and the CDN fallback's HTTP header. It carries only
// random 64-bit identifiers — never addresses or peer names — so
// propagating it is privacy-neutral by construction.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether both identifiers are set (0 is reserved as the
// absent value and never minted).
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 && tc.SpanID != 0 }

// String encodes the context in traceparent form, or "" when invalid.
// The 64-bit trace ID is zero-padded into the 128-bit field.
func (tc TraceContext) String() string {
	if !tc.Valid() {
		return ""
	}
	return fmt.Sprintf("00-%032x-%016x-01", tc.TraceID, tc.SpanID)
}

// TraceIDString renders just the trace identifier as 16 hex digits —
// the form trace files use and pdntrace indexes by — or "" when unset.
func (tc TraceContext) TraceIDString() string {
	if tc.TraceID == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", tc.TraceID)
}

// ParseTraceContext decodes a traceparent-form string. It tolerates
// any flags byte but rejects unknown versions, malformed hex, and
// zero identifiers, so a garbled or hostile propagation field simply
// starts a fresh trace instead of corrupting stitching.
func ParseTraceContext(s string) (TraceContext, bool) {
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, false
	}
	// The upper 64 bits of the 128-bit trace-id field must be valid hex
	// (we mint them as zero, but a foreign emitter may not).
	if _, err := strconv.ParseUint(s[3:19], 16, 64); err != nil {
		return TraceContext{}, false
	}
	tid, err := strconv.ParseUint(s[19:35], 16, 64)
	if err != nil {
		return TraceContext{}, false
	}
	sid, err := strconv.ParseUint(s[36:52], 16, 64)
	if err != nil {
		return TraceContext{}, false
	}
	if _, err := strconv.ParseUint(s[53:55], 16, 8); err != nil {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: tid, SpanID: sid}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// mix64 is the splitmix64 finalizer: a bijection on uint64, so
// distinct counter values under one seed can never collide, and the
// same seed always yields the same identifier stream.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64 hashes a process name into the seed domain (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// tracerSeq seeds tracers built without an explicit seed, so two
// NewTracer calls in one process still mint disjoint identifier
// streams. It is a plain construction counter — deterministic given
// construction order, no clock or global rand involved.
var tracerSeq atomic.Uint64

// Tracer records spans and instant events with a caller-injected clock.
// A nil *Tracer no-ops on every method, so instrumented components can
// carry the handle unconditionally. The clock choice is what keeps the
// deterministic packages deterministic: components running on the
// simulated network are handed a tracer built on netsim.Network's
// clock, process-domain components one built on time.Now — the
// packages themselves never read a clock.
//
// Span and trace identifiers come from a seeded bijective stream
// (mix64 over an atomic counter): unique within the tracer by
// construction, reproducible run-to-run for the same seed, and free of
// global randomness.
type Tracer struct {
	now    func() time.Time
	proc   string
	idSeed uint64
	ids    atomic.Uint64
	next   atomic.Uint64
	shards [traceShards]traceShard
}

type traceShard struct {
	mu     sync.Mutex
	events []traceEvent
}

// traceEvent is one buffered record. phase follows the Chrome
// trace-event convention: 'X' complete (duration) events, 'i' instants.
// trace/span/parent are 0 when the record predates causal tracing
// (plain Event calls) — the JSONL writer omits zero identifiers.
type traceEvent struct {
	name   string
	phase  byte
	start  int64 // clock reading at begin, UnixNano
	dur    int64 // nanoseconds ('X' only)
	tid    int   // buffer shard, stands in for a thread lane
	trace  uint64
	span   uint64
	parent uint64
	args   []Arg
}

// NewTracer builds a tracer stamping from now; nil now means time.Now
// (process-domain tracing). The process name defaults to "main" and
// the identifier seed to a construction counter; multi-process
// deployments that need per-process identity and seed control use
// NewTracerSeeded or a TraceSet.
func NewTracer(now func() time.Time) *Tracer {
	return NewTracerSeeded(now, "main", int64(tracerSeq.Add(1)))
}

// NewTracerSeeded builds a tracer whose trace files are stamped with
// proc (the process/peer identity pdntrace groups by) and whose
// span/trace identifiers derive deterministically from (seed, proc).
func NewTracerSeeded(now func() time.Time, proc string, seed int64) *Tracer {
	if now == nil {
		now = time.Now
	}
	if proc == "" {
		proc = "main"
	}
	return &Tracer{now: now, proc: proc, idSeed: mix64(uint64(seed) ^ fnv64(proc))}
}

// Proc returns the process identity stamped on this tracer's records.
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// newID mints the next identifier. mix64 is a bijection, so exactly
// one counter value maps to the reserved 0 — skip it and continue.
func (t *Tracer) newID() uint64 {
	for {
		if id := mix64(t.idSeed ^ t.ids.Add(1)); id != 0 {
			return id
		}
	}
}

// Span is an open interval started by Begin, StartSpan, or
// StartSpanRemote. The zero Span (from a nil tracer) is valid and End
// on it no-ops.
type Span struct {
	t      *Tracer
	name   string
	start  time.Time
	tc     TraceContext
	parent uint64
	args   []Arg
}

// Begin opens a root span: a fresh trace with no parent. The name must
// be a literal snake_case string (enforced by pdnlint obsnames);
// variable detail goes in args. Prefer StartSpan where a context is
// available, so the span joins its caller's trace instead of starting
// a new one.
func (t *Tracer) Begin(name string, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: t.now(), args: args,
		tc: TraceContext{TraceID: t.newID(), SpanID: t.newID()}}
}

// StartSpan opens a span as a child of the context's active span (or
// as a fresh root when the context carries none) and returns a derived
// context carrying the new span, so nested StartSpan calls chain into
// a tree.
func (t *Tracer) StartSpan(ctx context.Context, name string, args ...Arg) (context.Context, Span) {
	if t == nil {
		return ctx, Span{}
	}
	sp := Span{t: t, name: name, start: t.now(), args: args}
	if parent, ok := SpanFromContext(ctx); ok {
		sp.tc = TraceContext{TraceID: parent.tc.TraceID, SpanID: t.newID()}
		sp.parent = parent.tc.SpanID
	} else {
		sp.tc = TraceContext{TraceID: t.newID(), SpanID: t.newID()}
	}
	return ContextWithSpan(ctx, sp), sp
}

// StartSpanRemote opens a span whose parent arrived from another
// process as an encoded TraceContext (see TraceContext.String). An
// empty or malformed encoding starts a fresh root trace — a peer
// sending garbage can orphan its own spans but never corrupt local
// ones.
func (t *Tracer) StartSpanRemote(enc, name string, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	sp := Span{t: t, name: name, start: t.now(), args: args}
	if tc, ok := ParseTraceContext(enc); ok {
		sp.tc = TraceContext{TraceID: tc.TraceID, SpanID: t.newID()}
		sp.parent = tc.SpanID
	} else {
		sp.tc = TraceContext{TraceID: t.newID(), SpanID: t.newID()}
	}
	return sp
}

// TraceContext returns the span's causal identity, for propagation to
// the next hop.
func (s Span) TraceContext() TraceContext { return s.tc }

// End closes the span, appending args to those given at Begin.
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	end := s.t.now()
	all := s.args
	if len(args) > 0 {
		all = append(append([]Arg(nil), s.args...), args...)
	}
	s.t.record(traceEvent{
		name:   s.name,
		phase:  'X',
		start:  s.start.UnixNano(),
		dur:    end.Sub(s.start).Nanoseconds(),
		trace:  s.tc.TraceID,
		span:   s.tc.SpanID,
		parent: s.parent,
		args:   all,
	})
}

// Event records an instant attached to the span's trace (parented
// under the span), so e.g. a stall lands inside the segment fetch that
// stalled.
func (s Span) Event(name string, args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.record(traceEvent{
		name:   name,
		phase:  'i',
		start:  s.t.now().UnixNano(),
		trace:  s.tc.TraceID,
		parent: s.tc.SpanID,
		args:   args,
	})
}

// Event records a free-standing instant, outside any trace.
func (t *Tracer) Event(name string, args ...Arg) {
	if t == nil {
		return
	}
	t.record(traceEvent{name: name, phase: 'i', start: t.now().UnixNano(), args: args})
}

func (t *Tracer) record(ev traceEvent) {
	n := t.next.Add(1) % traceShards
	ev.tid = int(n)
	shard := &t.shards[n]
	shard.mu.Lock()
	shard.events = append(shard.events, ev)
	shard.mu.Unlock()
}

// Len returns the number of buffered records.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += len(t.shards[i].events)
		t.shards[i].mu.Unlock()
	}
	return n
}

// drain copies all shards' events in start-time order.
func (t *Tracer) drainSorted() []traceEvent {
	var out []traceEvent
	for i := range t.shards {
		t.shards[i].mu.Lock()
		out = append(out, t.shards[i].events...)
		t.shards[i].mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out
}

// argsJSON renders args as a JSON object, preserving order.
func argsJSON(args []Arg) ([]byte, error) {
	if len(args) == 0 {
		return []byte("{}"), nil
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		k, err := json.Marshal(a.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(a.Value)
		if err != nil {
			return nil, err
		}
		b.Write(k)
		b.WriteByte(':')
		b.Write(v)
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// chromeLine renders one event as a Chrome trace-event object with
// microsecond timestamps relative to epoch (the earliest buffered
// start).
func chromeLine(ev traceEvent, epoch int64) ([]byte, error) {
	args, err := argsJSON(ev.args)
	if err != nil {
		return nil, err
	}
	name, err := json.Marshal(ev.name)
	if err != nil {
		return nil, err
	}
	ts := (ev.start - epoch) / 1000
	if ev.phase == 'X' {
		return []byte(fmt.Sprintf(`{"name":%s,"ph":"X","ts":%d,"dur":%d,"pid":1,"tid":%d,"args":%s}`,
			name, ts, ev.dur/1000, ev.tid, args)), nil
	}
	return []byte(fmt.Sprintf(`{"name":%s,"ph":"i","s":"g","ts":%d,"pid":1,"tid":%d,"args":%s}`,
		name, ts, ev.tid, args)), nil
}

// jsonlLine renders one event in the pdnsec-trace/1 form: absolute
// microsecond timestamps (so files from different processes sharing a
// clock domain merge without epoch negotiation), the process identity,
// and the causal identifiers as 16-hex-digit strings (omitted when
// unset).
func jsonlLine(ev traceEvent, proc string) ([]byte, error) {
	args, err := argsJSON(ev.args)
	if err != nil {
		return nil, err
	}
	name, err := json.Marshal(ev.name)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, `{"name":%s,"ph":%q,"ts":%d`, name, string(ev.phase), ev.start/1000)
	if ev.phase == 'X' {
		fmt.Fprintf(&b, `,"dur":%d`, ev.dur/1000)
	} else {
		b.WriteString(`,"s":"g"`)
	}
	fmt.Fprintf(&b, `,"pid":1,"tid":%d,"proc":%q`, ev.tid, proc)
	if ev.trace != 0 {
		fmt.Fprintf(&b, `,"trace":"%016x"`, ev.trace)
	}
	if ev.span != 0 {
		fmt.Fprintf(&b, `,"span":"%016x"`, ev.span)
	}
	if ev.parent != 0 {
		fmt.Fprintf(&b, `,"parent":"%016x"`, ev.parent)
	}
	fmt.Fprintf(&b, `,"args":%s}`, args)
	return []byte(b.String()), nil
}

// writeJSONLHeader emits the schema metadata line that opens every
// pdnsec-trace/1 file.
func writeJSONLHeader(w io.Writer, proc string) error {
	_, err := fmt.Fprintf(w, `{"ph":"M","name":"pdnsec_trace_schema","pid":1,"tid":0,"args":{"schema":%q,"proc":%q}}`+"\n",
		TraceSchema, proc)
	return err
}

// WriteChrome emits the buffer as a Chrome trace-event JSON array,
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	events := t.drainSorted()
	var epoch int64
	if len(events) > 0 {
		epoch = events[0].start
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		line, err := chromeLine(ev, epoch)
		if err != nil {
			return err
		}
		if i < len(events)-1 {
			line = append(line, ',')
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// WriteJSONL emits the buffer in the pdnsec-trace/1 JSONL form: a
// schema metadata line, then one trace-event object per line —
// greppable, streamable, mergeable across processes, and the input
// format pdntrace stitches.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	if err := writeJSONLHeader(w, t.proc); err != nil {
		return err
	}
	for _, ev := range t.drainSorted() {
		line, err := jsonlLine(ev, t.proc)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// writeFileAtomic writes via a temp file in the destination directory
// and renames into place, so a crash mid-write leaves the previous
// file (or nothing) rather than a truncated one that downstream tools
// must special-case.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(f.Name(), path)
	}
	if err != nil {
		os.Remove(f.Name())
	}
	return err
}

// WriteFile flushes the buffer to path atomically (temp file + rename):
// ".jsonl" selects the pdnsec-trace/1 JSONL form, anything else the
// Chrome JSON array.
func (t *Tracer) WriteFile(path string) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".jsonl") {
			return t.WriteJSONL(w)
		}
		return t.WriteChrome(w)
	})
}

// TraceSet is a family of tracers sharing one clock and base seed, one
// per process identity — the handle a multi-process deployment (a
// federated signaling plane plus its viewers) threads through
// construction so every component traces under its own name but all
// files stitch. Each process's identifier stream is derived from
// (seed, proc), so two processes in one set can never mint colliding
// span identifiers for the same counter value, and a fixed seed
// reproduces every identifier run-to-run. Nil-safe like Tracer.
type TraceSet struct {
	now     func() time.Time
	seed    int64
	mu      sync.Mutex
	order   []string
	tracers map[string]*Tracer
}

// NewTraceSet builds a tracer family on the given clock (nil means
// time.Now) and identifier seed.
func NewTraceSet(now func() time.Time, seed int64) *TraceSet {
	if now == nil {
		now = time.Now
	}
	return &TraceSet{now: now, seed: seed, tracers: make(map[string]*Tracer)}
}

// Tracer returns the tracer for the given process identity, creating
// it on first use; later calls with the same proc return the same
// tracer. A nil set returns a nil (no-op) tracer.
func (ts *TraceSet) Tracer(proc string) *Tracer {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.tracers[proc]
	if !ok {
		t = NewTracerSeeded(ts.now, proc, ts.seed)
		ts.tracers[proc] = t
		ts.order = append(ts.order, proc)
	}
	return t
}

// snapshot copies the member tracers in creation order.
func (ts *TraceSet) snapshot() []*Tracer {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]*Tracer, 0, len(ts.order))
	for _, proc := range ts.order {
		out = append(out, ts.tracers[proc])
	}
	return out
}

// Len returns the total buffered records across all member tracers.
func (ts *TraceSet) Len() int {
	if ts == nil {
		return 0
	}
	n := 0
	for _, t := range ts.snapshot() {
		n += t.Len()
	}
	return n
}

// WriteJSONL emits every member tracer's buffer into one
// pdnsec-trace/1 stream: each process contributes its own schema
// header (pdntrace reads the proc from each, and from every data
// line) followed by its records.
func (ts *TraceSet) WriteJSONL(w io.Writer) error {
	if ts == nil {
		return nil
	}
	for _, t := range ts.snapshot() {
		if err := t.WriteJSONL(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile flushes the merged set to path atomically, always in the
// JSONL form (a multi-process file has no meaningful single-process
// Chrome rendering; pdntrace's -chrome export produces the stitched
// one).
func (ts *TraceSet) WriteFile(path string) error {
	if ts == nil {
		return nil
	}
	return writeFileAtomic(path, ts.WriteJSONL)
}

// tracerKey carries a Tracer through a context.
type tracerKey struct{}

// WithTracer returns a context carrying t. Deterministic packages
// (analyzer, experiments) receive their tracer this way so their
// exported signatures stay stable and they never construct clocks.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the context's tracer, or nil — and nil is safe to
// call Begin/Event on, so call sites need no guard.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// spanKey carries the active Span through a context.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp as the active span.
// StartSpan does this automatically; use it directly when re-entering
// a trace from a span created by StartSpanRemote.
func ContextWithSpan(ctx context.Context, sp Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the context's active span. ok is false when
// the context carries none (or a zero span from a nil tracer).
func SpanFromContext(ctx context.Context) (Span, bool) {
	sp, ok := ctx.Value(spanKey{}).(Span)
	return sp, ok && sp.tc.Valid()
}

// ContextString returns the active span's encoded TraceContext, or ""
// when the context carries none — exactly the value to stamp on an
// outgoing message's trace propagation field.
func ContextString(ctx context.Context) string {
	if sp, ok := SpanFromContext(ctx); ok {
		return sp.tc.String()
	}
	return ""
}
