package obs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic injectable clock advancing 1ms per read.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func TestTracerSpansAndEvents(t *testing.T) {
	tr := NewTracer(newFakeClock().now)
	sp := tr.Begin("dispatch_job", A("key", "k1"))
	sp.End(A("ok", true))
	tr.Event("stall", A("idx", 3))
	if got := tr.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	events := tr.drainSorted()
	if events[0].name != "dispatch_job" || events[0].phase != 'X' {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[0].dur != int64(time.Millisecond) {
		t.Fatalf("span dur = %d, want 1ms", events[0].dur)
	}
	if len(events[0].args) != 2 || events[0].args[1].Key != "ok" {
		t.Fatalf("span args = %+v", events[0].args)
	}
	if events[1].name != "stall" || events[1].phase != 'i' {
		t.Fatalf("second event = %+v", events[1])
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x")
	sp.End()
	tr.Event("y")
	if tr.Len() != 0 {
		t.Fatal("nil tracer buffered events")
	}
	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var arr []any
	if err := json.Unmarshal([]byte(sb.String()), &arr); err != nil || len(arr) != 0 {
		t.Fatalf("nil tracer chrome output: %v %q", err, sb.String())
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	tr := NewTracer(newFakeClock().now)
	for i := 0; i < 5; i++ {
		sp := tr.Begin("segment", A("idx", i))
		sp.End(A("source", "cdn"))
	}
	tr.Event("slow_start_exit")
	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &arr); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(arr) != 6 {
		t.Fatalf("events = %d, want 6", len(arr))
	}
	// Earliest event is the epoch: ts 0, relative µs thereafter.
	if arr[0]["ts"].(float64) != 0 {
		t.Fatalf("first ts = %v, want 0", arr[0]["ts"])
	}
	for _, ev := range arr {
		switch ev["ph"] {
		case "X":
			if ev["dur"].(float64) <= 0 {
				t.Fatalf("span with non-positive dur: %v", ev)
			}
		case "i":
			if ev["s"] != "g" {
				t.Fatalf("instant without global scope: %v", ev)
			}
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
		if ev["pid"].(float64) != 1 {
			t.Fatalf("pid = %v", ev["pid"])
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(newFakeClock().now)
	tr.Begin("a").End()
	tr.Event("b")
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (schema header + 2 events)", len(lines))
	}
	var header map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("header %q: %v", lines[0], err)
	}
	if header["ph"] != "M" {
		t.Fatalf("first line is not the schema header: %q", lines[0])
	}
	if args, _ := header["args"].(map[string]any); args == nil || args["schema"] != TraceSchema {
		t.Fatalf("header schema = %v, want %q", header["args"], TraceSchema)
	}
	for _, line := range lines[1:] {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if obj["proc"] != "main" {
			t.Fatalf("line missing proc identity: %q", line)
		}
	}
}

func TestWriteFileDispatch(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer(newFakeClock().now)
	tr.Begin("a").End()
	jsonl := filepath.Join(dir, "out.jsonl")
	chrome := filepath.Join(dir, "out.json")
	if err := tr.WriteFile(jsonl); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteFile(chrome); err != nil {
		t.Fatal(err)
	}
	readFirst := func(path string) byte {
		b, err := os.ReadFile(path)
		if err != nil || len(b) == 0 {
			t.Fatalf("read %s: %v", path, err)
		}
		return b[0]
	}
	if readFirst(jsonl) != '{' {
		t.Error("jsonl file does not start with an object")
	}
	if readFirst(chrome) != '[' {
		t.Error("chrome file does not start with an array")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(nil) // real clock: concurrency only, no determinism claim
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Begin("work", A("i", i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 800 {
		t.Fatalf("Len = %d, want 800", got)
	}
	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &arr); err != nil {
		t.Fatalf("concurrent chrome output invalid: %v", err)
	}
}

func TestContextCarrier(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context returned a tracer")
	}
	// Nil from an empty context must still be safe to use.
	FromContext(context.Background()).Event("noop")
	tr := NewTracer(newFakeClock().now)
	ctx := WithTracer(context.Background(), tr)
	FromContext(ctx).Event("carried")
	if tr.Len() != 1 {
		t.Fatal("event via context did not reach the tracer")
	}
}
