package pdnclient

import "sync"

// segmentCache is the SDK's in-memory segment store — the browser-cache
// analogue the paper notes is same-origin protected and short-lived.
// It evicts the oldest (lowest-index) segment beyond its capacity and
// reports its footprint to the resource meter.
type segmentCache struct {
	mu       sync.Mutex
	max      int
	segments map[int][]byte
	total    int64
	onSize   func(int64)
}

func newSegmentCache(max int, onSize func(int64)) *segmentCache {
	return &segmentCache{
		max:      max,
		segments: make(map[int][]byte, max),
		onSize:   onSize,
	}
}

// put stores a segment, evicting the lowest index if over capacity.
func (c *segmentCache) put(idx int, data []byte) {
	c.mu.Lock()
	if old, ok := c.segments[idx]; ok {
		c.total -= int64(len(old))
	}
	c.segments[idx] = data
	c.total += int64(len(data))
	for len(c.segments) > c.max {
		lowest := -1
		for i := range c.segments {
			if lowest < 0 || i < lowest {
				lowest = i
			}
		}
		c.total -= int64(len(c.segments[lowest]))
		delete(c.segments, lowest)
	}
	total := c.total
	cb := c.onSize
	c.mu.Unlock()
	if cb != nil {
		cb(total)
	}
}

// get returns a cached segment.
func (c *segmentCache) get(idx int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.segments[idx]
	return data, ok
}

// indices returns the cached segment indices.
func (c *segmentCache) indices() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.segments))
	for i := range c.segments {
		out = append(out, i)
	}
	return out
}

// size returns the cache footprint in bytes.
func (c *segmentCache) size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}
