package pdnclient

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

// TestStallCounterWhenCDNVanishes drives the stall path directly: the
// CDN disappears after the first segment plays, every remaining fetch
// fails fast, and pdn_stalls_total records each skipped segment.
func TestStallCounterWhenCDNVanishes(t *testing.T) {
	video := smallVideo("bbb", 4)
	tb := newTestbed(t, provider.Peer5(), video)
	reg := obs.NewRegistry()

	cfg := tb.peerConfig(t)
	cfg.DisableP2P = true // isolate the player's CDN path
	cfg.Obs = reg
	cdnIP := netip.MustParseAddr("93.184.216.34")
	var once sync.Once
	cfg.OnSegment = func(k media.SegmentKey, data []byte, source string) {
		once.Do(func() { tb.net.Isolate(cdnIP) })
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := p.Run(ctx); err == nil {
		t.Fatal("playlist refetch against a vanished CDN should fail the run")
	}
	if got := reg.Counter("pdn_stalls_total", "").Value(); got != 3 {
		t.Fatalf("pdn_stalls_total = %d, want 3 (segments 1..3 unfetchable)", got)
	}
	if got := reg.Counter("pdn_segments_cdn_total", "").Value(); got != 1 {
		t.Fatalf("pdn_segments_cdn_total = %d, want 1", got)
	}
}

// TestIMRejectFallsBackToCDN asserts the rejection→fallback pipeline on
// the counters themselves: a polluted seeder feeds bad bytes, the hash
// manifest rejects them (pdn_im_rejects_total), every reject re-fetches
// from the CDN (pdn_cdn_fallbacks_total), and playback still completes
// with clean segments only.
func TestIMRejectFallsBackToCDN(t *testing.T) {
	video := smallVideo("bbb", 6)
	tb := newTestbed(t, provider.Peer5(), video)
	stop := pollutedSeeder(t, tb, []int{3, 4})
	defer stop()
	reg := obs.NewRegistry()

	cfg := tb.peerConfig(t)
	cfg.VerifyHashManifest = true
	cfg.Obs = reg
	var mu sync.Mutex
	corrupt := 0
	cfg.OnSegment = func(k media.SegmentKey, data []byte, source string) {
		if !video.Verify(k.Rendition, k.Index, data) {
			mu.Lock()
			corrupt++
			mu.Unlock()
		}
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsPlayed != 6 {
		t.Fatalf("victim should complete playback via CDN fallback: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if corrupt != 0 {
		t.Fatalf("%d corrupt segments reached playback", corrupt)
	}
	rejects := reg.Counter("pdn_im_rejects_total", "").Value()
	fallbacks := reg.Counter("pdn_cdn_fallbacks_total", "").Value()
	if rejects == 0 {
		t.Fatalf("polluted P2P bytes never rejected (stats %+v)", st)
	}
	if fallbacks < rejects {
		t.Fatalf("pdn_cdn_fallbacks_total = %d < pdn_im_rejects_total = %d: a reject did not fall back", fallbacks, rejects)
	}
	if got := reg.Counter("pdn_stalls_total", "").Value(); got != 0 {
		t.Fatalf("pdn_stalls_total = %d, want 0 (fallback must prevent stalls)", got)
	}
}
