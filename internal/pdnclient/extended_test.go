package pdnclient

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/capture"
	"github.com/stealthy-peers/pdnsec/internal/cdn"
	"github.com/stealthy-peers/pdnsec/internal/defense"
	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/provider"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// runSeeder starts a lingering seeder and waits until it has played all
// segments; the returned stop function ends it and yields final stats.
func runSeeder(t *testing.T, cfg Config, segments int) func() Stats {
	t.Helper()
	cfg.MaxSegments = segments
	cfg.Linger = time.Minute
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	done := make(chan Stats, 1)
	go func() {
		st, _ := p.Run(ctx)
		done <- st
	}()
	waitFor(t, 30*time.Second, func() bool { return p.Stats().SegmentsPlayed >= segments })
	return func() Stats {
		p.StopLinger()
		st := <-done
		cancel()
		return st
	}
}

func TestTURNModeLeaksNothing(t *testing.T) {
	tb := newTestbed(t, provider.Peer5(), smallVideo("bbb", 6))

	relayHost := tb.net.MustHost(netip.MustParseAddr("50.50.50.50"))
	relay := defense.NewTURNRelay()
	if err := relay.Serve(relayHost, 3479); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { relay.Close() })
	relayAddr := netip.MustParseAddrPort("50.50.50.50:3479")

	cfgA := tb.peerConfig(t)
	cfgA.TURNAddr = relayAddr
	recA := capture.NewRecorder(0)
	cfgA.Host.AddTap(recA.Tap)
	stopA := runSeeder(t, cfgA, 6)

	cfgB := tb.peerConfig(t)
	cfgB.TURNAddr = relayAddr
	pb, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stB, err := pb.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stA := stopA()

	if stB.FromP2P == 0 {
		t.Fatalf("TURN-relayed P2P delivered nothing: %+v", stB)
	}
	if stA.P2PUpBytes != stB.P2PDownBytes {
		t.Fatalf("relayed accounting mismatch: up %d, down %d", stA.P2PUpBytes, stB.P2PDownBytes)
	}
	if relay.RelayedBytes() == 0 {
		t.Fatal("relay carried no bytes")
	}
	// A's capture never contains B's address: only the CDN, the
	// signaling server, and the relay.
	allowed := map[netip.Addr]bool{
		cfgA.Host.Addr():                     true,
		netip.MustParseAddr("50.50.50.50"):   true,
		netip.MustParseAddr("44.1.1.1"):      true,
		netip.MustParseAddr("93.184.216.34"): true,
	}
	for _, pkt := range recA.Packets() {
		for _, a := range []netip.Addr{pkt.Src.Addr(), pkt.Dst.Addr()} {
			if !allowed[a] {
				t.Fatalf("peer A observed foreign address %v over TURN", a)
			}
		}
	}
}

func TestUploadBudgetStopsServing(t *testing.T) {
	video := smallVideo("bbb", 6)
	tb := newTestbed(t, provider.Peer5(), video)
	// Redeploy with a tight upload budget: roughly two segments.
	tb.dep.Close()
	pol := signal.DefaultPolicy()
	pol.MaxUploadBytes = int64(2 * 32 << 10)
	sigHost := tb.net.Host(netip.MustParseAddr("44.1.1.1"))
	_ = sigHost
	// Simpler: use a fresh testbed with a policy override.
	tb2 := newTestbedWithPolicy(t, provider.Peer5(), video, &pol)

	cfgA := tb2.peerConfig(t)
	stopA := runSeeder(t, cfgA, 6)

	cfgB := tb2.peerConfig(t)
	pb, _ := New(cfgB)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stB, err := pb.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stA := stopA()

	if stA.P2PUpBytes > pol.MaxUploadBytes+int64(32<<10) {
		t.Fatalf("seeder uploaded %d, budget %d", stA.P2PUpBytes, pol.MaxUploadBytes)
	}
	if stB.SegmentsPlayed != 6 {
		t.Fatalf("viewer must complete via CDN fallback: %+v", stB)
	}
	if stB.FromCDN < 4 {
		t.Fatalf("budget should force CDN fallback: %+v", stB)
	}
}

// newTestbedWithPolicy deploys a provider with a policy override.
func newTestbedWithPolicy(t *testing.T, prof provider.Profile, video *media.Video, pol *signal.Policy) *testbed {
	t.Helper()
	n := netsim.New(netsim.Config{})
	cdnHost := n.MustHost(netip.MustParseAddr("93.185.216.34"))
	cdnSrv := cdn.New()
	cdnSrv.Register(video)
	if err := cdnSrv.Serve(cdnHost, 80); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cdnSrv.Close() })
	sigHost := n.MustHost(netip.MustParseAddr("44.2.2.2"))
	dep, err := provider.Deploy(context.Background(), prof, sigHost, provider.Options{Seed: 42, PolicyOverride: pol})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	tb := &testbed{net: n, cdnSrv: cdnSrv, cdnBase: "http://93.185.216.34:80", dep: dep, video: video}
	if prof.Public {
		tb.key = dep.IssueKey("customer.com")
	}
	return tb
}

func TestLiveStreamPlayback(t *testing.T) {
	const segBytes = 16 << 10
	video := &media.Video{
		ID:              "live-ch",
		Renditions:      []media.Rendition{{Name: "360p", Bandwidth: segBytes * 8 / 10, SegmentBytes: segBytes}},
		Segments:        100,
		SegmentDuration: 10,
		Live:            true,
	}
	tb := newTestbed(t, provider.Peer5(), video)
	// Advance the live clock so a window exists, then keep it moving.
	base := time.Now().Add(-60 * time.Second) // edge at segment 6
	tb.cdnSrv.SetClock(func() time.Time { return time.Now().Add(time.Now().Sub(base) * 4) })

	cfg := tb.peerConfig(t)
	cfg.MaxSegments = 8
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsPlayed != 8 {
		t.Fatalf("live playback played %d/8 segments", st.SegmentsPlayed)
	}
}

func TestPacketLossStillConnects(t *testing.T) {
	// 10% UDP loss: ICE retransmits and still nominates a pair.
	const segBytes = 16 << 10
	video := smallVideo("bbb", 6)
	n := netsim.New(netsim.Config{LossProb: 0.10, Seed: 3})
	cdnHost := n.MustHost(netip.MustParseAddr("93.184.216.34"))
	cdnSrv := cdn.New()
	cdnSrv.Register(video)
	if err := cdnSrv.Serve(cdnHost, 80); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cdnSrv.Close() })
	sigHost := n.MustHost(netip.MustParseAddr("44.1.1.1"))
	dep, err := provider.Deploy(context.Background(), provider.Peer5(), sigHost, provider.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	tb := &testbed{net: n, cdnSrv: cdnSrv, cdnBase: "http://93.184.216.34:80", dep: dep, video: video, key: dep.IssueKey("customer.com")}
	_ = segBytes

	cfgA := tb.peerConfig(t)
	stopA := runSeeder(t, cfgA, 6)
	cfgB := tb.peerConfig(t)
	pb, _ := New(cfgB)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	stB, err := pb.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stopA()
	if stB.SegmentsPlayed != 6 {
		t.Fatalf("lossy network: played %d/6", stB.SegmentsPlayed)
	}
	if stB.FromP2P == 0 {
		t.Fatalf("ICE should survive 10%% loss and still deliver P2P: %+v", stB)
	}
}

func TestThreePeerSwarmConvergence(t *testing.T) {
	video := smallVideo("bbb", 8)
	tb := newTestbed(t, provider.Peer5(), video)

	cfgA := tb.peerConfig(t)
	stopA := runSeeder(t, cfgA, 8)

	// Two later viewers join concurrently; both should finish and at
	// least one should pull from P2P.
	results := make(chan Stats, 2)
	for i := 0; i < 2; i++ {
		cfg := tb.peerConfig(t)
		cfg.Linger = 2 * time.Second
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			st, _ := p.Run(ctx)
			results <- st
		}()
	}
	totalP2P := 0
	for i := 0; i < 2; i++ {
		st := <-results
		if st.SegmentsPlayed != 8 {
			t.Fatalf("viewer played %d/8: %+v", st.SegmentsPlayed, st)
		}
		totalP2P += st.FromP2P
	}
	stopA()
	if totalP2P == 0 {
		t.Fatal("no P2P in a three-peer swarm")
	}
}

func TestNATedViewersExchangeViaSrflx(t *testing.T) {
	video := smallVideo("bbb", 6)
	tb := newTestbed(t, provider.Peer5(), video)

	natA := tb.net.MustNAT(netip.MustParseAddr("5.5.5.5"), netsim.NATFullCone)
	hostA := natA.MustHost(netip.MustParseAddr("192.168.10.2"))
	cfgA := tb.peerConfig(t)
	cfgA.Host = hostA
	stopA := runSeeder(t, cfgA, 6)

	natB := tb.net.MustNAT(netip.MustParseAddr("6.6.6.6"), netsim.NATFullCone)
	hostB := natB.MustHost(netip.MustParseAddr("192.168.20.2"))
	cfgB := tb.peerConfig(t)
	cfgB.Host = hostB
	pb, _ := New(cfgB)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stB, err := pb.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stopA()
	if stB.FromP2P == 0 {
		t.Fatalf("NATed viewers should connect via srflx candidates: %+v", stB)
	}
}

func TestGracefulDegradeWhenPDNBlocked(t *testing.T) {
	// The paper's reference [16]: viewers block the PDN server's domain
	// (AdblockPlus filter against Douyu). The SDK must degrade to plain
	// CDN playback rather than break the video.
	tb := newTestbed(t, provider.Peer5(), smallVideo("bbb", 4))
	cfg := tb.peerConfig(t)
	cfg.SignalAddr = netip.MustParseAddrPort("10.66.66.66:443") // blocked/blackholed
	cfg.GracefulDegrade = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := p.Run(ctx)
	if err != nil {
		t.Fatalf("degraded viewer should still play: %v", err)
	}
	if st.SegmentsPlayed != 4 || st.FromCDN != 4 || st.FromP2P != 0 {
		t.Fatalf("degraded stats %+v", st)
	}
	if tb.dep.Server.PeerCount() != 0 {
		t.Fatal("blocked viewer must not appear in the swarm")
	}
}

func TestSwarmScale(t *testing.T) {
	if testing.Short() {
		t.Skip("swarm scale test skipped in -short mode")
	}
	video := smallVideo("bbb", 6)
	tb := newTestbed(t, provider.Peer5(), video)

	cfgSeed := tb.peerConfig(t)
	stopSeed := runSeeder(t, cfgSeed, 6)

	const viewers = 12
	results := make(chan Stats, viewers)
	for i := 0; i < viewers; i++ {
		cfg := tb.peerConfig(t)
		cfg.Linger = 3 * time.Second
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			st, _ := p.Run(ctx)
			results <- st
			p.StopLinger()
		}()
		time.Sleep(50 * time.Millisecond)
	}
	totalP2P, totalCDN := 0, 0
	for i := 0; i < viewers; i++ {
		st := <-results
		if st.SegmentsPlayed != 6 {
			t.Fatalf("viewer %d played %d/6", i, st.SegmentsPlayed)
		}
		totalP2P += st.FromP2P
		totalCDN += st.FromCDN
	}
	stopSeed()
	offload := float64(totalP2P) / float64(totalP2P+totalCDN)
	t.Logf("swarm of %d: %d P2P, %d CDN segments (%.0f%% offload)", viewers, totalP2P, totalCDN, offload*100)
	if offload < 0.3 {
		t.Fatalf("swarm offload %.2f too low; the PDN is not doing its job", offload)
	}
}

func TestPeriodicStatsReportDeltas(t *testing.T) {
	video := smallVideo("bbb", 6)
	tb := newTestbed(t, provider.Peer5(), video)

	cfgA := tb.peerConfig(t)
	cfgA.StatsInterval = 50 * time.Millisecond
	stopA := runSeeder(t, cfgA, 6)

	cfgB := tb.peerConfig(t)
	cfgB.StatsInterval = 50 * time.Millisecond
	pb, _ := New(cfgB)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stB, err := pb.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stA := stopA()

	// Periodic + final reports must sum to exactly the session totals:
	// deltas, not cumulative re-sends.
	waitFor(t, 5*time.Second, func() bool {
		u := tb.dep.Keys.Usage("customer.com")
		want := stA.P2PUpBytes + stA.P2PDownBytes + stB.P2PUpBytes + stB.P2PDownBytes
		return u.P2PBytes == want
	})
}
