package pdnclient

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/cdn"
	"github.com/stealthy-peers/pdnsec/internal/netsim"
	"github.com/stealthy-peers/pdnsec/internal/obs"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

// newFederatedTestbed deploys a multi-server signaling plane with a CDN
// and one video, mirroring newTestbed for the federated topology.
func newFederatedTestbed(t *testing.T, servers int) *testbed {
	t.Helper()
	video := smallVideo("bbb", 4)
	n := netsim.New(netsim.Config{})

	cdnHost := n.MustHost(netip.MustParseAddr("93.184.216.34"))
	cdnSrv := cdn.New()
	cdnSrv.Register(video)
	if err := cdnSrv.Serve(cdnHost, 80); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cdnSrv.Close() })

	sigHost := n.MustHost(netip.MustParseAddr("44.1.1.1"))
	extra := make([]*netsim.Host, servers-1)
	for i := range extra {
		extra[i] = n.MustHost(netip.AddrFrom4([4]byte{44, 1, 1, byte(i + 2)}))
	}
	dep, err := provider.Deploy(context.Background(), provider.Peer5(), sigHost,
		provider.Options{Seed: 42, Servers: servers, SignalHosts: extra})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })

	tb := &testbed{
		net:     n,
		cdnSrv:  cdnSrv,
		cdnBase: "http://93.184.216.34:80",
		dep:     dep,
		video:   video,
	}
	tb.key = dep.IssueKey("customer.com")
	return tb
}

// TestReconnectReResolvesBootstrapList is the federation regression
// test for the client side: a viewer whose admitting server crashes
// must NOT retry the pinned address forever — the reconnect path runs
// the full bootstrap resolution again, so the peerstore backs off the
// dead server, a survivor answers, and the session resumes under the
// new owner's namespace.
func TestReconnectReResolvesBootstrapList(t *testing.T) {
	tb := newFederatedTestbed(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	reg := obs.NewRegistry()
	cfg := tb.peerConfig(t)
	cfg.SignalAddrs = tb.dep.SignalAddrs
	cfg.Linger = 45 * time.Second
	cfg.Obs = reg
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(ctx)
		done <- err
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})

	peerID := func() string {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.peerID
	}
	deadline := time.Now().Add(30 * time.Second)
	for peerID() == "" {
		if time.Now().After(deadline) {
			t.Fatal("viewer never joined the swarm")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the admitting server — the owner of the viewer's swarm.
	swarmID := tb.video.ID + "/360p"
	owner := tb.dep.Plane.Owner(swarmID)
	if !strings.HasPrefix(peerID(), owner+"p") {
		t.Fatalf("peer ID %q not in owner %s's namespace", peerID(), owner)
	}
	var idx int
	if _, err := fmt.Sscanf(owner, "s%d", &idx); err != nil {
		t.Fatalf("bad owner name %q", owner)
	}
	if err := tb.dep.Plane.Fail(idx); err != nil {
		t.Fatal(err)
	}
	newOwner := tb.dep.Plane.Owner(swarmID)
	if newOwner == owner {
		t.Fatalf("ring did not move the swarm off dead %s", owner)
	}

	// The reconnect loop must re-resolve through the peerstore and come
	// back under the new owner, bumping the reconnect counter.
	deadline = time.Now().Add(30 * time.Second)
	for !strings.HasPrefix(peerID(), newOwner+"p") {
		if time.Now().After(deadline) {
			t.Fatalf("viewer never rejoined under new owner %s; still %q", newOwner, peerID())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The counter bumps just after the rejoin installs the new session;
	// give it a beat rather than racing that window.
	reconnects := reg.Counter("pdn_signal_reconnects_total", "")
	deadline = time.Now().Add(5 * time.Second)
	for reconnects.Value() < 1 {
		if time.Now().After(deadline) {
			t.Errorf("pdn_signal_reconnects_total = %d, want >= 1", reconnects.Value())
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tb.dep.PeerCount() != 1 {
		t.Errorf("plane-wide peer count = %d, want 1", tb.dep.PeerCount())
	}
}
