package pdnclient

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/mitm"
	"github.com/stealthy-peers/pdnsec/internal/provider"
)

// pollutedSeeder stands up a fake CDN + malicious seeder polluting the
// given segment indices and returns a stop function.
func pollutedSeeder(t *testing.T, tb *testbed, indices []int) func() {
	t.Helper()
	fakeHost := tb.net.MustHost(netip.MustParseAddr("13.13.13.13"))
	fake := mitm.NewFakeCDN(fakeHost, tb.cdnBase, mitm.SameSizePollution(indices))
	if err := fake.Serve(fakeHost, 80); err != nil {
		t.Fatal(err)
	}
	cfg := tb.peerConfig(t)
	cfg.CDNBase = "http://13.13.13.13:80"
	stop := runSeeder(t, cfg, tb.video.Segments)
	return func() {
		stop()
		fake.Close()
	}
}

func TestHashManifestBlocksPollution(t *testing.T) {
	video := smallVideo("bbb", 6)
	tb := newTestbed(t, provider.Peer5(), video)
	stop := pollutedSeeder(t, tb, []int{3, 4})
	defer stop()

	// Victim with the hash-manifest defense: all P2P segments verified
	// against the CDN-published hash list.
	cfg := tb.peerConfig(t)
	cfg.VerifyHashManifest = true
	var mu sync.Mutex
	var polluted []media.SegmentKey
	cfg.OnSegment = func(k media.SegmentKey, data []byte, source string) {
		if !video.Verify(k.Rendition, k.Index, data) {
			mu.Lock()
			polluted = append(polluted, k)
			mu.Unlock()
		}
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(polluted) != 0 {
		t.Fatalf("hash manifest failed to block pollution: %v", polluted)
	}
	if st.SegmentsPlayed != 6 {
		t.Fatalf("victim should complete playback: %+v", st)
	}
	if st.IMRejected == 0 {
		t.Fatalf("polluted P2P segments should have been rejected: %+v", st)
	}
}

func TestHashManifestCostsCDNBytes(t *testing.T) {
	video := smallVideo("bbb", 6)
	tb := newTestbed(t, provider.Peer5(), video)

	// Baseline viewer without the defense.
	base := tb.cdnSrv.BytesServed(video.ID)
	cfgPlain := tb.peerConfig(t)
	p1, _ := New(cfgPlain)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := p1.Run(ctx); err != nil {
		t.Fatal(err)
	}
	plainBytes := tb.cdnSrv.BytesServed(video.ID) - base

	// Viewer with the defense: strictly more CDN bytes (the hash list),
	// even with zero attackers — the §V-B cost argument.
	mid := tb.cdnSrv.BytesServed(video.ID)
	cfgHash := tb.peerConfig(t)
	cfgHash.VerifyHashManifest = true
	p2, _ := New(cfgHash)
	if _, err := p2.Run(ctx); err != nil {
		t.Fatal(err)
	}
	hashBytes := tb.cdnSrv.BytesServed(video.ID) - mid

	if hashBytes <= plainBytes {
		t.Fatalf("hash-manifest viewer should cost more CDN bytes: %d vs %d", hashBytes, plainBytes)
	}
}

func TestHashManifestUnavailableDegradesGracefully(t *testing.T) {
	// Live assets have no hash list; the viewer still plays.
	const segBytes = 16 << 10
	video := &media.Video{
		ID:              "live-ch",
		Renditions:      []media.Rendition{{Name: "360p", Bandwidth: segBytes * 8 / 10, SegmentBytes: segBytes}},
		Segments:        100,
		SegmentDuration: 10,
		Live:            true,
	}
	tb := newTestbed(t, provider.Peer5(), video)
	base := time.Now().Add(-120 * time.Second)
	tb.cdnSrv.SetClock(func() time.Time { return time.Now().Add(time.Now().Sub(base) * 4) })

	cfg := tb.peerConfig(t)
	cfg.VerifyHashManifest = true
	cfg.MaxSegments = 4
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := p.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsPlayed != 4 {
		t.Fatalf("live playback with unavailable hash list: %+v", st)
	}
}
