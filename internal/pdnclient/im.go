package pdnclient

import (
	"context"
	"crypto/ed25519"
	"encoding/hex"

	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/secure"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// reportIM submits integrity metadata for a CDN-fetched segment — the
// client half of the §V-B peer-assisted integrity-checking defense. A
// peer only ever reports IMs for segments it downloaded directly from
// the CDN; P2P-delivered segments are verified instead.
func (p *Peer) reportIM(key media.SegmentKey, data []byte) {
	p.mu.Lock()
	sig := p.sig
	p.mu.Unlock()
	if sig == nil {
		return
	}
	if p.cfg.Meter != nil {
		p.cfg.Meter.OnHash(len(data))
	}
	sig.ReportIM(signal.IMReport{Key: key, Hash: media.IMHash(key, data)})
}

// manifestKey parses the policy's hex ed25519 manifest verification
// key, or nil when the provider signs no manifests.
func (p *Peer) manifestKey() ed25519.PublicKey {
	hexKey := p.Policy().ManifestPubKey
	if hexKey == "" {
		return nil
	}
	raw, err := hex.DecodeString(hexKey)
	if err != nil || len(raw) != ed25519.PublicKeySize {
		return nil
	}
	return ed25519.PublicKey(raw)
}

// verifySIM checks a segment against the server-signed integrity
// metadata. Unverifiable segments (no SIM established yet) are
// rejected, forcing CDN fallback — which in turn produces the IM
// report that establishes the SIM. When the policy carries a manifest
// verification key, the SIM's ed25519 signature must also check out —
// a compromised or impersonated server cannot then forge hashes.
func (p *Peer) verifySIM(ctx context.Context, key media.SegmentKey, data []byte) bool {
	p.mu.Lock()
	sig := p.sig
	p.mu.Unlock()
	if sig == nil {
		return false
	}
	resp, err := sig.GetSIM(ctx, signal.GetSIM{Key: key})
	if err != nil || !resp.Found {
		return false
	}
	if pub := p.manifestKey(); pub != nil && !secure.VerifyManifest(pub, key, resp.Hash, resp.Sig) {
		return false
	}
	if p.cfg.Meter != nil {
		p.cfg.Meter.OnHash(len(data))
	}
	return media.IMHash(key, data) == resp.Hash
}
