package pdnclient

import (
	"context"

	"github.com/stealthy-peers/pdnsec/internal/media"
	"github.com/stealthy-peers/pdnsec/internal/signal"
)

// reportIM submits integrity metadata for a CDN-fetched segment — the
// client half of the §V-B peer-assisted integrity-checking defense. A
// peer only ever reports IMs for segments it downloaded directly from
// the CDN; P2P-delivered segments are verified instead.
func (p *Peer) reportIM(key media.SegmentKey, data []byte) {
	p.mu.Lock()
	sig := p.sig
	p.mu.Unlock()
	if sig == nil {
		return
	}
	if p.cfg.Meter != nil {
		p.cfg.Meter.OnHash(len(data))
	}
	sig.ReportIM(signal.IMReport{Key: key, Hash: media.IMHash(key, data)})
}

// verifySIM checks a P2P-delivered segment against the server-signed
// integrity metadata. Unverifiable segments (no SIM established yet)
// are rejected, forcing CDN fallback — which in turn produces the IM
// report that establishes the SIM.
func (p *Peer) verifySIM(ctx context.Context, key media.SegmentKey, data []byte) bool {
	p.mu.Lock()
	sig := p.sig
	p.mu.Unlock()
	if sig == nil {
		return false
	}
	resp, err := sig.GetSIM(ctx, signal.GetSIM{Key: key})
	if err != nil || !resp.Found {
		return false
	}
	if p.cfg.Meter != nil {
		p.cfg.Meter.OnHash(len(data))
	}
	return media.IMHash(key, data) == resp.Hash
}
